#!/usr/bin/env python3
"""CI perf gate for the DES core.

Every gated quantity is a *same-run ratio*: bench/micro_simcore measures a
target and its reference implementation in the same binary on the same
machine, so the ratio transfers across runners while absolute throughput
does not. The baseline's `gates` list (or the legacy single `gate` object)
names target/reference prefix pairs; for every target/arg point the
same-run speedup must stay above that gate's min_speedup.

Gates in the baseline today:
  * event_core — the optimized event heap (BM_EventQueueThroughput) vs the
    pre-optimization core compiled in as BM_EventQueueThroughputLegacy.
  * parallel_vs_serial — the multi-domain rack workload on the parallel DES
    core (BM_RackParallel) vs the same workload on one event core
    (BM_RackSerial). This gate carries min_cores: a runner without enough
    CPUs cannot show a parallel speedup, so the gate is skipped (loudly)
    there instead of failing on scheduler noise.

Absolute numbers vs the recorded dev-machine baseline are reported for
information only — they never fail the build.

Usage:
  build/bench/micro_simcore --benchmark_out=fresh.json \
      --benchmark_out_format=json --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true
  scripts/check_bench.py --baseline BENCH_simcore.json --fresh fresh.json
"""
import argparse
import json
import sys


def load_fresh(path):
    """Returns ({benchmark_name: items_per_second}, num_cpus) from a
    google-benchmark JSON export, preferring the _median aggregate when
    repetitions were requested."""
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    median = {}
    for run in doc.get("benchmarks", []):
        ips = run.get("items_per_second")
        if ips is None:
            continue
        name = run["name"]
        if name.endswith("_median"):
            median[name[: -len("_median")]] = ips
        elif run.get("run_type", "iteration") == "iteration":
            plain[name] = ips
    num_cpus = int(doc.get("context", {}).get("num_cpus", 0))
    return {**plain, **median}, num_cpus


def check_gate(gate, fresh, num_cpus, min_speedup_override):
    """Runs one same-run-ratio gate. Returns (checked, skipped, failures)."""
    label = gate.get("name", gate["target_prefix"])
    min_speedup = min_speedup_override
    if min_speedup is None:
        min_speedup = float(gate["min_speedup"])
    target_prefix = gate["target_prefix"]
    reference_prefix = gate["reference_prefix"]

    min_cores = int(gate.get("min_cores", 0))
    if min_cores and num_cpus and num_cpus < min_cores:
        print(f"[skip ] gate '{label}': needs >= {min_cores} CPUs, "
              f"runner has {num_cpus} — a parallel speedup cannot show "
              f"here; not gated on this runner")
        return 0, 1, []

    failures = []
    checked = 0
    for name, ips in sorted(fresh.items()):
        # target_prefix may be a prefix of reference_prefix (the event-core
        # pair), so exclude the reference benchmarks from the target set.
        if not name.startswith(target_prefix) or \
                name.startswith(reference_prefix):
            continue
        arg = name[len(target_prefix):]  # e.g. "/1000" or "/8/real_time"
        ref_name = reference_prefix + arg
        if ref_name not in fresh:
            failures.append(f"{name}: reference {ref_name} missing from run")
            continue
        speedup = ips / fresh[ref_name]
        status = "ok"
        if speedup < min_speedup:
            status = "REGRESSION"
            failures.append(
                f"{name}: {speedup:.2f}x over {ref_name}, gate '{label}' "
                f"requires >= {min_speedup:.2f}x (target {ips:,.0f} vs "
                f"reference {fresh[ref_name]:,.0f} items/s)")
        checked += 1
        print(f"[gated] {name}: {speedup:.2f}x over {ref_name} "
              f"(need >= {min_speedup:.2f}x) {status}")
    if checked == 0:
        failures.append(
            f"gate '{label}': no '{target_prefix}*' benchmarks in fresh run")
    return checked, 0, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_simcore.json")
    parser.add_argument("--fresh", required=True,
                        help="google-benchmark JSON from a fresh run")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="min allowed target/reference ratio for every "
                             "gate (default: each gate's min_speedup)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    # `gates` list with a legacy single-`gate` fallback.
    gates = baseline.get("gates")
    if gates is None:
        gates = [baseline["gate"]]

    fresh, num_cpus = load_fresh(args.fresh)

    failures = []
    checked = 0
    skipped = 0
    for gate in gates:
        c, s, f = check_gate(gate, fresh, num_cpus, args.min_speedup)
        checked += c
        skipped += s
        failures.extend(f)

    # Informational: absolute numbers vs the recorded dev-machine baseline.
    # Hosted-runner hardware is unrelated to the machine that recorded the
    # baseline, so these differences are context, not pass/fail signal.
    for name, record in sorted(baseline.get("recorded", {}).items()):
        if name not in fresh:
            continue
        ref = float(record["after"])
        got = fresh[name]
        print(f"[info ] {name}: fresh {got:,.0f} / recorded {ref:,.0f} "
              f"items/s ({got / ref:.2f}x of dev-machine baseline)")

    if checked == 0 and skipped == 0:
        print("error: no gate checked any benchmark", file=sys.stderr)
        return 2
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({checked} point(s) gated, "
          f"{skipped} gate(s) skipped for core count)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
