#!/usr/bin/env python3
"""CI perf gate for the DES event core.

Compares a fresh google-benchmark JSON export of bench/micro_simcore against
the committed baseline in BENCH_simcore.json and fails when any gated
counter's items_per_second regresses by more than the tolerance (default:
the baseline's gate_tolerance, 25%).

Usage:
  build/bench/micro_simcore --benchmark_out=fresh.json \
      --benchmark_out_format=json --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true
  scripts/check_bench.py --baseline BENCH_simcore.json --fresh fresh.json

Only BM_EventQueueThroughput/* is gated by default: the other counters in
the baseline are informational (BusyServerEnqueue is a sub-2ns loop whose
variance on shared CI runners exceeds any honest gate).
"""
import argparse
import json
import sys

GATED_PREFIX = "BM_EventQueueThroughput"


def load_fresh_items_per_second(path):
    """Returns {benchmark_name: items_per_second} from a google-benchmark
    JSON export, preferring the _median aggregate when repetitions were
    requested."""
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    median = {}
    for run in doc.get("benchmarks", []):
        ips = run.get("items_per_second")
        if ips is None:
            continue
        name = run["name"]
        if name.endswith("_median"):
            median[name[: -len("_median")]] = ips
        elif run.get("run_type", "iteration") == "iteration":
            plain[name] = ips
    return {**plain, **median}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_simcore.json")
    parser.add_argument("--fresh", required=True,
                        help="google-benchmark JSON from a fresh run")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="max allowed fractional regression "
                             "(default: baseline gate_tolerance)")
    parser.add_argument("--all", action="store_true",
                        help="gate every recorded counter, not just "
                             f"{GATED_PREFIX}/*")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baseline.get("gate_tolerance", 0.25))

    fresh = load_fresh_items_per_second(args.fresh)
    failures = []
    checked = 0
    for name, record in baseline["recorded"].items():
        gated = args.all or name.startswith(GATED_PREFIX)
        if name not in fresh:
            if gated:
                failures.append(f"{name}: missing from fresh run")
            continue
        ref = float(record["after"])
        got = fresh[name]
        ratio = got / ref
        status = "ok"
        if gated and ratio < 1.0 - tolerance:
            status = "REGRESSION"
            failures.append(
                f"{name}: {got:,.0f} items/s vs baseline {ref:,.0f} "
                f"({(1.0 - ratio) * 100.0:.1f}% slower, limit "
                f"{tolerance * 100.0:.0f}%)")
        checked += 1
        tag = "gated" if gated else "info "
        print(f"[{tag}] {name}: fresh {got:,.0f} / baseline {ref:,.0f} "
              f"items/s ({ratio:.2f}x) {status}")

    if checked == 0:
        print("error: no comparable benchmarks found", file=sys.stderr)
        return 2
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
