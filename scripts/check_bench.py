#!/usr/bin/env python3
"""CI perf gate for the DES core.

Every gated quantity is a *same-run ratio*: bench/micro_simcore measures a
target and its reference implementation in the same binary on the same
machine, so the ratio transfers across runners while absolute throughput
does not. The baseline's `gates` list (or the legacy single `gate` object)
names target/reference prefix pairs; for every target/arg point the
same-run speedup must stay above that gate's min_speedup.

Gates in the baseline today:
  * event_core — the optimized event heap (BM_EventQueueThroughput) vs the
    pre-optimization core compiled in as BM_EventQueueThroughputLegacy.
  * parallel_vs_serial — the multi-domain rack workload on the parallel DES
    core (BM_RackParallel) vs the same workload on one event core
    (BM_RackSerial). This gate carries min_cores: a runner without enough
    CPUs cannot show a parallel speedup, so the gate is skipped (loudly)
    there instead of failing on scheduler noise.

Absolute numbers vs the recorded dev-machine baseline are reported for
information only — they never fail the build.

Usage:
  build/bench/micro_simcore --benchmark_out=fresh.json \
      --benchmark_out_format=json --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true
  scripts/check_bench.py --baseline BENCH_simcore.json --fresh fresh.json
"""
import argparse
import json
import sys


def load_fresh(path):
    """Returns ({benchmark_name: items_per_second}, num_cpus) from a
    google-benchmark JSON export, preferring the _median aggregate when
    repetitions were requested."""
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    median = {}
    for run in doc.get("benchmarks", []):
        ips = run.get("items_per_second")
        if ips is None:
            continue
        name = run["name"]
        if name.endswith("_median"):
            median[name[: -len("_median")]] = ips
        elif run.get("run_type", "iteration") == "iteration":
            plain[name] = ips
    num_cpus = int(doc.get("context", {}).get("num_cpus", 0))
    return {**plain, **median}, num_cpus


def check_gate(gate, fresh, num_cpus, min_speedup_override):
    """Runs one same-run-ratio gate.

    Returns a summary dict for the per-gate table:
      {name, min_speedup, points, worst, status, failures}
    where status is one of 'ok', 'SKIPPED (cores)', 'FAILED' and worst is
    the lowest speedup among the gated points (None when nothing ran).
    """
    label = gate.get("name", gate["target_prefix"])
    min_speedup = min_speedup_override
    if min_speedup is None:
        min_speedup = float(gate["min_speedup"])
    target_prefix = gate["target_prefix"]
    reference_prefix = gate["reference_prefix"]
    summary = {"name": label, "min_speedup": min_speedup, "points": 0,
               "worst": None, "status": "ok", "failures": []}

    min_cores = int(gate.get("min_cores", 0))
    if min_cores and num_cpus and num_cpus < min_cores:
        print(f"[skip ] gate '{label}': needs >= {min_cores} CPUs, "
              f"runner has {num_cpus} — a parallel speedup cannot show "
              f"here; not gated on this runner")
        summary["status"] = "SKIPPED (cores)"
        return summary

    for name, ips in sorted(fresh.items()):
        # target_prefix may be a prefix of reference_prefix (the event-core
        # pair), so exclude the reference benchmarks from the target set.
        if not name.startswith(target_prefix) or \
                name.startswith(reference_prefix):
            continue
        arg = name[len(target_prefix):]  # e.g. "/1000" or "/8/real_time"
        ref_name = reference_prefix + arg
        if ref_name not in fresh:
            summary["failures"].append(
                f"{name}: reference {ref_name} missing from run")
            continue
        speedup = ips / fresh[ref_name]
        if summary["worst"] is None or speedup < summary["worst"]:
            summary["worst"] = speedup
        status = "ok"
        if speedup < min_speedup:
            status = "REGRESSION"
            summary["failures"].append(
                f"{name}: {speedup:.2f}x over {ref_name}, gate '{label}' "
                f"requires >= {min_speedup:.2f}x (target {ips:,.0f} vs "
                f"reference {fresh[ref_name]:,.0f} items/s)")
        summary["points"] += 1
        print(f"[gated] {name}: {speedup:.2f}x over {ref_name} "
              f"(need >= {min_speedup:.2f}x) {status}")
    if summary["points"] == 0:
        summary["failures"].append(
            f"gate '{label}': no '{target_prefix}*' benchmarks in fresh run")
    if summary["failures"]:
        summary["status"] = "FAILED"
    return summary


def print_gate_table(summaries):
    """One row per gate: what was required, what was measured, the verdict.
    This is the part of the log a human reads first, so it is aligned and
    complete even when a gate skipped or found no benchmarks."""
    rows = [("gate", "points", "min_speedup", "worst", "status")]
    for s in summaries:
        worst = f"{s['worst']:.2f}x" if s["worst"] is not None else "-"
        rows.append((s["name"], str(s["points"]),
                     f"{s['min_speedup']:.2f}x", worst, s["status"]))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    print("\nper-gate summary:")
    for i, row in enumerate(rows):
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            print("  " + "  ".join("-" * w for w in widths))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_simcore.json")
    parser.add_argument("--fresh", required=True,
                        help="google-benchmark JSON from a fresh run")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="min allowed target/reference ratio for every "
                             "gate (default: each gate's min_speedup)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    # `gates` list with a legacy single-`gate` fallback.
    gates = baseline.get("gates")
    if gates is None:
        gates = [baseline["gate"]]

    fresh, num_cpus = load_fresh(args.fresh)

    summaries = [check_gate(g, fresh, num_cpus, args.min_speedup)
                 for g in gates]
    failures = [f for s in summaries for f in s["failures"]]
    checked = sum(s["points"] for s in summaries)
    skipped = sum(1 for s in summaries if s["status"] == "SKIPPED (cores)")

    # Informational: absolute numbers vs the recorded dev-machine baseline.
    # Hosted-runner hardware is unrelated to the machine that recorded the
    # baseline, so these differences are context, not pass/fail signal.
    for name, record in sorted(baseline.get("recorded", {}).items()):
        if name not in fresh:
            continue
        ref = float(record["after"])
        got = fresh[name]
        print(f"[info ] {name}: fresh {got:,.0f} / recorded {ref:,.0f} "
              f"items/s ({got / ref:.2f}x of dev-machine baseline)")

    print_gate_table(summaries)

    if checked == 0 and skipped == 0:
        print("error: no gate checked any benchmark", file=sys.stderr)
        return 2
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({checked} point(s) gated, "
          f"{skipped} gate(s) skipped for core count)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
