#!/usr/bin/env python3
"""CI perf gate for the DES event core.

The gated quantity is a *same-run ratio*: bench/micro_simcore measures both
the optimized event core (BM_EventQueueThroughput) and the pre-optimization
reference implementation compiled into the same binary
(BM_EventQueueThroughputLegacy), so fast/legacy is taken on one machine in
one process. The gate fails when that speedup drops below the baseline's
gate.min_speedup. Absolute throughput numbers vary wildly across CI runners
and are reported for information only — they never fail the build.

Usage:
  build/bench/micro_simcore --benchmark_out=fresh.json \
      --benchmark_out_format=json --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true
  scripts/check_bench.py --baseline BENCH_simcore.json --fresh fresh.json
"""
import argparse
import json
import sys


def load_fresh_items_per_second(path):
    """Returns {benchmark_name: items_per_second} from a google-benchmark
    JSON export, preferring the _median aggregate when repetitions were
    requested."""
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    median = {}
    for run in doc.get("benchmarks", []):
        ips = run.get("items_per_second")
        if ips is None:
            continue
        name = run["name"]
        if name.endswith("_median"):
            median[name[: -len("_median")]] = ips
        elif run.get("run_type", "iteration") == "iteration":
            plain[name] = ips
    return {**plain, **median}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_simcore.json")
    parser.add_argument("--fresh", required=True,
                        help="google-benchmark JSON from a fresh run")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="min allowed fast/legacy ratio "
                             "(default: baseline gate.min_speedup)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    gate = baseline["gate"]
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = float(gate["min_speedup"])
    target_prefix = gate["target_prefix"]
    reference_prefix = gate["reference_prefix"]

    fresh = load_fresh_items_per_second(args.fresh)

    # Gate: for every target/arg pair, the same-run speedup over the legacy
    # reference must hold.
    failures = []
    checked = 0
    for name, ips in sorted(fresh.items()):
        # target_prefix is a prefix of reference_prefix, so exclude the
        # reference benchmarks themselves from the target set.
        if not name.startswith(target_prefix) or \
                name.startswith(reference_prefix):
            continue
        arg = name[len(target_prefix):]  # e.g. "/1000"
        ref_name = reference_prefix + arg
        if ref_name not in fresh:
            failures.append(f"{name}: reference {ref_name} missing from run")
            continue
        speedup = ips / fresh[ref_name]
        status = "ok"
        if speedup < min_speedup:
            status = "REGRESSION"
            failures.append(
                f"{name}: {speedup:.2f}x over legacy core, gate requires "
                f">= {min_speedup:.2f}x (fast {ips:,.0f} vs legacy "
                f"{fresh[ref_name]:,.0f} items/s)")
        checked += 1
        print(f"[gated] {name}: {speedup:.2f}x over {ref_name} "
              f"(need >= {min_speedup:.2f}x) {status}")

    # Informational: absolute numbers vs the recorded dev-machine baseline.
    # Hosted-runner hardware is unrelated to the machine that recorded the
    # baseline, so these differences are context, not pass/fail signal.
    for name, record in sorted(baseline.get("recorded", {}).items()):
        if name not in fresh:
            continue
        ref = float(record["after"])
        got = fresh[name]
        print(f"[info ] {name}: fresh {got:,.0f} / recorded {ref:,.0f} "
              f"items/s ({got / ref:.2f}x of dev-machine baseline)")

    if checked == 0:
        print(f"error: no '{target_prefix}*' benchmarks in fresh run",
              file=sys.stderr)
        return 2
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
