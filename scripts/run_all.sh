#!/usr/bin/env bash
# Builds everything, runs the test suite, then regenerates every paper
# figure/table. Usage: scripts/run_all.sh [--csv] [--jobs=N]
#                                         [--sim-threads=N] [--faults=SPEC]
#
# --jobs=N fans the independent sweep points of each bench across N worker
# threads (default: all cores). --sim-threads=N sets the event cores inside
# each simulation (multi-domain sims shard per-server domains; single-domain
# harnesses accept it as a no-op). Output is byte-identical at any value of
# either flag: results are merged in submission order before anything is
# printed, and cross-domain events merge in (time, src, seq) order
# (DESIGN.md §12). The two compose multiplicatively — keep jobs×sim_threads
# near the core count.
#
# --faults=SPEC (see DESIGN.md §9 for the grammar) and --check are forwarded
# only to the benches that accept those flags; the rest run without them.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"
simthreads=""
faults=""
check=""
args=()
for a in "$@"; do
  case "$a" in
    --jobs=*) jobs="${a#--jobs=}" ;;
    --sim-threads=*) simthreads="$a" ;;
    --faults=*) faults="$a" ;;
    --check) check="$a" ;;
    *) args+=("$a") ;;
  esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  case "$(basename "$b")" in
    micro_simcore)
      # google-benchmark binary: takes no sweep flags.
      "$b"
      ;;
    fig3_flow|fig4_latency|fig4_throughput|fig8_large_read|fig10_doorbell)
      # The fault-aware benches additionally take --faults and --sim-threads.
      "$b" --jobs="$jobs" ${simthreads:+"$simthreads"} ${faults:+"$faults"} \
        ${args[@]+"${args[@]}"}
      ;;
    fig12_governor|sec_overload|sec_tenants|sec_trace|rack_scale)
      # Fault-aware and self-checking: forward --faults and --check both.
      "$b" --jobs="$jobs" ${simthreads:+"$simthreads"} ${faults:+"$faults"} \
        ${check:+"$check"} ${args[@]+"${args[@]}"}
      ;;
    sec_membership)
      # Self-checking; builds its own permloss/corrupt plans internally.
      "$b" --jobs="$jobs" ${simthreads:+"$simthreads"} \
        ${check:+"$check"} ${args[@]+"${args[@]}"}
      ;;
    *)
      "$b" --jobs="$jobs" ${args[@]+"${args[@]}"}
      ;;
  esac
  echo
done
