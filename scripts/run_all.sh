#!/usr/bin/env bash
# Builds everything, runs the test suite, then regenerates every paper
# figure/table. Usage: scripts/run_all.sh [--csv] [--jobs=N]
#
# --jobs=N fans the independent sweep points of each bench across N worker
# threads (default: all cores). Output is byte-identical at any job count:
# results are merged in submission order before anything is printed.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"
args=()
for a in "$@"; do
  case "$a" in
    --jobs=*) jobs="${a#--jobs=}" ;;
    *) args+=("$a") ;;
  esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  case "$(basename "$b")" in
    micro_simcore)
      # google-benchmark binary: takes no sweep flags.
      "$b"
      ;;
    *)
      "$b" --jobs="$jobs" ${args[@]+"${args[@]}"}
      ;;
  esac
  echo
done
