#!/usr/bin/env bash
# Builds everything, runs the test suite, then regenerates every paper
# figure/table. Usage: scripts/run_all.sh [--csv]
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  echo "===== $b ====="
  "$b" "$@"
  echo
done
