#!/usr/bin/env bash
# Regenerates the committed golden files under tests/golden/data/ from the
# current simulator. Run this ONLY when a numeric change is intentional;
# review the resulting diff like any other code change.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build --target golden_golden_run_test golden_overload_golden_test \
  golden_tenants_golden_test governor_autoscaler_test
mkdir -p tests/golden/data
UPDATE_GOLDENS=1 ./build/tests/golden_golden_run_test
UPDATE_GOLDENS=1 ./build/tests/golden_overload_golden_test
UPDATE_GOLDENS=1 ./build/tests/golden_tenants_golden_test
UPDATE_GOLDENS=1 ./build/tests/governor_autoscaler_test
echo "goldens regenerated; review with: git diff tests/golden/data"
