file(REMOVE_RECURSE
  "CMakeFiles/example_path_explorer.dir/path_explorer.cc.o"
  "CMakeFiles/example_path_explorer.dir/path_explorer.cc.o.d"
  "example_path_explorer"
  "example_path_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_path_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
