# Empty compiler generated dependencies file for example_path_explorer.
# This may be replaced when dependencies are built.
