# Empty dependencies file for example_linefs_pipeline.
# This may be replaced when dependencies are built.
