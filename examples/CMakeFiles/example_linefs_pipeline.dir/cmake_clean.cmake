file(REMOVE_RECURSE
  "CMakeFiles/example_linefs_pipeline.dir/linefs_pipeline.cc.o"
  "CMakeFiles/example_linefs_pipeline.dir/linefs_pipeline.cc.o.d"
  "example_linefs_pipeline"
  "example_linefs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_linefs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
