# Empty compiler generated dependencies file for example_kvstore_offload.
# This may be replaced when dependencies are built.
