file(REMOVE_RECURSE
  "CMakeFiles/example_kvstore_offload.dir/kvstore_offload.cc.o"
  "CMakeFiles/example_kvstore_offload.dir/kvstore_offload.cc.o.d"
  "example_kvstore_offload"
  "example_kvstore_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kvstore_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
