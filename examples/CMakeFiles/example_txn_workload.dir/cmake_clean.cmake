file(REMOVE_RECURSE
  "CMakeFiles/example_txn_workload.dir/txn_workload.cc.o"
  "CMakeFiles/example_txn_workload.dir/txn_workload.cc.o.d"
  "example_txn_workload"
  "example_txn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_txn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
