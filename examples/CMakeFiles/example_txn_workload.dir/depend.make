# Empty dependencies file for example_txn_workload.
# This may be replaced when dependencies are built.
