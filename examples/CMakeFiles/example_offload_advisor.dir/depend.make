# Empty dependencies file for example_offload_advisor.
# This may be replaced when dependencies are built.
