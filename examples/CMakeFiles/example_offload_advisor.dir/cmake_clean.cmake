file(REMOVE_RECURSE
  "CMakeFiles/example_offload_advisor.dir/offload_advisor.cc.o"
  "CMakeFiles/example_offload_advisor.dir/offload_advisor.cc.o.d"
  "example_offload_advisor"
  "example_offload_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_offload_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
