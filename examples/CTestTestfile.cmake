# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_smoke "/root/repo/examples/example_quickstart")
set_tests_properties(example_quickstart_smoke PROPERTIES  LABELS "tier1" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_path_explorer_smoke "/root/repo/examples/example_path_explorer" "--payloads=64")
set_tests_properties(example_path_explorer_smoke PROPERTIES  LABELS "tier1" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_offload_advisor_smoke "/root/repo/examples/example_offload_advisor" "--path=snic2" "--verb=write" "--range=2048")
set_tests_properties(example_offload_advisor_smoke PROPERTIES  LABELS "tier1" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
