// Quickstart: build a BlueField-2 testbed, issue RDMA verbs against the
// host and SoC endpoints, and print what the paper calls the SmartNIC
// "performance tax".
//
//   $ example_quickstart
//
// Walks through the three ingredients of the library: a topology (Fabric +
// BluefieldServer), a requester (ClientMachine + verbs QueuePair), and
// measurement (Meter / harness).
#include <cstdio>

#include "src/rdma/verbs.h"
#include "src/sim/meter.h"
#include "src/topo/server.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: example brevity

int main() {
  // --- 1. One-off latency probes through the verbs API. -------------------
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  ClientMachine client(&sim, &fabric, ClientParams{}, "cli0");

  rdma::RemoteMemoryRegion host_mr;
  host_mr.engine = &server.nic();
  host_mr.endpoint = server.host_ep();
  host_mr.server_port = server.port();
  host_mr.addr = 0;
  host_mr.length = 1ull * kGiB;

  rdma::RemoteMemoryRegion soc_mr = host_mr;
  soc_mr.endpoint = server.soc_ep();

  rdma::CompletionQueue cq;
  rdma::QueuePair host_qp(&client, /*thread=*/0, host_mr, &cq);
  rdma::QueuePair soc_qp(&client, /*thread=*/1, soc_mr, &cq);

  SimTime host_read = 0;
  SimTime soc_read = 0;
  host_qp.PostRead(0x1000, 64, /*wr_id=*/1, [&](SimTime t) { host_read = t; });
  soc_qp.PostRead(0x1000, 64, /*wr_id=*/2, [&](SimTime t) { soc_read = t; });
  sim.Run();

  std::printf("single 64B READ latency via BlueField-2:\n");
  std::printf("  client -> host (path 1): %s\n", FormatTime(host_read).c_str());
  std::printf("  client -> SoC  (path 2): %s\n", FormatTime(soc_read).c_str());
  std::printf("  completions polled: %zu\n\n", cq.pending());

  // --- 2. Peak-throughput experiments through the harness. ----------------
  HarnessConfig peak;
  peak.client_machines = 11;
  std::printf("peak 64B READ throughput (11 requester machines):\n");
  for (ServerKind kind :
       {ServerKind::kRnicHost, ServerKind::kBluefieldHost, ServerKind::kBluefieldSoc}) {
    const Measurement m = MeasureInboundPath(kind, Verb::kRead, 64, peak);
    std::printf("  %-10s %6.1f Mreq/s  (p50 %.2f us)\n", ServerKindName(kind), m.mreqs,
                m.p50_us);
  }

  std::printf("\nthe SmartNIC tax: extending the RNIC into a SmartNIC slows the\n"
              "host path, but opens a faster path to SoC memory - use it.\n");
  return 0;
}
