// LineFS-style pipeline offload study: which stages belong on the SoC?
//
// A three-stage log-processing pipeline (parse -> digest -> publish)
// handles a stream of 4 KB items while the host also serves inter-machine
// RDMA traffic. Offloading the heavy digest stage to the SoC frees host
// cores, but ships every item across path ③ twice — adding item latency
// AND skimming network throughput through the shared PCIe1/NIC resources
// (the §4 interference). The budget rule arbitrates exactly this trade.
#include <cstdio>
#include <iostream>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/offload/pipeline.h"
#include "src/sim/meter.h"
#include "src/workload/client.h"

using namespace snicsim;           // NOLINT: example brevity
using namespace snicsim::offload;  // NOLINT

namespace {

struct RunResult {
  double pipeline_kitems = 0.0;
  double pipeline_p50_us = 0.0;
  double network_mreqs = 0.0;
  double host_busy_cores = 0.0;
};

RunResult Run(Placement digest_placement, double item_rate_per_sec) {
  Simulator sim;
  const TestbedParams tp;
  Fabric fabric(&sim, tp.network_link_propagation, tp.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, tp);

  // Background inter-machine traffic (64 B READs from 6 machines).
  ClientParams cp;
  auto clients = MakeClients(&sim, &fabric, cp, 6);
  Meter net(&sim);
  const SimTime warm = FromMicros(60);
  const SimTime end = FromMicros(600);
  net.SetWindow(warm, end);
  TargetSpec t;
  t.engine = &bf.nic();
  t.endpoint = bf.host_ep();
  t.server_port = bf.port();
  t.verb = Verb::kRead;
  t.payload = 64;
  uint64_t seed = 1;
  for (auto& c : clients) {
    c->Start(t, AddressGenerator(0, 10ull * 1024 * kMiB, 64, seed++), &net);
  }

  // The pipeline: heavy digest stage on host or SoC.
  std::vector<StageSpec> stages = {
      {"parse", FromNanos(350), 2, Placement::kHost},
      {"digest", FromNanos(1400), 4, digest_placement},
      {"publish", FromNanos(250), 2, Placement::kHost},
  };
  OffloadPipeline pipeline(&sim, &bf, stages, 4096);
  Histogram latency;
  uint64_t items = 0;
  // Open-loop item arrivals.
  const SimTime interval = static_cast<SimTime>(1e12 / item_rate_per_sec);
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival] {
    if (sim.now() >= end) {
      return;
    }
    const SimTime start = sim.now();
    pipeline.Submit([&, start](SimTime done) {
      if (start >= warm) {
        ++items;
        latency.Record(done - start);
      }
    });
    sim.In(interval, *arrival);
  };
  sim.In(0, *arrival);
  sim.RunUntil(end);

  RunResult r;
  const double secs = ToSeconds(end - warm);
  r.pipeline_kitems = static_cast<double>(items) / secs / 1e3;
  r.pipeline_p50_us = ToMicros(latency.Percentile(50));
  r.network_mreqs = net.MReqsPerSec();
  r.host_busy_cores = ToSeconds(pipeline.stats().host_cpu_time) / secs;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double rate = flags.GetDouble("items-per-sec", 1.2e6, "pipeline item arrivals");
  flags.Finish();

  Table t({"digest stage", "Kitems/s", "item p50 us", "net Mreq/s", "host cores used"});
  for (Placement p : {Placement::kHost, Placement::kSoc}) {
    const RunResult r = Run(p, rate);
    t.Row().Add(p == Placement::kHost ? "on host" : "offloaded to SoC");
    t.Add(r.pipeline_kitems, 0).Add(r.pipeline_p50_us, 2).Add(r.network_mreqs, 1);
    t.Add(r.host_busy_cores, 2);
  }
  t.Print(std::cout, flags.csv());
  std::printf("\noffloading the digest stage frees host cores at the cost of two\n"
              "path-3 hops per item (LineFS's trade, arbitrated by the §4 budget).\n");
  return 0;
}
