// Path explorer: for each verb and payload, measure every communication
// path of the SmartNIC and report the winner — an executable version of the
// paper's take-away tables, plus the §4 budget reminder.
//
//   $ example_path_explorer
//   $ example_path_explorer --payloads=64,4096
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/model/bounds.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: example brevity

namespace {

std::vector<uint32_t> ParsePayloads(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<uint32_t>(std::stoul(item)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string payload_csv =
      flags.GetString("payloads", "64,512,4096,65536", "comma-separated payload bytes");
  flags.Finish();

  HarnessConfig cfg;
  std::printf("measuring all paths on the default BlueField-2 testbed...\n\n");
  for (Verb verb : {Verb::kRead, Verb::kWrite, Verb::kSend}) {
    Table t({"payload", "SNIC(1) M/s", "SNIC(2) M/s", "(2)/(1)", "best inbound path"});
    for (uint32_t p : ParsePayloads(payload_csv)) {
      const Measurement m1 = MeasureInboundPath(ServerKind::kBluefieldHost, verb, p, cfg);
      const Measurement m2 = MeasureInboundPath(ServerKind::kBluefieldSoc, verb, p, cfg);
      const double ratio = m1.mreqs > 0 ? m2.mreqs / m1.mreqs : 0.0;
      const char* best = ratio > 1.02   ? "SoC (2)"
                         : ratio < 0.98 ? "host (1)"
                                        : "either (network-bound)";
      t.Row().Add(FormatBytes(p)).Add(m1.mreqs, 1).Add(m2.mreqs, 1).Add(ratio, 2).Add(best);
    }
    std::printf("== %s ==\n", VerbName(verb));
    t.Print(std::cout, flags.csv());
    std::printf("\n");
  }

  const TestbedParams tp;
  std::printf("closed-form path bounds (model/bounds.h):\n");
  for (CommPath p : {CommPath::kSnic1, CommPath::kSnic2, CommPath::kSnic3S2H}) {
    const PathBounds b = ComputePathBounds(p, tp);
    std::printf("  %-11s same-dir %.0f Gbps, opposite-dir %.0f Gbps\n", CommPathName(p),
                b.same_direction_gbps, b.opposite_direction_gbps);
  }
  std::printf("\nrules of thumb (the paper's takeaways):\n"
              "  * one-sided to the SoC is the fastest inbound path, but mind skew\n"
              "    (Advice #1) and >%s READs (Advice #2);\n"
              "  * two-sided belongs on the host CPU;\n"
              "  * keep host<->SoC traffic under P - N = %.0f Gbps when the NIC is\n"
              "    saturated (Advice #3/#4, budget rule).\n",
              FormatBytes(tp.bluefield_nic.hol_threshold).c_str(),
              SafePath3BudgetGbps(tp));
  return 0;
}
