// Offload advisor: describe an intended SmartNIC deployment on the command
// line, get the paper's advices back — then watch the simulator confirm
// each prediction with a before/after measurement.
//
//   $ example_offload_advisor --path=snic2 --verb=write --range=2048
//   $ example_offload_advisor --path=h2s --verb=read --payload=16777216
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/model/advisor.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: example brevity

namespace {

CommPath ParsePath(const std::string& s) {
  if (s == "rnic") return CommPath::kRnic1;
  if (s == "snic1") return CommPath::kSnic1;
  if (s == "snic2") return CommPath::kSnic2;
  if (s == "s2h") return CommPath::kSnic3S2H;
  if (s == "h2s") return CommPath::kSnic3H2S;
  std::fprintf(stderr, "unknown --path (rnic|snic1|snic2|s2h|h2s)\n");
  std::exit(2);
}

Verb ParseVerb(const std::string& s) {
  if (s == "read") return Verb::kRead;
  if (s == "write") return Verb::kWrite;
  if (s == "send") return Verb::kSend;
  std::fprintf(stderr, "unknown --verb (read|write|send)\n");
  std::exit(2);
}

// Measures the plan as-is so the advice can be checked empirically.
double MeasurePlan(const OffloadPlan& plan) {
  HarnessConfig cfg;
  cfg.address_range = plan.address_range;
  const uint32_t payload = plan.payload;
  switch (plan.path) {
    case CommPath::kRnic1:
      return MeasureInboundPath(ServerKind::kRnicHost, plan.verb, payload, cfg).gbps;
    case CommPath::kSnic1:
      return MeasureInboundPath(ServerKind::kBluefieldHost, plan.verb, payload, cfg).gbps;
    case CommPath::kSnic2:
      return MeasureInboundPath(ServerKind::kBluefieldSoc, plan.verb, payload, cfg).gbps;
    case CommPath::kSnic3S2H: {
      LocalRequesterParams p = LocalRequesterParams::Soc();
      p.doorbell_batch = true;
      return MeasureLocalPath(true, plan.verb, payload, p, cfg).gbps;
    }
    case CommPath::kSnic3H2S:
      return MeasureLocalPath(false, plan.verb, payload, LocalRequesterParams::Host(), cfg)
          .gbps;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  OffloadPlan plan;
  plan.path = ParsePath(flags.GetString("path", "snic2", "rnic|snic1|snic2|s2h|h2s"));
  plan.verb = ParseVerb(flags.GetString("verb", "write", "read|write|send"));
  plan.payload = static_cast<uint32_t>(flags.GetInt("payload", 64, "payload bytes"));
  plan.address_range =
      static_cast<uint64_t>(flags.GetInt("range", 10737418240ll, "responder range bytes"));
  plan.doorbell_batching = flags.GetBool("db", false, "doorbell batching");
  plan.batch_size = static_cast<int>(flags.GetInt("batch", 32, "doorbell batch size"));
  plan.host_side_requester = plan.path != CommPath::kSnic3S2H;
  plan.network_saturated = flags.GetBool("net-saturated", false, "NIC already saturated");
  plan.demand_gbps = flags.GetDouble("demand", 0.0, "intended path-3 Gbps");
  flags.Finish();

  OffloadAdvisor advisor;
  std::printf("plan: %s %s, payload %s, range %s\n", CommPathName(plan.path),
              VerbName(plan.verb), FormatBytes(plan.payload).c_str(),
              FormatBytes(plan.address_range).c_str());

  const auto advices = advisor.Review(plan);
  if (advices.empty()) {
    std::printf("\nno anomaly expected for this plan.\n");
  } else {
    std::printf("\n%zu advice(s) triggered:\n", advices.size());
    for (const Advice& a : advices) {
      std::printf("  [#%d] %s\n       %s\n", a.number, a.title.c_str(), a.detail.c_str());
    }
  }

  // Empirical confirmation: the plan as given, and the mitigated variant.
  std::printf("\nsimulating the plan...        %7.1f Gbps\n", MeasurePlan(plan));
  OffloadPlan fixed = plan;
  bool changed = false;
  if (advisor.TriggersSkewAnomaly(plan)) {
    fixed.address_range = 10ull * 1024 * kMiB;
    changed = true;
  }
  if (advisor.TriggersLargeReadAnomaly(plan) ||
      advisor.TriggersPath3LargeTransferAnomaly(plan)) {
    fixed.payload = static_cast<uint32_t>(
        std::min<uint64_t>(plan.payload, advisor.MaxSafeSocReadBytes() / 2));
    changed = true;
  }
  if (changed) {
    std::printf("simulating the mitigation...  %7.1f Gbps\n", MeasurePlan(fixed));
  }
  return 0;
}
