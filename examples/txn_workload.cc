// Distributed OCC transactions over the simulated testbed: throughput and
// abort rate vs. contention, RNIC vs. SmartNIC host path.
//
// Each transaction costs ~4 one-sided round trips (read, lock, validate,
// commit), so the SmartNIC's per-op latency tax (paper §3.1) compounds —
// and longer lock hold times also raise the conflict window, a second-order
// effect the paper's guidance about path choice is meant to avoid.
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/topo/server.h"
#include "src/txn/occ.h"

using namespace snicsim;       // NOLINT: example brevity
using namespace snicsim::txn;  // NOLINT

namespace {

struct RunResult {
  double ktps = 0.0;
  double abort_pct = 0.0;
  double p50_us = 0.0;
};

// `hot_records` controls contention: every write lands in [0, hot_records).
RunResult Run(bool use_rnic, uint64_t hot_records, int coordinators) {
  Simulator sim;
  Fabric fabric(&sim);
  const TestbedParams tp;
  std::unique_ptr<RnicServer> rnic;
  std::unique_ptr<BluefieldServer> bf;
  rdma::RemoteMemoryRegion mr;
  if (use_rnic) {
    rnic = std::make_unique<RnicServer>(&sim, &fabric, tp);
    mr.engine = &rnic->nic();
    mr.endpoint = rnic->host_ep();
    mr.server_port = rnic->port();
  } else {
    bf = std::make_unique<BluefieldServer>(&sim, &fabric, tp);
    mr.engine = &bf->nic();
    mr.endpoint = bf->host_ep();
    mr.server_port = bf->port();
  }
  TxnStoreConfig sc;
  sc.records = 1u << 16;
  TxnStore store(sc);
  mr.addr = 0;
  mr.length = sc.records * sc.record_bytes;
  ClientParams cp;
  cp.threads = 12;
  ClientMachine client(&sim, &fabric, cp, "cli");

  std::vector<std::unique_ptr<rdma::QueuePair>> qps;
  std::vector<std::unique_ptr<OccCoordinator>> coords;
  for (int i = 0; i < coordinators; ++i) {
    qps.push_back(std::make_unique<rdma::QueuePair>(&client, i % 12, mr));
    coords.push_back(std::make_unique<OccCoordinator>(&sim, &store, qps.back().get(),
                                                      static_cast<uint64_t>(i + 1)));
  }

  Histogram latency;
  uint64_t commits = 0;
  uint64_t total = 0;
  const SimTime deadline = FromMillis(4);
  for (int i = 0; i < coordinators; ++i) {
    auto rng = std::make_shared<Rng>(42 + static_cast<uint64_t>(i));
    auto loop = std::make_shared<std::function<void()>>();
    OccCoordinator* coord = coords[static_cast<size_t>(i)].get();
    *loop = [&, coord, rng, loop, hot_records] {
      if (sim.now() >= deadline) {
        return;
      }
      std::vector<uint64_t> reads = {4096 + rng->NextBelow(32768),
                                     4096 + rng->NextBelow(32768)};
      std::vector<uint64_t> writes = {rng->NextBelow(hot_records)};
      coord->Execute(reads, writes, [&, loop](TxnResult r) {
        ++total;
        commits += r.committed ? 1 : 0;
        latency.Record(r.latency);
        (*loop)();
      });
    };
    sim.In(FromNanos(500) * i, *loop);
  }
  sim.RunUntil(deadline);
  RunResult out;
  if (total > 0) {
    out.ktps = static_cast<double>(commits) / ToSeconds(deadline) / 1e3;
    out.abort_pct = 100.0 * static_cast<double>(total - commits) /
                    static_cast<double>(total);
    out.p50_us = ToMicros(latency.Percentile(50));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t coordinators = flags.GetInt("coordinators", 48, "concurrent txns");
  flags.Finish();
  const int c = static_cast<int>(coordinators);

  std::printf("OCC transactions: 2 reads + 1 write, %d coordinators\n\n", c);
  Table t({"hot set", "RNIC Ktxn/s", "RNIC abort%", "RNIC p50 us", "SNIC Ktxn/s",
           "SNIC abort%", "SNIC p50 us"});
  for (uint64_t hot : {4096ull, 256ull, 32ull, 8ull}) {
    const RunResult rn = Run(true, hot, c);
    const RunResult sn = Run(false, hot, c);
    t.Row().Add(FormatBytes(hot * 128));
    t.Add(rn.ktps, 0).Add(rn.abort_pct, 1).Add(rn.p50_us, 1);
    t.Add(sn.ktps, 0).Add(sn.abort_pct, 1).Add(sn.p50_us, 1);
  }
  t.Print(std::cout, flags.csv());
  std::printf("\nshrinking the hot set raises conflicts; the SmartNIC's latency tax\n"
              "both slows each transaction and widens its conflict window.\n");
  return 0;
}
