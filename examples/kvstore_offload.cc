// KV-store offload study: when does shipping gets to the SmartNIC SoC beat
// client-side one-sided traversal?
//
// The paper's Fig. 1 motivates offloading with the latency of a single get;
// this example sweeps *concurrency* and shows the trade the paper's §4
// take-away predicts: the offloaded design wins latency at low load but the
// wimpy SoC cores saturate first, so the one-sided design overtakes it in
// throughput — use both paths, not either.
#include <cstdio>
#include <iostream>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/kvstore/kv.h"
#include "src/sim/meter.h"

using namespace snicsim;      // NOLINT: example brevity
using namespace snicsim::kv;  // NOLINT

namespace {

constexpr uint64_t kKeys = 200000;

IndexConfig MakeIndexConfig() {
  IndexConfig c;
  c.buckets = 1u << 17;
  c.value_bytes = 256;
  c.value_base = 1ull * kGiB;
  return c;
}

struct Result {
  double kgets = 0.0;
  double avg_us = 0.0;
};

Result RunDirect(int concurrency) {
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  ClientParams cp;
  cp.threads = 12;
  ClientMachine client(&sim, &fabric, cp, "cli");
  KvIndex index(MakeIndexConfig());
  for (uint64_t k = 1; k <= kKeys; ++k) {
    index.Put(k);
  }
  rdma::RemoteMemoryRegion mr;
  mr.engine = &server.nic();
  mr.endpoint = server.host_ep();
  mr.server_port = server.port();
  mr.length = 16ull * kGiB;

  Rng rng(5);
  auto gets = std::make_shared<uint64_t>(0);
  auto lat = std::make_shared<double>(0.0);
  const SimTime deadline = FromMillis(3);
  for (int t = 0; t < concurrency; ++t) {
    auto qp = std::make_shared<rdma::QueuePair>(&client, t % 12, mr);
    auto kv = std::make_shared<DirectKvClient>(&index, qp.get());
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&sim, &rng, kv, qp, loop, gets, lat, deadline] {
      if (sim.now() >= deadline) {
        return;
      }
      const SimTime start = sim.now();
      kv->Get(1 + rng.NextBelow(kKeys), [&sim, loop, gets, lat, start](GetResult) {
        *lat += ToMicros(sim.now() - start);
        ++*gets;
        (*loop)();
      });
    };
    sim.In(FromNanos(300) * t, *loop);
  }
  sim.RunUntil(deadline);
  Result r;
  if (*gets > 0) {
    r.kgets = static_cast<double>(*gets) / ToSeconds(deadline) / 1e3;
    r.avg_us = *lat / static_cast<double>(*gets);
  }
  return r;
}

Result RunOffload(int concurrency, bool values_on_host) {
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  ClientParams cp;
  cp.threads = 12;
  ClientMachine client(&sim, &fabric, cp, "cli");
  KvIndex index(MakeIndexConfig());
  for (uint64_t k = 1; k <= kKeys; ++k) {
    index.Put(k);
  }
  SocOffloadKvServer::Config cfg;
  cfg.values_on_host = values_on_host;
  SocOffloadKvServer offload(&sim, &server, &index, cfg);
  offload.SeedKeys(kKeys);
  rdma::RemoteMemoryRegion mr;
  mr.engine = &server.nic();
  mr.endpoint = server.soc_ep();
  mr.server_port = server.port();
  mr.length = 1ull * kGiB;

  auto gets = std::make_shared<uint64_t>(0);
  auto lat = std::make_shared<double>(0.0);
  const SimTime deadline = FromMillis(3);
  for (int t = 0; t < concurrency; ++t) {
    auto qp = std::make_shared<rdma::QueuePair>(&client, t % 12, mr);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&sim, qp, loop, gets, lat, deadline] {
      if (sim.now() >= deadline) {
        return;
      }
      const SimTime start = sim.now();
      qp->PostSend(16, 0, [&sim, loop, gets, lat, start](SimTime) {
        *lat += ToMicros(sim.now() - start);
        ++*gets;
        (*loop)();
      });
    };
    sim.In(FromNanos(300) * t, *loop);
  }
  sim.RunUntil(deadline);
  Result r;
  if (*gets > 0) {
    r.kgets = static_cast<double>(*gets) / ToSeconds(deadline) / 1e3;
    r.avg_us = *lat / static_cast<double>(*gets);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  flags.Finish();

  std::printf("KV get designs vs concurrency (%llu keys, 256B values)\n\n",
              static_cast<unsigned long long>(kKeys));
  Table t({"concurrency", "direct Kget/s", "direct us", "offload Kget/s", "offload us",
           "offload+path3 Kget/s"});
  for (int c : {1, 4, 16, 64, 144}) {
    const Result direct = RunDirect(c);
    const Result off = RunOffload(c, false);
    const Result off3 = RunOffload(c, true);
    t.Row().Add(c);
    t.Add(direct.kgets, 0).Add(direct.avg_us, 2);
    t.Add(off.kgets, 0).Add(off.avg_us, 2);
    t.Add(off3.kgets, 0);
  }
  t.Print(std::cout, flags.csv());
  std::printf("\nlesson (paper §4): offload wins latency, one-sided wins peak\n"
              "throughput once the SoC saturates - concurrently use both paths.\n");
  return 0;
}
