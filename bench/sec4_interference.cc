// §4: concurrent inter- and intra-machine communication (① + ③).
//
// Uncontrolled host<->SoC traffic steals PCIe1 bandwidth, NIC pipeline
// slots, and host-completer capacity from the network path; the paper's
// rule is to cap path-③ demand at P − N (PCIe minus network ≈ 56 Gbps on
// this testbed). This bench shows (a) the small-request interference and
// (b) the bandwidth budget at 4 KB payloads with opposite-direction
// network flows.
#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/model/bounds.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/meter.h"
#include "src/topo/server.h"
#include "src/workload/client.h"
#include "src/workload/harness.h"
#include "src/workload/local_requester.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

// Opposite-direction network flows (READ+WRITE) on path ① plus a paced H2S
// stream; returns {network Gbps, path3 Gbps}.
std::pair<double, double> BudgetRun(double path3_gbps) {
  Simulator sim;
  const TestbedParams tp;
  Fabric fabric(&sim, tp.network_link_propagation, tp.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, tp);
  ClientParams cp;
  auto clients = MakeClients(&sim, &fabric, cp, 8);
  Meter net_meter(&sim);
  Meter p3_meter(&sim);
  const SimTime warm = FromMicros(60);
  const SimTime win = FromMicros(400);
  net_meter.SetWindow(warm, warm + win);
  p3_meter.SetWindow(warm, warm + win);
  TargetSpec read;
  read.engine = &bf.nic();
  read.endpoint = bf.host_ep();
  read.server_port = bf.port();
  read.verb = Verb::kRead;
  read.payload = 4096;
  TargetSpec write = read;
  write.verb = Verb::kWrite;
  uint64_t seed = 1;
  for (size_t i = 0; i < clients.size(); ++i) {
    clients[i]->Start(i % 2 == 0 ? read : write,
                      AddressGenerator(0, 10ull * 1024 * kMiB, 64, seed++), &net_meter);
  }
  std::unique_ptr<LocalRequester> h2s;
  if (path3_gbps > 0) {
    LocalRequesterParams p = LocalRequesterParams::Host();
    p.paced_gbps = path3_gbps;
    h2s = std::make_unique<LocalRequester>(&sim, &bf.nic(), bf.host_ep(), bf.soc_ep(), p,
                                           "h2s");
    h2s->Start(Verb::kWrite, 4096, AddressGenerator(0, 10ull * 1024 * kMiB, 64, 77),
               &p3_meter);
  }
  sim.RunUntil(warm + win);
  return {net_meter.Gbps(), p3_meter.Gbps()};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  HarnessConfig cfg;
  cfg.client_machines = 11;

  struct VerbRow {
    Verb verb;
    const char* paper;
  };
  const std::vector<VerbRow> verbs = {VerbRow{Verb::kRead, "7-15"},
                                      VerbRow{Verb::kWrite, "4-27"},
                                      VerbRow{Verb::kSend, "9-14"}};

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep_a(jobs);
  for (const VerbRow& v : verbs) {
    const Verb verb = v.verb;
    sweep_a.Add([verb, cfg] { return MeasureInterference(verb, 64, false, cfg).mreqs; });
    sweep_a.Add([verb, cfg] { return MeasureInterference(verb, 64, true, cfg).mreqs; });
  }
  const std::vector<double> part_a = sweep_a.Run();

  std::printf("== §4(a): small-request interference of (3)H2S on (1) ==\n");
  Table t({"verb", "(1) alone Mreq/s", "(1)+(3)H2S Mreq/s", "drop %", "paper drop %"});
  size_t k = 0;
  for (const VerbRow& v : verbs) {
    const double clean = part_a[k++];
    const double loaded = part_a[k++];
    t.Row().Add(VerbName(v.verb)).Add(clean, 1).Add(loaded, 1);
    t.Add((1.0 - loaded / clean) * 100.0, 1).Add(v.paper);
  }
  t.Print(std::cout, flags.csv());

  std::printf("\n== §4(b): the P - N budget (opposite-direction (1) + paced (3)) ==\n");
  const double budget = SafePath3BudgetGbps(TestbedParams());
  const std::vector<double> demands = {0.0, budget, 2.5 * budget};
  runtime::SweepQueue<std::pair<double, double>> sweep_b(jobs);
  for (double demand : demands) {
    sweep_b.Add([demand] { return BudgetRun(demand); });
  }
  const std::vector<std::pair<double, double>> part_b = sweep_b.Run();

  Table b({"path3 demand", "net Gbps", "path3 Gbps", "total Gbps"});
  for (size_t i = 0; i < demands.size(); ++i) {
    const auto [net, p3] = part_b[i];
    b.Row().Add(demands[i], 0).Add(net, 1).Add(p3, 1).Add(net + p3, 1);
  }
  b.Print(std::cout, flags.csv());
  std::printf("\npaper: with (3) restricted to P - N = %.0f Gbps, the aggregate can\n"
              "reach ~456 Gbps; uncontrolled (3) throttles the network path.\n",
              budget);
  return 0;
}
