// Figure 4 (upper): end-to-end latency of random inbound RDMA requests vs.
// payload, for every communication path.
//
// Paper series: RNIC①, SNIC①, SNIC②, SNIC③(S2H), SNIC③(H2S) for READ,
// WRITE, SEND/RECV. One requester, one outstanding op (paper §3 setup).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

double LocalLatency(bool s2h, Verb verb, uint32_t payload, const fault::FaultPlan& faults) {
  LocalRequesterParams p = s2h ? LocalRequesterParams::Soc() : LocalRequesterParams::Host();
  p.threads = 1;
  p.window = 1;
  HarnessConfig cfg = HarnessConfig::Latency();
  cfg.faults = faults;
  return MeasureLocalPath(s2h, verb, payload, p, cfg).p50_us;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t max_payload =
      flags.GetInt("max-payload", 16384, "largest payload in the sweep");
  const std::string trace =
      flags.GetString("trace", "", "trace JSON output (SNIC(1) READ 64B run)");
  const std::string metrics =
      flags.GetString("metrics", "", "metrics JSON output (SNIC(1) READ 64B run)");
  const int jobs = runtime::JobsFlag(flags);
  const int sim_threads = runtime::SimThreadsFlag(flags);
  const fault::FaultPlan faults = fault::FaultsFlag(flags);
  flags.Finish();

  const std::vector<uint32_t> payloads = {8, 16, 64, 256, 512, 1024, 4096, 16384};
  HarnessConfig lat = HarnessConfig::Latency();
  lat.faults = faults;
  lat.sim_threads = sim_threads;

  // Pass 1: enqueue every cell's experiment in exactly the order the table
  // pass below consumes them, so --jobs=N output is byte-identical.
  runtime::SweepQueue<double> sweep(jobs);
  for (Verb verb : {Verb::kRead, Verb::kWrite, Verb::kSend}) {
    for (uint32_t p : payloads) {
      if (p > static_cast<uint64_t>(max_payload)) {
        continue;
      }
      HarnessConfig snic1 = lat;
      if (verb == Verb::kRead && p == 64) {
        snic1.trace_path = trace;
        snic1.metrics_path = metrics;
      }
      sweep.Add([verb, p, lat] {
        return MeasureInboundPath(ServerKind::kRnicHost, verb, p, lat).p50_us;
      });
      sweep.Add([verb, p, snic1] {
        return MeasureInboundPath(ServerKind::kBluefieldHost, verb, p, snic1).p50_us;
      });
      sweep.Add([verb, p, lat] {
        return MeasureInboundPath(ServerKind::kBluefieldSoc, verb, p, lat).p50_us;
      });
      sweep.Add([verb, p, faults] { return LocalLatency(/*s2h=*/true, verb, p, faults); });
      sweep.Add([verb, p, faults] { return LocalLatency(/*s2h=*/false, verb, p, faults); });
    }
  }
  const std::vector<double> results = sweep.Run();

  // Pass 2: consume in the same order.
  size_t k = 0;
  for (Verb verb : {Verb::kRead, Verb::kWrite, Verb::kSend}) {
    std::printf("== Figure 4 (upper): %s latency (us, p50) ==\n", VerbName(verb));
    Table t({"payload", "RNIC(1)", "SNIC(1)", "SNIC(2)", "SNIC(3)S2H", "SNIC(3)H2S"});
    for (uint32_t p : payloads) {
      if (p > static_cast<uint64_t>(max_payload)) {
        continue;
      }
      t.Row().Add(FormatBytes(p));
      for (int col = 0; col < 5; ++col) {
        t.Add(results[k++], 2);
      }
    }
    t.Print(std::cout, flags.csv());
    std::printf("\n");
  }
  std::printf("paper bands: SNIC(1) READ +15-30%% / WRITE +15-21%% / SEND +6-9%% vs "
              "RNIC(1); SNIC(2) READ up to -14%% vs SNIC(1); S2H highest.\n");
  return 0;
}
