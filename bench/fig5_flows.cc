// Figure 5: peak total bandwidth of flow combinations on each path.
//
// Opposite-direction flows (READ pulls data out while WRITE pushes data in)
// multiplex both directions of every link and approach 2x the one-way limit
// on paths ① and ②; path ③ crosses PCIe1 in both directions per transfer
// and cannot double up (paper §3.1/§3.3, Fig. 5(b)).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t payload = flags.GetInt("payload", 4096, "payload bytes (paper: 4KB)");
  const int64_t clients = flags.GetInt("clients", 8, "requester machines");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  HarnessConfig cfg;
  cfg.client_machines = static_cast<int>(clients);
  cfg.warmup = FromMicros(60);
  cfg.window = FromMicros(400);
  const uint32_t p = static_cast<uint32_t>(payload);

  struct Row {
    const char* name;
    ServerKind kind;
    const char* paper;
  };
  const std::vector<Row> rows = {
      Row{"RNIC(1)", ServerKind::kRnicHost, "~190 / ~190 / ~364"},
      Row{"SNIC(1)", ServerKind::kBluefieldHost, "~190 / ~190 / ~364"},
      Row{"SNIC(2)", ServerKind::kBluefieldSoc, "~190 / ~190 / ~364"}};

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  for (const Row& row : rows) {
    const ServerKind kind = row.kind;
    sweep.Add([kind, p, cfg] {
      return MeasureFlowCombination(kind, Verb::kRead, Verb::kRead, p, cfg);
    });
    sweep.Add([kind, p, cfg] {
      return MeasureFlowCombination(kind, Verb::kWrite, Verb::kWrite, p, cfg);
    });
    sweep.Add([kind, p, cfg] {
      return MeasureFlowCombination(kind, Verb::kRead, Verb::kWrite, p, cfg);
    });
  }
  sweep.Add([p, cfg] { return MeasureLocalFlowCombination(/*opposite=*/false, p, cfg); });
  sweep.Add([p, cfg] { return MeasureLocalFlowCombination(/*opposite=*/true, p, cfg); });
  const std::vector<double> results = sweep.Run();

  Table t({"path", "READ+READ", "WRITE+WRITE", "READ+WRITE", "paper"});
  size_t k = 0;
  for (const Row& row : rows) {
    t.Row().Add(row.name);
    t.Add(results[k++], 1);
    t.Add(results[k++], 1);
    t.Add(results[k++], 1);
    t.Add(row.paper);
  }
  // Path ③: same-direction pair vs. opposite-direction pair of host<->SoC
  // streams (both verbs are WRITE-shaped pushes at this payload).
  t.Row().Add("SNIC(3)");
  t.Add(results[k++], 1);
  t.Add("-");
  t.Add(results[k++], 1);
  t.Add("~204 both: no doubling");
  t.Print(std::cout, flags.csv());

  std::printf("\nGbps of payload, both directions summed. The READ+WRITE column of\n"
              "paths (1)/(2) should approach twice the same-direction columns; the\n"
              "path (3) columns should match each other.\n");
  return 0;
}
