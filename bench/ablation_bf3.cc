// §5 Discussion ablation: does the characterization transfer to a
// BlueField-3-class SmartNIC (400 Gbps CX-7, PCIe 5.0, A78 SoC)?
//
// The paper claims the architecture — and therefore the anomalies — carry
// over, only the constants move. This bench re-runs the headline
// experiments on a BF-3 configuration and checks each qualitative result.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/topo/future.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  HarnessConfig bf2;
  HarnessConfig bf3;
  bf3.testbed = Bluefield3Testbed();
  HarnessConfig skew2 = bf2;
  skew2.address_range = 1536;
  HarnessConfig skew3 = bf3;
  skew3.address_range = 1536;

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  sweep.Add([bf2] {
    return MeasureInboundPath(ServerKind::kBluefieldHost, Verb::kRead, 64, bf2).mreqs;
  });
  sweep.Add([bf2] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 64, bf2).mreqs;
  });
  sweep.Add([bf3] {
    return MeasureInboundPath(ServerKind::kBluefieldHost, Verb::kRead, 64, bf3).mreqs;
  });
  sweep.Add([bf3] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 64, bf3).mreqs;
  });
  sweep.Add([bf2] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kWrite, 64, bf2).mreqs;
  });
  sweep.Add([skew2] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kWrite, 64, skew2).mreqs;
  });
  sweep.Add([bf3] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kWrite, 64, bf3).mreqs;
  });
  sweep.Add([skew3] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kWrite, 64, skew3).mreqs;
  });
  sweep.Add([bf2] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 8 * kMiB, bf2).gbps;
  });
  sweep.Add([bf2] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 16 * kMiB, bf2).gbps;
  });
  sweep.Add([bf3] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 8 * kMiB, bf3).gbps;
  });
  sweep.Add([bf3] {
    return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 16 * kMiB, bf3).gbps;
  });
  const std::vector<double> results = sweep.Run();

  std::printf("== BlueField-2 vs BlueField-3: do the anomalies persist? ==\n\n");
  Table t({"experiment", "BF-2", "BF-3", "anomaly persists?"});
  size_t k = 0;

  {
    const double r1_bf2 = results[k++];
    const double r2_bf2 = results[k++];
    const double r1_bf3 = results[k++];
    const double r2_bf3 = results[k++];
    char b2[64];
    char b3[64];
    std::snprintf(b2, sizeof(b2), "(2)/(1) = %.2f", r2_bf2 / r1_bf2);
    std::snprintf(b3, sizeof(b3), "(2)/(1) = %.2f", r2_bf3 / r1_bf3);
    t.Row().Add("SoC path faster for READs").Add(b2).Add(b3).Add(
        r2_bf3 > r1_bf3 ? "yes" : "no");
  }
  {
    const double wide2 = results[k++];
    const double narrow2 = results[k++];
    const double wide3 = results[k++];
    const double narrow3 = results[k++];
    char b2[64];
    char b3[64];
    std::snprintf(b2, sizeof(b2), "%.0f -> %.0f M/s", wide2, narrow2);
    std::snprintf(b3, sizeof(b3), "%.0f -> %.0f M/s", wide3, narrow3);
    t.Row().Add("Advice #1: write skew").Add(b2).Add(b3).Add(
        narrow3 < 0.7 * wide3 ? "yes" : "softened");
  }
  {
    const double ok2 = results[k++];
    const double bad2 = results[k++];
    const double ok3 = results[k++];
    const double bad3 = results[k++];
    char b2[64];
    char b3[64];
    std::snprintf(b2, sizeof(b2), "%.0f -> %.0f Gbps", ok2, bad2);
    std::snprintf(b3, sizeof(b3), "%.0f -> %.0f Gbps", ok3, bad3);
    t.Row().Add("Advice #2: >9MB READ collapse").Add(b2).Add(b3).Add(
        bad3 < 0.8 * ok3 ? "yes" : "no");
  }
  {
    const double budget2 = bf2.testbed.pcie_bandwidth.gbps() -
                           bf2.testbed.bluefield_nic.network_bandwidth.gbps();
    const double budget3 = bf3.testbed.pcie_bandwidth.gbps() -
                           bf3.testbed.bluefield_nic.network_bandwidth.gbps();
    char b2[64];
    char b3[64];
    std::snprintf(b2, sizeof(b2), "P-N = %.0f Gbps", budget2);
    std::snprintf(b3, sizeof(b3), "P-N = %.0f Gbps", budget3);
    t.Row().Add("path-3 budget rule").Add(b2).Add(b3).Add("yes (same P/N ratio)");
  }
  t.Print(std::cout, flags.csv());
  std::printf("\npaper §5: BF-3 keeps the off-path architecture, so the methodology\n"
              "and models transfer: every anomaly persists, with the same relative\n"
              "P-N budget (112/400 vs 56/200).\n");
  return 0;
}
