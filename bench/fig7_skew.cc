// Figure 7: peak one-sided throughput vs. responder address range — the
// skewed-access anomaly (Advice #1).
//
// The SoC (no DDIO, one DRAM channel) collapses as the range shrinks below
// the bank-parallelism knee; the host with DDIO stays flat; the host with
// DDIO disabled sits in between (eight channels still help).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

Measurement MeasureWithRange(ServerKind kind, Verb verb, uint64_t range, bool ddio) {
  HarnessConfig cfg;
  cfg.client_machines = 11;
  cfg.address_range = range;
  if (!ddio) {
    cfg.testbed.host_memory = MemoryParams::HostNoDdio();
  }
  return MeasureInboundPath(kind, verb, 64, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  const std::vector<uint64_t> ranges = {1536,        3 * kKiB,   6 * kKiB,  12 * kKiB,
                                        24 * kKiB,   48 * kKiB,  96 * kKiB, 1 * kMiB,
                                        64 * kMiB};
  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  for (Verb verb : {Verb::kWrite, Verb::kRead}) {
    for (uint64_t r : ranges) {
      sweep.Add([verb, r] {
        return MeasureWithRange(ServerKind::kBluefieldSoc, verb, r, true).mreqs;
      });
      sweep.Add([verb, r] {
        return MeasureWithRange(ServerKind::kBluefieldHost, verb, r, true).mreqs;
      });
      sweep.Add([verb, r] {
        return MeasureWithRange(ServerKind::kBluefieldHost, verb, r, false).mreqs;
      });
    }
  }
  const std::vector<double> results = sweep.Run();

  size_t k = 0;
  for (Verb verb : {Verb::kWrite, Verb::kRead}) {
    std::printf("== Figure 7: 64B %s throughput vs address range (M reqs/s) ==\n",
                VerbName(verb));
    Table t({"range", "SoC (SNIC 2)", "host DDIO (SNIC 1)", "host no-DDIO (SNIC 1)"});
    for (uint64_t r : ranges) {
      t.Row().Add(FormatBytes(r));
      t.Add(results[k++], 1);
      t.Add(results[k++], 1);
      t.Add(results[k++], 1);
    }
    t.Print(std::cout, flags.csv());
    std::printf("\n");
  }
  std::printf("paper: SoC WRITE 77.9 -> 22.7 M reqs/s and READ 85 -> 50 M reqs/s as the\n"
              "range shrinks from 48KB to 1.5KB; DDIO host is hardly affected.\n");
  return 0;
}
