// Figure 12 (ours): the adaptive path-selection governor on the scale-out
// KV serving workload, against both static deployments and the
// full-knowledge oracle, across a skew x value-size-mixture sweep.
//
// The serving host pool is deliberately small (--host-cores, default 2) so
// the paper's regime is visible: a pressured host pool makes path ② real
// extra capacity rather than a strictly slower detour. The governor splits
// traffic using the paper's advices — HoL gate above 9 MiB, P−N path-③
// budget, SoC in-flight cap, doorbell-batch-aware priors — plus its epoch
// EWMA feedback, and must match-or-beat the better static policy at every
// sweep point and strictly beat both statics somewhere.
//
// A second section sweeps a single value size across the HoL threshold and
// prints the governor's SoC share per size: the routing flip the README
// walkthrough points at. Pass --trace=PATH to capture a Chrome trace of the
// last below-threshold point (both paths active).
//
// --check replays the whole grid at --jobs=1 and at --jobs=N, and replays a
// faulted grid (frame drops + retransmits) the same way, asserting every
// ServingResult fingerprint is byte-identical — the sweep-level determinism
// contract — and then asserts the dominance properties above.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/governor/serving.h"
#include "src/runtime/sweep_runner.h"

using namespace snicsim;  // NOLINT: bench brevity
using governor::PolicyKind;
using governor::RunServing;
using governor::ServingResult;
using governor::ServingRunConfig;

namespace {

struct MixSpec {
  const char* name;
  std::vector<uint32_t> class_bytes;
  std::vector<double> weights;
  // Fleet size per mix: enough clients to saturate the serving side, but
  // near the knee — not 10x past it, where every policy just measures its
  // own unbounded queue and the feedback signals are pure ramp transient.
  int logical_clients;
};

const std::vector<MixSpec>& Mixes() {
  static const std::vector<MixSpec> kMixes = {
      {"64B", {64}, {1.0}, 192},
      {"64B/4K", {64, 4096}, {0.7, 0.3}, 192},
      {"4K/64K", {4096, 65536}, {0.8, 0.2}, 24},
  };
  return kMixes;
}

const std::vector<PolicyKind>& Policies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kStaticHost, PolicyKind::kStaticSoc, PolicyKind::kOracle,
      PolicyKind::kGovernor};
  return kPolicies;
}

// The --sim-threads count, applied to every grid point (set once in main
// before the sweeps; see fig10_doorbell.cc for the pattern).
int g_sim_threads = 1;

ServingRunConfig Base(int host_cores) {
  ServingRunConfig c;
  c.sim_threads = g_sim_threads;
  c.client.threads = 4;
  c.fleet.machines = 2;
  c.fleet.logical_clients = 192;
  c.fleet.window = 1;
  c.fleet.seed = 42;
  c.layout.keys = 4096;
  c.layout.cached_keys = 1024;
  c.host_cores = host_cores;
  c.warmup = FromMicros(30);
  c.window = FromMicros(150);
  return c;
}

ServingRunConfig GridPoint(double theta, const MixSpec& mix, PolicyKind policy,
                           const fault::FaultPlan& plan, int host_cores) {
  ServingRunConfig c = Base(host_cores);
  c.zipf_theta = theta;
  c.layout.class_bytes = mix.class_bytes;
  c.mix.weights = mix.weights;
  c.fleet.logical_clients = mix.logical_clients;
  c.policy = policy;
  if (!plan.empty()) {
    c.faults = plan;
    c.client.transport_timeout = FromMicros(20);
  }
  return c;
}

// Runs the full (theta x mix x policy) grid on `jobs` workers, results in
// submission order: point-major, Policies() order within each point.
std::vector<ServingResult> RunGrid(const std::vector<double>& thetas, int jobs,
                                   const fault::FaultPlan& plan, int host_cores,
                                   bool governor_only) {
  runtime::SweepQueue<ServingResult> sweep(jobs);
  for (double theta : thetas) {
    for (const MixSpec& mix : Mixes()) {
      for (PolicyKind policy : Policies()) {
        if (governor_only && policy != PolicyKind::kGovernor) {
          continue;
        }
        const ServingRunConfig c = GridPoint(theta, mix, policy, plan, host_cores);
        sweep.Add([c] { return RunServing(c); });
      }
    }
  }
  return sweep.Run();
}

// The HoL-flip section: one value size per run, swept across the 9 MiB
// threshold with a small fleet (large replies, few ops needed).
ServingRunConfig FlipPoint(uint32_t bytes, int host_cores) {
  ServingRunConfig c = Base(host_cores);
  c.fleet.machines = 1;
  c.fleet.logical_clients = 8;
  c.layout.class_bytes = {bytes};
  c.mix = SizeMixture::Single();
  c.window = FromMicros(250);
  return c;
}

std::string JoinFingerprints(const std::vector<ServingResult>& rs) {
  std::string s;
  for (const ServingResult& r : rs) {
    s += r.Fingerprint();
    s.push_back('\n');
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Full fault-plan grammar (drop=…,flap=…,crash=…; a bare number is
  // shorthand for a uniform drop rate, so --faults=0.02 keeps working).
  const fault::FaultPlan faults = fault::FaultsFlag(flags);
  const bool check = flags.GetBool("check", false,
                                   "assert dominance + --jobs/fault determinism");
  const std::string trace =
      flags.GetString("trace", "", "Chrome trace of the 8 MiB flip point");
  const int64_t host_cores = flags.GetInt("host-cores", 2, "serving host pool size");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  flags.Finish();

  const std::vector<double> thetas = {0.6, 0.99};
  const int hc = static_cast<int>(host_cores);

  const std::vector<ServingResult> grid =
      RunGrid(thetas, jobs, faults, hc, /*governor_only=*/false);

  std::printf("== Figure 12: governor vs static paths vs oracle "
              "(%d-core host pool%s) ==\n",
              hc, !faults.empty() ? ", faulted" : "");
  Table t({"theta", "mix", "host mreqs", "soc mreqs", "oracle", "governor",
           "gov p99us", "gov soc%", "winner"});
  bool dominated_everywhere = true;
  bool strict_win_somewhere = false;
  size_t k = 0;
  for (double theta : thetas) {
    for (const MixSpec& mix : Mixes()) {
      const ServingResult& host = grid[k++];
      const ServingResult& soc = grid[k++];
      const ServingResult& oracle = grid[k++];
      const ServingResult& gov = grid[k++];
      const double best_static = std::max(host.mreqs, soc.mreqs);
      // Small tolerance: where one static is already optimal the governor
      // still pays its ε-exploration floor.
      if (gov.mreqs < best_static * 0.95) {
        dominated_everywhere = false;
      }
      if (gov.mreqs > host.mreqs && gov.mreqs > soc.mreqs) {
        strict_win_somewhere = true;
      }
      t.Row()
          .Add(theta, 2)
          .Add(mix.name)
          .Add(host.mreqs, 3)
          .Add(soc.mreqs, 3)
          .Add(oracle.mreqs, 3)
          .Add(gov.mreqs, 3)
          .Add(gov.p99_us, 2)
          .Add(100.0 * gov.share_soc, 1)
          .Add(gov.mreqs >= best_static
                   ? "governor"
                   : (host.mreqs >= soc.mreqs ? "static-host" : "static-soc"));
    }
  }
  t.Print(std::cout, flags.csv());

  // The routing flip at the HoL size threshold (advice #2 as a gate): SoC
  // share collapses to exactly zero once the value crosses 9 MiB.
  std::printf("\n== Governor SoC share vs value size across the HoL threshold ==\n");
  const std::vector<uint32_t> flip_bytes = {1u * kMiB, 4u * kMiB, 8u * kMiB,
                                            16u * kMiB};
  runtime::SweepQueue<ServingResult> flip_sweep(jobs);
  for (uint32_t bytes : flip_bytes) {
    ServingRunConfig c = FlipPoint(bytes, hc);
    if (!trace.empty() && bytes == 8u * kMiB) {
      c.trace_path = trace;  // last point with both paths in play
    }
    flip_sweep.Add([c] { return RunServing(c); });
  }
  const std::vector<ServingResult> flip = flip_sweep.Run();
  Table ft({"value", "issued", "soc%", "hol_gated", "draws"});
  bool flip_ok = true;
  for (size_t i = 0; i < flip_bytes.size(); ++i) {
    const ServingResult& r = flip[i];
    const bool above = flip_bytes[i] > 9 * kMiB;
    // The gate's signature: above the threshold every request is HoL-gated
    // to the host and the RNG is never consulted; below it requests stay
    // score-routed (and explorable) — hol_gated exactly zero.
    if (above ? (r.share_soc != 0.0 || r.hol_gated != r.issued || r.draws != 0)
              : (r.hol_gated != 0 || r.draws != r.issued)) {
      flip_ok = false;
    }
    ft.Row()
        .Add(FormatBytes(flip_bytes[i]))
        .Add(r.issued)
        .Add(100.0 * r.share_soc, 1)
        .Add(r.hol_gated)
        .Add(r.draws);
  }
  ft.Print(std::cout, flags.csv());
  if (!trace.empty()) {
    std::printf("trace of the 8 MiB point written to %s\n", trace.c_str());
  }
  std::printf("expected: SoC share > 0 below 9 MiB, exactly 0 (all requests "
              "HoL-gated, zero random draws) above it.\n");

  if (!check) {
    return 0;
  }

  // Determinism: the whole grid must be byte-identical at --jobs=1 and at
  // --jobs=N, fault-free and under a nonzero fault plan.
  std::printf("\n== --check: determinism + dominance ==\n");
  bool ok = true;
  const std::string serial = JoinFingerprints(
      RunGrid(thetas, /*jobs=*/1, faults, hc, /*governor_only=*/false));
  if (serial != JoinFingerprints(grid)) {
    std::printf("FAIL: grid fingerprints differ between --jobs=1 and --jobs=%d\n",
                jobs);
    ok = false;
  }
  fault::FaultPlan fault_plan = faults;
  if (fault_plan.empty()) {
    fault_plan.drop_rate = 0.02;
    fault_plan.seed = 7;
  }
  const std::string faulted_serial = JoinFingerprints(
      RunGrid(thetas, /*jobs=*/1, fault_plan, hc, /*governor_only=*/true));
  const std::string faulted_parallel = JoinFingerprints(
      RunGrid(thetas, jobs, fault_plan, hc, /*governor_only=*/true));
  if (faulted_serial != faulted_parallel) {
    std::printf("FAIL: faulted grid fingerprints differ across --jobs\n");
    ok = false;
  }
  if (!dominated_everywhere) {
    std::printf("FAIL: governor fell >5%% below the best static at some point\n");
    ok = false;
  }
  if (!strict_win_somewhere) {
    std::printf("FAIL: governor never strictly beat both statics\n");
    ok = false;
  }
  if (!flip_ok) {
    std::printf("FAIL: HoL routing flip not clean at the 9 MiB threshold\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "CHECK PASSED: governor >= best static everywhere, "
                           "strict win somewhere, byte-identical across --jobs "
                           "and under faults"
                         : "CHECK FAILED");
  return ok ? 0 : 1;
}
