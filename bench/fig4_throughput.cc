// Figure 4 (lower): peak throughput of random inbound RDMA requests vs.
// payload, for every path plus the concurrent combinations ①+② and ①+③.
//
// Up to eleven requester machines saturate the responder (paper §3 setup).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

Measurement Local(bool s2h, Verb verb, uint32_t payload, const HarnessConfig& cfg) {
  LocalRequesterParams p = s2h ? LocalRequesterParams::Soc() : LocalRequesterParams::Host();
  if (s2h) {
    p.doorbell_batch = true;  // the sane configuration on the SoC (Advice #4)
    p.batch = 32;
  }
  return MeasureLocalPath(s2h, verb, payload, p, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t clients = flags.GetInt("clients", 11, "requester machines");
  const bool small_only = flags.GetBool("small-only", false, "only payloads < 1 KB");
  const int jobs = runtime::JobsFlag(flags);
  const int sim_threads = runtime::SimThreadsFlag(flags);
  const fault::FaultPlan faults = fault::FaultsFlag(flags);
  flags.Finish();

  HarnessConfig cfg;
  cfg.client_machines = static_cast<int>(clients);
  cfg.faults = faults;
  cfg.sim_threads = sim_threads;

  std::vector<uint32_t> payloads = {8, 16, 64, 256, 512, 1024, 4096, 16384, 65536};
  if (small_only) {
    payloads = {8, 16, 64, 256, 512};
  }

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<Measurement> sweep(jobs);
  for (Verb verb : {Verb::kRead, Verb::kWrite, Verb::kSend}) {
    for (uint32_t p : payloads) {
      sweep.Add([verb, p, cfg] {
        return MeasureInboundPath(ServerKind::kRnicHost, verb, p, cfg);
      });
      sweep.Add([verb, p, cfg] {
        return MeasureInboundPath(ServerKind::kBluefieldHost, verb, p, cfg);
      });
      sweep.Add([verb, p, cfg] {
        return MeasureInboundPath(ServerKind::kBluefieldSoc, verb, p, cfg);
      });
      sweep.Add([verb, p, cfg] { return MeasureConcurrentInbound(verb, p, cfg); });
      sweep.Add([verb, p, cfg] { return Local(true, verb, p, cfg); });
      sweep.Add([verb, p, cfg] { return Local(false, verb, p, cfg); });
    }
  }
  const std::vector<Measurement> results = sweep.Run();

  size_t k = 0;
  for (Verb verb : {Verb::kRead, Verb::kWrite, Verb::kSend}) {
    std::printf("== Figure 4 (lower): %s peak throughput (M reqs/s) ==\n", VerbName(verb));
    Table t({"payload", "RNIC(1)", "SNIC(1)", "SNIC(2)", "SNIC(1+2)", "SNIC(3)S2H",
             "SNIC(3)H2S", "SNIC(1)gbps"});
    for (uint32_t p : payloads) {
      const Measurement& rnic = results[k++];
      const Measurement& snic1 = results[k++];
      const Measurement& snic2 = results[k++];
      const Measurement& both = results[k++];
      const Measurement& s2h = results[k++];
      const Measurement& h2s = results[k++];
      t.Row().Add(FormatBytes(p));
      t.Add(rnic.mreqs, 1).Add(snic1.mreqs, 1).Add(snic2.mreqs, 1).Add(both.mreqs, 1);
      t.Add(s2h.mreqs, 1).Add(h2s.mreqs, 1);
      t.Add(snic1.gbps, 1);
    }
    t.Print(std::cout, flags.csv());
    std::printf("\n");
  }
  std::printf(
      "paper bands (<512B): SNIC(1) vs RNIC(1): READ -19-26%%, WRITE -15-22%%, "
      "SEND -3-36%%; SNIC(2)/SNIC(1): 1.08-1.48x (READ can beat RNIC); SEND(2) "
      "up to -64%%; (3) READ: ~29M S2H / ~51M H2S.\n");
  return 0;
}
