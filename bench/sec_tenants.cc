// Multi-tenant SmartNIC-as-a-service isolation (ours): several tenants'
// offload pipelines (src/offload/tenancy.h) consolidated onto one BlueField
// SoC next to the governed KV serving plane, swept over an
// aggressor-load x isolation-arm grid.
//
// Three tenants share the server by default:
//   victim — a filter/scan tenant (host-resident records scanned on the
//            SoC, ~35% cross back) with a latency SLO;
//   agg    — a compression tenant with a high WRR weight and a swept
//            offered load, either uncapped or held to a per-tenant
//            admission cap (the isolation backstop under test);
//   kvtel  — a kv telemetry tenant whose sketch items ride the serving
//            path's real served stream, SLO-checked on request latency.
//
// Uncapped, the aggressor's high weight lets it drown the shared SoC pool:
// the victim's completions go late and its SLO-violation fraction blows
// through the budget. Capped, the aggressor's surplus is shed at *its own*
// admission gate and the victim stays inside its SLO at every offered
// load — per-tenant token buckets turn weighted sharing into isolation.
//
// --check replays every cell at --jobs=1 asserting byte-identical
// (serving + tenant) fingerprints, closes every per-tenant conservation
// ledger (generated == admitted + shed, admitted == completed + failed)
// and the serving ledger, and — on fault-free runs — asserts the isolation
// contrast above. With --faults (or --tenants overriding the tenant set)
// the structural assertions still run; the isolation contrast is only
// asserted for the default fault-free grid.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/governor/serving.h"
#include "src/offload/tenant_config.h"
#include "src/runtime/sweep_runner.h"

using namespace snicsim;  // NOLINT: bench brevity
using governor::PolicyKind;
using governor::RunServing;
using governor::ServingResult;
using governor::ServingRunConfig;
using offload::TenantKindName;
using offload::TenantResult;
using offload::TenantSetConfig;
using offload::TenantSpec;

namespace {

int g_sim_threads = 1;

constexpr double kSloUs = 40.0;

// Serving plane below its knee: the KV side must stay healthy so the sweep
// isolates tenant-on-tenant interference, not serving overload.
ServingRunConfig Base() {
  ServingRunConfig c;
  c.sim_threads = g_sim_threads;
  c.client.threads = 4;
  c.fleet.machines = 2;
  c.fleet.logical_clients = 128;
  c.fleet.seed = 42;
  c.fleet.open_loop = true;
  c.fleet.open_mops = 1.0;
  c.layout.keys = 4096;
  c.layout.cached_keys = 1024;
  c.layout.class_bytes = {64, 128, 512, 1024};
  c.mix.weights = {0.25, 0.25, 0.25, 0.25};
  c.zipf_theta = 0.99;
  c.host_cores = 1;
  c.soc_cores = 2;
  c.policy = PolicyKind::kGovernor;
  c.resil.deadline = FromMicros(kSloUs);
  c.warmup = FromMicros(30);
  c.window = FromMicros(200);
  return c;
}

// The default tenant set: one 2-core SoC pool shared by all three tenants.
// The aggressor's 8x WRR weight is deliberate — with equal weights the
// arbiter alone would isolate the victim and the cap would have nothing to
// prove.
TenantSetConfig Tenants(double agg_mops, bool capped) {
  TenantSetConfig t;
  t.pools = {2};
  t.host_cores = 2;
  t.seed = 7;
  t.slo_budget = 0.05;
  TenantSpec victim;
  victim.id = "victim";
  victim.kind = offload::TenantKind::kFilter;
  victim.weight = 1;
  victim.mops = 0.3;
  victim.item_bytes = 2048;
  victim.slo_us = kSloUs;
  t.tenants.push_back(victim);
  TenantSpec agg;
  agg.id = "agg";
  agg.kind = offload::TenantKind::kCompress;
  agg.weight = 8;
  agg.mops = agg_mops;
  agg.item_bytes = 4096;
  agg.cap_mops = capped ? 0.2 : 0.0;
  t.tenants.push_back(agg);
  TenantSpec kvtel;
  kvtel.id = "kvtel";
  kvtel.kind = offload::TenantKind::kKv;
  kvtel.weight = 2;
  kvtel.slo_us = kSloUs;
  t.tenants.push_back(kvtel);
  return t;
}

ServingRunConfig Cell(double agg_mops, bool capped,
                      const fault::FaultPlan& plan) {
  ServingRunConfig c = Base();
  c.tenants = Tenants(agg_mops, capped);
  if (!plan.empty()) {
    c.faults = plan;
  }
  return c;
}

std::vector<ServingResult> RunCells(const std::vector<ServingRunConfig>& cells,
                                    int jobs) {
  runtime::SweepQueue<ServingResult> sweep(jobs);
  for (const ServingRunConfig& c : cells) {
    sweep.Add([c] { return RunServing(c); });
  }
  return sweep.Run();
}

// Replay digest of one cell: the serving fingerprint (pinned by goldens)
// plus the tenant-set fingerprint (new surface).
std::string JoinFingerprints(const std::vector<ServingResult>& rs) {
  std::string s;
  for (const ServingResult& r : rs) {
    s += r.Fingerprint();
    s.push_back('+');
    s += r.tenants.Fingerprint();
    s.push_back('\n');
  }
  return s;
}

bool Conserved(const ServingResult& r, const char* label) {
  bool ok = true;
  if (r.generated != r.issued - r.hedges + r.shed) {
    std::printf("FAIL(%s): serving generated %llu != issued %llu - hedges "
                "%llu + shed %llu\n",
                label, static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.hedges),
                static_cast<unsigned long long>(r.shed));
    ok = false;
  }
  if (r.issued != r.completed + r.failed + r.cancelled) {
    std::printf("FAIL(%s): serving issued %llu != completed %llu + failed "
                "%llu + cancelled %llu\n",
                label, static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.cancelled));
    ok = false;
  }
  for (const TenantResult& t : r.tenants.tenants) {
    if (!t.LedgerClosed()) {
      std::printf("FAIL(%s): tenant '%s' ledger open: generated %llu "
                  "admitted %llu shed %llu completed %llu failed %llu\n",
                  label, t.id.c_str(),
                  static_cast<unsigned long long>(t.generated),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.failed));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const fault::FaultPlan plan = fault::FaultsFlag(flags);
  const TenantSetConfig custom = offload::TenantsFlag(flags);
  const bool check = flags.GetBool(
      "check", false,
      "assert SLO isolation under caps, closed ledgers, --jobs determinism");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  flags.Finish();

  const std::vector<double> loads = {0.2, 0.4, 0.8};
  std::vector<ServingRunConfig> cells;
  for (double mops : loads) {
    cells.push_back(Cell(mops, /*capped=*/false, plan));
    cells.push_back(Cell(mops, /*capped=*/true, plan));
  }
  if (!custom.empty()) {
    // A user-supplied tenant set rides along as one extra cell; structural
    // checks apply, the isolation contrast does not.
    ServingRunConfig c = Base();
    c.tenants = custom;
    if (!plan.empty()) {
      c.faults = plan;
    }
    cells.push_back(c);
  }
  const std::vector<ServingResult> results = RunCells(cells, jobs);

  const double budget = Tenants(0.0, false).slo_budget;
  std::printf("== Tenant isolation: aggressor load x {uncapped, capped} "
              "(victim SLO %.0f us, budget %.0f%%) ==\n",
              kSloUs, 100.0 * budget);
  Table t({"agg mops", "arm", "vic gen", "vic shed", "vic done", "vic vio",
           "vic vio%", "vic p99us", "agg admit", "agg shed", "kv vio%",
           "t3 KB"});
  std::vector<double> uncapped_vio(loads.size()), capped_vio(loads.size());
  for (size_t i = 0; i < loads.size(); ++i) {
    for (int arm = 0; arm < 2; ++arm) {
      const ServingResult& r = results[2 * i + static_cast<size_t>(arm)];
      const TenantResult* vic = r.tenants.Find("victim");
      const TenantResult* agg = r.tenants.Find("agg");
      const TenantResult* kvt = r.tenants.Find("kvtel");
      if (vic == nullptr || agg == nullptr || kvt == nullptr) {
        std::printf("missing tenant results\n");
        return 1;
      }
      const double vio = vic->ViolationFraction();
      (arm == 0 ? uncapped_vio : capped_vio)[i] = vio;
      uint64_t t3 = 0;
      for (const TenantResult& tr : r.tenants.tenants) {
        t3 += tr.path3_bytes;
      }
      t.Row()
          .Add(loads[i], 2)
          .Add(arm == 0 ? "uncapped" : "capped")
          .Add(vic->generated)
          .Add(vic->shed)
          .Add(vic->completed)
          .Add(vic->violations)
          .Add(100.0 * vio, 1)
          .Add(vic->p99_us, 1)
          .Add(agg->admitted)
          .Add(agg->shed)
          .Add(100.0 * kvt->ViolationFraction(), 1)
          .Add(static_cast<double>(t3) / 1024.0, 0);
    }
  }
  t.Print(std::cout, flags.csv());
  std::printf("expected: capped arms hold the victim inside its SLO budget "
              "at every aggressor load (the surplus is shed at the "
              "aggressor's own gate); the uncapped arm's high-weight "
              "aggressor drowns the shared pool at the top load and the "
              "victim's violation fraction blows through the budget.\n");

  if (!custom.empty()) {
    const ServingResult& r = results.back();
    std::printf("\n== --tenants override ==\n");
    Table ct({"tenant", "kind", "gen", "admit", "shed", "done", "failed",
              "filtered", "vio", "p99us", "grants", "busy_us"});
    for (const TenantResult& tr : r.tenants.tenants) {
      ct.Row()
          .Add(tr.id.c_str())
          .Add(TenantKindName(tr.kind))
          .Add(tr.generated)
          .Add(tr.admitted)
          .Add(tr.shed)
          .Add(tr.completed)
          .Add(tr.failed)
          .Add(tr.filtered)
          .Add(tr.violations)
          .Add(tr.p99_us, 1)
          .Add(tr.grants)
          .Add(tr.busy_us, 1);
    }
    ct.Print(std::cout, flags.csv());
  }

  if (!check) {
    return 0;
  }

  std::printf("\n== --check: determinism + ledgers + isolation ==\n");
  bool ok = true;

  // Determinism: every cell byte-identical between --jobs=1 and --jobs=N,
  // serving and tenant digests both.
  const std::string serial = JoinFingerprints(RunCells(cells, /*jobs=*/1));
  if (serial != JoinFingerprints(results)) {
    std::printf("FAIL: fingerprints differ between --jobs=1 and --jobs=%d\n",
                jobs);
    ok = false;
  }

  for (size_t i = 0; i < results.size(); ++i) {
    const std::string label = "cell " + std::to_string(i);
    ok = Conserved(results[i], label.c_str()) && ok;
  }

  // Isolation contrast (default fault-free grid only: a fault plan or a
  // custom tenant set changes what "isolated" means).
  if (plan.empty()) {
    for (size_t i = 0; i < loads.size(); ++i) {
      if (capped_vio[i] > budget) {
        std::printf("FAIL: capped victim violation fraction %.3f > budget "
                    "%.3f at %.2f Mops\n",
                    capped_vio[i], budget, loads[i]);
        ok = false;
      }
    }
    if (uncapped_vio.back() <= budget) {
      std::printf("FAIL: uncapped aggressor at %.2f Mops did not push the "
                  "victim past the budget (%.3f <= %.3f)\n",
                  loads.back(), uncapped_vio.back(), budget);
      ok = false;
    }
    const TenantResult* capped_agg =
        results[2 * loads.size() - 1].tenants.Find("agg");
    if (capped_agg != nullptr && capped_agg->shed_bucket == 0) {
      std::printf("FAIL: capped aggressor shed nothing at the top load\n");
      ok = false;
    }
  }

  std::printf("%s\n", ok ? "CHECK PASSED: byte-identical across --jobs, "
                           "per-tenant ledgers closed, victim inside its SLO "
                           "budget under caps vs blown budget uncapped"
                         : "CHECK FAILED");
  return ok ? 0 : 1;
}
