// Advice-#1 ablation with realistic skew: instead of truncating the address
// range (the paper's Fig. 7 methodology), draw record addresses from a
// YCSB-style Zipfian distribution and sweep theta. The SoC's missing DDIO
// and single DRAM channel make it progressively slower as the head of the
// distribution heats up; the DDIO host barely notices.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/rdma/verbs.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/meter.h"
#include "src/topo/server.h"
#include "src/workload/addr_gen.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

// Closed-loop 64B WRITEs against one endpoint with zipf-distributed record
// addresses; returns M reqs/s.
double Run(bool soc, double theta, bool uniform = false) {
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  ClientParams cp;
  auto clients = MakeClients(&sim, &fabric, cp, 8);
  rdma::RemoteMemoryRegion mr;
  mr.engine = &server.nic();
  mr.endpoint = soc ? server.soc_ep() : server.host_ep();
  mr.server_port = server.port();
  mr.addr = 0;
  mr.length = 8ull * kGiB;
  const uint64_t records = 1u << 14;  // a 1 MB hot table of 64 B records

  Meter meter(&sim);
  const SimTime warm = FromMicros(60);
  const SimTime win = FromMicros(200);
  meter.SetWindow(warm, warm + win);
  int qp_seq = 0;
  std::vector<std::unique_ptr<rdma::QueuePair>> qps;
  std::vector<std::shared_ptr<ZipfGenerator>> zipfs;
  std::vector<std::shared_ptr<Rng>> rngs;
  for (auto& machine : clients) {
    for (int t = 0; t < cp.threads; ++t) {
      qps.push_back(std::make_unique<rdma::QueuePair>(machine.get(), t, mr));
      zipfs.push_back(std::make_shared<ZipfGenerator>(
          records, theta, 1234 + static_cast<uint64_t>(qp_seq)));
      rngs.push_back(std::make_shared<Rng>(99 + static_cast<uint64_t>(qp_seq)));
      rdma::QueuePair* qp = qps.back().get();
      auto zipf = zipfs.back();
      auto rng = rngs.back();
      for (int w = 0; w < 8; ++w) {
        auto loop = std::make_shared<std::function<void()>>();
        *loop = [&meter, qp, zipf, rng, uniform, records, loop] {
          const uint64_t rank = uniform ? rng->NextBelow(records) : zipf->Next();
          qp->PostWrite(rank * 64, 64, 0, [&meter, loop](SimTime) {
            meter.RecordOp(64);
            (*loop)();
          });
        };
        sim.In(FromNanos(150) * qp_seq, *loop);
      }
      ++qp_seq;
    }
  }
  sim.RunUntil(warm + win);
  return meter.MReqsPerSec();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  struct Row {
    const char* name;
    double theta;
    bool uniform;
  };
  const std::vector<Row> rows = {Row{"uniform", 0.5, true}, Row{"zipf 0.70", 0.70, false},
                                 Row{"zipf 0.90", 0.90, false},
                                 Row{"zipf 0.99", 0.99, false}};

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  for (const Row& row : rows) {
    const double theta = row.theta;
    const bool uniform = row.uniform;
    sweep.Add([theta, uniform] { return Run(true, theta, uniform); });
    sweep.Add([theta, uniform] { return Run(false, theta, uniform); });
  }
  const std::vector<double> results = sweep.Run();

  std::printf("== Advice #1 under Zipfian skew: 64B WRITE peak (M reqs/s) ==\n");
  Table t({"distribution", "SoC (SNIC 2)", "host DDIO (SNIC 1)", "SoC/host"});
  size_t k = 0;
  for (const Row& row : rows) {
    const double soc = results[k++];
    const double host = results[k++];
    t.Row().Add(row.name).Add(soc, 1).Add(host, 1).Add(soc / host, 2);
  }
  t.Print(std::cout, flags.csv());
  std::printf("\nthe hotter the head, the fewer SoC DRAM banks absorb the writes;\n"
              "with DDIO the host LLC soaks them regardless (paper Advice #1).\n");
  return 0;
}
