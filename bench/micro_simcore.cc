// Microbenchmarks of the simulation kernel itself (google-benchmark): event
// throughput, queueing-primitive costs, and one full end-to-end experiment.
// These bound how much simulated time the figure benches can afford.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/mem/memory.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/workload/harness.h"

namespace snicsim {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.In(i, [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

// The pre-optimization event core (std::function payloads ordered directly
// in a binary heap of full event records, 64-bit seq), kept alive as the
// in-run reference: the CI perf gate compares BM_EventQueueThroughput
// against BM_EventQueueThroughputLegacy from the *same* process, so the
// gated quantity is the fast path's speedup over this baseline — a ratio
// that transfers across machines — not an absolute throughput that only
// held on the machine that recorded it.
class LegacyEventQueue {
 public:
  void In(int64_t delay, std::function<void()> cb) {
    heap_.push_back(Event{now_ + delay, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  void Run() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), After);
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      now_ = ev.time;
      ++processed_;
      ev.cb();
    }
  }

  uint64_t processed() const { return processed_; }

 private:
  struct Event {
    int64_t time;
    uint64_t seq;
    std::function<void()> cb;
  };
  static bool After(const Event& a, const Event& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  std::vector<Event> heap_;
  int64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

void BM_EventQueueThroughputLegacy(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEventQueue sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.In(i, [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughputLegacy)->Arg(1000)->Arg(100000);

void BM_BusyServerEnqueue(benchmark::State& state) {
  Simulator sim;
  BusyServer s(&sim, "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Enqueue(10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusyServerEnqueue);

void BM_DramAccess(benchmark::State& state) {
  Simulator sim;
  MemorySubsystem mem(&sim, "m", MemoryParams::Soc());
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Access(sim.now(), addr, 64, false));
    addr += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void BM_EndToEndExperiment(benchmark::State& state) {
  for (auto _ : state) {
    HarnessConfig cfg;
    cfg.client_machines = 4;
    cfg.warmup = FromMicros(10);
    cfg.window = FromMicros(50);
    const Measurement m =
        MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 64, cfg);
    benchmark::DoNotOptimize(m.ops);
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snicsim
