// Microbenchmarks of the simulation kernel itself (google-benchmark): event
// throughput, queueing-primitive costs, and one full end-to-end experiment.
// These bound how much simulated time the figure benches can afford.
#include <benchmark/benchmark.h>

#include "src/mem/memory.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/workload/harness.h"

namespace snicsim {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.In(i, [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_BusyServerEnqueue(benchmark::State& state) {
  Simulator sim;
  BusyServer s(&sim, "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Enqueue(10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusyServerEnqueue);

void BM_DramAccess(benchmark::State& state) {
  Simulator sim;
  MemorySubsystem mem(&sim, "m", MemoryParams::Soc());
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Access(sim.now(), addr, 64, false));
    addr += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void BM_EndToEndExperiment(benchmark::State& state) {
  for (auto _ : state) {
    HarnessConfig cfg;
    cfg.client_machines = 4;
    cfg.warmup = FromMicros(10);
    cfg.window = FromMicros(50);
    const Measurement m =
        MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 64, cfg);
    benchmark::DoNotOptimize(m.ops);
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snicsim
