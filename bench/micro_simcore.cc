// Microbenchmarks of the simulation kernel itself (google-benchmark): event
// throughput, queueing-primitive costs, and one full end-to-end experiment.
// These bound how much simulated time the figure benches can afford.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/mem/memory.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/topo/rack.h"
#include "src/topo/rack_kv.h"
#include "src/workload/harness.h"

namespace snicsim {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.In(i, [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

// The pre-optimization event core (std::function payloads ordered directly
// in a binary heap of full event records, 64-bit seq), kept alive as the
// in-run reference: the CI perf gate compares BM_EventQueueThroughput
// against BM_EventQueueThroughputLegacy from the *same* process, so the
// gated quantity is the fast path's speedup over this baseline — a ratio
// that transfers across machines — not an absolute throughput that only
// held on the machine that recorded it.
class LegacyEventQueue {
 public:
  void In(int64_t delay, std::function<void()> cb) {
    heap_.push_back(Event{now_ + delay, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  void Run() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), After);
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      now_ = ev.time;
      ++processed_;
      ev.cb();
    }
  }

  uint64_t processed() const { return processed_; }

 private:
  struct Event {
    int64_t time;
    uint64_t seq;
    std::function<void()> cb;
  };
  static bool After(const Event& a, const Event& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  std::vector<Event> heap_;
  int64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

void BM_EventQueueThroughputLegacy(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEventQueue sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.In(i, [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughputLegacy)->Arg(1000)->Arg(100000);

void BM_BusyServerEnqueue(benchmark::State& state) {
  Simulator sim;
  BusyServer s(&sim, "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Enqueue(10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusyServerEnqueue);

void BM_DramAccess(benchmark::State& state) {
  Simulator sim;
  MemorySubsystem mem(&sim, "m", MemoryParams::Soc());
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Access(sim.now(), addr, 64, false));
    addr += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

// The parallel DES core on the multi-domain rack workload: per-server
// domains sharded across worker threads vs the same workload on one event
// core. The CI perf gate (BENCH_simcore.json "parallel_vs_serial",
// scripts/check_bench.py) requires the same-run parallel/serial speedup to
// hold on the 8-domain point whenever the runner has the cores to show it
// (the gate carries min_cores; a starved runner skips it loudly instead of
// failing on scheduler noise). Fingerprints are byte-identical at any
// thread count per the §12 determinism contract — asserted here once
// before the timed loop, and continuously by tests/sim/parallel_sim_test.
RackParams BenchRack(int servers) {
  RackParams p;
  p.servers = servers;
  p.clients_per_server = 32;
  p.requests_per_client = 40;
  p.burst = 32;
  return p;
}

uint64_t RackOps(const RackParams& p) {
  return static_cast<uint64_t>(p.servers) * p.clients_per_server *
         p.requests_per_client;
}

void BM_RackSerial(benchmark::State& state) {
  RackParams p = BenchRack(static_cast<int>(state.range(0)));
  p.sim_threads = 1;
  for (auto _ : state) {
    const RackResult r = RunRack(p);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(RackOps(p)));
}
// UseRealTime on both rack benchmarks: the parallel run does its work on
// pool threads while the timed thread sleeps at the round barrier, so
// CPU-time-based items/s would be meaningless there. Wall clock is the
// quantity the speedup gate is about.
BENCHMARK(BM_RackSerial)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_RackParallel(benchmark::State& state) {
  RackParams p = BenchRack(static_cast<int>(state.range(0)));
  // One worker per domain when the machine has them; never fewer than two,
  // so the measurement always exercises the cross-thread barrier path.
  p.sim_threads = std::max(2, std::min(p.servers, runtime::DefaultJobs()));
  {
    RackParams serial = p;
    serial.sim_threads = 1;
    const std::string par = RunRack(p).Fingerprint();
    const std::string ser = RunRack(serial).Fingerprint();
    if (par != ser) {
      state.SkipWithError("parallel fingerprint diverged from serial run");
      return;
    }
  }
  for (auto _ : state) {
    const RackResult r = RunRack(p);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(RackOps(p)));
}
BENCHMARK(BM_RackParallel)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

// The rack-scale sharded KV (src/topo/rack_kv.h): the full per-server
// stack — SmartNIC model, governor, resilience, replication — in every
// domain, which is the heaviest per-event workload the parallel core
// carries. Gated exactly like the plain rack pair (BENCH_simcore.json
// "rack_sharded_parallel_vs_serial", min_cores-guarded), with the same
// fingerprint byte-equality pre-assert before the timed loop.
RackKvParams BenchShardedRack(int servers) {
  RackKvParams p;
  p.servers = servers;
  p.users = 1000 * static_cast<uint64_t>(servers);
  p.think_mean_us = 500.0;
  p.zipf_theta = 0.9;
  p.layout.keys = 4096;
  p.layout.cached_keys = 1024;
  p.layout.class_bytes = {64, 512, 2048};
  p.mix = {0.70, 0.25, 0.05};
  p.window = FromMicros(150);
  p.seed = 42;
  return p;
}

void BM_RackShardedSerial(benchmark::State& state) {
  RackKvParams p = BenchShardedRack(static_cast<int>(state.range(0)));
  p.sim_threads = 1;
  uint64_t ops = 0;
  for (auto _ : state) {
    const RackKvResult r = RunRackKv(p);
    ops += r.completed;
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_RackShardedSerial)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RackShardedParallel(benchmark::State& state) {
  RackKvParams p = BenchShardedRack(static_cast<int>(state.range(0)));
  p.sim_threads = std::max(2, std::min(p.servers, runtime::DefaultJobs()));
  {
    RackKvParams serial = p;
    serial.sim_threads = 1;
    const std::string par = RunRackKv(p).Fingerprint();
    const std::string ser = RunRackKv(serial).Fingerprint();
    if (par != ser) {
      state.SkipWithError("parallel fingerprint diverged from serial run");
      return;
    }
  }
  uint64_t ops = 0;
  for (auto _ : state) {
    const RackKvResult r = RunRackKv(p);
    ops += r.completed;
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_RackShardedParallel)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndExperiment(benchmark::State& state) {
  for (auto _ : state) {
    HarnessConfig cfg;
    cfg.client_machines = 4;
    cfg.warmup = FromMicros(10);
    cfg.window = FromMicros(50);
    const Measurement m =
        MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, 64, cfg);
    benchmark::DoNotOptimize(m.ops);
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snicsim
