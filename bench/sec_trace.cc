// Trace-driven non-stationary serving vs the epoch autoscaler (ours).
//
// One BlueField server runs the KV serving plane *and* a tenant offload
// plane (compaction-style compression + telemetry sketch) that split a
// fixed SoC core budget. A 24h-compressed diurnal trace
// (src/workload/trace) drives both sides out of phase: at night the
// serving rate drops to 0.3x while background compaction runs at 3x (and
// its path-3 crossings compete with serving), at midday the rate hits
// 1.0x with a hot-key churn phase, a flash crowd pushes 1.6x, and a scan
// burst inflates the value-size mix — so *every* static split of the SoC
// budget loses somewhere. The arms:
//
//   static S+P — S serving SoC cores, P tenant-pool cores, fixed.
//   auto  2+2  — starts at the middle split; the EpochAutoscaler
//                (src/governor/autoscaler.h) moves one core across the
//                split per governor epoch when one side runs hot while the
//                other idles, retuning the tenant WRR weights as it goes.
//
// Every arm shares one SloMonitor: an epoch is in violation when the
// fleet's bad-outcome fraction (late + deadline-failed + shed) or the
// tenant SLO-miss fraction exceeds the same budget, attributed to the
// trace segment it started in. The headline surface is SLO-violation-us,
// total and per phase.
//
// --check replays every arm at --jobs=1 and --jobs=N asserting
// byte-identical fingerprints (serving + tenant + trace digests), closes
// the request and tenant ledgers and the phase/total violation sums, and
// asserts the autoscaler result: total violation-us <= every static
// split, a strict win on at least one phase against the best static
// split, and that it actually moved cores both ways.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/log.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/governor/serving.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/trace/trace.h"

using namespace snicsim;  // NOLINT: bench brevity
using governor::PolicyKind;
using governor::RunServing;
using governor::ServingResult;
using governor::ServingRunConfig;

namespace {

// The --sim-threads count, applied to every cell (set once in main before
// the sweep; see sec_overload.cc for the pattern).
int g_sim_threads = 1;

constexpr double kDeadlineUs = 40.0;
// Total SoC cores on the server, split between the serving pool and the
// tenant arbiter pool. Every arm uses the same budget.
constexpr int kSocBudget = 4;
// Open-loop serving arrival rate at trace rate 1.0 (the flash crowd
// multiplies this by 1.6 — past the small pools' knee).
constexpr double kBaseMops = 4.0;

// The built-in 24h-compressed diurnal trace: 12 segments x 100 us.
// Night (0.3x serving, 3x background compaction) ramps through morning
// into a midday plateau with a hot-key churn phase, a 1.6x flash crowd, a
// scan burst (half the gets forced to the largest class), then back down
// into night. Override with --trace.
trace::TracePlan DefaultTrace() {
  trace::TracePlan plan;
  std::string error;
  const bool ok = trace::ParseTracePlan(
      "version=1,duration=1200,"
      "seg=0:0.3:0:0:3,"       // night: compaction-heavy
      "seg=100:0.3:0:0:3,"
      "seg=200:0.6:0:0:2,"     // morning ramp
      "seg=300:0.9:0:0:1,"
      "seg=400:1:0:0:0.5,"     // midday plateau
      "seg=500:1:2048:0:0.5,"  // hot-key churn: working set rotates
      "seg=600:1.6:0:0:0.5,"   // flash crowd
      "seg=700:1.6:0:0:0.5,"
      "seg=800:1:0:0.5:0.5,"   // scan burst: half the gets go large-class
      "seg=900:0.9:0:0:1,"     // evening ramp-down
      "seg=1000:0.6:0:0:2,"
      "seg=1100:0.3:0:0:3",
      &plan, &error);
  SNIC_CHECK(ok);
  return plan;
}

ServingRunConfig Base() {
  ServingRunConfig c;
  c.sim_threads = g_sim_threads;
  c.client.threads = 4;
  c.fleet.machines = 4;
  c.fleet.logical_clients = 256;
  c.fleet.seed = 42;
  c.layout.keys = 4096;
  c.layout.cached_keys = 1024;
  c.layout.class_bytes = {64, 128, 512, 1024};
  c.mix.weights = {0.25, 0.25, 0.25, 0.25};
  c.zipf_theta = 0.99;
  c.host_cores = 1;
  return c;
}

resilience::ResilienceConfig Shedding() {
  resilience::ResilienceConfig r;
  r.deadline = FromMicros(kDeadlineUs);
  r.shedding = true;
  r.codel_target = FromMicros(8);
  r.codel_interval = FromMicros(20);
  return r;
}

// The tenant plane: a compaction-style compression tenant (host-born 4 KiB
// payloads compressed on the SoC — both crossings ride path 3) plus a
// SoC-resident telemetry sketch. The trace's bg multiplier scales both
// arrival streams, so the pool's demand peaks at night.
offload::TenantSetConfig Tenants(int pool_cores) {
  offload::TenantSetConfig t;
  t.pools = {pool_cores};
  t.host_cores = 1;
  t.seed = 9;
  offload::TenantSpec compact;
  compact.id = "compact";
  compact.kind = offload::TenantKind::kCompress;
  compact.weight = 4;
  compact.mops = 0.18;
  compact.item_bytes = 4096;
  compact.slo_us = 30.0;
  offload::TenantSpec tele;
  tele.id = "tele";
  tele.kind = offload::TenantKind::kSketch;
  tele.weight = 1;
  tele.mops = 0.2;
  tele.item_bytes = 256;
  tele.slo_us = 30.0;
  t.tenants = {compact, tele};
  return t;
}

// One SLO budget for every arm: the monitor reads it whether or not the
// autoscaler is enabled, so static and autoscaled arms account violations
// identically.
governor::ScaleConfig Scale(bool enabled) {
  governor::ScaleConfig s;
  s.enabled = enabled;
  s.slo_budget = 0.02;
  s.min_serving_cores = 1;
  s.min_pool_cores = 1;
  s.util_high = 0.85;
  s.util_low = 0.55;
  s.hold_epochs = 3;
  // When serving is scarce the compaction tenant yields its WRR share;
  // when cores flow back it gets its 4x weight again.
  s.weights_scarce = {1, 1};
  s.weights_ample = {4, 1};
  return s;
}

struct Arm {
  std::string name;
  int serving_cores;  // tenant pool gets kSocBudget - serving_cores
  bool scaled;
};

std::vector<Arm> Arms() {
  return {{"static 3+1", 3, false},
          {"static 2+2", 2, false},
          {"static 1+3", 1, false},
          {"auto 2+2", 2, true}};
}

ServingRunConfig Cell(const trace::TracePlan& plan,
                      const fault::FaultPlan& faults, const Arm& arm) {
  ServingRunConfig c = Base();
  c.policy = PolicyKind::kGovernor;
  // Lift the governor's SoC in-flight cap (see sec_overload.cc): the
  // resilience layer is the only overload protection, so violation
  // accounting reflects the core split rather than the cap.
  c.governor.soc_inflight_cap = 1 << 20;
  c.fleet.open_loop = true;
  c.fleet.open_mops = kBaseMops;
  c.soc_cores = arm.serving_cores;
  c.tenants = Tenants(kSocBudget - arm.serving_cores);
  c.resil = Shedding();
  c.trace = plan;
  c.scale = Scale(arm.scaled);
  c.faults = faults;
  // The fleet issues for the whole trace; the meter window covers
  // everything past the first warmup slice.
  const SimTime duration = FromMicros(plan.duration_us);
  c.warmup = std::min<SimTime>(FromMicros(100), duration / 4);
  c.window = duration - c.warmup;
  return c;
}

std::vector<ServingResult> RunCells(const std::vector<ServingRunConfig>& cells,
                                    int jobs) {
  runtime::SweepQueue<ServingResult> sweep(jobs);
  for (const ServingRunConfig& c : cells) {
    sweep.Add([c] { return RunServing(c); });
  }
  return sweep.Run();
}

// Trace replay equality = serving digest + tenant digest + trace digest.
std::string FullDigest(const ServingResult& r) {
  return r.Fingerprint() + "|" + r.tenants.Fingerprint() + "|" +
         r.trace.Fingerprint();
}

std::string JoinFingerprints(const std::vector<ServingResult>& rs) {
  std::string s;
  for (const ServingResult& r : rs) {
    s += FullDigest(r);
    s.push_back('\n');
  }
  return s;
}

// Same whole-ledger identities as sec_overload.cc --check.
bool Conserved(const ServingResult& r, const char* label) {
  bool ok = true;
  if (r.generated != r.issued - r.hedges + r.shed) {
    std::printf("FAIL(%s): generated %llu != issued %llu - hedges %llu + "
                "shed %llu\n",
                label, static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.hedges),
                static_cast<unsigned long long>(r.shed));
    ok = false;
  }
  if (r.issued != r.completed + r.failed + r.cancelled) {
    std::printf("FAIL(%s): issued %llu != completed %llu + failed %llu + "
                "cancelled %llu\n",
                label, static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.cancelled));
    ok = false;
  }
  if (r.good + r.late != r.completed) {
    std::printf("FAIL(%s): good %llu + late %llu != completed %llu\n", label,
                static_cast<unsigned long long>(r.good),
                static_cast<unsigned long long>(r.late),
                static_cast<unsigned long long>(r.completed));
    ok = false;
  }
  if (r.shed != r.shed_codel + r.shed_bucket + r.shed_deadline) {
    std::printf("FAIL(%s): shed %llu != codel %llu + bucket %llu + "
                "deadline %llu\n",
                label, static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.shed_codel),
                static_cast<unsigned long long>(r.shed_bucket),
                static_cast<unsigned long long>(r.shed_deadline));
    ok = false;
  }
  if (!r.tenants.AllLedgersClosed()) {
    std::printf("FAIL(%s): a tenant ledger did not close\n", label);
    ok = false;
  }
  // The per-phase slices must partition the totals exactly.
  uint64_t pe = 0, pv = 0, pg = 0, ps = 0;
  double pu = 0.0;
  for (const governor::PhaseResult& p : r.trace.phases) {
    pe += p.epochs;
    pv += p.violation_epochs;
    pu += p.violation_us;
    pg += p.generated;
    ps += p.shed;
  }
  if (pg != r.generated || ps != r.shed) {
    std::printf("FAIL(%s): phase request ledger (%llu gen, %llu shed) != "
                "totals (%llu gen, %llu shed)\n",
                label, static_cast<unsigned long long>(pg),
                static_cast<unsigned long long>(ps),
                static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.shed));
    ok = false;
  }
  if (pe != r.trace.epochs || pv != r.trace.violation_epochs ||
      pu != r.trace.violation_us) {
    std::printf("FAIL(%s): phase sums (%llu ep, %llu vio, %.1f us) != totals "
                "(%llu ep, %llu vio, %.1f us)\n",
                label, static_cast<unsigned long long>(pe),
                static_cast<unsigned long long>(pv), pu,
                static_cast<unsigned long long>(r.trace.epochs),
                static_cast<unsigned long long>(r.trace.violation_epochs),
                r.trace.violation_us);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const fault::FaultPlan plan = fault::FaultsFlag(flags);
  trace::TracePlan tplan = trace::TraceFlag(flags);
  const bool check = flags.GetBool(
      "check", false,
      "assert autoscaler dominance + phase win + ledgers + --jobs determinism");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  flags.Finish();
  if (tplan.empty()) {
    tplan = DefaultTrace();
  }

  const std::vector<Arm> arms = Arms();
  std::vector<ServingRunConfig> cells;
  cells.reserve(arms.size());
  for (const Arm& a : arms) {
    cells.push_back(Cell(tplan, plan, a));
  }
  const std::vector<ServingResult> results = RunCells(cells, jobs);

  std::printf("== Diurnal trace (%0.f us, %d segments): static SoC splits vs "
              "epoch autoscaler ==\n",
              tplan.duration_us, static_cast<int>(tplan.segments.size()));
  Table t({"arm", "vio_us", "vio_ep", "epochs", "up", "down", "w_upd",
           "final_S", "good", "late", "shed", "p99_us"});
  for (size_t i = 0; i < arms.size(); ++i) {
    const ServingResult& r = results[i];
    t.Row()
        .Add(arms[i].name)
        .Add(r.trace.violation_us, 1)
        .Add(r.trace.violation_epochs)
        .Add(r.trace.epochs)
        .Add(r.trace.actions_up)
        .Add(r.trace.actions_down)
        .Add(r.trace.weight_updates)
        .Add(r.trace.final_serving_cores)
        .Add(r.good)
        .Add(r.late)
        .Add(r.shed)
        .Add(r.p99_us, 1);
  }
  t.Print(std::cout, flags.csv());

  std::printf("\n== SLO-violation us per trace phase (rows: segment start) "
              "==\n");
  std::vector<std::string> cols = {"seg", "rate", "bg"};
  for (const Arm& a : arms) {
    cols.push_back(a.name);
  }
  Table pt(cols);
  for (size_t s = 0; s < tplan.segments.size(); ++s) {
    Table& row = pt.Row();
    row.Add(tplan.segments[s].start_us, 0)
        .Add(tplan.segments[s].rate, 2)
        .Add(tplan.segments[s].bg, 2);
    for (const ServingResult& r : results) {
      row.Add(s < r.trace.phases.size() ? r.trace.phases[s].violation_us : 0.0,
              1);
    }
  }
  pt.Print(std::cout, flags.csv());
  std::printf("expected: the serving-heavy split (3+1) melts at night when "
              "compaction runs 3x, the pool-heavy split (1+3) melts in the "
              "flash crowd, the middle split loses a little everywhere — and "
              "the autoscaler follows the phase, moving its cores to whichever "
              "side is hot.\n");

  if (!check) {
    return 0;
  }

  std::printf("\n== --check: determinism + ledgers + autoscaler dominance "
              "==\n");
  bool ok = true;

  // Determinism: every cell byte-identical between --jobs=1 and --jobs=N
  // (serving + tenant + trace digests).
  const std::string serial = JoinFingerprints(RunCells(cells, /*jobs=*/1));
  if (serial != JoinFingerprints(results)) {
    std::printf("FAIL: fingerprints differ between --jobs=1 and --jobs=%d\n",
                jobs);
    ok = false;
  }

  for (size_t i = 0; i < results.size(); ++i) {
    ok = Conserved(results[i], arms[i].name.c_str()) && ok;
  }

  // Every arm saw the same epoch clock over the same trace.
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].trace.epochs != results[0].trace.epochs) {
      std::printf("FAIL: arm '%s' counted %llu epochs vs %llu\n",
                  arms[i].name.c_str(),
                  static_cast<unsigned long long>(results[i].trace.epochs),
                  static_cast<unsigned long long>(results[0].trace.epochs));
      ok = false;
    }
  }
  if (results[0].trace.epochs == 0) {
    std::printf("FAIL: no epochs elapsed — trace too short for the governor "
                "epoch\n");
    ok = false;
  }

  const ServingResult& autod = results.back();
  SNIC_CHECK(arms.back().scaled);

  // Under an injected fault plan the SLO ledger is dominated by
  // retransmit-induced lateness no core split can provision away, so the
  // dominance assertions are meaningless noise; --check then covers
  // determinism and ledger closure only (what the CI trace-matrix greps).
  if (!plan.empty()) {
    std::printf("%s\n",
                ok ? "CHECK PASSED: byte-identical across --jobs under the "
                     "fault plan, ledgers and phase sums closed (dominance "
                     "skipped: faulted run)"
                   : "CHECK FAILED");
    return ok ? 0 : 1;
  }

  // The scenario must be non-trivial: some static split actually violates.
  double best_static = -1.0;
  size_t best_idx = 0;
  double worst_static = 0.0;
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    const double v = results[i].trace.violation_us;
    if (best_static < 0.0 || v < best_static) {
      best_static = v;
      best_idx = i;
    }
    worst_static = std::max(worst_static, v);
  }
  if (worst_static <= 0.0) {
    std::printf("FAIL: no static split violated — the trace exerts no "
                "pressure\n");
    ok = false;
  }

  // Dominance: the autoscaler's total violation time is <= every static
  // split's.
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    if (autod.trace.violation_us > results[i].trace.violation_us) {
      std::printf("FAIL: autoscaler violation %.1f us > %s's %.1f us\n",
                  autod.trace.violation_us, arms[i].name.c_str(),
                  results[i].trace.violation_us);
      ok = false;
    }
  }

  // Strict win: at least one phase where the autoscaler beats the best
  // static split outright.
  const ServingResult& best = results[best_idx];
  bool strict = false;
  for (size_t s = 0; s < autod.trace.phases.size(); ++s) {
    if (s < best.trace.phases.size() &&
        autod.trace.phases[s].violation_us <
            best.trace.phases[s].violation_us) {
      strict = true;
      break;
    }
  }
  if (!strict) {
    std::printf("FAIL: no phase where the autoscaler strictly beats the best "
                "static split (%s, %.1f us total)\n",
                arms[best_idx].name.c_str(), best_static);
    ok = false;
  }

  // The autoscaler actually followed the phases: cores moved both ways and
  // the WRR weights were retuned.
  if (autod.trace.actions_up == 0 || autod.trace.actions_down == 0) {
    std::printf("FAIL: autoscaler did not move cores both ways (up %llu, "
                "down %llu)\n",
                static_cast<unsigned long long>(autod.trace.actions_up),
                static_cast<unsigned long long>(autod.trace.actions_down));
    ok = false;
  }
  if (autod.trace.weight_updates == 0) {
    std::printf("FAIL: autoscaler never retuned tenant weights\n");
    ok = false;
  }

  std::printf("%s\n",
              ok ? "CHECK PASSED: byte-identical across --jobs, ledgers and "
                   "phase sums closed, autoscaler <= every static split with "
                   "a strict phase win"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
