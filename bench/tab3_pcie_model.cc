// Table 3: the PCIe packet-count model, cross-checked against the
// simulator's per-link hardware counters.
//
// For each path the analytic column is ceil(N/MTU) per crossing (Table 3);
// the simulated column is the actual data-TLP counter diff from one
// N-byte transfer. Control-path packets (read requests, doorbells, CQEs)
// explain the small simulated excess, exactly as the paper's "simplified
// model omits control path packets" caveat.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/model/pcie_model.h"
#include "src/runtime/sweep_runner.h"
#include "src/topo/server.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

struct SimCounts {
  uint64_t pcie1 = 0;
  uint64_t pcie0 = 0;
};

SimCounts SimulateTransfer(CommPath path, uint32_t bytes) {
  Simulator sim;
  Fabric fabric(&sim);
  const TestbedParams tp;
  BluefieldServer bf(&sim, &fabric, tp);
  PcieLink* client = fabric.AddPort("cli", Bandwidth::Gbps(100));
  const LinkCounters p1_before = bf.pcie1().TotalCounters();
  const LinkCounters p0_before = bf.pcie0().TotalCounters();
  PciePath back = fabric.Route(bf.port(), client);
  switch (path) {
    case CommPath::kSnic1:
      bf.nic().HandleRequest(bf.host_ep(), Verb::kRead, 0, bytes, 1.0, back,
                             [](SimTime) {});
      break;
    case CommPath::kSnic2:
      bf.nic().HandleRequest(bf.soc_ep(), Verb::kRead, 0, bytes, 1.0, back, [](SimTime) {});
      break;
    case CommPath::kSnic3S2H:
      bf.nic().ExecuteLocalOp(bf.soc_ep(), bf.host_ep(), Verb::kWrite, 0, bytes,
                              [](SimTime) {});
      break;
    case CommPath::kSnic3H2S:
      bf.nic().ExecuteLocalOp(bf.host_ep(), bf.soc_ep(), Verb::kWrite, 0, bytes,
                              [](SimTime) {});
      break;
    case CommPath::kRnic1:
      break;
  }
  sim.Run();
  return SimCounts{bf.pcie1().TotalCounters().tlps - p1_before.tlps,
                   bf.pcie0().TotalCounters().tlps - p0_before.tlps};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t bytes = flags.GetInt("bytes", 1 * kMiB, "transfer size N");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();
  const uint32_t n = static_cast<uint32_t>(bytes);

  const std::vector<CommPath> paths = {CommPath::kSnic1, CommPath::kSnic2,
                                       CommPath::kSnic3S2H, CommPath::kSnic3H2S};
  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<SimCounts> sweep(jobs);
  for (CommPath path : paths) {
    sweep.Add([path, n] { return SimulateTransfer(path, n); });
  }
  const std::vector<SimCounts> sims = sweep.Run();

  std::printf("== Table 3: PCIe MTUs ==\n");
  Table mtus({"endpoint", "PCIe MTU"});
  mtus.Row().Add("host PCIe controller").Add(FormatBytes(kHostPcieMtu));
  mtus.Row().Add("SoC cores").Add(FormatBytes(kSocPcieMtu));
  mtus.Print(std::cout, flags.csv());

  std::printf("\n== Table 3: data packets to transfer N = %s ==\n",
              FormatBytes(n).c_str());
  Table t({"path", "PCIe1 model", "PCIe1 sim", "PCIe0 model", "PCIe0 sim"});
  for (size_t i = 0; i < paths.size(); ++i) {
    const PciePacketCounts model = DataPacketsForTransfer(paths[i], n);
    const SimCounts& sim = sims[i];
    t.Row().Add(CommPathName(paths[i]));
    t.Add(model.pcie1).Add(sim.pcie1).Add(model.pcie0).Add(sim.pcie0);
  }
  t.Print(std::cout, flags.csv());

  std::printf("\n== §3.3 packet-rate example: sustaining 200 Gbps ==\n");
  Table rates({"path", "required Mpps"});
  for (CommPath path : {CommPath::kSnic1, CommPath::kSnic2, CommPath::kSnic3S2H}) {
    rates.Row().Add(CommPathName(path)).Add(RequiredPacketRate(path, 200.0) / 1e6, 1);
  }
  rates.Print(std::cout, flags.csv());
  std::printf("paper: 97.6 / 195.3 / 293 Mpps -- path (3) is 3x (1) in total and 6x\n"
              "per-link, the hidden packet-processing tax of host<->SoC traffic.\n");
  return 0;
}
