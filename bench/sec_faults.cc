// Fault ablation: how the paper's path advice holds up when the testbed
// misbehaves.
//
// Two experiments, both driven by the deterministic fault layer (src/fault):
//   1. Uniform frame loss on the network cables — READ throughput/latency on
//      RNIC(1), SNIC(1), SNIC(2) as the per-frame drop probability rises,
//      with the RC transport retransmitting (go-back-N, bounded backoff).
//      The off-path advice survives loss: all three paths degrade by the
//      same transport mechanics, so their ordering is preserved.
//   2. SoC core stalls — recurring windows where the BlueField's Arm cores
//      make no progress (firmware hiccups, thermal throttling). Measured
//      with SEND (the two-sided verb whose handler runs on the endpoint's
//      CPU): only SNIC(2), the SoC-terminated path, is hurt, and one-sided
//      READ is immune on both paths because it never touches a core —
//      advice #1 restated as a fault argument.
//
// Every cell carries its own FaultPlan (same `--fault-seed`), so the table
// is byte-identical across runs and across `--jobs=N`.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

// Small-but-saturating setup: a few machines and a transport timeout short
// enough that a lost 512 B op retransmits (several times if needed) inside
// the measurement window.
HarnessConfig FaultBenchConfig() {
  HarnessConfig cfg;
  cfg.client_machines = 3;
  cfg.client.threads = 4;
  cfg.warmup = FromMicros(40);
  cfg.window = FromMicros(160);
  cfg.client.transport_timeout = FromMicros(20);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t payload_flag = flags.GetInt("payload", 512, "payload bytes");
  const int64_t fault_seed = flags.GetInt("fault-seed", 7, "fault plan RNG seed");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();
  const uint32_t payload = static_cast<uint32_t>(payload_flag);

  const std::vector<double> drops = {0.0, 0.001, 0.01, 0.05};
  const std::vector<ServerKind> kinds = {ServerKind::kRnicHost,
                                         ServerKind::kBluefieldHost,
                                         ServerKind::kBluefieldSoc};

  // Pass 1: enqueue every cell (drop sweep first, stall ablation after) in
  // a fixed order so --jobs=N output is byte-identical.
  runtime::SweepQueue<Measurement> sweep(jobs);
  for (double drop : drops) {
    for (ServerKind kind : kinds) {
      HarnessConfig cfg = FaultBenchConfig();
      cfg.faults.drop_rate = drop;
      cfg.faults.seed = static_cast<uint64_t>(fault_seed);
      sweep.Add([kind, payload, cfg] {
        return MeasureInboundPath(kind, Verb::kRead, payload, cfg);
      });
    }
  }
  const std::vector<ServerKind> stall_kinds = {ServerKind::kBluefieldHost,
                                               ServerKind::kBluefieldSoc};
  const std::vector<Verb> stall_verbs = {Verb::kSend, Verb::kRead};
  for (ServerKind kind : stall_kinds) {
    for (Verb verb : stall_verbs) {
      for (bool stalled : {false, true}) {
        HarnessConfig cfg = FaultBenchConfig();
        if (stalled) {
          // Two 30 us SoC blackouts inside the measurement window.
          cfg.faults.seed = static_cast<uint64_t>(fault_seed);
          cfg.faults.stalls.push_back({"soc", FromMicros(60), FromMicros(90)});
          cfg.faults.stalls.push_back({"soc", FromMicros(120), FromMicros(150)});
        }
        sweep.Add([kind, verb, payload, cfg] {
          return MeasureInboundPath(kind, verb, payload, cfg);
        });
      }
    }
  }
  const std::vector<Measurement> results = sweep.Run();

  // Pass 2: consume in the same order.
  for (size_t ki = 0; ki < kinds.size(); ++ki) {
    std::printf("== READ %u B on %s under uniform frame loss ==\n", payload,
                ServerKindName(kinds[ki]));
    Table t({"drop", "mreqs", "p50_us", "retx", "failed", "frames_lost"});
    for (size_t di = 0; di < drops.size(); ++di) {
      const Measurement& m = results[di * kinds.size() + ki];
      t.Row()
          .Add(drops[di], 3)
          .Add(m.mreqs, 3)
          .Add(m.p50_us, 2)
          .Add(m.retransmits)
          .Add(m.op_failures)
          .Add(m.frames_dropped);
    }
    t.Print(std::cout, flags.csv());
    std::printf("\n");
  }

  const size_t stall_base = drops.size() * kinds.size();
  std::printf("== %u B with recurring 30 us SoC core stalls ==\n", payload);
  Table st({"path", "verb", "soc_stalls", "mreqs", "p50_us", "p99_us"});
  size_t si = stall_base;
  for (ServerKind kind : stall_kinds) {
    for (Verb verb : stall_verbs) {
      for (int stalled = 0; stalled < 2; ++stalled) {
        const Measurement& m = results[si++];
        st.Row()
            .Add(ServerKindName(kind))
            .Add(VerbName(verb))
            .Add(stalled ? "on" : "off")
            .Add(m.mreqs, 3)
            .Add(m.p50_us, 2)
            .Add(m.p99_us, 2);
      }
    }
  }
  st.Print(std::cout, flags.csv());
  std::printf(
      "\nexpected: loss degrades all paths through the same RC transport "
      "(ordering preserved); SoC stalls hurt only SNIC(2) SEND (the verb "
      "whose handler runs on the Arm cores) — one-sided READ and the host "
      "path are immune, which is advice #1 restated as a fault argument.\n");
  return 0;
}
