// Figure 8: bandwidth (a) and PCIe packet throughput (b) of large READs and
// WRITEs against the host (SNIC ①) vs. the SoC (SNIC ②).
//
// The SoC's 128 B PCIe MTU head-of-line-blocks READs above ~9 MB: payload
// bandwidth collapses from network-bound (~191 Gbps) to ~100-130 Gbps and
// the PCIe1 packet rate falls from ~186 Mpps to ~115 Mpps (Advice #2).
// WRITEs are posted and unaffected; the host's 512 B MTU path is flat.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick", false, "skip the >16MB points");
  const std::string trace =
      flags.GetString("trace", "", "trace JSON output (first READ SNIC(2) point)");
  const std::string metrics =
      flags.GetString("metrics", "", "metrics JSON output (first READ SNIC(2) point)");
  const int jobs = runtime::JobsFlag(flags);
  const int sim_threads = runtime::SimThreadsFlag(flags);
  const fault::FaultPlan faults = fault::FaultsFlag(flags);
  flags.Finish();

  std::vector<uint32_t> payloads = {64 * 1024,       256 * 1024,      1024 * 1024,
                                    4 * 1024 * 1024, 8 * 1024 * 1024, 10 * 1024 * 1024,
                                    16 * 1024 * 1024};
  if (!quick) {
    payloads.push_back(32 * 1024 * 1024);
  }

  HarnessConfig cfg;
  cfg.client_machines = 8;
  cfg.faults = faults;
  cfg.sim_threads = sim_threads;

  std::printf("== Figure 8(a): bandwidth (Gbps) ==\n");
  Table a({"payload", "READ SNIC(1)", "READ SNIC(2)", "WRITE SNIC(2)"});
  std::printf("== collecting... ==\n");
  runtime::SweepQueue<Measurement> sweep(jobs);
  for (uint32_t p : payloads) {
    // The sinks attach to the first SNIC(2) READ point: the path whose
    // sub-read pipeline (128 B MTU, HoL stalls) Fig. 8 is about.
    HarnessConfig r2cfg = cfg;
    if (p == payloads.front()) {
      r2cfg.trace_path = trace;
      r2cfg.metrics_path = metrics;
    }
    sweep.Add([p, cfg] {
      return MeasureInboundPath(ServerKind::kBluefieldHost, Verb::kRead, p, cfg);
    });
    sweep.Add([p, r2cfg] {
      return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kRead, p, r2cfg);
    });
    sweep.Add([p, cfg] {
      return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kWrite, p, cfg);
    });
  }
  const std::vector<Measurement> results = sweep.Run();
  std::vector<Measurement> r1s, r2s, w2s;
  for (size_t i = 0; i < payloads.size(); ++i) {
    r1s.push_back(results[3 * i]);
    r2s.push_back(results[3 * i + 1]);
    w2s.push_back(results[3 * i + 2]);
  }
  for (size_t i = 0; i < payloads.size(); ++i) {
    a.Row().Add(FormatBytes(payloads[i]));
    a.Add(r1s[i].gbps, 1).Add(r2s[i].gbps, 1).Add(w2s[i].gbps, 1);
  }
  a.Print(std::cout, flags.csv());

  std::printf("\n== Figure 8(b): PCIe packet throughput (Mpps, PCIe1+PCIe0) ==\n");
  Table b({"payload", "READ SNIC(1)", "READ SNIC(2)"});
  for (size_t i = 0; i < payloads.size(); ++i) {
    b.Row().Add(FormatBytes(payloads[i]));
    b.Add(r1s[i].pcie_total_mpps / 2.0, 1);  // per-link rate, like the paper
    b.Add(r2s[i].pcie1_mpps, 1);
  }
  b.Print(std::cout, flags.csv());

  std::printf("\npaper: SNIC(2) READ collapses above 9MB (186 -> <120 Mpps); SNIC(1)\n"
              "stays ~46.7 Mpps per link / ~191 Gbps, network-bound.\n");
  return 0;
}
