// Figure 9: bandwidth (a) and PCIe packet throughput (b) of host<->SoC
// transfers (path ③).
//
// Path ③ peaks slightly above the network-bound paths (~204 Gbps, PCIe-
// bound) but needs far more PCIe packets per byte (Table 3): ~320 Mpps at
// 204 Gbps. Large transfers collapse to ~100 Gbps in both directions, S2H
// earlier than H2S (Advice #3).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

Measurement Run(bool s2h, Verb verb, uint32_t payload) {
  LocalRequesterParams p = s2h ? LocalRequesterParams::Soc() : LocalRequesterParams::Host();
  if (s2h) {
    p.doorbell_batch = true;
    p.batch = 32;
  }
  HarnessConfig cfg;
  cfg.warmup = FromMicros(60);
  cfg.window = FromMicros(400);
  return MeasureLocalPath(s2h, verb, payload, p, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick", false, "skip the >16MB points");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  std::vector<uint32_t> payloads = {16 * 1024,       64 * 1024,        256 * 1024,
                                    1024 * 1024,     4 * 1024 * 1024,  10 * 1024 * 1024,
                                    16 * 1024 * 1024};
  if (!quick) {
    payloads.push_back(32 * 1024 * 1024);
  }

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<Measurement> sweep(jobs);
  for (uint32_t p : payloads) {
    sweep.Add([p] { return Run(true, Verb::kRead, p); });
    sweep.Add([p] { return Run(false, Verb::kRead, p); });
    sweep.Add([p] { return Run(true, Verb::kWrite, p); });
    sweep.Add([p] { return Run(false, Verb::kWrite, p); });
  }
  const std::vector<Measurement> results = sweep.Run();

  std::printf("== Figure 9(a): host<->SoC bandwidth (Gbps) ==\n");
  Table a({"payload", "R S2H", "R H2S", "W S2H", "W H2S"});
  std::vector<Measurement> rs2h, rh2s;
  size_t k = 0;
  for (uint32_t p : payloads) {
    const Measurement& r_s2h = results[k++];
    const Measurement& r_h2s = results[k++];
    const Measurement& w_s2h = results[k++];
    const Measurement& w_h2s = results[k++];
    rs2h.push_back(r_s2h);
    rh2s.push_back(r_h2s);
    a.Row().Add(FormatBytes(p));
    a.Add(r_s2h.gbps, 1).Add(r_h2s.gbps, 1).Add(w_s2h.gbps, 1).Add(w_h2s.gbps, 1);
  }
  a.Print(std::cout, flags.csv());

  std::printf("\n== Figure 9(b): PCIe packets (Mpps, all internal links) ==\n");
  Table b({"payload", "READ S2H mpps", "READ S2H gbps", "READ H2S mpps"});
  for (size_t i = 0; i < payloads.size(); ++i) {
    b.Row().Add(FormatBytes(payloads[i]));
    b.Add(rs2h[i].pcie_total_mpps, 1).Add(rs2h[i].gbps, 1).Add(rh2s[i].pcie_total_mpps, 1);
  }
  b.Print(std::cout, flags.csv());

  std::printf("\npaper: 256KB S2H READ reaches ~204 Gbps at ~320 Mpps; payloads beyond\n"
              "the HoL threshold collapse toward ~100 Gbps, S2H before H2S.\n");
  return 0;
}
