// §4's budget rule as a mechanism: greedy vs. governed path-③ traffic.
//
// Clients saturate path ① with 4 KB mixed READ/WRITE traffic while a
// host->SoC stream demands more than the P − N headroom. Greedy grabs all
// the PCIe it can and throttles the network; the governor samples the port
// counters each epoch and keeps the stream at the measured headroom.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/meter.h"
#include "src/topo/server.h"
#include "src/workload/client.h"
#include "src/workload/governor.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

struct PhaseResult {
  double net_busy = 0.0;  // network Gbps under contention
  double p3_busy = 0.0;   // path-③ Gbps under contention
};

PhaseResult Run(bool governed, double greedy_demand_gbps) {
  Simulator sim;
  const TestbedParams tp;
  Fabric fabric(&sim, tp.network_link_propagation, tp.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, tp);

  const SimTime busy_end = FromMicros(500);

  // Clients: mixed-direction 4 KB streams saturating the NIC.
  ClientParams cp;
  auto clients = MakeClients(&sim, &fabric, cp, 8);
  Meter net_busy_meter(&sim);
  net_busy_meter.SetWindow(FromMicros(100), busy_end);
  TargetSpec read;
  read.engine = &bf.nic();
  read.endpoint = bf.host_ep();
  read.server_port = bf.port();
  read.verb = Verb::kRead;
  read.payload = 4096;
  TargetSpec write = read;
  write.verb = Verb::kWrite;
  uint64_t seed = 1;
  for (size_t i = 0; i < clients.size(); ++i) {
    clients[i]->Start(i % 2 == 0 ? read : write,
                      AddressGenerator(0, 10ull * 1024 * kMiB, 64, seed++),
                      &net_busy_meter);
  }

  // Path ③: paced H2S writes, demanding `greedy_demand_gbps`.
  LocalRequesterParams lp = LocalRequesterParams::Host();
  lp.threads = 12;
  lp.paced_gbps = greedy_demand_gbps;
  LocalRequester h2s(&sim, &bf.nic(), bf.host_ep(), bf.soc_ep(), lp, "h2s");
  // One open-window meter, sampled at the phase edge to split busy/idle.
  Meter p3_all(&sim);
  p3_all.SetWindow(FromMicros(100), 0);
  h2s.Start(Verb::kWrite, 4096, AddressGenerator(0, 10ull * 1024 * kMiB, 64, 77), &p3_all);

  std::unique_ptr<Path3Governor> governor;
  if (governed) {
    GovernorParams gp;
    governor = std::make_unique<Path3Governor>(&sim, bf.port(), &h2s, gp);
    governor->Start();
  }

  sim.RunUntil(busy_end);
  PhaseResult r;
  r.net_busy = net_busy_meter.Gbps();
  r.p3_busy = static_cast<double>(p3_all.ops()) * 4096 * 8 / 1e9 /
              ToSeconds(busy_end - FromMicros(100));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double demand = flags.GetDouble("demand", 140.0, "greedy path-3 demand Gbps");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<PhaseResult> sweep(jobs);
  sweep.Add([demand] { return Run(false, demand); });
  sweep.Add([demand] { return Run(true, demand); });
  const std::vector<PhaseResult> results = sweep.Run();

  Table t({"path-3 policy", "net Gbps (busy)", "p3 Gbps (busy)", "total (busy)"});
  const PhaseResult greedy = results[0];
  const PhaseResult governed = results[1];
  t.Row().Add("greedy (fixed demand)");
  t.Add(greedy.net_busy, 1).Add(greedy.p3_busy, 1).Add(greedy.net_busy + greedy.p3_busy, 1);
  t.Row().Add("governed (P - N budget)");
  t.Add(governed.net_busy, 1).Add(governed.p3_busy, 1)
      .Add(governed.net_busy + governed.p3_busy, 1);
  t.Print(std::cout, flags.csv());

  std::printf("\nthe governor trades a little path-3 bandwidth while the network is\n"
              "busy for a much healthier network path — the paper's §4 take-away\n"
              "('use (3) only when spare resources are available') automated.\n");
  return 0;
}
