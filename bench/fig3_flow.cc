// Figure 3: the execution flow of READ/WRITE on RNIC vs. SmartNIC — shown
// as a per-phase latency decomposition from the closed-form model, with the
// simulator's end-to-end p50 as the cross-check column.
//
// READ pays the PCIe path twice (request + completion) while WRITE posts
// and acks; the SmartNIC adds the PCIe1 + switch crossing to both.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/model/latency_model.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

ServerKind ToKind(LatencyTarget t) {
  switch (t) {
    case LatencyTarget::kRnicHost:
      return ServerKind::kRnicHost;
    case LatencyTarget::kBluefieldHost:
      return ServerKind::kBluefieldHost;
    case LatencyTarget::kBluefieldSoc:
      return ServerKind::kBluefieldSoc;
  }
  return ServerKind::kRnicHost;
}

const char* Name(LatencyTarget t) {
  switch (t) {
    case LatencyTarget::kRnicHost:
      return "RNIC(1)";
    case LatencyTarget::kBluefieldHost:
      return "SNIC(1)";
    case LatencyTarget::kBluefieldSoc:
      return "SNIC(2)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t payload = flags.GetInt("payload", 64, "payload bytes");
  const std::string trace =
      flags.GetString("trace", "", "Chrome trace_event JSON output (SNIC(1) READ run)");
  const std::string metrics =
      flags.GetString("metrics", "", "metrics JSON output (SNIC(1) READ run)");
  const int jobs = runtime::JobsFlag(flags);
  const int sim_threads = runtime::SimThreadsFlag(flags);
  const fault::FaultPlan faults = fault::FaultsFlag(flags);
  flags.Finish();
  const uint32_t p = static_cast<uint32_t>(payload);

  // Pass 1: submit the sim cross-check runs in consumption order.
  runtime::SweepQueue<double> sweep(jobs);
  for (Verb verb : {Verb::kRead, Verb::kWrite}) {
    for (LatencyTarget target : {LatencyTarget::kRnicHost, LatencyTarget::kBluefieldHost,
                                 LatencyTarget::kBluefieldSoc}) {
      HarnessConfig cfg = HarnessConfig::Latency();
      cfg.faults = faults;
      cfg.sim_threads = sim_threads;
      if (verb == Verb::kRead && target == LatencyTarget::kBluefieldHost) {
        // The SNIC(1) READ run is the one the paper's Fig. 3 narrates, so
        // that's the run the observability sinks attach to.
        cfg.trace_path = trace;
        cfg.metrics_path = metrics;
      }
      sweep.Add([target, verb, p, cfg] {
        return MeasureInboundPath(ToKind(target), verb, p, cfg).p50_us;
      });
    }
  }
  const std::vector<double> results = sweep.Run();

  size_t k = 0;
  for (Verb verb : {Verb::kRead, Verb::kWrite}) {
    std::printf("== Figure 3: %s execution flow, %s payload (us per phase) ==\n",
                VerbName(verb), FormatBytes(p).c_str());
    Table t({"config", "post", "req wire", "pcie", "memory", "resp wire", "cqe",
             "model total", "sim p50"});
    for (LatencyTarget target : {LatencyTarget::kRnicHost, LatencyTarget::kBluefieldHost,
                                 LatencyTarget::kBluefieldSoc}) {
      const LatencyBreakdown b = PredictLatency(target, verb, p);
      const double sim = results[k++];
      t.Row().Add(Name(target));
      t.Add(b.post_us, 2).Add(b.request_wire_us, 2).Add(b.pcie_round_trip_us, 2);
      t.Add(b.memory_us, 2).Add(b.response_wire_us, 2).Add(b.completion_us, 2);
      t.Add(b.total_us(), 2).Add(sim, 2);
    }
    t.Print(std::cout, flags.csv());
    std::printf("\n");
  }
  std::printf("READ pays the PCIe column twice as much as WRITE (request +\n"
              "completion vs posted, Fig. 3), and the SmartNIC rows pay the extra\n"
              "switch/PCIe1 crossing inside it.\n");
  return 0;
}
