// Rack-scale sharded KV (ours): N full per-server stacks — SmartNIC model,
// adaptive governor, resilience, faults — as parallel-sim domains behind
// consistent-hash sharding with primary+follower replication and shard
// failover (src/topo/rack_kv.h). Four sections:
//
//   1. Scale sweep — servers x users x Zipf skew, closed-loop aggregate
//      fleets. Shows throughput scaling with servers/users and the skew
//      concentrating completions onto the hot key's primary shard.
//   2. Faulty rack — a drop + single-SoC-crash plan (override with
//      --faults) riding on the full stack: retries, watchdog nacks, and
//      replication keep both ledgers closed.
//   3. Whole-shard crash failover — one whole server (both endpoints,
//      addressed as the "rack.s1" fault-domain subtree) dies mid-window.
//      Every home collects failure evidence, promotes the follower within
//      a bounded number of governor epochs, and re-homes on recovery via
//      epoch probes.
//   4. Memory at 1M users — the same arrival rate from 1M and from 100k
//      users; the aggregate fleets keep request state O(in-flight), so the
//      instrumented resident-bytes counter barely moves while the user
//      count grows 10x.
//
// --check replays every cell serially (--jobs=1, --sim-threads=1) and
// asserts byte-identical fingerprints against the flag-selected grid point
// — CI byte-compares whole-output across (--jobs, --sim-threads) in
// {1,2,4}^2 on top — then asserts both conservation ledgers (generated ==
// completed + failed + shed; repl_pushed == repl_acked + repl_failed),
// user-count dominance of completions, skew dominance of shard imbalance,
// the failover bound (promote gap <= 2 governor epochs; re-home after
// restart), and the O(in-flight) memory bound at 1M users.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/runtime/sweep_runner.h"
#include "src/topo/rack_kv.h"
#include "src/workload/trace/trace.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

int g_sim_threads = 1;

RackKvParams Base() {
  RackKvParams p;
  p.servers = 4;
  p.users = 10000;
  p.think_mean_us = 1000.0;
  p.zipf_theta = 0.9;
  p.layout.keys = 4096;
  p.layout.cached_keys = 1024;
  p.layout.class_bytes = {64, 512, 2048};
  p.mix = {0.70, 0.25, 0.05};
  p.write_fraction = 0.1;
  p.window = FromMicros(400);
  p.seed = 42;
  p.sim_threads = g_sim_threads;
  return p;
}

// Section 1 axes. Users scale at fixed think time, so the offered load
// scales with the population (10k users -> ~10 req/us rack-wide).
const std::vector<int> kServers = {2, 4};
const std::vector<uint64_t> kUsers = {10000, 40000};
const std::vector<double> kThetas = {0.6, 0.99};

RackKvParams SweepPoint(int servers, uint64_t users, double theta) {
  RackKvParams p = Base();
  p.servers = servers;
  p.users = users;
  p.zipf_theta = theta;
  return p;
}

// Section 2: packet loss on every rack port plus one SoC crash-restart.
RackKvParams FaultPoint(const fault::FaultPlan& plan) {
  RackKvParams p = Base();
  if (!plan.empty()) {
    p.faults = plan;
  } else {
    p.faults.seed = 9;
    p.faults.drop_rate = 0.02;
    p.faults.crashes.push_back(
        {"rack.s1.soc", FromMicros(80), FromMicros(160), FromMicros(20)});
  }
  return p;
}

// Section 3: server 1 dies whole — the "rack.s1" subtree kills both its
// endpoint domains — and restarts at 200 us with a cold SoC cache.
RackKvParams FailoverPoint() {
  RackKvParams p = Base();
  p.faults.seed = 9;
  p.faults.crashes.push_back(
      {"rack.s1", FromMicros(80), FromMicros(200), FromMicros(20)});
  return p;
}

// Section 4: identical ~50 req/us offered load from two populations an
// order of magnitude apart.
RackKvParams MemPoint(uint64_t users) {
  RackKvParams p = Base();
  p.users = users;
  p.think_mean_us = static_cast<double>(users) / 50.0;
  p.zipf_theta = 0.99;
  p.window = FromMicros(200);
  return p;
}

std::vector<RackKvParams> AllCells(const fault::FaultPlan& plan,
                                   const trace::TracePlan& tplan) {
  std::vector<RackKvParams> cells;
  for (int servers : kServers) {
    for (uint64_t users : kUsers) {
      for (double theta : kThetas) {
        cells.push_back(SweepPoint(servers, users, theta));
      }
    }
  }
  cells.push_back(FaultPoint(plan));
  cells.push_back(FailoverPoint());
  cells.push_back(MemPoint(1000000));
  cells.push_back(MemPoint(100000));
  // A --trace plan rides every cell: rate via the fleets' peak-rate
  // thinning, churn as a draw-free rank rotation, scan upgrades at issue.
  // An empty plan leaves every cell byte-identical to a trace-free build
  // (tests/topo/rack_kv_test.cc pins the flat-trace case too).
  if (!tplan.empty()) {
    for (RackKvParams& c : cells) {
      c.trace = tplan;
    }
  }
  return cells;
}

std::vector<RackKvResult> RunCells(const std::vector<RackKvParams>& cells,
                                   int jobs, int sim_threads) {
  runtime::SweepQueue<RackKvResult> sweep(jobs);
  for (const RackKvParams& c : cells) {
    RackKvParams p = c;
    p.sim_threads = sim_threads;
    sweep.Add([p] { return RunRackKv(p); });
  }
  return sweep.Run();
}

std::string JoinFingerprints(const std::vector<RackKvResult>& rs) {
  std::string s;
  for (const RackKvResult& r : rs) {
    s += r.Fingerprint();
    s.push_back('\n');
  }
  return s;
}

// Largest per-server completion share relative to a perfectly even split —
// the skew-concentration observable for the dominance check.
double Imbalance(const RackKvResult& r) {
  uint64_t total = 0;
  uint64_t top = 0;
  for (uint64_t c : r.server_completed) {
    total += c;
    top = std::max(top, c);
  }
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(top) * static_cast<double>(r.server_completed.size()) /
         static_cast<double>(total);
}

bool CheckLedger(const RackKvResult& r, const char* label) {
  bool ok = true;
  if (!r.Conserved()) {
    std::printf("FAIL(%s): ledger open — generated %llu vs completed %llu + "
                "failed %llu + shed %llu; repl_pushed %llu vs acked %llu + "
                "failed %llu\n",
                label, static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.repl_pushed),
                static_cast<unsigned long long>(r.repl_acked),
                static_cast<unsigned long long>(r.repl_failed));
    ok = false;
  }
  uint64_t served_ok = 0;
  for (uint64_t c : r.server_completed) {
    served_ok += c;
  }
  // Every home completion rode exactly one ok serve; ok serves whose reply
  // lost the race to a home timeout add the (stale) excess.
  if (served_ok < r.completed) {
    std::printf("FAIL(%s): servers settled %llu ok serves < %llu home "
                "completions\n",
                label, static_cast<unsigned long long>(served_ok),
                static_cast<unsigned long long>(r.completed));
    ok = false;
  }
  if (r.repl_pushed != r.writes) {
    std::printf("FAIL(%s): repl_pushed %llu != writes %llu\n", label,
                static_cast<unsigned long long>(r.repl_pushed),
                static_cast<unsigned long long>(r.writes));
    ok = false;
  }
  if (r.completed > 0 && r.issued < r.generated) {
    std::printf("FAIL(%s): issued %llu < generated %llu\n", label,
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.generated));
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const fault::FaultPlan plan = fault::FaultsFlag(flags);
  const trace::TracePlan tplan = trace::TraceFlag(flags);
  const bool check = flags.GetBool(
      "check", false,
      "assert determinism + ledgers + dominance + failover + memory bounds");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  const std::string metrics = flags.GetString(
      "metrics", "",
      "write the rack.* metrics JSON of the 1M-user cell to this file");
  flags.Finish();

  std::vector<RackKvParams> cells = AllCells(plan, tplan);
  if (!metrics.empty()) {
    // The 1M-user point is the story-relevant dump: it carries the
    // O(in-flight) counters (rack.peak_inflight, rack.resident_client_bytes)
    // next to the full ledger.
    cells[cells.size() - 2].metrics_path = metrics;
  }
  const std::vector<RackKvResult> results =
      RunCells(cells, jobs, g_sim_threads);
  const size_t n_sweep = kServers.size() * kUsers.size() * kThetas.size();
  const RackKvResult& fa = results[n_sweep];       // faulty rack
  const RackKvResult& fo = results[n_sweep + 1];   // whole-shard failover
  const RackKvResult& big = results[n_sweep + 2];  // 1M users
  const RackKvResult& sml = results[n_sweep + 3];  // 100k users, same rate

  // -- Section 1: servers x users x skew ----------------------------------
  std::printf("== Rack sweep: closed-loop sharded KV, aggregate fleets ==\n");
  Table t({"srv", "users", "theta", "gen", "done", "mreqs", "p50us", "p99us",
           "soc%", "repl_ack", "imbal"});
  size_t i = 0;
  for (int servers : kServers) {
    for (uint64_t users : kUsers) {
      for (double theta : kThetas) {
        const RackKvResult& r = results[i++];
        const double routed = static_cast<double>(r.routed_host + r.routed_soc);
        t.Row()
            .Add(servers)
            .Add(users)
            .Add(theta, 2)
            .Add(r.generated)
            .Add(r.completed)
            .Add(static_cast<double>(r.completed) / ToMicros(Base().window), 2)
            .Add(ToMicros(r.p50_ps), 1)
            .Add(ToMicros(r.p99_ps), 1)
            .Add(routed > 0 ? 100.0 * static_cast<double>(r.routed_soc) / routed
                            : 0.0,
                 1)
            .Add(r.repl_acked)
            .Add(Imbalance(r), 2);
      }
    }
  }
  t.Print(std::cout, flags.csv());
  std::printf("expected: completions scale with the user population, and "
              "high skew concentrates completions onto the hot key's primary "
              "shard (imbal column).\n");

  // -- Section 2: the faulty rack -----------------------------------------
  std::printf("\n== Faulty rack: drop + SoC crash plan on the full stack ==\n");
  Table ft({"gen", "done", "failed", "shed", "timeouts", "nacks", "stale",
            "wdog", "repl_ack", "repl_fail"});
  ft.Row()
      .Add(fa.generated)
      .Add(fa.completed)
      .Add(fa.failed)
      .Add(fa.shed)
      .Add(fa.timeouts)
      .Add(fa.nacks)
      .Add(fa.stale_replies)
      .Add(fa.serve_timeouts)
      .Add(fa.repl_acked)
      .Add(fa.repl_failed);
  ft.Print(std::cout, flags.csv());
  std::printf("expected: drops surface as watchdog nacks and home timeouts, "
              "retries absorb them, and both ledgers close exactly.\n");

  // -- Section 3: whole-shard crash failover ------------------------------
  std::printf("\n== Whole-shard crash failover (rack.s1 dies 80-200 us) ==\n");
  Table ot({"promotions", "gap_us", "rehomed", "rehome_at_us", "probes",
            "refused", "wdog", "done", "failed"});
  ot.Row()
      .Add(fo.promotions)
      .Add(fo.max_promote_gap_us, 1)
      .Add(fo.rehomed)
      .Add(fo.first_rehome_at_us, 1)
      .Add(fo.probes)
      .Add(fo.crash_refused)
      .Add(fo.serve_timeouts)
      .Add(fo.completed)
      .Add(fo.failed);
  ot.Print(std::cout, flags.csv());
  std::printf("expected: every home promotes the shard follower within 2 "
              "governor epochs of first evidence, traffic re-routes, and "
              "epoch probes re-home the server after its 200 us restart.\n");

  // -- Section 4: 1M users in O(in-flight) memory -------------------------
  std::printf("\n== Aggregate fleets: same rate, 10x the users ==\n");
  Table mt({"users", "gen", "done", "peak_inflight", "resident_KiB",
            "draws"});
  for (const RackKvResult* r : {&big, &sml}) {
    mt.Row()
        .Add(r == &big ? uint64_t{1000000} : uint64_t{100000})
        .Add(r->generated)
        .Add(r->completed)
        .Add(r->peak_inflight)
        .Add(static_cast<double>(r->resident_client_bytes) / 1024.0, 1)
        .Add(r->fleet_draws);
  }
  mt.Print(std::cout, flags.csv());
  std::printf("expected: peak in-flight and resident bytes track the offered "
              "load, not the population — 1M users cost the same memory as "
              "100k.\n");

  if (!check) {
    return 0;
  }

  std::printf("\n== --check: determinism + ledgers + dominance + failover + "
              "memory ==\n");
  bool ok = true;

  // Byte-identical fingerprints against the serial grid corner; the CI rack
  // matrix byte-compares whole outputs across the (jobs, sim-threads) grid.
  const std::string here = JoinFingerprints(results);
  const std::string serial =
      JoinFingerprints(RunCells(cells, /*jobs=*/1, /*sim_threads=*/1));
  if (here != serial) {
    std::printf("FAIL: fingerprints differ from --jobs=1 --sim-threads=1 "
                "(ran --jobs=%d --sim-threads=%d)\n",
                jobs, g_sim_threads);
    ok = false;
  }

  for (size_t c = 0; c < results.size(); ++c) {
    const std::string label = "cell " + std::to_string(c);
    ok = CheckLedger(results[c], label.c_str()) && ok;
    if (results[c].completed == 0) {
      std::printf("FAIL(%s): nothing completed\n", label.c_str());
      ok = false;
    }
  }

  // Dominance in users: same think time, 4x the population => more load =>
  // more completions (the rack runs far below its serving capacity).
  i = 0;
  for (int servers : kServers) {
    (void)servers;
    const size_t base = i;
    for (size_t u = 0; u < kUsers.size(); ++u) {
      for (size_t th = 0; th < kThetas.size(); ++th) {
        if (u == 0) {
          continue;
        }
        const RackKvResult& lo = results[base + th];
        const RackKvResult& hi = results[base + u * kThetas.size() + th];
        if (hi.completed <= lo.completed) {
          std::printf("FAIL: %llu users completed %llu <= %llu users' %llu "
                      "(theta %.2f)\n",
                      static_cast<unsigned long long>(kUsers[u]),
                      static_cast<unsigned long long>(hi.completed),
                      static_cast<unsigned long long>(kUsers[0]),
                      static_cast<unsigned long long>(lo.completed),
                      kThetas[th]);
          ok = false;
        }
      }
    }
    i += kUsers.size() * kThetas.size();
  }

  // Dominance in skew: theta 0.99 concentrates completions onto the hot
  // key's primary harder than theta 0.6 (4-server cells).
  {
    const size_t four = kUsers.size() * kThetas.size();  // first 4-server cell
    for (size_t u = 0; u < kUsers.size(); ++u) {
      const RackKvResult& flat = results[four + u * kThetas.size()];
      const RackKvResult& skew = results[four + u * kThetas.size() + 1];
      if (Imbalance(skew) <= Imbalance(flat)) {
        std::printf("FAIL: imbalance at theta %.2f (%.3f) not above theta "
                    "%.2f (%.3f), users %llu\n",
                    kThetas[1], Imbalance(skew), kThetas[0], Imbalance(flat),
                    static_cast<unsigned long long>(kUsers[u]));
        ok = false;
      }
    }
  }

  // Replication actually ran in every fault-free sweep cell.
  for (size_t c = 0; c < n_sweep; ++c) {
    if (results[c].repl_acked == 0 || results[c].writes == 0) {
      std::printf("FAIL: cell %zu saw no replicated writes\n", c);
      ok = false;
    }
  }

  // Failover: evidence -> promotion within 2 governor epochs, and the
  // restarted server was re-homed by the probe machinery after 200 us.
  const double epochs2_us = 2.0 * ToMicros(Base().governor_epoch);
  if (fo.promotions == 0) {
    std::printf("FAIL: whole-shard crash never promoted a follower\n");
    ok = false;
  } else if (fo.max_promote_gap_us > epochs2_us) {
    std::printf("FAIL: promote gap %.1f us exceeds 2 governor epochs "
                "(%.1f us)\n",
                fo.max_promote_gap_us, epochs2_us);
    ok = false;
  }
  if (fo.rehomed == 0) {
    std::printf("FAIL: restarted server never re-homed\n");
    ok = false;
  } else if (fo.first_rehome_at_us <= 200.0) {
    std::printf("FAIL: re-home at %.1f us, before the 200 us restart\n",
                fo.first_rehome_at_us);
    ok = false;
  }
  if (fo.crash_refused + fo.serve_timeouts == 0) {
    std::printf("FAIL: crash produced no failure evidence\n");
    ok = false;
  }

  // O(in-flight) memory at 1M users: the resident counter must track the
  // in-flight peak, not the population.
  if (big.peak_inflight >= 1000000 / 100) {
    std::printf("FAIL: peak in-flight %llu is not << 1M users\n",
                static_cast<unsigned long long>(big.peak_inflight));
    ok = false;
  }
  if (big.resident_client_bytes >= (1u << 20)) {
    std::printf("FAIL: 1M-user resident state %llu bytes >= 1 MiB\n",
                static_cast<unsigned long long>(big.resident_client_bytes));
    ok = false;
  }
  if (big.resident_client_bytes >=
      4 * sml.resident_client_bytes + (1u << 16)) {
    std::printf("FAIL: resident state grew with the population (1M: %llu B, "
                "100k: %llu B)\n",
                static_cast<unsigned long long>(big.resident_client_bytes),
                static_cast<unsigned long long>(sml.resident_client_bytes));
    ok = false;
  }

  std::printf("%s\n",
              ok ? "CHECK PASSED: byte-identical across the grid corner, "
                   "both ledgers closed, user/skew dominance held, failover "
                   "bounded by 2 epochs with post-restart re-home, and 1M "
                   "users fit in O(in-flight) memory"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
