// Overload protection & endpoint failover (ours): the resilience layer
// (src/resilience) raced on the KV serving workload, in three sections.
//
//   1. Overload sweep — an open-loop arrival-rate grid through the serving
//      knee, governor-routed, with a deadline on every get. The baseline
//      arm carries the deadline alone: past the knee its queues grow for
//      the whole window, completions land past the budget, and *goodput*
//      (in-deadline completions — what the meter records once deadlines
//      are on) collapses. The resilient arm adds CoDel-style admission
//      control fed by the serving pools' queue-delay signal: it sheds the
//      lowest size class first and holds a goodput plateau past the knee.
//   2. Hedging — static-SoC serving under recurring Arm-core stalls; the
//      resilient arm duplicates slow small gets onto the host path after
//      an adaptive (counted-draw) delay. First completion wins, the loser
//      is cancelled, and the stall disappears from the tail.
//   3. Crash failover — a governor run with a SoC crash-restart window
//      (--faults can override the schedule). In-flight gets die with the
//      endpoint, deadline-clamped retries surface the evidence, the SoC
//      breaker trips within a bounded gap, the governor fails over to the
//      host path, and half-open probes re-admit the SoC after restart
//      (cold-cache rewarm misses and all).
//
// --check replays every cell at --jobs=1 and --jobs=N asserting
// byte-identical fingerprints, then asserts the no-collapse plateau, the
// baseline collapse, the bounded failover gap, breaker re-admission, and
// the conservation identities (generated == issued - hedges + shed, issued
// == completed + failed + cancelled, good + late == completed, hedges ==
// cancels after the drain).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/governor/serving.h"
#include "src/runtime/sweep_runner.h"

using namespace snicsim;  // NOLINT: bench brevity
using governor::PolicyKind;
using governor::RunServing;
using governor::ServingResult;
using governor::ServingRunConfig;

namespace {

// Deliberately small serving pools (1 host core + 2 Arm cores) so the knee
// sits at a few Mops and the bench sweeps through it quickly. Four equal
// size classes give the shedder a graded priority order — each CoDel level
// sheds one more class from the bottom (64 B first, 1 KiB last), so
// admission can settle near capacity instead of banging between all-on and
// all-off.
// The --sim-threads count, applied to every cell (set once in main before
// the sweep; see fig10_doorbell.cc for the pattern).
int g_sim_threads = 1;

ServingRunConfig Base() {
  ServingRunConfig c;
  c.sim_threads = g_sim_threads;
  c.client.threads = 4;
  c.fleet.machines = 4;
  c.fleet.logical_clients = 256;
  c.fleet.seed = 42;
  c.layout.keys = 4096;
  c.layout.cached_keys = 1024;
  c.layout.class_bytes = {64, 128, 512, 1024};
  c.mix.weights = {0.25, 0.25, 0.25, 0.25};
  c.zipf_theta = 0.99;
  c.host_cores = 1;
  c.soc_cores = 2;
  c.warmup = FromMicros(30);
  c.window = FromMicros(200);
  return c;
}

constexpr double kDeadlineUs = 40.0;

resilience::ResilienceConfig DeadlineOnly() {
  resilience::ResilienceConfig r;
  r.deadline = FromMicros(kDeadlineUs);
  return r;
}

resilience::ResilienceConfig Shedding() {
  resilience::ResilienceConfig r = DeadlineOnly();
  r.shedding = true;
  r.codel_target = FromMicros(8);
  r.codel_interval = FromMicros(20);
  return r;
}

ServingRunConfig OverloadPoint(double mops, bool resilient) {
  ServingRunConfig c = Base();
  c.policy = PolicyKind::kGovernor;
  // Lift the governor's SoC in-flight cap: it is itself a crude admission
  // controller, and with it in place the baseline never truly drowns. The
  // sweep isolates the resilience layer as the *only* overload protection.
  c.governor.soc_inflight_cap = 1 << 20;
  c.fleet.open_loop = true;
  c.fleet.open_mops = mops;
  c.resil = resilient ? Shedding() : DeadlineOnly();
  return c;
}

// Section 2: static-SoC serving with two 40 us Arm-core stall windows in
// the measurement window; the hedge arm may duplicate onto the host path.
ServingRunConfig HedgePoint(bool hedged) {
  ServingRunConfig c = Base();
  c.policy = PolicyKind::kStaticSoc;
  c.fleet.open_loop = true;
  c.fleet.open_mops = 1.0;
  c.faults.seed = 7;
  c.faults.stalls.push_back({"soc", FromMicros(60), FromMicros(100)});
  c.faults.stalls.push_back({"soc", FromMicros(140), FromMicros(180)});
  if (hedged) {
    c.resil.hedging = true;
    c.resil.hedge_max_bytes = 4096;
    c.resil.hedge_multiplier = 2.0;
    c.resil.hedge_min_delay = FromMicros(4);
  }
  return c;
}

// Section 3: the SoC endpoint crashes at 80 us, restarts at 140 us, and
// comes back with a 20 us cold-cache rewarm. Deadlines bound the failure
// detection; breakers turn it into failover.
ServingRunConfig CrashPoint(const fault::FaultPlan& plan) {
  ServingRunConfig c = Base();
  c.policy = PolicyKind::kGovernor;
  c.fleet.open_loop = true;
  // Above the host pool's lone-core capacity (~3 Mops): the governor *needs*
  // path 2, so the crash hurts, and shedding has to carry the host through
  // the failover interval.
  c.fleet.open_mops = 4.0;
  c.client.transport_timeout = FromMicros(12);
  if (!plan.empty()) {
    c.faults = plan;
  } else {
    c.faults.seed = 7;
    c.faults.crashes.push_back(
        {"soc", FromMicros(80), FromMicros(140), FromMicros(20)});
  }
  c.resil = Shedding();
  c.resil.breakers = true;
  c.resil.breaker_threshold = 0.5;
  c.resil.breaker_min_samples = 4;
  c.resil.breaker_open_epochs = 2;
  c.resil.breaker_probes = 8;
  return c;
}

// One flat cell list so a single SweepQueue covers every section and the
// --jobs determinism check replays everything.
std::vector<ServingRunConfig> AllCells(const std::vector<double>& rates,
                                       const fault::FaultPlan& plan) {
  std::vector<ServingRunConfig> cells;
  for (double mops : rates) {
    cells.push_back(OverloadPoint(mops, /*resilient=*/false));
    cells.push_back(OverloadPoint(mops, /*resilient=*/true));
  }
  cells.push_back(HedgePoint(/*hedged=*/false));
  cells.push_back(HedgePoint(/*hedged=*/true));
  cells.push_back(CrashPoint(plan));
  return cells;
}

std::vector<ServingResult> RunCells(const std::vector<ServingRunConfig>& cells,
                                    int jobs) {
  runtime::SweepQueue<ServingResult> sweep(jobs);
  for (const ServingRunConfig& c : cells) {
    sweep.Add([c] { return RunServing(c); });
  }
  return sweep.Run();
}

std::string JoinFingerprints(const std::vector<ServingResult>& rs) {
  std::string s;
  for (const ServingResult& r : rs) {
    s += r.Fingerprint();
    s.push_back('\n');
  }
  return s;
}

// Closes the whole request ledger: every generated request is either shed
// or issued, every hedge adds exactly one extra wire copy, and every issued
// copy terminates exactly once.
bool Conserved(const ServingResult& r, bool has_resil, const char* label) {
  bool ok = true;
  if (r.generated != r.issued - r.hedges + r.shed) {
    std::printf("FAIL(%s): generated %llu != issued %llu - hedges %llu + "
                "shed %llu\n",
                label, static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.hedges),
                static_cast<unsigned long long>(r.shed));
    ok = false;
  }
  if (r.issued != r.completed + r.failed + r.cancelled) {
    std::printf("FAIL(%s): issued %llu != completed %llu + failed %llu + "
                "cancelled %llu\n",
                label, static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.cancelled));
    ok = false;
  }
  if (!has_resil) {
    // Without a manager the deadline/shed/hedge ledgers are not surfaced;
    // only the base identity above applies.
    return ok;
  }
  if (r.good + r.late != r.completed) {
    std::printf("FAIL(%s): good %llu + late %llu != completed %llu\n", label,
                static_cast<unsigned long long>(r.good),
                static_cast<unsigned long long>(r.late),
                static_cast<unsigned long long>(r.completed));
    ok = false;
  }
  if (r.deadline_failed > r.failed) {
    std::printf("FAIL(%s): deadline_failed %llu > failed %llu\n", label,
                static_cast<unsigned long long>(r.deadline_failed),
                static_cast<unsigned long long>(r.failed));
    ok = false;
  }
  if (r.shed != r.shed_codel + r.shed_bucket + r.shed_deadline) {
    std::printf("FAIL(%s): shed %llu != codel %llu + bucket %llu + "
                "deadline %llu\n",
                label, static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.shed_codel),
                static_cast<unsigned long long>(r.shed_bucket),
                static_cast<unsigned long long>(r.shed_deadline));
    ok = false;
  }
  if (r.cancelled != r.hedges) {
    // Every launched hedge duplicates one request into two wire copies, of
    // which exactly one is cancelled after the drain.
    std::printf("FAIL(%s): cancelled %llu != hedges %llu\n", label,
                static_cast<unsigned long long>(r.cancelled),
                static_cast<unsigned long long>(r.hedges));
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const fault::FaultPlan plan = fault::FaultsFlag(flags);
  const bool check = flags.GetBool(
      "check", false, "assert no-collapse + failover gap + --jobs determinism");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  flags.Finish();

  const std::vector<double> rates = {1.0, 2.0, 4.0, 8.0, 16.0};
  const std::vector<ServingRunConfig> cells = AllCells(rates, plan);
  const std::vector<ServingResult> results = RunCells(cells, jobs);

  // -- Section 1: the overload sweep -------------------------------------
  std::printf("== Overload sweep: goodput (in-deadline Mreqs/s, %.0f us "
              "budget) vs arrival rate ==\n",
              kDeadlineUs);
  Table t({"mops", "base good", "base p99us", "resil good", "resil p99us",
           "shed_codel", "shed_ddl", "late base", "late resil"});
  std::vector<double> base_good(rates.size()), resil_good(rates.size());
  for (size_t i = 0; i < rates.size(); ++i) {
    const ServingResult& base = results[2 * i];
    const ServingResult& res = results[2 * i + 1];
    base_good[i] = base.mreqs;
    resil_good[i] = res.mreqs;
    t.Row()
        .Add(rates[i], 2)
        .Add(base.mreqs, 3)
        .Add(base.p99_us, 1)
        .Add(res.mreqs, 3)
        .Add(res.p99_us, 1)
        .Add(res.shed_codel)
        .Add(res.shed_deadline)
        .Add(base.late)
        .Add(res.late);
  }
  t.Print(std::cout, flags.csv());
  std::printf("expected: both arms agree below the knee; past it the "
              "baseline's goodput collapses (every completion is late) while "
              "the shedding arm holds a plateau by refusing class-0 work.\n");

  // -- Section 2: hedging under SoC stalls -------------------------------
  const ServingResult& hoff = results[2 * rates.size()];
  const ServingResult& hon = results[2 * rates.size() + 1];
  std::printf("\n== Hedged gets vs recurring 40 us SoC stalls (static-SoC "
              "serving) ==\n");
  Table ht({"hedge", "mreqs", "p50_us", "p99_us", "hedges", "wins", "cancels",
            "draws"});
  ht.Row()
      .Add("off")
      .Add(hoff.mreqs, 3)
      .Add(hoff.p50_us, 2)
      .Add(hoff.p99_us, 2)
      .Add(hoff.hedges)
      .Add(hoff.hedge_wins)
      .Add(hoff.hedge_cancels)
      .Add(hoff.resil_draws);
  ht.Row()
      .Add("on")
      .Add(hon.mreqs, 3)
      .Add(hon.p50_us, 2)
      .Add(hon.p99_us, 2)
      .Add(hon.hedges)
      .Add(hon.hedge_wins)
      .Add(hon.hedge_cancels)
      .Add(hon.resil_draws);
  ht.Print(std::cout, flags.csv());
  std::printf("expected: the stall windows dominate the unhedged tail; the "
              "hedged arm escapes to the host path after one counted-draw "
              "delay per hedge, cutting p99.\n");

  // -- Section 3: SoC crash-restart failover ------------------------------
  const ServingResult& cr = results[2 * rates.size() + 2];
  std::printf("\n== SoC crash-restart failover (governor + breakers) ==\n");
  Table ct({"crash_drops", "rewarm_miss", "trips", "reopens", "probes",
            "denied", "trip_us", "gap_us", "good", "late", "failed", "soc%"});
  ct.Row()
      .Add(cr.crash_drops)
      .Add(cr.rewarm_misses)
      .Add(cr.breaker_trips)
      .Add(cr.breaker_reopens)
      .Add(cr.breaker_probes)
      .Add(cr.breaker_denied)
      .Add(cr.soc_trip_us, 1)
      .Add(cr.soc_trip_gap_us, 1)
      .Add(cr.good)
      .Add(cr.late)
      .Add(cr.failed)
      .Add(100.0 * cr.share_soc, 1);
  ct.Print(std::cout, flags.csv());
  std::printf("expected: in-flight SoC gets die in the crash window, the "
              "breaker trips within ~2 governor epochs of the first failure, "
              "routing fails over to the host, and half-open probes re-admit "
              "the SoC after restart (paying rewarm misses over path 3).\n");

  if (!check) {
    return 0;
  }

  std::printf("\n== --check: determinism + no-collapse + failover ==\n");
  bool ok = true;

  // Determinism: every cell byte-identical between --jobs=1 and --jobs=N.
  const std::string serial = JoinFingerprints(RunCells(cells, /*jobs=*/1));
  if (serial != JoinFingerprints(results)) {
    std::printf("FAIL: fingerprints differ between --jobs=1 and --jobs=%d\n",
                jobs);
    ok = false;
  }

  for (size_t i = 0; i < results.size(); ++i) {
    const std::string label = "cell " + std::to_string(i);
    ok = Conserved(results[i], !cells[i].resil.empty(), label.c_str()) && ok;
  }

  // Knee + plateau: the resilient arm's best rate must not be the grid
  // edge, and goodput at 2x the knee must hold >= 0.9x the knee.
  const size_t knee = static_cast<size_t>(
      std::max_element(resil_good.begin(), resil_good.end()) -
      resil_good.begin());
  if (knee + 1 >= rates.size()) {
    std::printf("FAIL: knee at the top of the rate grid (%.1f Mops) — widen "
                "the sweep\n",
                rates[knee]);
    ok = false;
  } else {
    size_t twok = knee;
    while (twok + 1 < rates.size() && rates[twok] < 2.0 * rates[knee]) {
      ++twok;
    }
    if (resil_good[twok] < 0.9 * resil_good[knee]) {
      std::printf("FAIL: resilient goodput at %.1f Mops (%.3f) fell below "
                  "0.9x the knee (%.3f at %.1f Mops)\n",
                  rates[twok], resil_good[twok], resil_good[knee],
                  rates[knee]);
      ok = false;
    }
    const double base_peak = *std::max_element(base_good.begin(), base_good.end());
    if (base_good.back() >= 0.7 * base_peak) {
      std::printf("FAIL: baseline did not collapse (%.3f at %.1f Mops vs "
                  "peak %.3f)\n",
                  base_good.back(), rates.back(), base_peak);
      ok = false;
    }
    if (resil_good.back() <= base_good.back()) {
      std::printf("FAIL: shedding arm not above baseline at the top rate\n");
      ok = false;
    }
    if (results[2 * rates.size() - 1].shed == 0) {
      std::printf("FAIL: no requests shed at the top rate\n");
      ok = false;
    }
  }

  // Hedging: wins exist, the tail improves, and the draw ledger is exact
  // (one delay draw per eligible issue, win for every cancelled loser).
  if (hon.hedge_wins == 0) {
    std::printf("FAIL: hedging never won a race\n");
    ok = false;
  }
  if (hon.p99_us >= hoff.p99_us) {
    std::printf("FAIL: hedged p99 (%.2f us) not below unhedged (%.2f us)\n",
                hon.p99_us, hoff.p99_us);
    ok = false;
  }

  // Failover: the crash produced evidence, the breaker tripped on it
  // within 2 governor epochs, and probes re-admitted the endpoint.
  const double epoch_us = ToMicros(governor::GovernorConfig().epoch);
  if (cr.crash_drops == 0) {
    std::printf("FAIL: crash window dropped nothing\n");
    ok = false;
  }
  if (cr.breaker_trips == 0) {
    std::printf("FAIL: SoC breaker never tripped\n");
    ok = false;
  } else if (cr.soc_trip_gap_us > 2.0 * epoch_us) {
    std::printf("FAIL: failover gap %.1f us exceeds 2 epochs (%.1f us)\n",
                cr.soc_trip_gap_us, 2.0 * epoch_us);
    ok = false;
  }
  if (cr.breaker_probes == 0) {
    std::printf("FAIL: no half-open probes after the crash\n");
    ok = false;
  }
  if (cr.rewarm_misses == 0) {
    std::printf("FAIL: restart came up warm (no rewarm misses)\n");
    ok = false;
  }

  std::printf("%s\n",
              ok ? "CHECK PASSED: byte-identical across --jobs, plateau held "
                   "at 2x the knee vs baseline collapse, bounded failover "
                   "gap, breaker re-admission, ledger conserved"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
