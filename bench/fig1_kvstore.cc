// Figure 1: the motivating distributed KV-store example.
//
// (a) RNIC client-direct gets: one-sided READ traversal of the index plus a
//     value READ = 2+ network round trips (network amplification).
// (b) SmartNIC offload: one SEND to the SoC, which resolves the get locally
//     (values in SoC memory) or over path ③ (values in host memory).
#include <cstdio>
#include <iostream>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/kvstore/kv.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/meter.h"

using namespace snicsim;     // NOLINT: bench brevity
using namespace snicsim::kv;  // NOLINT

namespace {

constexpr uint64_t kKeys = 100000;

IndexConfig MakeIndexConfig() {
  IndexConfig c;
  c.buckets = 1u << 16;
  c.value_bytes = 256;
  c.value_base = 1ull * kGiB;
  return c;
}

struct KvResult {
  double avg_latency_us = 0.0;
  double avg_rts = 0.0;
  double kgets_per_sec = 0.0;
};

// Client-direct gets over one-sided READs against the host region.
KvResult RunDirect(int concurrent_gets) {
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  ClientMachine client(&sim, &fabric, ClientParams{}, "cli");
  KvIndex index(MakeIndexConfig());
  for (uint64_t k = 1; k <= kKeys; ++k) {
    index.Put(k);
  }
  rdma::RemoteMemoryRegion mr;
  mr.engine = &server.nic();
  mr.endpoint = server.host_ep();
  mr.server_port = server.port();
  mr.addr = 0;
  mr.length = 8ull * kGiB;

  Rng rng(5);
  double total_lat = 0;
  double total_rts = 0;
  auto gets = std::make_shared<uint64_t>(0);
  const SimTime deadline = FromMillis(2);
  for (int t = 0; t < concurrent_gets; ++t) {
    auto qp = std::make_shared<rdma::QueuePair>(&client, t % 12, mr);
    auto kv = std::make_shared<DirectKvClient>(&index, qp.get());
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&sim, &rng, kv, qp, loop, gets, &total_lat, &total_rts, deadline] {
      if (sim.now() >= deadline) {
        return;
      }
      const uint64_t key = 1 + rng.NextBelow(kKeys);
      const SimTime start = sim.now();
      kv->Get(key, [&sim, loop, gets, &total_lat, &total_rts, start](GetResult r) {
        total_lat += ToMicros(sim.now() - start);
        total_rts += r.round_trips;
        ++*gets;
        (*loop)();
      });
    };
    sim.In(0, *loop);
  }
  sim.RunUntil(deadline);
  KvResult out;
  if (*gets > 0) {
    out.avg_latency_us = total_lat / static_cast<double>(*gets);
    out.avg_rts = total_rts / static_cast<double>(*gets);
    out.kgets_per_sec = static_cast<double>(*gets) / ToSeconds(deadline) / 1e3;
  }
  return out;
}

// SoC-offloaded gets: one SEND per get.
KvResult RunOffload(int concurrent_gets, bool values_on_host) {
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  ClientMachine client(&sim, &fabric, ClientParams{}, "cli");
  KvIndex index(MakeIndexConfig());
  for (uint64_t k = 1; k <= kKeys; ++k) {
    index.Put(k);
  }
  SocOffloadKvServer::Config cfg;
  cfg.values_on_host = values_on_host;
  SocOffloadKvServer offload(&sim, &server, &index, cfg);
  offload.SeedKeys(kKeys);
  rdma::RemoteMemoryRegion mr;
  mr.engine = &server.nic();
  mr.endpoint = server.soc_ep();
  mr.server_port = server.port();
  mr.addr = 0;
  mr.length = 1ull * kGiB;

  double total_lat = 0;
  auto gets = std::make_shared<uint64_t>(0);
  const SimTime deadline = FromMillis(2);
  for (int t = 0; t < concurrent_gets; ++t) {
    auto qp = std::make_shared<rdma::QueuePair>(&client, t % 12, mr);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&sim, qp, loop, gets, &total_lat, deadline] {
      if (sim.now() >= deadline) {
        return;
      }
      const SimTime start = sim.now();
      qp->PostSend(16, 0, [&sim, loop, gets, &total_lat, start](SimTime) {
        total_lat += ToMicros(sim.now() - start);
        ++*gets;
        (*loop)();
      });
    };
    sim.In(0, *loop);
  }
  sim.RunUntil(deadline);
  KvResult out;
  if (*gets > 0) {
    out.avg_latency_us = total_lat / static_cast<double>(*gets);
    out.avg_rts = 1.0;
    out.kgets_per_sec = static_cast<double>(*gets) / ToSeconds(deadline) / 1e3;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t conc = flags.GetInt("concurrency", 24, "concurrent gets");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();
  const int c = static_cast<int>(conc);

  // The three designs are independent experiments: run them as a sweep.
  runtime::SweepQueue<KvResult> sweep(jobs);
  sweep.Add([c] { return RunDirect(c); });
  sweep.Add([c] { return RunOffload(c, /*values_on_host=*/false); });
  sweep.Add([c] { return RunOffload(c, /*values_on_host=*/true); });
  const std::vector<KvResult> results = sweep.Run();
  const KvResult& direct = results[0];
  const KvResult& soc_local = results[1];
  const KvResult& soc_host = results[2];

  std::printf("== Figure 1: KV get, %llu keys, %d concurrent gets ==\n",
              static_cast<unsigned long long>(kKeys), c);
  Table t({"design", "net round trips", "avg latency us", "Kgets/s"});
  t.Row().Add("RNIC one-sided (a)").Add(direct.avg_rts, 2).Add(direct.avg_latency_us, 2)
      .Add(direct.kgets_per_sec, 0);
  t.Row().Add("SNIC offload, values on SoC (b)").Add(soc_local.avg_rts, 2)
      .Add(soc_local.avg_latency_us, 2).Add(soc_local.kgets_per_sec, 0);
  t.Row().Add("SNIC offload, values on host (b+3)").Add(soc_host.avg_rts, 2)
      .Add(soc_host.avg_latency_us, 2).Add(soc_host.kgets_per_sec, 0);
  t.Print(std::cout, flags.csv());
  std::printf("\noffload removes the index-traversal round trips; placing values in\n"
              "host memory re-adds a path-(3) hop but keeps one network RT.\n");
  return 0;
}
