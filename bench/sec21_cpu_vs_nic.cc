// §2.1 Issue #1 (host CPU occupation): a 24-core server saturates at
// ~87 M msgs/s of two-sided traffic while the NIC cores themselves can
// process ~195 M packets/s — the motivation for offloading.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  HarnessConfig cfg;
  cfg.client_machines = 11;
  cfg.client.window = 32;
  cfg.warmup = FromMicros(120);
  cfg.window = FromMicros(400);

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<Measurement> sweep(jobs);
  // Two-sided: limited by the echo server's 24 cores.
  sweep.Add([cfg] {
    return MeasureInboundPath(ServerKind::kRnicHost, Verb::kSend, 32, cfg);
  });
  // NIC packet processing: 0B one-sided READs never leave the NIC cores.
  sweep.Add([cfg] {
    return MeasureInboundPath(ServerKind::kRnicHost, Verb::kRead, 0, cfg);
  });
  const std::vector<Measurement> results = sweep.Run();
  const Measurement& send = results[0];
  const Measurement& nic = results[1];

  Table t({"workload", "measured", "paper"});
  t.Row().Add("two-sided echo, 24 host cores").Add(FormatMpps(send.mreqs)).Add("87 Mpps");
  t.Row().Add("NIC cores alone (0B READ)").Add(FormatMpps(nic.mreqs)).Add(">195 Mpps");
  t.Row().Add("CPU/NIC gap").Add(nic.mreqs / send.mreqs, 2).Add("~2.2x");
  t.Print(std::cout, flags.csv());

  std::printf("\nthe host CPU, not the NIC, is the two-sided bottleneck: offloading\n"
              "or one-sided designs are needed to keep a 200 Gbps NIC busy.\n");
  return 0;
}
