file(REMOVE_RECURSE
  "CMakeFiles/fig5_flows.dir/fig5_flows.cc.o"
  "CMakeFiles/fig5_flows.dir/fig5_flows.cc.o.d"
  "fig5_flows"
  "fig5_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
