# Empty compiler generated dependencies file for fig5_flows.
# This may be replaced when dependencies are built.
