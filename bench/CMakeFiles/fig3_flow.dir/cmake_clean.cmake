file(REMOVE_RECURSE
  "CMakeFiles/fig3_flow.dir/fig3_flow.cc.o"
  "CMakeFiles/fig3_flow.dir/fig3_flow.cc.o.d"
  "fig3_flow"
  "fig3_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
