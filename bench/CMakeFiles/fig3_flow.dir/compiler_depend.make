# Empty compiler generated dependencies file for fig3_flow.
# This may be replaced when dependencies are built.
