file(REMOVE_RECURSE
  "CMakeFiles/ablation_vendor.dir/ablation_vendor.cc.o"
  "CMakeFiles/ablation_vendor.dir/ablation_vendor.cc.o.d"
  "ablation_vendor"
  "ablation_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
