# Empty dependencies file for ablation_vendor.
# This may be replaced when dependencies are built.
