# Empty compiler generated dependencies file for ablation_bf3.
# This may be replaced when dependencies are built.
