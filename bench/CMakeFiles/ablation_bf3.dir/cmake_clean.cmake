file(REMOVE_RECURSE
  "CMakeFiles/ablation_bf3.dir/ablation_bf3.cc.o"
  "CMakeFiles/ablation_bf3.dir/ablation_bf3.cc.o.d"
  "ablation_bf3"
  "ablation_bf3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bf3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
