# Empty compiler generated dependencies file for sec_faults.
# This may be replaced when dependencies are built.
