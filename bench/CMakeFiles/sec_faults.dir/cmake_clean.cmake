file(REMOVE_RECURSE
  "CMakeFiles/sec_faults.dir/sec_faults.cc.o"
  "CMakeFiles/sec_faults.dir/sec_faults.cc.o.d"
  "sec_faults"
  "sec_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
