file(REMOVE_RECURSE
  "CMakeFiles/sec_trace.dir/sec_trace.cc.o"
  "CMakeFiles/sec_trace.dir/sec_trace.cc.o.d"
  "sec_trace"
  "sec_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
