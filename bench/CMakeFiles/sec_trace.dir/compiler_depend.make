# Empty compiler generated dependencies file for sec_trace.
# This may be replaced when dependencies are built.
