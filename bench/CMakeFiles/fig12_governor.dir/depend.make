# Empty dependencies file for fig12_governor.
# This may be replaced when dependencies are built.
