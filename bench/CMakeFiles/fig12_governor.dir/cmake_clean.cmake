file(REMOVE_RECURSE
  "CMakeFiles/fig12_governor.dir/fig12_governor.cc.o"
  "CMakeFiles/fig12_governor.dir/fig12_governor.cc.o.d"
  "fig12_governor"
  "fig12_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
