file(REMOVE_RECURSE
  "CMakeFiles/fig8_large_read.dir/fig8_large_read.cc.o"
  "CMakeFiles/fig8_large_read.dir/fig8_large_read.cc.o.d"
  "fig8_large_read"
  "fig8_large_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_large_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
