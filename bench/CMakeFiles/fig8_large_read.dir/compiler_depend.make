# Empty compiler generated dependencies file for fig8_large_read.
# This may be replaced when dependencies are built.
