file(REMOVE_RECURSE
  "CMakeFiles/fig10_doorbell.dir/fig10_doorbell.cc.o"
  "CMakeFiles/fig10_doorbell.dir/fig10_doorbell.cc.o.d"
  "fig10_doorbell"
  "fig10_doorbell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_doorbell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
