# Empty dependencies file for fig10_doorbell.
# This may be replaced when dependencies are built.
