file(REMOVE_RECURSE
  "CMakeFiles/rack_scale.dir/rack_scale.cc.o"
  "CMakeFiles/rack_scale.dir/rack_scale.cc.o.d"
  "rack_scale"
  "rack_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
