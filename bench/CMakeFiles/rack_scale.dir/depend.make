# Empty dependencies file for rack_scale.
# This may be replaced when dependencies are built.
