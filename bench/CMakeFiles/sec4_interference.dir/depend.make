# Empty dependencies file for sec4_interference.
# This may be replaced when dependencies are built.
