file(REMOVE_RECURSE
  "CMakeFiles/sec4_interference.dir/sec4_interference.cc.o"
  "CMakeFiles/sec4_interference.dir/sec4_interference.cc.o.d"
  "sec4_interference"
  "sec4_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
