# Empty compiler generated dependencies file for tab3_pcie_model.
# This may be replaced when dependencies are built.
