file(REMOVE_RECURSE
  "CMakeFiles/tab3_pcie_model.dir/tab3_pcie_model.cc.o"
  "CMakeFiles/tab3_pcie_model.dir/tab3_pcie_model.cc.o.d"
  "tab3_pcie_model"
  "tab3_pcie_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_pcie_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
