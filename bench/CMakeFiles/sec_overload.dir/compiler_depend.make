# Empty compiler generated dependencies file for sec_overload.
# This may be replaced when dependencies are built.
