file(REMOVE_RECURSE
  "CMakeFiles/sec_overload.dir/sec_overload.cc.o"
  "CMakeFiles/sec_overload.dir/sec_overload.cc.o.d"
  "sec_overload"
  "sec_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
