file(REMOVE_RECURSE
  "CMakeFiles/ablation_zipf.dir/ablation_zipf.cc.o"
  "CMakeFiles/ablation_zipf.dir/ablation_zipf.cc.o.d"
  "ablation_zipf"
  "ablation_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
