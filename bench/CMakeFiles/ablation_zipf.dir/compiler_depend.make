# Empty compiler generated dependencies file for ablation_zipf.
# This may be replaced when dependencies are built.
