file(REMOVE_RECURSE
  "CMakeFiles/fig9_host_soc.dir/fig9_host_soc.cc.o"
  "CMakeFiles/fig9_host_soc.dir/fig9_host_soc.cc.o.d"
  "fig9_host_soc"
  "fig9_host_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_host_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
