# Empty compiler generated dependencies file for fig9_host_soc.
# This may be replaced when dependencies are built.
