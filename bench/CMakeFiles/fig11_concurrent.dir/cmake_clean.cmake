file(REMOVE_RECURSE
  "CMakeFiles/fig11_concurrent.dir/fig11_concurrent.cc.o"
  "CMakeFiles/fig11_concurrent.dir/fig11_concurrent.cc.o.d"
  "fig11_concurrent"
  "fig11_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
