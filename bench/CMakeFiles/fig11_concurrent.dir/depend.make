# Empty dependencies file for fig11_concurrent.
# This may be replaced when dependencies are built.
