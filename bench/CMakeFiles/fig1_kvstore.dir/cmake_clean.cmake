file(REMOVE_RECURSE
  "CMakeFiles/fig1_kvstore.dir/fig1_kvstore.cc.o"
  "CMakeFiles/fig1_kvstore.dir/fig1_kvstore.cc.o.d"
  "fig1_kvstore"
  "fig1_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
