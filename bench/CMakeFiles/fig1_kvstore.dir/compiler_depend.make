# Empty compiler generated dependencies file for fig1_kvstore.
# This may be replaced when dependencies are built.
