# Empty compiler generated dependencies file for fig7_skew.
# This may be replaced when dependencies are built.
