file(REMOVE_RECURSE
  "CMakeFiles/fig7_skew.dir/fig7_skew.cc.o"
  "CMakeFiles/fig7_skew.dir/fig7_skew.cc.o.d"
  "fig7_skew"
  "fig7_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
