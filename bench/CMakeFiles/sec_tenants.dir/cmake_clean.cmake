file(REMOVE_RECURSE
  "CMakeFiles/sec_tenants.dir/sec_tenants.cc.o"
  "CMakeFiles/sec_tenants.dir/sec_tenants.cc.o.d"
  "sec_tenants"
  "sec_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
