# Empty compiler generated dependencies file for sec_tenants.
# This may be replaced when dependencies are built.
