# Empty compiler generated dependencies file for sec21_cpu_vs_nic.
# This may be replaced when dependencies are built.
