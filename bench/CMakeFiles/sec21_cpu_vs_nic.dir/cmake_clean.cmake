file(REMOVE_RECURSE
  "CMakeFiles/sec21_cpu_vs_nic.dir/sec21_cpu_vs_nic.cc.o"
  "CMakeFiles/sec21_cpu_vs_nic.dir/sec21_cpu_vs_nic.cc.o.d"
  "sec21_cpu_vs_nic"
  "sec21_cpu_vs_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec21_cpu_vs_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
