// Figure 11: NIC-core saturation with 0 B READs (which never reach PCIe) as
// requester machines are added, for a single endpoint vs. both endpoints.
//
// A single path saturates around the shared pipeline + one dedicated slice
// (~176 Mpps); driving host and SoC concurrently unlocks the second
// dedicated slice (~195 Mpps, +4-13%). The aggregate of the two paths
// measured separately (~352 Mpps) far exceeds the concurrent total,
// showing most NIC cores are shared (paper §4).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/meter.h"
#include "src/topo/server.h"
#include "src/workload/client.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

// machines_host to path ①, machines_soc to path ②; returns Mreq/s.
double Run(int machines_host, int machines_soc) {
  Simulator sim;
  const TestbedParams tp;
  Fabric fabric(&sim, tp.network_link_propagation, tp.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, tp);
  ClientParams cp;
  cp.window = 32;  // deep pipeline: 0B ops are cheap
  auto clients = MakeClients(&sim, &fabric, cp, machines_host + machines_soc);
  Meter meter(&sim);
  meter.SetWindow(FromMicros(30), FromMicros(180));
  TargetSpec host;
  host.engine = &bf.nic();
  host.endpoint = bf.host_ep();
  host.server_port = bf.port();
  host.verb = Verb::kRead;
  host.payload = 0;
  TargetSpec soc = host;
  soc.endpoint = bf.soc_ep();
  uint64_t seed = 1;
  for (int i = 0; i < machines_host + machines_soc; ++i) {
    clients[static_cast<size_t>(i)]->Start(
        i < machines_host ? host : soc,
        AddressGenerator(0, 10ull * 1024 * kMiB, 64, seed++), &meter);
  }
  sim.RunUntil(FromMicros(180));
  return meter.MReqsPerSec();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t max_machines = flags.GetInt("max-machines", 11, "requesters to sweep");
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  for (int m = 1; m <= max_machines; ++m) {
    // Concurrent: five machines pinned on one endpoint (enough to saturate
    // it alone), the rest added on the other — the paper's methodology.
    const int pinned = std::min(5, m);
    sweep.Add([m] { return Run(m, 0); });
    sweep.Add([m] { return Run(0, m); });
    sweep.Add([pinned, m] { return Run(pinned, m - pinned); });
    sweep.Add([pinned, m] { return Run(m - pinned, pinned); });
  }
  sweep.Add([] { return Run(11, 0); });
  sweep.Add([] { return Run(6, 5); });
  const std::vector<double> results = sweep.Run();

  std::printf("== Figure 11: 0B READ throughput vs requester machines (M reqs/s) ==\n");
  Table t({"machines", "SNIC(1) only", "SNIC(2) only", "SNIC(1+2)", "SNIC(2+1)"});
  size_t k = 0;
  for (int m = 1; m <= max_machines; ++m) {
    t.Row().Add(m);
    t.Add(results[k++], 1);
    t.Add(results[k++], 1);
    t.Add(results[k++], 1);
    t.Add(results[k++], 1);
  }
  t.Print(std::cout, flags.csv());

  const double alone = results[k++];
  const double both = results[k++];
  std::printf("\nsingle path peak: %.1f M; concurrent peak: %.1f M (+%.0f%%); "
              "separate-aggregate: %.1f M\n",
              alone, both, (both / alone - 1.0) * 100.0, 2 * alone);
  std::printf("paper: ~5 machines saturate one path; concurrent gives +4-13%%; "
              "aggregate 352 vs concurrent 195 Mpps.\n");
  return 0;
}
