// Rack membership change & shard repair (ours): permanent server loss on
// the rack-scale sharded KV (src/topo/rack_kv.h) with the DESIGN.md §16
// membership plane enabled. Three sections:
//
//   1. Loss sweep — losses x migration-budget x load. A `permloss=` plan
//      kills one (or two) whole servers forever; every live home detects
//      the loss on its own probe clock, removes the server from its ring
//      copy, and the surviving replicas stream the lost key ranges to
//      their new owners over path ③, paced by a token bucket provisioned
//      out of SafePath3BudgetGbps and metered as repair.path3_bytes
//      against the governor's budget gate.
//   2. Corruption & scrubbing — a `corrupt=` plan flips a deterministic
//      fraction of one server's stored checksums; every serve verifies
//      (read repair) and the anti-entropy scrubber walks the shard at a
//      budgeted rate, healing from the surviving replica. No corrupt value
//      is ever served.
//   3. Loss + corruption combined — the CI grid cell: migration can
//      propagate a corrupt sole copy (counted, never silent) and the
//      corruption ledger still closes exactly.
//
// --check replays every cell serially (--jobs=1 --sim-threads=1) and
// asserts byte-identical fingerprints against the flag-selected grid
// point — CI byte-compares whole outputs across (--jobs, --sim-threads)
// in {1,2,4}^2 on top — then asserts: all four conservation ledgers, zero
// undetected corrupt serves everywhere, convergence (member_epoch ==
// losses; every live domain executed every removal), no lost keys under a
// single loss, repair completion within a budget-derived bound, repair
// finishing faster with a larger reserved budget, a goodput floor during
// migration, and full heal (corrupt_remaining == 0) in the scrub cell.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/model/bounds.h"
#include "src/runtime/sweep_runner.h"
#include "src/topo/rack_kv.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

int g_sim_threads = 1;

constexpr double kEpochUs = 50.0;
constexpr double kPermLossUs = 120.0;   // first server dies here
constexpr double kSecondLossUs = 500.0;  // second server (loss=2 cells)

RackKvParams Base() {
  RackKvParams p;
  p.servers = 5;
  p.users = 10000;
  p.think_mean_us = 1000.0;
  p.zipf_theta = 0.9;
  p.layout.keys = 2048;
  p.layout.cached_keys = 512;
  p.layout.class_bytes = {64, 512, 2048};
  p.mix = {0.70, 0.25, 0.05};
  p.write_fraction = 0.1;
  p.replicas = 2;
  p.governor_epoch = FromMicros(kEpochUs);
  p.window = FromMicros(1000);
  p.seed = 42;
  p.sim_threads = g_sim_threads;
  p.membership.enabled = true;
  p.membership.permloss_epochs = 3;
  p.membership.migrate_batch = 64;
  return p;
}

// Section 1 axes.
const std::vector<int> kLosses = {1, 2};
const std::vector<double> kBudgetFracs = {0.1, 0.4};  // of SafePath3Budget
const std::vector<uint64_t> kUsers = {10000, 20000};

RackKvParams LossPoint(int losses, double frac, uint64_t users) {
  RackKvParams p = Base();
  p.users = users;
  p.faults.seed = 9;
  p.faults.permlosses.push_back({"rack.s1", FromMicros(kPermLossUs)});
  if (losses >= 2) {
    p.faults.permlosses.push_back({"rack.s3", FromMicros(kSecondLossUs)});
  }
  p.membership.migration_gbps = frac * SafePath3BudgetGbps(p.testbed);
  return p;
}

// Section 2: a quarter of rack.s2's stored values flip at 150 us; the
// scrubber walks 256 ranks per epoch per server.
RackKvParams CorruptPoint() {
  RackKvParams p = Base();
  p.faults.seed = 9;
  p.faults.corrupts.push_back({"rack.s2", FromMicros(150), 0.25});
  p.membership.scrub_keys_per_epoch = 256;
  p.membership.migration_gbps = 0.4 * SafePath3BudgetGbps(p.testbed);
  return p;
}

// Section 3: loss and corruption together (also the CI grid-compare cell).
RackKvParams CombinedPoint() {
  RackKvParams p = CorruptPoint();
  p.faults.permlosses.push_back({"rack.s1", FromMicros(kPermLossUs)});
  return p;
}

std::vector<RackKvParams> AllCells() {
  std::vector<RackKvParams> cells;
  for (int losses : kLosses) {
    for (double frac : kBudgetFracs) {
      for (uint64_t users : kUsers) {
        cells.push_back(LossPoint(losses, frac, users));
      }
    }
  }
  cells.push_back(CorruptPoint());
  cells.push_back(CombinedPoint());
  return cells;
}

std::vector<RackKvResult> RunCells(const std::vector<RackKvParams>& cells,
                                   int jobs, int sim_threads) {
  runtime::SweepQueue<RackKvResult> sweep(jobs);
  for (const RackKvParams& c : cells) {
    RackKvParams p = c;
    p.sim_threads = sim_threads;
    sweep.Add([p] { return RunRackKv(p); });
  }
  return sweep.Run();
}

std::string JoinFingerprints(const std::vector<RackKvResult>& rs) {
  std::string s;
  for (const RackKvResult& r : rs) {
    s += r.Fingerprint();
    s.push_back('\n');
  }
  return s;
}

double RepairDurationUs(const RackKvResult& r) {
  if (r.membership_change_at_us < 0 || r.repair_done_at_us < 0) {
    return -1.0;
  }
  return r.repair_done_at_us - r.membership_change_at_us;
}

// Mean per-epoch home completions over [from, to) epoch indices.
double EpochGoodput(const RackKvResult& r, size_t from, size_t to) {
  to = std::min(to, r.completed_by_epoch.size());
  if (from >= to) {
    return 0.0;
  }
  uint64_t sum = 0;
  for (size_t i = from; i < to; ++i) {
    sum += r.completed_by_epoch[i];
  }
  return static_cast<double>(sum) / static_cast<double>(to - from);
}

bool CheckCommon(const RackKvResult& r, const char* label) {
  bool ok = true;
  if (!r.Conserved()) {
    std::printf(
        "FAIL(%s): ledger open — gen %llu = done %llu + failed %llu + shed "
        "%llu? ranges %llu = %llu + %llu? keys %llu = %llu? corrupt %llu+%llu "
        "= %llu+%llu+%llu+%llu?\n",
        label, static_cast<unsigned long long>(r.generated),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.ranges_started),
        static_cast<unsigned long long>(r.ranges_completed),
        static_cast<unsigned long long>(r.ranges_failed),
        static_cast<unsigned long long>(r.keys_migrated),
        static_cast<unsigned long long>(r.keys_installed),
        static_cast<unsigned long long>(r.corrupted_keys),
        static_cast<unsigned long long>(r.corrupt_propagated),
        static_cast<unsigned long long>(r.repaired_read),
        static_cast<unsigned long long>(r.repaired_scrub),
        static_cast<unsigned long long>(r.repaired_write),
        static_cast<unsigned long long>(r.corrupt_remaining));
    ok = false;
  }
  if (r.undetected_corrupt_serves != 0) {
    std::printf("FAIL(%s): %llu corrupt values were served undetected\n",
                label,
                static_cast<unsigned long long>(r.undetected_corrupt_serves));
    ok = false;
  }
  if (r.completed == 0) {
    std::printf("FAIL(%s): nothing completed\n", label);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool check = flags.GetBool(
      "check", false,
      "assert determinism + ledgers + convergence + repair/goodput bounds");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  flags.Finish();

  const std::vector<RackKvParams> cells = AllCells();
  const std::vector<RackKvResult> results =
      RunCells(cells, jobs, g_sim_threads);
  const size_t n_loss = kLosses.size() * kBudgetFracs.size() * kUsers.size();
  const RackKvResult& cr = results[n_loss];       // corruption + scrub
  const RackKvResult& cb = results[n_loss + 1];   // loss + corruption

  // -- Section 1: losses x migration budget x load ------------------------
  std::printf("== Permanent loss: detection, ring change, key migration ==\n");
  Table t({"loss", "budget", "users", "rm", "epoch", "bounce", "ranges",
           "mig_keys", "waits", "rep_KiB", "chg_us", "done_us", "done",
           "failed"});
  size_t i = 0;
  for (int losses : kLosses) {
    for (double frac : kBudgetFracs) {
      for (uint64_t users : kUsers) {
        const RackKvResult& r = results[i++];
        t.Row()
            .Add(losses)
            .Add(frac, 2)
            .Add(users)
            .Add(r.removals)
            .Add(r.member_epoch)
            .Add(r.stale_epoch_bounces)
            .Add(r.ranges_completed)
            .Add(r.keys_migrated)
            .Add(r.migration_waits)
            .Add(static_cast<double>(r.repair_path3_bytes) / 1024.0, 1)
            .Add(r.membership_change_at_us, 1)
            .Add(r.repair_done_at_us, 1)
            .Add(r.completed)
            .Add(r.failed);
      }
    }
  }
  t.Print(std::cout, flags.csv());
  std::printf("expected: every live home removes the dead server within "
              "permloss_epochs probe epochs, stale-epoch bounces converge "
              "the stragglers, and the migration finishes sooner with the "
              "larger reserved budget (done_us column).\n");

  // -- Section 2: corruption + scrubbing ----------------------------------
  std::printf("\n== Corruption: serve-path verify + anti-entropy scrub ==\n");
  Table ct({"flipped", "checks", "scrubbed", "scrub_hit", "read_hit",
            "heal_rd", "heal_scr", "heal_wr", "left", "undet"});
  ct.Row()
      .Add(cr.corrupted_keys)
      .Add(cr.integrity_checks)
      .Add(cr.scrub_checked)
      .Add(cr.scrub_detected)
      .Add(cr.read_repair_detected)
      .Add(cr.repaired_read)
      .Add(cr.repaired_scrub)
      .Add(cr.repaired_write)
      .Add(cr.corrupt_remaining)
      .Add(cr.undetected_corrupt_serves);
  ct.Print(std::cout, flags.csv());
  std::printf("expected: every flip is caught by a serve-path verify or the "
              "scrubber, healed from the surviving replica (or overwritten "
              "by a fresh write), and zero corrupt values are served.\n");

  // -- Section 3: loss + corruption combined ------------------------------
  std::printf("\n== Loss + corruption: repair planes compose ==\n");
  Table bt({"rm", "mig_keys", "flipped", "propagated", "healed", "left",
            "unavail", "done", "failed", "undet"});
  bt.Row()
      .Add(cb.removals)
      .Add(cb.keys_migrated)
      .Add(cb.corrupted_keys)
      .Add(cb.corrupt_propagated)
      .Add(cb.repaired_read + cb.repaired_scrub + cb.repaired_write)
      .Add(cb.corrupt_remaining)
      .Add(cb.repair_unavailable)
      .Add(cb.completed)
      .Add(cb.failed)
      .Add(cb.undetected_corrupt_serves);
  bt.Print(std::cout, flags.csv());
  std::printf("expected: migration may carry a corrupt sole copy to the new "
              "owner (counted as propagated, healed or surfaced later — "
              "never served), and the corruption ledger still closes.\n");

  if (!check) {
    return 0;
  }

  std::printf("\n== --check: determinism + ledgers + convergence + repair "
              "bounds ==\n");
  bool ok = true;

  const std::string here = JoinFingerprints(results);
  const std::string serial =
      JoinFingerprints(RunCells(cells, /*jobs=*/1, /*sim_threads=*/1));
  if (here != serial) {
    std::printf("FAIL: fingerprints differ from --jobs=1 --sim-threads=1 "
                "(ran --jobs=%d --sim-threads=%d)\n",
                jobs, g_sim_threads);
    ok = false;
  }

  for (size_t c = 0; c < results.size(); ++c) {
    const std::string label = "cell " + std::to_string(c);
    ok = CheckCommon(results[c], label.c_str()) && ok;
  }

  // Loss cells: convergence, detection latency, migration, repair bounds.
  i = 0;
  for (int losses : kLosses) {
    for (double frac : kBudgetFracs) {
      for (uint64_t users : kUsers) {
        (void)users;
        const RackKvResult& r = results[i];
        const std::string lb = "loss cell " + std::to_string(i);
        ++i;
        const char* label = lb.c_str();
        if (r.member_epoch != static_cast<uint64_t>(losses)) {
          std::printf("FAIL(%s): member_epoch %llu != losses %d\n", label,
                      static_cast<unsigned long long>(r.member_epoch), losses);
          ok = false;
        }
        // Every domain that survives to the end executed every removal
        // (the dead servers' own home sides adopt via bounces too).
        const uint64_t min_removals = static_cast<uint64_t>(
            (Base().servers - losses) * losses);
        if (r.removals < min_removals) {
          std::printf("FAIL(%s): %llu removals < %llu (not every live home "
                      "converged)\n",
                      label, static_cast<unsigned long long>(r.removals),
                      static_cast<unsigned long long>(min_removals));
          ok = false;
        }
        // Detection: first removal within promote + permloss_epochs probe
        // epochs of the loss (generous constant for the evidence phase).
        const double detect_by =
            kPermLossUs + (Base().membership.permloss_epochs + 8) * kEpochUs;
        if (r.membership_change_at_us < kPermLossUs ||
            r.membership_change_at_us > detect_by) {
          std::printf("FAIL(%s): first removal at %.1f us outside "
                      "(%.1f, %.1f]\n",
                      label, r.membership_change_at_us, kPermLossUs, detect_by);
          ok = false;
        }
        if (r.keys_migrated == 0 || r.ranges_completed == 0) {
          std::printf("FAIL(%s): no keys migrated\n", label);
          ok = false;
        }
        if (r.stale_epoch_bounces == 0 || r.retry_replies == 0) {
          std::printf("FAIL(%s): no stale-epoch bounces — the dead server's "
                      "home side never reconciled\n", label);
          ok = false;
        }
        if (losses == 1) {
          // A single loss always leaves the pair's other member: nothing
          // is lost and every range completes.
          if (r.keys_lost != 0 || r.ranges_failed != 0) {
            std::printf("FAIL(%s): single loss lost %llu keys / %llu "
                        "ranges\n",
                        label, static_cast<unsigned long long>(r.keys_lost),
                        static_cast<unsigned long long>(r.ranges_failed));
            ok = false;
          }
          // Budget-derived completion bound: the token bucket drains
          // repair_path3_bytes at migration_gbps; ack-clocked per-key
          // round trips add the epoch slack.
          const double rate_bpus =
              frac * SafePath3BudgetGbps(Base().testbed) * 125.0;
          const double bound_us =
              1.25 * static_cast<double>(r.repair_path3_bytes) / rate_bpus +
              10.0 * kEpochUs;
          const double dur = RepairDurationUs(r);
          if (dur < 0 || dur > bound_us) {
            std::printf("FAIL(%s): repair took %.1f us, budget bound %.1f "
                        "us\n", label, dur, bound_us);
            ok = false;
          }
        }
        // Goodput floor: during migration the rack keeps completing at a
        // sizable fraction of its pre-loss per-epoch rate (the migration
        // budget is carved out of path ③, not out of serving capacity).
        const size_t pre_end = static_cast<size_t>(kPermLossUs / kEpochUs);
        const size_t mig_from =
            static_cast<size_t>(r.membership_change_at_us / kEpochUs) + 1;
        const size_t win_end =
            static_cast<size_t>(ToMicros(Base().window) / kEpochUs);
        const double pre = EpochGoodput(r, 0, pre_end);
        const double during = EpochGoodput(r, mig_from, win_end);
        if (during < 0.35 * pre) {
          std::printf("FAIL(%s): goodput during migration %.1f/epoch < 35%% "
                      "of pre-loss %.1f/epoch\n", label, during, pre);
          ok = false;
        }
      }
    }
  }

  // Budget scaling: for each (loss=1, users) pair, the larger reserved
  // budget finishes the same migration strictly sooner.
  for (size_t u = 0; u < kUsers.size(); ++u) {
    const RackKvResult& lo = results[u];                       // frac 0.1
    const RackKvResult& hi = results[kUsers.size() + u];       // frac 0.4
    if (RepairDurationUs(hi) >= RepairDurationUs(lo)) {
      std::printf("FAIL: repair with %.0f%% budget (%.1f us) not faster than "
                  "%.0f%% (%.1f us), users %llu\n",
                  100.0 * kBudgetFracs[1], RepairDurationUs(hi),
                  100.0 * kBudgetFracs[0], RepairDurationUs(lo),
                  static_cast<unsigned long long>(kUsers[u]));
      ok = false;
    }
  }

  // Corruption cell: everything detected, everything healed.
  if (cr.corrupted_keys == 0 || cr.scrub_detected == 0 ||
      cr.read_repair_detected == 0) {
    std::printf("FAIL: corruption cell detected nothing (flipped %llu, "
                "scrub %llu, read %llu)\n",
                static_cast<unsigned long long>(cr.corrupted_keys),
                static_cast<unsigned long long>(cr.scrub_detected),
                static_cast<unsigned long long>(cr.read_repair_detected));
    ok = false;
  }
  if (cr.corrupt_remaining != 0) {
    std::printf("FAIL: %llu corrupt values survived the scrub cell\n",
                static_cast<unsigned long long>(cr.corrupt_remaining));
    ok = false;
  }
  if (cr.removals != 0 || cr.keys_migrated != 0) {
    std::printf("FAIL: corruption-only cell ran membership changes\n");
    ok = false;
  }

  // Combined cell: the loss converged and corruption was never served.
  if (cb.member_epoch != 1 || cb.keys_migrated == 0) {
    std::printf("FAIL: combined cell did not converge (epoch %llu, migrated "
                "%llu)\n",
                static_cast<unsigned long long>(cb.member_epoch),
                static_cast<unsigned long long>(cb.keys_migrated));
    ok = false;
  }

  std::printf("%s\n",
              ok ? "CHECK PASSED: byte-identical across the grid corner, all "
                   "ledgers closed, every live home converged on the new "
                   "ring, single-loss repair was complete and within the "
                   "budget bound, goodput held its floor during migration, "
                   "and no corrupt value was ever served"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
