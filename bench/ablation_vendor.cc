// §5 Discussion ablation: the vendor mitigations the paper suggests.
//
//  * CCI-style SoC coherence (ARM CoreLink CCI-550): lets inbound I/O
//    allocate into an SoC LLC — should flatten the Advice-#1 write-skew
//    collapse exactly like DDIO does on the host.
//  * CXL-style host<->SoC window: a direct load/store path through the
//    switch, skipping the RNIC — should lift path ③'s double-PCIe1
//    bottleneck and its large-transfer collapse.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/sweep_runner.h"
#include "src/sim/meter.h"
#include "src/topo/future.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

double SkewedSocWrite(const TestbedParams& tp, uint64_t range) {
  HarnessConfig cfg;
  cfg.testbed = tp;
  cfg.address_range = range;
  return MeasureInboundPath(ServerKind::kBluefieldSoc, Verb::kWrite, 64, cfg).mreqs;
}

// Streams `total` bytes host->SoC in `chunk`-sized units; returns Gbps.
double CxlStream(uint32_t chunk, uint64_t total) {
  Simulator sim;
  Fabric fabric(&sim);
  BluefieldServer server(&sim, &fabric, TestbedParams::Default());
  CxlWindow cxl(&sim, &server);
  auto moved = std::make_shared<uint64_t>(0);
  // Four concurrent streams, back-to-back chunks.
  for (int s = 0; s < 4; ++s) {
    auto loop = std::make_shared<std::function<void()>>();
    auto offset = std::make_shared<uint64_t>(static_cast<uint64_t>(s) * total);
    *loop = [&sim, &cxl, loop, moved, offset, chunk, total] {
      if (*moved >= total) {
        return;
      }
      cxl.Copy(/*to_host=*/false, *offset, chunk, [loop, moved, chunk](SimTime) {
        *moved += chunk;
        (*loop)();
      });
      *offset += chunk;
    };
    sim.In(0, *loop);
  }
  sim.Run();
  return static_cast<double>(total) * 8.0 / 1e9 / ToSeconds(sim.now());
}

double Path3Stream(uint32_t chunk) {
  LocalRequesterParams p = LocalRequesterParams::Host();
  HarnessConfig cfg;
  return MeasureLocalPath(false, Verb::kWrite, chunk, p, cfg).gbps;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int jobs = runtime::JobsFlag(flags);
  flags.Finish();

  const TestbedParams stock;
  const TestbedParams with_cci = WithSocCci(stock);
  const std::vector<uint64_t> ranges = {1536, 6 * kKiB, 48 * kKiB, 1 * kMiB};
  const std::vector<uint32_t> chunks = {64u * 1024, 1024u * 1024, 16u * 1024 * 1024};

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  for (uint64_t range : ranges) {
    sweep.Add([stock, range] { return SkewedSocWrite(stock, range); });
    sweep.Add([with_cci, range] { return SkewedSocWrite(with_cci, range); });
  }
  for (uint32_t chunk : chunks) {
    sweep.Add([chunk] { return Path3Stream(chunk); });
    sweep.Add([chunk] { return CxlStream(chunk, 256 * kMiB); });
  }
  const std::vector<double> results = sweep.Run();
  size_t k = 0;

  std::printf("== Mitigation 1: CCI-style SoC coherence vs Advice #1 ==\n");
  Table cci({"range", "stock BF-2 (M/s)", "with CCI LLC (M/s)"});
  for (uint64_t range : ranges) {
    cci.Row().Add(FormatBytes(range));
    cci.Add(results[k++], 1);
    cci.Add(results[k++], 1);
  }
  cci.Print(std::cout, flags.csv());
  std::printf("expected: the CCI column stays flat, like the host's DDIO.\n\n");

  std::printf("== Mitigation 2: CXL-style window vs path 3 (H2S transfers) ==\n");
  Table cxl({"chunk", "RDMA path 3 (Gbps)", "CXL window (Gbps)"});
  for (uint32_t chunk : chunks) {
    cxl.Row().Add(FormatBytes(chunk));
    cxl.Add(results[k++], 1);
    cxl.Add(results[k++], 1);
  }
  cxl.Print(std::cout, flags.csv());
  std::printf("expected: the CXL column is immune to the >9MB collapse and does not\n"
              "consume PCIe1, freeing the whole NIC for network traffic (paper §5).\n");
  return 0;
}
