// Figure 10: (a) the latency of posting requests to the NIC per requester
// location, and (b) the impact of doorbell batching (Advice #4).
//
// DB always helps remote clients a little, transforms the SoC side of path
// ③ (2.7-4.6x — one MMIO replaces a batch of slow uncached stores, and the
// NIC reads SoC memory quickly), and *hurts* the host side of path ③ at
// small batch sizes (the WQE-fetch round trip through two PCIe hops lands
// in the critical path).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/fault/plan.h"
#include "src/runtime/sweep_runner.h"
#include "src/topo/server.h"
#include "src/workload/harness.h"

using namespace snicsim;  // NOLINT: bench brevity

namespace {

// The --faults plan and --sim-threads count, applied to every throughput
// cell (set once in main before the sweep; the helpers below build their
// configs locally).
fault::FaultPlan g_faults;
int g_sim_threads = 1;

// Posting latency: CPU post start -> doorbell at the NIC (Fig. 10(a)).
void PrintPostingLatency(bool csv) {
  Simulator sim;
  Fabric fabric(&sim);
  const TestbedParams tp;
  RnicServer rnic(&sim, &fabric, tp, "r");
  BluefieldServer bf(&sim, &fabric, tp, "b");
  const LocalRequesterParams host = LocalRequesterParams::Host();
  const LocalRequesterParams soc = LocalRequesterParams::Soc();
  const ClientParams cli;

  std::printf("== Figure 10(a): posting latency (ns per doorbell) ==\n");
  Table t({"requester", "mmio block", "flight", "total"});
  auto row = [&](const char* name, SimTime block, SimTime flight) {
    t.Row().Add(name);
    t.Add(ToNanos(block), 0).Add(ToNanos(flight), 0).Add(ToNanos(block + flight), 0);
  };
  row("client -> its RNIC", cli.mmio_block, cli.mmio_flight);
  row("host -> RNIC (RNIC 1)", cli.mmio_block, rnic.host_ep()->to_mem().BaseLatency());
  row("host -> BF NIC (SNIC 3 H2S)", host.mmio_block, bf.host_ep()->to_mem().BaseLatency());
  row("SoC -> BF NIC (SNIC 3 S2H)", soc.mmio_block, bf.soc_ep()->to_mem().BaseLatency());
  t.Print(std::cout, csv);
}

double ClientDbThroughput(ServerKind kind, bool batch, int batch_size) {
  // One requester machine: posting efficiency only shows when the
  // requester, not the responder, is the limiter.
  HarnessConfig cfg;
  cfg.client_machines = 1;
  cfg.faults = g_faults;
  cfg.sim_threads = g_sim_threads;
  cfg.client.doorbell_batch = batch;
  cfg.client.batch = batch_size;
  if (batch) {
    cfg.client.window = 2;  // two batches in flight: fetch pipelined
  }
  return MeasureInboundPath(kind, Verb::kRead, 64, cfg).mreqs;
}

double LocalDbThroughput(bool s2h, bool batch, int batch_size,
                         const std::string& trace = "", const std::string& metrics = "") {
  LocalRequesterParams p = s2h ? LocalRequesterParams::Soc() : LocalRequesterParams::Host();
  p.doorbell_batch = batch;
  p.batch = batch_size;
  HarnessConfig cfg;
  cfg.client_machines = 1;
  cfg.faults = g_faults;
  cfg.sim_threads = g_sim_threads;
  cfg.warmup = FromMicros(80);   // several batch cycles
  cfg.window = FromMicros(600);
  cfg.trace_path = trace;
  cfg.metrics_path = metrics;
  return MeasureLocalPath(s2h, Verb::kRead, 64, p, cfg).mreqs;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string trace = flags.GetString(
      "trace", "", "trace JSON output (S2H doorbell-batch B=32 run)");
  const std::string metrics = flags.GetString(
      "metrics", "", "metrics JSON output (S2H doorbell-batch B=32 run)");
  const int jobs = runtime::JobsFlag(flags);
  g_sim_threads = runtime::SimThreadsFlag(flags);
  g_faults = fault::FaultsFlag(flags);
  flags.Finish();

  PrintPostingLatency(flags.csv());

  std::printf("\n== Figure 10(b): doorbell batching impact on 64B READ (M reqs/s) ==\n");
  const std::vector<int> batches = {16, 32, 48, 64, 80};
  Table t({"config", "no DB", "B=16", "B=32", "B=48", "B=64", "B=80", "best DB/base"});

  struct Series {
    const char* name;
    std::function<double(bool, int)> run;
  };
  const Series series[] = {
      {"RNIC(1) client", [](bool b, int n) {
         return ClientDbThroughput(ServerKind::kRnicHost, b, n);
       }},
      {"SNIC(1) client", [](bool b, int n) {
         return ClientDbThroughput(ServerKind::kBluefieldHost, b, n);
       }},
      {"SNIC(3) SoC-side (S2H)",
       [&](bool b, int n) {
         // Trace the batched run: post_batch + wqe_fetch spans only show up
         // with doorbell batching on.
         const bool sink = b && n == 32;
         return LocalDbThroughput(true, b, n, sink ? trace : "", sink ? metrics : "");
       }},
      {"SNIC(3) host-side (H2S)", [](bool b, int n) {
         return LocalDbThroughput(false, b, n);
       }},
  };

  // Pass 1: submit every cell in consumption order (see fig4_latency.cc).
  runtime::SweepQueue<double> sweep(jobs);
  for (const Series& s : series) {
    sweep.Add([&s] { return s.run(false, 1); });
    for (int b : batches) {
      sweep.Add([&s, b] { return s.run(true, b); });
    }
  }
  const std::vector<double> results = sweep.Run();

  size_t k = 0;
  for (const Series& s : series) {
    const double base = results[k++];
    t.Row().Add(s.name).Add(base, 1);
    double best = 0;
    for (size_t bi = 0; bi < batches.size(); ++bi) {
      const double v = results[k++];
      best = std::max(best, v);
      t.Add(v, 1);
    }
    t.Add(best / base, 2);
  }
  t.Print(std::cout, flags.csv());

  std::printf("\npaper: DB gives +2-30%% on RNIC(1)/SNIC(1), 2.7-4.6x on the SoC side\n"
              "of path (3), and -9/-7/-6%% at batches 16/32/48 on the host side.\n");
  return 0;
}
