// Server-side record store for the distributed transaction engine.
//
// Records live in a flat simulated-memory region: each has a lock word, a
// version word, and a payload, at deterministic addresses so clients can
// reach them with one-sided verbs (the DrTM/FaRM-style layout the paper's
// motivation cites). The store keeps the *authoritative* lock/version state
// in C++; clients mutate it at the simulated completion time of their
// one-sided ops, so contention, aborts, and lock hold times all follow the
// simulated communication latencies of whichever NIC path is in use.
#ifndef SRC_TXN_STORE_H_
#define SRC_TXN_STORE_H_

#include <cstdint>
#include <vector>

#include "src/common/log.h"

namespace snicsim {
namespace txn {

struct TxnStoreConfig {
  uint64_t base_addr = 0;
  uint32_t record_bytes = 128;  // lock word + version word + payload
  uint64_t records = 1u << 20;
};

inline constexpr uint64_t kNoOwner = 0;

class TxnStore {
 public:
  explicit TxnStore(const TxnStoreConfig& config) : config_(config) {
    SNIC_CHECK_GT(config.records, 0u);
    SNIC_CHECK_GE(config.record_bytes, 16u);
    locks_.assign(config.records, kNoOwner);
    versions_.assign(config.records, 0);
  }

  const TxnStoreConfig& config() const { return config_; }

  uint64_t AddrOf(uint64_t id) const {
    SNIC_CHECK_LT(id, config_.records);
    return config_.base_addr + id * config_.record_bytes;
  }
  uint64_t LockAddrOf(uint64_t id) const { return AddrOf(id); }
  uint64_t VersionAddrOf(uint64_t id) const { return AddrOf(id) + 8; }

  uint64_t version(uint64_t id) const {
    SNIC_CHECK_LT(id, config_.records);
    return versions_[id];
  }
  bool locked(uint64_t id) const {
    SNIC_CHECK_LT(id, config_.records);
    return locks_[id] != kNoOwner;
  }
  uint64_t owner(uint64_t id) const { return locks_[id]; }

  // Compare-and-swap the lock word (the semantics of a one-sided CAS /
  // locking WRITE, applied when that op completes in simulated time).
  bool TryLock(uint64_t id, uint64_t owner_id) {
    SNIC_CHECK_LT(id, config_.records);
    SNIC_CHECK_NE(owner_id, kNoOwner);
    if (locks_[id] != kNoOwner) {
      ++lock_conflicts_;
      return false;
    }
    locks_[id] = owner_id;
    ++locks_taken_;
    return true;
  }

  void Unlock(uint64_t id, uint64_t owner_id) {
    SNIC_CHECK_LT(id, config_.records);
    SNIC_CHECK_EQ(locks_[id], owner_id);
    locks_[id] = kNoOwner;
  }

  // Installs a committed write: the caller must hold the lock.
  void Install(uint64_t id, uint64_t owner_id) {
    SNIC_CHECK_EQ(locks_[id], owner_id);
    ++versions_[id];
    ++installs_;
  }

  // Whole-store invariants for tests.
  uint64_t LockedCount() const {
    uint64_t n = 0;
    for (uint64_t l : locks_) {
      n += l != kNoOwner ? 1 : 0;
    }
    return n;
  }
  uint64_t VersionSum() const {
    uint64_t n = 0;
    for (uint64_t v : versions_) {
      n += v;
    }
    return n;
  }

  uint64_t locks_taken() const { return locks_taken_; }
  uint64_t lock_conflicts() const { return lock_conflicts_; }
  uint64_t installs() const { return installs_; }

 private:
  TxnStoreConfig config_;
  std::vector<uint64_t> locks_;     // owner id per record, kNoOwner = free
  std::vector<uint64_t> versions_;
  uint64_t locks_taken_ = 0;
  uint64_t lock_conflicts_ = 0;
  uint64_t installs_ = 0;
};

}  // namespace txn
}  // namespace snicsim

#endif  // SRC_TXN_STORE_H_
