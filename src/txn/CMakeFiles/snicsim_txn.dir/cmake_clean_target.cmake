file(REMOVE_RECURSE
  "libsnicsim_txn.a"
)
