file(REMOVE_RECURSE
  "CMakeFiles/snicsim_txn.dir/occ.cc.o"
  "CMakeFiles/snicsim_txn.dir/occ.cc.o.d"
  "libsnicsim_txn.a"
  "libsnicsim_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
