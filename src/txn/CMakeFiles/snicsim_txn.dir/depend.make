# Empty dependencies file for snicsim_txn.
# This may be replaced when dependencies are built.
