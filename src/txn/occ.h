// One-sided OCC transactions over the verbs layer (DrTM/FaRM-style):
//
//   read phase     — one READ per record in the read+write set,
//   compute        — local CPU time,
//   lock phase     — one locking WRITE (CAS) per write record; any failure
//                    aborts and rolls back acquired locks,
//   validate phase — one 8 B READ per read-set record; a changed version
//                    aborts,
//   commit phase   — one WRITE per write record (install) + unlock WRITEs.
//
// Every message is a simulated one-sided verb, so the abort rate and
// throughput inherit the latency of whichever SmartNIC path carries the
// traffic — exactly the coupling the paper's distributed-transaction
// citations (DrTM, FaRM, Xenic) care about.
#ifndef SRC_TXN_OCC_H_
#define SRC_TXN_OCC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/rdma/verbs.h"
#include "src/txn/store.h"

namespace snicsim {
namespace txn {

struct OccConfig {
  SimTime compute = FromNanos(600);  // local work between read and lock
  uint32_t value_read_bytes = 128;   // full-record READ size
};

struct TxnResult {
  bool committed = false;
  SimTime latency = 0;
  int lock_failures = 0;
  int validation_failures = 0;
};

class OccCoordinator {
 public:
  // `coordinator_id` must be unique and non-zero (it is the lock owner id).
  OccCoordinator(Simulator* sim, TxnStore* store, rdma::QueuePair* qp,
                 uint64_t coordinator_id, const OccConfig& config = OccConfig())
      : sim_(sim), store_(store), qp_(qp), id_(coordinator_id), config_(config) {
    SNIC_CHECK_NE(coordinator_id, kNoOwner);
  }

  // Runs one transaction; ids must be distinct. `done` fires at commit or
  // abort (after rollback completes).
  void Execute(std::vector<uint64_t> read_set, std::vector<uint64_t> write_set,
               std::function<void(TxnResult)> done);

  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  struct Txn {
    std::vector<uint64_t> read_set;
    std::vector<uint64_t> write_set;
    std::map<uint64_t, uint64_t> snapshot;  // id -> version at read time
    std::vector<uint64_t> held_locks;
    SimTime started = 0;
    int lock_failures = 0;
    int validation_failures = 0;
    int pending = 0;
    bool failed = false;
    std::function<void(TxnResult)> done;
  };

  void ReadPhase(const std::shared_ptr<Txn>& t);
  void LockPhase(const std::shared_ptr<Txn>& t);
  void ValidatePhase(const std::shared_ptr<Txn>& t);
  void CommitPhase(const std::shared_ptr<Txn>& t);
  void Abort(const std::shared_ptr<Txn>& t);
  void Finish(const std::shared_ptr<Txn>& t, bool committed);

  Simulator* sim_;
  TxnStore* store_;
  rdma::QueuePair* qp_;
  uint64_t id_;
  OccConfig config_;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace txn
}  // namespace snicsim

#endif  // SRC_TXN_OCC_H_
