#include "src/txn/occ.h"

#include <algorithm>

namespace snicsim {
namespace txn {

void OccCoordinator::Execute(std::vector<uint64_t> read_set, std::vector<uint64_t> write_set,
                             std::function<void(TxnResult)> done) {
  auto t = std::make_shared<Txn>();
  t->read_set = std::move(read_set);
  t->write_set = std::move(write_set);
  t->done = std::move(done);
  t->started = sim_->now();
  ReadPhase(t);
}

void OccCoordinator::ReadPhase(const std::shared_ptr<Txn>& t) {
  // READ every record we will touch; snapshot versions as the data arrives.
  std::vector<uint64_t> all = t->read_set;
  all.insert(all.end(), t->write_set.begin(), t->write_set.end());
  SNIC_CHECK(!all.empty());
  t->pending = static_cast<int>(all.size());
  for (uint64_t id : all) {
    qp_->PostRead(store_->AddrOf(id), config_.value_read_bytes, id,
                  [this, t, id](SimTime) {
                    t->snapshot[id] = store_->version(id);
                    if (--t->pending == 0) {
                      sim_->In(config_.compute, [this, t] { LockPhase(t); });
                    }
                  });
  }
}

void OccCoordinator::LockPhase(const std::shared_ptr<Txn>& t) {
  if (t->write_set.empty()) {
    ValidatePhase(t);
    return;
  }
  t->pending = static_cast<int>(t->write_set.size());
  t->failed = false;
  for (uint64_t id : t->write_set) {
    // A locking CAS is an 8 B one-sided op; its outcome materializes when
    // the op completes at the responder.
    qp_->PostWrite(store_->LockAddrOf(id), 8, id, [this, t, id](SimTime) {
      if (store_->TryLock(id, id_)) {
        t->held_locks.push_back(id);
      } else {
        t->failed = true;
        ++t->lock_failures;
      }
      if (--t->pending == 0) {
        if (t->failed) {
          Abort(t);
        } else {
          ValidatePhase(t);
        }
      }
    });
  }
}

void OccCoordinator::ValidatePhase(const std::shared_ptr<Txn>& t) {
  if (t->read_set.empty()) {
    CommitPhase(t);
    return;
  }
  t->pending = static_cast<int>(t->read_set.size());
  t->failed = false;
  for (uint64_t id : t->read_set) {
    qp_->PostRead(store_->VersionAddrOf(id), 8, id, [this, t, id](SimTime) {
      if (store_->version(id) != t->snapshot[id]) {
        t->failed = true;
        ++t->validation_failures;
      }
      if (--t->pending == 0) {
        if (t->failed) {
          Abort(t);
        } else {
          CommitPhase(t);
        }
      }
    });
  }
}

void OccCoordinator::CommitPhase(const std::shared_ptr<Txn>& t) {
  if (t->write_set.empty()) {
    Finish(t, true);
    return;
  }
  // Install every write, then release every lock; the transaction is
  // durable once all installs have landed.
  t->pending = static_cast<int>(t->write_set.size());
  for (uint64_t id : t->write_set) {
    qp_->PostWrite(store_->AddrOf(id), config_.value_read_bytes, id,
                   [this, t, id](SimTime) {
                     store_->Install(id, id_);
                     store_->Unlock(id, id_);
                     // The unlock WRITE is posted unsignaled, fire-and-forget.
                     qp_->PostWrite(store_->LockAddrOf(id), 8, id, nullptr,
                                    /*signaled=*/false);
                     if (--t->pending == 0) {
                       Finish(t, true);
                     }
                   });
  }
}

void OccCoordinator::Abort(const std::shared_ptr<Txn>& t) {
  if (t->held_locks.empty()) {
    Finish(t, false);
    return;
  }
  t->pending = static_cast<int>(t->held_locks.size());
  for (uint64_t id : t->held_locks) {
    qp_->PostWrite(store_->LockAddrOf(id), 8, id, [this, t, id](SimTime) {
      store_->Unlock(id, id_);
      if (--t->pending == 0) {
        Finish(t, false);
      }
    });
  }
  t->held_locks.clear();
}

void OccCoordinator::Finish(const std::shared_ptr<Txn>& t, bool committed) {
  (committed ? commits_ : aborts_) += 1;
  TxnResult result;
  result.committed = committed;
  result.latency = sim_->now() - t->started;
  result.lock_failures = t->lock_failures;
  result.validation_failures = t->validation_failures;
  if (t->done) {
    t->done(result);
  }
}

}  // namespace txn
}  // namespace snicsim
