// PCIe transaction-layer packet (TLP) accounting.
//
// A DMA burst of N payload bytes is segmented into ceil(N / MTU) memory
// TLPs, where the MTU (maximum payload size) is negotiated per endpoint at
// bootstrap (paper Table 3: 512 B for the host PCIe controller, 128 B for
// the BlueField-2 SoC). Each TLP additionally carries framing + DLL + header
// + LCRC overhead bytes on the wire, which is why a 256 Gbps link delivers
// well under 256 Gbps of payload.
#ifndef SRC_PCIE_TLP_H_
#define SRC_PCIE_TLP_H_

#include <cstdint>

#include "src/common/units.h"

namespace snicsim {

// Wire overhead per TLP: 2 B start/end framing + 6 B sequence/LCRC at the
// data-link layer + a 3-DW (12 B) header + ECRC. We fold DLLP flow-control
// traffic into the same constant. (Neugebauer et al., SIGCOMM'18.)
inline constexpr uint32_t kTlpOverheadBytes = 26;

// Payload-less TLPs (read requests, doorbells, interrupts) still occupy the
// header + overhead on the wire.
inline constexpr uint32_t kTlpHeaderBytes = 12;

// Common negotiated maximum-payload sizes (paper Table 3).
inline constexpr uint32_t kHostPcieMtu = 512;
inline constexpr uint32_t kSocPcieMtu = 128;

constexpr uint64_t NumTlps(uint64_t payload_bytes, uint32_t mtu) {
  if (payload_bytes == 0) {
    return 1;  // a zero-byte transaction is still one header-only TLP
  }
  return CeilDiv(payload_bytes, mtu);
}

// Total bytes a segmented burst occupies on the wire.
constexpr uint64_t WireBytes(uint64_t payload_bytes, uint32_t mtu) {
  return payload_bytes + NumTlps(payload_bytes, mtu) * kTlpOverheadBytes;
}

// Wire bytes of a single header-only (control) TLP.
constexpr uint64_t ControlWireBytes() { return kTlpHeaderBytes + kTlpOverheadBytes; }

}  // namespace snicsim

#endif  // SRC_PCIE_TLP_H_
