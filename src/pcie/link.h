// A bidirectional PCIe link (or the InfiniBand wire, which shares the same
// serialization behaviour at this abstraction level).
//
// Each direction is an independent serial resource — this is what makes
// opposite-direction flows (READ data out + WRITE data in) multiplex to
// nearly twice the nominal bandwidth (paper Fig. 5), while same-direction
// flows contend. Transfers are bursts segmented at a caller-supplied MTU;
// the link accounts TLPs, payload bytes, and wire bytes per direction, which
// the benches read exactly like the paper reads BlueField hardware counters.
#ifndef SRC_PCIE_LINK_H_
#define SRC_PCIE_LINK_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/fault/injector.h"
#include "src/obs/metrics.h"
#include "src/pcie/tlp.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace snicsim {

enum class LinkDir {
  kDown,  // toward the endpoint / device
  kUp,    // toward the root / host
};

constexpr LinkDir Opposite(LinkDir d) {
  return d == LinkDir::kDown ? LinkDir::kUp : LinkDir::kDown;
}

constexpr const char* LinkDirName(LinkDir d) {
  return d == LinkDir::kDown ? "down" : "up";
}

struct LinkCounters {
  uint64_t tlps = 0;
  uint64_t payload_bytes = 0;
  uint64_t wire_bytes = 0;

  LinkCounters operator-(const LinkCounters& o) const {
    return {tlps - o.tlps, payload_bytes - o.payload_bytes, wire_bytes - o.wire_bytes};
  }
};

class PcieLink {
 public:
  // `per_direction` is the raw signalling bandwidth of one direction;
  // `propagation` is the one-way flight + forwarding latency of the link.
  PcieLink(Simulator* sim, std::string name, Bandwidth per_direction, SimTime propagation)
      : sim_(sim),
        name_(std::move(name)),
        bandwidth_(per_direction),
        propagation_(propagation),
        down_(sim, name_ + ".down"),
        up_(sim, name_ + ".up") {}

  PcieLink(const PcieLink&) = delete;
  PcieLink& operator=(const PcieLink&) = delete;

  // Sends a data burst. The burst may not start before `ready`; `cb` fires
  // when the last TLP has been delivered. Returns that delivery time.
  SimTime TransferAt(SimTime ready, LinkDir dir, uint64_t payload_bytes, uint32_t mtu,
                     Simulator::Callback cb = nullptr) {
    const uint64_t tlps = NumTlps(payload_bytes, mtu);
    const uint64_t wire = WireBytes(payload_bytes, mtu);
    Account(dir, tlps, payload_bytes, wire);
    const SimTime done = Server(dir).EnqueueAt(ready, ServiceTime(wire, ready));
    const SimTime delivered = done + propagation_;
    if (cb != nullptr) {
      sim_->At(delivered, std::move(cb));
    }
    return delivered;
  }

  SimTime Transfer(LinkDir dir, uint64_t payload_bytes, uint32_t mtu,
                   Simulator::Callback cb = nullptr) {
    return TransferAt(sim_->now(), dir, payload_bytes, mtu, std::move(cb));
  }

  // Sends a single header-only control TLP (read request, doorbell, CQE
  // notification …).
  SimTime TransferControlAt(SimTime ready, LinkDir dir, Simulator::Callback cb = nullptr) {
    Account(dir, 1, 0, ControlWireBytes());
    const SimTime done = Server(dir).EnqueueAt(ready, ServiceTime(ControlWireBytes(), ready));
    const SimTime delivered = done + propagation_;
    if (cb != nullptr) {
      sim_->At(delivered, std::move(cb));
    }
    return delivered;
  }

  SimTime TransferControl(LinkDir dir, Simulator::Callback cb = nullptr) {
    return TransferControlAt(sim_->now(), dir, std::move(cb));
  }

  // Earliest time a new burst in `dir` could start serializing.
  SimTime NextFree(LinkDir dir) { return Server(dir).next_free(); }

  const LinkCounters& counters(LinkDir dir) const {
    return dir == LinkDir::kDown ? down_counters_ : up_counters_;
  }
  LinkCounters TotalCounters() const {
    return {down_counters_.tlps + up_counters_.tlps,
            down_counters_.payload_bytes + up_counters_.payload_bytes,
            down_counters_.wire_bytes + up_counters_.wire_bytes};
  }

  SimTime BusyTime(LinkDir dir) { return Server(dir).busy_time(); }

  // Serialization time of `wire_bytes`, stretched by any fault-degrade
  // window active at `at`. Reduces to bandwidth().TransferTime() exactly
  // when no injector is attached — both this link and PciePath's
  // cut-through head/tail math go through it, so the two always agree on a
  // burst's service time.
  SimTime ServiceTime(uint64_t wire_bytes, SimTime at) const {
    const SimTime base = bandwidth_.TransferTime(wire_bytes);
    const fault::FaultInjector* const inj = sim_->faults();
    if (inj == nullptr) {
      return base;
    }
    const double scale = inj->ServiceScale(name_, at);
    return scale == 1.0 ? base
                        : static_cast<SimTime>(static_cast<double>(base) * scale);
  }

  // Only lossy links (network ports) are eligible for Bernoulli frame drops
  // and flap windows; PCIe channels are assumed loss-free.
  bool lossy() const { return lossy_; }
  void set_lossy(bool v) { lossy_ = v; }

  Bandwidth bandwidth() const { return bandwidth_; }
  SimTime propagation() const { return propagation_; }
  const std::string& name() const { return name_; }

  // Exposes both directions' counters under "<name>.down" / "<name>.up".
  void RegisterMetrics(MetricsRegistry* reg) {
    for (const LinkDir dir : {LinkDir::kDown, LinkDir::kUp}) {
      const std::string inst = name_ + "." + LinkDirName(dir);
      reg->Register(inst, "tlps", "count", "TLPs serialized in this direction",
                    [this, dir] { return static_cast<double>(counters(dir).tlps); });
      reg->Register(inst, "payload_bytes", "bytes", "payload bytes carried",
                    [this, dir] { return static_cast<double>(counters(dir).payload_bytes); });
      reg->Register(inst, "wire_bytes", "bytes", "payload + per-TLP header bytes",
                    [this, dir] { return static_cast<double>(counters(dir).wire_bytes); });
      reg->Register(inst, "busy_us", "us", "time this direction was serializing",
                    [this, dir] { return ToMicros(BusyTime(dir)); });
      reg->Register(inst, "utilization", "fraction",
                    "busy time / total simulated time at dump", [this, dir] {
                      const SimTime t = sim_->now();
                      return t > 0 ? static_cast<double>(BusyTime(dir)) /
                                         static_cast<double>(t)
                                   : 0.0;
                    });
    }
  }

 private:
  BusyServer& Server(LinkDir dir) { return dir == LinkDir::kDown ? down_ : up_; }
  void Account(LinkDir dir, uint64_t tlps, uint64_t payload, uint64_t wire) {
    LinkCounters& c = dir == LinkDir::kDown ? down_counters_ : up_counters_;
    c.tlps += tlps;
    c.payload_bytes += payload;
    c.wire_bytes += wire;
  }

  Simulator* sim_;
  std::string name_;
  Bandwidth bandwidth_;
  SimTime propagation_;
  BusyServer down_;
  BusyServer up_;
  LinkCounters down_counters_;
  LinkCounters up_counters_;
  bool lossy_ = false;
};

}  // namespace snicsim

#endif  // SRC_PCIE_LINK_H_
