// Multi-hop PCIe routes.
//
// A PciePath is an ordered list of (link, direction) hops joined by switch
// traversals. Bursts are forwarded cut-through at TLP granularity: the head
// TLP advances hop by hop while the tail is still serializing behind it, so
// end-to-end latency ≈ bottleneck serialization + the sum of propagation and
// switch-forwarding delays. Every hop's per-direction byte/TLP counters are
// charged for the full burst — that per-link accounting is exactly what
// exposes the "path ③ crosses PCIe1 twice" bottleneck (paper §3.3).
#ifndef SRC_PCIE_PATH_H_
#define SRC_PCIE_PATH_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/fault/injector.h"
#include "src/obs/trace.h"
#include "src/pcie/link.h"
#include "src/sim/simulator.h"

namespace snicsim {

// A PCIe switch: a named forwarding element with a fixed per-traversal
// delay (150–200 ns on BlueField-2 per the paper, citing [36]).
class PcieSwitch {
 public:
  PcieSwitch(std::string name, SimTime forward_delay)
      : name_(std::move(name)), forward_delay_(forward_delay) {}

  SimTime forward_delay() const { return forward_delay_; }
  const std::string& name() const { return name_; }
  uint64_t forwards() const { return forwards_; }
  void CountForward(uint64_t n = 1) { forwards_ += n; }

  void RegisterMetrics(MetricsRegistry* reg) {
    reg->Register(name_, "forwards", "count", "TLPs forwarded through this switch",
                  [this] { return static_cast<double>(forwards_); });
  }

 private:
  std::string name_;
  SimTime forward_delay_;
  uint64_t forwards_ = 0;
};

class PciePath {
 public:
  struct Hop {
    PcieLink* link = nullptr;
    LinkDir dir = LinkDir::kDown;
    // Switch traversed before entering this link (nullptr for the first hop
    // out of an endpoint or when links join without a switch).
    PcieSwitch* via = nullptr;
  };

  PciePath() = default;
  explicit PciePath(std::vector<Hop> hops) : hops_(std::move(hops)) {}

  PciePath& Add(PcieLink* link, LinkDir dir, PcieSwitch* via = nullptr) {
    hops_.push_back(Hop{link, dir, via});
    return *this;
  }

  bool empty() const { return hops_.empty(); }
  const std::vector<Hop>& hops() const { return hops_; }

  // Pure latency of the route (propagation + switch forwarding), excluding
  // serialization and queueing.
  SimTime BaseLatency() const {
    SimTime t = 0;
    for (const Hop& h : hops_) {
      if (h.via != nullptr) {
        t += h.via->forward_delay();
      }
      t += h.link->propagation();
    }
    return t;
  }

  // Pushes a data burst along the path; `cb` fires when the last TLP reaches
  // the far end. An empty path models CPU/memory on the same die (zero cost).
  // `req_id` threads the originating request through to trace spans.
  SimTime TransferAt(Simulator* sim, SimTime ready, uint64_t payload_bytes, uint32_t mtu,
                     Simulator::Callback cb = nullptr, uint64_t req_id = 0) const {
    if (hops_.empty()) {
      if (cb != nullptr) {
        sim->At(std::max(ready, sim->now()), std::move(cb));
      }
      return std::max(ready, sim->now());
    }
    Tracer* const tr = sim->tracer();
    SimTime head = std::max(ready, sim->now());
    // The delivery time is bounded below by every hop's tail-exit time plus
    // the minimum (head-TLP) traversal of the remaining hops — without this,
    // a fast hop behind a slow one could "finish" before the tail even left
    // the slow link.
    SimTime delivered = head;
    std::vector<SimTime> tail_exit;    // last TLP leaves hop i (incl. prop)
    std::vector<SimTime> min_forward;  // min per-hop traversal (first TLP)
    tail_exit.reserve(hops_.size());
    min_forward.reserve(hops_.size());
    for (const Hop& h : hops_) {
      SimTime via_delay = 0;
      if (h.via != nullptr) {
        via_delay = h.via->forward_delay();
        if (tr != nullptr) {
          tr->Span(h.via->name(), "forward", head, head + via_delay, req_id);
        }
        head += via_delay;
        h.via->CountForward(NumTlps(payload_bytes, mtu));
      }
      const uint64_t wire = WireBytes(payload_bytes, mtu);
      const uint64_t first_tlp_wire =
          WireBytes(std::min<uint64_t>(payload_bytes, mtu), mtu);
      const SimTime full = h.link->ServiceTime(wire, head);
      const SimTime first = h.link->ServiceTime(first_tlp_wire, head);
      const SimTime entered = head;
      // Charge the link for the full burst; the head TLP exits after `first`.
      const SimTime delivered_full = h.link->TransferAt(head, h.dir, payload_bytes, mtu);
      head = delivered_full - (full - first);  // first TLP out
      if (tr != nullptr) {
        tr->Span(h.link->name(), LinkDirName(h.dir), entered, delivered_full, req_id);
      }
      // Fault injection: the burst serialized into this hop (counters and
      // link busy time are charged), but if any frame is lost the burst
      // dies here — later hops never see it and `cb` never fires. Only
      // lossy (network) links are eligible, and with no injector attached
      // this is a single pointer test.
      if (h.link->lossy()) {
        if (fault::FaultInjector* const inj = sim->faults();
            inj != nullptr &&
            inj->ShouldDropBurst(h.link->name(), NumTlps(payload_bytes, mtu), entered)) {
          if (tr != nullptr) {
            tr->Instant(h.link->name(), "drop", delivered_full, req_id);
          }
          return delivered_full;
        }
      }
      tail_exit.push_back(delivered_full);
      min_forward.push_back(via_delay + first + h.link->propagation());
      delivered = delivered_full;
    }
    // Tail lower bounds: after leaving hop i, the tail still needs at least
    // the head-TLP traversal time of every later hop.
    SimTime suffix = 0;
    for (size_t i = hops_.size(); i-- > 0;) {
      delivered = std::max(delivered, tail_exit[i] + suffix);
      suffix += min_forward[i];
    }
    if (cb != nullptr) {
      sim->At(delivered, std::move(cb));
    }
    return delivered;
  }

  // Pushes a single header-only control TLP along the path.
  SimTime TransferControlAt(Simulator* sim, SimTime ready,
                            Simulator::Callback cb = nullptr, uint64_t req_id = 0) const {
    if (hops_.empty()) {
      if (cb != nullptr) {
        sim->At(std::max(ready, sim->now()), std::move(cb));
      }
      return std::max(ready, sim->now());
    }
    Tracer* const tr = sim->tracer();
    SimTime t = std::max(ready, sim->now());
    for (const Hop& h : hops_) {
      if (h.via != nullptr) {
        if (tr != nullptr) {
          tr->Span(h.via->name(), "forward", t, t + h.via->forward_delay(), req_id);
        }
        t += h.via->forward_delay();
        h.via->CountForward(1);
      }
      const SimTime entered = t;
      t = h.link->TransferControlAt(t, h.dir);
      if (tr != nullptr) {
        tr->Span(h.link->name(), LinkDirName(h.dir), entered, t, req_id);
      }
      // Control TLPs are single-frame; one lost frame kills the message.
      if (h.link->lossy()) {
        if (fault::FaultInjector* const inj = sim->faults();
            inj != nullptr && inj->ShouldDropBurst(h.link->name(), 1, entered)) {
          if (tr != nullptr) {
            tr->Instant(h.link->name(), "drop", t, req_id);
          }
          return t;
        }
      }
    }
    if (cb != nullptr) {
      sim->At(t, std::move(cb));
    }
    return t;
  }

  // The route in the opposite direction (e.g. completion data flowing back).
  // A switch recorded between forward links i and i+1 (as hop i+1's `via`)
  // lies between the same two links in reverse, i.e. becomes the `via` of
  // the reversed hop that enters link i.
  PciePath Reversed() const {
    PciePath r;
    const size_t n = hops_.size();
    for (size_t j = 0; j < n; ++j) {
      const Hop& fwd = hops_[n - 1 - j];
      PcieSwitch* via = (j == 0) ? nullptr : hops_[n - j].via;
      r.Add(fwd.link, Opposite(fwd.dir), via);
    }
    return r;
  }

 private:
  std::vector<Hop> hops_;
};

}  // namespace snicsim

#endif  // SRC_PCIE_PATH_H_
