# Empty dependencies file for snicsim_fault.
# This may be replaced when dependencies are built.
