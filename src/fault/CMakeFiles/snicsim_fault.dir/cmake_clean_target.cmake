file(REMOVE_RECURSE
  "libsnicsim_fault.a"
)
