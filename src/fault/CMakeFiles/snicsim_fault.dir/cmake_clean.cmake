file(REMOVE_RECURSE
  "CMakeFiles/snicsim_fault.dir/injector.cc.o"
  "CMakeFiles/snicsim_fault.dir/injector.cc.o.d"
  "CMakeFiles/snicsim_fault.dir/plan.cc.o"
  "CMakeFiles/snicsim_fault.dir/plan.cc.o.d"
  "libsnicsim_fault.a"
  "libsnicsim_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
