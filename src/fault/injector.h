// The runtime interpreter of a FaultPlan.
//
// The harness creates one FaultInjector per experiment (per sweep point —
// never shared across points, so parallel sweeps stay byte-identical) and
// hangs it off the Simulator. Components consult it at decision points:
// PciePath asks whether a burst entering a lossy link survives, PcieLink
// asks for the degradation scale of a burst's service time, and CPU/NIC
// execution sites ask for the stall deferral of their fault domain. Like the
// Tracer, the hook is nullable — `sim->faults() == nullptr` is the entire
// fault-free overhead, and no code path schedules extra events when faults
// are off (extra events would renumber the DES tie-break sequence and
// perturb fault-free runs).
//
// Determinism: each link draws from its own RNG stream seeded by
// plan.seed ^ FNV(link name), so draws depend only on (plan, per-link burst
// order) — never on cross-link interleaving, wall clock, or sweep job count.
#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <map>
#include <string>
#include <utility>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace snicsim {
namespace fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Whole-burst survival decision for `frames` MTU frames entering `link`
  // at `at`. Inside a flap window the burst is dropped without consuming
  // any random draws; otherwise each frame flips its own Bernoulli coin and
  // the loss of any frame kills the burst (the transport retransmits whole
  // operations, so partial bursts never progress).
  bool ShouldDropBurst(const std::string& link, uint64_t frames, SimTime at);

  // Service-time multiplier for a burst submitted on `link` at `at`
  // (product of all active degrade windows; 1.0 when none).
  double ServiceScale(const std::string& link, SimTime at) const;

  // Deferral for work arriving in fault domain `domain` at `at`: the time
  // remaining until every enclosing stall window has ended (0 when none).
  // Domain queries here and in the crash family use the hierarchical
  // DomainMatches rules (src/fault/plan.h): a plan's "soc" window covers
  // every "rack.s<i>.soc" endpoint, and "rack.s<i>" covers both endpoints
  // of server i.
  SimTime StallDelay(const std::string& domain, SimTime at);

  // Crash-window queries (pure; counters live at the consumption sites,
  // which know whether a drop was an arrival or an in-flight kill).
  // Permanent losses fold in as crash windows that never end: a domain hit
  // by a `permloss=` event is CrashedAt from its `at` forever, and CrashKills
  // any span reaching past `at`.
  //
  // Is `domain` dead at instant `at`? Windows are half-open like every
  // other window: at == start is dead, at == end is alive again.
  bool CrashedAt(const std::string& domain, SimTime at) const;
  // Does work in flight on `domain` over [from, to) die? True iff some
  // crash window overlaps the span. A crash starting exactly at `to` does
  // not kill (the reply left before the lights went out), and one ending
  // exactly at `from` doesn't either.
  bool CrashKills(const std::string& domain, SimTime from, SimTime to) const;
  // Is `domain` permanently gone at `at` (a `permloss=` event fired)? Unlike
  // CrashedAt this never becomes false again; the rack membership plane uses
  // it to tell "wait out the restart" from "remove from the ring".
  bool PermanentlyLostAt(const std::string& domain, SimTime at) const;
  // Is `domain` inside the cold-cache rewarm tail of a crash — i.e. is
  // `at` in [end, end + rewarm) of some window?
  bool InRewarm(const std::string& domain, SimTime at) const;

  const FaultPlan& plan() const { return plan_; }

  uint64_t frames_offered() const { return frames_offered_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t bursts_dropped() const { return bursts_dropped_; }
  uint64_t flap_drops() const { return flap_drops_; }
  uint64_t stall_hits() const { return stall_hits_; }
  SimTime stalled_time() const { return stalled_; }

  // Exposes injection counters under component "faults".
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  Rng& LinkRng(const std::string& link);

  FaultPlan plan_;
  // Lazily-created per-link streams. Ordered map: iteration order never
  // matters (streams are keyed), but keep the container deterministic on
  // principle.
  std::map<std::string, Rng> rngs_;
  uint64_t frames_offered_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t bursts_dropped_ = 0;
  uint64_t flap_drops_ = 0;
  uint64_t stall_hits_ = 0;
  SimTime stalled_ = 0;
};

}  // namespace fault
}  // namespace snicsim

#endif  // SRC_FAULT_INJECTOR_H_
