// Declarative fault schedules.
//
// A FaultPlan is a pure description of the faults one experiment should see:
// a Bernoulli frame-drop probability on lossy (network) links, scheduled
// link flaps (total loss windows) and degradation windows (service-time
// multipliers), and compute stall windows keyed by fault-domain name
// ("host", "soc"). Plans are parsed from the `--faults` flag — either an
// inline `key=value` spec or `@file.json` — and interpreted by the
// FaultInjector (src/fault/injector.h). Because the plan carries its own
// seed, a (plan, topology) pair fully determines every fault a run takes:
// replaying the same plan reproduces the run byte for byte.
#ifndef SRC_FAULT_PLAN_H_
#define SRC_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/units.h"

namespace snicsim {
namespace fault {

// Total loss on one link: every burst entering `link` in [start, end) is
// dropped, without consuming random draws (so a flap never perturbs the
// Bernoulli stream of the surviving traffic).
struct FlapWindow {
  std::string link;
  SimTime start = 0;
  SimTime end = 0;
};

// Service-time multiplier on one link: bursts submitted in [start, end)
// serialize `factor`× slower (a congested or rate-limited cable).
struct DegradeWindow {
  std::string link;
  SimTime start = 0;
  SimTime end = 0;
  double factor = 1.0;
};

// Compute stall on one fault domain ("host", "soc"): work arriving in
// [start, end) is deferred to the window's end before it can start.
struct StallWindow {
  std::string domain;
  SimTime start = 0;
  SimTime end = 0;
};

// Endpoint crash on one fault domain ("host", "soc"): the endpoint is dead
// in [start, end) — arriving work is dropped without a reply and in-flight
// work dies with it (the transport sees it as loss and flushes as
// kFlushed). After restart at `end`, a cold cache is modeled for `rewarm`
// more time: SoC-resident lookups miss until end + rewarm.
struct CrashWindow {
  std::string domain;
  SimTime start = 0;
  SimTime end = 0;
  SimTime rewarm = 0;
};

// Permanent loss of one fault domain: from `at` onward the domain is dead
// forever — no restart, no rewarm. Addressed like crash windows (so
// "rack.s3" kills the whole server, host+SoC). The rack-level membership
// plane (src/topo/rack_kv.h) reacts by removing the server from the ring
// and migrating its key ranges; single-server topologies just see an
// endpoint that never comes back.
struct PermLossEvent {
  std::string domain;
  SimTime at = 0;
};

// Stored-data corruption on one fault domain: at time `at`, each value the
// domain stores flips bits with probability `fraction` (chosen by a
// deterministic hash of (plan seed, domain, key) — no RNG draws, so a
// corrupt event never shifts any other stream). Detection is by the
// per-value checksums in the rack integrity layer; components without an
// integrity store ignore the event.
struct CorruptEvent {
  std::string domain;
  SimTime at = 0;
  double fraction = 0.05;
};

struct FaultPlan {
  // Per-frame drop probability on lossy links (network ports only).
  double drop_rate = 0.0;
  // Seeds the per-link Bernoulli streams (each link derives its own stream,
  // so adding a link never shifts another link's draws).
  uint64_t seed = 1;
  std::vector<FlapWindow> flaps;
  std::vector<DegradeWindow> degrades;
  std::vector<StallWindow> stalls;
  std::vector<CrashWindow> crashes;
  std::vector<PermLossEvent> permlosses;
  std::vector<CorruptEvent> corrupts;

  // An empty plan injects nothing; the harness then skips creating an
  // injector entirely so the simulation is bit-identical to a fault-free
  // build.
  bool empty() const {
    return drop_rate == 0.0 && flaps.empty() && degrades.empty() &&
           stalls.empty() && crashes.empty() && permlosses.empty() &&
           corrupts.empty();
  }
};

// Does a plan's domain spec apply to a component asking about `query`?
// Matching is hierarchical over dot-separated names so rack-scale
// topologies can address one endpoint without breaking old plans:
//   * exact:       plan "rack.s3.soc" matches query "rack.s3.soc"
//   * leaf alias:  plan "soc" matches query "rack.s3.soc" (the legacy
//     spelling addresses every SoC endpoint in the rack)
//   * subtree:     plan "rack.s3" matches query "rack.s3.host" and
//     "rack.s3.soc" (a whole-server crash)
// The reverse is never true: plan "rack.s3.soc" does NOT match a component
// whose domain is plain "soc" — a scoped plan never leaks onto the
// single-server topologies.
bool DomainMatches(const std::string& plan_domain, const std::string& query);

// Parses `spec` into `*out`. Two forms:
//   inline:  "drop=0.01,seed=7,flap=LINK:START:END,degrade=LINK:START:END:F,
//             stall=DOMAIN:START:END,crash=DOMAIN:START:END[:REWARM],
//             permloss=DOMAIN:AT,corrupt=DOMAIN:AT[:FRACTION]"
//             (times in microseconds; keys repeat for multiple windows;
//             ',' and ';' both separate entries). A bare number with no
//             key at all — "0.02" — is shorthand for "drop=0.02".
//   file:    "@schedule.json" with
//             {"drop":0.01,"seed":7,
//              "flaps":[{"link":"...","start_us":10,"end_us":20}],
//              "degrades":[{"link":"...","start_us":0,"end_us":50,"factor":4}],
//              "stalls":[{"domain":"soc","start_us":10,"end_us":60}],
//              "crashes":[{"domain":"soc","start_us":10,"end_us":60,
//                          "rewarm_us":30}],
//              "permlosses":[{"domain":"rack.s1","at_us":80}],
//              "corrupts":[{"domain":"rack.s2","at_us":120,"fraction":0.1}]}
// Returns false (and sets `*error`) on malformed input.
bool ParseFaultPlan(const std::string& spec, FaultPlan* out, std::string* error);

// Registers `--faults` on `flags` and returns the parsed plan (empty when
// the flag is unset). Aborts with the parse error on a malformed spec, like
// the rest of the flag layer does for bad values.
FaultPlan FaultsFlag(Flags& flags);

}  // namespace fault
}  // namespace snicsim

#endif  // SRC_FAULT_PLAN_H_
