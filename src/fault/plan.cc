#include "src/fault/plan.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/json_scan.h"

namespace snicsim {
namespace fault {

namespace {

// Splits on ',' and ';' (both accepted so window lists read naturally).
std::vector<std::string> SplitEntries(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseWindowTimes(const std::string& start_s, const std::string& end_s,
                      SimTime* start, SimTime* end, std::string* error) {
  double start_us = 0.0;
  double end_us = 0.0;
  if (!ParseNumber(start_s, &start_us) || !ParseNumber(end_s, &end_us) ||
      start_us < 0.0 || end_us < start_us) {
    *error = "bad window times '" + start_s + ":" + end_s + "' (want END >= START >= 0, in us)";
    return false;
  }
  *start = FromMicros(start_us);
  *end = FromMicros(end_us);
  return true;
}

// ---------------------------------------------------------------------------
// JSON schedule-file form, read through the shared minimal scanner
// (src/common/json_scan.h). Unknown keys are errors (a typo'd schedule must
// not silently run fault-free).

bool ParseJsonPlan(const std::string& text, FaultPlan* out, std::string* error) {
  JsonScanner s(text, error);
  if (!s.Expect('{')) {
    return false;
  }
  bool more = !s.Peek('}');
  if (!more) {
    ++s.pos;
  }
  while (more) {
    std::string key;
    if (!s.ReadString(&key) || !s.Expect(':')) {
      return false;
    }
    if (key == "drop") {
      double v = 0.0;
      if (!s.ReadNumber(&v)) {
        return false;
      }
      if (v < 0.0 || v > 1.0) {
        return s.Fail("drop not in [0, 1]");
      }
      out->drop_rate = v;
    } else if (key == "seed") {
      double v = 0.0;
      if (!s.ReadNumber(&v)) {
        return false;
      }
      if (v < 0.0) {
        return s.Fail("bad seed");
      }
      out->seed = static_cast<uint64_t>(v);
    } else if (key == "flaps" || key == "stalls") {
      const bool is_flap = key == "flaps";
      const bool ok = s.ReadArray([&] {
        std::string name;
        double su = -1.0;
        double eu = -1.0;
        const char* name_key = is_flap ? "link" : "domain";
        if (!s.ReadFlatObject([&](const std::string& k, const std::string& sv,
                                  double nv, bool is_string) {
              if (k == name_key && is_string) {
                name = sv;
                return true;
              }
              if (k == "start_us" && !is_string) {
                su = nv;
                return true;
              }
              if (k == "end_us" && !is_string) {
                eu = nv;
                return true;
              }
              return s.Fail("unknown window field '" + k + "'");
            })) {
          return false;
        }
        if (name.empty() || su < 0.0 || eu < su) {
          return s.Fail("incomplete window (need " + std::string(name_key) +
                        ", start_us <= end_us)");
        }
        if (is_flap) {
          out->flaps.push_back(FlapWindow{name, FromMicros(su), FromMicros(eu)});
        } else {
          out->stalls.push_back(StallWindow{name, FromMicros(su), FromMicros(eu)});
        }
        return true;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "crashes") {
      const bool ok = s.ReadArray([&] {
        CrashWindow w;
        double su = -1.0;
        double eu = -1.0;
        double rw = 0.0;
        if (!s.ReadFlatObject([&](const std::string& k, const std::string& sv,
                                  double nv, bool is_string) {
              if (k == "domain" && is_string) {
                w.domain = sv;
                return true;
              }
              if (k == "start_us" && !is_string) {
                su = nv;
                return true;
              }
              if (k == "end_us" && !is_string) {
                eu = nv;
                return true;
              }
              if (k == "rewarm_us" && !is_string) {
                rw = nv;
                return true;
              }
              return s.Fail("unknown crash field '" + k + "'");
            })) {
          return false;
        }
        if (w.domain.empty() || su < 0.0 || eu < su || rw < 0.0) {
          return s.Fail("incomplete crash (need domain, start_us <= end_us, rewarm_us >= 0)");
        }
        w.start = FromMicros(su);
        w.end = FromMicros(eu);
        w.rewarm = FromMicros(rw);
        out->crashes.push_back(w);
        return true;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "permlosses") {
      const bool ok = s.ReadArray([&] {
        PermLossEvent ev;
        double au = -1.0;
        if (!s.ReadFlatObject([&](const std::string& k, const std::string& sv,
                                  double nv, bool is_string) {
              if (k == "domain" && is_string) {
                ev.domain = sv;
                return true;
              }
              if (k == "at_us" && !is_string) {
                au = nv;
                return true;
              }
              return s.Fail("unknown permloss field '" + k + "'");
            })) {
          return false;
        }
        if (ev.domain.empty() || au < 0.0) {
          return s.Fail("incomplete permloss (need domain, at_us >= 0)");
        }
        ev.at = FromMicros(au);
        out->permlosses.push_back(ev);
        return true;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "corrupts") {
      const bool ok = s.ReadArray([&] {
        CorruptEvent ev;
        double au = -1.0;
        if (!s.ReadFlatObject([&](const std::string& k, const std::string& sv,
                                  double nv, bool is_string) {
              if (k == "domain" && is_string) {
                ev.domain = sv;
                return true;
              }
              if (k == "at_us" && !is_string) {
                au = nv;
                return true;
              }
              if (k == "fraction" && !is_string) {
                ev.fraction = nv;
                return true;
              }
              return s.Fail("unknown corrupt field '" + k + "'");
            })) {
          return false;
        }
        if (ev.domain.empty() || au < 0.0 || ev.fraction <= 0.0 ||
            ev.fraction > 1.0) {
          return s.Fail("incomplete corrupt (need domain, at_us >= 0, fraction in (0, 1])");
        }
        ev.at = FromMicros(au);
        out->corrupts.push_back(ev);
        return true;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "degrades") {
      const bool ok = s.ReadArray([&] {
        DegradeWindow w;
        double su = -1.0;
        double eu = -1.0;
        double factor = 0.0;
        if (!s.ReadFlatObject([&](const std::string& k, const std::string& sv,
                                  double nv, bool is_string) {
              if (k == "link" && is_string) {
                w.link = sv;
                return true;
              }
              if (k == "start_us" && !is_string) {
                su = nv;
                return true;
              }
              if (k == "end_us" && !is_string) {
                eu = nv;
                return true;
              }
              if (k == "factor" && !is_string) {
                factor = nv;
                return true;
              }
              return s.Fail("unknown degrade field '" + k + "'");
            })) {
          return false;
        }
        if (w.link.empty() || su < 0.0 || eu < su || factor < 1.0) {
          return s.Fail("incomplete degrade (need link, start_us <= end_us, factor >= 1)");
        }
        w.start = FromMicros(su);
        w.end = FromMicros(eu);
        w.factor = factor;
        out->degrades.push_back(w);
        return true;
      });
      if (!ok) {
        return false;
      }
    } else {
      return s.Fail("unknown schedule key '" + key + "'");
    }
    if (s.Peek(',')) {
      ++s.pos;
      continue;
    }
    if (!s.Expect('}')) {
      return false;
    }
    more = false;
  }
  s.SkipWs();
  if (s.pos != text.size()) {
    return s.Fail("trailing characters after schedule object");
  }
  return true;
}

}  // namespace

bool DomainMatches(const std::string& plan_domain, const std::string& query) {
  if (plan_domain == query) {
    return true;
  }
  const size_t pd = plan_domain.size();
  const size_t q = query.size();
  if (pd >= q) {
    return false;  // a longer (more scoped) plan name never widens
  }
  // Leaf alias: plan "soc" vs query "rack.s3.soc" — the plan name must be a
  // whole trailing segment, so "oc" or "s3.soc" never match by accident.
  if (query.compare(q - pd, pd, plan_domain) == 0 && query[q - pd - 1] == '.') {
    return true;
  }
  // Subtree: plan "rack.s3" vs query "rack.s3.soc" — a whole leading
  // segment run addresses every endpoint under it.
  return query.compare(0, pd, plan_domain) == 0 && query[pd] == '.';
}

bool ParseFaultPlan(const std::string& spec, FaultPlan* out, std::string* error) {
  *out = FaultPlan();
  error->clear();
  if (spec.empty()) {
    return true;
  }
  if (spec[0] == '@') {
    const std::string path = spec.substr(1);
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      *error = "cannot read fault schedule file '" + path + "'";
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return ParseJsonPlan(buf.str(), out, error);
  }
  // Bare-number shorthand: "--faults=0.02" means "drop=0.02". Only when the
  // whole spec is one number — a key-less entry inside a longer spec is
  // still an error.
  if (spec.find('=') == std::string::npos) {
    double rate = 0.0;
    if (ParseNumber(spec, &rate) && rate >= 0.0 && rate <= 1.0) {
      out->drop_rate = rate;
      return true;
    }
  }
  for (const std::string& entry : SplitEntries(spec)) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      *error = "fault entry '" + entry + "' is not key=value";
      return false;
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "drop") {
      if (!ParseNumber(value, &out->drop_rate) || out->drop_rate < 0.0 ||
          out->drop_rate > 1.0) {
        *error = "drop rate '" + value + "' not in [0, 1]";
        return false;
      }
    } else if (key == "seed") {
      double v = 0.0;
      if (!ParseNumber(value, &v) || v < 0.0) {
        *error = "bad seed '" + value + "'";
        return false;
      }
      out->seed = static_cast<uint64_t>(v);
    } else if (key == "flap") {
      const auto f = SplitFields(value, ':');
      FlapWindow w;
      if (f.size() != 3 || f[0].empty()) {
        *error = "flap wants LINK:START:END, got '" + value + "'";
        return false;
      }
      w.link = f[0];
      if (!ParseWindowTimes(f[1], f[2], &w.start, &w.end, error)) {
        return false;
      }
      out->flaps.push_back(w);
    } else if (key == "degrade") {
      const auto f = SplitFields(value, ':');
      DegradeWindow w;
      if (f.size() != 4 || f[0].empty()) {
        *error = "degrade wants LINK:START:END:FACTOR, got '" + value + "'";
        return false;
      }
      w.link = f[0];
      if (!ParseWindowTimes(f[1], f[2], &w.start, &w.end, error)) {
        return false;
      }
      if (!ParseNumber(f[3], &w.factor) || w.factor < 1.0) {
        *error = "degrade factor '" + f[3] + "' must be >= 1";
        return false;
      }
      out->degrades.push_back(w);
    } else if (key == "stall") {
      const auto f = SplitFields(value, ':');
      StallWindow w;
      if (f.size() != 3 || f[0].empty()) {
        *error = "stall wants DOMAIN:START:END, got '" + value + "'";
        return false;
      }
      w.domain = f[0];
      if (!ParseWindowTimes(f[1], f[2], &w.start, &w.end, error)) {
        return false;
      }
      out->stalls.push_back(w);
    } else if (key == "crash") {
      const auto f = SplitFields(value, ':');
      CrashWindow w;
      if ((f.size() != 3 && f.size() != 4) || f[0].empty()) {
        *error = "crash wants DOMAIN:START:END[:REWARM], got '" + value + "'";
        return false;
      }
      w.domain = f[0];
      if (!ParseWindowTimes(f[1], f[2], &w.start, &w.end, error)) {
        return false;
      }
      if (f.size() == 4) {
        double rw = 0.0;
        if (!ParseNumber(f[3], &rw) || rw < 0.0) {
          *error = "crash rewarm '" + f[3] + "' must be >= 0 (us)";
          return false;
        }
        w.rewarm = FromMicros(rw);
      }
      out->crashes.push_back(w);
    } else if (key == "permloss") {
      const auto f = SplitFields(value, ':');
      PermLossEvent ev;
      double au = -1.0;
      if (f.size() != 2 || f[0].empty() || !ParseNumber(f[1], &au) ||
          au < 0.0) {
        *error = "permloss wants DOMAIN:AT (us), got '" + value + "'";
        return false;
      }
      ev.domain = f[0];
      ev.at = FromMicros(au);
      out->permlosses.push_back(ev);
    } else if (key == "corrupt") {
      const auto f = SplitFields(value, ':');
      CorruptEvent ev;
      double au = -1.0;
      if ((f.size() != 2 && f.size() != 3) || f[0].empty() ||
          !ParseNumber(f[1], &au) || au < 0.0) {
        *error = "corrupt wants DOMAIN:AT[:FRACTION] (us), got '" + value + "'";
        return false;
      }
      if (f.size() == 3 &&
          (!ParseNumber(f[2], &ev.fraction) || ev.fraction <= 0.0 ||
           ev.fraction > 1.0)) {
        *error = "corrupt fraction '" + f[2] + "' not in (0, 1]";
        return false;
      }
      ev.domain = f[0];
      ev.at = FromMicros(au);
      out->corrupts.push_back(ev);
    } else {
      *error = "unknown fault key '" + key + "'";
      return false;
    }
  }
  return true;
}

FaultPlan FaultsFlag(Flags& flags) {
  const std::string spec = flags.GetString(
      "faults", "",
      "fault schedule: drop=P,seed=S,flap=LINK:START:END,"
      "degrade=LINK:START:END:FACTOR,stall=DOMAIN:START:END,"
      "crash=DOMAIN:START:END[:REWARM],permloss=DOMAIN:AT,"
      "corrupt=DOMAIN:AT[:FRACTION] (us), a bare drop rate, or @file.json");
  FaultPlan plan;
  std::string error;
  if (!ParseFaultPlan(spec, &plan, &error)) {
    std::fprintf(stderr, "--faults: %s\n", error.c_str());
    std::exit(2);
  }
  return plan;
}

}  // namespace fault
}  // namespace snicsim
