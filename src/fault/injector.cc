#include "src/fault/injector.h"

namespace snicsim {
namespace fault {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h = (h ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) * 1099511628211ULL;
  }
  return h;
}

}  // namespace

Rng& FaultInjector::LinkRng(const std::string& link) {
  auto it = rngs_.find(link);
  if (it == rngs_.end()) {
    it = rngs_.emplace(link, Rng(plan_.seed ^ Fnv1a(link))).first;
  }
  return it->second;
}

bool FaultInjector::ShouldDropBurst(const std::string& link, uint64_t frames,
                                    SimTime at) {
  frames_offered_ += frames;
  for (const FlapWindow& w : plan_.flaps) {
    if (at >= w.start && at < w.end && w.link == link) {
      ++flap_drops_;
      ++bursts_dropped_;
      frames_dropped_ += frames;
      return true;
    }
  }
  if (plan_.drop_rate <= 0.0) {
    return false;
  }
  // Draw for every frame even after the burst is already dead: the stream
  // position then depends only on how many frames this link has carried,
  // not on loss outcomes, which keeps replay reasoning simple.
  Rng& rng = LinkRng(link);
  uint64_t dropped = 0;
  for (uint64_t i = 0; i < frames; ++i) {
    if (rng.NextDouble() < plan_.drop_rate) {
      ++dropped;
    }
  }
  if (dropped == 0) {
    return false;
  }
  frames_dropped_ += dropped;
  ++bursts_dropped_;
  return true;
}

double FaultInjector::ServiceScale(const std::string& link, SimTime at) const {
  double scale = 1.0;
  for (const DegradeWindow& w : plan_.degrades) {
    if (at >= w.start && at < w.end && w.link == link) {
      scale *= w.factor;
    }
  }
  return scale;
}

SimTime FaultInjector::StallDelay(const std::string& domain, SimTime at) {
  SimTime resume = at;
  for (const StallWindow& w : plan_.stalls) {
    if (at >= w.start && at < w.end && DomainMatches(w.domain, domain)) {
      resume = std::max(resume, w.end);
    }
  }
  if (resume == at) {
    return 0;
  }
  ++stall_hits_;
  stalled_ += resume - at;
  return resume - at;
}

bool FaultInjector::CrashedAt(const std::string& domain, SimTime at) const {
  for (const CrashWindow& w : plan_.crashes) {
    if (at >= w.start && at < w.end && DomainMatches(w.domain, domain)) {
      return true;
    }
  }
  for (const PermLossEvent& ev : plan_.permlosses) {
    if (at >= ev.at && DomainMatches(ev.domain, domain)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::CrashKills(const std::string& domain, SimTime from,
                               SimTime to) const {
  for (const CrashWindow& w : plan_.crashes) {
    if (w.start < to && from < w.end && DomainMatches(w.domain, domain)) {
      return true;
    }
  }
  for (const PermLossEvent& ev : plan_.permlosses) {
    if (ev.at < to && DomainMatches(ev.domain, domain)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::PermanentlyLostAt(const std::string& domain,
                                      SimTime at) const {
  for (const PermLossEvent& ev : plan_.permlosses) {
    if (at >= ev.at && DomainMatches(ev.domain, domain)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::InRewarm(const std::string& domain, SimTime at) const {
  for (const CrashWindow& w : plan_.crashes) {
    if (at >= w.end && at < w.end + w.rewarm && DomainMatches(w.domain, domain)) {
      return true;
    }
  }
  return false;
}

void FaultInjector::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register("faults", "frames_offered", "count",
                "MTU frames offered to lossy links",
                [this] { return static_cast<double>(frames_offered_); });
  reg->Register("faults", "frames_dropped", "count",
                "frames lost to Bernoulli drops or flap windows",
                [this] { return static_cast<double>(frames_dropped_); });
  reg->Register("faults", "bursts_dropped", "count",
                "bursts killed (any frame lost kills the burst)",
                [this] { return static_cast<double>(bursts_dropped_); });
  reg->Register("faults", "flap_drops", "count",
                "bursts dropped by link-flap windows",
                [this] { return static_cast<double>(flap_drops_); });
  reg->Register("faults", "stall_hits", "count",
                "work items deferred by a compute stall window",
                [this] { return static_cast<double>(stall_hits_); });
  reg->Register("faults", "stalled_us", "us",
                "total deferral injected by stall windows",
                [this] { return ToMicros(stalled_); });
}

}  // namespace fault
}  // namespace snicsim
