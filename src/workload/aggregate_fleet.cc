#include "src/workload/aggregate_fleet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "src/common/log.h"

namespace snicsim {

namespace {

// splitmix64 finalizer — decorrelates the per-class stream seeds.
uint64_t MixSeed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

AggregateFleet::AggregateFleet(Simulator* sim, AggregateFleetParams params)
    : sim_(sim), params_(std::move(params)) {
  SNIC_CHECK_GT(params_.think_mean_us, 0.0);
  cls_.resize(params_.users_per_class.size());
  for (size_t c = 0; c < cls_.size(); ++c) {
    ClassState& s = cls_[c];
    s.users = params_.users_per_class[c];
    s.rng = Rng(MixSeed(params_.seed ^ (c + 1)));
    users_total_ += s.users;
    if (params_.materialize && s.users > 0) {
      SNIC_CHECK_LE(s.users, (1ull << 32));
      s.busy.assign(s.users, 0);
      // Stack top = highest index, so pops hand out user 0, 1, ... first.
      s.free_stack.resize(s.users);
      for (uint64_t u = 0; u < s.users; ++u) {
        s.free_stack[s.users - 1 - u] = static_cast<uint32_t>(u);
      }
    }
  }
}

double AggregateFleet::Draw(int cls) {
  ++draws_;
  return cls_[static_cast<size_t>(cls)].rng.NextDouble();
}

uint64_t AggregateFleet::inflight_total() const {
  uint64_t n = 0;
  for (const ClassState& s : cls_) {
    n += s.inflight;
  }
  return n;
}

size_t AggregateFleet::resident_state_bytes() const {
  size_t bytes = sizeof(*this) + cls_.capacity() * sizeof(ClassState);
  for (const ClassState& s : cls_) {
    bytes += s.busy.capacity() * sizeof(uint8_t) +
             s.free_stack.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

void AggregateFleet::Start(IssueFn issue) {
  SNIC_CHECK(issue != nullptr);
  SNIC_CHECK(issue_ == nullptr);  // Start is one-shot
  issue_ = std::move(issue);
  for (int c = 0; c < classes(); ++c) {
    if (cls_[static_cast<size_t>(c)].users > 0) {
      ScheduleNext(c);
    }
  }
}

void AggregateFleet::ScheduleNext(int cls) {
  ClassState& s = cls_[static_cast<size_t>(cls)];
  // Candidate gaps at the constant max rate users/Z (times the trace's
  // peak multiplier when one is attached); -log1p(-u) keeps the
  // exponential draw finite for u -> 1 and exact for u == 0.
  const double u = Draw(cls);
  double mean_us = params_.think_mean_us / static_cast<double>(s.users);
  if (trace_ != nullptr) {
    mean_us /= trace_->peak_rate();
  }
  const double gap_us = -std::log1p(-u) * mean_us;
  const SimTime gap = std::max<SimTime>(FromMicros(gap_us), 1);
  sim_->At(sim_->now() + gap, [this, cls] { Candidate(cls); });
}

void AggregateFleet::Candidate(int cls) {
  if (stopped_) {
    return;  // chain ends; nothing rearms
  }
  ClassState& s = cls_[static_cast<size_t>(cls)];
  // Thinning: accept with probability idle/users — scaled by the trace's
  // instantaneous-over-peak ratio when one is attached. The draw happens
  // even at idle == 0 so the stream position depends only on the candidate
  // count, and because it is *always* consumed, folding the trace into the
  // acceptance test leaves the draw-stream layout untouched for any plan.
  const double accept = Draw(cls);
  const uint64_t idle = s.users - s.inflight;
  double scale = 1.0;
  if (trace_ != nullptr) {
    scale = trace_->RateAt(sim_->now()) / trace_->peak_rate();
  }
  if (accept * static_cast<double>(s.users) <
      static_cast<double>(idle) * scale) {
    ++s.generated;
    ++generated_;
    ++s.inflight;
    peak_inflight_ = std::max(peak_inflight_, inflight_total());
    uint64_t user = s.generated - 1;
    if (params_.materialize) {
      SNIC_CHECK(!s.free_stack.empty());
      user = s.free_stack.back();
      s.free_stack.pop_back();
      s.busy[user] = 1;
    }
    issue_(cls, user);
  }
  ScheduleNext(cls);
}

void AggregateFleet::OnComplete(int cls, uint64_t user) {
  ClassState& s = cls_[static_cast<size_t>(cls)];
  SNIC_CHECK_GT(s.inflight, 0u);
  --s.inflight;
  if (params_.materialize) {
    SNIC_CHECK_LT(user, s.busy.size());
    SNIC_CHECK(s.busy[user] == 1);
    s.busy[user] = 0;
    s.free_stack.push_back(static_cast<uint32_t>(user));
  }
}

std::vector<uint64_t> AggregateFleet::Partition(
    uint64_t total, const std::vector<double>& weights) {
  SNIC_CHECK(!weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    SNIC_CHECK_GE(w, 0.0);
    sum += w;
  }
  SNIC_CHECK_GT(sum, 0.0);
  std::vector<uint64_t> out(weights.size(), 0);
  std::vector<std::pair<double, size_t>> rem;  // (-fraction, index)
  rem.reserve(weights.size());
  uint64_t assigned = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i] / sum;
    out[i] = static_cast<uint64_t>(exact);
    assigned += out[i];
    rem.emplace_back(-(exact - std::floor(exact)), i);
  }
  // Largest remainder first; equal remainders resolve to the lowest index.
  std::sort(rem.begin(), rem.end());
  for (size_t k = 0; assigned < total; ++k, ++assigned) {
    ++out[rem[k % rem.size()].second];
  }
  return out;
}

}  // namespace snicsim
