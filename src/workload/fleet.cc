#include "src/workload/fleet.h"

#include <cmath>
#include <utility>

#include "src/common/log.h"

namespace snicsim {

int SizeMixture::ClassOf(double u) const {
  SNIC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SNIC_CHECK_GE(w, 0.0);
    total += w;
  }
  SNIC_CHECK_GT(total, 0.0);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    if (u < acc) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(weights.size()) - 1;
}

ClientFleet::ClientFleet(Simulator* sim, Fabric* fabric, const FleetParams& params,
                         const std::string& prefix)
    : sim_(sim), params_(params), prefix_(prefix) {
  SNIC_CHECK_GT(params_.machines, 0);
  SNIC_CHECK_GT(params_.logical_clients, 0);
  SNIC_CHECK_GT(params_.window, 0);
  machines_.reserve(static_cast<size_t>(params_.machines));
  for (int i = 0; i < params_.machines; ++i) {
    machines_.push_back(std::make_unique<ClientMachine>(sim, fabric, params_.machine,
                                                        prefix + std::to_string(i)));
  }
}

bool ClientFleet::Reliable() const {
  return sim_->faults() != nullptr && params_.machine.transport_timeout > 0;
}

void ClientFleet::SetTrace(const trace::TraceDriver* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    phase_generated_.assign(static_cast<size_t>(trace_->segment_count()), 0);
    phase_shed_.assign(static_cast<size_t>(trace_->segment_count()), 0);
  }
}

void ClientFleet::Start(std::vector<TargetSpec> paths, const ZipfDist* zipf,
                        const SizeMixture& mix, std::vector<uint32_t> class_bytes,
                        HeaderFn header, Router route, Observer observe) {
  SNIC_CHECK(!paths.empty());
  SNIC_CHECK(zipf != nullptr);
  SNIC_CHECK_EQ(mix.weights.size(), class_bytes.size());
  SNIC_CHECK(header != nullptr);
  SNIC_CHECK(route != nullptr);
  paths_ = std::move(paths);
  for (const TargetSpec& p : paths_) {
    SNIC_CHECK(p.engine != nullptr);
    SNIC_CHECK(p.endpoint != nullptr);
    SNIC_CHECK(p.server_port != nullptr);
  }
  zipf_ = zipf;
  mix_ = mix;
  class_bytes_ = std::move(class_bytes);
  header_ = std::move(header);
  route_ = std::move(route);
  observe_ = std::move(observe);
  path_issued_.assign(paths_.size(), 0);
  path_completed_.assign(paths_.size(), 0);
  path_failed_.assign(paths_.size(), 0);
  path_shed_.assign(paths_.size(), 0);
  path_cancelled_.assign(paths_.size(), 0);

  const int lanes = params_.machines * params_.machine.threads;
  logicals_.reserve(static_cast<size_t>(params_.logical_clients));
  for (int id = 0; id < params_.logical_clients; ++id) {
    auto lc = std::make_shared<Logical>();
    lc->id = static_cast<uint64_t>(id);
    const int lane = id % lanes;
    lc->machine = lane % params_.machines;
    lc->thread = lane / params_.machines;
    // Seed from (fleet seed, client id) only: the stream is a function of
    // identity, never of scheduling.
    lc->rng = Rng(params_.seed ^ (0x9e3779b97f4a7c15ULL * (lc->id + 1)));
    logicals_.push_back(lc);
    // Stagger starts so thousands of clients don't ring doorbells in one
    // event: a deterministic spread over ~25 us.
    const SimTime offset = FromNanos(25) * static_cast<SimTime>(id % 997);
    if (params_.open_loop) {
      sim_->In(offset, [this, lc] { ScheduleArrival(lc); });
    } else {
      sim_->In(offset, [this, lc] { Pump(lc); });
    }
  }
}

void ClientFleet::Pump(const std::shared_ptr<Logical>& lc) {
  while (!stopped_ && lc->in_flight < params_.window) {
    lc->in_flight += 1;
    IssueOne(lc);
  }
}

void ClientFleet::ScheduleArrival(const std::shared_ptr<Logical>& lc) {
  SNIC_CHECK_GT(params_.open_mops, 0.0);
  // Aggregate Poisson process thinned per client: exponential gaps with
  // mean logical_clients / open_mops microseconds, drawn from the client's
  // own stream (deterministic, order independent). Under a trace the gaps
  // run at the trace's *peak* rate and each candidate is thinned to the
  // instantaneous rate below, so the gap-draw stream is a function of the
  // plan's peak alone — never of which segment a candidate lands in.
  double mean_us =
      static_cast<double>(params_.logical_clients) / params_.open_mops;
  if (trace_ != nullptr) {
    mean_us /= trace_->peak_rate();
  }
  const double u = lc->rng.NextDouble();
  const double gap_us = -std::log(1.0 - u) * mean_us;
  SimTime dt = FromMicros(gap_us);
  if (dt < kNanos) {
    dt = kNanos;
  }
  sim_->In(dt, [this, lc] {
    if (stopped_) {
      return;
    }
    if (trace_ != nullptr) {
      const double rate = trace_->RateAt(sim_->now());
      const double peak = trace_->peak_rate();
      if (rate < peak) {
        // Exact thinning: accept with probability rate/peak. The draw is
        // consumed only in sub-peak segments, so a flat trace consumes no
        // extra draws at all (pre-trace byte identity).
        const double a = lc->rng.NextDouble();
        if (a * peak >= rate) {
          ++thinned_;
          ScheduleArrival(lc);
          return;
        }
      }
    }
    IssueOne(lc);
    ScheduleArrival(lc);
  });
}

void ClientFleet::IssueOne(const std::shared_ptr<Logical>& lc) {
  KvRequest req;
  req.client = lc->id;
  req.seq = lc->seq++;
  req.rank = zipf_->RankOf(lc->rng.NextDouble());
  req.size_class = mix_.ClassOf(lc->rng.NextDouble());
  if (trace_ != nullptr) {
    const SimTime now = sim_->now();
    const uint64_t churn = trace_->ChurnAt(now);
    if (churn != 0) {
      // Working-set rotation: the drawn popularity order is preserved but
      // re-seated over the keyspace, so formerly SoC-resident hot ranks
      // miss. Draw-free by design.
      req.rank = (req.rank + churn) % zipf_->items();
    }
    if (trace_->has_scan()) {
      // One scan draw per issue whenever *any* segment scans, even in
      // segments whose scan is 0: the stream layout stays a function of
      // the plan, never of time.
      if (lc->rng.NextDouble() < trace_->ScanAt(now)) {
        req.size_class = static_cast<int>(class_bytes_.size()) - 1;
        ++scan_forced_;
      }
    }
    ++phase_generated_[static_cast<size_t>(trace_->SegmentAt(now))];
  }
  req.bytes = class_bytes_[static_cast<size_t>(req.size_class)];
  req.hdr = header_(req.rank, req.size_class);
  ++generated_;

  if (resil_ != nullptr) {
    IssueResilient(lc, req);
    return;
  }

  const int path = route_(req);
  SNIC_CHECK_GE(path, 0);
  SNIC_CHECK_LT(static_cast<size_t>(path), paths_.size());
  ++issued_;
  ++path_issued_[static_cast<size_t>(path)];

  TargetSpec spec = paths_[static_cast<size_t>(path)];
  spec.payload = params_.request_bytes;
  const SimTime issued_at = sim_->now();
  ClientMachine& m = *machines_[static_cast<size_t>(lc->machine)];
  if (Reliable()) {
    m.PostReliable(lc->thread, spec, req.hdr,
                   [this, lc, req, path, issued_at](SimTime completed, bool ok) {
                     Finish(path, path, req, issued_at, completed, ok);
                     if (!params_.open_loop) {
                       lc->in_flight -= 1;
                       Pump(lc);
                     }
                   });
    return;
  }
  m.Post(lc->thread, spec, req.hdr,
         [this, lc, req, path, issued_at](SimTime completed) {
           Finish(path, path, req, issued_at, completed, /*ok=*/true);
           if (!params_.open_loop) {
             lc->in_flight -= 1;
             Pump(lc);
           }
         });
}

void ClientFleet::IssueResilient(const std::shared_ptr<Logical>& lc, KvRequest req) {
  const SimTime now = sim_->now();
  req.deadline = resil_->StampDeadline(now);
  const int routed = route_(req);
  SNIC_CHECK_GE(routed, 0);
  SNIC_CHECK_LT(static_cast<size_t>(routed), paths_.size());

  if (!resil_->Admit(routed, req.size_class, req.deadline, now)) {
    ++shed_;
    ++path_shed_[static_cast<size_t>(routed)];
    if (trace_ != nullptr) {
      ++phase_shed_[static_cast<size_t>(trace_->SegmentAt(now))];
    }
    if (shed_observer_) {
      shed_observer_(routed, req);
    }
    if (!params_.open_loop) {
      // A delayed re-pump, never an immediate one: shedding at the same sim
      // time would spin the closed loop against a controller whose signal
      // cannot have moved yet.
      sim_->In(resil_->config().shed_backoff, [this, lc] {
        lc->in_flight -= 1;
        Pump(lc);
      });
    }
    return;
  }

  ++issued_;
  ++path_issued_[static_cast<size_t>(routed)];
  const SimTime issued_at = now;
  auto hs = std::make_shared<HedgeState>();
  hs->outstanding = 1;
  PostCopy(lc, req, hs, routed, routed, issued_at);

  if (static_cast<size_t>(resilience::kEndpointCount) <= paths_.size() &&
      resil_->HedgeEligible(routed, req.bytes)) {
    // The jitter draw happens at issue time whether or not the duplicate
    // eventually launches, so the draw stream depends only on issue order.
    const SimTime hedge_delay = resil_->HedgeDelay(routed);
    const int hpath = resilience::ResilienceManager::OtherEndpoint(routed);
    sim_->In(hedge_delay, [this, lc, req, hs, routed, hpath, issued_at] {
      if (hs->settled || stopped_) {
        return;  // the original already answered (or the run is draining)
      }
      if (req.deadline > 0 && sim_->now() >= req.deadline) {
        return;  // no budget left for a second copy
      }
      if (!resil_->EndpointAvailable(hpath)) {
        return;  // the other endpoint's breaker is open
      }
      hs->outstanding += 1;
      resil_->OnHedgeLaunched();
      ++issued_;
      ++path_issued_[static_cast<size_t>(hpath)];
      PostCopy(lc, req, hs, routed, hpath, issued_at);
    });
  }
}

void ClientFleet::PostCopy(const std::shared_ptr<Logical>& lc, const KvRequest& req,
                           const std::shared_ptr<HedgeState>& hs, int routed,
                           int copy, SimTime issued_at) {
  TargetSpec spec = paths_[static_cast<size_t>(copy)];
  spec.payload = params_.request_bytes;
  ClientMachine& m = *machines_[static_cast<size_t>(lc->machine)];
  if (Reliable()) {
    m.PostReliable(lc->thread, spec, req.hdr,
                   [this, lc, req, hs, routed, copy, issued_at](SimTime completed,
                                                                bool ok) {
                     Settle(lc, req, hs, routed, copy, issued_at, completed, ok);
                   },
                   req.deadline);
    return;
  }
  m.Post(lc->thread, spec, req.hdr,
         [this, lc, req, hs, routed, copy, issued_at](SimTime completed) {
           Settle(lc, req, hs, routed, copy, issued_at, completed, /*ok=*/true);
         });
}

void ClientFleet::Settle(const std::shared_ptr<Logical>& lc, const KvRequest& req,
                         const std::shared_ptr<HedgeState>& hs, int routed,
                         int copy, SimTime issued_at, SimTime completed, bool ok) {
  hs->outstanding -= 1;
  if (hs->settled) {
    // The race was already decided: this copy is the hedge loser.
    ++cancelled_;
    ++path_cancelled_[static_cast<size_t>(copy)];
    resil_->OnHedgeCancel();
    return;
  }
  if (ok || hs->outstanding == 0) {
    hs->settled = true;
    if (ok && copy != routed) {
      resil_->OnHedgeWin();
    }
    Finish(routed, copy, req, issued_at, completed, ok);
    if (!params_.open_loop) {
      lc->in_flight -= 1;
      Pump(lc);
    }
    return;
  }
  // This copy failed but another is still racing: let the survivor settle
  // the request and count this one as cancelled.
  ++cancelled_;
  ++path_cancelled_[static_cast<size_t>(copy)];
  resil_->OnHedgeCancel();
}

void ClientFleet::Finish(int routed, int copy, const KvRequest& req,
                         SimTime issued_at, SimTime completed, bool ok) {
  if (ok) {
    ++completed_;
    ++path_completed_[static_cast<size_t>(copy)];
    if (req.deadline == 0 || completed <= req.deadline) {
      ++good_;
    } else {
      ++late_;
    }
  } else {
    ++failed_;
    ++path_failed_[static_cast<size_t>(copy)];
    if (req.deadline > 0 && completed >= req.deadline) {
      ++deadline_failed_;
    }
  }
  if (observe_) {
    // The observer hears the *routed* path so policy in-flight accounting
    // pairs with the Router's decision even when a hedge copy won.
    observe_(routed, req, completed - issued_at, ok);
  }
}

void ClientFleet::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register(prefix_, "issued", "count", "requests routed by the fleet",
                [this] { return static_cast<double>(issued_); });
  reg->Register(prefix_, "completed", "count", "requests that completed",
                [this] { return static_cast<double>(completed_); });
  reg->Register(prefix_, "failed", "count", "requests the reliability layer gave up on",
                [this] { return static_cast<double>(failed_); });
  // Resilience counters exist only when a manager is attached (attach it
  // before registering), so resilience-free metric dumps stay byte-identical.
  if (resil_ != nullptr) {
    reg->Register(prefix_, "shed", "count",
                  "requests refused by admission control (never posted)",
                  [this] { return static_cast<double>(shed_); });
    reg->Register(prefix_, "cancelled", "count",
                  "hedge copies cancelled after the race settled",
                  [this] { return static_cast<double>(cancelled_); });
    reg->Register(prefix_, "good", "count",
                  "requests completed within their deadline budget",
                  [this] { return static_cast<double>(good_); });
    reg->Register(prefix_, "late", "count",
                  "requests completed past their deadline budget",
                  [this] { return static_cast<double>(late_); });
    reg->Register(prefix_, "deadline_failed", "count",
                  "requests failed with the deadline budget exhausted",
                  [this] { return static_cast<double>(deadline_failed_); });
  }
  // Trace counters exist only when a trace is attached (attach before
  // registering), so trace-free metric dumps stay byte-identical.
  if (trace_ != nullptr) {
    reg->Register("trace", "thinned", "count",
                  "arrival candidates rejected by trace rate thinning",
                  [this] { return static_cast<double>(thinned_); });
    reg->Register("trace", "scan_forced", "count",
                  "issues whose size class a scan phase forced to the top",
                  [this] { return static_cast<double>(scan_forced_); });
  }
  for (auto& m : machines_) {
    m->RegisterMetrics(reg);
  }
}

}  // namespace snicsim
