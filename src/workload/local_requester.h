// Path ③ requesters: CPU threads on the host (H2S) or the SoC (S2H) posting
// RDMA operations to the other side of the same SmartNIC (paper §3.3).
//
// Posting cost is MMIO-dominated (paper Fig. 10): without doorbell batching
// every WR pays a blocking MMIO through the internal PCIe fabric; with
// doorbell batching (Advice #4) a batch pays one MMIO plus a WQE-fetch DMA
// issued by the NIC against the requester's memory — a huge win on the SoC
// side (the NIC reads SoC memory quickly) but a pipeline bubble on the host
// side for small batches.
#ifndef SRC_WORKLOAD_LOCAL_REQUESTER_H_
#define SRC_WORKLOAD_LOCAL_REQUESTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/nic/engine.h"
#include "src/nic/verb.h"
#include "src/sim/meter.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/workload/addr_gen.h"

namespace snicsim {

struct LocalRequesterParams {
  int threads = 24;
  int window = 5;  // outstanding WRs (or batches, when batching) per thread
  SimTime wr_build = FromNanos(120);
  SimTime mmio_block = FromNanos(100);
  SimTime poll = FromNanos(60);
  bool doorbell_batch = false;
  int batch = 32;
  // When > 0, issue open-loop at this aggregate payload rate instead of a
  // closed loop — used to cap path-③ demand at the §4 budget (P − N).
  double paced_gbps = 0.0;

  // Host CPU posting through PCIe0 + switch + PCIe1 (H2S requester).
  static LocalRequesterParams Host() {
    LocalRequesterParams p;
    p.threads = 24;
    p.wr_build = FromNanos(120);
    p.mmio_block = FromNanos(150);
    return p;
  }

  // SoC ARM cores posting to the adjacent NIC (S2H requester): cheap wire
  // distance but expensive uncached stores and slow WQE builds.
  static LocalRequesterParams Soc() {
    LocalRequesterParams p;
    p.threads = 8;
    p.wr_build = FromNanos(240);
    p.mmio_block = FromNanos(550);
    return p;
  }
};

class LocalRequester {
 public:
  // Ops originate at `src`'s CPU and target `dst`'s memory.
  LocalRequester(Simulator* sim, NicEngine* engine, NicEndpoint* src, NicEndpoint* dst,
                 const LocalRequesterParams& params, const std::string& name);

  LocalRequester(const LocalRequester&) = delete;
  LocalRequester& operator=(const LocalRequester&) = delete;

  void Start(Verb verb, uint32_t payload, AddressGenerator addr, Meter* meter);

  // Adjusts the open-loop rate at runtime (only meaningful when the
  // requester was started with paced_gbps > 0); 0 pauses issuance.
  void SetPacedRate(double gbps) { params_.paced_gbps = gbps; }
  double paced_rate() const { return params_.paced_gbps; }

  uint64_t issued() const { return issued_; }
  uint64_t doorbells() const { return doorbells_; }

  // Exposes issue-side counters under "<name>".
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  struct Loop {
    Verb verb = Verb::kRead;
    uint32_t payload = 0;
    AddressGenerator addr = AddressGenerator(0, 64);
    Meter* meter = nullptr;
    int thread = 0;
    int in_flight = 0;
    bool paced = false;  // fixed at Start: open-loop vs closed-loop
  };

  void Pump(const std::shared_ptr<Loop>& loop);
  void IssueSingle(const std::shared_ptr<Loop>& loop);
  void IssueBatch(const std::shared_ptr<Loop>& loop);

  Simulator* sim_;
  NicEngine* engine_;
  NicEndpoint* src_;
  NicEndpoint* dst_;
  LocalRequesterParams params_;
  std::string name_;
  SimTime mmio_flight_;
  std::vector<std::unique_ptr<BusyServer>> thread_cpu_;
  // Paced-mode tick closures, one per thread (see Pump); owned here so the
  // scheduled copies can reference them without a shared_ptr cycle.
  std::vector<std::unique_ptr<std::function<void()>>> pacers_;
  uint64_t issued_ = 0;
  uint64_t doorbells_ = 0;  // MMIO doorbell rings (one per batch when batching)
};

}  // namespace snicsim

#endif  // SRC_WORKLOAD_LOCAL_REQUESTER_H_
