#include "src/workload/harness.h"

#include <functional>
#include <memory>
#include <optional>

#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/sim/meter.h"
#include "src/sim/timer_wheel.h"
#include "src/topo/server.h"

namespace snicsim {

namespace {

struct CounterWatch {
  LinkCounters pcie0_start;
  LinkCounters pcie1_start;
};

Measurement Finish(const Meter& meter, SimTime window, BluefieldServer* bf,
                   const std::optional<CounterWatch>& watch) {
  Measurement m;
  m.mreqs = meter.MReqsPerSec();
  m.gbps = meter.Gbps();
  m.ops = meter.ops();
  m.p50_us = ToMicros(meter.latency().Percentile(50));
  m.p99_us = ToMicros(meter.latency().Percentile(99));
  if (bf != nullptr && watch.has_value()) {
    const double secs = ToSeconds(window);
    const uint64_t p0 = bf->pcie0().TotalCounters().tlps - watch->pcie0_start.tlps;
    const uint64_t p1 = bf->pcie1().TotalCounters().tlps - watch->pcie1_start.tlps;
    m.pcie0_mpps = static_cast<double>(p0) / secs / 1e6;
    m.pcie1_mpps = static_cast<double>(p1) / secs / 1e6;
    m.pcie_total_mpps = m.pcie0_mpps + m.pcie1_mpps;
  }
  return m;
}

// Large payloads with deep windows pile megabytes into responder queues and
// turn short windows into pure ramp measurement. Real RDMA benchmarks keep
// few large messages outstanding; mirror that and lengthen the window.
HarnessConfig ScaleForPayload(HarnessConfig config, uint32_t payload) {
  // Single-domain harness: sim_threads is accepted (uniform bench CLI) but
  // has nothing to shard, so any value must leave the run untouched.
  SNIC_CHECK_GE(config.sim_threads, 1);
  if (payload >= 32 * kKiB) {
    config.client.window = std::min(config.client.window, 4);
    // Window long enough for a few hundred completions at ~200 Gbps, so the
    // rate estimate is not quantized by op granularity.
    config.window = std::max(config.window,
                             Bandwidth::Gbps(100).TransferTime(300ull * payload));
    config.warmup = std::max(config.warmup,
                             std::max(FromMicros(200), config.window / 4));
  }
  if (payload >= 1 * kMiB) {
    config.client.window = std::min(config.client.window, 2);
    config.client.threads = std::min(config.client.threads, 4);
    config.window = std::max(config.window,
                             Bandwidth::Gbps(100).TransferTime(100ull * payload));
    config.warmup = std::max<SimTime>(config.warmup, config.window / 4);
  }
  return config;
}

// Attaches a FaultInjector to `sim` when the config carries a fault plan.
// With an empty plan no injector exists at all, so every component's fault
// hook is a null-pointer test and the run is bit-identical to a build
// without the fault layer. The caller owns the injector for the sim's life.
std::unique_ptr<fault::FaultInjector> MakeInjector(Simulator* sim,
                                                   const HarnessConfig& config) {
  if (config.faults.empty()) {
    return nullptr;
  }
  auto injector = std::make_unique<fault::FaultInjector>(config.faults);
  sim->set_faults(injector.get());
  return injector;
}

// Attaches a TimerWheel so the cancellation-heavy clocks (client retry
// timers, QP retransmit timeouts) arm through it instead of the event heap.
// Fault-free runs arm none of those timers, so attaching a wheel there is
// sequence-neutral. The caller owns the wheel for the sim's life.
std::unique_ptr<TimerWheel> MakeWheel(Simulator* sim) {
  auto wheel = std::make_unique<TimerWheel>(sim);
  sim->set_timer_wheel(wheel.get());
  return wheel;
}

// Folds fault-side counters (NIC replays, failed ops, dropped frames) into a
// finished measurement. No-op when faults are off.
void FoldFaults(Measurement* m, const fault::FaultInjector* injector,
                const std::vector<std::unique_ptr<ClientMachine>>* clients) {
  if (injector == nullptr) {
    return;
  }
  m->frames_dropped = injector->frames_dropped();
  if (clients != nullptr) {
    for (const auto& c : *clients) {
      m->retransmits += c->retransmits();
      m->op_failures += c->op_failures();
    }
  }
}

// Attaches a Tracer to `sim` when the config asks for one. The returned
// object owns the tracer; keep it alive until the trace is written.
std::unique_ptr<Tracer> MakeTracer(Simulator* sim, const HarnessConfig& config) {
  if (config.trace_path.empty()) {
    return nullptr;
  }
  auto tracer = std::make_unique<Tracer>(config.trace_capacity);
  sim->set_tracer(tracer.get());
  return tracer;
}

// Writes the configured trace/metrics files. Must run before the topology is
// torn down: metric gauges sample live component state.
void DumpObservability(const HarnessConfig& config, const Tracer* tracer,
                       const std::function<void(MetricsRegistry*)>& register_all) {
  if (tracer != nullptr) {
    SNIC_CHECK(tracer->WriteChromeJsonFile(config.trace_path));
  }
  if (!config.metrics_path.empty()) {
    MetricsRegistry registry;
    register_all(&registry);
    SNIC_CHECK(registry.WriteJsonFile(config.metrics_path));
  }
}

TargetSpec MakeTarget(NicEngine* engine, NicEndpoint* ep, PcieLink* port, Verb verb,
                      uint32_t payload) {
  TargetSpec t;
  t.engine = engine;
  t.endpoint = ep;
  t.server_port = port;
  t.verb = verb;
  t.payload = payload;
  return t;
}

}  // namespace

Measurement MeasureInboundPath(ServerKind kind, Verb verb, uint32_t payload,
                               const HarnessConfig& raw_config) {
  const HarnessConfig config = ScaleForPayload(raw_config, payload);
  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  std::unique_ptr<RnicServer> rnic;
  std::unique_ptr<BluefieldServer> bf;
  NicEngine* engine = nullptr;
  NicEndpoint* ep = nullptr;
  PcieLink* port = nullptr;
  if (kind == ServerKind::kRnicHost) {
    rnic = std::make_unique<RnicServer>(&sim, &fabric, config.testbed);
    engine = &rnic->nic();
    ep = rnic->host_ep();
    port = rnic->port();
  } else {
    bf = std::make_unique<BluefieldServer>(&sim, &fabric, config.testbed);
    engine = &bf->nic();
    ep = kind == ServerKind::kBluefieldHost ? bf->host_ep() : bf->soc_ep();
    port = bf->port();
  }
  auto clients = MakeClients(&sim, &fabric, config.client, config.client_machines);
  const auto injector = MakeInjector(&sim, config);
  const auto wheel = MakeWheel(&sim);
  const auto tracer = MakeTracer(&sim, config);
  Meter meter(&sim);
  meter.SetWindow(config.warmup, config.warmup + config.window);
  const TargetSpec target = MakeTarget(engine, ep, port, verb, payload);
  uint64_t seed = 1;
  for (auto& c : clients) {
    c->Start(target, AddressGenerator(0, config.address_range, 64, seed++), &meter);
  }
  std::optional<CounterWatch> watch;
  if (bf != nullptr) {
    sim.At(config.warmup, [&] {
      watch = CounterWatch{bf->pcie0().TotalCounters(), bf->pcie1().TotalCounters()};
    });
  }
  sim.RunUntil(config.warmup + config.window);
  DumpObservability(config, tracer.get(), [&](MetricsRegistry* reg) {
    if (rnic != nullptr) {
      rnic->RegisterMetrics(reg);
    }
    if (bf != nullptr) {
      bf->RegisterMetrics(reg);
    }
    for (auto& c : clients) {
      c->RegisterMetrics(reg);
    }
    if (injector != nullptr) {
      injector->RegisterMetrics(reg);
    }
  });
  Measurement m = Finish(meter, config.window, bf.get(), watch);
  FoldFaults(&m, injector.get(), &clients);
  return m;
}

Measurement MeasureConcurrentInbound(Verb verb, uint32_t payload,
                                     const HarnessConfig& raw_config) {
  const HarnessConfig config = ScaleForPayload(raw_config, payload);
  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, config.testbed);
  auto clients = MakeClients(&sim, &fabric, config.client, config.client_machines);
  const auto injector = MakeInjector(&sim, config);
  const auto wheel = MakeWheel(&sim);
  Meter meter(&sim);
  meter.SetWindow(config.warmup, config.warmup + config.window);
  const TargetSpec host =
      MakeTarget(&bf.nic(), bf.host_ep(), bf.port(), verb, payload);
  const TargetSpec soc = MakeTarget(&bf.nic(), bf.soc_ep(), bf.port(), verb, payload);
  uint64_t seed = 1;
  for (size_t i = 0; i < clients.size(); ++i) {
    clients[i]->Start(i % 2 == 0 ? host : soc,
                      AddressGenerator(0, config.address_range, 64, seed++), &meter);
  }
  std::optional<CounterWatch> watch;
  sim.At(config.warmup, [&] {
    watch = CounterWatch{bf.pcie0().TotalCounters(), bf.pcie1().TotalCounters()};
  });
  sim.RunUntil(config.warmup + config.window);
  Measurement m = Finish(meter, config.window, &bf, watch);
  FoldFaults(&m, injector.get(), &clients);
  return m;
}

Measurement MeasureLocalPath(bool s2h, Verb verb, uint32_t payload,
                             const LocalRequesterParams& requester,
                             const HarnessConfig& raw_config) {
  const HarnessConfig config = ScaleForPayload(raw_config, payload);
  LocalRequesterParams req_params = requester;
  if (payload >= 32 * kKiB) {
    req_params.window = std::min(req_params.window, 2);
  }
  if (payload >= 1 * kMiB) {
    req_params.window = 1;
    req_params.threads = std::min(req_params.threads, 4);
  }
  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, config.testbed);
  NicEndpoint* src = s2h ? bf.soc_ep() : bf.host_ep();
  NicEndpoint* dst = s2h ? bf.host_ep() : bf.soc_ep();
  LocalRequester req(&sim, &bf.nic(), src, dst, req_params, s2h ? "s2h" : "h2s");
  const auto injector = MakeInjector(&sim, config);
  const auto wheel = MakeWheel(&sim);
  const auto tracer = MakeTracer(&sim, config);
  Meter meter(&sim);
  meter.SetWindow(config.warmup, config.warmup + config.window);
  req.Start(verb, payload, AddressGenerator(0, config.address_range, 64, 17), &meter);
  std::optional<CounterWatch> watch;
  sim.At(config.warmup, [&] {
    watch = CounterWatch{bf.pcie0().TotalCounters(), bf.pcie1().TotalCounters()};
  });
  sim.RunUntil(config.warmup + config.window);
  DumpObservability(config, tracer.get(), [&](MetricsRegistry* reg) {
    bf.RegisterMetrics(reg);
    req.RegisterMetrics(reg);
    if (injector != nullptr) {
      injector->RegisterMetrics(reg);
    }
  });
  Measurement m = Finish(meter, config.window, &bf, watch);
  FoldFaults(&m, injector.get(), nullptr);
  return m;
}

Measurement MeasureInterference(Verb verb, uint32_t payload, bool enable_path3,
                                const HarnessConfig& config) {
  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, config.testbed);
  auto clients = MakeClients(&sim, &fabric, config.client, config.client_machines);
  const auto injector = MakeInjector(&sim, config);
  const auto wheel = MakeWheel(&sim);
  Meter inter_meter(&sim);
  inter_meter.SetWindow(config.warmup, config.warmup + config.window);
  const TargetSpec host =
      MakeTarget(&bf.nic(), bf.host_ep(), bf.port(), verb, payload);
  uint64_t seed = 1;
  for (auto& c : clients) {
    c->Start(host, AddressGenerator(0, config.address_range, 64, seed++), &inter_meter);
  }
  std::unique_ptr<LocalRequester> h2s;
  Meter intra_meter(&sim);
  intra_meter.SetWindow(config.warmup, config.warmup + config.window);
  if (enable_path3) {
    h2s = std::make_unique<LocalRequester>(&sim, &bf.nic(), bf.host_ep(), bf.soc_ep(),
                                           LocalRequesterParams::Host(), "h2s");
    h2s->Start(verb, payload, AddressGenerator(0, config.address_range, 64, 29),
               &intra_meter);
  }
  sim.RunUntil(config.warmup + config.window);
  Measurement m = Finish(inter_meter, config.window, &bf, std::nullopt);
  FoldFaults(&m, injector.get(), &clients);
  return m;
}

double MeasureFlowCombination(ServerKind kind, Verb verb_a, Verb verb_b, uint32_t payload,
                              const HarnessConfig& raw_config) {
  const HarnessConfig config = ScaleForPayload(raw_config, payload);
  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  std::unique_ptr<RnicServer> rnic;
  std::unique_ptr<BluefieldServer> bf;
  NicEngine* engine = nullptr;
  NicEndpoint* ep = nullptr;
  PcieLink* port = nullptr;
  if (kind == ServerKind::kRnicHost) {
    rnic = std::make_unique<RnicServer>(&sim, &fabric, config.testbed);
    engine = &rnic->nic();
    ep = rnic->host_ep();
    port = rnic->port();
  } else {
    bf = std::make_unique<BluefieldServer>(&sim, &fabric, config.testbed);
    engine = &bf->nic();
    ep = kind == ServerKind::kBluefieldHost ? bf->host_ep() : bf->soc_ep();
    port = bf->port();
  }
  auto clients = MakeClients(&sim, &fabric, config.client, config.client_machines);
  const auto injector = MakeInjector(&sim, config);
  const auto wheel = MakeWheel(&sim);
  Meter meter(&sim);
  meter.SetWindow(config.warmup, config.warmup + config.window);
  uint64_t seed = 1;
  for (size_t i = 0; i < clients.size(); ++i) {
    const Verb v = i % 2 == 0 ? verb_a : verb_b;
    clients[i]->Start(MakeTarget(engine, ep, port, v, payload),
                      AddressGenerator(0, config.address_range, 64, seed++), &meter);
  }
  sim.RunUntil(config.warmup + config.window);
  return meter.Gbps();
}

double MeasureLocalFlowCombination(bool opposite_directions, uint32_t payload,
                                   const HarnessConfig& config) {
  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, config.testbed);
  const auto injector = MakeInjector(&sim, config);
  const auto wheel = MakeWheel(&sim);
  Meter meter(&sim);
  meter.SetWindow(config.warmup, config.warmup + config.window);
  LocalRequesterParams host_p = LocalRequesterParams::Host();
  host_p.threads = 12;
  LocalRequesterParams soc_p = LocalRequesterParams::Soc();
  LocalRequester h2s(&sim, &bf.nic(), bf.host_ep(), bf.soc_ep(), host_p, "h2s");
  h2s.Start(Verb::kWrite, payload, AddressGenerator(0, config.address_range, 64, 3),
            &meter);
  // Opposite: the SoC simultaneously pushes data toward the host; same: the
  // host runs a second same-direction stream.
  std::unique_ptr<LocalRequester> second;
  if (opposite_directions) {
    second = std::make_unique<LocalRequester>(&sim, &bf.nic(), bf.soc_ep(), bf.host_ep(),
                                              soc_p, "s2h");
  } else {
    second = std::make_unique<LocalRequester>(&sim, &bf.nic(), bf.host_ep(), bf.soc_ep(),
                                              host_p, "h2s2");
  }
  second->Start(Verb::kWrite, payload, AddressGenerator(0, config.address_range, 64, 5),
                &meter);
  sim.RunUntil(config.warmup + config.window);
  return meter.Gbps();
}

}  // namespace snicsim
