// The §4 budget rule as a mechanism: an adaptive governor for host<->SoC
// (path ③) traffic.
//
// The paper's take-away: intra-machine traffic must be capped at the spare
// PCIe headroom (P − N) whenever inter-machine traffic saturates the NIC,
// or it throttles the network path through PCIe1 and the shared NIC
// pipelines. The governor samples the NIC port's hardware counters each
// epoch, estimates the network's current demand, and retunes the paced
// path-③ requester's rate to exactly the measured headroom:
//
//   budget(t) = max(floor, P_effective − max(port.tx, port.rx) over epoch)
//
// A floor keeps path ③ from starving entirely (the SoC still needs some
// control traffic).
#ifndef SRC_WORKLOAD_GOVERNOR_H_
#define SRC_WORKLOAD_GOVERNOR_H_

#include <algorithm>
#include <string>

#include "src/common/units.h"
#include "src/pcie/link.h"
#include "src/sim/simulator.h"
#include "src/workload/local_requester.h"

namespace snicsim {

struct GovernorParams {
  SimTime epoch = FromMicros(20);
  double pcie_gbps = 242.0;  // effective uni-directional PCIe payload limit
  double floor_gbps = 2.0;   // never throttle below this
  // Fraction of measured headroom actually granted (control slack).
  double headroom_fraction = 1.0;
};

class Path3Governor {
 public:
  // Watches `port` (the server's network link) and retunes `requester`
  // (which must run in paced/open-loop mode).
  Path3Governor(Simulator* sim, PcieLink* port, LocalRequester* requester,
                const GovernorParams& params = GovernorParams())
      : sim_(sim), port_(port), requester_(requester), params_(params) {}

  Path3Governor(const Path3Governor&) = delete;
  Path3Governor& operator=(const Path3Governor&) = delete;

  void Start() {
    up_ = port_->counters(LinkDir::kUp);
    down_ = port_->counters(LinkDir::kDown);
    Arm();
  }

  double last_budget_gbps() const { return last_budget_; }
  double last_network_gbps() const { return last_network_; }
  uint64_t epochs() const { return epochs_; }

 private:
  void Arm() {
    sim_->In(params_.epoch, [this] {
      Tick();
      Arm();
    });
  }

  void Tick() {
    ++epochs_;
    const LinkCounters up_now = port_->counters(LinkDir::kUp);
    const LinkCounters down_now = port_->counters(LinkDir::kDown);
    const double secs = ToSeconds(params_.epoch);
    const double tx =
        static_cast<double>(up_now.payload_bytes - up_.payload_bytes) * 8 / 1e9 / secs;
    const double rx =
        static_cast<double>(down_now.payload_bytes - down_.payload_bytes) * 8 / 1e9 /
        secs;
    up_ = up_now;
    down_ = down_now;
    last_network_ = std::max(tx, rx);
    last_budget_ = std::max(params_.floor_gbps,
                            (params_.pcie_gbps - last_network_) * params_.headroom_fraction);
    requester_->SetPacedRate(last_budget_);
  }

  Simulator* sim_;
  PcieLink* port_;
  LocalRequester* requester_;
  GovernorParams params_;
  LinkCounters up_;
  LinkCounters down_;
  double last_budget_ = 0.0;
  double last_network_ = 0.0;
  uint64_t epochs_ = 0;
};

}  // namespace snicsim

#endif  // SRC_WORKLOAD_GOVERNOR_H_
