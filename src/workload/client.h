// CLI requester machines (paper Table 2: 20 nodes, ConnectX-4, 12 usable
// cores) driving closed-loop RDMA workloads against a server.
//
// Each thread keeps `window` unsignaled requests in flight; posting costs a
// WQE build plus a blocking MMIO doorbell, the client NIC adds fixed
// tx/rx overheads plus its own pipeline, and the wire is the shared fabric.
// Peak-throughput experiments instantiate several machines, exactly like
// the paper uses up to eleven requesters to saturate one responder.
#ifndef SRC_WORKLOAD_CLIENT_H_
#define SRC_WORKLOAD_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/nic/engine.h"
#include "src/nic/verb.h"
#include "src/sim/meter.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/topo/fabric.h"
#include "src/workload/addr_gen.h"

namespace snicsim {

struct ClientParams {
  int threads = 12;
  int window = 16;  // outstanding requests (or batches, when batching) per thread
  SimTime wr_build = FromNanos(240);
  SimTime mmio_block = FromNanos(60);    // CPU blocked per doorbell (BlueFlame-style)
  SimTime mmio_flight = FromNanos(200);  // doorbell -> client NIC
  SimTime nic_tx_fixed = FromNanos(150);  // WQE fetch + segmentation
  SimTime nic_rx_fixed = FromNanos(250);  // payload/CQE delivery DMA
  SimTime poll = FromNanos(60);
  // Doorbell batching (Advice #4): one MMIO rings a linked chain of `batch`
  // WQEs; the NIC then DMA-fetches the chain from client memory.
  bool doorbell_batch = false;
  int batch = 16;
  SimTime wqe_fetch = FromNanos(450);  // NIC DMA round trip for the chain
  NicParams nic = NicParams::ConnectX4();

  // --- closed-loop reliability, active ONLY when the simulation carries a
  // fault injector (sim->faults() != nullptr). Without it a dropped frame
  // would leak a window slot forever and the closed loop would starve. ---
  SimTime transport_timeout = FromMicros(120);  // 0 disables even under faults
  int retry_cnt = 7;          // retransmissions before the op fails
  int backoff_shift_cap = 6;  // timeout doubles per retry up to this shift
};

// What a client hammers: a verb against one endpoint of one server.
struct TargetSpec {
  NicEngine* engine = nullptr;
  NicEndpoint* endpoint = nullptr;
  PcieLink* server_port = nullptr;
  Verb verb = Verb::kRead;
  uint32_t payload = 64;
};

class ClientMachine {
 public:
  ClientMachine(Simulator* sim, Fabric* fabric, const ClientParams& params,
                const std::string& name);

  ClientMachine(const ClientMachine&) = delete;
  ClientMachine& operator=(const ClientMachine&) = delete;

  // Starts all threads in a closed loop against `target`; completed ops are
  // counted on `meter`. Runs for the lifetime of the simulation.
  void Start(const TargetSpec& target, AddressGenerator addr, Meter* meter);

  // Posts a single operation from `thread` (0-based); `cb` fires when the
  // completion is visible to the polling thread. This is the primitive the
  // verbs layer (src/rdma) builds on. Unreliable: if the request or its
  // response is lost to fault injection, `cb` never fires.
  void Post(int thread, const TargetSpec& target, uint64_t addr,
            SmallFunction<void(SimTime completed)> cb);

  // NIC-side retransmission of an already-posted WR: the WQE is still in
  // the send queue, so the NIC replays it without a CPU WQE build or a
  // doorbell. This is what the QP reliability layer (src/rdma/verbs.h)
  // uses for go-back-N rounds.
  void Launch(const TargetSpec& target, uint64_t addr,
              SmallFunction<void(SimTime completed)> cb);

  // Reliable post: like Post, but armed with a transport timeout and
  // bounded-backoff retransmission. `cb(completed, ok)` fires exactly once:
  // ok=true on a (possibly retransmitted) response, ok=false when
  // `retry_cnt` retransmissions all vanished — or, with a nonzero absolute
  // `deadline`, as soon as a retry timer fires past it (the op is abandoned
  // without burning the remaining retry budget).
  void PostReliable(int thread, const TargetSpec& target, uint64_t addr,
                    SmallFunction<void(SimTime completed, bool ok)> cb,
                    SimTime deadline = 0);

  PcieLink* port() { return port_; }
  Simulator* sim() const { return sim_; }
  const std::string& name() const { return name_; }
  int threads() const { return params_.threads; }
  uint64_t issued() const { return issued_; }
  uint64_t doorbells() const { return doorbells_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t op_failures() const { return op_failures_; }
  uint64_t deadline_failures() const { return deadline_failures_; }

  // Exposes issue-side counters under "<name>".
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  struct Loop {
    TargetSpec target;
    AddressGenerator addr = AddressGenerator(0, 64);
    Meter* meter = nullptr;
    int thread = 0;
    int in_flight = 0;
  };

  // One reliable op in flight: `epoch` cancels superseded retry timers,
  // `done` makes completion first-wins (a late duplicate response after a
  // retransmission is dropped here). `timer` is the wheel handle of the
  // pending retry timer when a TimerWheel is attached to the simulator, so
  // completion reclaims the timer record instead of leaving a stale event.
  struct ReliableOp {
    TargetSpec target;
    uint64_t addr = 0;
    int attempts = 0;
    uint64_t epoch = 0;
    bool done = false;
    SimTime deadline = 0;  // absolute; 0 = unbounded
    uint64_t timer = 0;    // TimerWheel::kNoTimer when on the plain heap
    SmallFunction<void(SimTime, bool)> cb;
  };

  void Pump(const std::shared_ptr<Loop>& loop);
  void IssueOne(const std::shared_ptr<Loop>& loop);
  void IssueBatch(const std::shared_ptr<Loop>& loop);
  // True when closed-loop ops must carry the retransmission layer.
  bool Reliable() const;
  // NIC-level launch with retransmission protection (the batch path, which
  // never rings per-op doorbells).
  void LaunchReliable(const TargetSpec& target, uint64_t addr,
                      SmallFunction<void(SimTime, bool)> cb, uint64_t req_id);
  void ArmRetry(const std::shared_ptr<ReliableOp>& op);
  void CompleteReliable(const std::shared_ptr<ReliableOp>& op, SimTime completed);
  // The NIC-side half of a post: pipeline, fabric, responder, completion.
  void LaunchFromNic(const TargetSpec& target, uint64_t addr,
                     SmallFunction<void(SimTime)> cb, uint64_t req_id = 0);

  Simulator* sim_;
  Fabric* fabric_;
  ClientParams params_;
  std::string name_;
  PcieLink* port_;
  BusyServer nic_fe_;
  std::vector<std::unique_ptr<BusyServer>> thread_cpu_;
  uint64_t issued_ = 0;
  uint64_t doorbells_ = 0;  // MMIO doorbell rings (one per batch when batching)
  uint64_t retransmits_ = 0;  // reliable-layer NIC replays
  uint64_t op_failures_ = 0;  // reliable ops that exhausted retry_cnt
  uint64_t deadline_failures_ = 0;  // reliable ops abandoned past deadline
};

// Convenience: builds `count` identical client machines.
std::vector<std::unique_ptr<ClientMachine>> MakeClients(Simulator* sim, Fabric* fabric,
                                                        const ClientParams& params,
                                                        int count,
                                                        const std::string& prefix = "cli");

}  // namespace snicsim

#endif  // SRC_WORKLOAD_CLIENT_H_
