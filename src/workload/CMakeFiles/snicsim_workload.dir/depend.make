# Empty dependencies file for snicsim_workload.
# This may be replaced when dependencies are built.
