file(REMOVE_RECURSE
  "CMakeFiles/snicsim_workload.dir/aggregate_fleet.cc.o"
  "CMakeFiles/snicsim_workload.dir/aggregate_fleet.cc.o.d"
  "CMakeFiles/snicsim_workload.dir/client.cc.o"
  "CMakeFiles/snicsim_workload.dir/client.cc.o.d"
  "CMakeFiles/snicsim_workload.dir/fleet.cc.o"
  "CMakeFiles/snicsim_workload.dir/fleet.cc.o.d"
  "CMakeFiles/snicsim_workload.dir/harness.cc.o"
  "CMakeFiles/snicsim_workload.dir/harness.cc.o.d"
  "CMakeFiles/snicsim_workload.dir/local_requester.cc.o"
  "CMakeFiles/snicsim_workload.dir/local_requester.cc.o.d"
  "libsnicsim_workload.a"
  "libsnicsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
