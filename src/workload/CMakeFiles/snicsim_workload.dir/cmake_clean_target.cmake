file(REMOVE_RECURSE
  "libsnicsim_workload.a"
)
