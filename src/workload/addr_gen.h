// Responder-address generation.
//
// The paper's one-sided workloads pick random addresses from a 10 GB region
// by default (§3 evaluation setup); the skew study (Fig. 7) shrinks the
// range so accesses concentrate on fewer DRAM rows/banks.
#ifndef SRC_WORKLOAD_ADDR_GEN_H_
#define SRC_WORKLOAD_ADDR_GEN_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/common/units.h"

namespace snicsim {

class AddressGenerator {
 public:
  // Uniform over [base, base + range), aligned to `align`.
  AddressGenerator(uint64_t base, uint64_t range, uint64_t align = 64,
                   uint64_t seed = 42)
      : base_(base), range_(std::max<uint64_t>(range, align)), align_(align), rng_(seed) {}

  static AddressGenerator Default10G(uint64_t seed = 42) {
    return AddressGenerator(0, 10ull * 1024 * kMiB, 64, seed);
  }

  uint64_t Next() {
    const uint64_t slots = range_ / align_;
    return base_ + rng_.NextBelow(slots) * align_;
  }

  uint64_t base() const { return base_; }
  uint64_t range() const { return range_; }
  uint64_t align() const { return align_; }

  // A copy of this generator's region with a different seed (so concurrent
  // threads draw independent streams over the same range).
  AddressGenerator WithSeed(uint64_t seed) const {
    return AddressGenerator(base_, range_, align_, seed);
  }

 private:
  uint64_t base_;
  uint64_t range_;
  uint64_t align_;
  Rng rng_;
};

// The state-free half of Zipfian item selection: precomputed Gray et al.
// quick-zipf coefficients with an O(1) uniform-to-rank transform. One
// ZipfDist is shared read-only by thousands of logical clients (the fleet),
// each drawing uniforms from its own Rng stream — the setup cost is paid
// once, and draws stay completion-order independent.
class ZipfDist {
 public:
  // `items` in [1, 2^40], `theta` in (0, 1): 0.99 is the YCSB default.
  explicit ZipfDist(uint64_t items, double theta = 0.99)
      : items_(items), theta_(theta) {
    SNIC_CHECK_GT(items, 0u);
    SNIC_CHECK(theta > 0.0 && theta < 1.0);
    zetan_ = Zeta(items);
    zeta2_ = Zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Maps a uniform u in [0, 1) to a rank in [0, items): rank 0 is hottest.
  uint64_t RankOf(double u) const {
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const double n = static_cast<double>(items_);
    const uint64_t rank =
        static_cast<uint64_t>(n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= items_ ? items_ - 1 : rank;
  }

  uint64_t items() const { return items_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n) const {
    // Exact for small n; the standard integral approximation beyond that
    // (the generator only needs zetan_ to ~1% for a faithful tail).
    double sum = 0.0;
    const uint64_t exact = n < 10000 ? n : 10000;
    for (uint64_t i = 1; i <= exact; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    if (n > exact) {
      const double a = 1.0 - theta_;
      sum += (std::pow(static_cast<double>(n), a) -
              std::pow(static_cast<double>(exact), a)) /
             a;
    }
    return sum;
  }

  uint64_t items_;
  double theta_;
  double zetan_ = 0.0;
  double zeta2_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

// Zipfian item selection (YCSB-style), for workloads where a few keys are
// hot — the realistic version of Fig. 7's shrunken-range skew. Bundles a
// ZipfDist with its own Rng stream; draws are byte-identical to the
// pre-ZipfDist generator.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t items, double theta = 0.99, uint64_t seed = 42)
      : dist_(items, theta), rng_(seed) {}

  // Returns a rank in [0, items): rank 0 is the hottest item.
  uint64_t Next() { return dist_.RankOf(rng_.NextDouble()); }

  uint64_t items() const { return dist_.items(); }
  double theta() const { return dist_.theta(); }
  const ZipfDist& dist() const { return dist_; }

 private:
  ZipfDist dist_;
  Rng rng_;
};

}  // namespace snicsim

#endif  // SRC_WORKLOAD_ADDR_GEN_H_
