#include "src/workload/client.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/obs/trace.h"
#include "src/sim/timer_wheel.h"

namespace snicsim {

ClientMachine::ClientMachine(Simulator* sim, Fabric* fabric, const ClientParams& params,
                             const std::string& name)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      name_(name),
      port_(fabric->AddPort(name + ".port", params.nic.network_bandwidth)),
      nic_fe_(sim, name + ".fe") {
  for (int t = 0; t < params_.threads; ++t) {
    thread_cpu_.push_back(std::make_unique<BusyServer>(sim, name + ".cpu" + std::to_string(t)));
  }
}

void ClientMachine::Start(const TargetSpec& target, AddressGenerator addr, Meter* meter) {
  SNIC_CHECK(target.engine != nullptr);
  SNIC_CHECK(target.endpoint != nullptr);
  SNIC_CHECK(target.server_port != nullptr);
  // Stagger thread start times (FNV hash of the machine name spreads
  // machines too): a synchronized thundering herd at t=0 floods responder
  // queues with a transient that pollutes short measurement windows.
  uint64_t h = 1469598103934665603ULL;
  for (char c : name_) {
    h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ULL;
  }
  const SimTime machine_offset = static_cast<SimTime>(h % 40) * FromNanos(200);
  for (int t = 0; t < params_.threads; ++t) {
    auto loop = std::make_shared<Loop>();
    loop->target = target;
    // Per-thread copy of the region with an independent random stream.
    loop->addr = addr.WithSeed(0x9e37'79b9'7f4aULL * static_cast<uint64_t>(t + 1) + 13);
    loop->meter = meter;
    loop->thread = t;
    sim_->In(machine_offset + FromNanos(120) * t, [this, loop] { Pump(loop); });
  }
}

void ClientMachine::Pump(const std::shared_ptr<Loop>& loop) {
  while (loop->in_flight < params_.window) {
    loop->in_flight += 1;
    if (params_.doorbell_batch) {
      IssueBatch(loop);
    } else {
      IssueOne(loop);
    }
  }
}

bool ClientMachine::Reliable() const {
  // Only fault-carrying simulations arm the retransmission layer: with it
  // unset, every issue path below is byte-identical to the pre-fault code
  // (no extra events, no extra state).
  return sim_->faults() != nullptr && params_.transport_timeout > 0;
}

void ClientMachine::IssueOne(const std::shared_ptr<Loop>& loop) {
  const SimTime issue_start = sim_->now();
  if (Reliable()) {
    // Failed ops are not recorded (they produced no completion) but still
    // free their window slot, so the closed loop degrades instead of
    // starving when the link is lossy.
    PostReliable(loop->thread, loop->target, loop->addr.Next(),
                 [this, loop, issue_start](SimTime completed, bool ok) {
                   if (ok) {
                     loop->meter->RecordOp(loop->target.payload,
                                           completed - issue_start);
                   }
                   loop->in_flight -= 1;
                   Pump(loop);
                 });
    return;
  }
  Post(loop->thread, loop->target, loop->addr.Next(),
       [this, loop, issue_start](SimTime completed) {
         loop->meter->RecordOp(loop->target.payload, completed - issue_start);
         loop->in_flight -= 1;
         Pump(loop);
       });
}

void ClientMachine::IssueBatch(const std::shared_ptr<Loop>& loop) {
  const int batch = params_.batch;
  SNIC_CHECK_GT(batch, 0);
  issued_ += static_cast<uint64_t>(batch);
  ++doorbells_;
  const SimTime issue_start = sim_->now();
  BusyServer& cpu = *thread_cpu_[static_cast<size_t>(loop->thread)];
  // Build the linked WQE chain, then one doorbell for the whole batch.
  const SimTime posted = cpu.Enqueue(params_.wr_build * batch + params_.mmio_block);
  if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
    // Batch plumbing is shared by all ops in the chain: req 0 marks it as
    // belonging to no single request.
    tr->Span(cpu.name(), "post_batch", issue_start, posted, 0);
    tr->Span(cpu.name(), "doorbell", posted, posted + params_.mmio_flight, 0);
    tr->Span(name_ + ".nic", "wqe_fetch", posted + params_.mmio_flight,
             posted + params_.mmio_flight + params_.wqe_fetch, 0);
  }
  sim_->At(posted + params_.mmio_flight + params_.wqe_fetch, [this, loop, batch,
                                                              issue_start] {
    auto remaining = std::make_shared<int>(batch);
    Tracer* const tr = sim_->tracer();
    for (int i = 0; i < batch; ++i) {
      const uint64_t rid = tr != nullptr ? tr->NextRequestId() : 0;
      if (Reliable()) {
        // Chain ops never ring per-op doorbells, so retransmission
        // protection attaches at the NIC launch.
        LaunchReliable(loop->target, loop->addr.Next(),
                       [this, loop, remaining, issue_start, rid](SimTime completed,
                                                                 bool ok) {
                         if (ok) {
                           if (Tracer* const t = sim_->tracer(); t != nullptr) {
                             t->Span(name_, VerbName(loop->target.verb), issue_start,
                                     completed, rid, TraceCat::kOp);
                           }
                           loop->meter->RecordOp(loop->target.payload,
                                                 completed - issue_start);
                         }
                         if (--*remaining == 0) {
                           loop->in_flight -= 1;
                           Pump(loop);
                         }
                       }, rid);
        continue;
      }
      LaunchFromNic(loop->target, loop->addr.Next(),
                    [this, loop, remaining, issue_start, rid](SimTime completed) {
                      if (Tracer* const t = sim_->tracer(); t != nullptr) {
                        t->Span(name_, VerbName(loop->target.verb), issue_start,
                                completed, rid, TraceCat::kOp);
                      }
                      loop->meter->RecordOp(loop->target.payload,
                                            completed - issue_start);
                      if (--*remaining == 0) {
                        loop->in_flight -= 1;
                        Pump(loop);
                      }
                    }, rid);
    }
  });
}

void ClientMachine::Post(int thread, const TargetSpec& target, uint64_t addr,
                         SmallFunction<void(SimTime)> cb) {
  SNIC_CHECK_GE(thread, 0);
  SNIC_CHECK_LT(static_cast<size_t>(thread), thread_cpu_.size());
  ++issued_;
  ++doorbells_;
  BusyServer& cpu = *thread_cpu_[static_cast<size_t>(thread)];
  Tracer* const tr = sim_->tracer();
  const uint64_t rid = tr != nullptr ? tr->NextRequestId() : 0;
  const SimTime issue_start = sim_->now();
  // Build the WQE and ring the doorbell (CPU is blocked for both).
  const SimTime posted = cpu.Enqueue(params_.wr_build + params_.mmio_block);
  if (tr != nullptr) {
    tr->Span(cpu.name(), "post", issue_start, posted, rid);
    tr->Span(cpu.name(), "doorbell", posted, posted + params_.mmio_flight, rid);
    // Wrap the completion with the whole-request span so the trace shows
    // [post .. completion polled] as one op on the machine's lane.
    cb = [this, target, issue_start, rid, cb = std::move(cb)](SimTime completed) {
      if (Tracer* const t = sim_->tracer(); t != nullptr) {
        t->Span(name_, VerbName(target.verb), issue_start, completed, rid,
                TraceCat::kOp);
      }
      cb(completed);
    };
  }
  sim_->At(posted + params_.mmio_flight,
           [this, target, addr, rid, cb = std::move(cb)]() mutable {
    LaunchFromNic(target, addr, std::move(cb), rid);
  });
}

void ClientMachine::Launch(const TargetSpec& target, uint64_t addr,
                           SmallFunction<void(SimTime)> cb) {
  Tracer* const tr = sim_->tracer();
  const uint64_t rid = tr != nullptr ? tr->NextRequestId() : 0;
  if (tr != nullptr) {
    tr->Instant(name_ + ".nic", "retransmit", sim_->now(), rid);
  }
  LaunchFromNic(target, addr, std::move(cb), rid);
}

void ClientMachine::PostReliable(int thread, const TargetSpec& target, uint64_t addr,
                                 SmallFunction<void(SimTime, bool)> cb,
                                 SimTime deadline) {
  auto op = std::make_shared<ReliableOp>();
  op->target = target;
  op->addr = addr;
  op->deadline = deadline;
  op->cb = std::move(cb);
  // The first attempt pays the full post path (WQE build + doorbell);
  // retransmissions replay from the NIC.
  Post(thread, target, addr,
       [this, op](SimTime completed) { CompleteReliable(op, completed); });
  ArmRetry(op);
}

void ClientMachine::LaunchReliable(const TargetSpec& target, uint64_t addr,
                                   SmallFunction<void(SimTime, bool)> cb,
                                   uint64_t req_id) {
  auto op = std::make_shared<ReliableOp>();
  op->target = target;
  op->addr = addr;
  op->cb = std::move(cb);
  LaunchFromNic(target, addr,
                [this, op](SimTime completed) { CompleteReliable(op, completed); },
                req_id);
  ArmRetry(op);
}

void ClientMachine::ArmRetry(const std::shared_ptr<ReliableOp>& op) {
  const uint64_t epoch = op->epoch;
  const int shift = std::min(op->attempts, params_.backoff_shift_cap);
  SimTime dt = params_.transport_timeout << shift;
  // A deadline-carrying op clamps its timer to the budget edge: without the
  // clamp an exponential backoff step could overshoot the deadline by a
  // whole round, and the failure (the failover evidence the breaker layer
  // feeds on) would be reported a round late.
  if (op->deadline > 0 && sim_->now() + dt > op->deadline) {
    dt = op->deadline > sim_->now() ? op->deadline - sim_->now() : 0;
    if (dt < kNanos) {
      dt = kNanos;
    }
  }
  auto fire = [this, op, epoch] {
    if (op->done || op->epoch != epoch) {
      return;  // completed, or a newer round owns the timer
    }
    ++op->epoch;
    // Deadline budget: once the budget is gone there is no point posting
    // another round whose response could only arrive even later — the op
    // fails now and the caller's deadline accounting takes over.
    if (op->deadline > 0 && sim_->now() >= op->deadline) {
      op->done = true;
      ++deadline_failures_;
      if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
        tr->Instant(name_, "op_deadline", sim_->now(), 0);
      }
      op->cb(sim_->now(), false);
      return;
    }
    if (op->attempts >= params_.retry_cnt) {
      op->done = true;
      ++op_failures_;
      if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
        tr->Instant(name_, "op_failed", sim_->now(), 0);
      }
      op->cb(sim_->now(), false);
      return;
    }
    ++op->attempts;
    ++retransmits_;
    Launch(op->target, op->addr,
           [this, op](SimTime completed) { CompleteReliable(op, completed); });
    ArmRetry(op);
  };
  // Retry timers are overwhelmingly cancelled by a completion, so a wheel —
  // when one is attached — absorbs them without individual heap events.
  if (TimerWheel* const wheel = sim_->timer_wheel(); wheel != nullptr) {
    op->timer = wheel->In(dt, std::move(fire));
  } else {
    sim_->In(dt, std::move(fire));
  }
}

void ClientMachine::CompleteReliable(const std::shared_ptr<ReliableOp>& op,
                                     SimTime completed) {
  if (op->done) {
    return;  // late duplicate after a retransmission already completed it
  }
  op->done = true;
  ++op->epoch;  // cancels the pending retry timer
  if (op->timer != TimerWheel::kNoTimer) {
    if (TimerWheel* const wheel = sim_->timer_wheel(); wheel != nullptr) {
      wheel->Cancel(op->timer);  // stale-id no-op if the timer already fired
    }
    op->timer = TimerWheel::kNoTimer;
  }
  op->cb(completed, true);
}

void ClientMachine::LaunchFromNic(const TargetSpec& target, uint64_t addr,
                                  SmallFunction<void(SimTime)> cb, uint64_t req_id) {
  // Client NIC pipeline + WQE handling.
  const SimTime fe_done =
      nic_fe_.EnqueueAt(sim_->now(), params_.nic.shared_pipeline.ServiceTime());
  const SimTime tx_ready = fe_done + params_.nic_tx_fixed;
  if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
    tr->Span(name_ + ".nic", "tx", sim_->now(), tx_ready, req_id);
  }
  PciePath to_server = fabric_->Route(port_, target.server_port);
  auto on_arrival = [this, target, addr, req_id, cb = std::move(cb)]() mutable {
    PciePath back = fabric_->Route(target.server_port, port_);
    const double fe_units =
        (target.verb == Verb::kRead || target.payload == 0)
            ? 1.0
            : static_cast<double>(
                  CeilDiv(target.payload, target.engine->params().network_mtu));
    target.engine->HandleRequest(
        target.endpoint, target.verb, addr, target.payload, fe_units, std::move(back),
        [this, req_id, cb = std::move(cb)](SimTime delivered) mutable {
          if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
            tr->Span(name_ + ".nic", "rx", delivered,
                     delivered + params_.nic_rx_fixed + params_.poll, req_id);
          }
          sim_->At(delivered + params_.nic_rx_fixed + params_.poll,
                   [this, cb = std::move(cb)] { cb(sim_->now()); });
        }, req_id);
  };
  if (target.verb == Verb::kRead || target.payload == 0) {
    to_server.TransferControlAt(sim_, tx_ready, std::move(on_arrival), req_id);
  } else {
    to_server.TransferAt(sim_, tx_ready, target.payload, params_.nic.network_mtu,
                         std::move(on_arrival), req_id);
  }
}

void ClientMachine::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register(name_, "issued", "count", "operations posted by this machine",
                [this] { return static_cast<double>(issued_); });
  reg->Register(name_, "doorbells", "count",
                "MMIO doorbell rings (one per batch when batching)",
                [this] { return static_cast<double>(doorbells_); });
  // Reliability counters exist only in fault-carrying runs, so the metrics
  // dump of a fault-free run stays byte-identical to the pre-fault layer.
  if (sim_->faults() != nullptr) {
    reg->Register(name_, "retransmits", "count",
                  "NIC-level replays by the client reliability layer",
                  [this] { return static_cast<double>(retransmits_); });
    reg->Register(name_, "op_failures", "count",
                  "closed-loop ops abandoned after retry_cnt retransmissions",
                  [this] { return static_cast<double>(op_failures_); });
    reg->Register(name_, "deadline_failures", "count",
                  "reliable ops abandoned at a retry timer past their deadline",
                  [this] { return static_cast<double>(deadline_failures_); });
  }
}

std::vector<std::unique_ptr<ClientMachine>> MakeClients(Simulator* sim, Fabric* fabric,
                                                        const ClientParams& params, int count,
                                                        const std::string& prefix) {
  std::vector<std::unique_ptr<ClientMachine>> clients;
  clients.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    clients.push_back(std::make_unique<ClientMachine>(sim, fabric, params,
                                                      prefix + std::to_string(i)));
  }
  return clients;
}

}  // namespace snicsim
