// Sharded multi-client request generator for the KV serving workload.
//
// A ClientFleet multiplexes thousands of *logical* clients over a small
// pool of requester machines (each a ClientMachine: one client NIC, a QP
// pool of posting threads) — the way a real scale-out tier runs thousands
// of application connections over a few physical hosts. Each logical
// client draws its key rank from a shared Zipf distribution and its value
// size from a mixture, then asks a Router which communication path the
// request should take: client→host (①) or client→SoC (②). That hook is
// what the path-selection governor (src/governor) plugs into.
//
// Determinism contract: every logical client owns a private Rng stream
// seeded from (fleet seed, client id) only, and draws from it in its own
// program order. Streams never depend on cross-client completion
// interleaving, so a run is byte-identical for a given seed regardless of
// how sweep points are scheduled (--jobs). Routed requests are conserved:
// each one terminates exactly once — completed on the path it was routed
// to, or failed after the reliability layer exhausts retry_cnt.
#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/resilience/resilience.h"
#include "src/sim/simulator.h"
#include "src/topo/fabric.h"
#include "src/workload/addr_gen.h"
#include "src/workload/client.h"
#include "src/workload/trace/trace.h"

namespace snicsim {

// Discrete value-size mixture: class i is drawn with weight weights[i] and
// carries class_bytes[i] payload bytes (the layout's class table).
struct SizeMixture {
  std::vector<double> weights;  // need not be normalized

  // Maps a uniform u in [0, 1) to a class index by cumulative weight.
  int ClassOf(double u) const;

  static SizeMixture Single() { return SizeMixture{{1.0}}; }
};

// One generated KV request, as seen by the Router and the Observer.
struct KvRequest {
  uint64_t client = 0;  // logical client id
  uint64_t seq = 0;     // per-client issue sequence number
  uint64_t rank = 0;    // Zipf popularity rank (0 = hottest)
  int size_class = 0;   // index into the layout's class table
  uint32_t bytes = 0;   // reply value bytes
  uint64_t hdr = 0;     // packed header delivered to the executor
  SimTime deadline = 0;  // absolute latency budget; 0 = none
};

struct FleetParams {
  int machines = 4;        // physical requester machines (QP pools)
  ClientParams machine;    // per-machine NIC/CPU parameters
  int logical_clients = 1024;
  int window = 1;          // closed-loop outstanding ops per logical client
  bool open_loop = false;  // Poisson arrivals instead of a closed loop
  double open_mops = 1.0;  // aggregate arrival rate (Mops) when open-loop
  // Request SEND payload (the GET header). The *reply* carries the drawn
  // value size; the request itself stays small like a real KV get.
  uint32_t request_bytes = 64;
  uint64_t seed = 42;
};

class ClientFleet {
 public:
  // Returns the index of the path (into the `paths` vector handed to
  // Start) this request is routed to.
  using Router = std::function<int(const KvRequest&)>;
  // Encodes (rank, size class) into the 64-bit header / simulated address
  // the executor decodes (kv::ServingLayout::Pack, kept abstract here so
  // the workload layer does not depend on the kvstore layer).
  using HeaderFn = std::function<uint64_t(uint64_t rank, int size_class)>;
  // Fires exactly once per routed request: ok=true with its end-to-end
  // latency, ok=false when the reliability layer gave up.
  using Observer = std::function<void(int path, const KvRequest&, SimTime latency, bool ok)>;

  ClientFleet(Simulator* sim, Fabric* fabric, const FleetParams& params,
              const std::string& prefix = "fleet");

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  // Starts every logical client; runs until StopIssuing().
  // `paths[i].payload` is ignored — every request SEND carries
  // params.request_bytes; the reply carries the drawn value size.
  // `class_bytes` is the size-class table (parallel to `mix.weights`).
  void Start(std::vector<TargetSpec> paths, const ZipfDist* zipf,
             const SizeMixture& mix, std::vector<uint32_t> class_bytes,
             HeaderFn header, Router route, Observer observe);

  // Hooks the overload-protection layer in *before* Start. With a manager
  // set, every generated request is deadline-stamped and passes admission
  // control after routing; refused requests are shed (counted, observed via
  // the shed observer, never posted), and small requests may be hedged onto
  // the other path. Null (the default) keeps the issue path byte-identical
  // to the pre-resilience fleet.
  void SetResilience(resilience::ResilienceManager* resil) { resil_ = resil; }
  // Fires once per shed request with the path routing chose; the harness
  // uses it to unwind the policy's in-flight accounting.
  using ShedObserver = std::function<void(int path, const KvRequest&)>;
  void SetShedObserver(ShedObserver observer) { shed_observer_ = std::move(observer); }

  // Attaches a non-stationary load trace *before* Start. Open-loop arrival
  // gaps shrink to the trace's peak rate and each candidate is thinned to
  // the instantaneous rate (one counted accept draw, consumed only in
  // segments below the peak); drawn Zipf ranks rotate by the segment's
  // churn (draw-free); when any segment has scan > 0 every issue consumes
  // one scan draw that may force the top size class. A flat trace (rate 1,
  // churn 0, scan 0 everywhere) therefore consumes zero extra draws and
  // replays byte-identically to a trace-free fleet. Null (the default)
  // keeps the pre-trace issue path untouched. Rate thinning applies only
  // to open-loop fleets; churn and scan modulate closed loops too.
  void SetTrace(const trace::TraceDriver* trace);

  // Stops new issues (closed loops stop re-pumping, open-loop arrival
  // chains end). In-flight requests still terminate, so running the
  // simulation dry afterwards gives exact conservation:
  // generated == issued - hedge launches + shed (each launched hedge adds
  // one extra wire copy to issued) and issued == completed + failed +
  // cancelled (without a resilience manager, shed == cancelled == 0).
  void StopIssuing() { stopped_ = true; }

  // Conservation counters (see StopIssuing), plus the per-path splits which
  // sum to the totals. `completed`/`failed`/`cancelled` count wire copies:
  // a hedged request settles exactly one copy as completed-or-failed and
  // cancels the rest.
  uint64_t generated() const { return generated_; }
  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }
  uint64_t shed() const { return shed_; }
  uint64_t cancelled() const { return cancelled_; }
  // Deadline classification of settled requests: good (ok, within budget),
  // late (ok, past budget), deadline_failed (failed with the budget gone —
  // a subset of failed()). good + late == completed.
  uint64_t good() const { return good_; }
  uint64_t late() const { return late_; }
  uint64_t deadline_failed() const { return deadline_failed_; }
  // Trace-modulation counters (zero without a trace): candidates rejected
  // by rate thinning, issues whose size class a scan phase forced, and
  // per-trace-segment splits of generated / shed (the metamorphic suite's
  // per-phase ledgers). Thinned candidates are not generated.
  uint64_t thinned() const { return thinned_; }
  uint64_t scan_forced() const { return scan_forced_; }
  const std::vector<uint64_t>& phase_generated() const { return phase_generated_; }
  const std::vector<uint64_t>& phase_shed() const { return phase_shed_; }
  const std::vector<uint64_t>& path_issued() const { return path_issued_; }
  const std::vector<uint64_t>& path_completed() const { return path_completed_; }
  const std::vector<uint64_t>& path_failed() const { return path_failed_; }
  const std::vector<uint64_t>& path_shed() const { return path_shed_; }
  const std::vector<uint64_t>& path_cancelled() const { return path_cancelled_; }

  int machine_count() const { return static_cast<int>(machines_.size()); }
  ClientMachine& machine(int i) { return *machines_[static_cast<size_t>(i)]; }

  // Exposes fleet totals under "<prefix>" plus each machine's counters.
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  struct Logical {
    uint64_t id = 0;
    int machine = 0;
    int thread = 0;
    Rng rng;
    uint64_t seq = 0;
    int in_flight = 0;
  };

  // Settlement state of one (possibly hedged) request: first terminal copy
  // wins, the rest cancel.
  struct HedgeState {
    bool settled = false;
    int outstanding = 0;
  };

  void Pump(const std::shared_ptr<Logical>& lc);
  void IssueOne(const std::shared_ptr<Logical>& lc);
  void IssueResilient(const std::shared_ptr<Logical>& lc, KvRequest req);
  void ScheduleArrival(const std::shared_ptr<Logical>& lc);
  // Posts one wire copy of `req` onto `copy`'s target and settles it
  // through `hs` when it terminates.
  void PostCopy(const std::shared_ptr<Logical>& lc, const KvRequest& req,
                const std::shared_ptr<HedgeState>& hs, int routed, int copy,
                SimTime issued_at);
  void Settle(const std::shared_ptr<Logical>& lc, const KvRequest& req,
              const std::shared_ptr<HedgeState>& hs, int routed, int copy,
              SimTime issued_at, SimTime completed, bool ok);
  // `routed` is the path the Router chose (what the Observer hears);
  // `copy` is the path this wire copy actually took (what the per-path
  // counters record) — they differ only for a winning hedge.
  void Finish(int routed, int copy, const KvRequest& req, SimTime issued_at,
              SimTime completed, bool ok);
  bool Reliable() const;

  Simulator* sim_;
  FleetParams params_;
  std::string prefix_;
  std::vector<std::unique_ptr<ClientMachine>> machines_;
  std::vector<std::shared_ptr<Logical>> logicals_;

  std::vector<TargetSpec> paths_;
  const ZipfDist* zipf_ = nullptr;
  SizeMixture mix_;
  std::vector<uint32_t> class_bytes_;
  HeaderFn header_;
  Router route_;
  Observer observe_;
  resilience::ResilienceManager* resil_ = nullptr;
  ShedObserver shed_observer_;
  const trace::TraceDriver* trace_ = nullptr;

  bool stopped_ = false;
  uint64_t generated_ = 0;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t shed_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t good_ = 0;
  uint64_t late_ = 0;
  uint64_t deadline_failed_ = 0;
  uint64_t thinned_ = 0;
  uint64_t scan_forced_ = 0;
  std::vector<uint64_t> phase_generated_;
  std::vector<uint64_t> phase_shed_;
  std::vector<uint64_t> path_issued_;
  std::vector<uint64_t> path_completed_;
  std::vector<uint64_t> path_failed_;
  std::vector<uint64_t> path_shed_;
  std::vector<uint64_t> path_cancelled_;
};

}  // namespace snicsim

#endif  // SRC_WORKLOAD_FLEET_H_
