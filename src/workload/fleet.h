// Sharded multi-client request generator for the KV serving workload.
//
// A ClientFleet multiplexes thousands of *logical* clients over a small
// pool of requester machines (each a ClientMachine: one client NIC, a QP
// pool of posting threads) — the way a real scale-out tier runs thousands
// of application connections over a few physical hosts. Each logical
// client draws its key rank from a shared Zipf distribution and its value
// size from a mixture, then asks a Router which communication path the
// request should take: client→host (①) or client→SoC (②). That hook is
// what the path-selection governor (src/governor) plugs into.
//
// Determinism contract: every logical client owns a private Rng stream
// seeded from (fleet seed, client id) only, and draws from it in its own
// program order. Streams never depend on cross-client completion
// interleaving, so a run is byte-identical for a given seed regardless of
// how sweep points are scheduled (--jobs). Routed requests are conserved:
// each one terminates exactly once — completed on the path it was routed
// to, or failed after the reliability layer exhausts retry_cnt.
#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/topo/fabric.h"
#include "src/workload/addr_gen.h"
#include "src/workload/client.h"

namespace snicsim {

// Discrete value-size mixture: class i is drawn with weight weights[i] and
// carries class_bytes[i] payload bytes (the layout's class table).
struct SizeMixture {
  std::vector<double> weights;  // need not be normalized

  // Maps a uniform u in [0, 1) to a class index by cumulative weight.
  int ClassOf(double u) const;

  static SizeMixture Single() { return SizeMixture{{1.0}}; }
};

// One generated KV request, as seen by the Router and the Observer.
struct KvRequest {
  uint64_t client = 0;  // logical client id
  uint64_t seq = 0;     // per-client issue sequence number
  uint64_t rank = 0;    // Zipf popularity rank (0 = hottest)
  int size_class = 0;   // index into the layout's class table
  uint32_t bytes = 0;   // reply value bytes
  uint64_t hdr = 0;     // packed header delivered to the executor
};

struct FleetParams {
  int machines = 4;        // physical requester machines (QP pools)
  ClientParams machine;    // per-machine NIC/CPU parameters
  int logical_clients = 1024;
  int window = 1;          // closed-loop outstanding ops per logical client
  bool open_loop = false;  // Poisson arrivals instead of a closed loop
  double open_mops = 1.0;  // aggregate arrival rate (Mops) when open-loop
  // Request SEND payload (the GET header). The *reply* carries the drawn
  // value size; the request itself stays small like a real KV get.
  uint32_t request_bytes = 64;
  uint64_t seed = 42;
};

class ClientFleet {
 public:
  // Returns the index of the path (into the `paths` vector handed to
  // Start) this request is routed to.
  using Router = std::function<int(const KvRequest&)>;
  // Encodes (rank, size class) into the 64-bit header / simulated address
  // the executor decodes (kv::ServingLayout::Pack, kept abstract here so
  // the workload layer does not depend on the kvstore layer).
  using HeaderFn = std::function<uint64_t(uint64_t rank, int size_class)>;
  // Fires exactly once per routed request: ok=true with its end-to-end
  // latency, ok=false when the reliability layer gave up.
  using Observer = std::function<void(int path, const KvRequest&, SimTime latency, bool ok)>;

  ClientFleet(Simulator* sim, Fabric* fabric, const FleetParams& params,
              const std::string& prefix = "fleet");

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  // Starts every logical client; runs until StopIssuing().
  // `paths[i].payload` is ignored — every request SEND carries
  // params.request_bytes; the reply carries the drawn value size.
  // `class_bytes` is the size-class table (parallel to `mix.weights`).
  void Start(std::vector<TargetSpec> paths, const ZipfDist* zipf,
             const SizeMixture& mix, std::vector<uint32_t> class_bytes,
             HeaderFn header, Router route, Observer observe);

  // Stops new issues (closed loops stop re-pumping, open-loop arrival
  // chains end). In-flight requests still terminate, so running the
  // simulation dry afterwards gives exact conservation:
  // issued == completed + failed.
  void StopIssuing() { stopped_ = true; }

  // Conservation counters: issued() == completed() + failed() once the
  // simulation drains, and the per-path splits sum to the totals.
  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }
  const std::vector<uint64_t>& path_issued() const { return path_issued_; }
  const std::vector<uint64_t>& path_completed() const { return path_completed_; }
  const std::vector<uint64_t>& path_failed() const { return path_failed_; }

  int machine_count() const { return static_cast<int>(machines_.size()); }
  ClientMachine& machine(int i) { return *machines_[static_cast<size_t>(i)]; }

  // Exposes fleet totals under "<prefix>" plus each machine's counters.
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  struct Logical {
    uint64_t id = 0;
    int machine = 0;
    int thread = 0;
    Rng rng;
    uint64_t seq = 0;
    int in_flight = 0;
  };

  void Pump(const std::shared_ptr<Logical>& lc);
  void IssueOne(const std::shared_ptr<Logical>& lc);
  void ScheduleArrival(const std::shared_ptr<Logical>& lc);
  void Finish(int path, const KvRequest& req, SimTime issued_at, SimTime completed,
              bool ok);
  bool Reliable() const;

  Simulator* sim_;
  FleetParams params_;
  std::string prefix_;
  std::vector<std::unique_ptr<ClientMachine>> machines_;
  std::vector<std::shared_ptr<Logical>> logicals_;

  std::vector<TargetSpec> paths_;
  const ZipfDist* zipf_ = nullptr;
  SizeMixture mix_;
  std::vector<uint32_t> class_bytes_;
  HeaderFn header_;
  Router route_;
  Observer observe_;

  bool stopped_ = false;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  std::vector<uint64_t> path_issued_;
  std::vector<uint64_t> path_completed_;
  std::vector<uint64_t> path_failed_;
};

}  // namespace snicsim

#endif  // SRC_WORKLOAD_FLEET_H_
