// Measurement harness shared by the integration tests and every bench.
//
// One call = one experiment: it builds a fresh testbed (fabric + server +
// requesters), runs warmup + a steady-state window, and returns throughput,
// latency percentiles, and PCIe hardware-counter rates — the same
// methodology as the paper (§2.4: one requester machine for latency, up to
// eleven to saturate for peak throughput; counters from [29]).
#ifndef SRC_WORKLOAD_HARNESS_H_
#define SRC_WORKLOAD_HARNESS_H_

#include <string>

#include "src/common/units.h"
#include "src/fault/plan.h"
#include "src/nic/verb.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/topo/testbed_params.h"
#include "src/workload/client.h"
#include "src/workload/local_requester.h"

namespace snicsim {

// Which responder a client path targets.
enum class ServerKind {
  kRnicHost,       // RNIC ①
  kBluefieldHost,  // SNIC ①
  kBluefieldSoc,   // SNIC ②
};

constexpr const char* ServerKindName(ServerKind k) {
  switch (k) {
    case ServerKind::kRnicHost:
      return "RNIC(1)";
    case ServerKind::kBluefieldHost:
      return "SNIC(1)";
    case ServerKind::kBluefieldSoc:
      return "SNIC(2)";
  }
  return "?";
}

struct HarnessConfig {
  TestbedParams testbed = TestbedParams::Default();
  ClientParams client;
  int client_machines = 11;  // the paper's saturation setup
  SimTime warmup = FromMicros(60);
  SimTime window = FromMicros(150);
  uint64_t address_range = 10ull * 1024 * kMiB;  // paper default: 10 GB

  // Observability sinks. When `trace_path` is non-empty, the experiment runs
  // with a Tracer attached and exports Chrome trace_event JSON there; when
  // `metrics_path` is non-empty, the final counter state of every component
  // is dumped there as JSON. Both files are byte-identical across runs.
  std::string trace_path;
  std::string metrics_path;
  size_t trace_capacity = Tracer::kDefaultCapacity;

  // Fault schedule for this experiment (src/fault/plan.h). Empty (the
  // default) means no injector is even created: the run is bit-identical
  // to a fault-free build. Each Measure* call owns its injector, so sweep
  // points never share fault state and parallel sweeps stay deterministic.
  fault::FaultPlan faults;

  // Event cores for the simulation itself (--sim-threads). Every figure
  // harness builds a single-domain testbed — one Simulator, nothing for a
  // parallel DES to shard — so any value is accepted and the run is
  // byte-identical to sim_threads=1; the determinism contract (DESIGN.md
  // §12) makes the same promise for genuinely multi-domain workloads
  // (src/topo/rack.h). Composes with --jobs multiplicatively: a sweep runs
  // up to jobs × sim_threads worker threads.
  int sim_threads = 1;

  static HarnessConfig Latency() {
    // One requester, one thread, one outstanding op: unloaded latency.
    HarnessConfig c;
    c.client_machines = 1;
    c.client.threads = 1;
    c.client.window = 1;
    c.window = FromMicros(400);
    return c;
  }
};

struct Measurement {
  double mreqs = 0.0;
  double gbps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t ops = 0;
  // SmartNIC hardware-counter rates over the window (0 for RNIC/pcie1).
  double pcie0_mpps = 0.0;
  double pcie1_mpps = 0.0;
  double pcie_total_mpps = 0.0;
  // Fault-injection outcome over the whole run (0 when faults are off).
  uint64_t retransmits = 0;
  uint64_t op_failures = 0;
  uint64_t frames_dropped = 0;
};

// Inbound client -> responder experiment (paths RNIC①, SNIC①, SNIC②).
Measurement MeasureInboundPath(ServerKind kind, Verb verb, uint32_t payload,
                               const HarnessConfig& config = HarnessConfig());

// Clients split across both BlueField endpoints (SNIC ①+②).
Measurement MeasureConcurrentInbound(Verb verb, uint32_t payload,
                                     const HarnessConfig& config = HarnessConfig());

// Path ③ (host <-> SoC). `s2h` selects the SoC as requester.
Measurement MeasureLocalPath(bool s2h, Verb verb, uint32_t payload,
                             const LocalRequesterParams& requester,
                             const HarnessConfig& config = HarnessConfig());

// SNIC ① + ③(H2S) interference experiment (paper §4): inter-machine clients
// saturate path ①, then the host CPU drives H2S traffic. Returns the
// path-① measurement (the victim).
Measurement MeasureInterference(Verb verb, uint32_t payload, bool enable_path3,
                                const HarnessConfig& config = HarnessConfig());

// Flow-combination experiment (paper Fig. 5): `verb_a` from half the
// clients, `verb_b` from the other half, both 4 KB-class payloads; returns
// total payload Gbps (both directions summed).
double MeasureFlowCombination(ServerKind kind, Verb verb_a, Verb verb_b, uint32_t payload,
                              const HarnessConfig& config = HarnessConfig());

// Fig. 5's path-③ bars: opposite-direction host<->SoC flows.
double MeasureLocalFlowCombination(bool opposite_directions, uint32_t payload,
                                   const HarnessConfig& config = HarnessConfig());

}  // namespace snicsim

#endif  // SRC_WORKLOAD_HARNESS_H_
