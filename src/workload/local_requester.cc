#include "src/workload/local_requester.h"

#include <utility>

#include "src/common/log.h"
#include "src/obs/trace.h"

namespace snicsim {

LocalRequester::LocalRequester(Simulator* sim, NicEngine* engine, NicEndpoint* src,
                               NicEndpoint* dst, const LocalRequesterParams& params,
                               const std::string& name)
    : sim_(sim),
      engine_(engine),
      src_(src),
      dst_(dst),
      params_(params),
      name_(name),
      // Doorbell flight time: the MMIO store travels the reverse of the
      // NIC->requester-memory route.
      mmio_flight_(src->to_mem().BaseLatency()) {
  for (int t = 0; t < params_.threads; ++t) {
    thread_cpu_.push_back(
        std::make_unique<BusyServer>(sim, name + ".cpu" + std::to_string(t)));
  }
}

void LocalRequester::Start(Verb verb, uint32_t payload, AddressGenerator addr,
                           Meter* meter) {
  for (int t = 0; t < params_.threads; ++t) {
    auto loop = std::make_shared<Loop>();
    loop->verb = verb;
    loop->payload = payload;
    loop->addr = addr.WithSeed(0xabcd'ef01'2345ULL * static_cast<uint64_t>(t + 1) + 7);
    loop->meter = meter;
    loop->thread = t;
    loop->paced = params_.paced_gbps > 0.0;
    sim_->In(0, [this, loop] { Pump(loop); });
  }
}

void LocalRequester::Pump(const std::shared_ptr<Loop>& loop) {
  if (loop->paced) {
    // Open loop: one thread-share of the aggregate rate, issued on a timer.
    // The interval is recomputed every tick, so SetPacedRate takes effect
    // within one period (the governor's control knob). The requester owns
    // the tick closure; capturing the shared_ptr instead would make the
    // function own itself and leak the cycle.
    std::function<void()>* tick =
        pacers_.emplace_back(std::make_unique<std::function<void()>>()).get();
    *tick = [this, loop, tick] {
      const double rate = params_.paced_gbps;
      if (rate <= 0.0) {
        sim_->In(FromMicros(5), *tick);  // paused; poll for reactivation
        return;
      }
      const double per_thread = rate * 1e9 / 8.0 / params_.threads;
      const SimTime interval = static_cast<SimTime>(
          static_cast<double>(std::max<uint32_t>(loop->payload, 1)) / per_thread * 1e12);
      IssueSingle(loop);
      sim_->In(std::max<SimTime>(interval, FromNanos(20)), *tick);
    };
    sim_->In(FromNanos(100), *tick);
    return;
  }
  while (loop->in_flight < params_.window) {
    loop->in_flight += 1;
    if (params_.doorbell_batch) {
      IssueBatch(loop);
    } else {
      IssueSingle(loop);
    }
  }
}

void LocalRequester::IssueSingle(const std::shared_ptr<Loop>& loop) {
  ++issued_;
  ++doorbells_;
  const SimTime issue_start = sim_->now();
  BusyServer& cpu = *thread_cpu_[static_cast<size_t>(loop->thread)];
  Tracer* const tr = sim_->tracer();
  const uint64_t rid = tr != nullptr ? tr->NextRequestId() : 0;
  // BlueFlame-style post: the WQE is pushed inline through the (blocking)
  // MMIO write, so no WQE-fetch DMA is needed.
  const SimTime posted = cpu.Enqueue(params_.wr_build + params_.mmio_block);
  if (tr != nullptr) {
    tr->Span(cpu.name(), "post", issue_start, posted, rid);
    tr->Span(cpu.name(), "doorbell", posted, posted + mmio_flight_, rid);
  }
  sim_->At(posted + mmio_flight_, [this, loop, issue_start, rid] {
    engine_->ExecuteLocalOp(src_, dst_, loop->verb, loop->addr.Next(), loop->payload,
                            [this, loop, issue_start, rid](SimTime cqe_posted) {
                              if (Tracer* const t = sim_->tracer(); t != nullptr) {
                                t->Span(name_, "poll", cqe_posted,
                                        cqe_posted + params_.poll, rid);
                              }
                              sim_->At(cqe_posted + params_.poll, [this, loop, issue_start,
                                                                   rid] {
                                if (Tracer* const t = sim_->tracer(); t != nullptr) {
                                  t->Span(name_, VerbName(loop->verb), issue_start,
                                          sim_->now(), rid, TraceCat::kOp);
                                }
                                loop->meter->RecordOp(loop->payload,
                                                      sim_->now() - issue_start);
                                if (!loop->paced) {
                                  loop->in_flight -= 1;
                                  Pump(loop);
                                }
                              });
                            }, rid);
  });
}

void LocalRequester::IssueBatch(const std::shared_ptr<Loop>& loop) {
  const int batch = params_.batch;
  SNIC_CHECK_GT(batch, 0);
  issued_ += static_cast<uint64_t>(batch);
  ++doorbells_;
  const SimTime issue_start = sim_->now();
  BusyServer& cpu = *thread_cpu_[static_cast<size_t>(loop->thread)];
  // Build the whole linked batch, then ring one doorbell.
  const SimTime posted =
      cpu.Enqueue(params_.wr_build * batch + params_.mmio_block);
  if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
    tr->Span(cpu.name(), "post_batch", issue_start, posted, 0);
    tr->Span(cpu.name(), "doorbell", posted, posted + mmio_flight_, 0);
  }
  sim_->At(posted + mmio_flight_, [this, loop, batch, issue_start] {
    // The NIC fetches the WQE chain from the requester's memory before
    // executing — the CPU-bypass step of doorbell batching.
    engine_->FetchWqes(src_, /*addr=*/0x7f80'0000, batch, [this, loop, batch,
                                                           issue_start](SimTime) {
      auto remaining = std::make_shared<int>(batch);
      Tracer* const tr = sim_->tracer();
      for (int i = 0; i < batch; ++i) {
        const uint64_t rid = tr != nullptr ? tr->NextRequestId() : 0;
        engine_->ExecuteLocalOp(
            src_, dst_, loop->verb, loop->addr.Next(), loop->payload,
            [this, loop, remaining, issue_start, rid](SimTime cqe_posted) {
              if (Tracer* const t = sim_->tracer(); t != nullptr) {
                t->Span(name_, VerbName(loop->verb), issue_start, sim_->now(), rid,
                        TraceCat::kOp);
              }
              loop->meter->RecordOp(loop->payload, sim_->now() - issue_start);
              *remaining -= 1;
              if (*remaining == 0) {
                sim_->At(cqe_posted + params_.poll, [this, loop] {
                  loop->in_flight -= 1;
                  Pump(loop);
                });
              }
            }, rid);
      }
    });
  });
}

void LocalRequester::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register(name_, "issued", "count", "operations posted by this requester",
                [this] { return static_cast<double>(issued_); });
  reg->Register(name_, "doorbells", "count",
                "MMIO doorbell rings (one per batch when batching)",
                [this] { return static_cast<double>(doorbells_); });
}

}  // namespace snicsim
