// Compact replayable traces of non-stationary production load.
//
// Every workload the simulator served before this layer was a stationary
// Zipf×size mixture; real DPU deployments are provisioned against diurnal
// curves, flash crowds, rotating working sets, scan bursts, and
// compaction-style background traffic. A TracePlan describes all of those
// as a versioned header plus piecewise-constant segments over a finite
// duration; a TraceDriver answers point-in-time lookups for the arrival
// machinery. The format is deliberately *generated* (a dozen segments, not
// a packet capture): runs stay deterministic, diffable, and cheap to sweep.
//
// Segment fields, all piecewise-constant over [start_i, start_{i+1}):
//   rate   offered-load multiplier on the open-loop arrival rate. The
//          fleets issue candidates at the trace's *peak* rate and thin each
//          candidate to the instantaneous rate, so the draw-count per
//          client depends only on (seed, peak, time) — never on which
//          segment accepted it (DESIGN.md §15 determinism note).
//   churn  hot-key rotation: every drawn Zipf rank is shifted by `churn`
//          (mod keyspace), re-seating the working set so previously
//          SoC-resident ranks miss. Zero draws consumed.
//   scan   fraction of issues forced to the largest size class (scan /
//          write-burst phases). Consumes one counted draw per issue iff
//          *any* segment has scan > 0, so the stream layout is a function
//          of the plan, not of time.
//   bg     background-traffic multiplier applied to the open-loop tenant
//          pipelines (compaction-style work competing for the SoC pool and
//          path ③). Scales the deterministic inter-arrival spacing; no
//          draws.
//
// Grammar, mirroring --faults / --tenants (inline + @file.json via the
// shared JsonScanner; unknown keys fail loudly; Serialize() is a parse
// fixed point):
//
//   inline:  version=1,duration=1200,
//            seg=START_US:RATE[:CHURN[:SCAN[:BG]]],...
//   file:    --trace=@trace.json with
//            {"version":1,"duration_us":1200,
//             "segments":[{"start_us":0,"rate":0.3,"churn":0,
//                          "scan":0,"bg":3}]}
//
// An empty plan (empty() == true) attaches no driver at all, so a
// trace-free run is byte-identical to a pre-trace build — and a *flat*
// plan (rate==1, churn==0, scan==0, bg==1 everywhere) consumes zero extra
// draws by construction, which is what lets the autoscaler golden test pin
// flat-trace runs against the pre-trace golden byte-for-byte.
#ifndef SRC_WORKLOAD_TRACE_TRACE_H_
#define SRC_WORKLOAD_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/units.h"

namespace snicsim {
namespace trace {

struct TraceSegment {
  double start_us = 0.0;  // segment start, relative to the trace origin
  double rate = 1.0;      // offered-load multiplier (>= 0)
  uint64_t churn = 0;     // Zipf rank rotation (mod keyspace)
  double scan = 0.0;      // fraction of issues forced to the top class [0,1]
  double bg = 1.0;        // background-pipeline rate multiplier (>= 0)

  friend bool operator==(const TraceSegment& a, const TraceSegment& b) {
    return a.start_us == b.start_us && a.rate == b.rate && a.churn == b.churn &&
           a.scan == b.scan && a.bg == b.bg;
  }
};

struct TracePlan {
  int version = 1;
  double duration_us = 0.0;  // segments tile [0, duration_us)
  std::vector<TraceSegment> segments;

  // An empty plan creates no driver: byte-identical to a pre-trace build.
  bool empty() const { return segments.empty(); }

  // Canonical inline form (always all five segment fields):
  // Parse(Serialize(p)) == p, pinned by the grammar round-trip test.
  std::string Serialize() const;

  // Structural checks both grammar forms share: version 1, first segment at
  // 0, strictly increasing starts, last start < duration, fields in range.
  bool Validate(std::string* error) const;

  friend bool operator==(const TracePlan& a, const TracePlan& b) {
    return a.version == b.version && a.duration_us == b.duration_us &&
           a.segments == b.segments;
  }
};

// Parses the inline or @file form into `out` (reset first). Returns false
// with a human-readable `error` on malformed or unknown input — a typo'd
// trace must not silently replay as stationary load.
bool ParseTracePlan(const std::string& spec, TracePlan* out,
                    std::string* error);

// Registers --trace and parses it; exits(2) on malformed input, like
// fault::FaultsFlag and offload::TenantsFlag.
TracePlan TraceFlag(Flags& flags);

// Point-in-time lookup over a validated, non-empty plan. All queries are
// pure functions of t (times at or past the end clamp to the last segment,
// which only matters during the post-StopIssuing drain).
class TraceDriver {
 public:
  explicit TraceDriver(const TracePlan& plan);

  TraceDriver(const TraceDriver&) = delete;
  TraceDriver& operator=(const TraceDriver&) = delete;

  int SegmentAt(SimTime t) const;
  double RateAt(SimTime t) const { return segs_[Index(t)].rate; }
  uint64_t ChurnAt(SimTime t) const { return segs_[Index(t)].churn; }
  double ScanAt(SimTime t) const { return segs_[Index(t)].scan; }
  double BgAt(SimTime t) const { return segs_[Index(t)].bg; }
  // First segment boundary strictly after t (duration() once t is in the
  // last segment) — how a paused background stream knows when to re-arm.
  SimTime NextChangeAt(SimTime t) const;

  SimTime duration() const { return duration_; }
  int segment_count() const { return static_cast<int>(segs_.size()); }
  SimTime segment_start(int i) const { return starts_[static_cast<size_t>(i)]; }
  const TraceSegment& segment(int i) const { return segs_[static_cast<size_t>(i)]; }

  // Max rate over all segments: the candidate-generation rate the thinning
  // fleets run at.
  double peak_rate() const { return peak_rate_; }
  // Whether any segment forces scans: gates the per-issue scan draw so the
  // draw-stream layout is a function of the plan alone.
  bool has_scan() const { return has_scan_; }
  // Whether every segment is the identity modulation (rate 1, churn 0,
  // scan 0, bg 1): such a plan replays byte-identically to no plan at all.
  bool flat() const { return flat_; }

 private:
  size_t Index(SimTime t) const;

  std::vector<SimTime> starts_;
  std::vector<TraceSegment> segs_;
  SimTime duration_ = 0;
  double peak_rate_ = 1.0;
  bool has_scan_ = false;
  bool flat_ = true;
};

}  // namespace trace
}  // namespace snicsim

#endif  // SRC_WORKLOAD_TRACE_TRACE_H_
