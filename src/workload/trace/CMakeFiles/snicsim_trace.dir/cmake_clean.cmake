file(REMOVE_RECURSE
  "CMakeFiles/snicsim_trace.dir/trace.cc.o"
  "CMakeFiles/snicsim_trace.dir/trace.cc.o.d"
  "libsnicsim_trace.a"
  "libsnicsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
