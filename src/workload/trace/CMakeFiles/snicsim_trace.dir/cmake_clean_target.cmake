file(REMOVE_RECURSE
  "libsnicsim_trace.a"
)
