# Empty dependencies file for snicsim_trace.
# This may be replaced when dependencies are built.
