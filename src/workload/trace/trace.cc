#include "src/workload/trace/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/json_scan.h"
#include "src/common/log.h"

namespace snicsim {
namespace trace {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string> SplitEntries(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInlineSegment(const std::string& value, TraceSegment* seg,
                        std::string* error) {
  const auto f = SplitFields(value, ':');
  if (f.size() < 2 || f.size() > 5) {
    *error = "seg wants START_US:RATE[:CHURN[:SCAN[:BG]]], got '" + value + "'";
    return false;
  }
  double start = 0.0;
  double rate = 0.0;
  if (!ParseNumber(f[0], &start) || !ParseNumber(f[1], &rate)) {
    *error = "bad seg numbers in '" + value + "'";
    return false;
  }
  seg->start_us = start;
  seg->rate = rate;
  if (f.size() >= 3) {
    double churn = 0.0;
    if (!ParseNumber(f[2], &churn) || churn < 0.0) {
      *error = "bad seg churn '" + f[2] + "'";
      return false;
    }
    seg->churn = static_cast<uint64_t>(churn);
  }
  if (f.size() >= 4 && !ParseNumber(f[3], &seg->scan)) {
    *error = "bad seg scan '" + f[3] + "'";
    return false;
  }
  if (f.size() == 5 && !ParseNumber(f[4], &seg->bg)) {
    *error = "bad seg bg '" + f[4] + "'";
    return false;
  }
  return true;
}

// @file.json form, via the shared scanner (src/common/json_scan.h).
bool ParseJsonTrace(const std::string& text, TracePlan* out,
                    std::string* error) {
  JsonScanner s(text, error);
  if (!s.Expect('{')) {
    return false;
  }
  bool more = !s.Peek('}');
  if (!more) {
    ++s.pos;
  }
  while (more) {
    std::string key;
    if (!s.ReadString(&key) || !s.Expect(':')) {
      return false;
    }
    if (key == "version") {
      double v = 0.0;
      if (!s.ReadNumber(&v)) {
        return false;
      }
      out->version = static_cast<int>(v);
    } else if (key == "duration_us") {
      if (!s.ReadNumber(&out->duration_us)) {
        return false;
      }
    } else if (key == "segments") {
      const bool ok = s.ReadArray([&] {
        TraceSegment seg;
        if (!s.ReadFlatObject([&](const std::string& k, const std::string&,
                                  double nv, bool is_string) {
              if (is_string) {
                return s.Fail("segment field '" + k + "' must be a number");
              }
              if (k == "start_us") {
                seg.start_us = nv;
                return true;
              }
              if (k == "rate") {
                seg.rate = nv;
                return true;
              }
              if (k == "churn") {
                if (nv < 0.0) {
                  return s.Fail("bad segment churn");
                }
                seg.churn = static_cast<uint64_t>(nv);
                return true;
              }
              if (k == "scan") {
                seg.scan = nv;
                return true;
              }
              if (k == "bg") {
                seg.bg = nv;
                return true;
              }
              return s.Fail("unknown segment field '" + k + "'");
            })) {
          return false;
        }
        out->segments.push_back(seg);
        return true;
      });
      if (!ok) {
        return false;
      }
    } else {
      return s.Fail("unknown trace key '" + key + "'");
    }
    if (s.Peek(',')) {
      ++s.pos;
      continue;
    }
    if (!s.Expect('}')) {
      return false;
    }
    more = false;
  }
  s.SkipWs();
  if (s.pos != text.size()) {
    return s.Fail("trailing characters after trace object");
  }
  return true;
}

}  // namespace

bool TracePlan::Validate(std::string* error) const {
  if (empty()) {
    return true;
  }
  if (version != 1) {
    *error = "unsupported trace version " + std::to_string(version) +
             " (want 1)";
    return false;
  }
  if (duration_us <= 0.0) {
    *error = "trace duration must be > 0";
    return false;
  }
  if (segments.front().start_us != 0.0) {
    *error = "first segment must start at 0 (got " +
             FmtDouble(segments.front().start_us) + ")";
    return false;
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const TraceSegment& seg = segments[i];
    if (i > 0 && seg.start_us <= segments[i - 1].start_us) {
      // Catches both overlapping segments and non-monotone timestamps.
      *error = "segment starts must be strictly increasing (" +
               FmtDouble(segments[i - 1].start_us) + " then " +
               FmtDouble(seg.start_us) + ")";
      return false;
    }
    if (seg.rate < 0.0) {
      *error = "segment rate must be >= 0";
      return false;
    }
    if (seg.scan < 0.0 || seg.scan > 1.0) {
      *error = "segment scan not in [0, 1]";
      return false;
    }
    if (seg.bg < 0.0) {
      *error = "segment bg must be >= 0";
      return false;
    }
  }
  if (segments.back().start_us >= duration_us) {
    *error = "last segment starts at or past the trace duration";
    return false;
  }
  return true;
}

std::string TracePlan::Serialize() const {
  if (empty()) {
    return "";
  }
  std::string out = "version=" + std::to_string(version);
  out += ",duration=" + FmtDouble(duration_us);
  for (const TraceSegment& seg : segments) {
    out += ",seg=" + FmtDouble(seg.start_us) + ":" + FmtDouble(seg.rate) +
           ":" + std::to_string(seg.churn) + ":" + FmtDouble(seg.scan) + ":" +
           FmtDouble(seg.bg);
  }
  return out;
}

bool ParseTracePlan(const std::string& spec, TracePlan* out,
                    std::string* error) {
  *out = TracePlan();
  error->clear();
  if (spec.empty()) {
    return true;
  }
  if (spec[0] == '@') {
    const std::string path = spec.substr(1);
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      *error = "cannot read trace file '" + path + "'";
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return ParseJsonTrace(buf.str(), out, error) && out->Validate(error);
  }
  for (const std::string& entry : SplitEntries(spec)) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      *error = "trace entry '" + entry + "' is not key=value";
      return false;
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "version") {
      double v = 0.0;
      if (!ParseNumber(value, &v)) {
        *error = "bad trace version '" + value + "'";
        return false;
      }
      out->version = static_cast<int>(v);
    } else if (key == "duration") {
      if (!ParseNumber(value, &out->duration_us)) {
        *error = "bad trace duration '" + value + "'";
        return false;
      }
    } else if (key == "seg") {
      TraceSegment seg;
      if (!ParseInlineSegment(value, &seg, error)) {
        return false;
      }
      out->segments.push_back(seg);
    } else {
      *error = "unknown trace key '" + key + "'";
      return false;
    }
  }
  return out->Validate(error);
}

TracePlan TraceFlag(Flags& flags) {
  const std::string spec = flags.GetString(
      "trace", "",
      "non-stationary load trace: version=1,duration=US,"
      "seg=START_US:RATE[:CHURN[:SCAN[:BG]]],... or @file.json");
  TracePlan plan;
  std::string error;
  if (!ParseTracePlan(spec, &plan, &error)) {
    std::fprintf(stderr, "--trace: %s\n", error.c_str());
    std::exit(2);
  }
  return plan;
}

TraceDriver::TraceDriver(const TracePlan& plan) {
  std::string error;
  SNIC_CHECK(!plan.empty());
  SNIC_CHECK(plan.Validate(&error));
  duration_ = FromMicros(plan.duration_us);
  peak_rate_ = 0.0;
  for (const TraceSegment& seg : plan.segments) {
    starts_.push_back(FromMicros(seg.start_us));
    segs_.push_back(seg);
    peak_rate_ = std::max(peak_rate_, seg.rate);
    has_scan_ = has_scan_ || seg.scan > 0.0;
    flat_ = flat_ && seg.rate == 1.0 && seg.churn == 0 && seg.scan == 0.0 &&
            seg.bg == 1.0;
  }
  // A plan whose every rate is 0 offers no load; the thinning fleets divide
  // by the peak, so degrade it to 1 (every candidate is then rejected).
  if (peak_rate_ <= 0.0) {
    peak_rate_ = 1.0;
  }
}

size_t TraceDriver::Index(SimTime t) const {
  // First segment whose start is > t, minus one; t before 0 cannot happen
  // (SimTime is non-negative) and t past the end clamps to the last segment.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

int TraceDriver::SegmentAt(SimTime t) const {
  return static_cast<int>(Index(t));
}

SimTime TraceDriver::NextChangeAt(SimTime t) const {
  const size_t i = Index(t);
  return i + 1 < starts_.size() ? starts_[i + 1] : duration_;
}

}  // namespace trace
}  // namespace snicsim
