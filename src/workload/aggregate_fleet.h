// Aggregate closed-loop arrival processes: 1M+ simulated users in O(in-flight)
// memory.
//
// A ClientFleet (src/workload/fleet.h) keeps one Logical record per client —
// fine for thousands, fatal for the rack-scale target of ROADMAP item 1
// (millions of users per rack). The key observation: a closed-loop
// population of U users with exponential think time Z is a Markov process
// whose *only* state is the in-flight count. The superposition of the idle
// users' think-completion processes is Poisson with instantaneous rate
// idle/Z, so it can be sampled exactly by thinning: draw candidate gaps at
// the constant max rate U/Z and accept each candidate with probability
// idle/U. Nothing per-user is ever stored — memory is O(size classes) plus
// whatever the caller keeps per in-flight request.
//
// The same draws, materialized: with `materialize = true` the fleet also
// keeps a per-user busy flag and assigns each accepted arrival to the
// lowest-cost idle user from a free stack — consuming *no extra draws*, so
// a materialized run issues byte-identical arrivals to the aggregate run
// with the same seed. Users are exchangeable (identical think law), so the
// free-stack assignment is distribution-preserving; the property suite
// (tests/topo/rack_kv_test.cc) pins aggregate == materialized per-class
// completion counts, and the O(users) mode exists only as that test's
// reference.
//
// Determinism contract (DESIGN.md §12): each (fleet, class) owns a private
// seeded Rng stream; gap, thinning, and every caller-side payload draw
// (Draw()) come from that stream in the class's own event order. Streams
// never depend on cross-class or cross-domain interleaving, and every draw
// is counted (draws()).
#ifndef SRC_WORKLOAD_AGGREGATE_FLEET_H_
#define SRC_WORKLOAD_AGGREGATE_FLEET_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"
#include "src/workload/trace/trace.h"

namespace snicsim {

struct AggregateFleetParams {
  // Closed-loop population per value-size class (already partitioned by the
  // caller — see Partition).
  std::vector<uint64_t> users_per_class;
  // Mean exponential think time between a user's completion and its next
  // request.
  double think_mean_us = 1000.0;
  uint64_t seed = 42;
  // Keep the O(users) busy-array reference implementation in the loop
  // (identical draws, identical arrivals — test-only).
  bool materialize = false;
};

class AggregateFleet {
 public:
  // `user` is the assigned user index in materialized mode; in aggregate
  // mode users are anonymous and it is the running per-class arrival count.
  using IssueFn = std::function<void(int cls, uint64_t user)>;

  AggregateFleet(Simulator* sim, AggregateFleetParams params);

  AggregateFleet(const AggregateFleet&) = delete;
  AggregateFleet& operator=(const AggregateFleet&) = delete;

  // Attaches a non-stationary load trace *before* Start. Candidate gaps
  // run at the trace's peak rate and the (always-consumed) thinning draw
  // folds the instantaneous rate into the acceptance test, so the
  // per-class draw-stream layout is unchanged for any trace and a flat
  // trace replays byte-identically to a trace-free fleet.
  void SetTrace(const trace::TraceDriver* trace) { trace_ = trace; }

  // Starts every class's candidate chain at t = 0 (all users thinking).
  void Start(IssueFn issue);
  // Ends the candidate chains; in-flight requests still complete.
  void Stop() { stopped_ = true; }

  // The caller reports each generated request's terminal completion exactly
  // once; the user returns to thinking.
  void OnComplete(int cls, uint64_t user);

  // One counted uniform in [0, 1) from the class stream — the caller draws
  // request payload randomness (rank, op kind) here so aggregate and
  // materialized runs consume identical streams.
  double Draw(int cls);

  uint64_t users() const { return users_total_; }
  int classes() const { return static_cast<int>(cls_.size()); }
  uint64_t generated() const { return generated_; }
  uint64_t generated(int cls) const { return cls_[static_cast<size_t>(cls)].generated; }
  uint64_t inflight(int cls) const { return cls_[static_cast<size_t>(cls)].inflight; }
  uint64_t inflight_total() const;
  // High-water mark of concurrent in-flight requests — the instrumented
  // counter behind the O(in-flight) memory claim.
  uint64_t peak_inflight() const { return peak_inflight_; }
  uint64_t draws() const { return draws_; }
  bool materialized() const { return params_.materialize; }

  // Bytes of resident client state this fleet holds: O(classes) in
  // aggregate mode, O(users) when materialized. The rack bench asserts the
  // aggregate number is independent of the user count.
  size_t resident_state_bytes() const;

  // Largest-remainder apportionment of `total` across `weights` (sums to
  // `total` exactly; deterministic ties by lowest index). Used to split a
  // rack's user population across servers and classes.
  static std::vector<uint64_t> Partition(uint64_t total,
                                         const std::vector<double>& weights);

 private:
  struct ClassState {
    uint64_t users = 0;
    Rng rng{0};
    uint64_t inflight = 0;
    uint64_t generated = 0;
    // Materialized reference mode only.
    std::vector<uint8_t> busy;
    std::vector<uint32_t> free_stack;
  };

  void Candidate(int cls);
  void ScheduleNext(int cls);

  Simulator* sim_;
  AggregateFleetParams params_;
  std::vector<ClassState> cls_;
  IssueFn issue_;
  const trace::TraceDriver* trace_ = nullptr;
  bool stopped_ = false;
  uint64_t users_total_ = 0;
  uint64_t generated_ = 0;
  uint64_t draws_ = 0;
  uint64_t peak_inflight_ = 0;
};

}  // namespace snicsim

#endif  // SRC_WORKLOAD_AGGREGATE_FLEET_H_
