// Epoch-driven SoC resource autoscaling and SLO accounting for
// trace-driven (non-stationary) serving runs.
//
// The serving plane and the tenant offload plane compete for one scarce
// SoC core budget: the ServingExecutor's SoC pool answers path-② GETs
// while the tenant arbiter pool runs compaction-style background
// pipelines. A static split of that budget loses somewhere on a diurnal
// trace — the day's flash crowd wants serving cores the night's
// compaction holds, and vice versa. The EpochAutoscaler closes the loop:
// each governor epoch it samples both pools' busy-time deltas (the same
// per-epoch signal discipline the governor's own utilization sampler
// uses), and when one side runs hot while the other idles it moves one
// core across the split, retunes the admission-bucket rate and hedging
// byte budget to track the serving pool, and swaps the tenant WRR weight
// set. A hold-down counter enforces hysteresis so a constant-load trace
// produces no flapping (pinned by tests/governor/autoscaler_test.cc).
//
// The SloMonitor rides the same epoch clock and is deliberately separate:
// *every* arm of a static-vs-autoscaled comparison needs identical
// violation accounting, so the monitor attaches whenever a trace is
// attached while the autoscaler attaches only when scaling is enabled.
// An epoch is in violation when the fleet's bad-outcome fraction (late +
// deadline-failed + shed over all settled work) or any tenant's SLO-miss
// fraction exceeds the budget; violation time is attributed to the trace
// segment the epoch started in, giving the per-phase SLO-violation-
// minutes surface bench/sec_trace --check compares.
//
// Determinism: neither class draws randomness. Decisions are pure
// functions of epoch-sampled counters, so trace runs replay byte-
// identically across --jobs and --sim-threads, and a disabled ScaleConfig
// (enabled == false) creates no autoscaler at all.
#ifndef SRC_GOVERNOR_AUTOSCALER_H_
#define SRC_GOVERNOR_AUTOSCALER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/workload/trace/trace.h"

namespace snicsim {
namespace governor {

struct ScaleConfig {
  bool enabled = false;
  // Tolerated bad-outcome fraction per epoch for the SloMonitor. Read even
  // when `enabled` is false: the static arms of a comparison must account
  // violations with exactly the same budget the autoscaled arm uses.
  double slo_budget = 0.01;
  // Pool-size floors: a move never leaves either side below its minimum.
  int min_serving_cores = 1;
  int min_pool_cores = 1;
  // Dead band: a core moves only when one side's epoch utilization is
  // above `util_high` while the other's is below `util_low`.
  double util_high = 0.85;
  double util_low = 0.55;
  // Hysteresis: epochs to hold after an action before acting again.
  int hold_epochs = 3;
  // Admission-bucket rate per serving core (Mops); 0 leaves the bucket
  // alone. On every move the bucket is set to serving_cores * this, so
  // shed capacity tracks the cores it protects.
  double bucket_mops_per_core = 0.0;
  // Hedge byte budget per serving core; 0 leaves hedging alone.
  uint32_t hedge_bytes_per_core = 0;
  // Tenant WRR weight sets (tenant index in config order) applied when the
  // split tilts toward serving (scarce: background tenants yield) and when
  // it tilts back (ample). Empty = no weight retuning.
  std::vector<int> weights_scarce;
  std::vector<int> weights_ample;

  bool empty() const { return !enabled; }
};

// Per-trace-segment slice of the SLO ledger. `generated`/`shed` are the
// client fleet's per-phase request ledger (overlaid by RunServing, not the
// monitor): summed over phases they reproduce the run totals exactly, and
// the trace property tests pin that partition under time-shifted traces.
struct PhaseResult {
  uint64_t epochs = 0;
  uint64_t violation_epochs = 0;
  double violation_us = 0.0;
  uint64_t generated = 0;
  uint64_t shed = 0;
};

// Everything a trace-driven run adds on top of ServingResult. Carried
// outside ServingResult::Fingerprint() — which committed goldens pin — and
// digested separately, exactly like the tenant sub-result.
struct TraceRunResult {
  uint64_t epochs = 0;
  uint64_t violation_epochs = 0;
  double violation_us = 0.0;  // epochs in violation * epoch length
  uint64_t actions_up = 0;    // cores moved tenant pool -> serving
  uint64_t actions_down = 0;  // cores moved serving -> tenant pool
  uint64_t weight_updates = 0;
  int final_serving_cores = 0;
  std::vector<PhaseResult> phases;  // indexed by trace segment

  std::string Fingerprint() const;
};

// Epoch SLO accounting over a trace. All counter feeds are cumulative;
// the monitor differences them itself.
class SloMonitor {
 public:
  struct Signals {
    // Fleet deadline ledger (good + late == completed).
    std::function<uint64_t()> good;
    std::function<uint64_t()> late;
    std::function<uint64_t()> deadline_failed;
    std::function<uint64_t()> shed;
    // Tenant SLO ledger; null when no tenant plane exists.
    std::function<uint64_t()> tenant_checked;
    std::function<uint64_t()> tenant_violations;
  };

  // `slo_budget` is the tolerated bad-outcome fraction per epoch.
  SloMonitor(const trace::TraceDriver* driver, Signals signals,
             double slo_budget, SimTime epoch);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // Called once per governor epoch tick at time `now`.
  void OnEpoch(SimTime now);

  uint64_t epochs() const { return r_.epochs; }
  uint64_t violation_epochs() const { return r_.violation_epochs; }
  // Snapshot of the SLO ledger (scaling-action fields left zero; the
  // harness overlays the autoscaler's counters).
  const TraceRunResult& result() const { return r_; }

 private:
  const trace::TraceDriver* driver_;
  Signals sig_;
  double slo_budget_;
  SimTime epoch_;
  uint64_t prev_good_ = 0;
  uint64_t prev_late_ = 0;
  uint64_t prev_dl_failed_ = 0;
  uint64_t prev_shed_ = 0;
  uint64_t prev_tchecked_ = 0;
  uint64_t prev_tviol_ = 0;
  TraceRunResult r_;
};

// Moves cores across the serving-SoC / tenant-pool split once per epoch.
class EpochAutoscaler {
 public:
  struct Actuators {
    // Serving SoC pool (kv::ServingExecutor::soc_cpu()).
    std::function<int()> serving_cores;
    std::function<void(int)> set_serving_cores;
    std::function<SimTime()> serving_busy;  // cumulative busy time
    // Tenant arbiter pool (offload::TenantManager pool 0).
    std::function<int()> pool_cores;
    std::function<void(int)> set_pool_cores;
    std::function<SimTime()> pool_busy;  // cumulative granted service
    // Optional budget actuators; null = not retuned.
    std::function<void(double)> set_bucket_mops;
    std::function<void(uint32_t)> set_hedge_max_bytes;
    std::function<void(int, int)> set_tenant_weight;
  };

  EpochAutoscaler(const ScaleConfig& cfg, Actuators act, SimTime epoch);

  EpochAutoscaler(const EpochAutoscaler&) = delete;
  EpochAutoscaler& operator=(const EpochAutoscaler&) = delete;

  // Called once per governor epoch tick at time `now`.
  void OnEpoch(SimTime now);

  uint64_t actions_up() const { return actions_up_; }
  uint64_t actions_down() const { return actions_down_; }
  uint64_t weight_updates() const { return weight_updates_; }

 private:
  void ApplyBudgets(int serving_cores, bool scarce);

  ScaleConfig cfg_;
  Actuators act_;
  SimTime epoch_;
  SimTime prev_serving_busy_ = 0;
  SimTime prev_pool_busy_ = 0;
  int hold_ = 0;
  uint64_t actions_up_ = 0;
  uint64_t actions_down_ = 0;
  uint64_t weight_updates_ = 0;
};

}  // namespace governor
}  // namespace snicsim

#endif  // SRC_GOVERNOR_AUTOSCALER_H_
