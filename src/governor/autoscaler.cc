#include "src/governor/autoscaler.h"

#include <algorithm>
#include <cstdio>

#include "src/common/log.h"

namespace snicsim {
namespace governor {

namespace {

void AppendU(std::string* s, uint64_t v) {
  s->append(std::to_string(v));
  s->push_back('|');
}

void AppendD(std::string* s, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s->append(buf);
  s->push_back('|');
}

}  // namespace

std::string TraceRunResult::Fingerprint() const {
  std::string s;
  AppendU(&s, epochs);
  AppendU(&s, violation_epochs);
  AppendD(&s, violation_us);
  AppendU(&s, actions_up);
  AppendU(&s, actions_down);
  AppendU(&s, weight_updates);
  AppendU(&s, static_cast<uint64_t>(final_serving_cores));
  for (const PhaseResult& p : phases) {
    AppendU(&s, p.epochs);
    AppendU(&s, p.violation_epochs);
    AppendD(&s, p.violation_us);
    AppendU(&s, p.generated);
    AppendU(&s, p.shed);
  }
  return s;
}

SloMonitor::SloMonitor(const trace::TraceDriver* driver, Signals signals,
                       double slo_budget, SimTime epoch)
    : driver_(driver),
      sig_(std::move(signals)),
      slo_budget_(slo_budget),
      epoch_(epoch) {
  SNIC_CHECK(driver_ != nullptr);
  SNIC_CHECK(sig_.good != nullptr);
  SNIC_CHECK(sig_.late != nullptr);
  SNIC_CHECK(sig_.deadline_failed != nullptr);
  SNIC_CHECK(sig_.shed != nullptr);
  SNIC_CHECK_GT(epoch_, 0);
  r_.phases.assign(static_cast<size_t>(driver_->segment_count()),
                   PhaseResult());
}

void SloMonitor::OnEpoch(SimTime now) {
  const uint64_t good = sig_.good();
  const uint64_t late = sig_.late();
  const uint64_t dlf = sig_.deadline_failed();
  const uint64_t shed = sig_.shed();
  const uint64_t d_good = good - prev_good_;
  const uint64_t d_bad =
      (late - prev_late_) + (dlf - prev_dl_failed_) + (shed - prev_shed_);
  prev_good_ = good;
  prev_late_ = late;
  prev_dl_failed_ = dlf;
  prev_shed_ = shed;

  bool violated = false;
  const uint64_t settled = d_good + d_bad;
  if (settled > 0 && static_cast<double>(d_bad) >
                         slo_budget_ * static_cast<double>(settled)) {
    violated = true;
  }
  if (sig_.tenant_checked && sig_.tenant_violations) {
    const uint64_t tc = sig_.tenant_checked();
    const uint64_t tv = sig_.tenant_violations();
    const uint64_t d_tc = tc - prev_tchecked_;
    const uint64_t d_tv = tv - prev_tviol_;
    prev_tchecked_ = tc;
    prev_tviol_ = tv;
    if (d_tc > 0 &&
        static_cast<double>(d_tv) > slo_budget_ * static_cast<double>(d_tc)) {
      violated = true;
    }
  }

  // The epoch covers [now - epoch, now); attribute it to the segment it
  // started in (epochs past the trace end clamp to the last segment).
  const SimTime start = now >= epoch_ ? now - epoch_ : 0;
  PhaseResult& phase =
      r_.phases[static_cast<size_t>(driver_->SegmentAt(start))];
  ++r_.epochs;
  ++phase.epochs;
  if (violated) {
    ++r_.violation_epochs;
    ++phase.violation_epochs;
    r_.violation_us += ToMicros(epoch_);
    phase.violation_us += ToMicros(epoch_);
  }
}

EpochAutoscaler::EpochAutoscaler(const ScaleConfig& cfg, Actuators act,
                                 SimTime epoch)
    : cfg_(cfg), act_(std::move(act)), epoch_(epoch) {
  SNIC_CHECK(cfg_.enabled);
  SNIC_CHECK(act_.serving_cores != nullptr);
  SNIC_CHECK(act_.set_serving_cores != nullptr);
  SNIC_CHECK(act_.serving_busy != nullptr);
  SNIC_CHECK(act_.pool_cores != nullptr);
  SNIC_CHECK(act_.set_pool_cores != nullptr);
  SNIC_CHECK(act_.pool_busy != nullptr);
  SNIC_CHECK_GT(epoch_, 0);
  SNIC_CHECK_GE(cfg_.min_serving_cores, 1);
  SNIC_CHECK_GE(cfg_.min_pool_cores, 1);
  SNIC_CHECK_GT(cfg_.util_high, cfg_.util_low);
}

void EpochAutoscaler::ApplyBudgets(int serving_cores, bool scarce) {
  if (act_.set_bucket_mops && cfg_.bucket_mops_per_core > 0.0) {
    act_.set_bucket_mops(cfg_.bucket_mops_per_core * serving_cores);
  }
  if (act_.set_hedge_max_bytes && cfg_.hedge_bytes_per_core > 0) {
    act_.set_hedge_max_bytes(cfg_.hedge_bytes_per_core *
                             static_cast<uint32_t>(serving_cores));
  }
  const std::vector<int>& weights =
      scarce ? cfg_.weights_scarce : cfg_.weights_ample;
  if (act_.set_tenant_weight) {
    for (size_t t = 0; t < weights.size(); ++t) {
      act_.set_tenant_weight(static_cast<int>(t), weights[t]);
      ++weight_updates_;
    }
  }
}

void EpochAutoscaler::OnEpoch(SimTime /*now*/) {
  // Utilizations are busy-time deltas over the epoch against the core
  // counts in effect while it ran (sampled before any action below).
  const int sc = act_.serving_cores();
  const int pc = act_.pool_cores();
  const SimTime sb = act_.serving_busy();
  const SimTime pb = act_.pool_busy();
  const double denom = static_cast<double>(epoch_);
  const double s_util =
      static_cast<double>(sb - prev_serving_busy_) / (denom * sc);
  const double p_util = static_cast<double>(pb - prev_pool_busy_) / (denom * pc);
  prev_serving_busy_ = sb;
  prev_pool_busy_ = pb;

  if (hold_ > 0) {
    --hold_;
    return;
  }
  if (s_util > cfg_.util_high && p_util < cfg_.util_low &&
      pc > cfg_.min_pool_cores) {
    // Serving is the bottleneck and background work idles: move one core
    // toward serving and make background pipelines yield their share.
    act_.set_pool_cores(pc - 1);
    act_.set_serving_cores(sc + 1);
    ApplyBudgets(sc + 1, /*scarce=*/true);
    ++actions_up_;
    hold_ = cfg_.hold_epochs;
    return;
  }
  if (p_util > cfg_.util_high && s_util < cfg_.util_low &&
      sc > cfg_.min_serving_cores) {
    act_.set_serving_cores(sc - 1);
    act_.set_pool_cores(pc + 1);
    ApplyBudgets(sc - 1, /*scarce=*/false);
    ++actions_down_;
    hold_ = cfg_.hold_epochs;
    return;
  }
}

}  // namespace governor
}  // namespace snicsim
