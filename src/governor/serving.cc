#include "src/governor/serving.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/sim/meter.h"
#include "src/sim/timer_wheel.h"
#include "src/topo/server.h"

namespace snicsim {
namespace governor {

namespace {

void AppendU(std::string* s, uint64_t v) {
  s->append(std::to_string(v));
  s->push_back('|');
}

void AppendD(std::string* s, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s->append(buf);
  s->push_back('|');
}

}  // namespace

std::string ServingResult::Fingerprint() const {
  std::string s = policy;
  s.push_back('|');
  AppendD(&s, mreqs);
  AppendD(&s, gbps);
  AppendD(&s, p50_us);
  AppendD(&s, p99_us);
  AppendU(&s, ops);
  AppendU(&s, generated);
  AppendU(&s, issued);
  AppendU(&s, completed);
  AppendU(&s, failed);
  for (uint64_t v : path_issued) AppendU(&s, v);
  for (uint64_t v : path_completed) AppendU(&s, v);
  for (uint64_t v : path_failed) AppendU(&s, v);
  AppendU(&s, soc_hits);
  AppendU(&s, soc_misses);
  AppendU(&s, path3_bytes);
  AppendU(&s, hol_gated);
  AppendU(&s, budget_spills);
  AppendU(&s, explored);
  AppendU(&s, draws);
  AppendD(&s, share_soc);
  for (double v : class_share_soc) AppendD(&s, v);
  AppendU(&s, retransmits);
  AppendU(&s, op_failures);
  AppendU(&s, frames_dropped);
  AppendU(&s, shed);
  AppendU(&s, cancelled);
  AppendU(&s, good);
  AppendU(&s, late);
  AppendU(&s, deadline_failed);
  for (uint64_t v : path_shed) AppendU(&s, v);
  for (uint64_t v : path_cancelled) AppendU(&s, v);
  AppendU(&s, shed_codel);
  AppendU(&s, shed_bucket);
  AppendU(&s, shed_deadline);
  AppendU(&s, hedges);
  AppendU(&s, hedge_wins);
  AppendU(&s, hedge_cancels);
  AppendU(&s, breaker_trips);
  AppendU(&s, breaker_reopens);
  AppendU(&s, breaker_probes);
  AppendU(&s, breaker_denied);
  AppendU(&s, resil_draws);
  AppendU(&s, crash_drops);
  AppendU(&s, rewarm_misses);
  AppendD(&s, soc_trip_us);
  AppendD(&s, soc_trip_gap_us);
  return s;
}

ServingResult RunServing(const ServingRunConfig& raw) {
  ServingRunConfig config = raw;
  config.layout.Validate();
  SNIC_CHECK_EQ(config.mix.weights.size(), config.layout.class_bytes.size());
  // Single-domain serving testbed: sim_threads is accepted for CLI
  // uniformity but must not perturb the run (DESIGN.md §12).
  SNIC_CHECK_GE(config.sim_threads, 1);
  config.fleet.machine = config.client;

  Simulator sim;
  Fabric fabric(&sim, config.testbed.network_link_propagation,
                config.testbed.network_switch_forward);
  BluefieldServer bf(&sim, &fabric, config.testbed);
  kv::ServingConfig serving =
      kv::ServingConfig::FromTestbed(config.testbed, config.layout);
  if (config.host_cores > 0) {
    serving.host_cores = config.host_cores;
  }
  if (config.soc_cores > 0) {
    serving.soc_cores = config.soc_cores;
  }
  kv::ServingExecutor exec(&sim, &bf, serving);

  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(config.faults);
    sim.set_faults(injector.get());
  }
  // The governor's epoch clock and the fleet's retry timers arm through the
  // wheel; firing order is heap-equivalent (src/sim/timer_wheel.h), and the
  // §12 determinism contract is unaffected because the wheel lives entirely
  // inside this domain.
  TimerWheel wheel(&sim);
  sim.set_timer_wheel(&wheel);
  std::unique_ptr<Tracer> tracer;
  if (!config.trace_path.empty()) {
    tracer = std::make_unique<Tracer>(config.trace_capacity);
    sim.set_tracer(tracer.get());
  }

  // The resilience layer only exists when asked for: an empty config keeps
  // the fleet's issue path, the governor's routing, and every metric dump
  // byte-identical to a resilience-free build.
  std::unique_ptr<resilience::ResilienceManager> resil;
  if (!config.resil.empty()) {
    resil = std::make_unique<resilience::ResilienceManager>(config.resil);
    exec.BindResilience(resil.get());
  }

  // Tenant control plane: only exists when tenants are declared, so a
  // tenant-free run stays byte-identical to a pre-tenancy build. kv-kind
  // tenants ride the executor's served stream through the observer tap.
  std::unique_ptr<offload::TenantManager> tenant_mgr;
  if (!config.tenants.empty()) {
    tenant_mgr = std::make_unique<offload::TenantManager>(
        &sim, &bf, injector.get(), config.tenants, serving.host_domain,
        serving.soc_domain);
    exec.SetServeObserver([tm = tenant_mgr.get()](int ep, uint32_t bytes) {
      tm->OnKvServed(ep, bytes);
    });
  }

  ClientFleet fleet(&sim, &fabric, config.fleet);
  const ZipfDist zipf(config.layout.keys, config.zipf_theta);

  // Trace layer: the driver only exists when a plan is declared, so a
  // trace-free run stays byte-identical to a pre-trace build (and a flat
  // plan consumes zero extra draws — see src/workload/trace/trace.h).
  std::unique_ptr<trace::TraceDriver> trace_driver;
  if (!config.trace.empty()) {
    trace_driver = std::make_unique<trace::TraceDriver>(config.trace);
    fleet.SetTrace(trace_driver.get());
    if (tenant_mgr != nullptr) {
      tenant_mgr->SetTrace(trace_driver.get());
    }
  }

  // The policy under test. The governor additionally gets the live metric
  // feed (its epoch sampler) and a per-path QP-health view synthesized from
  // the fleet's conservation counters — the task-level fault signal.
  std::unique_ptr<RoutePolicy> policy;
  AdaptiveGovernor* gov = nullptr;
  MetricsRegistry live_reg;  // sampled by the governor's tick, not dumped
  switch (config.policy) {
    case PolicyKind::kStaticHost:
      policy = std::make_unique<StaticPolicy>(kPathHost);
      break;
    case PolicyKind::kStaticSoc:
      policy = std::make_unique<StaticPolicy>(kPathSoc);
      break;
    case PolicyKind::kOracle:
      policy = std::make_unique<OraclePolicy>(
          &exec.config().layout, &exec,
          PathPriors::Compute(config.layout.class_bytes, config.testbed,
                              config.client, serving));
      break;
    case PolicyKind::kGovernor: {
      auto g = std::make_unique<AdaptiveGovernor>(&sim, config.governor,
                                                  &exec.config().layout, serving,
                                                  config.testbed, config.client,
                                                  config.layout.class_bytes);
      gov = g.get();
      policy = std::move(g);
      exec.RegisterMetrics(&live_reg);
      if (tenant_mgr != nullptr) {
        // The governor's path-③ budget must see tenant crossings too.
        tenant_mgr->RegisterMetrics(&live_reg);
      }
      gov->BindMetrics(live_reg);
      for (int p = 0; p < kPathCount; ++p) {
        gov->BindQpHealth(p, [&fleet, p] {
          rdma::QpHealth h;
          if (static_cast<size_t>(p) < fleet.path_issued().size()) {
            h.posted = fleet.path_issued()[static_cast<size_t>(p)];
            h.completions = fleet.path_completed()[static_cast<size_t>(p)];
            h.completion_errors = fleet.path_failed()[static_cast<size_t>(p)];
            h.outstanding = static_cast<int>(h.posted - h.completions -
                                             h.completion_errors);
          }
          return h;
        });
      }
      break;
    }
  }
  SNIC_CHECK(policy != nullptr);
  if (resil != nullptr && gov != nullptr) {
    gov->BindResilience(resil.get());
  }

  // Epoch SLO accounting + (optionally) the autoscaler, both riding the
  // governor's epoch tick so scaling and violation ledgers share the same
  // per-epoch delta discipline routing uses.
  std::unique_ptr<SloMonitor> slo_monitor;
  std::unique_ptr<EpochAutoscaler> autoscaler;
  if (trace_driver != nullptr && gov != nullptr) {
    SloMonitor::Signals sig;
    sig.good = [&fleet] { return fleet.good(); };
    sig.late = [&fleet] { return fleet.late(); };
    sig.deadline_failed = [&fleet] { return fleet.deadline_failed(); };
    sig.shed = [&fleet] { return fleet.shed(); };
    if (tenant_mgr != nullptr) {
      sig.tenant_checked = [tm = tenant_mgr.get()] {
        return tm->slo_checked_total();
      };
      sig.tenant_violations = [tm = tenant_mgr.get()] {
        return tm->violations_total();
      };
    }
    slo_monitor = std::make_unique<SloMonitor>(
        trace_driver.get(), std::move(sig), config.scale.slo_budget,
        config.governor.epoch);
    if (config.scale.enabled) {
      // The scarce budget is the serving SoC pool plus tenant pool 0; both
      // sides must exist for a split to move.
      SNIC_CHECK(tenant_mgr != nullptr);
      EpochAutoscaler::Actuators act;
      act.serving_cores = [&exec] { return exec.soc_cpu().size(); };
      act.set_serving_cores = [&exec](int n) { exec.soc_cpu().SetServers(n); };
      act.serving_busy = [&exec] { return exec.soc_cpu().busy_time(); };
      act.pool_cores = [tm = tenant_mgr.get()] { return tm->PoolCores(0); };
      act.set_pool_cores = [tm = tenant_mgr.get()](int n) {
        tm->SetPoolCores(0, n);
      };
      act.pool_busy = [tm = tenant_mgr.get()] { return tm->PoolBusy(0); };
      if (resil != nullptr) {
        act.set_bucket_mops = [rp = resil.get()](double mops) {
          rp->SetBucketMops(mops);
        };
        act.set_hedge_max_bytes = [rp = resil.get()](uint32_t bytes) {
          rp->SetHedgeMaxBytes(bytes);
        };
      }
      act.set_tenant_weight = [tm = tenant_mgr.get()](int t, int w) {
        tm->SetTenantWeight(t, w);
      };
      autoscaler = std::make_unique<EpochAutoscaler>(
          config.scale, std::move(act), config.governor.epoch);
    }
    gov->SetEpochHook(
        [sm = slo_monitor.get(), as = autoscaler.get()](SimTime now) {
          sm->OnEpoch(now);
          if (as != nullptr) {
            as->OnEpoch(now);
          }
        });
  }

  Meter meter(&sim);
  meter.SetWindow(config.warmup, config.warmup + config.window);
  const size_t classes = config.layout.class_bytes.size();
  std::vector<uint64_t> class_window_ops(classes, 0);
  std::vector<uint64_t> class_window_soc(classes, 0);

  std::vector<TargetSpec> paths(static_cast<size_t>(kPathCount));
  for (int p = 0; p < kPathCount; ++p) {
    TargetSpec& t = paths[static_cast<size_t>(p)];
    t.engine = &bf.nic();
    t.endpoint = p == kPathHost ? bf.host_ep() : bf.soc_ep();
    t.server_port = bf.port();
    t.verb = Verb::kSend;
  }

  const kv::ServingLayout layout = config.layout;
  RoutePolicy* const pol = policy.get();
  const SimTime deadline_budget = config.resil.deadline;
  if (resil != nullptr) {
    fleet.SetResilience(resil.get());
    fleet.SetShedObserver(
        [pol](int path, const KvRequest& req) { pol->OnShed(path, req); });
  }
  fleet.Start(
      std::move(paths), &zipf, config.mix, config.layout.class_bytes,
      /*header=*/[layout](uint64_t rank, int cls) { return layout.Pack(rank, cls); },
      /*route=*/[pol](const KvRequest& req) { return pol->Route(req); },
      /*observe=*/
      [&](int path, const KvRequest& req, SimTime latency, bool ok) {
        pol->OnComplete(path, req, latency, ok);
        if (tenant_mgr != nullptr) {
          tenant_mgr->OnKvOutcome(latency, ok);
        }
        const bool deadline_met =
            deadline_budget == 0 || latency <= deadline_budget;
        if (resil != nullptr) {
          resil->OnOutcome(path, latency, ok, deadline_met, sim.now());
        }
        if (!ok) {
          return;
        }
        if (meter.InWindow()) {
          const size_t cls = static_cast<size_t>(req.size_class);
          ++class_window_ops[cls];
          if (path == kPathSoc) {
            ++class_window_soc[cls];
          }
        }
        if (!deadline_met) {
          return;  // with deadlines on, the meter measures goodput
        }
        meter.RecordOp(req.bytes, latency);
      });

  if (tenant_mgr != nullptr) {
    tenant_mgr->Start();
  }

  // Quiesce at the window edge, then drain: every in-flight request
  // terminates, so conservation is exact (not cut off mid-flight).
  sim.At(config.warmup + config.window, [&] {
    fleet.StopIssuing();
    if (gov != nullptr) {
      gov->StopTicking();
    }
    if (tenant_mgr != nullptr) {
      tenant_mgr->StopIssuing();
    }
  });
  sim.Run();

  ServingResult r;
  r.policy = pol->name();
  r.mreqs = meter.MReqsPerSec();
  r.gbps = meter.Gbps();
  r.p50_us = ToMicros(meter.latency().Percentile(50));
  r.p99_us = ToMicros(meter.latency().Percentile(99));
  r.ops = meter.ops();
  r.generated = fleet.generated();
  r.issued = fleet.issued();
  r.completed = fleet.completed();
  r.failed = fleet.failed();
  r.path_issued = fleet.path_issued();
  r.path_completed = fleet.path_completed();
  r.path_failed = fleet.path_failed();
  r.soc_hits = exec.soc_hits();
  r.soc_misses = exec.soc_misses();
  r.path3_bytes = exec.path3_bytes();
  r.draws = pol->draws();
  if (gov != nullptr) {
    r.hol_gated = gov->hol_gated();
    r.budget_spills = gov->budget_spills();
    r.explored = gov->explored();
    r.breaker_denied = gov->breaker_denied();
  }
  if (resil != nullptr) {
    r.shed = fleet.shed();
    r.cancelled = fleet.cancelled();
    r.good = fleet.good();
    r.late = fleet.late();
    r.deadline_failed = fleet.deadline_failed();
    r.path_shed = fleet.path_shed();
    r.path_cancelled = fleet.path_cancelled();
    r.shed_codel = resil->shed_codel();
    r.shed_bucket = resil->shed_bucket();
    r.shed_deadline = resil->shed_deadline();
    r.hedges = resil->hedges();
    r.hedge_wins = resil->hedge_wins();
    r.hedge_cancels = resil->hedge_cancels();
    r.breaker_trips = resil->breaker_trips();
    r.breaker_reopens = resil->breaker_reopens();
    r.breaker_probes = resil->breaker_probes_used();
    r.resil_draws = resil->draws();
    const SimTime trip = resil->first_trip_at(resilience::kEndpointSoc);
    const SimTime gap = resil->max_trip_gap(resilience::kEndpointSoc);
    r.soc_trip_us = trip >= 0 ? ToMicros(trip) : -1.0;
    r.soc_trip_gap_us = gap >= 0 ? ToMicros(gap) : -1.0;
  }
  if (injector != nullptr) {
    r.crash_drops = exec.crash_drops();
    r.rewarm_misses = exec.rewarm_misses();
  }
  if (tenant_mgr != nullptr) {
    r.tenants = tenant_mgr->Results();
  }
  if (slo_monitor != nullptr) {
    r.trace = slo_monitor->result();
    if (autoscaler != nullptr) {
      r.trace.actions_up = autoscaler->actions_up();
      r.trace.actions_down = autoscaler->actions_down();
      r.trace.weight_updates = autoscaler->weight_updates();
    }
    r.trace.final_serving_cores = exec.soc_cpu().size();
    // Overlay the fleet's per-phase request ledger: summed over phases it
    // partitions the run totals exactly (generated/shed), which is what
    // the trace property tests pin under time-shifted traces.
    for (size_t i = 0; i < r.trace.phases.size(); ++i) {
      if (i < fleet.phase_generated().size()) {
        r.trace.phases[i].generated = fleet.phase_generated()[i];
        r.trace.phases[i].shed = fleet.phase_shed()[i];
      }
    }
  }
  if (r.issued > 0) {
    r.share_soc = static_cast<double>(r.path_issued[static_cast<size_t>(kPathSoc)]) /
                  static_cast<double>(r.issued);
  }
  r.class_share_soc.assign(classes, 0.0);
  for (size_t c = 0; c < classes; ++c) {
    if (class_window_ops[c] > 0) {
      r.class_share_soc[c] = static_cast<double>(class_window_soc[c]) /
                             static_cast<double>(class_window_ops[c]);
    }
  }
  if (injector != nullptr) {
    r.frames_dropped = injector->frames_dropped();
    for (int i = 0; i < fleet.machine_count(); ++i) {
      r.retransmits += fleet.machine(i).retransmits();
      r.op_failures += fleet.machine(i).op_failures();
    }
  }

  if (tracer != nullptr) {
    SNIC_CHECK(tracer->WriteChromeJsonFile(config.trace_path));
  }
  if (!config.metrics_path.empty()) {
    MetricsRegistry dump;
    bf.RegisterMetrics(&dump);
    exec.RegisterMetrics(&dump);
    fleet.RegisterMetrics(&dump);
    if (injector != nullptr) {
      injector->RegisterMetrics(&dump);
    }
    if (resil != nullptr) {
      resil->RegisterMetrics(&dump);
    }
    if (tenant_mgr != nullptr) {
      tenant_mgr->RegisterMetrics(&dump);
    }
    // The scale component exists only on trace-driven runs (the monitor
    // attaches with the trace), so trace-free dumps stay byte-identical.
    if (slo_monitor != nullptr) {
      const SloMonitor* sm = slo_monitor.get();
      const EpochAutoscaler* as = autoscaler.get();
      dump.Register("scale", "violation_epochs", "count",
                    "governor epochs past the SLO budget (SloMonitor)",
                    [sm] { return static_cast<double>(sm->violation_epochs()); });
      dump.Register("scale", "actions_up", "count",
                    "cores moved tenant pool -> serving by the autoscaler",
                    [as] {
                      return as ? static_cast<double>(as->actions_up()) : 0.0;
                    });
      dump.Register("scale", "actions_down", "count",
                    "cores moved serving -> tenant pool by the autoscaler",
                    [as] {
                      return as ? static_cast<double>(as->actions_down()) : 0.0;
                    });
      dump.Register("scale", "weight_updates", "count",
                    "tenant WRR weight retunes applied on scaling actions",
                    [as] {
                      return as ? static_cast<double>(as->weight_updates()) : 0.0;
                    });
    }
    SNIC_CHECK(dump.WriteJsonFile(config.metrics_path));
  }
  return r;
}

}  // namespace governor
}  // namespace snicsim
