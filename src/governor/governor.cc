#include "src/governor/governor.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/sim/timer_wheel.h"

namespace snicsim {
namespace governor {

namespace {
// Weight of the analytic unloaded prior kept in every score comparison
// (see the shared-bottleneck note in Route).
constexpr double kPriorBias = 1.0;
}  // namespace

AdaptiveGovernor::AdaptiveGovernor(Simulator* sim, const GovernorConfig& cfg,
                                   const kv::ServingLayout* layout,
                                   const kv::ServingConfig& serving,
                                   const TestbedParams& tp, const ClientParams& client,
                                   const std::vector<uint32_t>& class_bytes)
    : sim_(sim),
      cfg_(cfg),
      layout_(layout),
      priors_(PathPriors::Compute(class_bytes, tp, client, serving)),
      rng_(cfg.seed),
      hol_gate_bytes_(tp.bluefield_nic.hol_threshold),
      path3_budget_gbps_(SafePath3BudgetGbps(tp)),
      host_service_us_(ToMicros(serving.host_lookup)),
      soc_service_us_(ToMicros(serving.soc_lookup)),
      host_cores_(serving.host_cores),
      soc_cores_(serving.soc_cores) {
  SNIC_CHECK(sim != nullptr);
  SNIC_CHECK(layout != nullptr);
  host_lat_us_.assign(class_bytes.size(), Ewma(cfg.ewma_alpha));
  soc_lat_us_.assign(class_bytes.size(), Ewma(cfg.ewma_alpha));
  fail_rate_[kPathHost] = Ewma(cfg.ewma_alpha);
  fail_rate_[kPathSoc] = Ewma(cfg.ewma_alpha);
  if (cfg_.soc_inflight_cap > 0) {
    soc_cap_ = cfg_.soc_inflight_cap;
  } else {
    // Each ARM core pipelines roughly (notify + lookup) / lookup requests
    // before queueing dominates; give 8x headroom so the default cap is a
    // guardrail against pathological pile-up, not the operating point —
    // when the SoC genuinely carries more throughput than the host pool,
    // a tight cap would spill the surplus onto the slower path and lose to
    // static-soc outright.
    const double per_core =
        ToMicros(serving.soc_notify + serving.soc_lookup) / ToMicros(serving.soc_lookup);
    soc_cap_ = std::max(1, static_cast<int>(8.0 * serving.soc_cores * per_core));
  }
}

void AdaptiveGovernor::BindMetrics(const MetricsRegistry& reg) {
  host_busy_us_.Bind(reg, "serve", "host_busy_us");
  soc_busy_us_.Bind(reg, "serve", "soc_busy_us");
  path3_bytes_.Bind(reg, "serve", "path3_bytes");
  tenant_path3_bytes_.Bind(reg, "tenant", "path3_bytes");
  repair_path3_bytes_.Bind(reg, "repair", "path3_bytes");
  if (!ticking_) {
    ticking_ = true;
    ScheduleTick();
  }
}

void AdaptiveGovernor::BindQpHealth(int path, std::function<rdma::QpHealth()> sampler) {
  SNIC_CHECK_GE(path, 0);
  SNIC_CHECK_LT(path, kPathCount);
  qp_health_[path] = std::move(sampler);
  if (!ticking_) {
    ticking_ = true;
    ScheduleTick();
  }
}

void AdaptiveGovernor::SetEpochHook(std::function<void(SimTime)> hook) {
  epoch_hook_ = std::move(hook);
  if (!ticking_) {
    ticking_ = true;
    ScheduleTick();
  }
}

void AdaptiveGovernor::ScheduleTick() {
  if (TimerWheel* const wheel = sim_->timer_wheel(); wheel != nullptr) {
    wheel->In(cfg_.epoch, [this] { Tick(); });
  } else {
    sim_->In(cfg_.epoch, [this] { Tick(); });
  }
}

void AdaptiveGovernor::Tick() {
  if (stopped_) {
    return;
  }
  const double epoch_us = ToMicros(cfg_.epoch);
  if (host_busy_us_.bound()) {
    host_util_ = std::min(1.0, host_busy_us_.Sample() / (epoch_us * host_cores_));
  }
  if (soc_busy_us_.bound()) {
    soc_util_ = std::min(1.0, soc_busy_us_.Sample() / (epoch_us * soc_cores_));
  }
  if (path3_bytes_.bound() || tenant_path3_bytes_.bound() ||
      repair_path3_bytes_.bound()) {
    // bytes per epoch -> Gbps; tenant crossings and repair-plane migration
    // streams spend the same budget (unbound deltas sample as 0, so runs
    // without those producers are unchanged).
    path3_rate_gbps_ = (path3_bytes_.Sample() + tenant_path3_bytes_.Sample() +
                        repair_path3_bytes_.Sample()) *
                       8.0 / (epoch_us * 1e3);
  }
  for (int p = 0; p < kPathCount; ++p) {
    if (qp_health_[p]) {
      const rdma::QpHealth h = qp_health_[p]();
      qp_penalty_us_[p] = h.ErrorRate() * cfg_.qp_error_penalty_us;
      if (!h.usable()) {
        // A path whose QP left kRts carries nothing until Recover(): make
        // it lose every score comparison while still reachable by the
        // exploration floor (which is how recovery is noticed).
        qp_penalty_us_[p] += 10.0 * cfg_.qp_error_penalty_us;
      }
    }
  }
  if (resil_ != nullptr) {
    // The breakers advance on the governor's clock: a sick endpoint is
    // tripped out of the admissible set within one epoch of the evidence.
    resil_->OnEpoch(sim_->now());
  }
  if (epoch_hook_) {
    epoch_hook_(sim_->now());
  }
  ScheduleTick();
}

double AdaptiveGovernor::Penalty(int path) const {
  double us = fail_rate_[path].ValueOr(0.0) * cfg_.failure_penalty_us +
              qp_penalty_us_[path];
  if (path == kPathHost) {
    // Marginal queueing estimate: my own outstanding requests, served at
    // the pool's aggregate rate, plus the epoch utilization signal.
    us += inflight_[kPathHost] * host_service_us_ / host_cores_;
    us += host_service_us_ * host_util_ * host_util_;
  } else {
    us += inflight_[kPathSoc] * soc_service_us_ / soc_cores_;
    us += soc_service_us_ * soc_util_ * soc_util_;
  }
  return us;
}

int AdaptiveGovernor::Route(const KvRequest& req) {
  const size_t cls = static_cast<size_t>(req.size_class);
  SNIC_CHECK_LT(cls, host_lat_us_.size());

  // 1. Advice #2: HoL-scale payloads never touch the SoC endpoint, and are
  // never explored — the gate is absolute.
  if (req.bytes >= hol_gate_bytes_) {
    ++hol_gated_;
    if (resil_ != nullptr) {
      resil_->OnRouted(kPathHost);
    }
    ++routed_[kPathHost];
    ++inflight_[kPathHost];
    return kPathHost;
  }

  const bool resident = layout_->SocResident(req.rank);
  // 2. §4 P−N budget: misses ride path ③; once its measured rate eats the
  // safe budget, non-resident ranks are pinned to the host.
  const bool path3_ok = path3_rate_gbps_ < path3_budget_gbps_;
  // 3. SoC-core budget.
  const bool soc_open = inflight_[kPathSoc] < soc_cap_;
  bool soc_admissible = (resident || path3_ok) && soc_open;
  // 4. Circuit breakers (resilience layer, consulted before the score): an
  // open breaker removes its endpoint from the admissible set outright.
  if (soc_admissible && resil_ != nullptr &&
      !resil_->EndpointAvailable(kPathSoc)) {
    soc_admissible = false;
    ++breaker_denied_;
  }
  const bool host_alive =
      resil_ == nullptr || resil_->EndpointAvailable(kPathHost);

  int pick = kPathHost;
  if (soc_admissible && !host_alive) {
    // Host breaker open with the SoC admissible: fail over deterministically
    // — exploring a broken endpoint would just burn its half-open probes.
    ++breaker_denied_;
    pick = kPathSoc;
  } else if (soc_admissible) {
    // The measured EWMAs alone cannot break a shared-bottleneck tie: once
    // the NIC/PCIe1 fabric saturates, both paths' latencies equalize at
    // *any* split, yet the SoC leg still burns more shared capacity per
    // byte (128 B TLP segmentation). A fraction of the analytic unloaded
    // prior therefore stays in the score permanently, so large classes
    // drift host-ward when the measurements tie.
    const double soc_prior =
        resident ? priors_.soc_hit_us[cls] : priors_.soc_miss_us[cls];
    const double host_score = host_lat_us_[cls].ValueOr(priors_.host_us[cls]) +
                              Penalty(kPathHost) +
                              kPriorBias * priors_.host_us[cls];
    const double soc_score = soc_lat_us_[cls].ValueOr(soc_prior) +
                             Penalty(kPathSoc) + kPriorBias * soc_prior;
    pick = soc_score < host_score ? kPathSoc : kPathHost;
    // 5. ε-exploration, only across admissible paths, one counted draw per
    // eligible request.
    ++draws_;
    if (rng_.NextDouble() < cfg_.explore_eps) {
      ++explored_;
      pick = pick == kPathSoc ? kPathHost : kPathSoc;
    }
  } else if (!soc_open) {
    ++budget_spills_;
  }

  if (resil_ != nullptr) {
    resil_->OnRouted(pick);
  }
  ++routed_[pick];
  ++inflight_[pick];
  return pick;
}

void AdaptiveGovernor::OnShed(int path, const KvRequest& req) {
  (void)req;
  // Admission refused the request after Route() counted it in flight; the
  // slot frees immediately (routed_ keeps counting decisions, like draws_).
  SNIC_CHECK_GE(inflight_[path], 1);
  --inflight_[path];
}

void AdaptiveGovernor::OnComplete(int path, const KvRequest& req, SimTime latency,
                                  bool ok) {
  const size_t cls = static_cast<size_t>(req.size_class);
  SNIC_CHECK_GE(inflight_[path], 1);
  --inflight_[path];
  fail_rate_[path].Observe(ok ? 0.0 : 1.0);
  if (!ok) {
    return;  // no latency signal from an abandoned op
  }
  const double us = ToMicros(latency);
  if (path == kPathHost) {
    host_lat_us_[cls].Observe(us);
  } else {
    soc_lat_us_[cls].Observe(us);
  }
}

}  // namespace governor
}  // namespace snicsim
