// Online statistics the path-selection governor feeds on.
//
// Two kinds of signal, both deterministic:
//  - per-(path, size-class) completion latency EWMAs, updated from the
//    fleet's Observer callback in completion order (which the DES fixes);
//  - epoch deltas of named MetricsRegistry entries (CPU busy time, reply
//    counts), sampled on the governor's own periodic event. The registry's
//    sampling callbacks were built for end-of-run dumps; binding them here
//    turns the same counters into a live occupancy feed.
#ifndef SRC_GOVERNOR_STATS_H_
#define SRC_GOVERNOR_STATS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/log.h"
#include "src/obs/metrics.h"

namespace snicsim {
namespace governor {

// Exponentially weighted moving average; empty until the first observation.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void Observe(double v) {
    if (!seen_) {
      value_ = v;
      seen_ = true;
      return;
    }
    value_ += alpha_ * (v - value_);
  }

  bool seen() const { return seen_; }
  // `fallback` is returned until the first observation (the analytic prior).
  double ValueOr(double fallback) const { return seen_ ? value_ : fallback; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seen_ = false;
};

// Resolves a "<instance>.<leaf>" registry entry once and reports the change
// in its value since the previous Sample() call.
class MetricDelta {
 public:
  // Returns false when the entry does not exist (callers treat the signal
  // as absent, not as an error: topologies differ).
  bool Bind(const MetricsRegistry& reg, std::string_view instance,
            std::string_view leaf) {
    for (const auto& e : reg.entries()) {
      if (e.instance == instance && e.leaf == leaf) {
        sample_ = e.sample;
        last_ = sample_();
        return true;
      }
    }
    return false;
  }

  bool bound() const { return sample_ != nullptr; }

  double Sample() {
    if (sample_ == nullptr) {
      return 0.0;
    }
    const double now = sample_();
    const double delta = now - last_;
    last_ = now;
    return delta;
  }

  double Level() const { return sample_ == nullptr ? 0.0 : sample_(); }

 private:
  MetricsRegistry::Sample sample_;
  double last_ = 0.0;
};

}  // namespace governor
}  // namespace snicsim

#endif  // SRC_GOVERNOR_STATS_H_
