// Path-selection policies for the KV serving workload.
//
// A policy decides, per request, which communication path carries it:
// ① client→host (index kPathHost) or ② client→SoC (index kPathSoc). SoC
// misses then cost a host↔SoC fetch (path ③) as a consequence — policies
// don't route ③ directly, they budget for it.
//
// Three reference policies live here; the adaptive governor is in
// governor.h. StaticPolicy pins every request to one path (the paper's
// fixed deployments). OraclePolicy cheats: it reads the executor's
// instantaneous queue backlogs and the true residency set, giving the
// upper envelope an online policy is judged against.
#ifndef SRC_GOVERNOR_POLICY_H_
#define SRC_GOVERNOR_POLICY_H_

#include <vector>

#include "src/kvstore/serving.h"
#include "src/model/latency_model.h"
#include "src/workload/fleet.h"

namespace snicsim {
namespace governor {

inline constexpr int kPathHost = 0;  // ① client→host SEND
inline constexpr int kPathSoc = 1;   // ② client→SoC SEND
inline constexpr int kPathCount = 2;

class RoutePolicy {
 public:
  virtual ~RoutePolicy() = default;

  // Returns the path index for this request (called once per request).
  virtual int Route(const KvRequest& req) = 0;

  // Terminal outcome of a routed request; fires exactly once per request.
  virtual void OnComplete(int path, const KvRequest& req, SimTime latency, bool ok) {
    (void)path;
    (void)req;
    (void)latency;
    (void)ok;
  }

  // Admission control refused a request *after* Route() chose `path`: the
  // request was never posted and OnComplete will not fire. Policies that
  // keep in-flight accounting unwind it here.
  virtual void OnShed(int path, const KvRequest& req) {
    (void)path;
    (void)req;
  }

  // Random draws consumed so far (0 for deterministic policies). Part of
  // the replay fingerprint: same seed => same draws => same routing.
  virtual uint64_t draws() const { return 0; }

  virtual const char* name() const = 0;
};

class StaticPolicy : public RoutePolicy {
 public:
  explicit StaticPolicy(int path) : path_(path) {}
  int Route(const KvRequest&) override { return path_; }
  const char* name() const override {
    return path_ == kPathHost ? "static-host" : "static-soc";
  }

 private:
  int path_;
};

// Unloaded per-size-class latency priors for each serving path, from the
// analytic models (latency_model.h) plus the serving-side CPU terms the
// model does not cover. The value flows responder→client like a READ
// response, so kRead at the value size is the model's closest flow.
struct PathPriors {
  std::vector<double> host_us;      // path ① serve
  std::vector<double> soc_hit_us;   // path ② serve, value in SoC DRAM
  std::vector<double> soc_miss_us;  // path ② serve + path ③ value fetch

  static PathPriors Compute(const std::vector<uint32_t>& class_bytes,
                            const TestbedParams& tp, const ClientParams& client,
                            const kv::ServingConfig& serving);
};

// Full-knowledge greedy: true residency, true instantaneous CPU backlog on
// both serving pools, analytic priors for everything queue-independent.
class OraclePolicy : public RoutePolicy {
 public:
  OraclePolicy(const kv::ServingLayout* layout, kv::ServingExecutor* executor,
               PathPriors priors);

  int Route(const KvRequest& req) override;
  const char* name() const override { return "oracle"; }

 private:
  const kv::ServingLayout* layout_;
  kv::ServingExecutor* executor_;
  PathPriors priors_;
};

}  // namespace governor
}  // namespace snicsim

#endif  // SRC_GOVERNOR_POLICY_H_
