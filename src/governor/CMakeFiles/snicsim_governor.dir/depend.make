# Empty dependencies file for snicsim_governor.
# This may be replaced when dependencies are built.
