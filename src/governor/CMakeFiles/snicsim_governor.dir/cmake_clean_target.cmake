file(REMOVE_RECURSE
  "libsnicsim_governor.a"
)
