file(REMOVE_RECURSE
  "CMakeFiles/snicsim_governor.dir/autoscaler.cc.o"
  "CMakeFiles/snicsim_governor.dir/autoscaler.cc.o.d"
  "CMakeFiles/snicsim_governor.dir/governor.cc.o"
  "CMakeFiles/snicsim_governor.dir/governor.cc.o.d"
  "CMakeFiles/snicsim_governor.dir/policy.cc.o"
  "CMakeFiles/snicsim_governor.dir/policy.cc.o.d"
  "CMakeFiles/snicsim_governor.dir/serving.cc.o"
  "CMakeFiles/snicsim_governor.dir/serving.cc.o.d"
  "libsnicsim_governor.a"
  "libsnicsim_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
