// The adaptive path-selection governor — the online policy that routes
// each KV request to client→host (①) or client→SoC (②), using the paper's
// advices as hard gates and measured feedback for everything else.
//
// Decision inputs, in the order they are consulted:
//  1. Advice #2 gate: payloads at or beyond the NIC's HoL-blocking
//     threshold never go to the SoC endpoint (its 128 B PCIe MTU turns one
//     large READ into a TLP storm that blocks everyone). Gated requests
//     are never explored — an all-large workload routes byte-identically
//     to static-host.
//  2. §4 P−N budget: SoC misses pull the value over path ③. When the
//     epoch-sampled path-③ byte rate exceeds SafePath3BudgetGbps, non-
//     resident ranks are pinned to the host path.
//  3. SoC-core budget: at most `soc_inflight_cap` requests may be in
//     flight to the SoC; overflow spills to the host instead of building
//     ARM queues.
//  4. Score comparison: per-(path, size-class) latency EWMAs (analytic
//     priors from latency_model.h until the first observation — including
//     the doorbell-batch MMIO amortization of Advice #4), plus an
//     occupancy penalty from the governor's own in-flight accounting and
//     the epoch-sampled CPU busy-time of both serving pools, plus a
//     fault penalty from per-path failure EWMAs and bound QpHealth
//     samplers.
//  5. ε-exploration across the *admissible* paths only, drawn from the
//     governor's private seeded Rng. Every draw is counted (draws()), so
//     a run's routing is replayable from (seed, draw count) exactly like
//     the fault layer — and byte-identical at any sweep --jobs level.
#ifndef SRC_GOVERNOR_GOVERNOR_H_
#define SRC_GOVERNOR_GOVERNOR_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/governor/policy.h"
#include "src/governor/stats.h"
#include "src/model/bounds.h"
#include "src/rdma/verbs.h"
#include "src/resilience/resilience.h"

namespace snicsim {
namespace governor {

struct GovernorConfig {
  uint64_t seed = 0xf00dULL;
  double explore_eps = 0.02;  // exploration rate over admissible requests
  double ewma_alpha = 0.2;
  SimTime epoch = FromMicros(10);  // registry sampling period
  // In-flight cap for path ②; 0 derives it from the SoC pool's service
  // parameters (cores * per-core pipeline depth, doubled for headroom).
  int soc_inflight_cap = 0;
  // Penalty weights (us) for fault signals.
  double failure_penalty_us = 100.0;   // per unit per-path failure EWMA
  double qp_error_penalty_us = 100.0;  // per unit QpHealth error rate
};

class AdaptiveGovernor : public RoutePolicy {
 public:
  AdaptiveGovernor(Simulator* sim, const GovernorConfig& cfg,
                   const kv::ServingLayout* layout, const kv::ServingConfig& serving,
                   const TestbedParams& tp, const ClientParams& client,
                   const std::vector<uint32_t>& class_bytes);

  // Binds the epoch sampler to the serving executor's registry entries
  // ("serve.host_busy_us", "serve.soc_busy_us", "serve.path3_bytes") and
  // starts the periodic tick. Optional: without it the governor runs on
  // completion feedback alone. When a tenant control plane registered
  // "tenant.path3_bytes" in the same registry, its crossings are added to
  // the path-③ rate the budget gate meters — tenant traffic spends the
  // same intra-machine budget serving misses do. Likewise a rack repair
  // plane registering "repair.path3_bytes" (migration fetches,
  // src/topo/rack_kv.h) spends the budget, which is what throttles serving
  // onto path ① while a shard is being rebuilt. Absent entry => bind
  // fails silently and behavior is unchanged.
  void BindMetrics(const MetricsRegistry& reg);

  // Per-path QP health feed (task-level fault awareness). Sampled each
  // epoch; a path whose QPs are erroring or out of kRts is penalized.
  void BindQpHealth(int path, std::function<rdma::QpHealth()> sampler);

  // Hooks the resilience layer in: the governor's epoch tick drives the
  // circuit breakers (OnEpoch), an open breaker makes its endpoint
  // inadmissible (counted breaker_denied), and every routing decision is
  // reported for half-open probe accounting. Null keeps routing
  // byte-identical to the resilience-free governor.
  void BindResilience(resilience::ResilienceManager* resil) { resil_ = resil; }

  // Invoked once per epoch tick, after the sampled signals update and the
  // breakers advance — the clock the epoch autoscaler runs on, so scaling
  // decisions and routing see the same per-epoch deltas. Null (the
  // default) leaves the tick byte-identical to a hook-free build.
  void SetEpochHook(std::function<void(SimTime)> hook);

  // Ends the periodic epoch tick, so a run can drain to an empty event
  // queue (exact conservation) instead of being cut off mid-flight.
  void StopTicking() { stopped_ = true; }

  int Route(const KvRequest& req) override;
  void OnComplete(int path, const KvRequest& req, SimTime latency, bool ok) override;
  void OnShed(int path, const KvRequest& req) override;
  uint64_t draws() const override { return draws_; }
  const char* name() const override { return "governor"; }

  // Introspection (property tests pin these).
  int soc_inflight() const { return inflight_[kPathSoc]; }
  int soc_inflight_cap() const { return soc_cap_; }
  uint64_t routed(int path) const { return routed_[static_cast<size_t>(path)]; }
  uint64_t hol_gated() const { return hol_gated_; }
  uint64_t budget_spills() const { return budget_spills_; }
  uint64_t explored() const { return explored_; }
  uint64_t breaker_denied() const { return breaker_denied_; }
  double path3_rate_gbps() const { return path3_rate_gbps_; }
  double path3_budget_gbps() const { return path3_budget_gbps_; }
  double host_util() const { return host_util_; }
  double soc_util() const { return soc_util_; }
  const PathPriors& priors() const { return priors_; }

 private:
  void Tick();
  // Arms the next epoch tick — through the simulator's timer wheel when one
  // is attached, so the periodic clock shares heap slots with every other
  // wheel client instead of costing a heap event per epoch.
  void ScheduleTick();
  double Penalty(int path) const;

  Simulator* sim_;
  GovernorConfig cfg_;
  const kv::ServingLayout* layout_;
  PathPriors priors_;
  Rng rng_;
  uint64_t draws_ = 0;

  uint64_t hol_gate_bytes_;
  double path3_budget_gbps_;
  int soc_cap_;
  double host_service_us_;
  double soc_service_us_;
  int host_cores_;
  int soc_cores_;

  // Feedback state.
  std::vector<Ewma> host_lat_us_;  // per size class
  std::vector<Ewma> soc_lat_us_;
  Ewma fail_rate_[kPathCount];
  int inflight_[kPathCount] = {0, 0};
  uint64_t routed_[kPathCount] = {0, 0};
  uint64_t hol_gated_ = 0;
  uint64_t budget_spills_ = 0;
  uint64_t explored_ = 0;
  uint64_t breaker_denied_ = 0;
  resilience::ResilienceManager* resil_ = nullptr;

  // Epoch-sampled signals.
  MetricDelta host_busy_us_;
  MetricDelta soc_busy_us_;
  MetricDelta path3_bytes_;
  MetricDelta tenant_path3_bytes_;
  MetricDelta repair_path3_bytes_;
  double host_util_ = 0.0;
  double soc_util_ = 0.0;
  double path3_rate_gbps_ = 0.0;
  bool ticking_ = false;
  bool stopped_ = false;
  std::function<void(SimTime)> epoch_hook_;
  std::function<rdma::QpHealth()> qp_health_[kPathCount];
  double qp_penalty_us_[kPathCount] = {0.0, 0.0};
};

}  // namespace governor
}  // namespace snicsim

#endif  // SRC_GOVERNOR_GOVERNOR_H_
