// One-call KV serving experiment: fleet + BlueField server + executor +
// path policy, measured over a warmup/window pair and then *drained*.
//
// Unlike the echo harness (src/workload/harness.h) an experiment here does
// not stop at the window edge: at warmup+window the fleet stops issuing and
// the governor stops ticking, then the simulation runs dry. That makes
// conservation exact — issued == completed + failed, per path — which is
// what the governor property tests pin.
//
// Determinism contract: a ServingRunConfig fully determines the run. All
// randomness flows from (fleet seed, client id) streams plus the governor's
// own counted ε-draws, so ServingResult::Fingerprint() is byte-identical
// across processes, sweep orders, and --jobs levels.
#ifndef SRC_GOVERNOR_SERVING_H_
#define SRC_GOVERNOR_SERVING_H_

#include <string>
#include <vector>

#include "src/fault/plan.h"
#include "src/governor/autoscaler.h"
#include "src/governor/governor.h"
#include "src/governor/policy.h"
#include "src/obs/trace.h"
#include "src/offload/tenancy.h"
#include "src/resilience/resilience.h"
#include "src/topo/testbed_params.h"
#include "src/workload/fleet.h"
#include "src/workload/trace/trace.h"

namespace snicsim {
namespace governor {

enum class PolicyKind {
  kStaticHost,  // every request on ① (the paper's RNIC-style deployment)
  kStaticSoc,   // every request on ② (naive full offload)
  kOracle,      // full-knowledge greedy (upper envelope)
  kGovernor,    // the adaptive governor
};

constexpr const char* PolicyKindName(PolicyKind k) {
  switch (k) {
    case PolicyKind::kStaticHost:
      return "static-host";
    case PolicyKind::kStaticSoc:
      return "static-soc";
    case PolicyKind::kOracle:
      return "oracle";
    case PolicyKind::kGovernor:
      return "governor";
  }
  return "?";
}

struct ServingRunConfig {
  TestbedParams testbed = TestbedParams::Default();
  ClientParams client;  // per requester machine (fleet.machine is overwritten)
  FleetParams fleet;
  kv::ServingLayout layout;
  SizeMixture mix;  // parallel to layout.class_bytes
  double zipf_theta = 0.99;
  // Serving-pool size overrides (0 = take the testbed value). Shrinking the
  // host pool is how tests and sweeps create serving-side pressure without
  // needing a proportionally bigger fleet.
  int host_cores = 0;
  int soc_cores = 0;
  PolicyKind policy = PolicyKind::kGovernor;
  GovernorConfig governor;
  SimTime warmup = FromMicros(60);
  SimTime window = FromMicros(200);

  // Fault schedule (src/fault/plan.h). Empty => no injector exists and the
  // run is bit-identical to a fault-free build.
  fault::FaultPlan faults;

  // Overload-protection / failover layer (src/resilience). Empty => no
  // manager exists and the run is bit-identical to a resilience-free build.
  resilience::ResilienceConfig resil;

  // Multi-tenant offload pipelines sharing this server's SoC
  // (src/offload/tenancy.h). Empty => no TenantManager exists and the run
  // is bit-identical to a tenant-free build (pinned by the tenants golden
  // test's KV-only case).
  offload::TenantSetConfig tenants;

  // Non-stationary load trace (src/workload/trace). Empty => no
  // TraceDriver exists and the run is bit-identical to a trace-free build
  // (pinned by the autoscaler golden test). With the governor policy a
  // trace also attaches the epoch SloMonitor, so every arm of a
  // static-vs-autoscaled comparison shares one violation ledger.
  trace::TracePlan trace;

  // Epoch autoscaler over the serving-SoC / tenant-pool core split
  // (src/governor/autoscaler.h). Requires a non-empty trace, the governor
  // policy, and a tenant plane with at least one pool; disabled => no
  // autoscaler exists and provisioning stays static.
  ScaleConfig scale;

  // Event cores for the simulation (--sim-threads). The serving testbed is
  // a single domain — one BlueField server, one Simulator — so any value is
  // accepted with byte-identical output (DESIGN.md §12); the flag exists so
  // serving benches compose uniformly with the multi-domain ones.
  int sim_threads = 1;

  // Observability sinks (same semantics as HarnessConfig).
  std::string trace_path;
  std::string metrics_path;
  size_t trace_capacity = Tracer::kDefaultCapacity;
};

struct ServingResult {
  std::string policy;

  // Steady-state window measurement (value bytes = goodput).
  double mreqs = 0.0;
  double gbps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t ops = 0;

  // Whole-run conservation counters (exact after the drain):
  // generated == (issued - hedges) + shed, issued == completed + failed +
  // cancelled.
  uint64_t generated = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  std::vector<uint64_t> path_issued;     // [kPathHost, kPathSoc]
  std::vector<uint64_t> path_completed;
  std::vector<uint64_t> path_failed;

  // Serving-side split.
  uint64_t soc_hits = 0;
  uint64_t soc_misses = 0;
  uint64_t path3_bytes = 0;

  // Policy introspection (zero for policies without the signal).
  uint64_t hol_gated = 0;
  uint64_t budget_spills = 0;
  uint64_t explored = 0;
  uint64_t draws = 0;
  double share_soc = 0.0;                // routed-② fraction, whole run
  std::vector<double> class_share_soc;   // per size class, window ops only

  // Fault-layer outcome (zero when faults are off).
  uint64_t retransmits = 0;
  uint64_t op_failures = 0;
  uint64_t frames_dropped = 0;

  // Resilience-layer outcome (zero when the resilience config is empty).
  // With deadlines on, `mreqs`/`gbps` above count only in-deadline
  // completions — they are *goodput*, and good + late == completed.
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t good = 0;
  uint64_t late = 0;
  uint64_t deadline_failed = 0;
  std::vector<uint64_t> path_shed;
  std::vector<uint64_t> path_cancelled;
  uint64_t shed_codel = 0;
  uint64_t shed_bucket = 0;
  uint64_t shed_deadline = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t hedge_cancels = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_reopens = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_denied = 0;
  uint64_t resil_draws = 0;
  uint64_t crash_drops = 0;
  uint64_t rewarm_misses = 0;
  // Failover timeline of the SoC endpoint's breaker: when it first tripped
  // and the largest evidence-to-trip gap (-1 each when it never tripped).
  double soc_trip_us = -1.0;
  double soc_trip_gap_us = -1.0;

  // Per-tenant outcome (empty when the tenant config is empty). Carried
  // outside Fingerprint() — which committed goldens pin — and digested by
  // its own TenantSetResult::Fingerprint(); replay comparisons of tenant
  // runs join both digests.
  offload::TenantSetResult tenants;

  // Trace-run outcome: the epoch SLO ledger with per-phase splits plus the
  // autoscaler's action counters (zero when no trace is attached). Also
  // outside Fingerprint() for the same golden-stability reason; trace
  // replay comparisons join trace.Fingerprint() too.
  TraceRunResult trace;

  // Canonical digest of every field above except `tenants` ("%.17g"
  // doubles): two runs are replay-equal iff their fingerprints are
  // string-equal (tenant runs additionally compare tenants.Fingerprint()).
  std::string Fingerprint() const;
};

ServingResult RunServing(const ServingRunConfig& config);

}  // namespace governor
}  // namespace snicsim

#endif  // SRC_GOVERNOR_SERVING_H_
