#include "src/governor/policy.h"

#include <utility>

#include "src/common/log.h"

namespace snicsim {
namespace governor {

PathPriors PathPriors::Compute(const std::vector<uint32_t>& class_bytes,
                               const TestbedParams& tp, const ClientParams& client,
                               const kv::ServingConfig& serving) {
  PathPriors p;
  const double ns = 1e-3;
  // Advice #4 mapping: doorbell batching amortizes the MMIO terms of the
  // post across the chain, so the prior a batched client sees drops by the
  // saved fraction. Identical on both paths — it shifts the absolute
  // prior, not the host/SoC comparison.
  double post_saving_us = 0.0;
  if (client.doorbell_batch && client.batch > 1) {
    post_saving_us = ToNanos(client.mmio_block + client.mmio_flight) * ns *
                     (1.0 - 1.0 / static_cast<double>(client.batch));
  }
  for (uint32_t bytes : class_bytes) {
    const double host = PredictLatency(LatencyTarget::kBluefieldHost, Verb::kRead,
                                       bytes, tp, client)
                            .total_us() +
                        ToNanos(serving.host_notify + serving.host_lookup) * ns -
                        post_saving_us;
    const LatencyBreakdown soc_b =
        PredictLatency(LatencyTarget::kBluefieldSoc, Verb::kRead, bytes, tp, client);
    const double soc_hit = soc_b.total_us() +
                           ToNanos(serving.soc_notify + serving.soc_lookup) * ns -
                           post_saving_us;
    // A miss adds the path-③ S2H READ: the value crosses switch + PCIe1
    // from host memory before the reply leaves — approximated by the host
    // path's PCIe round trip + memory terms.
    const LatencyBreakdown host_b =
        PredictLatency(LatencyTarget::kBluefieldHost, Verb::kRead, bytes, tp, client);
    const double soc_miss = soc_hit + host_b.pcie_round_trip_us + host_b.memory_us;
    p.host_us.push_back(host);
    p.soc_hit_us.push_back(soc_hit);
    p.soc_miss_us.push_back(soc_miss);
  }
  return p;
}

OraclePolicy::OraclePolicy(const kv::ServingLayout* layout,
                           kv::ServingExecutor* executor, PathPriors priors)
    : layout_(layout), executor_(executor), priors_(std::move(priors)) {
  SNIC_CHECK(layout != nullptr);
  SNIC_CHECK(executor != nullptr);
}

int OraclePolicy::Route(const KvRequest& req) {
  const size_t cls = static_cast<size_t>(req.size_class);
  SNIC_CHECK_LT(cls, priors_.host_us.size());
  const bool resident = layout_->SocResident(req.rank);
  const double host_score =
      priors_.host_us[cls] + ToMicros(executor_->host_cpu().Backlog());
  const double soc_score =
      (resident ? priors_.soc_hit_us[cls] : priors_.soc_miss_us[cls]) +
      ToMicros(executor_->soc_cpu().Backlog());
  return soc_score < host_score ? kPathSoc : kPathHost;
}

}  // namespace governor
}  // namespace snicsim
