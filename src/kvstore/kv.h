// Distributed KV-store frontends reproducing Fig. 1:
//  (a) client-direct gets over one-sided READs — the index traversal plus
//      the value fetch each cost a network round trip (amplification);
//  (b) SoC-offloaded gets — one SEND to the SmartNIC SoC, whose CPU walks
//      the index locally and fetches the value (from SoC memory, or from
//      host memory over path ③), then replies.
#ifndef SRC_KVSTORE_KV_H_
#define SRC_KVSTORE_KV_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/kvstore/index.h"
#include "src/rdma/verbs.h"
#include "src/sim/meter.h"
#include "src/sim/server.h"
#include "src/topo/server.h"

namespace snicsim {
namespace kv {

struct GetResult {
  bool found = false;
  int round_trips = 0;
  SimTime latency = 0;
};

// Fig. 1(a): gets issued by the client itself via one-sided READs against
// the server's index + value regions.
class DirectKvClient {
 public:
  DirectKvClient(const KvIndex* index, rdma::QueuePair* qp) : index_(index), qp_(qp) {}

  // Performs index probes + value fetch; `done` runs at completion.
  void Get(uint64_t key, std::function<void(GetResult)> done);

 private:
  void ReadProbe(std::shared_ptr<Lookup> lookup, size_t i, int rts, SimTime started,
                 std::function<void(GetResult)> done);

  const KvIndex* index_;
  rdma::QueuePair* qp_;
};

// Fig. 1(b): the get is shipped to the SoC with one SEND; the SoC CPU
// resolves it. Installs itself as the SoC endpoint's send handler.
class SocOffloadKvServer {
 public:
  struct Config {
    SimTime lookup_service = FromNanos(350);  // ARM hash-walk per get
    bool values_on_host = false;              // else in SoC memory
  };

  SocOffloadKvServer(Simulator* sim, BluefieldServer* server, const KvIndex* index,
                     const Config& config);

  // Key stream statistics for the handler (the SEND payload carries the key
  // conceptually; the simulator transfers sizes, not bytes).
  void SeedKeys(uint64_t max_key, uint64_t seed = 99);

  uint64_t gets_served() const { return gets_served_; }

 private:
  Simulator* sim_;
  BluefieldServer* server_;
  const KvIndex* index_;
  Config config_;
  MultiServer soc_cpu_;
  Rng key_rng_;
  uint64_t max_key_ = 1;
  uint64_t gets_served_ = 0;
};

}  // namespace kv
}  // namespace snicsim

#endif  // SRC_KVSTORE_KV_H_
