file(REMOVE_RECURSE
  "libsnicsim_kvstore.a"
)
