# Empty dependencies file for snicsim_kvstore.
# This may be replaced when dependencies are built.
