file(REMOVE_RECURSE
  "CMakeFiles/snicsim_kvstore.dir/index.cc.o"
  "CMakeFiles/snicsim_kvstore.dir/index.cc.o.d"
  "CMakeFiles/snicsim_kvstore.dir/kv.cc.o"
  "CMakeFiles/snicsim_kvstore.dir/kv.cc.o.d"
  "CMakeFiles/snicsim_kvstore.dir/serving.cc.o"
  "CMakeFiles/snicsim_kvstore.dir/serving.cc.o.d"
  "libsnicsim_kvstore.a"
  "libsnicsim_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
