// Server-side layout of the distributed in-memory key-value store used by
// the paper's motivating example (Fig. 1): a bucketed hash index plus a
// value region, both placed at fixed simulated addresses so clients can
// traverse them with one-sided READs.
//
// The index is a real data structure (insertion, collision probing, lookup)
// — a Get returns the exact probe sequence of bucket addresses a one-sided
// client must READ, followed by the value address; that sequence is what
// produces the paper's network amplification.
#ifndef SRC_KVSTORE_INDEX_H_
#define SRC_KVSTORE_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace snicsim {
namespace kv {

struct IndexConfig {
  uint64_t index_base = 0;
  uint32_t buckets = 1u << 20;      // must be a power of two
  int slots_per_bucket = 4;
  uint32_t entry_bytes = 16;        // key + value pointer
  uint64_t value_base = 16ull * 1024 * kMiB;
  uint32_t value_bytes = 256;       // fixed-size values
  int max_probes = 8;               // linear probing over buckets

  uint32_t bucket_bytes() const {
    return static_cast<uint32_t>(slots_per_bucket) * entry_bytes;
  }
};

struct Lookup {
  bool found = false;
  // Bucket addresses a one-sided client READs, in probe order.
  std::vector<uint64_t> bucket_addrs;
  uint64_t value_addr = 0;
  uint32_t value_bytes = 0;

  // READ round trips a client-direct get costs (buckets + value).
  int round_trips() const {
    return static_cast<int>(bucket_addrs.size()) + (found ? 1 : 0);
  }
};

class KvIndex {
 public:
  explicit KvIndex(const IndexConfig& config);

  // Inserts `key`; returns false when probing exhausts max_probes (table too
  // full around that hash).
  bool Put(uint64_t key);

  // Probe sequence for `key` (valid whether or not the key is present).
  Lookup Get(uint64_t key) const;

  bool Contains(uint64_t key) const { return Get(key).found; }

  uint64_t size() const { return size_; }
  const IndexConfig& config() const { return config_; }
  // Load factor in [0, 1].
  double LoadFactor() const;

 private:
  static constexpr uint64_t kEmpty = 0;

  uint32_t BucketOf(uint64_t key) const;
  uint64_t BucketAddr(uint32_t bucket) const;
  uint64_t ValueAddr(uint32_t bucket, int slot) const;

  IndexConfig config_;
  std::vector<uint64_t> slots_;  // buckets * slots_per_bucket keys (0 = empty)
  uint64_t size_ = 0;
};

}  // namespace kv
}  // namespace snicsim

#endif  // SRC_KVSTORE_INDEX_H_
