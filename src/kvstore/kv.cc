#include "src/kvstore/kv.h"

#include <utility>

#include "src/common/log.h"

namespace snicsim {
namespace kv {

void DirectKvClient::Get(uint64_t key, std::function<void(GetResult)> done) {
  auto lookup = std::make_shared<Lookup>(index_->Get(key));
  SNIC_CHECK(!lookup->bucket_addrs.empty());
  // The client cannot know the probe length in advance: it READs bucket by
  // bucket, exactly like a real one-sided traversal.
  ReadProbe(std::move(lookup), 0, 0, /*started=*/-1, std::move(done));
}

void DirectKvClient::ReadProbe(std::shared_ptr<Lookup> lookup, size_t i, int rts,
                               SimTime started, std::function<void(GetResult)> done) {
  const uint32_t bucket_bytes = index_->config().bucket_bytes();
  (void)started;
  qp_->PostRead(lookup->bucket_addrs[i], bucket_bytes, /*wr_id=*/i,
                [this, lookup, i, rts, started, done = std::move(done)](
                    SimTime /*completed*/) mutable {
    const int now_rts = rts + 1;
    if (i + 1 < lookup->bucket_addrs.size()) {
      ReadProbe(lookup, i + 1, now_rts, started, std::move(done));
      return;
    }
    if (!lookup->found) {
      done(GetResult{false, now_rts, 0});
      return;
    }
    // Final round trip: fetch the value.
    qp_->PostRead(lookup->value_addr, lookup->value_bytes, /*wr_id=*/1000,
                  [now_rts, done = std::move(done)](SimTime) {
                    done(GetResult{true, now_rts + 1, 0});
                  });
  });
}

SocOffloadKvServer::SocOffloadKvServer(Simulator* sim, BluefieldServer* server,
                                       const KvIndex* index, const Config& config)
    : sim_(sim),
      server_(server),
      index_(index),
      config_(config),
      soc_cpu_(sim, "kv.soccpu", /*servers=*/8),
      key_rng_(0x5eedULL) {
  server_->nic().SetSendHandler(
      server_->soc_ep(),
      [this](uint64_t /*hdr*/, uint32_t /*len*/, ReplyCallback reply) {
        ++gets_served_;
        const uint64_t key = 1 + key_rng_.NextBelow(max_key_);
        const Lookup lookup = index_->Get(key);
        // The ARM core walks the (local) index: one service slot per probe.
        const SimTime cpu_done = soc_cpu_.EnqueueAt(
            sim_->now(),
            config_.lookup_service * static_cast<SimTime>(lookup.bucket_addrs.size()));
        const uint32_t vbytes = lookup.found ? lookup.value_bytes : 0;
        if (!lookup.found) {
          sim_->At(cpu_done, [cpu_done, reply = std::move(reply)] {
            reply(cpu_done, 16);  // miss: tiny reply
          });
          return;
        }
        if (!config_.values_on_host) {
          // Value lives in SoC DRAM: fetch it locally before replying.
          sim_->At(cpu_done, [this, lookup, vbytes, reply = std::move(reply)]() mutable {
            const SimTime v = server_->soc_memory().Access(
                sim_->now(), lookup.value_addr, vbytes, /*is_write=*/false);
            sim_->At(v, [v, vbytes, reply = std::move(reply)] { reply(v, vbytes); });
          });
          return;
        }
        // Value lives in host DRAM: the SoC reads it over path ③ (S2H READ).
        sim_->At(cpu_done, [this, lookup, vbytes, reply = std::move(reply)]() mutable {
          server_->nic().ExecuteLocalOp(
              server_->soc_ep(), server_->host_ep(), Verb::kRead, lookup.value_addr,
              vbytes, [vbytes, reply = std::move(reply)](SimTime done) {
                reply(done, vbytes);
              });
        });
      });
}

void SocOffloadKvServer::SeedKeys(uint64_t max_key, uint64_t seed) {
  SNIC_CHECK_GT(max_key, 0u);
  max_key_ = max_key;
  key_rng_ = Rng(seed);
}

}  // namespace kv
}  // namespace snicsim
