#include "src/kvstore/serving.h"

#include <utility>

#include "src/fault/injector.h"

namespace snicsim {
namespace kv {

ServingExecutor::ServingExecutor(Simulator* sim, BluefieldServer* server,
                                 const ServingConfig& config)
    : sim_(sim),
      server_(server),
      config_(config),
      host_cpu_(sim, "serve.hostcpu", config.host_cores),
      soc_cpu_(sim, "serve.soccpu", config.soc_cores) {
  config_.layout.Validate();
  server_->nic().SetSendHandler(
      server_->host_ep(),
      [this](uint64_t hdr, uint32_t /*len*/, ReplyCallback reply) {
        ServeHost(hdr, std::move(reply));
      });
  server_->nic().SetSendHandler(
      server_->soc_ep(),
      [this](uint64_t hdr, uint32_t /*len*/, ReplyCallback reply) {
        ServeSoc(hdr, std::move(reply));
      });
}

SimTime ServingExecutor::Stall(const std::string& domain) {
  if (fault::FaultInjector* const inj = sim_->faults(); inj != nullptr) {
    return inj->StallDelay(domain, sim_->now());
  }
  return 0;
}

void ServingExecutor::ServeHost(uint64_t hdr, ReplyCallback reply) {
  fault::FaultInjector* const inj = sim_->faults();
  const SimTime arrived = sim_->now();
  if (inj != nullptr && inj->CrashedAt(config_.host_domain, arrived)) {
    ++crash_drops_;  // dead endpoint: no reply, the client transport times out
    return;
  }
  ++host_gets_;
  const uint32_t bytes = config_.layout.BytesOf(hdr);
  if (observer_) {
    observer_(resilience::kEndpointHost, bytes);
  }
  const SimTime dispatch = arrived + config_.host_notify + Stall(config_.host_domain);
  const SimTime cpu_done = host_cpu_.EnqueueAt(dispatch, config_.host_lookup);
  sim_->At(cpu_done, [this, hdr, bytes, arrived, inj,
                      reply = std::move(reply)]() mutable {
    const SimTime v =
        server_->host_memory().Access(sim_->now(), hdr, bytes, /*is_write=*/false);
    sim_->At(v, [this, v, bytes, arrived, inj, reply = std::move(reply)] {
      // A crash anywhere during [arrival, reply) kills the in-flight get:
      // the reply evaporates with the endpoint's state.
      if (inj != nullptr && inj->CrashKills(config_.host_domain, arrived, v)) {
        ++crash_drops_;
        return;
      }
      reply(v, bytes);
    });
  });
}

void ServingExecutor::ServeSoc(uint64_t hdr, ReplyCallback reply) {
  fault::FaultInjector* const inj = sim_->faults();
  const SimTime arrived = sim_->now();
  if (inj != nullptr && inj->CrashedAt(config_.soc_domain, arrived)) {
    ++crash_drops_;
    return;
  }
  ++soc_gets_;
  const uint64_t rank = ServingLayout::RankOf(hdr);
  const uint32_t bytes = config_.layout.BytesOf(hdr);
  if (observer_) {
    observer_(resilience::kEndpointSoc, bytes);
  }
  const SimTime dispatch = arrived + config_.soc_notify + Stall(config_.soc_domain);
  const SimTime cpu_done = soc_cpu_.EnqueueAt(dispatch, config_.soc_lookup);
  // Restart comes up with a cold SoC cache: resident ranks miss (and pay
  // path ③) until the rewarm window closes.
  bool resident = config_.layout.SocResident(rank);
  if (resident && inj != nullptr && inj->InRewarm(config_.soc_domain, arrived)) {
    resident = false;
    ++rewarm_misses_;
  }
  if (resident) {
    ++soc_hits_;
    sim_->At(cpu_done, [this, hdr, bytes, arrived, inj,
                        reply = std::move(reply)]() mutable {
      const SimTime v =
          server_->soc_memory().Access(sim_->now(), hdr, bytes, /*is_write=*/false);
      sim_->At(v, [this, v, bytes, arrived, inj, reply = std::move(reply)] {
        if (inj != nullptr && inj->CrashKills(config_.soc_domain, arrived, v)) {
          ++crash_drops_;
          return;
        }
        reply(v, bytes);
      });
    });
    return;
  }
  ++soc_misses_;
  path3_bytes_ += bytes;
  // Value lives only in host DRAM: the SoC fetches it over path ③ before
  // replying (the S2H READ crosses PCIe1 twice — the §4 tax the governor's
  // budget rule exists to bound).
  sim_->At(cpu_done, [this, hdr, bytes, arrived, inj,
                      reply = std::move(reply)]() mutable {
    server_->nic().ExecuteLocalOp(
        server_->soc_ep(), server_->host_ep(), Verb::kRead, hdr, bytes,
        [this, bytes, arrived, inj, reply = std::move(reply)](SimTime done) {
          if (inj != nullptr && inj->CrashKills(config_.soc_domain, arrived, done)) {
            ++crash_drops_;
            return;
          }
          reply(done, bytes);
        });
  });
}

void ServingExecutor::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register("serve", "host_gets", "count", "gets served on path 1 (host CPU)",
                [this] { return static_cast<double>(host_gets_); });
  reg->Register("serve", "soc_gets", "count", "gets served on path 2 (SoC CPU)",
                [this] { return static_cast<double>(soc_gets_); });
  reg->Register("serve", "soc_hits", "count", "SoC gets served from SoC DRAM",
                [this] { return static_cast<double>(soc_hits_); });
  reg->Register("serve", "soc_misses", "count",
                "SoC gets that fetched the value over path 3",
                [this] { return static_cast<double>(soc_misses_); });
  reg->Register("serve", "path3_bytes", "bytes",
                "value bytes fetched host->SoC for SoC misses",
                [this] { return static_cast<double>(path3_bytes_); });
  reg->Register("serve", "host_busy_us", "us", "host serving-core busy time",
                [this] { return ToMicros(host_cpu_.busy_time()); });
  reg->Register("serve", "soc_busy_us", "us", "SoC serving-core busy time",
                [this] { return ToMicros(soc_cpu_.busy_time()); });
  // Crash accounting exists only in fault-carrying runs, so fault-free
  // metric dumps stay byte-identical to the recorded goldens.
  if (sim_->faults() != nullptr) {
    reg->Register("serve", "crash_drops", "count",
                  "gets dropped by an endpoint crash (arrival or in-flight)",
                  [this] { return static_cast<double>(crash_drops_); });
    reg->Register("serve", "rewarm_misses", "count",
                  "SoC-resident gets that missed during the post-crash rewarm",
                  [this] { return static_cast<double>(rewarm_misses_); });
  }
}

}  // namespace kv
}  // namespace snicsim
