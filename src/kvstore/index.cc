#include "src/kvstore/index.h"

#include "src/common/log.h"

namespace snicsim {
namespace kv {

namespace {

// Stable 64-bit mix (splitmix64 finalizer) — keys of any distribution hash
// uniformly across buckets.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

KvIndex::KvIndex(const IndexConfig& config) : config_(config) {
  SNIC_CHECK_GT(config_.buckets, 0u);
  SNIC_CHECK_EQ(config_.buckets & (config_.buckets - 1), 0u);
  SNIC_CHECK_GT(config_.slots_per_bucket, 0);
  SNIC_CHECK_GT(config_.max_probes, 0);
  slots_.assign(static_cast<size_t>(config_.buckets) *
                    static_cast<size_t>(config_.slots_per_bucket),
                kEmpty);
}

uint32_t KvIndex::BucketOf(uint64_t key) const {
  return static_cast<uint32_t>(Mix(key) & (config_.buckets - 1));
}

uint64_t KvIndex::BucketAddr(uint32_t bucket) const {
  return config_.index_base + static_cast<uint64_t>(bucket) * config_.bucket_bytes();
}

uint64_t KvIndex::ValueAddr(uint32_t bucket, int slot) const {
  const uint64_t global_slot =
      static_cast<uint64_t>(bucket) * static_cast<uint64_t>(config_.slots_per_bucket) +
      static_cast<uint64_t>(slot);
  return config_.value_base + global_slot * config_.value_bytes;
}

bool KvIndex::Put(uint64_t key) {
  SNIC_CHECK_NE(key, kEmpty);
  uint32_t bucket = BucketOf(key);
  for (int probe = 0; probe < config_.max_probes; ++probe) {
    const size_t base = static_cast<size_t>(bucket) *
                        static_cast<size_t>(config_.slots_per_bucket);
    for (int s = 0; s < config_.slots_per_bucket; ++s) {
      if (slots_[base + static_cast<size_t>(s)] == key) {
        return true;  // already present (values are fixed-size; no update)
      }
      if (slots_[base + static_cast<size_t>(s)] == kEmpty) {
        slots_[base + static_cast<size_t>(s)] = key;
        ++size_;
        return true;
      }
    }
    bucket = (bucket + 1) & (config_.buckets - 1);
  }
  return false;
}

Lookup KvIndex::Get(uint64_t key) const {
  Lookup result;
  result.value_bytes = config_.value_bytes;
  uint32_t bucket = BucketOf(key);
  for (int probe = 0; probe < config_.max_probes; ++probe) {
    result.bucket_addrs.push_back(BucketAddr(bucket));
    const size_t base = static_cast<size_t>(bucket) *
                        static_cast<size_t>(config_.slots_per_bucket);
    bool bucket_full = true;
    for (int s = 0; s < config_.slots_per_bucket; ++s) {
      const uint64_t k = slots_[base + static_cast<size_t>(s)];
      if (k == key) {
        result.found = true;
        result.value_addr = ValueAddr(bucket, s);
        return result;
      }
      if (k == kEmpty) {
        bucket_full = false;
      }
    }
    if (!bucket_full) {
      return result;  // an empty slot ends the probe chain: key absent
    }
    bucket = (bucket + 1) & (config_.buckets - 1);
  }
  return result;
}

double KvIndex::LoadFactor() const {
  return static_cast<double>(size_) / static_cast<double>(slots_.size());
}

}  // namespace kv
}  // namespace snicsim
