// Shared layout of the scale-out KV serving workload: how a request's
// (popularity rank, size class) pair is packed into the 64-bit application
// header that rides the SEND (src/nic/engine.h SendHandler), and which
// ranks are resident in SoC DRAM.
//
// The packing doubles as the value's simulated address, so hot ranks also
// concentrate memory accesses — the skew the fleet generates is the skew
// the memory subsystem sees. Fleet (src/workload/fleet.h) encodes; the
// serving executor (src/kvstore/serving.h) decodes. Both sides must agree
// on this header, which is why it lives alone in one file.
#ifndef SRC_KVSTORE_LAYOUT_H_
#define SRC_KVSTORE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/common/log.h"

namespace snicsim {
namespace kv {

// Per-rank stride leaves room for kMaxSizeClasses cache-line-aligned class
// sub-slots below it.
inline constexpr uint64_t kRankStride = 4096;
inline constexpr uint64_t kClassStride = 64;
inline constexpr int kMaxSizeClasses = static_cast<int>(kRankStride / kClassStride);

struct ServingLayout {
  // Distinct keys, addressed by popularity rank 0 (hottest) .. keys-1.
  uint64_t keys = 1u << 20;
  // Ranks [0, cached_keys) have their value replicated in SoC DRAM; the
  // SoC serves them locally, everything else costs a path-③ host fetch.
  // 0 means the SoC caches nothing; >= keys means everything is resident.
  uint64_t cached_keys = 1u << 16;
  // Value bytes per size class (the fleet's size mixture indexes this).
  std::vector<uint32_t> class_bytes = {64, 512, 4096};

  uint64_t Pack(uint64_t rank, int size_class) const {
    SNIC_CHECK_LT(rank, keys);
    SNIC_CHECK_GE(size_class, 0);
    SNIC_CHECK_LT(static_cast<size_t>(size_class), class_bytes.size());
    return rank * kRankStride + static_cast<uint64_t>(size_class) * kClassStride;
  }

  static uint64_t RankOf(uint64_t packed) { return packed / kRankStride; }
  static int ClassOf(uint64_t packed) {
    return static_cast<int>((packed % kRankStride) / kClassStride);
  }

  uint32_t BytesOf(uint64_t packed) const {
    const int cls = ClassOf(packed);
    SNIC_CHECK_LT(static_cast<size_t>(cls), class_bytes.size());
    return class_bytes[static_cast<size_t>(cls)];
  }

  bool SocResident(uint64_t rank) const { return rank < cached_keys; }

  void Validate() const {
    SNIC_CHECK_GT(keys, 0u);
    SNIC_CHECK(!class_bytes.empty());
    SNIC_CHECK_LE(class_bytes.size(), static_cast<size_t>(kMaxSizeClasses));
  }
};

}  // namespace kv
}  // namespace snicsim

#endif  // SRC_KVSTORE_LAYOUT_H_
