// Server side of the scale-out KV serving workload: one executor that
// serves gets on *both* BlueField endpoints, so a fleet (or its governor)
// can route each request to the path it prefers.
//
//   ① client→host SEND: the host CPU walks the index and reads the value
//     from host DRAM — the classic RNIC deployment.
//   ② client→SoC SEND: the wimpy ARM cores serve it. Values whose rank is
//     SoC-resident (layout.SocResident) come from SoC DRAM; misses fetch
//     the value from host DRAM over path ③ (S2H READ through the NIC
//     engine) — the paper's host↔SoC communication, with its double PCIe
//     crossing.
//
// The request's (rank, size class) arrives in the 64-bit SEND header
// (kv::ServingLayout packing); the reply carries the value bytes. Both CPU
// pools honor compute-stall fault windows ("host"/"soc" domains), which is
// what makes governor monotonicity under SoC stalls observable.
#ifndef SRC_KVSTORE_SERVING_H_
#define SRC_KVSTORE_SERVING_H_

#include <functional>
#include <string>

#include "src/kvstore/layout.h"
#include "src/obs/metrics.h"
#include "src/resilience/resilience.h"
#include "src/sim/server.h"
#include "src/topo/server.h"

namespace snicsim {
namespace kv {

struct ServingConfig {
  ServingLayout layout;
  SimTime host_lookup = FromNanos(326);  // per-get host hash walk (SNIC MMIO path)
  SimTime soc_lookup = FromNanos(350);   // per-get ARM hash walk
  SimTime host_notify = FromNanos(0);    // busy-polling host
  SimTime soc_notify = FromNanos(900);   // slow ARM dispatch
  int host_cores = 24;
  int soc_cores = 8;
  // Fault-domain names this executor's endpoints answer crash/stall queries
  // with. The defaults keep single-server topologies on the legacy
  // spellings; a rack gives each server addressable names
  // ("rack.s<i>.host" / "rack.s<i>.soc") that the injector's hierarchical
  // DomainMatches still covers with a bare "host"/"soc" plan.
  std::string host_domain = "host";
  std::string soc_domain = "soc";

  static ServingConfig FromTestbed(const TestbedParams& tp, ServingLayout l) {
    ServingConfig c;
    c.layout = std::move(l);
    c.host_lookup = tp.host_msg_service_snic;
    c.soc_lookup = tp.soc_msg_service;
    c.host_notify = tp.host_notify_delay;
    c.soc_notify = tp.soc_notify_delay;
    c.host_cores = tp.host_cores;
    c.soc_cores = tp.soc_cores;
    return c;
  }
};

class ServingExecutor {
 public:
  ServingExecutor(Simulator* sim, BluefieldServer* server, const ServingConfig& config);

  ServingExecutor(const ServingExecutor&) = delete;
  ServingExecutor& operator=(const ServingExecutor&) = delete;

  uint64_t host_gets() const { return host_gets_; }
  uint64_t soc_gets() const { return soc_gets_; }
  uint64_t soc_hits() const { return soc_hits_; }
  uint64_t soc_misses() const { return soc_misses_; }
  uint64_t path3_bytes() const { return path3_bytes_; }
  uint64_t crash_drops() const { return crash_drops_; }
  uint64_t rewarm_misses() const { return rewarm_misses_; }

  // Feeds the admission controllers their exact queue-delay signal: the
  // backlog a request arriving now would see on each pool.
  void BindResilience(resilience::ResilienceManager* resil) {
    resil->BindQueueSignal(resilience::kEndpointHost,
                           [this] { return host_cpu_.Backlog(); });
    resil->BindQueueSignal(resilience::kEndpointSoc,
                           [this] { return soc_cpu_.Backlog(); });
  }

  // Optional per-served-get tap: fires once per get that an endpoint
  // actually accepts (after the crash-window check), with the endpoint
  // index (resilience::kEndpointHost/kEndpointSoc, path-constant
  // compatible) and the value's size. The tenant control plane
  // (src/offload/tenancy.h) uses this to ride its kv telemetry tenants on
  // the real served stream. Unset => zero-cost, byte-identical serving.
  using ServeObserver = std::function<void(int endpoint, uint32_t bytes)>;
  void SetServeObserver(ServeObserver obs) { observer_ = std::move(obs); }

  const ServingConfig& config() const { return config_; }

  // Live serving pools (the oracle policy reads their instantaneous
  // backlog; an online policy must estimate it).
  MultiServer& host_cpu() { return host_cpu_; }
  MultiServer& soc_cpu() { return soc_cpu_; }

  // Exposes serving counters under "serve" (leaf catalog: DESIGN.md §6).
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  void ServeHost(uint64_t hdr, ReplyCallback reply);
  void ServeSoc(uint64_t hdr, ReplyCallback reply);
  SimTime Stall(const std::string& domain);

  Simulator* sim_;
  BluefieldServer* server_;
  ServingConfig config_;
  MultiServer host_cpu_;
  MultiServer soc_cpu_;
  ServeObserver observer_;
  uint64_t host_gets_ = 0;
  uint64_t soc_gets_ = 0;
  uint64_t soc_hits_ = 0;
  uint64_t soc_misses_ = 0;
  uint64_t path3_bytes_ = 0;
  uint64_t crash_drops_ = 0;    // requests eaten by an endpoint crash window
  uint64_t rewarm_misses_ = 0;  // SoC-resident gets missed during rewarm
};

}  // namespace kv
}  // namespace snicsim

#endif  // SRC_KVSTORE_SERVING_H_
