#include "src/resilience/resilience.h"

#include <cmath>
#include <utility>

#include "src/common/log.h"

namespace snicsim {
namespace resilience {

ResilienceManager::ResilienceManager(const ResilienceConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

int ResilienceManager::Check(int ep) {
  SNIC_CHECK_GE(ep, 0);
  SNIC_CHECK_LT(ep, kEndpointCount);
  return ep;
}

void ResilienceManager::BindQueueSignal(int ep, QueueSignal backlog) {
  eps_[Check(ep)].backlog = std::move(backlog);
}

bool ResilienceManager::Admit(int ep, int cls, SimTime deadline, SimTime now) {
  Endpoint& e = eps_[Check(ep)];
  // A request whose budget is already gone never earns queue space.
  if (deadline > 0 && now >= deadline) {
    ++shed_deadline_;
    return false;
  }
  if (!cfg_.shedding) {
    return true;
  }
  // CoDel-style controller on the exact pool backlog (CodelState carries
  // the semantics; see resilience.h).
  if (e.backlog) {
    const int level = e.codel.Observe(e.backlog(), cfg_.codel_target,
                                      cfg_.codel_interval, now);
    if (cls < level) {
      ++shed_codel_;
      return false;
    }
  }
  // Token bucket rate cap (TokenBucketState, resilience.h).
  if (cfg_.bucket_mops > 0.0 &&
      !e.bucket.TryTake(cfg_.bucket_mops, cfg_.bucket_depth, now)) {
    ++shed_bucket_;
    return false;
  }
  return true;
}

bool ResilienceManager::EndpointAvailable(int ep) const {
  if (!cfg_.breakers) {
    return true;
  }
  const Endpoint& e = eps_[Check(ep)];
  switch (e.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      return e.probes_left > 0;
  }
  return true;
}

void ResilienceManager::OnRouted(int ep) {
  if (!cfg_.breakers) {
    return;
  }
  Endpoint& e = eps_[Check(ep)];
  if (e.state == BreakerState::kHalfOpen && e.probes_left > 0) {
    --e.probes_left;
    ++breaker_probes_used_;
  }
}

void ResilienceManager::Trip(Endpoint& e, SimTime now, bool reopen) {
  e.state = BreakerState::kOpen;
  e.open_epochs_left = cfg_.breaker_open_epochs;
  if (reopen) {
    ++breaker_reopens_;
  } else {
    ++breaker_trips_;
    if (e.first_trip_at < 0) {
      e.first_trip_at = now;
    }
    if (e.first_bad_at >= 0) {
      e.max_trip_gap = std::max(e.max_trip_gap, now - e.first_bad_at);
    }
  }
}

void ResilienceManager::OnEpoch(SimTime now) {
  if (!cfg_.breakers) {
    return;
  }
  for (int p = 0; p < kEndpointCount; ++p) {
    Endpoint& e = eps_[p];
    const uint64_t total = e.window_total;
    const uint64_t bad = e.window_bad;
    const bool rate_bad =
        total > 0 && static_cast<double>(bad) / static_cast<double>(total) >=
                         cfg_.breaker_threshold;
    switch (e.state) {
      case BreakerState::kClosed:
        if (total >= static_cast<uint64_t>(cfg_.breaker_min_samples) && rate_bad) {
          Trip(e, now, /*reopen=*/false);
        }
        break;
      case BreakerState::kOpen:
        if (--e.open_epochs_left <= 0) {
          e.state = BreakerState::kHalfOpen;
          e.probes_left = cfg_.breaker_probes;
        }
        break;
      case BreakerState::kHalfOpen:
        if (total > 0 && rate_bad) {
          Trip(e, now, /*reopen=*/true);
        } else if (total > 0) {
          // Probes came back healthy: close and forget the bad spell.
          e.state = BreakerState::kClosed;
          e.first_bad_at = -1;
        } else {
          // Nothing was routed here this epoch — refill the probe budget
          // and keep listening.
          e.probes_left = cfg_.breaker_probes;
        }
        break;
    }
    e.window_total = 0;
    e.window_bad = 0;
  }
}

void ResilienceManager::OnOutcome(int ep, SimTime latency, bool ok,
                                  bool deadline_met, SimTime now) {
  Endpoint& e = eps_[Check(ep)];
  const bool bad = !ok || !deadline_met;
  ++e.window_total;
  if (bad) {
    ++e.window_bad;
    if (e.first_bad_at < 0) {
      e.first_bad_at = now;
    }
  }
  if (ok) {
    // Jacobson-style mean/dev estimators feeding the hedge delay.
    const double us = ToMicros(latency);
    if (!e.lat_primed) {
      e.lat_primed = true;
      e.lat_mean_us = us;
      e.lat_dev_us = us / 2.0;
    } else {
      const double err = us - e.lat_mean_us;
      e.lat_mean_us += err / 8.0;
      e.lat_dev_us += (std::abs(err) - e.lat_dev_us) / 4.0;
    }
  }
}

bool ResilienceManager::HedgeEligible(int routed_ep, uint32_t bytes) const {
  if (!cfg_.hedging || bytes > cfg_.hedge_max_bytes) {
    return false;
  }
  return EndpointAvailable(OtherEndpoint(Check(routed_ep)));
}

SimTime ResilienceManager::HedgeDelay(int routed_ep) {
  const Endpoint& e = eps_[Check(routed_ep)];
  double us = cfg_.hedge_multiplier * (e.lat_mean_us + 2.0 * e.lat_dev_us);
  us = std::max(us, ToMicros(cfg_.hedge_min_delay));
  // One counted draw per hedge decision, like the governor's epsilon.
  ++draws_;
  const double u = rng_.NextDouble();
  us *= 1.0 + cfg_.hedge_jitter * (2.0 * u - 1.0);
  return FromMicros(us);
}

void ResilienceManager::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register("resil", "shed_total", "count",
                "requests refused at admission (all causes)",
                [this] { return static_cast<double>(shed_total()); });
  reg->Register("resil", "shed_codel", "count",
                "requests shed by the CoDel queue-delay controller",
                [this] { return static_cast<double>(shed_codel_); });
  reg->Register("resil", "shed_bucket", "count",
                "requests shed by the token-bucket rate limiter",
                [this] { return static_cast<double>(shed_bucket_); });
  reg->Register("resil", "shed_deadline", "count",
                "requests whose deadline expired before admission",
                [this] { return static_cast<double>(shed_deadline_); });
  reg->Register("resil", "hedges", "count",
                "duplicate requests launched onto the second endpoint",
                [this] { return static_cast<double>(hedges_); });
  reg->Register("resil", "hedge_wins", "count",
                "hedged requests won by the duplicate copy",
                [this] { return static_cast<double>(hedge_wins_); });
  reg->Register("resil", "hedge_cancels", "count",
                "hedge copies cancelled after the race settled",
                [this] { return static_cast<double>(hedge_cancels_); });
  reg->Register("resil", "breaker_trips", "count",
                "circuit breakers tripped closed -> open",
                [this] { return static_cast<double>(breaker_trips_); });
  reg->Register("resil", "breaker_reopens", "count",
                "half-open probe rounds that re-tripped the breaker",
                [this] { return static_cast<double>(breaker_reopens_); });
  reg->Register("resil", "breaker_probes", "count",
                "probe requests admitted while half-open",
                [this] { return static_cast<double>(breaker_probes_used_); });
  reg->Register("resil", "draws", "count",
                "hedge-jitter RNG draws (replay accounting)",
                [this] { return static_cast<double>(draws_); });
}

}  // namespace resilience
}  // namespace snicsim
