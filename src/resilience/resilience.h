// Overload protection and endpoint failover for the KV serving path.
//
// A ResilienceManager is the per-experiment home of four cooperating
// mechanisms, all deterministic:
//
//  (a) Deadline budgets — every request is stamped with an absolute
//      deadline at issue (StampDeadline). The budget is checked at
//      admission (Admit), before a hedge launches, and at retransmit time
//      in the client reliability layer and the RC QP (src/rdma/verbs.h):
//      expired work completes as kDeadlineExceeded instead of queueing.
//  (b) Admission control — per-endpoint CoDel-style controllers fed by the
//      ServingExecutor's exact pool backlog (BindQueueSignal), plus a
//      token-bucket rate limiter. When the windowed minimum queue delay
//      stays above the target, the shed level escalates and the lowest
//      size classes are refused first (class index == priority: class 0 is
//      shed before class 1). Shedding turns the throughput collapse past
//      the saturation knee into a goodput plateau.
//  (c) Hedged requests — small GETs may be duplicated onto the second path
//      after a latency-estimate-based delay (mean + 2*dev EWMAs per
//      endpoint) with a seeded, draw-counted jitter. First completion
//      wins; the loser is cancelled and counted.
//  (d) Circuit breakers — one per endpoint, closed -> open -> half-open,
//      advanced on the governor's epoch tick (OnEpoch). A breaker trips
//      when the windowed error/deadline-miss rate crosses the threshold,
//      draining traffic off a sick endpoint before the latency EWMAs see
//      it; half-open re-admits a bounded probe trickle per epoch.
//
// Determinism contract: the only randomness is the hedge jitter, drawn
// from the manager's private seeded Rng with every draw counted (draws()),
// exactly like the governor's epsilon-exploration. Everything else is a
// pure function of sim-time-ordered calls, so fingerprints are
// byte-identical across --jobs levels and under faults. An empty config
// (empty() == true) means the harness creates no manager at all and the
// run is bit-identical to a resilience-free build.
#ifndef SRC_RESILIENCE_RESILIENCE_H_
#define SRC_RESILIENCE_RESILIENCE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"

namespace snicsim {
namespace resilience {

// Serving endpoints, index-compatible with the governor's path constants
// (kPathHost / kPathSoc) without depending on the governor layer.
inline constexpr int kEndpointHost = 0;
inline constexpr int kEndpointSoc = 1;
inline constexpr int kEndpointCount = 2;

struct ResilienceConfig {
  // Per-request latency budget; 0 disables deadlines entirely.
  SimTime deadline = 0;

  // --- admission control (CoDel + token bucket) ---
  bool shedding = false;
  SimTime codel_target = FromMicros(15);    // acceptable standing queue delay
  SimTime codel_interval = FromMicros(30);  // windowed-minimum horizon
  double bucket_mops = 0.0;                 // per-endpoint admit rate; 0 = off
  double bucket_depth = 64.0;               // burst tokens
  // Closed-loop clients re-pump after this delay when their request was
  // shed (an immediate re-pump would loop at the same sim time).
  SimTime shed_backoff = FromMicros(5);

  // --- hedged requests ---
  bool hedging = false;
  uint32_t hedge_max_bytes = 4096;  // only small GETs are hedged
  double hedge_multiplier = 3.0;    // delay = mult * (mean + 2*dev)
  SimTime hedge_min_delay = FromMicros(4);
  double hedge_jitter = 0.25;       // +/- fraction, one counted draw per hedge

  // --- circuit breakers ---
  bool breakers = false;
  double breaker_threshold = 0.5;  // windowed bad-outcome rate that trips
  int breaker_min_samples = 8;     // outcomes needed before a trip decision
  int breaker_open_epochs = 2;     // epochs spent fully open
  int breaker_probes = 8;          // probe budget per half-open epoch

  uint64_t seed = 0x5eedULL;

  // An empty config injects nothing; the harness then skips creating a
  // manager entirely so the simulation is bit-identical to a
  // resilience-free build.
  bool empty() const {
    return deadline == 0 && !shedding && !hedging && !breakers;
  }
};

// Reusable admission primitives. ResilienceManager instantiates one of each
// per serving endpoint; the tenant control plane (src/offload/tenancy.h)
// instantiates one of each per *tenant*, which is how the §11 mechanisms
// become per-tenant without forking their arithmetic.
//
// CoDel-style controller state: track the windowed minimum queue delay; if
// even the *minimum* over a full interval sits above target, the pool has a
// standing queue (not a burst) and the shed level rises by one class. A
// window whose minimum falls back under half the target de-escalates by one.
struct CodelState {
  // Shed levels beyond the largest plausible class count add nothing; the
  // cap only bounds how long de-escalation takes after a burst.
  static constexpr int kMaxLevel = 8;

  SimTime interval_end = 0;
  SimTime min_delay = std::numeric_limits<SimTime>::max();
  int level = 0;  // value classes below this index are shed

  // Feeds one queue-delay observation at `now`; returns the current level.
  int Observe(SimTime delay, SimTime target, SimTime interval, SimTime now) {
    min_delay = std::min(min_delay, delay);
    if (interval_end == 0) {
      interval_end = now + interval;
    } else if (now >= interval_end) {
      if (min_delay > target) {
        level = std::min(level + 1, kMaxLevel);
      } else if (min_delay <= target / 2) {
        level = std::max(level - 1, 0);
      }
      // Non-stationary arrivals can leave whole intervals with no
      // observations at all (a diurnal trough after a flash crowd). The
      // escalated level from the busy phase would otherwise persist
      // through the lull — one de-escalation per *arrival* regardless of
      // the gap length — and shed the first requests of the next phase
      // against a queue that has long drained. Credit one de-escalation
      // per fully-missed interval: an empty interval's minimum delay is
      // vacuously zero.
      if (level > 0 && now >= interval_end + interval) {
        const SimTime gap = now - interval_end;
        const int64_t missed = static_cast<int64_t>(gap / interval);
        level = static_cast<int>(
            std::max<int64_t>(0, static_cast<int64_t>(level) - missed));
      }
      min_delay = std::numeric_limits<SimTime>::max();
      interval_end = now + interval;
    }
    return level;
  }
};

// Deterministic token bucket: a hard rate cap near capacity, the plateau
// backstop when the integer shed level alone oscillates around the knee.
struct TokenBucketState {
  double tokens = 0.0;
  SimTime at = 0;
  bool primed = false;

  // One admission attempt against `mops` requests/us with `depth` burst
  // tokens. False means the request is shed.
  bool TryTake(double mops, double depth, SimTime now) {
    if (!primed) {
      primed = true;
      tokens = depth;
      at = now;
    }
    tokens = std::min(depth, tokens + ToMicros(now - at) * mops);
    at = now;
    if (tokens < 1.0) {
      return false;
    }
    tokens -= 1.0;
    return true;
  }

  // Amount-metered take for rate-limited background streams (the rack
  // repair plane's migration throttle meters bytes through this). Refills
  // at `rate` units/us toward `depth`, then removes `amount` — which may
  // exceed depth, driving the bucket negative so the deficit is repaid at
  // `rate`. Returns how long the caller must wait before issuing the *next*
  // take (0 while credit remains). Pure arithmetic, no draws: pacing delays
  // are an exact function of the byte sequence, which keeps migration
  // byte-identical across (--jobs, --sim-threads).
  SimTime TakeAmount(double rate, double depth, double amount, SimTime now) {
    if (!primed) {
      primed = true;
      tokens = depth;
      at = now;
    }
    tokens = std::min(depth, tokens + ToMicros(now - at) * rate);
    at = now;
    tokens -= amount;
    if (tokens >= 0.0) {
      return 0;
    }
    return FromMicros(-tokens / rate);
  }
};

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

constexpr const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

class ResilienceManager {
 public:
  explicit ResilienceManager(const ResilienceConfig& cfg);

  ResilienceManager(const ResilienceManager&) = delete;
  ResilienceManager& operator=(const ResilienceManager&) = delete;

  const ResilienceConfig& config() const { return cfg_; }

  // Epoch-autoscaler actuators: shed/hedge budgets are re-provisionable at
  // run time so admission capacity can track the serving cores it protects.
  // Both change *future* admissions only — no draw is consumed and nothing
  // in-flight is touched, so runs that never call them are byte-identical
  // to builds without these hooks.
  void SetBucketMops(double mops) {
    cfg_.bucket_mops = mops;
  }
  void SetHedgeMaxBytes(uint32_t bytes) {
    cfg_.hedge_max_bytes = bytes;
  }

  // Exact queue-delay signal for one endpoint's serving pool (the
  // ServingExecutor binds its MultiServer::Backlog here).
  using QueueSignal = std::function<SimTime()>;
  void BindQueueSignal(int ep, QueueSignal backlog);

  // --- deadlines ---
  // Absolute deadline for a request issued now (0 when deadlines are off).
  SimTime StampDeadline(SimTime now) const {
    return cfg_.deadline > 0 ? now + cfg_.deadline : 0;
  }

  // --- admission (called once per request, after routing) ---
  // False => the request is shed (never issued); the cause is counted.
  // `cls` is the size-class index; lower classes are shed first.
  bool Admit(int ep, int cls, SimTime deadline, SimTime now);

  // --- circuit breakers ---
  // Pure query: can new (non-forced) work be routed to `ep` right now?
  bool EndpointAvailable(int ep) const;
  // Accounting for a routing decision: consumes one half-open probe.
  void OnRouted(int ep);
  // Advances every breaker one epoch (driven by the governor's tick).
  void OnEpoch(SimTime now);
  BreakerState breaker_state(int ep) const { return eps_[Check(ep)].state; }

  // --- outcome feed (exactly once per request, terminal) ---
  void OnOutcome(int ep, SimTime latency, bool ok, bool deadline_met,
                 SimTime now);

  // --- hedging ---
  bool HedgeEligible(int routed_ep, uint32_t bytes) const;
  // Seeded jittered delay before the duplicate launches; one counted draw.
  SimTime HedgeDelay(int routed_ep);
  static int OtherEndpoint(int ep) { return ep == kEndpointHost ? kEndpointSoc : kEndpointHost; }
  void OnHedgeLaunched() { ++hedges_; }
  void OnHedgeWin() { ++hedge_wins_; }
  void OnHedgeCancel() { ++hedge_cancels_; }

  // --- counters ---
  uint64_t shed_total() const { return shed_codel_ + shed_bucket_ + shed_deadline_; }
  uint64_t shed_codel() const { return shed_codel_; }
  uint64_t shed_bucket() const { return shed_bucket_; }
  uint64_t shed_deadline() const { return shed_deadline_; }
  uint64_t hedges() const { return hedges_; }
  uint64_t hedge_wins() const { return hedge_wins_; }
  uint64_t hedge_cancels() const { return hedge_cancels_; }
  uint64_t breaker_trips() const { return breaker_trips_; }
  uint64_t breaker_reopens() const { return breaker_reopens_; }
  uint64_t breaker_probes_used() const { return breaker_probes_used_; }
  uint64_t draws() const { return draws_; }
  int shed_level(int ep) const { return eps_[Check(ep)].codel.level; }

  // Failover introspection: when did `ep`'s breaker first trip, and how
  // long after the first bad outcome of that window did the trip land?
  // (-1 when it never tripped.)
  SimTime first_trip_at(int ep) const { return eps_[Check(ep)].first_trip_at; }
  SimTime max_trip_gap(int ep) const { return eps_[Check(ep)].max_trip_gap; }

  // Exposes every counter above under component "resil" (leaf catalog:
  // DESIGN.md section 6.2).
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  struct Endpoint {
    // admission
    QueueSignal backlog;
    CodelState codel;
    TokenBucketState bucket;
    // breaker
    BreakerState state = BreakerState::kClosed;
    uint64_t window_total = 0;
    uint64_t window_bad = 0;
    int open_epochs_left = 0;
    int probes_left = 0;
    // hedging latency estimate (us)
    double lat_mean_us = 0.0;
    double lat_dev_us = 0.0;
    bool lat_primed = false;
    // failover introspection
    SimTime first_bad_at = -1;
    SimTime first_trip_at = -1;
    SimTime max_trip_gap = -1;
  };

  static int Check(int ep);
  void Trip(Endpoint& e, SimTime now, bool reopen);

  ResilienceConfig cfg_;
  Rng rng_;
  Endpoint eps_[kEndpointCount];

  uint64_t shed_codel_ = 0;
  uint64_t shed_bucket_ = 0;
  uint64_t shed_deadline_ = 0;
  uint64_t hedges_ = 0;
  uint64_t hedge_wins_ = 0;
  uint64_t hedge_cancels_ = 0;
  uint64_t breaker_trips_ = 0;
  uint64_t breaker_reopens_ = 0;
  uint64_t breaker_probes_used_ = 0;
  uint64_t draws_ = 0;
};

}  // namespace resilience
}  // namespace snicsim

#endif  // SRC_RESILIENCE_RESILIENCE_H_
