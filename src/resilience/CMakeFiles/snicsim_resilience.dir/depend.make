# Empty dependencies file for snicsim_resilience.
# This may be replaced when dependencies are built.
