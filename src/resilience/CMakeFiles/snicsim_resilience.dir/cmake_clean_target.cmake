file(REMOVE_RECURSE
  "libsnicsim_resilience.a"
)
