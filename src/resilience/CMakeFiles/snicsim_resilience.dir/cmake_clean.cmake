file(REMOVE_RECURSE
  "CMakeFiles/snicsim_resilience.dir/resilience.cc.o"
  "CMakeFiles/snicsim_resilience.dir/resilience.cc.o.d"
  "libsnicsim_resilience.a"
  "libsnicsim_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
