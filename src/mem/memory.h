// Host- and SoC-side memory subsystems.
//
// The paper's Advice #1 hinges on two architectural differences between the
// BlueField-2 SoC and the host (paper §3.2, Fig. 6/7):
//   * the host supports DDIO — inbound NIC writes allocate directly into the
//     last-level cache, so skewed (narrow-range) write workloads stay fast;
//     the ARM SoC does not, so every NIC access goes to DRAM;
//   * the SoC has a single DRAM channel vs. the host's eight, so bank-level
//     parallelism runs out quickly when the address range shrinks.
//
// The model: addresses map to (channel, bank) by row; each access occupies a
// per-channel command slot and then a per-bank service slot (reads are
// served faster than writes, as on real DRAM). An optional LLC absorbs
// accesses that hit; with DDIO, writes always allocate. Bulk (multi-row)
// DMA bursts stream through the channel data bus at the channel bandwidth.
#ifndef SRC_MEM_MEMORY_H_
#define SRC_MEM_MEMORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace snicsim {

struct MemoryParams {
  int channels = 1;
  int banks_per_channel = 16;
  uint64_t row_bytes = 2 * kKiB;
  // Per-access service occupancy of one bank.
  SimTime bank_read_service = FromNanos(20);
  SimTime bank_write_service = FromNanos(44);
  // Per-access occupancy of the channel command pipeline.
  SimTime cmd_read_service = FromNanos(11.8);
  SimTime cmd_write_service = FromNanos(12.8);
  // Streaming bandwidth of one channel's data bus.
  Bandwidth channel_bandwidth = Bandwidth::GBps(25.6);
  // Fixed access latency (row activation + CAS + controller).
  SimTime dram_latency = FromNanos(90);

  // Last-level cache (absent on the SoC I/O path).
  bool has_llc = false;
  bool ddio = false;  // inbound I/O writes allocate into the LLC
  uint64_t llc_bytes = 36 * kMiB;
  int llc_slices = 8;
  SimTime llc_service = FromNanos(4);   // per-access slice occupancy
  SimTime llc_latency = FromNanos(30);  // load-to-use latency

  // Transfers larger than this stream through the channel data bus instead
  // of being modeled access-by-access.
  uint32_t bulk_threshold = 4096;

  // The host of the paper's SRV machines: 8× DDR4-2933 channels + DDIO LLC.
  static MemoryParams Host();
  // Same silicon with DDIO disabled (the paper's CLI-machine experiment).
  static MemoryParams HostNoDdio();
  // BlueField-2 SoC: one DDR4 channel, no DDIO.
  static MemoryParams Soc();
};

class MemorySubsystem {
 public:
  MemorySubsystem(Simulator* sim, std::string name, const MemoryParams& params);

  MemorySubsystem(const MemorySubsystem&) = delete;
  MemorySubsystem& operator=(const MemorySubsystem&) = delete;

  // Serves one access whose data arrives (write) or whose request arrives
  // (read) at `ready`. Returns the completion time: data available for
  // reads, globally visible for writes. `cb`, if given, fires then.
  // `req_id` threads the originating request through to trace spans: reads
  // trace as critical-path phases, writes as async (posted, off the
  // completion path).
  SimTime Access(SimTime ready, uint64_t addr, uint32_t len, bool is_write,
                 Simulator::Callback cb = nullptr, uint64_t req_id = 0);

  void RegisterMetrics(MetricsRegistry* reg);

  const MemoryParams& params() const { return params_; }
  uint64_t llc_hits() const { return llc_hits_; }
  uint64_t llc_misses() const { return llc_misses_; }
  uint64_t dram_accesses() const { return dram_accesses_; }
  const std::string& name() const { return name_; }

 private:
  SimTime AccessSmall(SimTime ready, uint64_t addr, bool is_write);
  SimTime AccessBulk(SimTime ready, uint64_t addr, uint32_t len, bool is_write);
  SimTime AccessDram(SimTime ready, uint64_t row, bool is_write);
  // Returns true if the row is (now) LLC-resident for this access.
  bool LlcLookup(uint64_t row, bool is_write);

  Simulator* sim_;
  std::string name_;
  MemoryParams params_;

  std::vector<std::unique_ptr<BusyServer>> cmd_;        // one per channel
  std::vector<std::unique_ptr<BusyServer>> banks_;      // channels * banks
  std::vector<std::unique_ptr<BusyServer>> data_bus_;   // one per channel
  std::unique_ptr<MultiServer> llc_;

  // Direct-mapped row-granular LLC presence table (random-ish replacement by
  // direct conflict). Sized from llc_bytes / row_bytes.
  std::vector<uint64_t> llc_tags_;

  uint64_t llc_hits_ = 0;
  uint64_t llc_misses_ = 0;
  uint64_t dram_accesses_ = 0;
};

}  // namespace snicsim

#endif  // SRC_MEM_MEMORY_H_
