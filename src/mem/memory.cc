#include "src/mem/memory.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/obs/trace.h"

namespace snicsim {

MemoryParams MemoryParams::Host() {
  MemoryParams p;
  p.channels = 8;
  p.banks_per_channel = 16;
  p.bank_read_service = FromNanos(16);
  p.bank_write_service = FromNanos(36);
  p.cmd_read_service = FromNanos(3.0);
  p.cmd_write_service = FromNanos(3.2);
  p.channel_bandwidth = Bandwidth::GBps(23.46);  // DDR4-2933
  p.dram_latency = FromNanos(85);
  p.has_llc = true;
  p.ddio = true;
  return p;
}

MemoryParams MemoryParams::HostNoDdio() {
  MemoryParams p = Host();
  p.ddio = false;
  // Without DDIO the LLC still exists for CPU traffic but inbound NIC writes
  // are forced to DRAM (non-allocating); we model the I/O path as LLC-less.
  p.has_llc = false;
  return p;
}

MemoryParams MemoryParams::Soc() {
  MemoryParams p;
  p.channels = 1;
  p.banks_per_channel = 16;
  p.bank_read_service = FromNanos(20);
  p.bank_write_service = FromNanos(44);
  p.cmd_read_service = FromNanos(11.8);
  p.cmd_write_service = FromNanos(12.8);
  p.channel_bandwidth = Bandwidth::GBps(25.6);  // 64-bit DDR4 @ 3200 MT/s
  p.dram_latency = FromNanos(110);
  p.has_llc = false;
  p.ddio = false;
  return p;
}

MemorySubsystem::MemorySubsystem(Simulator* sim, std::string name, const MemoryParams& params)
    : sim_(sim), name_(std::move(name)), params_(params) {
  SNIC_CHECK_GT(params_.channels, 0);
  SNIC_CHECK_GT(params_.banks_per_channel, 0);
  SNIC_CHECK_GT(params_.row_bytes, 0u);
  for (int c = 0; c < params_.channels; ++c) {
    cmd_.push_back(std::make_unique<BusyServer>(sim, name_ + ".cmd" + std::to_string(c)));
    data_bus_.push_back(std::make_unique<BusyServer>(sim, name_ + ".bus" + std::to_string(c)));
    for (int b = 0; b < params_.banks_per_channel; ++b) {
      banks_.push_back(std::make_unique<BusyServer>(
          sim, name_ + ".bank" + std::to_string(c) + "." + std::to_string(b)));
    }
  }
  if (params_.has_llc) {
    llc_ = std::make_unique<MultiServer>(sim, name_ + ".llc", params_.llc_slices);
    llc_tags_.assign(std::max<uint64_t>(1, params_.llc_bytes / params_.row_bytes),
                     ~uint64_t{0});
  }
}

bool MemorySubsystem::LlcLookup(uint64_t row, bool is_write) {
  if (!params_.has_llc) {
    return false;
  }
  const size_t set = static_cast<size_t>(row % llc_tags_.size());
  const bool hit = llc_tags_[set] == row;
  if (hit) {
    ++llc_hits_;
    return true;
  }
  ++llc_misses_;
  // DDIO write-allocate: an inbound write installs the line and is absorbed
  // by the cache, never waiting on DRAM. Reads install on miss (the refill
  // cost is paid via the DRAM path below).
  if (is_write && params_.ddio) {
    llc_tags_[set] = row;
    return true;
  }
  llc_tags_[set] = row;
  return false;
}

SimTime MemorySubsystem::AccessDram(SimTime ready, uint64_t row, bool is_write) {
  ++dram_accesses_;
  const int channel = static_cast<int>(row % static_cast<uint64_t>(params_.channels));
  const uint64_t bank_index =
      (row / static_cast<uint64_t>(params_.channels)) %
      static_cast<uint64_t>(params_.banks_per_channel);
  BusyServer& cmd = *cmd_[static_cast<size_t>(channel)];
  BusyServer& bank = *banks_[static_cast<size_t>(channel) *
                                static_cast<size_t>(params_.banks_per_channel) +
                            bank_index];
  const SimTime cmd_done = cmd.EnqueueAt(
      ready, is_write ? params_.cmd_write_service : params_.cmd_read_service);
  const SimTime bank_done = bank.EnqueueAt(
      cmd_done, is_write ? params_.bank_write_service : params_.bank_read_service);
  return bank_done + params_.dram_latency;
}

SimTime MemorySubsystem::AccessSmall(SimTime ready, uint64_t addr, bool is_write) {
  const uint64_t row = addr / params_.row_bytes;
  if (LlcLookup(row, is_write)) {
    return llc_->EnqueueAt(ready, params_.llc_service) + params_.llc_latency;
  }
  return AccessDram(ready, row, is_write);
}

SimTime MemorySubsystem::AccessBulk(SimTime ready, uint64_t addr, uint32_t len,
                                    bool is_write) {
  // A long DMA burst streams rows across channels; the channel data buses
  // are the constraint, with one activation charged per row touched.
  const uint64_t first_row = addr / params_.row_bytes;
  const uint64_t last_row = (addr + len - 1) / params_.row_bytes;
  SimTime done = ready;
  for (uint64_t row = first_row; row <= last_row; ++row) {
    if (LlcLookup(row, is_write)) {
      const SimTime t =
          llc_->EnqueueAt(ready, params_.llc_service) + params_.llc_latency;
      done = std::max(done, t);
      continue;
    }
    ++dram_accesses_;
    const int channel = static_cast<int>(row % static_cast<uint64_t>(params_.channels));
    const uint64_t row_start = std::max(addr, row * params_.row_bytes);
    const uint64_t row_end = std::min<uint64_t>(addr + len, (row + 1) * params_.row_bytes);
    const SimTime stream =
        params_.channel_bandwidth.TransferTime(row_end - row_start);
    const SimTime t =
        data_bus_[static_cast<size_t>(channel)]->EnqueueAt(ready, stream) +
        params_.dram_latency;
    done = std::max(done, t);
  }
  return done;
}

SimTime MemorySubsystem::Access(SimTime ready, uint64_t addr, uint32_t len, bool is_write,
                                Simulator::Callback cb, uint64_t req_id) {
  ready = std::max(ready, sim_->now());
  const SimTime done = (len <= params_.bulk_threshold)
                           ? AccessSmall(ready, addr, is_write)
                           : AccessBulk(ready, addr, len, is_write);
  if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
    tr->Span(name_, is_write ? "write" : "read", ready, done, req_id,
             is_write ? TraceCat::kAsync : TraceCat::kPhase);
  }
  if (cb != nullptr) {
    sim_->At(done, std::move(cb));
  }
  return done;
}

void MemorySubsystem::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register(name_, "llc_hits", "count", "accesses absorbed by the LLC",
                [this] { return static_cast<double>(llc_hits_); });
  reg->Register(name_, "llc_misses", "count", "accesses that missed the LLC",
                [this] { return static_cast<double>(llc_misses_); });
  reg->Register(name_, "llc_hit_ratio", "fraction",
                "llc_hits / (llc_hits + llc_misses); 0 when the LLC is absent", [this] {
                  const uint64_t total = llc_hits_ + llc_misses_;
                  return total > 0 ? static_cast<double>(llc_hits_) /
                                         static_cast<double>(total)
                                   : 0.0;
                });
  reg->Register(name_, "dram_accesses", "count", "accesses served by DRAM",
                [this] { return static_cast<double>(dram_accesses_); });
}

}  // namespace snicsim
