file(REMOVE_RECURSE
  "CMakeFiles/snicsim_mem.dir/memory.cc.o"
  "CMakeFiles/snicsim_mem.dir/memory.cc.o.d"
  "libsnicsim_mem.a"
  "libsnicsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
