# Empty dependencies file for snicsim_mem.
# This may be replaced when dependencies are built.
