file(REMOVE_RECURSE
  "libsnicsim_mem.a"
)
