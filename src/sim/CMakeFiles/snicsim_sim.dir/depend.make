# Empty dependencies file for snicsim_sim.
# This may be replaced when dependencies are built.
