file(REMOVE_RECURSE
  "libsnicsim_sim.a"
)
