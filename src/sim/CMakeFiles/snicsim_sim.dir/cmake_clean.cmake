file(REMOVE_RECURSE
  "CMakeFiles/snicsim_sim.dir/parallel.cc.o"
  "CMakeFiles/snicsim_sim.dir/parallel.cc.o.d"
  "CMakeFiles/snicsim_sim.dir/timer_wheel.cc.o"
  "CMakeFiles/snicsim_sim.dir/timer_wheel.cc.o.d"
  "libsnicsim_sim.a"
  "libsnicsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
