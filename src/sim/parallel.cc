#include "src/sim/parallel.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/log.h"

namespace snicsim {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ParallelSimulator::ParallelSimulator(int domains, SimTime lookahead, int threads)
    : lookahead_(lookahead),
      threads_(std::max(1, threads)),
      outboxes_(static_cast<size_t>(domains)),
      merge_digest_(kFnvOffset) {
  SNIC_CHECK_GT(domains, 0);
  SNIC_CHECK_GT(lookahead, 0);
  sims_.reserve(static_cast<size_t>(domains));
  for (int d = 0; d < domains; ++d) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  if (threads_ > 1) {
    workers_.reserve(static_cast<size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ParallelSimulator::~ParallelSimulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      ++round_gen_;
    }
    round_cv_.notify_all();
    for (std::thread& w : workers_) {
      w.join();
    }
  }
}

void ParallelSimulator::Post(DomainId src, DomainId dst, SimTime t, SimCallback cb) {
  SNIC_CHECK_GE(src, 0);
  SNIC_CHECK_LT(src, domains());
  SNIC_CHECK_GE(dst, 0);
  SNIC_CHECK_LT(dst, domains());
  SNIC_CHECK(cb != nullptr);
  // The conservative contract: a cross-domain event must land at least one
  // lookahead past the sender's clock, which places it at or beyond the
  // current horizon — no domain can have run past it yet.
  SNIC_CHECK_GE(t, sims_[static_cast<size_t>(src)]->now() + lookahead_);
  Outbox& out = outboxes_[static_cast<size_t>(src)];
  out.events.push_back(RemoteEvent{t, src, dst, out.next_seq++, std::move(cb)});
}

uint64_t ParallelSimulator::processed() const {
  uint64_t total = 0;
  for (const auto& s : sims_) {
    total += s->processed();
  }
  return total;
}

void ParallelSimulator::Run() {
  for (;;) {
    SimTime m = Simulator::kNoEvent;
    for (const auto& s : sims_) {
      m = std::min(m, s->next_event_time());
    }
    if (m == Simulator::kNoEvent) {
      // Outboxes are drained at every barrier, so an empty heap set means a
      // fully quiescent rack.
      return;
    }
    RunRound(m + lookahead_);
    ++rounds_;
    MergeOutboxes();
  }
}

void ParallelSimulator::RunRound(SimTime horizon) {
  if (workers_.empty()) {
    for (const auto& s : sims_) {
      s->RunBefore(horizon);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    round_horizon_ = horizon;
    done_ = 0;
    next_domain_.store(0, std::memory_order_relaxed);
    ++round_gen_;
  }
  round_cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return done_ == threads_; });
  // The wait above is the barrier: every outbox append happened-before this
  // point, so MergeOutboxes on this thread reads them race-free.
}

void ParallelSimulator::RunDomainRange(SimTime horizon) {
  const int n = domains();
  for (;;) {
    const int d = next_domain_.fetch_add(1, std::memory_order_relaxed);
    if (d >= n) {
      return;
    }
    sims_[static_cast<size_t>(d)]->RunBefore(horizon);
  }
}

void ParallelSimulator::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lk(mu_);
      round_cv_.wait(lk, [this, seen] { return stop_ || round_gen_ != seen; });
      if (stop_) {
        return;
      }
      seen = round_gen_;
      horizon = round_horizon_;
    }
    RunDomainRange(horizon);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++done_;
    }
    done_cv_.notify_one();
  }
}

void ParallelSimulator::MergeOutboxes() {
  // Gather every buffered cross-domain event and order them by
  // (time, src, seq) — a strict total order (seq never repeats within a
  // source), so delivery order, and with it every destination's DES
  // tie-break sequence, is independent of thread schedule.
  std::vector<RemoteEvent> batch;
  for (Outbox& out : outboxes_) {
    for (RemoteEvent& ev : out.events) {
      batch.push_back(std::move(ev));
    }
    out.events.clear();
  }
  if (batch.empty()) {
    return;
  }
  std::sort(batch.begin(), batch.end(),
            [](const RemoteEvent& a, const RemoteEvent& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              if (a.src != b.src) {
                return a.src < b.src;
              }
              return a.seq < b.seq;
            });
  for (RemoteEvent& ev : batch) {
    merge_digest_ = FnvMix(merge_digest_, static_cast<uint64_t>(ev.time));
    merge_digest_ = FnvMix(merge_digest_, static_cast<uint64_t>(ev.src));
    merge_digest_ = FnvMix(merge_digest_, static_cast<uint64_t>(ev.dst));
    merge_digest_ = FnvMix(merge_digest_, ev.seq);
    sims_[static_cast<size_t>(ev.dst)]->At(ev.time, std::move(ev.cb));
    ++merged_;
  }
}

void ParallelSimulator::RegisterMetrics(MetricsRegistry* reg,
                                        const std::string& instance) {
  reg->Register(instance, "domains", "count", "event domains in this rack",
                [this] { return static_cast<double>(domains()); });
  reg->Register(instance, "rounds", "count",
                "conservative sync rounds (horizon advances)",
                [this] { return static_cast<double>(rounds_); });
  reg->Register(instance, "merged_events", "count",
                "cross-domain events delivered through the barrier merge",
                [this] { return static_cast<double>(merged_); });
  reg->Register(instance, "lookahead_us", "us", "conservative lookahead bound",
                [this] { return ToMicros(lookahead_); });
}

}  // namespace snicsim
