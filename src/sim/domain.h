// Domain identity for the parallel DES core.
//
// A *domain* is the unit of sequential execution: one server machine's whole
// component stack (host CPU, SoC, NIC, local PCIe tree) shares a domain and
// therefore one Simulator, one event heap, and one thread at a time. Fabric
// links are the only edges that cross domains, and every such edge carries at
// least the configured lookahead of latency — that is the conservative-
// synchronization contract ParallelSimulator::Post() enforces.
//
// Thread-safety invariant (enforced by ParallelSimulator's round barrier):
// all state reachable from a domain's events — its Simulator, servers, RNG
// streams, fault-injector, slab pools — is touched only by the thread
// currently running that domain. Cross-domain closures may carry pointers
// from their source domain, but must treat them as opaque handles until the
// closure has travelled back to the owning domain.
#ifndef SRC_SIM_DOMAIN_H_
#define SRC_SIM_DOMAIN_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/sim/callback.h"

namespace snicsim {

// Dense domain index within one ParallelSimulator, assigned in construction
// order. The index participates in the deterministic cross-domain merge
// order, so domain numbering is part of the determinism contract: renumber
// domains and same-timestamp cross-domain ties may legally reorder.
using DomainId = int32_t;

// A cross-domain event buffered in its source domain's outbox during a
// round. `seq` is the per-source emission counter; the merge at the round
// barrier orders events by (time, src, seq), which is a strict total order
// because `seq` never repeats within one source domain.
struct RemoteEvent {
  SimTime time;
  DomainId src;
  DomainId dst;
  uint64_t seq;
  SimCallback cb;
};

}  // namespace snicsim

#endif  // SRC_SIM_DOMAIN_H_
