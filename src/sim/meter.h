// Measurement window accounting.
//
// Benchmarks warm the system up, then measure a steady-state window. A Meter
// counts operations/bytes and records latencies only inside its window, then
// converts them to reqs/s and Gbps, mirroring how the paper's harness
// reports peak throughput.
#ifndef SRC_SIM_METER_H_
#define SRC_SIM_METER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/histogram.h"
#include "src/common/log.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace snicsim {

class Meter {
 public:
  explicit Meter(Simulator* sim) : sim_(sim) {}

  // Measures [start, end). end == 0 means "until asked".
  void SetWindow(SimTime start, SimTime end) {
    SNIC_CHECK_GE(end == 0 ? start : end, start);
    start_ = start;
    end_ = end;
  }

  bool InWindow() const {
    const SimTime t = sim_->now();
    return t >= start_ && (end_ == 0 || t < end_);
  }

  // Records a completed op. Pass a latency to feed the histogram; omit it
  // (std::nullopt) for throughput-only accounting. The optional replaces the
  // old `latency = -1` sentinel, which would silently stop working if
  // SimTime ever became unsigned.
  void RecordOp(uint64_t bytes, std::optional<SimTime> latency = std::nullopt) {
    if (!InWindow()) {
      return;
    }
    ++ops_;
    bytes_ += bytes;
    if (latency.has_value()) {
      SNIC_CHECK_GE(*latency, 0);
      latency_.Record(*latency);
    }
  }

  uint64_t ops() const { return ops_; }
  uint64_t bytes() const { return bytes_; }
  const Histogram& latency() const { return latency_; }

  SimTime WindowLength() const {
    const SimTime end = end_ == 0 ? sim_->now() : end_;
    return end > start_ ? end - start_ : 0;
  }

  double OpsPerSec() const {
    const SimTime w = WindowLength();
    return w <= 0 ? 0.0 : static_cast<double>(ops_) / ToSeconds(w);
  }
  double MReqsPerSec() const { return OpsPerSec() / 1e6; }
  double Gbps() const {
    const SimTime w = WindowLength();
    return w <= 0 ? 0.0 : static_cast<double>(bytes_) * 8.0 / 1e9 / ToSeconds(w);
  }

  void Reset() {
    ops_ = 0;
    bytes_ = 0;
    latency_.Reset();
  }

 private:
  Simulator* sim_;
  SimTime start_ = 0;
  SimTime end_ = 0;
  uint64_t ops_ = 0;
  uint64_t bytes_ = 0;
  Histogram latency_;
};

}  // namespace snicsim

#endif  // SRC_SIM_METER_H_
