// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same simulated time
// fire in scheduling order, making every run bit-reproducible regardless of
// heap internals. Callbacks are type-erased closures; components schedule
// follow-up work from inside callbacks.
//
// Hot-path layout: a 4-ary min-heap orders 16-byte POD handles
// (time, seq, slot) while the closures themselves live in a slab of stable
// slots, constructed once at schedule time and invoked in place at
// dispatch. Sift operations therefore shuffle PODs instead of type-erased
// closures (at half the depth of a binary heap), closures up to
// SimCallback::kInlineBytes never touch the allocator, and freed slots are
// recycled through a free list, so a steady-state experiment runs with no
// per-event allocation at all.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/sim/callback.h"

namespace snicsim {

class Tracer;  // src/obs/trace.h — attached by the harness when tracing is on
class TimerWheel;  // src/sim/timer_wheel.h — attached for cancel-heavy clocks
namespace fault {
class FaultInjector;  // src/fault/injector.h — attached when a plan is set
}

// Thread-safety: none. A Simulator and everything reachable from its events
// form one *domain* (src/sim/domain.h) that must be driven by at most one
// thread at a time. ParallelSimulator (src/sim/parallel.h) runs many
// Simulators concurrently but hands each one to a single worker per round —
// that barrier discipline, not locking here, is what keeps parallel runs
// both safe and byte-identical to serial ones.
class Simulator {
 public:
  using Callback = SimCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` at absolute time `t` (>= now). `cb` must be non-empty.
  void At(SimTime t, Callback cb) {
    SNIC_CHECK_GE(t, now_);
    SNIC_CHECK(cb != nullptr);
    if (next_seq_ >= kSeqRenumberAt) {
      RenumberSeqs();
    }
    const uint32_t slot = AllocSlot();
    SlotAt(slot) = std::move(cb);
    heap_.push_back(EventHandle{t, next_seq_++, slot});
    SiftUp(heap_.size() - 1);
  }

  // Schedules `cb` after `delay`.
  void In(SimTime delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  // Runs until the event queue drains.
  void Run() {
    while (!heap_.empty()) {
      Step();
    }
  }

  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t) {
    while (!heap_.empty() && heap_.front().time <= t) {
      Step();
    }
    SNIC_CHECK_GE(t, now_);
    now_ = t;
  }

  void RunFor(SimTime d) { RunUntil(now_ + d); }

  // Runs all events with time strictly before `t`, then advances the clock
  // to exactly t. The parallel core's round primitive: `t` is the
  // conservative horizon, and the exclusive bound is what makes it safe —
  // every cross-domain event generated this round lands at >= t (the
  // lookahead contract, src/sim/parallel.h), so an event at exactly t may
  // still be merged in from another domain and must not have been passed.
  void RunBefore(SimTime t) {
    while (!heap_.empty() && heap_.front().time < t) {
      Step();
    }
    SNIC_CHECK_GE(t, now_);
    now_ = t;
  }

  // Sentinel for next_event_time() on an empty queue: later than any
  // schedulable time.
  static constexpr SimTime kNoEvent = INT64_MAX;

  // Earliest pending event time (kNoEvent when idle). The horizon
  // computation reads this for every domain between rounds.
  SimTime next_event_time() const {
    return heap_.empty() ? kNoEvent : heap_.front().time;
  }

  bool empty() const { return heap_.empty(); }
  uint64_t processed() const { return processed_; }

  // Nullable observability hook. Components emit trace events iff non-null;
  // the single pointer test is the entire disabled-mode overhead.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* t) { tracer_ = t; }

  // Nullable fault-injection hook, same pattern as the tracer: components
  // consult the injector iff non-null, and with it unset no fault code path
  // may schedule events or draw randomness — runs stay bit-identical to a
  // fault-free build.
  fault::FaultInjector* faults() const { return faults_; }
  void set_faults(fault::FaultInjector* f) { faults_ = f; }

  // Nullable timer-wheel hook, same pattern again: cancellation-heavy
  // clocks (retransmit timeouts, governor epochs) arm through the wheel iff
  // one is attached and fall back to plain In() otherwise. The wheel fires
  // at exact deadlines with heap-equivalent timer ordering
  // (src/sim/timer_wheel.h), so attaching one may only perturb a run
  // through the DES tie-break seq of same-picosecond cross-kind ties.
  TimerWheel* timer_wheel() const { return timer_wheel_; }
  void set_timer_wheel(TimerWheel* w) { timer_wheel_ = w; }

 private:
  friend class SimulatorTestPeer;  // tests fast-forward next_seq_ to the
                                   // renumber threshold

  // POD handle the heap orders; the closure stays put in its slot. 16 bytes
  // so a 64-byte cache line holds four of them — one 4-ary heap node.
  struct EventHandle {
    SimTime time;
    uint32_t seq;
    uint32_t slot;
  };

  // Min-heap order on (time, seq). seq is a 32-bit counter: the subtraction
  // compares circular distance, which is exact as long as any two live seqs
  // are within 2^31 of each other. RenumberSeqs() re-bases every pending
  // event before the counter can reach 2^31, so the window invariant holds
  // for any schedule count and any event lifetime (a far-future timer stays
  // ordered against events scheduled billions of At() calls later).
  static bool Before(const EventHandle& a, const EventHandle& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return static_cast<int32_t>(a.seq - b.seq) < 0;
  }

  // Compacts pending seqs to [0, heap_.size()). Invoked from At() whenever
  // next_seq_ reaches 2^31, so between renumbers seqs span at most
  // [0, 2^31) — within the circular-comparison window. Amortized cost: one
  // O(n log n) sort per ~2^31 schedules, i.e. effectively free.
  void RenumberSeqs() {
    // Within the window, Before is a strict total order, so sorting yields
    // the exact dispatch order; a sorted array is also a valid d-ary
    // min-heap, so the heap invariant is restored for free.
    std::sort(heap_.begin(), heap_.end(), Before);
    for (size_t i = 0; i < heap_.size(); ++i) {
      heap_[i].seq = static_cast<uint32_t>(i);
    }
    next_seq_ = static_cast<uint32_t>(heap_.size());
  }

  static constexpr uint32_t kSeqRenumberAt = 1u << 31;

  // Hand-rolled 4-ary sift operations: half the levels of a binary heap, so
  // a pop at figure-bench queue depths touches half as many cache lines,
  // and all four children of a node share one line.
  void SiftUp(size_t i) {
    const EventHandle v = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!Before(v, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = v;
  }

  // Removes heap_[0], restoring the heap over the remaining elements.
  void PopRoot() {
    const EventHandle last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n == 0) {
      return;
    }
    size_t i = 0;
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      size_t best = first;
      const size_t limit = std::min(first + 4, n);
      for (size_t c = first + 1; c < limit; ++c) {
        if (Before(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!Before(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;  // slots per chunk

  Callback& SlotAt(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  uint32_t AllocSlot() {
    if (free_slots_.empty()) {
      // Chunked growth keeps existing slots at stable addresses: a callback
      // is constructed in place once and never relocated by later growth.
      const uint32_t base = static_cast<uint32_t>(chunks_.size()) << kChunkShift;
      chunks_.push_back(std::make_unique<Callback[]>(kChunkSize));
      free_slots_.reserve(free_slots_.size() + kChunkSize);
      for (uint32_t i = kChunkSize; i > 0; --i) {
        free_slots_.push_back(base + i - 1);
      }
    }
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }

  void Step() {
    const EventHandle ev = heap_.front();
    PopRoot();
    SNIC_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ++processed_;
    // The closure runs in place in its slot; the slot returns to the free
    // list only afterwards, so reentrant scheduling from inside the
    // callback can never overwrite a running closure. Slot storage is
    // chunk-stable, so growth during the callback cannot relocate it.
    SlotAt(ev.slot).CallOnce();
    free_slots_.push_back(ev.slot);
  }

  std::vector<EventHandle> heap_;
  std::vector<std::unique_ptr<Callback[]>> chunks_;
  std::vector<uint32_t> free_slots_;
  Tracer* tracer_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
  TimerWheel* timer_wheel_ = nullptr;
  SimTime now_ = 0;
  uint32_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace snicsim

#endif  // SRC_SIM_SIMULATOR_H_
