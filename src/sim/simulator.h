// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same simulated time
// fire in scheduling order, making every run bit-reproducible regardless of
// heap internals. Callbacks are type-erased closures; components schedule
// follow-up work from inside callbacks.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/log.h"
#include "src/common/units.h"

namespace snicsim {

class Tracer;  // src/obs/trace.h — attached by the harness when tracing is on

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` at absolute time `t` (>= now).
  void At(SimTime t, Callback cb) {
    SNIC_CHECK_GE(t, now_);
    queue_.push(Event{t, next_seq_++, std::move(cb)});
  }

  // Schedules `cb` after `delay`.
  void In(SimTime delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  // Runs until the event queue drains.
  void Run() {
    while (!queue_.empty()) {
      Step();
    }
  }

  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) {
      Step();
    }
    SNIC_CHECK_GE(t, now_);
    now_ = t;
  }

  void RunFor(SimTime d) { RunUntil(now_ + d); }

  bool empty() const { return queue_.empty(); }
  uint64_t processed() const { return processed_; }

  // Nullable observability hook. Components emit trace events iff non-null;
  // the single pointer test is the entire disabled-mode overhead.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* t) { tracer_ = t; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void Step() {
    // The callback is moved out before popping so that it may schedule new
    // events (which mutates the queue) safely.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    SNIC_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Tracer* tracer_ = nullptr;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace snicsim

#endif  // SRC_SIM_SIMULATOR_H_
