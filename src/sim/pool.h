// Slab allocator for per-event records (WRs, packets, in-flight ops).
//
// The event core already keeps its own callbacks in chunk-stable slabs
// (src/sim/simulator.h); this pool extends the same discipline to the
// workload-side records that ride along with events. Records are
// default-constructed once per chunk, recycled through a free list, and
// never relocated, so steady-state traffic allocates nothing and pointers
// stay valid for the record's whole lifetime.
//
// Thread-safety: none — a SlabPool must be owned by exactly one domain and
// touched only from that domain's events (the same affinity rule as every
// other piece of domain state, see src/sim/domain.h). Records that cross
// domains inside closures are opaque until they return home; Alloc and Free
// for one record therefore always run on the owning domain's thread.
#ifndef SRC_SIM_POOL_H_
#define SRC_SIM_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/log.h"

namespace snicsim {

template <typename T>
class SlabPool {
 public:
  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Hands out a recycled record (state is whatever the previous user left —
  // callers reinitialize the fields they use). O(1) amortized; allocates
  // only when the free list is empty, one chunk at a time.
  T* Alloc() {
    if (free_.empty()) {
      const size_t base = chunks_.size() * kChunkSize;
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
      free_.reserve(free_.size() + kChunkSize);
      for (size_t i = kChunkSize; i > 0; --i) {
        free_.push_back(&chunks_.back()[i - 1]);
      }
      capacity_ = base + kChunkSize;
    }
    T* out = free_.back();
    free_.pop_back();
    ++live_;
    return out;
  }

  // Returns `rec` to the free list. The pointer must have come from this
  // pool's Alloc and must not be freed twice (not checked — records carry
  // no per-slot header by design, they are exactly sizeof(T)).
  void Free(T* rec) {
    SNIC_CHECK_GT(live_, 0u);
    --live_;
    free_.push_back(rec);
  }

  size_t live() const { return live_; }
  size_t capacity() const { return capacity_; }

 private:
  static constexpr size_t kChunkSize = 256;

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
  size_t live_ = 0;
  size_t capacity_ = 0;
};

}  // namespace snicsim

#endif  // SRC_SIM_POOL_H_
