#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace snicsim {

TimerWheel::TimerWheel(Simulator* sim, SimTime tick) : sim_(sim), tick_(tick) {
  SNIC_CHECK(sim != nullptr);
  SNIC_CHECK_GT(tick, 0);
  for (int l = 0; l < kLevels; ++l) {
    levels_[l].resize(kSlots);
  }
}

uint32_t TimerWheel::AllocRecord() {
  if (free_.empty()) {
    records_.emplace_back();
    free_.push_back(static_cast<uint32_t>(records_.size() - 1));
  }
  const uint32_t idx = free_.back();
  free_.pop_back();
  ++live_;
  return idx;
}

void TimerWheel::FreeRecord(uint32_t idx) {
  Timer& t = records_[idx];
  t.state = State::kFree;
  t.cancelled = false;
  t.cb = nullptr;
  ++t.gen;  // invalidates every outstanding TimerId for this record
  --live_;
  free_.push_back(idx);
}

TimerWheel::TimerId TimerWheel::Schedule(SimTime deadline, SimCallback cb) {
  SNIC_CHECK_GE(deadline, sim_->now());
  SNIC_CHECK_GE(deadline, 0);
  SNIC_CHECK(cb != nullptr);
  const uint32_t idx = AllocRecord();
  Timer& t = records_[idx];
  t.deadline = deadline;
  t.order = next_order_++;
  t.cb = std::move(cb);
  ++scheduled_;
  Place(idx, sim_->now());
  return (static_cast<TimerId>(t.gen) << 32) | idx;
}

bool TimerWheel::Cancel(TimerId id) {
  const uint32_t idx = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (id == kNoTimer || idx >= records_.size()) {
    return false;
  }
  Timer& t = records_[idx];
  if (t.gen != gen || t.state == State::kFree || t.cancelled) {
    return false;
  }
  // O(1): just flag it. A kQueued record is reclaimed the next time its
  // bucket is scanned — without ever touching the Simulator heap, which is
  // the whole point. A kReleased record already has its exact-time event in
  // the heap; that event no-ops and reclaims.
  t.cancelled = true;
  ++cancelled_;
  return true;
}

void TimerWheel::Place(uint32_t idx, SimTime now) {
  const Timer& t = records_[idx];
  const SimTime d = t.deadline;
  // Coarsest level whose slot for `d` has not started yet. SlotStart is
  // non-increasing in the level, so scanning from the top finds the max.
  int level = -1;
  for (int l = kLevels - 1; l >= 0; --l) {
    if (SlotStart(l, d) > now) {
      level = l;
      break;
    }
  }
  SimTime at;
  if (level >= 0) {
    at = SlotStart(level, d);
  } else {
    // The innermost slot already began: park in the level-0 bucket and run
    // its sentinel at `now`. Routing even this case through the bucket (not
    // straight to sim->At) is what keeps equal-deadline timers in one
    // sorted release run — see the ordering proof sketch in the header.
    level = 0;
    at = now;
  }
  Bucket& b = levels_[level][(d / Width(level)) % kSlots];
  b.timers.push_back(idx);
  records_[idx].state = State::kQueued;
  if (b.next_sentinel == kNoSentinel || at < b.next_sentinel) {
    ArmSentinel(level, static_cast<int>((d / Width(level)) % kSlots), at);
  }
}

void TimerWheel::ArmSentinel(int level, int bucket_index, SimTime at) {
  levels_[level][bucket_index].next_sentinel = at;
  sim_->At(at, [this, level, bucket_index, at] {
    // A sentinel superseded by an earlier one (or re-armed at the same time
    // by a bucket refill) finds a mismatched stamp and dies.
    if (levels_[level][bucket_index].next_sentinel != at) {
      return;
    }
    ++sentinels_;
    Process(level, bucket_index, at);
  });
}

void TimerWheel::Process(int level, int bucket_index, SimTime at) {
  Bucket& b = levels_[level][bucket_index];
  b.next_sentinel = kNoSentinel;
  // Partition in place: timers whose slot has started are due; collisions
  // from later wheel revolutions stay queued.
  std::vector<uint32_t> due;
  std::vector<uint32_t> keep;
  due.reserve(b.timers.size());
  for (const uint32_t idx : b.timers) {
    Timer& t = records_[idx];
    if (t.cancelled) {
      FreeRecord(idx);  // the lazy half of Cancel
    } else if (SlotStart(level, t.deadline) <= at) {
      due.push_back(idx);
    } else {
      keep.push_back(idx);
    }
  }
  b.timers.swap(keep);
  if (!b.timers.empty()) {
    SimTime earliest = SlotStart(level, records_[b.timers[0]].deadline);
    for (const uint32_t idx : b.timers) {
      earliest = std::min(earliest, SlotStart(level, records_[idx].deadline));
    }
    ArmSentinel(level, bucket_index, earliest);
  }
  if (level > 0) {
    // Cascade: re-place as seen from now; strictly descends because this
    // level's slot start is no longer in the future.
    cascades_ += due.size();
    for (const uint32_t idx : due) {
      Place(idx, at);
    }
    return;
  }
  // Level 0: release in (deadline, arm order) — byte-for-byte the firing
  // order the heap path produces, where arm order == DES seq order.
  std::sort(due.begin(), due.end(), [this](uint32_t a, uint32_t c) {
    const Timer& ta = records_[a];
    const Timer& tc = records_[c];
    if (ta.deadline != tc.deadline) {
      return ta.deadline < tc.deadline;
    }
    return ta.order < tc.order;
  });
  for (const uint32_t idx : due) {
    Release(idx);
  }
}

void TimerWheel::Release(uint32_t idx) {
  Timer& t = records_[idx];
  t.state = State::kReleased;
  const uint32_t gen = t.gen;
  sim_->At(t.deadline, [this, idx, gen] {
    Timer& rec = records_[idx];
    SNIC_CHECK(rec.gen == gen && rec.state == State::kReleased);
    if (rec.cancelled) {
      FreeRecord(idx);
      return;
    }
    // Move the closure out before reclaiming so the callback may itself
    // Schedule into this wheel (and land in this very record).
    SimCallback cb = std::move(rec.cb);
    FreeRecord(idx);
    ++fired_;
    cb.CallOnce();
  });
}

}  // namespace snicsim
