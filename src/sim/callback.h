// Move-only type-erased closures with a small-buffer fast path.
//
// The DES kernel schedules millions of short-lived closures per experiment.
// std::function is the wrong vehicle for that hot path: its copyability
// requirement forbids move-only captures, and its small-buffer window (16
// bytes on libstdc++) forces a heap allocation for nearly every capture
// list in this codebase. SmallFunction stores closures up to kInlineBytes
// directly inline — the common case allocates nothing — and falls back to a
// single heap cell only for oversized captures. SimCallback, the event
// type, is SmallFunction<void()>; the per-request completion chains
// (DmaCallback, ResponseCallback, ...) reuse the template with their own
// signatures so one request's closure chain can thread a move-only release
// token end to end.
//
// Thread-safety: a SmallFunction is a plain value — no shared state, no
// internal synchronization. Cross-domain closures handed to
// ParallelSimulator::Post are moved between threads, which is safe because
// ownership transfers whole at the round barrier (src/sim/domain.h); the
// captured pointers themselves remain domain-confined by that contract.
#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace snicsim {

template <typename Sig>
class SmallFunction;  // only the R(Args...) specialization exists

template <typename R, typename... Args>
class SmallFunction<R(Args...)> {
 public:
  // Covers every capture list on the event hot path (a handful of pointers
  // plus a few values); bigger closures still work via the heap fallback.
  static constexpr size_t kInlineBytes = 64;

  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT: drop-in for std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT: implicit, drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &Inline<Fn>::kVTable;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &Boxed<Fn>::kVTable;
    }
  }

  SmallFunction(SmallFunction&& o) noexcept { MoveFrom(std::move(o)); }
  SmallFunction& operator=(SmallFunction&& o) noexcept {
    if (this != &o) {
      Reset();
      MoveFrom(std::move(o));
    }
    return *this;
  }
  SmallFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }
  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;
  ~SmallFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }
  friend bool operator==(const SmallFunction& f, std::nullptr_t) {
    return f.vtable_ == nullptr;
  }

  // Const like std::function's operator(): closures are routinely invoked
  // through const captures. The target lives in mutable storage.
  R operator()(Args... args) const {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  // Invokes the target and leaves *this empty. The dispatch fast path: one
  // indirect call does the work of move-out + invoke + destroy.
  R CallOnce(Args... args) {
    const VTable* vt = vtable_;
    vtable_ = nullptr;
    return vt->invoke_destroy(storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    // Invokes the target, then destroys it (see CallOnce).
    R (*invoke_destroy)(void* self, Args&&... args);
    // Move-constructs *dst from *src and destroys *src. nullptr marks a
    // trivially relocatable representation: a plain memcpy of the storage
    // suffices, no indirect call needed.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  struct Inline {
    static Fn* Get(void* p) { return std::launder(reinterpret_cast<Fn*>(p)); }
    static R Invoke(void* self, Args&&... args) {
      return (*Get(self))(std::forward<Args>(args)...);
    }
    static R InvokeDestroy(void* self, Args&&... args) {
      // Scope guard, not a trailing dtor call: the caller already cleared
      // its vtable pointer, so if the target throws, this is the only place
      // left that can release the capture.
      struct Guard {
        Fn* fn;
        ~Guard() { fn->~Fn(); }
      } guard{Get(self)};
      return (*guard.fn)(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*Get(src)));
      Get(src)->~Fn();
    }
    static void Destroy(void* self) { Get(self)->~Fn(); }
    static constexpr VTable kVTable{
        &Invoke, &InvokeDestroy,
        std::is_trivially_copyable_v<Fn> ? nullptr : &Relocate, &Destroy};
  };

  template <typename Fn>
  struct Boxed {
    static Fn* Get(void* p) { return *std::launder(reinterpret_cast<Fn**>(p)); }
    static R Invoke(void* self, Args&&... args) {
      return (*Get(self))(std::forward<Args>(args)...);
    }
    static R InvokeDestroy(void* self, Args&&... args) {
      // Scope guard so a throwing target still frees the heap cell (see the
      // Inline counterpart).
      struct Guard {
        Fn* fn;
        ~Guard() { delete fn; }
      } guard{Get(self)};
      return (*guard.fn)(std::forward<Args>(args)...);
    }
    static void Destroy(void* self) { delete Get(self); }
    // Relocating a box is copying one pointer — always trivial.
    static constexpr VTable kVTable{&Invoke, &InvokeDestroy, nullptr, &Destroy};
  };

  void MoveFrom(SmallFunction&& o) noexcept {
    vtable_ = o.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->relocate == nullptr) {
        // Fixed-size copy: compiles to a few vector moves, no indirect call.
        // Bytes past the capture are indeterminate and copied on purpose.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
        std::memcpy(storage_, o.storage_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        vtable_->relocate(storage_, o.storage_);
      }
      o.vtable_ = nullptr;
    }
  }
  void Reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) mutable unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

// The simulator's event closure type.
using SimCallback = SmallFunction<void()>;

}  // namespace snicsim

#endif  // SRC_SIM_CALLBACK_H_
