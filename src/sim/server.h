// Deterministic queueing primitives.
//
// Nearly every hardware resource in the simulator — a PCIe link direction, a
// NIC pipeline stage, a DRAM bank, a CPU core — is a serial server with a
// deterministic service time. Instead of simulating queue entries as events,
// a server tracks its next-free time: enqueueing work of duration S that may
// start no earlier than E completes at max(next_free, E, now) + S. This is
// exact for FIFO servers and keeps event counts proportional to *jobs*, not
// queue state transitions.
#ifndef SRC_SIM_SERVER_H_
#define SRC_SIM_SERVER_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace snicsim {

// A single FIFO server.
class BusyServer {
 public:
  BusyServer(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}

  // Enqueues a job of duration `service` that may not start before
  // `earliest`. Returns the completion time; `cb` (optional) fires then.
  SimTime EnqueueAt(SimTime earliest, SimTime service, Simulator::Callback cb = nullptr) {
    SNIC_CHECK_GE(service, 0);
    const SimTime start = std::max({next_free_, earliest, sim_->now()});
    next_free_ = start + service;
    busy_time_ += service;
    ++jobs_;
    if (cb != nullptr) {
      sim_->At(next_free_, std::move(cb));
    }
    return next_free_;
  }

  SimTime Enqueue(SimTime service, Simulator::Callback cb = nullptr) {
    return EnqueueAt(sim_->now(), service, std::move(cb));
  }

  SimTime next_free() const { return std::max(next_free_, sim_->now()); }
  // Queueing delay a job arriving now would see before starting service.
  SimTime Backlog() const { return std::max<SimTime>(0, next_free_ - sim_->now()); }

  SimTime busy_time() const { return busy_time_; }
  uint64_t jobs() const { return jobs_; }
  const std::string& name() const { return name_; }

  double Utilization(SimTime window) const {
    return window <= 0 ? 0.0 : static_cast<double>(busy_time_) / static_cast<double>(window);
  }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime next_free_ = 0;
  SimTime busy_time_ = 0;
  uint64_t jobs_ = 0;
};

// K identical parallel servers fed from one FIFO queue (e.g., a CPU core
// pool or the banks of a DRAM channel when accesses are unconstrained).
// Jobs are dispatched to the earliest-free server.
class MultiServer {
 public:
  MultiServer(Simulator* sim, std::string name, int servers)
      : sim_(sim), name_(std::move(name)), next_free_(static_cast<size_t>(servers), 0) {
    SNIC_CHECK_GT(servers, 0);
  }

  SimTime EnqueueAt(SimTime earliest, SimTime service, Simulator::Callback cb = nullptr) {
    SNIC_CHECK_GE(service, 0);
    // Pick the server that frees first.
    size_t best = 0;
    for (size_t i = 1; i < next_free_.size(); ++i) {
      if (next_free_[i] < next_free_[best]) {
        best = i;
      }
    }
    const SimTime start = std::max({next_free_[best], earliest, sim_->now()});
    next_free_[best] = start + service;
    busy_time_ += service;
    ++jobs_;
    if (cb != nullptr) {
      sim_->At(next_free_[best], std::move(cb));
    }
    return next_free_[best];
  }

  SimTime Enqueue(SimTime service, Simulator::Callback cb = nullptr) {
    return EnqueueAt(sim_->now(), service, std::move(cb));
  }

  // Re-provisions the pool to `n` servers (the epoch autoscaler's host/SoC
  // core actuator). Growth adds servers free at the current time; shrink
  // retires the servers that free *earliest*, so work already dispatched to
  // a retired-late server still completes — jobs are conserved, only future
  // dispatch capacity changes.
  void SetServers(int n) {
    SNIC_CHECK_GT(n, 0);
    while (static_cast<int>(next_free_.size()) < n) {
      next_free_.push_back(sim_->now());
    }
    while (static_cast<int>(next_free_.size()) > n) {
      size_t best = 0;
      for (size_t i = 1; i < next_free_.size(); ++i) {
        if (next_free_[i] < next_free_[best]) {
          best = i;
        }
      }
      next_free_.erase(next_free_.begin() + static_cast<ptrdiff_t>(best));
    }
  }

  int size() const { return static_cast<int>(next_free_.size()); }
  SimTime busy_time() const { return busy_time_; }
  uint64_t jobs() const { return jobs_; }
  const std::string& name() const { return name_; }

  // Queueing delay a job arriving now would see before a server frees up
  // (0 when any server is idle).
  SimTime Backlog() const {
    SimTime best = next_free_[0];
    for (size_t i = 1; i < next_free_.size(); ++i) {
      best = std::min(best, next_free_[i]);
    }
    return std::max<SimTime>(0, best - sim_->now());
  }

 private:
  Simulator* sim_;
  std::string name_;
  std::vector<SimTime> next_free_;
  SimTime busy_time_ = 0;
  uint64_t jobs_ = 0;
};

// A counted resource with FIFO waiters (e.g., NIC processing-unit slots or
// DMA-engine outstanding-read credits). Unlike BusyServer, hold times are
// not known at acquire time: the holder calls Release explicitly.
class TokenPool {
 public:
  TokenPool(Simulator* sim, std::string name, int tokens)
      : sim_(sim), name_(std::move(name)), available_(tokens), capacity_(tokens) {
    SNIC_CHECK_GT(tokens, 0);
  }

  // Runs `cb` once a token is held (immediately if one is free).
  void Acquire(Simulator::Callback cb) {
    if (available_ > 0) {
      --available_;
      // Defer through the event queue so acquire order == FIFO order even
      // when tokens are free, and callers never reenter synchronously.
      sim_->In(0, std::move(cb));
    } else {
      waiters_.push_back(std::move(cb));
      max_waiters_ = std::max(max_waiters_, waiters_.size());
    }
  }

  // Non-blocking acquire: returns true and consumes a token if one is free.
  bool TryAcquire() {
    if (available_ == 0) {
      return false;
    }
    --available_;
    return true;
  }

  void Release() {
    SNIC_CHECK_LT(available_, capacity_);
    if (!waiters_.empty()) {
      auto cb = std::move(waiters_.front());
      waiters_.pop_front();
      sim_->In(0, std::move(cb));
    } else {
      ++available_;
    }
  }

  int available() const { return available_; }
  int capacity() const { return capacity_; }
  size_t waiting() const { return waiters_.size(); }
  size_t max_waiters() const { return max_waiters_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  std::string name_;
  int available_;
  int capacity_;
  std::deque<Simulator::Callback> waiters_;
  size_t max_waiters_ = 0;
};

}  // namespace snicsim

#endif  // SRC_SIM_SERVER_H_
