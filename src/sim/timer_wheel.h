// Hierarchical timer wheel for cancellation-heavy clocks.
//
// The retransmit, epoch, and breaker clocks (src/rdma, src/workload,
// src/governor) arm far more timers than ever fire: a reliable QP arms one
// timeout per WR and almost every one is superseded by a completion. On the
// plain event heap each of those timers costs two heap operations plus a
// guaranteed stale-event dispatch. The wheel makes arming O(1), Cancel O(1),
// and lets a cancelled timer die without ever reaching the Simulator heap:
// only a shared per-slot *sentinel* event enters the heap, and all timers
// that land in one slot amortize it.
//
// Firing-order contract (proved by tests/sim/timer_wheel_test.cc against the
// heap path it replaces):
//   * A timer fires at exactly its deadline (sentinels run earlier, but the
//     final hop is sim->At(deadline), so no precision is lost to slotting).
//   * Two timers with the same deadline fire in Schedule() order — the same
//     tie-break the heap path gets from the DES (time, seq) order. This
//     holds because equal-deadline timers provably converge into the same
//     level-0 bucket before release, where the dispatch sorts by
//     (deadline, arm order).
//   Cross-kind ties (a wheel timer vs an unrelated event at the same
//   picosecond) may take a different DES sequence number than a directly
//   armed timer would have; callers for whom that tie matters must arm via
//   sim->At directly.
//
// Thread-safety: none — a wheel belongs to exactly one Simulator (one
// domain, see src/sim/domain.h) and must only be touched from that domain's
// events, like every other component hanging off a Simulator.
#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/sim/callback.h"
#include "src/sim/simulator.h"

namespace snicsim {

class TimerWheel {
 public:
  // Opaque handle for Cancel: packs (generation << 32 | record index), so a
  // stale handle to a recycled record is rejected instead of cancelling an
  // unrelated timer. 0 is never a valid id.
  using TimerId = uint64_t;
  static constexpr TimerId kNoTimer = 0;

  // `tick` is the innermost slot width: timers due within the same tick of
  // each other share a sentinel. It bounds batching, not precision —
  // firing is always exact-time.
  explicit TimerWheel(Simulator* sim, SimTime tick = FromNanos(500));
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms `cb` to run at absolute time `deadline` (>= sim->now()).
  TimerId Schedule(SimTime deadline, SimCallback cb);

  // After `delay`, like Simulator::In.
  TimerId In(SimTime delay, SimCallback cb) {
    return Schedule(sim_->now() + delay, std::move(cb));
  }

  // O(1): marks the timer dead; its record is reclaimed lazily the next
  // time its bucket is scanned. Returns false if the id is stale (already
  // fired, already cancelled, or recycled) — callers may Cancel
  // unconditionally on completion paths.
  bool Cancel(TimerId id);

  Simulator* sim() const { return sim_; }
  SimTime tick() const { return tick_; }

  // Live = scheduled - fired - reclaimed-after-cancel.
  size_t live() const { return live_; }
  uint64_t scheduled() const { return scheduled_; }
  uint64_t fired() const { return fired_; }
  uint64_t cancelled() const { return cancelled_; }
  // Heap events actually consumed: per-slot sentinels + exact-time release
  // hops. The wheel's win is this staying far below `scheduled` when most
  // timers cancel.
  uint64_t sentinels() const { return sentinels_; }
  uint64_t cascades() const { return cascades_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64 slots per level
  static constexpr int kLevels = 6;              // tick << 36 total span
  static constexpr SimTime kNoSentinel = -1;

  enum class State : uint8_t { kFree, kQueued, kReleased };

  struct Timer {
    SimTime deadline = 0;
    uint64_t order = 0;  // global arm counter: the equal-deadline tie-break
    uint32_t gen = 1;    // recycle guard, part of the public TimerId
    State state = State::kFree;
    bool cancelled = false;
    SimCallback cb;
  };

  struct Bucket {
    std::vector<uint32_t> timers;
    // Earliest pending sentinel for this bucket (kNoSentinel when none).
    // Invariant: whenever the bucket is non-empty, a sentinel is pending at
    // or before the earliest member's slot start, so no timer is ever
    // scanned later than its own slot.
    SimTime next_sentinel = kNoSentinel;
  };

  SimTime Width(int level) const {
    return tick_ << (kSlotBits * level);
  }
  SimTime SlotStart(int level, SimTime deadline) const {
    return deadline - deadline % Width(level);
  }

  uint32_t AllocRecord();
  void FreeRecord(uint32_t idx);
  // Places `idx` as seen from time `now`: the coarsest level whose slot
  // start still lies in the future, or the level-0 bucket with an immediate
  // sentinel when the deadline's innermost slot has already begun.
  void Place(uint32_t idx, SimTime now);
  void ArmSentinel(int level, int bucket_index, SimTime at);
  // Sentinel body: drain everything whose slot has started — cascade from
  // level > 0, release exact-time events from level 0 in (deadline, order).
  void Process(int level, int bucket_index, SimTime at);
  void Release(uint32_t idx);

  Simulator* sim_;
  SimTime tick_;
  std::vector<Bucket> levels_[kLevels];
  std::vector<Timer> records_;
  std::vector<uint32_t> free_;

  uint64_t next_order_ = 0;
  size_t live_ = 0;
  uint64_t scheduled_ = 0;
  uint64_t fired_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t sentinels_ = 0;
  uint64_t cascades_ = 0;
};

}  // namespace snicsim

#endif  // SRC_SIM_TIMER_WHEEL_H_
