// Conservative parallel DES: one event core per server domain.
//
// The testbed's event space partitions cleanly along machine boundaries —
// a server's host CPU, SoC, NIC, and PCIe tree interact at picosecond
// granularity, but machines only talk over fabric links that carry at least
// one link propagation delay. ParallelSimulator exploits that: each domain
// owns a private Simulator, and domains synchronize only at *horizons*
// spaced by the minimum cross-domain latency (the lookahead), the classic
// conservative null-message bound specialized to a barrier because the
// fabric topology is all-to-all through one switch.
//
// Round protocol:
//   1. m  = min over domains of the earliest pending event time
//   2. H  = m + lookahead                      (the horizon)
//   3. every domain runs RunBefore(H) in parallel — safe because an event
//      executing at u >= m can only produce cross-domain work at
//      u + lookahead >= H, i.e. beyond the horizon
//   4. barrier; cross-domain events buffered in per-source outboxes are
//      merged in (time, source domain, per-source seq) order and scheduled
//      into their destination domains
//
// Determinism contract (DESIGN.md §12): within a round each domain touches
// only its own state, and the merge order is a strict total order that does
// not mention threads — so any --sim-threads count, including 1, produces
// byte-identical results. The round structure itself (rounds(), merged(),
// merge_digest()) is likewise thread-count invariant.
#ifndef SRC_SIM_PARALLEL_H_
#define SRC_SIM_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/domain.h"
#include "src/sim/simulator.h"

namespace snicsim {

class ParallelSimulator {
 public:
  // `lookahead` must be positive and no larger than the cheapest
  // cross-domain edge: every Post must land at least `lookahead` after the
  // sending domain's clock. `threads <= 1` runs rounds inline on the
  // calling thread (the serial reference the determinism tests compare
  // against); larger counts run domains on a persistent worker pool.
  ParallelSimulator(int domains, SimTime lookahead, int threads = 1);
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;
  ~ParallelSimulator();

  int domains() const { return static_cast<int>(sims_.size()); }
  int threads() const { return threads_; }
  SimTime lookahead() const { return lookahead_; }

  // The domain's private event core. Wire a domain's whole component stack
  // (servers, RNGs, injector, pools) to this Simulator; nothing reachable
  // from it may be shared with another domain (src/sim/domain.h).
  Simulator* domain(DomainId d) { return sims_[static_cast<size_t>(d)].get(); }

  // Schedules `cb` at absolute time `t` in domain `dst`, from code running
  // inside domain `src`. Enforces the lookahead contract:
  // t >= domain(src)->now() + lookahead. The callback is buffered in src's
  // outbox (only src's thread touches it) and delivered at the next
  // barrier; it runs on dst's thread and must not touch src state except
  // as opaque handles.
  void Post(DomainId src, DomainId dst, SimTime t, SimCallback cb);

  // Runs rounds until every domain drains. All setup (initial At() calls
  // into the domains) must happen before; Run is not reentrant.
  void Run();

  // Round accounting — all thread-count invariant.
  uint64_t rounds() const { return rounds_; }
  uint64_t merged() const { return merged_; }
  // FNV-1a over every merged event's (time, src, dst, seq): a replayable
  // digest of the cross-domain schedule, the parallel analogue of
  // ServingResult::Fingerprint.
  uint64_t merge_digest() const { return merge_digest_; }
  // Sum of per-domain event counts, in domain order.
  uint64_t processed() const;

  // Exposes sim.domains / sim.rounds / sim.merged_events /
  // sim.lookahead_us under the given instance (DESIGN.md §6).
  void RegisterMetrics(MetricsRegistry* reg, const std::string& instance = "sim");

 private:
  void RunRound(SimTime horizon);
  void RunDomainRange(SimTime horizon);
  void MergeOutboxes();
  void WorkerLoop();

  SimTime lookahead_;
  int threads_;
  std::vector<std::unique_ptr<Simulator>> sims_;

  // Per-source outbox. Within a round only the thread running domain d
  // appends to outboxes_[d]; the merge (main thread, after the barrier)
  // drains them. The barrier's mutex hand-off is the publication point.
  struct Outbox {
    std::vector<RemoteEvent> events;
    uint64_t next_seq = 0;
  };
  std::vector<Outbox> outboxes_;

  // Worker-pool state. Workers claim domains with next_domain_ and report
  // through done_; generation counts make the condvar waits race-free.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable round_cv_;
  std::condition_variable done_cv_;
  uint64_t round_gen_ = 0;
  SimTime round_horizon_ = 0;
  int done_ = 0;
  bool stop_ = false;
  std::atomic<int> next_domain_{0};

  uint64_t rounds_ = 0;
  uint64_t merged_ = 0;
  uint64_t merge_digest_ = 0;
};

}  // namespace snicsim

#endif  // SRC_SIM_PARALLEL_H_
