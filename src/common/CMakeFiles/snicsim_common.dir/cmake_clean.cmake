file(REMOVE_RECURSE
  "CMakeFiles/snicsim_common.dir/flags.cc.o"
  "CMakeFiles/snicsim_common.dir/flags.cc.o.d"
  "CMakeFiles/snicsim_common.dir/histogram.cc.o"
  "CMakeFiles/snicsim_common.dir/histogram.cc.o.d"
  "CMakeFiles/snicsim_common.dir/table.cc.o"
  "CMakeFiles/snicsim_common.dir/table.cc.o.d"
  "CMakeFiles/snicsim_common.dir/units.cc.o"
  "CMakeFiles/snicsim_common.dir/units.cc.o.d"
  "libsnicsim_common.a"
  "libsnicsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
