# Empty dependencies file for snicsim_common.
# This may be replaced when dependencies are built.
