file(REMOVE_RECURSE
  "libsnicsim_common.a"
)
