#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/log.h"
#include "src/common/units.h"

namespace snicsim {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits), sub_bucket_count_(int64_t{1} << sub_bucket_bits) {
  SNIC_CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  // 64 power-of-two ranges cover the whole int64 positive domain.
  buckets_.assign(static_cast<size_t>(64 * sub_bucket_count_), 0);
}

int Histogram::BucketFor(int64_t value) const {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < static_cast<uint64_t>(sub_bucket_count_)) {
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - sub_bucket_bits_ + 1;
  const int64_t sub = static_cast<int64_t>(v >> shift) - (sub_bucket_count_ >> 1);
  const int range = msb - sub_bucket_bits_ + 1;
  return static_cast<int>(range * (sub_bucket_count_ >> 1) + sub_bucket_count_ +
                          (sub - (sub_bucket_count_ >> 1)));
}

int64_t Histogram::BucketLow(int index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  const int64_t half = sub_bucket_count_ >> 1;
  const int range = static_cast<int>((index - sub_bucket_count_) / half) + 1;
  const int64_t sub = (index - sub_bucket_count_) % half + half;
  return sub << range;
}

int64_t Histogram::BucketHigh(int index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  const int64_t half = sub_bucket_count_ >> 1;
  const int range = static_cast<int>((index - sub_bucket_count_) / half) + 1;
  const int64_t sub = (index - sub_bucket_count_) % half + half;
  return ((sub + 1) << range) - 1;
}

void Histogram::Record(int64_t value) { Record(value, 1); }

void Histogram::Record(int64_t value, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  const int b = BucketFor(value);
  SNIC_CHECK_LT(static_cast<size_t>(b), buckets_.size());
  buckets_[static_cast<size_t>(b)] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  SNIC_CHECK_EQ(sub_bucket_bits_, other.sub_bucket_bits_);
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(BucketHigh(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary(bool as_time) const {
  auto fmt = [as_time](int64_t v) {
    return as_time ? FormatTime(v) : std::to_string(v);
  };
  return "p50=" + fmt(Percentile(50)) + " p90=" + fmt(Percentile(90)) +
         " p99=" + fmt(Percentile(99)) + " max=" + fmt(max());
}

}  // namespace snicsim
