// Minimal logging and invariant-checking macros.
//
// The simulator is a measurement tool: an internal inconsistency must abort
// loudly rather than silently skew a reported figure. CHECK is therefore on
// in all build types.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdio>
#include <cstdlib>

namespace snicsim {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace snicsim

#define SNIC_CHECK(expr)                             \
  do {                                               \
    if (!(expr)) {                                   \
      ::snicsim::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                \
  } while (0)

#define SNIC_CHECK_GE(a, b) SNIC_CHECK((a) >= (b))
#define SNIC_CHECK_GT(a, b) SNIC_CHECK((a) > (b))
#define SNIC_CHECK_LE(a, b) SNIC_CHECK((a) <= (b))
#define SNIC_CHECK_LT(a, b) SNIC_CHECK((a) < (b))
#define SNIC_CHECK_EQ(a, b) SNIC_CHECK((a) == (b))
#define SNIC_CHECK_NE(a, b) SNIC_CHECK((a) != (b))

#endif  // SRC_COMMON_LOG_H_
