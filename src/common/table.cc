#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "src/common/log.h"

namespace snicsim {

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(std::string cell) {
  SNIC_CHECK(!rows_.empty());
  SNIC_CHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::Add(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return Add(std::string(buf));
}

void Table::PrintAligned(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace snicsim
