#include "src/common/units.h"

#include <cstdio>

namespace snicsim {

namespace {

std::string Format(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v, suffix);
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kGiB && bytes % kGiB == 0) {
    return std::to_string(bytes / kGiB) + "GB";
  }
  if (bytes >= kMiB && bytes % kMiB == 0) {
    return std::to_string(bytes / kMiB) + "MB";
  }
  if (bytes >= kKiB && bytes % kKiB == 0) {
    return std::to_string(bytes / kKiB) + "KB";
  }
  if (bytes >= kMiB) {
    return Format("%.1f%s", static_cast<double>(bytes) / static_cast<double>(kMiB), "MB");
  }
  if (bytes >= kKiB) {
    return Format("%.1f%s", static_cast<double>(bytes) / static_cast<double>(kKiB), "KB");
  }
  return std::to_string(bytes) + "B";
}

std::string FormatTime(SimTime t) {
  if (t >= kMillis) {
    return Format("%.2f%s", static_cast<double>(t) / static_cast<double>(kMillis), "ms");
  }
  if (t >= kMicros) {
    return Format("%.2f%s", static_cast<double>(t) / static_cast<double>(kMicros), "us");
  }
  if (t >= kNanos) {
    return Format("%.1f%s", static_cast<double>(t) / static_cast<double>(kNanos), "ns");
  }
  return std::to_string(t) + "ps";
}

std::string FormatGbps(double gbps) { return Format("%.1f%s", gbps, "Gbps"); }

std::string FormatMpps(double mpps) { return Format("%.1f%s", mpps, "Mpps"); }

}  // namespace snicsim
