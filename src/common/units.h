// Strongly-suffixed simulation units.
//
// All simulated time is kept in integer picoseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible; helpers convert to and
// from human units. Bandwidths are kept in bytes-per-second doubles wrapped
// in a Bandwidth value type that can compute serialization delays.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace snicsim {

// Simulated time in integer picoseconds.
using SimTime = int64_t;

inline constexpr SimTime kPicos = 1;
inline constexpr SimTime kNanos = 1000;
inline constexpr SimTime kMicros = 1000 * kNanos;
inline constexpr SimTime kMillis = 1000 * kMicros;
inline constexpr SimTime kSeconds = 1000 * kMillis;

constexpr SimTime FromNanos(double ns) { return static_cast<SimTime>(ns * kNanos); }
constexpr SimTime FromMicros(double us) { return static_cast<SimTime>(us * kMicros); }
constexpr SimTime FromMillis(double ms) { return static_cast<SimTime>(ms * kMillis); }
constexpr double ToNanos(SimTime t) { return static_cast<double>(t) / kNanos; }
constexpr double ToMicros(SimTime t) { return static_cast<double>(t) / kMicros; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSeconds; }

// Byte-count helpers.
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// A link or device bandwidth. Internally bytes/second.
class Bandwidth {
 public:
  constexpr Bandwidth() : bytes_per_sec_(0.0) {}

  static constexpr Bandwidth BytesPerSec(double bps) { return Bandwidth(bps); }
  static constexpr Bandwidth Gbps(double gbps) { return Bandwidth(gbps * 1e9 / 8.0); }
  static constexpr Bandwidth GBps(double gBps) { return Bandwidth(gBps * 1e9); }

  constexpr double bytes_per_sec() const { return bytes_per_sec_; }
  constexpr double gbps() const { return bytes_per_sec_ * 8.0 / 1e9; }
  constexpr bool is_zero() const { return bytes_per_sec_ <= 0.0; }

  // Time to serialize `bytes` at this rate. Zero-bandwidth means "infinitely
  // fast" (no serialization component), which models ideal internal wiring.
  constexpr SimTime TransferTime(uint64_t bytes) const {
    if (bytes_per_sec_ <= 0.0) {
      return 0;
    }
    return static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_sec_ * 1e12);
  }

  friend constexpr bool operator==(Bandwidth a, Bandwidth b) {
    return a.bytes_per_sec_ == b.bytes_per_sec_;
  }
  friend constexpr bool operator<(Bandwidth a, Bandwidth b) {
    return a.bytes_per_sec_ < b.bytes_per_sec_;
  }

 private:
  explicit constexpr Bandwidth(double bps) : bytes_per_sec_(bps) {}
  double bytes_per_sec_;
};

// A processing rate in operations (packets, requests) per second.
class Rate {
 public:
  constexpr Rate() : per_sec_(0.0) {}
  static constexpr Rate PerSec(double r) { return Rate(r); }
  static constexpr Rate Mpps(double m) { return Rate(m * 1e6); }

  constexpr double per_sec() const { return per_sec_; }
  constexpr double mpps() const { return per_sec_ / 1e6; }
  constexpr bool is_zero() const { return per_sec_ <= 0.0; }

  // Service time of one unit of work.
  constexpr SimTime ServiceTime() const {
    if (per_sec_ <= 0.0) {
      return 0;
    }
    return static_cast<SimTime>(1e12 / per_sec_);
  }
  constexpr SimTime ServiceTime(uint64_t n) const {
    if (per_sec_ <= 0.0) {
      return 0;
    }
    return static_cast<SimTime>(1e12 * static_cast<double>(n) / per_sec_);
  }

 private:
  explicit constexpr Rate(double r) : per_sec_(r) {}
  double per_sec_;
};

// Integer ceiling division; the workhorse of TLP/frame segmentation.
constexpr uint64_t CeilDiv(uint64_t n, uint64_t d) { return (n + d - 1) / d; }

// Human-readable formatting used by the bench reporters.
std::string FormatBytes(uint64_t bytes);
std::string FormatTime(SimTime t);
std::string FormatGbps(double gbps);
std::string FormatMpps(double mpps);

}  // namespace snicsim

#endif  // SRC_COMMON_UNITS_H_
