// Aligned-column table printing and CSV emission for bench harnesses.
//
// Every bench binary reproduces one paper figure/table; Table renders the
// same rows/series the paper reports, either human-aligned (default) or as
// CSV (--csv) for plotting.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace snicsim {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  // Begins a new row; subsequent Add* calls append cells to it.
  Table& Row();
  Table& Add(std::string cell);
  Table& Add(const char* cell) { return Add(std::string(cell)); }
  Table& Add(double v, int precision = 2);
  Table& Add(uint64_t v) { return Add(std::to_string(v)); }
  Table& Add(int64_t v) { return Add(std::to_string(v)); }
  Table& Add(int v) { return Add(std::to_string(v)); }

  size_t row_count() const { return rows_.size(); }

  void PrintAligned(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;
  // Honors the global --csv toggle (see flags.h users).
  void Print(std::ostream& os, bool csv) const { csv ? PrintCsv(os) : PrintAligned(os); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snicsim

#endif  // SRC_COMMON_TABLE_H_
