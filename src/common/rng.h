// Deterministic pseudo-random number generation for workloads.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 plus distribution objects — bit-identical across standard
// library implementations, which keeps every figure reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace snicsim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Lemire's nearly-divisionless bounded generation.
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace snicsim

#endif  // SRC_COMMON_RNG_H_
