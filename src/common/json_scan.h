// Minimal JSON scanner shared by the declarative-config parsers (`--faults`,
// `--tenants`). Only what those schemas need: one object of scalars plus
// arrays of flat objects, with unknown keys surfaced as errors by the
// callers (a typo'd schedule must not silently run with defaults). Not a
// general JSON library on purpose — escapes, nesting beyond one array of
// flat objects, and non-scalar values are rejected loudly.
#ifndef SRC_COMMON_JSON_SCAN_H_
#define SRC_COMMON_JSON_SCAN_H_

#include <cctype>
#include <cstdlib>
#include <string>

namespace snicsim {

struct JsonScanner {
  const std::string& text;
  size_t pos = 0;
  std::string* error;

  explicit JsonScanner(const std::string& t, std::string* e) : text(t), error(e) {}

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Fail(const std::string& what) {
    *error = what + " at offset " + std::to_string(pos);
    return false;
  }
  bool Expect(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return pos < text.size() && text[pos] == c;
  }
  bool ReadString(std::string* out) {
    if (!Expect('"')) {
      return false;
    }
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        return Fail("escapes not supported in schedule strings");
      }
      out->push_back(text[pos++]);
    }
    if (pos >= text.size()) {
      return Fail("unterminated string");
    }
    ++pos;
    return true;
  }
  bool ReadNumber(double* out) {
    SkipWs();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) {
      return Fail("expected number");
    }
    pos += static_cast<size_t>(end - start);
    return true;
  }
  // Reads {"k":v,...} where every value is a string or number; calls
  // `field(key, string_value, number_value, is_string)`.
  template <typename F>
  bool ReadFlatObject(F field) {
    if (!Expect('{')) {
      return false;
    }
    if (Peek('}')) {
      ++pos;
      return true;
    }
    for (;;) {
      std::string key;
      if (!ReadString(&key) || !Expect(':')) {
        return false;
      }
      SkipWs();
      if (pos < text.size() && text[pos] == '"') {
        std::string v;
        if (!ReadString(&v) || !field(key, v, 0.0, true)) {
          return false;
        }
      } else {
        double v = 0.0;
        if (!ReadNumber(&v) || !field(key, std::string(), v, false)) {
          return false;
        }
      }
      if (Peek(',')) {
        ++pos;
        continue;
      }
      return Expect('}');
    }
  }
  // Reads [obj,obj,...]; calls `element()` positioned at each object.
  template <typename F>
  bool ReadArray(F element) {
    if (!Expect('[')) {
      return false;
    }
    if (Peek(']')) {
      ++pos;
      return true;
    }
    for (;;) {
      if (!element()) {
        return false;
      }
      if (Peek(',')) {
        ++pos;
        continue;
      }
      return Expect(']');
    }
  }
};

}  // namespace snicsim

#endif  // SRC_COMMON_JSON_SCAN_H_
