// Tiny command-line flag parser for bench/example binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags abort with a usage listing so that typos in sweep scripts
// fail fast instead of silently running the default configuration.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snicsim {

class Flags {
 public:
  Flags(int argc, char** argv);

  // Each getter registers the flag (for --help) and returns the parsed value
  // or the default.
  bool GetBool(const std::string& name, bool def, const std::string& help = "");
  int64_t GetInt(const std::string& name, int64_t def, const std::string& help = "");
  double GetDouble(const std::string& name, double def, const std::string& help = "");
  std::string GetString(const std::string& name, const std::string& def,
                        const std::string& help = "");

  // Call after all getters: aborts on unknown flags, prints usage on --help.
  void Finish() const;

  bool csv() const { return csv_; }

 private:
  struct Known {
    std::string name;
    std::string help;
    std::string def;
  };
  const std::string* Find(const std::string& name) const;

  std::string program_;
  std::vector<std::pair<std::string, std::string>> parsed_;  // name -> raw value
  std::vector<Known> known_;
  mutable std::vector<std::string> consumed_;
  bool help_ = false;
  bool csv_ = false;
};

}  // namespace snicsim

#endif  // SRC_COMMON_FLAGS_H_
