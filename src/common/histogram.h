// Log-bucketed latency histogram with percentile queries.
//
// Buckets grow geometrically (HdrHistogram-style: linear sub-buckets within
// power-of-two ranges) so that a single histogram covers nanoseconds to
// seconds with bounded relative error and O(1) recording.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snicsim {

class Histogram {
 public:
  // `sub_bucket_bits` linear sub-buckets per power-of-two range; 5 bits gives
  // <= ~3% relative error on percentile queries.
  explicit Histogram(int sub_bucket_bits = 5);

  void Record(int64_t value);
  void Record(int64_t value, uint64_t count);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double Mean() const;
  // p in [0, 100]. Returns 0 on an empty histogram.
  int64_t Percentile(double p) const;
  int64_t Median() const { return Percentile(50.0); }

  // "p50=... p99=... max=..." summary for bench reporters; values are
  // formatted as times when `as_time` is set.
  std::string Summary(bool as_time = true) const;

 private:
  int BucketFor(int64_t value) const;
  int64_t BucketLow(int index) const;
  int64_t BucketHigh(int index) const;

  int sub_bucket_bits_;
  int64_t sub_bucket_count_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace snicsim

#endif  // SRC_COMMON_HISTOGRAM_H_
