#include "src/common/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace snicsim {

namespace {

bool ParseBoolValue(const std::string& v) {
  return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    parsed_.emplace_back(arg, value);
  }
  for (const auto& [name, value] : parsed_) {
    if (name == "help") {
      help_ = true;
    }
    if (name == "csv") {
      csv_ = ParseBoolValue(value);
    }
  }
  consumed_.push_back("help");
  consumed_.push_back("csv");
}

const std::string* Flags::Find(const std::string& name) const {
  const std::string* found = nullptr;
  for (const auto& [n, v] : parsed_) {
    if (n == name) {
      found = &v;  // last occurrence wins
    }
  }
  consumed_.push_back(name);
  return found;
}

bool Flags::GetBool(const std::string& name, bool def, const std::string& help) {
  known_.push_back({name, help, def ? "true" : "false"});
  consumed_.push_back("no-" + name);
  for (const auto& [n, v] : parsed_) {
    if (n == "no-" + name) {
      def = false;
    } else if (n == name) {
      def = ParseBoolValue(v);
    }
  }
  consumed_.push_back(name);
  return def;
}

int64_t Flags::GetInt(const std::string& name, int64_t def, const std::string& help) {
  known_.push_back({name, help, std::to_string(def)});
  const std::string* v = Find(name);
  return v != nullptr ? std::strtoll(v->c_str(), nullptr, 0) : def;
}

double Flags::GetDouble(const std::string& name, double def, const std::string& help) {
  known_.push_back({name, help, std::to_string(def)});
  const std::string* v = Find(name);
  return v != nullptr ? std::strtod(v->c_str(), nullptr) : def;
}

std::string Flags::GetString(const std::string& name, const std::string& def,
                             const std::string& help) {
  known_.push_back({name, help, def});
  const std::string* v = Find(name);
  return v != nullptr ? *v : def;
}

void Flags::Finish() const {
  bool unknown = false;
  for (const auto& [name, value] : parsed_) {
    (void)value;
    if (std::find(consumed_.begin(), consumed_.end(), name) == consumed_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      unknown = true;
    }
  }
  if (help_ || unknown) {
    std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
    std::fprintf(stderr, "  --csv  emit CSV instead of an aligned table\n");
    for (const auto& k : known_) {
      std::fprintf(stderr, "  --%s (default %s)  %s\n", k.name.c_str(), k.def.c_str(),
                   k.help.c_str());
    }
    std::exit(help_ ? 0 : 2);
  }
}

}  // namespace snicsim
