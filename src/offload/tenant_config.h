// Declarative tenant-set description for the multi-tenant offload control
// plane (src/offload/tenancy.h), plus its --tenants flag grammar.
//
// Mirrors the --faults idiom (src/fault/plan.h): an inline key=value form
// for quick sweeps and an @file.json form for checked-in scenarios, with
// unknown keys and malformed entries failing loudly — a typo'd tenant spec
// must not silently run single-tenant.
//
//   inline:  cores=2:4,host_cores=2,seed=7,budget=0.05,
//            tenant=ID:KIND:WEIGHT:MOPS:BYTES:SLO_US[:CAP_MOPS[:POOL]],...
//   file:    --tenants=@set.json with
//            {"cores":[2,4],"host_cores":2,"seed":7,"budget":0.05,
//             "tenants":[{"id":"scan0","kind":"filter","weight":1,
//                         "mops":0.3,"bytes":2048,"slo_us":40,
//                         "cap_mops":0.25,"pool":0}]}
//
// KIND is one of kv | filter | compress | sketch. `cores` lists the SoC
// core count of each shared pool (':'-separated inline); every tenant names
// the pool it runs on. Duplicate tenant ids are rejected. An empty config
// (empty() == true) creates no tenant objects at all, so a tenant-free run
// is byte-identical to a pre-tenancy build.
#ifndef SRC_OFFLOAD_TENANT_CONFIG_H_
#define SRC_OFFLOAD_TENANT_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/offload/stages.h"

namespace snicsim {
namespace offload {

enum class TenantKind { kKv, kFilter, kCompress, kSketch };

constexpr const char* TenantKindName(TenantKind k) {
  switch (k) {
    case TenantKind::kKv:
      return "kv";
    case TenantKind::kFilter:
      return "filter";
    case TenantKind::kCompress:
      return "compress";
    case TenantKind::kSketch:
      return "sketch";
  }
  return "?";
}

struct TenantSpec {
  std::string id;
  TenantKind kind = TenantKind::kSketch;
  int weight = 1;          // WRR share on the SoC pool
  double mops = 0.0;       // offered open-loop rate (Mops); kv: ignored
  uint32_t item_bytes = 1024;
  double slo_us = 0.0;     // completion-latency SLO; 0 = unchecked
  double cap_mops = 0.0;   // per-tenant token-bucket admit cap; 0 = uncapped
  int pool = 0;            // index into TenantSetConfig::pools

  // Programmatic stage-chain override (not expressible in the grammar).
  // Empty means the kind's default chain (DefaultStages).
  std::vector<TenantStage> stages;
};

// The default pipeline each tenant kind runs (see DESIGN.md section 14).
std::vector<TenantStage> DefaultStages(TenantKind kind);

// Where a tenant's items originate: host-resident producers for filter and
// compression tenants (items must cross to the SoC stages and back),
// SoC-resident for sketch tenants, and the first stage's side for kv.
Placement EntryPlacement(const TenantSpec& spec);

struct TenantSetConfig {
  std::vector<int> pools;  // SoC cores per shared pool
  int host_cores = 1;      // host-side stage pool, shared by all tenants
  uint64_t seed = 1;       // per-item filter-hash stream seed
  double slo_budget = 0.05;  // tolerated SLO-violation fraction (isolation)
  std::vector<TenantSpec> tenants;

  bool empty() const { return tenants.empty(); }

  // Canonical inline-grammar form: Parse(Serialize(c)) == c and
  // Serialize is a fixed point, which the grammar round-trip test pins.
  std::string Serialize() const;
};

// Parses the inline or @file form into `out` (reset first). Returns false
// with a human-readable `error` on any malformed or unknown input.
bool ParseTenantSet(const std::string& spec, TenantSetConfig* out,
                    std::string* error);

// Registers --tenants and parses it; exits(2) with the parse error on
// malformed input, like fault::FaultsFlag.
TenantSetConfig TenantsFlag(Flags& flags);

}  // namespace offload
}  // namespace snicsim

#endif  // SRC_OFFLOAD_TENANT_CONFIG_H_
