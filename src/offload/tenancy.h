// Multi-tenant SmartNIC-as-a-service control plane.
//
// A TenantManager consolidates several tenants' offload pipelines onto one
// BlueField server: each tenant's stage chain (src/offload/stages.h) is
// scheduled onto a shared SoC core pool through a deterministic
// weighted-round-robin arbiter (src/offload/arbiter.h), host-side stages
// share one host core pool, and placement-boundary crossings ship items
// over path ③ through the same NicEngine the serving plane uses, so tenant
// traffic and KV traffic contend for the real intra-machine budget.
//
// Isolation is enforced by making the §11 resilience primitives
// *per-tenant*: every tenant owns a TokenBucketState (its admission cap, in
// Mops) and a CodelState fed by its own head-of-line delay on the SoC pool,
// shedding its lowest value classes first when its standing queue grows.
// The per-tenant conservation ledger
//
//     generated == admitted + shed            (shed == shed_codel + shed_bucket)
//     admitted  == completed + failed         (after drain)
//
// closes exactly on every run, faulted or not, and TenantResult::
// Fingerprint() digests every counter so replays are byte-comparable.
//
// Determinism contract: tenant arrival streams are open-loop with fixed
// spacing (1/mops us), per-item filter decisions are hashes of
// (set seed ^ FNV(tenant id), item seq) — no shared RNG stream — and the
// WRR arbiter decides from queue occupancy alone. Consequently (a) the same
// seed replays byte-identically at any --jobs/--sim-threads level, and
// (b) tenants on disjoint pools with no crossings are invisible to each
// other: merging them into one TenantManager reproduces their solo
// fingerprints byte-for-byte (the metamorphic law pinned by
// tests/offload/tenancy_property_test.cc). An empty TenantSetConfig creates
// no manager at all, so tenant-free serving runs are byte-identical to
// pre-tenancy builds (pinned by tests/golden/tenants_golden_test.cc).
#ifndef SRC_OFFLOAD_TENANCY_H_
#define SRC_OFFLOAD_TENANCY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/fault/injector.h"
#include "src/obs/metrics.h"
#include "src/offload/arbiter.h"
#include "src/offload/stages.h"
#include "src/offload/tenant_config.h"
#include "src/resilience/resilience.h"
#include "src/sim/server.h"
#include "src/topo/server.h"
#include "src/workload/trace/trace.h"

namespace snicsim {
namespace offload {

// Everything one tenant did, as exact counters; digested by Fingerprint().
// Pool indices are deliberately absent so a tenant's digest is invariant
// under re-homing onto a different (still disjoint) pool.
struct TenantResult {
  std::string id;
  TenantKind kind = TenantKind::kSketch;
  uint64_t generated = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t shed_codel = 0;
  uint64_t shed_bucket = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t filtered = 0;
  uint64_t slo_checked = 0;
  uint64_t violations = 0;
  uint64_t crossings = 0;
  uint64_t path3_bytes = 0;
  uint64_t grants = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double busy_us = 0.0;

  // Closed iff both ledger identities hold (see file header).
  bool LedgerClosed() const {
    return generated == admitted + shed && shed == shed_codel + shed_bucket &&
           admitted == completed + failed;
  }
  double ViolationFraction() const {
    return slo_checked == 0
               ? 0.0
               : static_cast<double>(violations) / static_cast<double>(slo_checked);
  }
  std::string Fingerprint() const;
};

struct TenantSetResult {
  std::vector<TenantResult> tenants;

  bool AllLedgersClosed() const {
    for (const TenantResult& t : tenants) {
      if (!t.LedgerClosed()) {
        return false;
      }
    }
    return true;
  }
  const TenantResult* Find(const std::string& id) const {
    for (const TenantResult& t : tenants) {
      if (t.id == id) {
        return &t;
      }
    }
    return nullptr;
  }
  // Concatenation of per-tenant digests, in config order.
  std::string Fingerprint() const;
};

class TenantManager {
 public:
  // `inj` may be null (fault-free run). `host_domain`/`soc_domain` are the
  // fault-plan domain names of this server's two sides.
  TenantManager(Simulator* sim, BluefieldServer* server,
                fault::FaultInjector* inj, const TenantSetConfig& cfg,
                std::string host_domain, std::string soc_domain);

  TenantManager(const TenantManager&) = delete;
  TenantManager& operator=(const TenantManager&) = delete;

  const TenantSetConfig& config() const { return cfg_; }

  // Attaches a non-stationary trace *before* Start: each non-kv tenant's
  // deterministic arrival spacing is divided by the segment's bg
  // multiplier (compaction-style background phases), and bg == 0 pauses
  // the stream until the next segment boundary. No draws are involved, so
  // a flat trace (bg == 1 everywhere) replays byte-identically.
  void SetTrace(const trace::TraceDriver* trace) { trace_ = trace; }

  // Begins every non-kv tenant's open-loop arrival stream (first item one
  // spacing after now). Items already in flight at StopIssuing() drain to
  // completion before the sim goes quiet, which is what closes the ledger.
  void Start();
  void StopIssuing();

  // Epoch-autoscaler actuators and signals, forwarded to the pool
  // arbiters: re-provision a pool's core count (retire-debt shrink, no
  // in-flight work killed), retune one tenant's WRR weight (tenant index
  // in config order), and read a pool's cumulative granted service time
  // for per-epoch utilization deltas.
  void SetPoolCores(int pool, int cores);
  void SetTenantWeight(int tenant, int weight);
  int PoolCores(int pool) const;
  SimTime PoolBusy(int pool) const;

  // Serving-path feed for kv-kind tenants: one sketch item per served GET
  // (OnKvServed, from the ServingExecutor) and SLO accounting on the
  // request's own terminal latency (OnKvOutcome, from the client fleet).
  void OnKvServed(int path, uint32_t bytes);
  void OnKvOutcome(SimTime latency, bool ok);

  // Aggregate path-③ bytes shipped by tenant crossings; the governor adds
  // this to the serving plane's own path-③ rate when metering its budget.
  uint64_t path3_bytes() const;

  // Aggregate SLO ledger across tenants — the SloMonitor's per-epoch feed
  // (cheap cumulative sums, no Results() materialization).
  uint64_t slo_checked_total() const;
  uint64_t violations_total() const;

  // Exposes aggregate counters under component "tenant" (leaf catalog:
  // DESIGN.md section 6.2).
  void RegisterMetrics(MetricsRegistry* reg);

  TenantSetResult Results() const;

 private:
  struct Tenant {
    TenantSpec spec;
    std::vector<TenantStage> chain;
    Placement entry = Placement::kSoc;
    uint64_t hash_seed = 0;  // cfg.seed ^ FNV(id): private per-item stream
    int pool_local = 0;      // index within the pool's arbiter
    uint64_t seq = 0;
    resilience::CodelState codel;
    resilience::TokenBucketState bucket;
    TenantResult r;
    Histogram lat{5};
  };

  void Arrive(int t);
  bool Admit(Tenant& tn, uint64_t seq);
  void Inject(Tenant& tn, SimTime born, uint32_t bytes);
  // Runs chain[idx] with the item currently at `loc` carrying `bytes`.
  void RunStage(int t, size_t idx, Placement loc, uint32_t bytes, SimTime born,
                uint64_t seq);
  void Finish(int t, Placement loc, uint32_t bytes, SimTime born);
  void Complete(Tenant& tn, SimTime born, SimTime done);
  // Ships the item across path ③ and calls `then(bytes)` on delivery.
  void Cross(int t, Placement from, uint32_t bytes,
             std::function<void(SimTime)> then);
  bool Dead(const std::string& domain, SimTime from, SimTime to) const;
  const std::string& DomainOf(Placement p) const {
    return p == Placement::kHost ? host_domain_ : soc_domain_;
  }

  Simulator* sim_;
  BluefieldServer* server_;
  fault::FaultInjector* inj_;
  TenantSetConfig cfg_;
  std::string host_domain_;
  std::string soc_domain_;
  const trace::TraceDriver* trace_ = nullptr;
  bool issuing_ = false;

  std::vector<std::unique_ptr<WeightedArbiter>> pools_;
  std::unique_ptr<MultiServer> host_pool_;
  std::vector<Tenant> tenants_;
  uint64_t ship_seq_ = 0;
};

}  // namespace offload
}  // namespace snicsim

#endif  // SRC_OFFLOAD_TENANCY_H_
