// LineFS-style pipelined offload (paper citation [18]): a chain of
// processing stages over an item stream, where each stage runs on either
// the host CPU or the SmartNIC SoC.
//
// Crossing a placement boundary ships the item across path ③ (host↔SoC),
// with all of that path's costs — the double PCIe1 crossing, the NIC
// pipeline work, and the interference with inter-machine traffic. The
// interesting trade this exposes is exactly LineFS's: moving stages to the
// SoC frees host CPU cycles, at the price of intra-machine transfers that
// must respect the §4 bandwidth budget.
#ifndef SRC_OFFLOAD_PIPELINE_H_
#define SRC_OFFLOAD_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/nic/verb.h"
#include "src/sim/server.h"
#include "src/topo/server.h"

namespace snicsim {
namespace offload {

enum class Placement {
  kHost,
  kSoc,
};

struct StageSpec {
  std::string name;
  SimTime service = FromNanos(500);  // per-item CPU time
  int workers = 1;                   // cores usable by this stage
  Placement placement = Placement::kHost;
};

struct PipelineStats {
  uint64_t items_completed = 0;
  uint64_t boundary_crossings = 0;
  SimTime host_cpu_time = 0;
  SimTime soc_cpu_time = 0;
};

class OffloadPipeline {
 public:
  // `item_bytes` is the payload shipped across each placement boundary.
  OffloadPipeline(Simulator* sim, BluefieldServer* server, std::vector<StageSpec> stages,
                  uint32_t item_bytes)
      : sim_(sim), server_(server), stages_(std::move(stages)), item_bytes_(item_bytes) {
    SNIC_CHECK(!stages_.empty());
    for (const StageSpec& st : stages_) {
      pools_.push_back(std::make_unique<MultiServer>(
          sim, "stage." + st.name, st.workers));
    }
  }

  OffloadPipeline(const OffloadPipeline&) = delete;
  OffloadPipeline& operator=(const OffloadPipeline&) = delete;

  // Submits one item; `done` fires when it leaves the last stage.
  void Submit(std::function<void(SimTime)> done) {
    RunStage(0, sim_->now(), std::move(done));
  }

  const PipelineStats& stats() const { return stats_; }
  size_t stage_count() const { return stages_.size(); }

 private:
  void RunStage(size_t index, SimTime ready, std::function<void(SimTime)> done) {
    if (index == stages_.size()) {
      ++stats_.items_completed;
      done(ready);
      return;
    }
    const StageSpec& spec = stages_[index];
    // Serve the item on this stage's core pool.
    const SimTime served =
        pools_[index]->EnqueueAt(ready, spec.service);
    (spec.placement == Placement::kHost ? stats_.host_cpu_time : stats_.soc_cpu_time) +=
        spec.service;
    // If the next stage lives on the other side, ship the item over path ③.
    const bool crosses =
        index + 1 < stages_.size() && stages_[index + 1].placement != spec.placement;
    if (!crosses) {
      sim_->At(served, [this, index, done = std::move(done)]() mutable {
        RunStage(index + 1, sim_->now(), std::move(done));
      });
      return;
    }
    ++stats_.boundary_crossings;
    NicEndpoint* src = spec.placement == Placement::kHost ? server_->host_ep()
                                                          : server_->soc_ep();
    NicEndpoint* dst = spec.placement == Placement::kHost ? server_->soc_ep()
                                                          : server_->host_ep();
    sim_->At(served, [this, index, src, dst, done = std::move(done)]() mutable {
      server_->nic().ExecuteLocalOp(
          src, dst, Verb::kWrite, 0x6000'0000 + (ship_seq_++ % 8192) * 4096, item_bytes_,
          [this, index, done = std::move(done)](SimTime delivered) mutable {
            sim_->At(std::max(delivered, sim_->now()), [this, index,
                                                        done = std::move(done)]() mutable {
              RunStage(index + 1, sim_->now(), std::move(done));
            });
          });
    });
  }

  Simulator* sim_;
  BluefieldServer* server_;
  std::vector<StageSpec> stages_;
  uint32_t item_bytes_;
  std::vector<std::unique_ptr<MultiServer>> pools_;
  PipelineStats stats_;
  uint64_t ship_seq_ = 0;
};

}  // namespace offload
}  // namespace snicsim

#endif  // SRC_OFFLOAD_PIPELINE_H_
