#include "src/offload/tenancy.h"

#include <cstdio>
#include <utility>

#include "src/common/log.h"
#include "src/nic/verb.h"

namespace snicsim {
namespace offload {

namespace {

// Per-tenant shedder parameters. The CoDel pair matches the serving plane's
// overload-bench settings so one mental model covers both; the bucket depth
// is small because tenant streams are steady open-loop, not bursty clients.
constexpr SimTime kCodelTarget = FromMicros(8);
constexpr SimTime kCodelInterval = FromMicros(20);
constexpr double kBucketDepth = 4.0;
// Tenants carry two value classes, alternating by item seq; class 0 is shed
// first when the tenant's own standing queue grows.
constexpr int kValueClasses = 2;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void AppendU(std::string* out, uint64_t v) {
  *out += std::to_string(v);
  out->push_back('|');
}

void AppendD(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
  out->push_back('|');
}

}  // namespace

std::string TenantResult::Fingerprint() const {
  std::string out = id;
  out.push_back('|');
  out += TenantKindName(kind);
  out.push_back('|');
  AppendU(&out, generated);
  AppendU(&out, admitted);
  AppendU(&out, shed);
  AppendU(&out, shed_codel);
  AppendU(&out, shed_bucket);
  AppendU(&out, completed);
  AppendU(&out, failed);
  AppendU(&out, filtered);
  AppendU(&out, slo_checked);
  AppendU(&out, violations);
  AppendU(&out, crossings);
  AppendU(&out, path3_bytes);
  AppendU(&out, grants);
  AppendD(&out, p50_us);
  AppendD(&out, p99_us);
  AppendD(&out, busy_us);
  return out;
}

std::string TenantSetResult::Fingerprint() const {
  std::string out;
  for (const TenantResult& t : tenants) {
    out += t.Fingerprint();
    out.push_back(';');
  }
  return out;
}

TenantManager::TenantManager(Simulator* sim, BluefieldServer* server,
                             fault::FaultInjector* inj,
                             const TenantSetConfig& cfg,
                             std::string host_domain, std::string soc_domain)
    : sim_(sim),
      server_(server),
      inj_(inj),
      cfg_(cfg),
      host_domain_(std::move(host_domain)),
      soc_domain_(std::move(soc_domain)) {
  SNIC_CHECK(!cfg_.empty());
  host_pool_ =
      std::make_unique<MultiServer>(sim, "tenant.host", cfg_.host_cores);
  // Pool membership in config order fixes each tenant's arbiter slot.
  std::vector<std::vector<int>> weights(cfg_.pools.size());
  for (const TenantSpec& spec : cfg_.tenants) {
    Tenant tn;
    tn.spec = spec;
    tn.chain = spec.stages.empty() ? DefaultStages(spec.kind) : spec.stages;
    SNIC_CHECK(!tn.chain.empty());
    tn.entry = EntryPlacement(spec);
    tn.hash_seed = cfg_.seed ^ Fnv1a(spec.id);
    tn.pool_local = static_cast<int>(weights[spec.pool].size());
    weights[spec.pool].push_back(spec.weight);
    tn.r.id = spec.id;
    tn.r.kind = spec.kind;
    tenants_.push_back(std::move(tn));
  }
  pools_.resize(cfg_.pools.size());
  for (size_t p = 0; p < cfg_.pools.size(); ++p) {
    if (!weights[p].empty()) {
      pools_[p] = std::make_unique<WeightedArbiter>(sim, cfg_.pools[p],
                                                    std::move(weights[p]));
    }
  }
}

void TenantManager::Start() {
  issuing_ = true;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    const TenantSpec& spec = tenants_[t].spec;
    if (spec.kind == TenantKind::kKv || spec.mops <= 0.0) {
      continue;  // kv tenants are fed by the serving path
    }
    sim_->In(FromMicros(1.0 / spec.mops),
             [this, t] { Arrive(static_cast<int>(t)); });
  }
}

void TenantManager::StopIssuing() { issuing_ = false; }

void TenantManager::SetPoolCores(int pool, int cores) {
  SNIC_CHECK_GE(pool, 0);
  SNIC_CHECK_LT(static_cast<size_t>(pool), pools_.size());
  SNIC_CHECK(pools_[static_cast<size_t>(pool)] != nullptr);
  pools_[static_cast<size_t>(pool)]->SetCores(cores);
}

void TenantManager::SetTenantWeight(int tenant, int weight) {
  SNIC_CHECK_GE(tenant, 0);
  SNIC_CHECK_LT(static_cast<size_t>(tenant), tenants_.size());
  const Tenant& tn = tenants_[static_cast<size_t>(tenant)];
  pools_[static_cast<size_t>(tn.spec.pool)]->SetWeight(tn.pool_local, weight);
}

int TenantManager::PoolCores(int pool) const {
  SNIC_CHECK_GE(pool, 0);
  SNIC_CHECK_LT(static_cast<size_t>(pool), pools_.size());
  SNIC_CHECK(pools_[static_cast<size_t>(pool)] != nullptr);
  return pools_[static_cast<size_t>(pool)]->cores();
}

SimTime TenantManager::PoolBusy(int pool) const {
  SNIC_CHECK_GE(pool, 0);
  SNIC_CHECK_LT(static_cast<size_t>(pool), pools_.size());
  SNIC_CHECK(pools_[static_cast<size_t>(pool)] != nullptr);
  return pools_[static_cast<size_t>(pool)]->busy_total();
}

void TenantManager::Arrive(int t) {
  if (!issuing_) {
    return;
  }
  Tenant& tn = tenants_[static_cast<size_t>(t)];
  if (trace_ != nullptr) {
    const double bg = trace_->BgAt(sim_->now());
    if (bg <= 0.0) {
      // Paused phase: no item now; re-arm at the next segment boundary.
      // Past the trace end the boundary is behind us and the stream ends.
      const SimTime next = trace_->NextChangeAt(sim_->now());
      if (next > sim_->now()) {
        sim_->At(next, [this, t] { Arrive(t); });
      }
      return;
    }
    Inject(tn, sim_->now(), tn.spec.item_bytes);
    sim_->In(FromMicros(1.0 / (tn.spec.mops * bg)), [this, t] { Arrive(t); });
    return;
  }
  Inject(tn, sim_->now(), tn.spec.item_bytes);
  sim_->In(FromMicros(1.0 / tn.spec.mops), [this, t] { Arrive(t); });
}

bool TenantManager::Admit(Tenant& tn, uint64_t seq) {
  const SimTime now = sim_->now();
  // Per-tenant CoDel over the tenant's own head-of-line wait on its SoC
  // pool: a standing queue sheds the tenant's low value classes first.
  WeightedArbiter* pool = pools_[static_cast<size_t>(tn.spec.pool)].get();
  const int cls = static_cast<int>(seq % kValueClasses);
  const int level = tn.codel.Observe(pool->QueueDelay(tn.pool_local),
                                     kCodelTarget, kCodelInterval, now);
  if (cls < level) {
    ++tn.r.shed_codel;
    return false;
  }
  // Per-tenant admission cap: the isolation backstop.
  if (tn.spec.cap_mops > 0.0 &&
      !tn.bucket.TryTake(tn.spec.cap_mops, kBucketDepth, now)) {
    ++tn.r.shed_bucket;
    return false;
  }
  return true;
}

void TenantManager::Inject(Tenant& tn, SimTime born, uint32_t bytes) {
  ++tn.r.generated;
  const uint64_t seq = tn.seq++;
  if (!Admit(tn, seq)) {
    return;
  }
  ++tn.r.admitted;
  const int t = static_cast<int>(&tn - tenants_.data());
  RunStage(t, 0, tn.entry, bytes, born, seq);
}

void TenantManager::RunStage(int t, size_t idx, Placement loc, uint32_t bytes,
                             SimTime born, uint64_t seq) {
  Tenant& tn = tenants_[static_cast<size_t>(t)];
  if (idx == tn.chain.size()) {
    Finish(t, loc, bytes, born);
    return;
  }
  const TenantStage& st = tn.chain[idx];
  if (st.placement != loc) {
    Cross(t, loc, bytes, [this, t, idx, bytes, born, seq,
                          to = st.placement](SimTime) {
      RunStage(t, idx, to, bytes, born, seq);
    });
    return;
  }
  const SimTime now = sim_->now();
  const std::string& dom = DomainOf(loc);
  if (Dead(dom, now, now)) {
    ++tn.r.failed;
    return;
  }
  SimTime service = st.curve.Cost(bytes);
  if (inj_ != nullptr) {
    service += inj_->StallDelay(dom, now);
  }
  // Fires when the stage's core pool finishes the item; a crash anywhere in
  // the queue+service span kills it.
  auto complete = [this, t, idx, loc, bytes, seq, born, now](SimTime finish) {
    Tenant& done_tn = tenants_[static_cast<size_t>(t)];
    const TenantStage& done_st = done_tn.chain[idx];
    if (Dead(DomainOf(loc), now, finish)) {
      ++done_tn.r.failed;
      return;
    }
    if (done_st.op == StageOp::kScan &&
        !StagePasses(done_tn.hash_seed, seq, done_st.selectivity)) {
      // Non-matching record: dies at this side, never crosses back — the
      // pushdown win. Still a completion for the ledger.
      ++done_tn.r.filtered;
      Complete(done_tn, born, finish);
      return;
    }
    RunStage(t, idx + 1, loc, StageOutputBytes(done_st, bytes), born, seq);
  };
  if (loc == Placement::kSoc) {
    pools_[static_cast<size_t>(tn.spec.pool)]->Submit(tn.pool_local, service,
                                                      std::move(complete));
  } else {
    host_pool_->EnqueueAt(now, service,
                          [this, complete = std::move(complete)]() mutable {
                            complete(sim_->now());
                          });
  }
}

void TenantManager::Finish(int t, Placement loc, uint32_t bytes, SimTime born) {
  Tenant& tn = tenants_[static_cast<size_t>(t)];
  // Results are consumed at the tenant's entry side; ship the (possibly
  // compressed) item back if the chain left it on the other side.
  if (loc != tn.entry) {
    Cross(t, loc, bytes, [this, t, born](SimTime delivered) {
      Tenant& back = tenants_[static_cast<size_t>(t)];
      Complete(back, born, delivered);
    });
    return;
  }
  Complete(tn, born, sim_->now());
}

void TenantManager::Complete(Tenant& tn, SimTime born, SimTime done) {
  ++tn.r.completed;
  const SimTime lat = done - born;
  tn.lat.Record(lat);
  if (tn.spec.slo_us > 0.0 && tn.spec.kind != TenantKind::kKv) {
    ++tn.r.slo_checked;
    if (lat > FromMicros(tn.spec.slo_us)) {
      ++tn.r.violations;
    }
  }
}

void TenantManager::Cross(int t, Placement from, uint32_t bytes,
                          std::function<void(SimTime)> then) {
  Tenant& tn = tenants_[static_cast<size_t>(t)];
  const SimTime now = sim_->now();
  // A crossing touches both sides; either side being down kills the item.
  if (Dead(host_domain_, now, now) || Dead(soc_domain_, now, now)) {
    ++tn.r.failed;
    return;
  }
  ++tn.r.crossings;
  tn.r.path3_bytes += bytes;
  NicEndpoint* src =
      from == Placement::kHost ? server_->host_ep() : server_->soc_ep();
  NicEndpoint* dst =
      from == Placement::kHost ? server_->soc_ep() : server_->host_ep();
  server_->nic().ExecuteLocalOp(
      src, dst, Verb::kWrite, 0x7000'0000 + (ship_seq_++ % 8192) * 4096, bytes,
      [this, then = std::move(then)](SimTime delivered) mutable {
        sim_->At(std::max(delivered, sim_->now()),
                 [this, then = std::move(then)]() mutable {
                   then(sim_->now());
                 });
      });
}

bool TenantManager::Dead(const std::string& domain, SimTime from,
                         SimTime to) const {
  if (inj_ == nullptr) {
    return false;
  }
  return inj_->CrashedAt(domain, from) || inj_->CrashKills(domain, from, to);
}

void TenantManager::OnKvServed(int /*path*/, uint32_t bytes) {
  for (Tenant& tn : tenants_) {
    if (tn.spec.kind == TenantKind::kKv) {
      // The sketch item carries the served value's size, not item_bytes:
      // telemetry cost tracks real traffic.
      Inject(tn, sim_->now(), bytes);
    }
  }
}

void TenantManager::OnKvOutcome(SimTime latency, bool ok) {
  for (Tenant& tn : tenants_) {
    if (tn.spec.kind != TenantKind::kKv || tn.spec.slo_us <= 0.0) {
      continue;
    }
    ++tn.r.slo_checked;
    if (!ok || latency > FromMicros(tn.spec.slo_us)) {
      ++tn.r.violations;
    }
  }
}

uint64_t TenantManager::path3_bytes() const {
  uint64_t total = 0;
  for (const Tenant& tn : tenants_) {
    total += tn.r.path3_bytes;
  }
  return total;
}

uint64_t TenantManager::slo_checked_total() const {
  uint64_t total = 0;
  for (const Tenant& tn : tenants_) {
    total += tn.r.slo_checked;
  }
  return total;
}

uint64_t TenantManager::violations_total() const {
  uint64_t total = 0;
  for (const Tenant& tn : tenants_) {
    total += tn.r.violations;
  }
  return total;
}

void TenantManager::RegisterMetrics(MetricsRegistry* reg) {
  auto sum = [this](uint64_t TenantResult::*field) {
    uint64_t total = 0;
    for (const Tenant& tn : tenants_) {
      total += tn.r.*field;
    }
    return static_cast<double>(total);
  };
  reg->Register("tenant", "generated", "count",
                "tenant items generated (all tenants)",
                [sum] { return sum(&TenantResult::generated); });
  reg->Register("tenant", "admitted", "count",
                "tenant items past per-tenant admission",
                [sum] { return sum(&TenantResult::admitted); });
  reg->Register("tenant", "completed", "count",
                "tenant items that finished their pipeline",
                [sum] { return sum(&TenantResult::completed); });
  reg->Register("tenant", "failed", "count",
                "tenant items killed by crash windows",
                [sum] { return sum(&TenantResult::failed); });
  reg->Register("tenant", "shed_codel", "count",
                "tenant items shed by per-tenant CoDel controllers",
                [sum] { return sum(&TenantResult::shed_codel); });
  reg->Register("tenant", "shed_bucket", "count",
                "tenant items shed by per-tenant admission caps",
                [sum] { return sum(&TenantResult::shed_bucket); });
  reg->Register("tenant", "filtered", "count",
                "items terminated at a scan stage (pushdown win)",
                [sum] { return sum(&TenantResult::filtered); });
  reg->Register("tenant", "violations", "count",
                "tenant completions that missed their SLO",
                [sum] { return sum(&TenantResult::violations); });
  reg->Register("tenant", "crossings", "count",
                "tenant placement-boundary crossings over path 3",
                [sum] { return sum(&TenantResult::crossings); });
  reg->Register("tenant", "path3_bytes", "bytes",
                "bytes tenant pipelines shipped across path 3",
                [sum] { return sum(&TenantResult::path3_bytes); });
  reg->Register("tenant", "grants", "count",
                "SoC-pool WRR grants across all tenants", [this] {
                  double total = 0.0;
                  for (const Tenant& tn : tenants_) {
                    const auto& pool = pools_[static_cast<size_t>(tn.spec.pool)];
                    if (pool) {
                      total += static_cast<double>(pool->grants(tn.pool_local));
                    }
                  }
                  return total;
                });
}

TenantSetResult TenantManager::Results() const {
  TenantSetResult out;
  for (const Tenant& tn : tenants_) {
    TenantResult r = tn.r;
    r.shed = r.shed_codel + r.shed_bucket;
    const auto& pool = pools_[static_cast<size_t>(tn.spec.pool)];
    if (pool) {
      r.grants = pool->grants(tn.pool_local);
      r.busy_us = ToMicros(pool->busy(tn.pool_local));
    }
    r.p50_us = ToMicros(tn.lat.Percentile(50.0));
    r.p99_us = ToMicros(tn.lat.Percentile(99.0));
    out.tenants.push_back(std::move(r));
  }
  return out;
}

}  // namespace offload
}  // namespace snicsim
