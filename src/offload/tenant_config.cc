#include "src/offload/tenant_config.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/json_scan.h"

namespace snicsim {
namespace offload {

std::vector<TenantStage> DefaultStages(TenantKind kind) {
  switch (kind) {
    case TenantKind::kKv:
      // Per-request telemetry sketch riding next to the KV serving path.
      return {TenantStage{"kv_sketch", StageOp::kSketch,
                          ServiceCurve{FromNanos(120), 0}, Placement::kSoc}};
    case TenantKind::kFilter:
      // Host-originated records scanned on the SoC; ~35% match and cross
      // back, the rest die at the NIC (the pushdown win).
      return {TenantStage{"scan", StageOp::kScan,
                          ServiceCurve{FromNanos(300), FromNanos(600)},
                          Placement::kSoc, /*selectivity=*/0.35}};
    case TenantKind::kCompress:
      // Host-originated payloads compressed on the SoC; the return crossing
      // carries only ratio * bytes.
      return {TenantStage{"compress", StageOp::kCompress,
                          ServiceCurve{FromNanos(500), FromNanos(900)},
                          Placement::kSoc, /*selectivity=*/1.0,
                          /*ratio=*/0.45}};
    case TenantKind::kSketch:
      // SoC-resident telemetry: items are born and die on the SoC, no
      // path-3 crossings at all.
      return {TenantStage{"sketch", StageOp::kSketch,
                          ServiceCurve{FromNanos(250), FromNanos(100)},
                          Placement::kSoc}};
  }
  return {};
}

Placement EntryPlacement(const TenantSpec& spec) {
  switch (spec.kind) {
    case TenantKind::kFilter:
    case TenantKind::kCompress:
      return Placement::kHost;
    case TenantKind::kSketch:
      return Placement::kSoc;
    case TenantKind::kKv: {
      const auto chain =
          spec.stages.empty() ? DefaultStages(spec.kind) : spec.stages;
      return chain.empty() ? Placement::kSoc : chain.front().placement;
    }
  }
  return Placement::kSoc;
}

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string> SplitEntries(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseKind(const std::string& s, TenantKind* out) {
  if (s == "kv") {
    *out = TenantKind::kKv;
  } else if (s == "filter") {
    *out = TenantKind::kFilter;
  } else if (s == "compress") {
    *out = TenantKind::kCompress;
  } else if (s == "sketch") {
    *out = TenantKind::kSketch;
  } else {
    return false;
  }
  return true;
}

bool ValidId(const std::string& id) {
  if (id.empty()) {
    return false;
  }
  for (char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-' &&
        c != '.') {
      return false;
    }
  }
  return true;
}

// Structural checks shared by both grammar forms.
bool Validate(TenantSetConfig* cfg, std::string* error) {
  if (cfg->tenants.empty()) {
    return true;
  }
  if (cfg->pools.empty()) {
    cfg->pools = {2};  // one shared 2-core pool unless declared
  }
  for (int c : cfg->pools) {
    if (c < 1) {
      *error = "pool core counts must be >= 1";
      return false;
    }
  }
  if (cfg->host_cores < 1) {
    *error = "host_cores must be >= 1";
    return false;
  }
  if (cfg->slo_budget < 0.0 || cfg->slo_budget > 1.0) {
    *error = "budget not in [0, 1]";
    return false;
  }
  for (size_t i = 0; i < cfg->tenants.size(); ++i) {
    const TenantSpec& t = cfg->tenants[i];
    if (!ValidId(t.id)) {
      *error = "tenant id '" + t.id + "' must be non-empty [A-Za-z0-9._-]";
      return false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (cfg->tenants[j].id == t.id) {
        *error = "duplicate tenant id '" + t.id + "'";
        return false;
      }
    }
    if (t.weight < 1) {
      *error = "tenant '" + t.id + "': weight must be >= 1";
      return false;
    }
    if (t.mops < 0.0 || t.cap_mops < 0.0 || t.slo_us < 0.0) {
      *error = "tenant '" + t.id + "': rates and SLO must be >= 0";
      return false;
    }
    if (t.item_bytes < 1) {
      *error = "tenant '" + t.id + "': bytes must be >= 1";
      return false;
    }
    if (t.pool < 0 || t.pool >= static_cast<int>(cfg->pools.size())) {
      *error = "tenant '" + t.id + "': pool " + std::to_string(t.pool) +
               " out of range (have " + std::to_string(cfg->pools.size()) +
               " pools)";
      return false;
    }
  }
  return true;
}

bool ParseInlineTenant(const std::string& value, TenantSpec* t,
                       std::string* error) {
  const auto f = SplitFields(value, ':');
  if (f.size() < 6 || f.size() > 8) {
    *error = "tenant wants ID:KIND:WEIGHT:MOPS:BYTES:SLO_US[:CAP_MOPS[:POOL]], got '" +
             value + "'";
    return false;
  }
  t->id = f[0];
  if (!ParseKind(f[1], &t->kind)) {
    *error = "unknown tenant kind '" + f[1] + "' (want kv|filter|compress|sketch)";
    return false;
  }
  double w = 0.0;
  double mops = 0.0;
  double bytes = 0.0;
  double slo = 0.0;
  if (!ParseNumber(f[2], &w) || !ParseNumber(f[3], &mops) ||
      !ParseNumber(f[4], &bytes) || !ParseNumber(f[5], &slo)) {
    *error = "bad tenant numbers in '" + value + "'";
    return false;
  }
  t->weight = static_cast<int>(w);
  t->mops = mops;
  t->item_bytes = static_cast<uint32_t>(bytes);
  t->slo_us = slo;
  if (f.size() >= 7) {
    double cap = 0.0;
    if (!ParseNumber(f[6], &cap)) {
      *error = "bad tenant cap_mops '" + f[6] + "'";
      return false;
    }
    t->cap_mops = cap;
  }
  if (f.size() == 8) {
    double pool = 0.0;
    if (!ParseNumber(f[7], &pool)) {
      *error = "bad tenant pool '" + f[7] + "'";
      return false;
    }
    t->pool = static_cast<int>(pool);
  }
  return true;
}

// @file.json form, via the shared scanner (src/common/json_scan.h).
bool ParseJsonTenants(const std::string& text, TenantSetConfig* out,
                      std::string* error) {
  JsonScanner s(text, error);
  if (!s.Expect('{')) {
    return false;
  }
  bool more = !s.Peek('}');
  if (!more) {
    ++s.pos;
  }
  while (more) {
    std::string key;
    if (!s.ReadString(&key) || !s.Expect(':')) {
      return false;
    }
    if (key == "cores") {
      const bool ok = s.ReadArray([&] {
        double v = 0.0;
        if (!s.ReadNumber(&v)) {
          return false;
        }
        out->pools.push_back(static_cast<int>(v));
        return true;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "host_cores") {
      double v = 0.0;
      if (!s.ReadNumber(&v)) {
        return false;
      }
      out->host_cores = static_cast<int>(v);
    } else if (key == "seed") {
      double v = 0.0;
      if (!s.ReadNumber(&v)) {
        return false;
      }
      if (v < 0.0) {
        return s.Fail("bad seed");
      }
      out->seed = static_cast<uint64_t>(v);
    } else if (key == "budget") {
      if (!s.ReadNumber(&out->slo_budget)) {
        return false;
      }
    } else if (key == "tenants") {
      const bool ok = s.ReadArray([&] {
        TenantSpec t;
        std::string kind;
        if (!s.ReadFlatObject([&](const std::string& k, const std::string& sv,
                                  double nv, bool is_string) {
              if (k == "id" && is_string) {
                t.id = sv;
                return true;
              }
              if (k == "kind" && is_string) {
                kind = sv;
                return true;
              }
              if (k == "weight" && !is_string) {
                t.weight = static_cast<int>(nv);
                return true;
              }
              if (k == "mops" && !is_string) {
                t.mops = nv;
                return true;
              }
              if (k == "bytes" && !is_string) {
                t.item_bytes = static_cast<uint32_t>(nv);
                return true;
              }
              if (k == "slo_us" && !is_string) {
                t.slo_us = nv;
                return true;
              }
              if (k == "cap_mops" && !is_string) {
                t.cap_mops = nv;
                return true;
              }
              if (k == "pool" && !is_string) {
                t.pool = static_cast<int>(nv);
                return true;
              }
              return s.Fail("unknown tenant field '" + k + "'");
            })) {
          return false;
        }
        if (kind.empty() || !ParseKind(kind, &t.kind)) {
          return s.Fail("tenant '" + t.id + "': unknown kind '" + kind +
                        "' (want kv|filter|compress|sketch)");
        }
        out->tenants.push_back(t);
        return true;
      });
      if (!ok) {
        return false;
      }
    } else {
      return s.Fail("unknown tenant-set key '" + key + "'");
    }
    if (s.Peek(',')) {
      ++s.pos;
      continue;
    }
    if (!s.Expect('}')) {
      return false;
    }
    more = false;
  }
  s.SkipWs();
  if (s.pos != text.size()) {
    return s.Fail("trailing characters after tenant-set object");
  }
  return true;
}

}  // namespace

std::string TenantSetConfig::Serialize() const {
  if (empty()) {
    return "";
  }
  std::string out = "cores=";
  for (size_t i = 0; i < pools.size(); ++i) {
    if (i > 0) {
      out.push_back(':');
    }
    out += std::to_string(pools[i]);
  }
  out += ",host_cores=" + std::to_string(host_cores);
  out += ",seed=" + std::to_string(seed);
  out += ",budget=" + FmtDouble(slo_budget);
  for (const TenantSpec& t : tenants) {
    out += ",tenant=" + t.id + ":" + TenantKindName(t.kind) + ":" +
           std::to_string(t.weight) + ":" + FmtDouble(t.mops) + ":" +
           std::to_string(t.item_bytes) + ":" + FmtDouble(t.slo_us) + ":" +
           FmtDouble(t.cap_mops) + ":" + std::to_string(t.pool);
  }
  return out;
}

bool ParseTenantSet(const std::string& spec, TenantSetConfig* out,
                    std::string* error) {
  *out = TenantSetConfig();
  error->clear();
  if (spec.empty()) {
    return true;
  }
  if (spec[0] == '@') {
    const std::string path = spec.substr(1);
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      *error = "cannot read tenant-set file '" + path + "'";
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return ParseJsonTenants(buf.str(), out, error) && Validate(out, error);
  }
  for (const std::string& entry : SplitEntries(spec)) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      *error = "tenant entry '" + entry + "' is not key=value";
      return false;
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "cores") {
      out->pools.clear();
      for (const std::string& f : SplitFields(value, ':')) {
        double v = 0.0;
        if (!ParseNumber(f, &v) || v < 1.0) {
          *error = "bad pool core count '" + f + "' (want integers >= 1)";
          return false;
        }
        out->pools.push_back(static_cast<int>(v));
      }
    } else if (key == "host_cores") {
      double v = 0.0;
      if (!ParseNumber(value, &v) || v < 1.0) {
        *error = "bad host_cores '" + value + "'";
        return false;
      }
      out->host_cores = static_cast<int>(v);
    } else if (key == "seed") {
      double v = 0.0;
      if (!ParseNumber(value, &v) || v < 0.0) {
        *error = "bad seed '" + value + "'";
        return false;
      }
      out->seed = static_cast<uint64_t>(v);
    } else if (key == "budget") {
      if (!ParseNumber(value, &out->slo_budget)) {
        *error = "bad budget '" + value + "'";
        return false;
      }
    } else if (key == "tenant") {
      TenantSpec t;
      if (!ParseInlineTenant(value, &t, error)) {
        return false;
      }
      out->tenants.push_back(t);
    } else {
      *error = "unknown tenant key '" + key + "'";
      return false;
    }
  }
  return Validate(out, error);
}

TenantSetConfig TenantsFlag(Flags& flags) {
  const std::string spec = flags.GetString(
      "tenants", "",
      "tenant set: cores=C[:C...],host_cores=N,seed=S,budget=F,"
      "tenant=ID:KIND:WEIGHT:MOPS:BYTES:SLO_US[:CAP_MOPS[:POOL]] "
      "(KIND: kv|filter|compress|sketch), or @file.json");
  TenantSetConfig cfg;
  std::string error;
  if (!ParseTenantSet(spec, &cfg, &error)) {
    std::fprintf(stderr, "--tenants: %s\n", error.c_str());
    std::exit(2);
  }
  return cfg;
}

}  // namespace offload
}  // namespace snicsim
