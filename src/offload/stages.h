// SoC-resident processing-stage library for the multi-tenant offload
// pipelines (the Meili/Mulan shape: regex/filter scan, compression, and
// counting-sketch stages composed into per-tenant chains and scheduled onto
// pooled SoC cores — see src/offload/tenancy.h for the control plane).
//
// Each stage charges a per-item *service curve* — an affine cost in the
// item's current byte size, cost(b) = base + per_kb * b/1KiB — which is how
// the DPA characterization papers model per-item engine work. Stages also
// transform the item: a filter stage terminates a deterministic fraction of
// the stream (non-matching records die at the SoC and never cross back), a
// compression stage shrinks the payload that later stages and the return
// crossing must carry.
#ifndef SRC_OFFLOAD_STAGES_H_
#define SRC_OFFLOAD_STAGES_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/offload/pipeline.h"

namespace snicsim {
namespace offload {

enum class StageOp {
  kScan,      // regex/filter scan: passes a selectivity fraction of items
  kCompress,  // shrinks the payload to ratio * bytes
  kSketch,    // counting sketch / telemetry update; item unchanged
};

constexpr const char* StageOpName(StageOp op) {
  switch (op) {
    case StageOp::kScan:
      return "scan";
    case StageOp::kCompress:
      return "compress";
    case StageOp::kSketch:
      return "sketch";
  }
  return "?";
}

// Affine per-item service cost in the item's current size.
struct ServiceCurve {
  SimTime base = FromNanos(300);
  SimTime per_kb = FromNanos(500);

  SimTime Cost(uint32_t bytes) const {
    return base + static_cast<SimTime>(static_cast<double>(per_kb) *
                                       (static_cast<double>(bytes) / 1024.0));
  }
};

// One stage of a tenant pipeline. `placement` reuses the LineFS-style
// pipeline enum (src/offload/pipeline.h): consecutive stages on different
// sides ship the item across path ③ with all of that path's costs.
struct TenantStage {
  std::string name;
  StageOp op = StageOp::kSketch;
  ServiceCurve curve;
  Placement placement = Placement::kSoc;
  double selectivity = 1.0;  // kScan: fraction of items that survive
  double ratio = 1.0;        // kCompress: output bytes = ratio * input
};

// Deterministic per-item filter decision: a splitmix64 hash of
// (stream seed, item sequence number) compared against the selectivity.
// Hash-based instead of drawn from a shared Rng so that one tenant's stream
// never consumes another tenant's draws — the disjoint-pool metamorphic law
// (tests/offload/tenancy_property_test.cc) depends on this.
inline bool StagePasses(uint64_t seed, uint64_t item_seq, double selectivity) {
  if (selectivity >= 1.0) {
    return true;
  }
  uint64_t x = seed ^ (item_seq * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return u < selectivity;
}

// Applies a stage's transform to the item size (post-service).
inline uint32_t StageOutputBytes(const TenantStage& st, uint32_t bytes) {
  if (st.op != StageOp::kCompress || st.ratio >= 1.0) {
    return bytes;
  }
  const double out = st.ratio * static_cast<double>(bytes);
  return std::max<uint32_t>(1, static_cast<uint32_t>(out));
}

}  // namespace offload
}  // namespace snicsim

#endif  // SRC_OFFLOAD_STAGES_H_
