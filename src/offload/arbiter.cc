#include "src/offload/arbiter.h"

#include <utility>

#include "src/common/log.h"

namespace snicsim {
namespace offload {

WeightedArbiter::WeightedArbiter(Simulator* sim, int cores,
                                 std::vector<int> weights)
    : sim_(sim), cores_(cores), idle_(cores), weights_(std::move(weights)) {
  SNIC_CHECK_GT(cores_, 0);
  SNIC_CHECK_GT(weights_.size(), 0u);
  for (int w : weights_) {
    SNIC_CHECK_GE(w, 1);
  }
  credits_.assign(weights_.size(), 0);
  queues_.resize(weights_.size());
  grants_.assign(weights_.size(), 0);
  busy_.assign(weights_.size(), 0);
}

void WeightedArbiter::Submit(int t, SimTime service,
                             std::function<void(SimTime)> done) {
  SNIC_CHECK_GE(t, 0);
  SNIC_CHECK_LT(static_cast<size_t>(t), queues_.size());
  queues_[t].push_back(Job{service, sim_->now(), std::move(done)});
  Dispatch();
}

void WeightedArbiter::SetWeight(int t, int weight) {
  SNIC_CHECK_GE(t, 0);
  SNIC_CHECK_LT(static_cast<size_t>(t), weights_.size());
  SNIC_CHECK_GE(weight, 1);
  weights_[static_cast<size_t>(t)] = weight;
}

void WeightedArbiter::SetCores(int n) {
  SNIC_CHECK_GT(n, 0);
  if (n > cores_) {
    // Growth may also cancel retire debt a prior shrink still owes.
    int add = n - cores_;
    const int repaid = std::min(add, retire_debt_);
    retire_debt_ -= repaid;
    add -= repaid;
    idle_ += add;
    cores_ = n;
    Dispatch();
    return;
  }
  int drop = cores_ - n;
  const int from_idle = std::min(drop, idle_);
  idle_ -= from_idle;
  retire_debt_ += drop - from_idle;
  cores_ = n;
}

SimTime WeightedArbiter::QueueDelay(int t) const {
  SNIC_CHECK_GE(t, 0);
  SNIC_CHECK_LT(static_cast<size_t>(t), queues_.size());
  if (queues_[t].empty()) {
    return 0;
  }
  return sim_->now() - queues_[t].front().enqueued;
}

void WeightedArbiter::Dispatch() {
  while (idle_ > 0) {
    // Smooth WRR round: backlogged tenants earn weight, the richest is
    // granted (tie -> lowest id) and pays back the active-weight sum.
    int64_t active_sum = 0;
    int pick = -1;
    for (size_t t = 0; t < queues_.size(); ++t) {
      if (queues_[t].empty()) {
        continue;
      }
      credits_[t] += weights_[t];
      active_sum += weights_[t];
      if (pick < 0 || credits_[t] > credits_[static_cast<size_t>(pick)]) {
        pick = static_cast<int>(t);
      }
    }
    if (pick < 0) {
      return;  // nothing queued
    }
    credits_[static_cast<size_t>(pick)] -= active_sum;
    Job job = std::move(queues_[static_cast<size_t>(pick)].front());
    queues_[static_cast<size_t>(pick)].pop_front();
    --idle_;
    ++grants_[static_cast<size_t>(pick)];
    busy_[static_cast<size_t>(pick)] += job.service;
    busy_total_ += job.service;
    const SimTime finish = sim_->now() + job.service;
    sim_->At(finish, [this, finish, cb = std::move(job.done)]() mutable {
      // A completion either repays one core of shrink debt or frees the
      // core back into the pool.
      if (retire_debt_ > 0) {
        --retire_debt_;
      } else {
        ++idle_;
      }
      if (cb) {
        cb(finish);
      }
      Dispatch();
    });
  }
}

}  // namespace offload
}  // namespace snicsim
