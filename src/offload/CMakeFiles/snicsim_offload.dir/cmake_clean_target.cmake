file(REMOVE_RECURSE
  "libsnicsim_offload.a"
)
