# Empty dependencies file for snicsim_offload.
# This may be replaced when dependencies are built.
