file(REMOVE_RECURSE
  "CMakeFiles/snicsim_offload.dir/arbiter.cc.o"
  "CMakeFiles/snicsim_offload.dir/arbiter.cc.o.d"
  "CMakeFiles/snicsim_offload.dir/tenancy.cc.o"
  "CMakeFiles/snicsim_offload.dir/tenancy.cc.o.d"
  "CMakeFiles/snicsim_offload.dir/tenant_config.cc.o"
  "CMakeFiles/snicsim_offload.dir/tenant_config.cc.o.d"
  "libsnicsim_offload.a"
  "libsnicsim_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
