// Deterministic weighted-share arbitration of one pooled SoC core set
// across tenants.
//
// Each WeightedArbiter owns `cores` identical SoC cores and one FIFO per
// tenant. Grants use smooth weighted round-robin: every time a core frees
// up (or a job arrives to an idle pool), each *backlogged* tenant earns its
// weight in credits, the tenant with the most credits is granted (ties break
// to the lowest tenant id) and pays back the sum of active weights. This is
// the classic nginx/LVS smooth-WRR schedule: over any window where a set of
// tenants stays backlogged, grants interleave proportionally to weight with
// no bursts, and the decision depends only on (queue occupancy, credits) —
// both pure functions of sim-time-ordered Submit/completion events — so the
// schedule is byte-stable across --jobs and --sim-threads.
//
// The arbiter is intentionally NOT a MultiServer: next-free-time servers
// pick by earliest availability, which is fair but weightless. Tenancy
// needs the opposite — explicit, configurable shares — and the per-tenant
// head-of-line delay (QueueDelay) doubles as the CoDel signal for the
// per-tenant shedders in src/offload/tenancy.cc.
#ifndef SRC_OFFLOAD_ARBITER_H_
#define SRC_OFFLOAD_ARBITER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace snicsim {
namespace offload {

class WeightedArbiter {
 public:
  // `weights[t]` is tenant t's share; all tenants submitting to this pool
  // must be registered up front so credit state is stable.
  WeightedArbiter(Simulator* sim, int cores, std::vector<int> weights);

  WeightedArbiter(const WeightedArbiter&) = delete;
  WeightedArbiter& operator=(const WeightedArbiter&) = delete;

  // Enqueues `service` picoseconds of work for tenant `t`; `done(finish)`
  // fires when a core completes it.
  void Submit(int t, SimTime service, std::function<void(SimTime)> done);

  // Head-of-line wait of tenant t's queue: now - enqueue time of the oldest
  // undispatched job (0 when empty). This is the standing-queue signal the
  // per-tenant CoDel controllers observe.
  SimTime QueueDelay(int t) const;

  // Epoch-autoscaler actuators. SetWeight retunes tenant t's share for all
  // *future* grants (credits carry over, so the smooth-WRR schedule shifts
  // without a burst). SetCores re-provisions the pool: growth frees cores
  // immediately; shrink first takes idle cores and books the remainder as
  // retire debt — the next completions retire their cores instead of
  // re-entering the pool, so running jobs are never killed and every
  // Submit still completes exactly once.
  void SetWeight(int t, int weight);
  void SetCores(int n);

  int cores() const { return cores_; }
  // Total service time granted across all tenants (the pool-utilization
  // signal the autoscaler samples per epoch).
  SimTime busy_total() const { return busy_total_; }
  uint64_t grants(int t) const { return grants_[t]; }
  SimTime busy(int t) const { return busy_[t]; }
  uint64_t queued_now(int t) const { return queues_[t].size(); }

 private:
  struct Job {
    SimTime service;
    SimTime enqueued;
    std::function<void(SimTime)> done;
  };

  // Grants queued work to idle cores until one of them runs out.
  void Dispatch();

  Simulator* sim_;
  int cores_;
  int idle_;
  int retire_debt_ = 0;  // completions still owed to a shrink
  std::vector<int> weights_;
  std::vector<int64_t> credits_;
  std::vector<std::deque<Job>> queues_;
  std::vector<uint64_t> grants_;
  std::vector<SimTime> busy_;
  SimTime busy_total_ = 0;
};

}  // namespace offload
}  // namespace snicsim

#endif  // SRC_OFFLOAD_ARBITER_H_
