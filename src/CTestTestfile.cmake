# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("fault")
subdirs("resilience")
subdirs("sim")
subdirs("runtime")
subdirs("pcie")
subdirs("mem")
subdirs("nic")
subdirs("rdma")
subdirs("topo")
subdirs("workload/trace")
subdirs("offload")
subdirs("workload")
subdirs("model")
subdirs("kvstore")
subdirs("governor")
subdirs("txn")
