// The rack-scale InfiniBand fabric of the paper's testbed (Table 2): every
// machine connects to one SB7890-class switch. At this abstraction level a
// network cable behaves like a PCIe link — a bidirectional pair of serial
// resources with per-frame header overhead — so the fabric reuses PcieLink /
// PciePath, giving the benches identical counter semantics on wires and
// PCIe channels.
#ifndef SRC_TOPO_FABRIC_H_
#define SRC_TOPO_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/pcie/link.h"
#include "src/pcie/path.h"
#include "src/sim/simulator.h"

namespace snicsim {

class Fabric {
 public:
  Fabric(Simulator* sim, SimTime link_propagation = FromNanos(150),
         SimTime switch_forward = FromNanos(150))
      : sim_(sim),
        link_propagation_(link_propagation),
        ib_switch_("ibsw", switch_forward) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Attaches a machine port of the given bandwidth; kUp is toward the
  // switch, kDown toward the machine.
  PcieLink* AddPort(const std::string& name, Bandwidth bandwidth) {
    ports_.push_back(
        std::make_unique<PcieLink>(sim_, name, bandwidth, link_propagation_));
    // Network cables are the loss domain of the fault model; PCIe channels
    // stay loss-free (src/fault/plan.h).
    ports_.back()->set_lossy(true);
    return ports_.back().get();
  }

  // Route from machine A to machine B through the switch.
  PciePath Route(PcieLink* from, PcieLink* to) {
    PciePath p;
    p.Add(from, LinkDir::kUp);
    p.Add(to, LinkDir::kDown, &ib_switch_);
    return p;
  }

  PcieSwitch& ib_switch() { return ib_switch_; }
  Simulator* sim() const { return sim_; }

 private:
  Simulator* sim_;
  SimTime link_propagation_;
  PcieSwitch ib_switch_;
  std::vector<std::unique_ptr<PcieLink>> ports_;
};

}  // namespace snicsim

#endif  // SRC_TOPO_FABRIC_H_
