#include "src/topo/rack_kv.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/governor/governor.h"
#include "src/governor/policy.h"
#include "src/kvstore/serving.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel.h"
#include "src/sim/pool.h"
#include "src/sim/timer_wheel.h"
#include "src/topo/fabric.h"
#include "src/topo/server.h"
#include "src/topo/shard.h"
#include "src/workload/addr_gen.h"
#include "src/workload/aggregate_fleet.h"
#include "src/workload/client.h"
#include "src/workload/fleet.h"

namespace snicsim {
namespace {

// Terminal status a serving domain reports home for one attempt.
enum class ReplyStatus : uint8_t { kOk, kShed, kNack };

// One in-flight request, resident in its *home* domain's slab. While the
// request is at the serving domain the pointer travels inside closures as
// an opaque handle and is only dereferenced back home. `gen` (bumped on
// every Alloc, zeroed on Free) and `token` (bumped on every dispatch and
// every timeout decision) guard the handle against slab reuse and stale
// replies — the reply that loses the race to a timeout is counted, never
// double-settled.
struct HomeOp {
  uint64_t gen = 0;
  uint64_t token = 0;
  SimTime start = 0;
  int cls = 0;
  uint64_t rank = 0;
  uint32_t bytes = 0;
  bool write = false;
  uint64_t user = 0;
  int attempts = 0;
  int target = 0;
  TimerWheel::TimerId timer = TimerWheel::kNoTimer;
};

// One serve in progress at the serving domain: the watchdog and the NIC
// completion race through `settled`/`gen` exactly like HomeOp replies.
struct ServeCtx {
  uint64_t gen = 0;
  bool settled = false;
  int path = 0;
  SimTime arrived = 0;
  KvRequest req;
  bool write = false;
  DomainId src = 0;
  HomeOp* op = nullptr;  // opaque until it returns home
  uint64_t op_gen = 0;
  uint64_t op_token = 0;
};

// One replication push from the acting primary to the shard peer.
struct RepOp {
  uint64_t gen = 0;
  uint64_t token = 0;
  int attempts = 0;
  int peer = 0;
  uint64_t rank = 0;
  int cls = 0;
  uint32_t bytes = 0;
  TimerWheel::TimerId timer = TimerWheel::kNoTimer;
};

// Home-side failover view of one remote server.
struct ServerView {
  bool down = false;
  int consec_fail = 0;
  SimTime first_evidence = -1;
};

// Everything one server domain owns — serving machine, home-side fleet and
// failover state. Touched only by the thread currently running the domain.
struct KvDomain {
  DomainId id = 0;
  Simulator* sim = nullptr;
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<BluefieldServer> bf;
  std::unique_ptr<kv::ServingExecutor> exec;
  PcieLink* uplink = nullptr;  // client-proxy port: the reply's wire leg
  std::unique_ptr<TimerWheel> wheel;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<MetricsRegistry> live_reg;
  std::unique_ptr<governor::AdaptiveGovernor> gov;
  std::unique_ptr<resilience::ResilienceManager> resil;
  std::unique_ptr<AggregateFleet> fleet;
  std::string host_domain;
  std::string soc_domain;

  // Home side.
  SlabPool<HomeOp> ops;
  uint64_t op_gen = 0;
  std::vector<ServerView> views;
  Histogram latency;
  uint64_t generated = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t timeouts = 0;
  uint64_t nacks = 0;
  uint64_t stale_replies = 0;
  uint64_t promotions = 0;
  uint64_t rehomed = 0;
  uint64_t probes = 0;
  SimTime max_promote_gap = -1;
  SimTime first_promote_at = -1;
  SimTime first_rehome_at = -1;

  // Serving side.
  SlabPool<ServeCtx> serves;
  uint64_t serve_gen = 0;
  uint64_t crash_refused = 0;
  uint64_t serve_timeouts = 0;
  uint64_t late_serves = 0;
  uint64_t shed_srv = 0;
  uint64_t server_completed = 0;  // serves settled ok at this domain

  // Replication.
  SlabPool<RepOp> reps;
  uint64_t rep_gen = 0;
  uint64_t writes = 0;
  uint64_t repl_pushed = 0;
  uint64_t repl_acked = 0;
  uint64_t repl_failed = 0;
  uint64_t repl_applied = 0;
  uint64_t repl_stale = 0;
};

struct RackKv {
  const RackKvParams* p = nullptr;
  ParallelSimulator* psim = nullptr;
  const HashRing* ring = nullptr;
  const ZipfDist* zipf = nullptr;
  std::vector<std::unique_ptr<KvDomain>> doms;
};

void IssueNew(RackKv& r, DomainId d, int cls, uint64_t user);
void Dispatch(RackKv& r, DomainId d, HomeOp* op);
void OnTimeout(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token);
void RetryOrFail(RackKv& r, DomainId d, HomeOp* op);
void FinishHome(RackKv& r, DomainId d, HomeOp* op, ReplyStatus status);
void ReplyHome(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token,
               ReplyStatus status);
void Evidence(RackKv& r, DomainId d, int target);
void ServeArrival(RackKv& r, DomainId t, DomainId src, HomeOp* op,
                  uint64_t op_gen, uint64_t op_token, uint64_t rank, int cls,
                  uint32_t bytes, bool write);
void SettleServe(RackKv& r, DomainId t, ServeCtx* ctx, bool ok, SimTime done);
void Replicate(RackKv& r, DomainId t, uint64_t rank, int cls, uint32_t bytes);
void PushReplica(RackKv& r, DomainId t, RepOp* rep);
void EpochTick(RackKv& r, DomainId d);

// Whole-server liveness: the rack treats a server as reachable while either
// endpoint domain is up; the whole-shard crash scenario kills both.
bool ServerDeadNow(const KvDomain& dom) {
  return dom.injector != nullptr &&
         dom.injector->CrashedAt(dom.host_domain, dom.sim->now()) &&
         dom.injector->CrashedAt(dom.soc_domain, dom.sim->now());
}

void IssueNew(RackKv& r, DomainId d, int cls, uint64_t user) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  // Payload draws come from the fleet's class stream, in class event order,
  // so aggregate and materialized runs consume identical streams.
  const uint64_t rank = r.zipf->RankOf(dom.fleet->Draw(cls));
  const bool write = dom.fleet->Draw(cls) < r.p->write_fraction;
  ++dom.generated;
  HomeOp* op = dom.ops.Alloc();
  op->gen = ++dom.op_gen;
  op->token = 0;
  op->start = dom.sim->now();
  op->cls = cls;
  op->rank = rank;
  op->bytes = r.p->layout.class_bytes[static_cast<size_t>(cls)];
  op->write = write;
  op->user = user;
  op->attempts = 0;
  op->timer = TimerWheel::kNoTimer;
  Dispatch(r, d, op);
}

void Dispatch(RackKv& r, DomainId d, HomeOp* op) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  ++op->attempts;
  ++dom.issued;
  // Shard routing through the home's failover view: primary unless this
  // home has marked it down, then the ring's follower (the same follower
  // every home computes — no coordination).
  const int primary = r.ring->PrimaryOf(op->rank);
  const int target = dom.views[static_cast<size_t>(primary)].down
                         ? r.ring->FollowerOf(op->rank)
                         : primary;
  op->target = target;
  const uint64_t gen = op->gen;
  const uint64_t token = ++op->token;
  RackKv* rk = &r;
  op->timer = dom.wheel->In(r.p->request_timeout, [rk, d, op, gen, token] {
    OnTimeout(*rk, d, op, gen, token);
  });
  const DomainId src = d;
  const uint64_t rank = op->rank;
  const int cls = op->cls;
  const uint32_t bytes = op->bytes;
  const bool write = op->write;
  r.psim->Post(d, static_cast<DomainId>(target),
               dom.sim->now() + r.p->rack_link_latency,
               [rk, target, src, op, gen, token, rank, cls, bytes, write] {
                 ServeArrival(*rk, static_cast<DomainId>(target), src, op, gen,
                              token, rank, cls, bytes, write);
               });
}

void OnTimeout(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->gen != gen || op->token != token) {
    return;  // a reply settled this attempt first
  }
  ++dom.timeouts;
  ++op->token;  // the in-flight attempt is dead; its late reply is stale
  op->timer = TimerWheel::kNoTimer;
  Evidence(r, d, op->target);
  RetryOrFail(r, d, op);
}

void RetryOrFail(RackKv& r, DomainId d, HomeOp* op) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->attempts >= r.p->max_attempts) {
    FinishHome(r, d, op, ReplyStatus::kNack);  // terminal failure
    return;
  }
  RackKv* rk = &r;
  const uint64_t gen = op->gen;
  const uint64_t token = op->token;
  dom.wheel->In(r.p->retry_backoff, [rk, d, op, gen, token] {
    if (op->gen != gen || op->token != token) {
      return;  // freed or re-dispatched while backing off (cannot happen
               // today — the op is quiescent during backoff — but cheap)
    }
    Dispatch(*rk, d, op);
  });
}

void FinishHome(RackKv& r, DomainId d, HomeOp* op, ReplyStatus status) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  switch (status) {
    case ReplyStatus::kOk:
      ++dom.completed;
      dom.latency.Record(dom.sim->now() - op->start);
      break;
    case ReplyStatus::kShed:
      ++dom.shed;
      break;
    case ReplyStatus::kNack:
      ++dom.failed;
      break;
  }
  dom.fleet->OnComplete(op->cls, op->user);
  op->gen = 0;
  dom.ops.Free(op);
}

void ReplyHome(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token,
               ReplyStatus status) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->gen != gen || op->token != token) {
    ++dom.stale_replies;
    return;
  }
  if (op->timer != TimerWheel::kNoTimer) {
    dom.wheel->Cancel(op->timer);
    op->timer = TimerWheel::kNoTimer;
  }
  ++op->token;  // no later message can settle this attempt again
  switch (status) {
    case ReplyStatus::kOk: {
      ServerView& v = dom.views[static_cast<size_t>(op->target)];
      v.consec_fail = 0;
      if (v.down) {
        // A data reply is as good as a probe ack: the server answered.
        v.down = false;
        ++dom.rehomed;
        if (dom.first_rehome_at < 0) {
          dom.first_rehome_at = dom.sim->now();
        }
      }
      FinishHome(r, d, op, ReplyStatus::kOk);
      return;
    }
    case ReplyStatus::kShed:
      FinishHome(r, d, op, ReplyStatus::kShed);
      return;
    case ReplyStatus::kNack:
      ++dom.nacks;
      Evidence(r, d, op->target);
      RetryOrFail(r, d, op);
      return;
  }
}

void Evidence(RackKv& r, DomainId d, int target) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  ServerView& v = dom.views[static_cast<size_t>(target)];
  if (v.down) {
    return;
  }
  if (v.consec_fail == 0) {
    v.first_evidence = dom.sim->now();
  }
  ++v.consec_fail;
  if (v.consec_fail >= r.p->promote_after) {
    v.down = true;
    v.consec_fail = 0;
    ++dom.promotions;
    const SimTime gap = dom.sim->now() - v.first_evidence;
    dom.max_promote_gap = std::max(dom.max_promote_gap, gap);
    if (dom.first_promote_at < 0) {
      dom.first_promote_at = dom.sim->now();
    }
  }
}

void ServeArrival(RackKv& r, DomainId t, DomainId src, HomeOp* op,
                  uint64_t op_gen, uint64_t op_token, uint64_t rank, int cls,
                  uint32_t bytes, bool write) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  RackKv* rk = &r;
  if (ServerDeadNow(dom)) {
    ++dom.crash_refused;
    // Nack home: faster failure evidence than waiting out the timeout.
    r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
                 [rk, src, op, op_gen, op_token] {
                   ReplyHome(*rk, src, op, op_gen, op_token, ReplyStatus::kNack);
                 });
    return;
  }
  KvRequest req;
  req.client = static_cast<uint64_t>(src);
  req.seq = op_token;
  req.rank = rank;
  req.size_class = cls;
  req.bytes = bytes;
  req.hdr = r.p->layout.Pack(rank, cls);
  const int path = dom.gov->Route(req);
  if (dom.resil != nullptr &&
      !dom.resil->Admit(path, cls, /*deadline=*/0, dom.sim->now())) {
    dom.gov->OnShed(path, req);
    ++dom.shed_srv;
    r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
                 [rk, src, op, op_gen, op_token] {
                   ReplyHome(*rk, src, op, op_gen, op_token, ReplyStatus::kShed);
                 });
    return;
  }
  ServeCtx* ctx = dom.serves.Alloc();
  ctx->gen = ++dom.serve_gen;
  ctx->settled = false;
  ctx->path = path;
  ctx->arrived = dom.sim->now();
  ctx->req = req;
  ctx->write = write;
  ctx->src = src;
  ctx->op = op;
  ctx->op_gen = op_gen;
  ctx->op_token = op_token;
  const uint64_t sgen = ctx->gen;
  // Crash windows eat in-flight serves inside the executor (the reply
  // evaporates with the endpoint); the watchdog turns that silence into a
  // deterministic failed-serve + nack so the governor's in-flight
  // accounting and the home ledger both stay closed.
  dom.wheel->In(r.p->serve_timeout, [rk, t, ctx, sgen] {
    KvDomain& here = *rk->doms[static_cast<size_t>(t)];
    if (ctx->gen != sgen || ctx->settled) {
      return;
    }
    ++here.serve_timeouts;
    SettleServe(*rk, t, ctx, /*ok=*/false, here.sim->now());
  });
  // Into the full SmartNIC model: FE -> PU -> DMA -> endpoint CPU
  // (ServingExecutor via the registered SendHandler) -> response over the
  // uplink. The request SEND is one header frame; the reply carries the
  // value and pays the wire.
  NicEndpoint* const ep = path == governor::kPathHost ? dom.bf->host_ep()
                                                      : dom.bf->soc_ep();
  PciePath back = dom.fabric->Route(dom.bf->port(), dom.uplink);
  dom.bf->nic().HandleRequest(
      ep, Verb::kSend, req.hdr, r.p->request_bytes, /*fe_units=*/1.0,
      std::move(back),
      [rk, t, ctx, sgen](SimTime delivered) {
        KvDomain& here = *rk->doms[static_cast<size_t>(t)];
        if (ctx->gen != sgen || ctx->settled) {
          ++here.late_serves;  // the watchdog already failed this serve
          return;
        }
        SettleServe(*rk, t, ctx, /*ok=*/true, delivered);
      },
      /*req_id=*/op_token);
}

void SettleServe(RackKv& r, DomainId t, ServeCtx* ctx, bool ok, SimTime done) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  ctx->settled = true;
  const SimTime latency = done - ctx->arrived;
  dom.gov->OnComplete(ctx->path, ctx->req, latency, ok);
  if (dom.resil != nullptr) {
    dom.resil->OnOutcome(ctx->path, latency, ok, /*deadline_met=*/ok,
                         dom.sim->now());
  }
  if (ok) {
    ++dom.server_completed;
    if (ctx->write && r.p->replicas > 1) {
      ++dom.writes;
      Replicate(r, t, ctx->req.rank, ctx->req.size_class, ctx->req.bytes);
    }
  }
  RackKv* rk = &r;
  const DomainId src = ctx->src;
  HomeOp* const op = ctx->op;
  const uint64_t op_gen = ctx->op_gen;
  const uint64_t op_token = ctx->op_token;
  const ReplyStatus status = ok ? ReplyStatus::kOk : ReplyStatus::kNack;
  r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
               [rk, src, op, op_gen, op_token, status] {
                 ReplyHome(*rk, src, op, op_gen, op_token, status);
               });
  ctx->gen = 0;
  dom.serves.Free(ctx);
}

void Replicate(RackKv& r, DomainId t, uint64_t rank, int cls, uint32_t bytes) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  ++dom.repl_pushed;
  RepOp* rep = dom.reps.Alloc();
  rep->gen = ++dom.rep_gen;
  rep->token = 0;
  rep->attempts = 0;
  rep->peer = r.ring->ReplicaPeerOf(rank, static_cast<int>(t));
  rep->rank = rank;
  rep->cls = cls;
  rep->bytes = bytes;
  rep->timer = TimerWheel::kNoTimer;
  PushReplica(r, t, rep);
}

void PushReplica(RackKv& r, DomainId t, RepOp* rep) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  ++rep->attempts;
  const uint64_t gen = rep->gen;
  const uint64_t token = ++rep->token;
  RackKv* rk = &r;
  // The replication engine runs on the primary's SoC; a crashed SoC fails
  // the push outright (the restart path re-replicates by application-level
  // means outside this model).
  if (dom.injector != nullptr &&
      dom.injector->CrashedAt(dom.soc_domain, dom.sim->now())) {
    ++dom.repl_failed;
    rep->gen = 0;
    dom.reps.Free(rep);
    return;
  }
  const SimTime fetch_start = dom.sim->now();
  // Path ③: the SoC pulls the freshly-written value out of host DRAM
  // through the NIC engine (double PCIe1 crossing) before pushing it to the
  // follower over the wire.
  dom.bf->nic().ExecuteLocalOp(
      dom.bf->soc_ep(), dom.bf->host_ep(), Verb::kRead,
      r.p->layout.Pack(rep->rank, rep->cls), rep->bytes,
      [rk, t, rep, gen, token, fetch_start](SimTime done) {
        KvDomain& here = *rk->doms[static_cast<size_t>(t)];
        if (rep->gen != gen || rep->token != token) {
          ++here.repl_stale;
          return;
        }
        if (here.injector != nullptr &&
            here.injector->CrashKills(here.soc_domain, fetch_start, done)) {
          ++here.repl_failed;
          rep->gen = 0;
          here.reps.Free(rep);
          return;
        }
        const int peer = rep->peer;
        const uint64_t rank = rep->rank;
        const int cls = rep->cls;
        const uint32_t bytes = rep->bytes;
        rep->timer = here.wheel->In(rk->p->repl_timeout, [rk, t, rep, gen, token] {
          KvDomain& h = *rk->doms[static_cast<size_t>(t)];
          if (rep->gen != gen || rep->token != token) {
            return;
          }
          ++rep->token;  // the in-flight push is dead
          rep->timer = TimerWheel::kNoTimer;
          if (rep->attempts >= rk->p->repl_max_attempts) {
            ++h.repl_failed;
            rep->gen = 0;
            h.reps.Free(rep);
            return;
          }
          h.wheel->In(rk->p->retry_backoff, [rk, t, rep, gen] {
            if (rep->gen != gen) {
              return;
            }
            PushReplica(*rk, t, rep);
          });
        });
        rk->psim->Post(
            t, static_cast<DomainId>(peer),
            here.sim->now() + rk->p->rack_link_latency,
            [rk, t, peer, rep, gen, token, rank, cls, bytes] {
              // Follower side: apply into SoC memory, then ack.
              KvDomain& f = *rk->doms[static_cast<size_t>(peer)];
              if (f.injector != nullptr &&
                  f.injector->CrashedAt(f.soc_domain, f.sim->now())) {
                return;  // dead follower: the primary's timer retries
              }
              const SimTime applied = f.bf->soc_memory().Access(
                  f.sim->now(), rk->p->layout.Pack(rank, cls), bytes,
                  /*is_write=*/true);
              f.sim->At(applied, [rk, t, peer, rep, gen, token] {
                KvDomain& ff = *rk->doms[static_cast<size_t>(peer)];
                ++ff.repl_applied;
                rk->psim->Post(
                    static_cast<DomainId>(peer), t,
                    ff.sim->now() + rk->p->rack_link_latency,
                    [rk, t, rep, gen, token] {
                      KvDomain& h = *rk->doms[static_cast<size_t>(t)];
                      if (rep->gen != gen || rep->token != token) {
                        ++h.repl_stale;
                        return;
                      }
                      if (rep->timer != TimerWheel::kNoTimer) {
                        h.wheel->Cancel(rep->timer);
                        rep->timer = TimerWheel::kNoTimer;
                      }
                      ++h.repl_acked;
                      rep->gen = 0;
                      h.reps.Free(rep);
                    });
              });
            });
      },
      /*req_id=*/token);
}

void EpochTick(RackKv& r, DomainId d) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  RackKv* rk = &r;
  // Probe every down-marked server once per epoch; the first ack re-homes.
  for (int s = 0; s < r.p->servers; ++s) {
    if (s == d || !dom.views[static_cast<size_t>(s)].down) {
      continue;
    }
    ++dom.probes;
    r.psim->Post(d, static_cast<DomainId>(s),
                 dom.sim->now() + r.p->rack_link_latency, [rk, d, s] {
                   KvDomain& there = *rk->doms[static_cast<size_t>(s)];
                   if (ServerDeadNow(there)) {
                     return;  // the probe dies with the server
                   }
                   rk->psim->Post(static_cast<DomainId>(s), d,
                                  there.sim->now() + rk->p->rack_link_latency,
                                  [rk, d, s] {
                                    KvDomain& home = *rk->doms[static_cast<size_t>(d)];
                                    ServerView& v = home.views[static_cast<size_t>(s)];
                                    if (!v.down) {
                                      return;
                                    }
                                    v.down = false;
                                    v.consec_fail = 0;
                                    ++home.rehomed;
                                    if (home.first_rehome_at < 0) {
                                      home.first_rehome_at = home.sim->now();
                                    }
                                  });
                 });
  }
  if (dom.sim->now() + r.p->governor_epoch < r.p->window) {
    dom.wheel->In(r.p->governor_epoch, [rk, d] { EpochTick(*rk, d); });
  }
}

void AppendU(std::string* s, uint64_t v) {
  s->append(std::to_string(v));
  s->push_back('|');
}

void AppendD(std::string* s, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s->append(buf);
  s->push_back('|');
}

}  // namespace

std::string RackKvHostDomain(DomainId d) {
  return "rack.s" + std::to_string(d) + ".host";
}

std::string RackKvSocDomain(DomainId d) {
  return "rack.s" + std::to_string(d) + ".soc";
}

std::string RackKvResult::Fingerprint() const {
  std::string s = "rackkv|";
  for (uint64_t v :
       {generated, issued, completed, failed, shed, timeouts, nacks,
        stale_replies, crash_refused, serve_timeouts, late_serves, host_gets,
        soc_gets, soc_hits, soc_misses, path3_bytes, crash_drops,
        rewarm_misses, writes, repl_pushed, repl_acked, repl_failed,
        repl_applied, repl_stale, routed_host, routed_soc, hol_gated,
        budget_spills, explored, gov_draws, breaker_denied, shed_codel,
        shed_bucket, resil_draws, promotions, rehomed, probes, fleet_draws,
        peak_inflight, rounds, merged, processed, digest}) {
    AppendU(&s, v);
  }
  AppendD(&s, max_promote_gap_us);
  AppendD(&s, first_promote_at_us);
  AppendD(&s, first_rehome_at_us);
  AppendU(&s, static_cast<uint64_t>(p50_ps));
  AppendU(&s, static_cast<uint64_t>(p99_ps));
  AppendU(&s, static_cast<uint64_t>(max_ps));
  for (uint64_t v : server_completed) {
    AppendU(&s, v);
  }
  return s;
}

RackKvResult RunRackKv(const RackKvParams& params) {
  SNIC_CHECK_GE(params.servers, 2);
  SNIC_CHECK_GT(params.users, 0u);
  SNIC_CHECK_GT(params.think_mean_us, 0.0);
  SNIC_CHECK_GT(params.rack_link_latency, 0);
  SNIC_CHECK_GT(params.request_timeout, 0);
  SNIC_CHECK_GT(params.serve_timeout, 0);
  SNIC_CHECK_GT(params.max_attempts, 0);
  SNIC_CHECK_GT(params.promote_after, 0);
  SNIC_CHECK_GT(params.window, 0);
  SNIC_CHECK_EQ(params.mix.size(), params.layout.class_bytes.size());
  params.layout.Validate();

  ParallelSimulator psim(params.servers, params.rack_link_latency,
                         params.sim_threads);
  const HashRing ring(params.servers, /*vnodes_per_server=*/64, params.seed);
  const ZipfDist zipf(params.layout.keys, params.zipf_theta);
  // The rack population, split server -> class by largest remainder so
  // every jobs/sim_threads level sees identical per-bucket populations.
  const std::vector<uint64_t> per_server = AggregateFleet::Partition(
      params.users, std::vector<double>(static_cast<size_t>(params.servers), 1.0));

  RackKv rack;
  rack.p = &params;
  rack.psim = &psim;
  rack.ring = &ring;
  rack.zipf = &zipf;
  rack.doms.reserve(static_cast<size_t>(params.servers));
  const ClientParams client_params;  // governor latency priors only
  for (int d = 0; d < params.servers; ++d) {
    auto dom = std::make_unique<KvDomain>();
    dom->id = d;
    dom->sim = psim.domain(d);
    dom->host_domain = RackKvHostDomain(d);
    dom->soc_domain = RackKvSocDomain(d);
    dom->fabric = std::make_unique<Fabric>(
        dom->sim, params.testbed.network_link_propagation,
        params.testbed.network_switch_forward);
    dom->bf = std::make_unique<BluefieldServer>(
        dom->sim, dom->fabric.get(), params.testbed,
        "rack.s" + std::to_string(d));
    dom->uplink = dom->fabric->AddPort("rack.s" + std::to_string(d) + ".up",
                                       params.testbed.client_port_bandwidth);
    kv::ServingConfig serving =
        kv::ServingConfig::FromTestbed(params.testbed, params.layout);
    serving.host_domain = dom->host_domain;
    serving.soc_domain = dom->soc_domain;
    dom->exec = std::make_unique<kv::ServingExecutor>(dom->sim, dom->bf.get(),
                                                      serving);
    dom->wheel = std::make_unique<TimerWheel>(dom->sim);
    dom->sim->set_timer_wheel(dom->wheel.get());
    if (!params.faults.empty()) {
      dom->injector = std::make_unique<fault::FaultInjector>(params.faults);
      dom->sim->set_faults(dom->injector.get());
    }
    if (!params.resil.empty()) {
      dom->resil =
          std::make_unique<resilience::ResilienceManager>(params.resil);
      dom->exec->BindResilience(dom->resil.get());
    }
    governor::GovernorConfig gcfg;
    gcfg.seed = params.seed ^ (0x9e3779b97f4a7c15ull * (d + 1));
    gcfg.epoch = params.governor_epoch;
    dom->gov = std::make_unique<governor::AdaptiveGovernor>(
        dom->sim, gcfg, &dom->exec->config().layout, serving, params.testbed,
        client_params, params.layout.class_bytes);
    dom->live_reg = std::make_unique<MetricsRegistry>();
    dom->exec->RegisterMetrics(dom->live_reg.get());
    dom->gov->BindMetrics(*dom->live_reg);
    if (dom->resil != nullptr) {
      dom->gov->BindResilience(dom->resil.get());
    }
    AggregateFleetParams fp;
    fp.users_per_class =
        AggregateFleet::Partition(per_server[static_cast<size_t>(d)], params.mix);
    fp.think_mean_us = params.think_mean_us;
    fp.seed = params.seed ^ (0xd1b54a32d192ed03ull * (d + 1));
    fp.materialize = params.materialize_fleet;
    dom->fleet = std::make_unique<AggregateFleet>(dom->sim, std::move(fp));
    dom->views.assign(static_cast<size_t>(params.servers), ServerView{});
    rack.doms.push_back(std::move(dom));
  }

  // Opening lineup, in domain order: the fleet's candidate chains, the
  // failover epoch tick, and the quiesce edge that stops both.
  RackKv* rk = &rack;
  for (int d = 0; d < params.servers; ++d) {
    KvDomain& dom = *rack.doms[static_cast<size_t>(d)];
    AggregateFleet* fleet = dom.fleet.get();
    KvDomain* dp = &dom;
    dom.sim->At(0, [rk, d, fleet] {
      fleet->Start([rk, d](int cls, uint64_t user) { IssueNew(*rk, d, cls, user); });
      EpochTick(*rk, d);
    });
    dom.sim->At(params.window, [fleet, dp] {
      fleet->Stop();
      dp->gov->StopTicking();
    });
  }
  psim.Run();

  RackKvResult out;
  out.rounds = psim.rounds();
  out.merged = psim.merged();
  out.processed = psim.processed();
  uint64_t digest = psim.merge_digest();
  Histogram latency;
  out.server_completed.reserve(static_cast<size_t>(params.servers));
  constexpr uint64_t kPrime = 1099511628211ull;
  auto mix = [&digest](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (8 * i)) & 0xffu;
      digest *= kPrime;
    }
  };
  for (const auto& domp : rack.doms) {
    const KvDomain& dom = *domp;
    // Every record resolved before quiesce: the O(in-flight) claim and the
    // ledger both depend on a fully drained rack.
    SNIC_CHECK_EQ(dom.ops.live(), 0u);
    SNIC_CHECK_EQ(dom.serves.live(), 0u);
    SNIC_CHECK_EQ(dom.reps.live(), 0u);
    out.generated += dom.generated;
    out.issued += dom.issued;
    out.completed += dom.completed;
    out.failed += dom.failed;
    out.shed += dom.shed;
    out.timeouts += dom.timeouts;
    out.nacks += dom.nacks;
    out.stale_replies += dom.stale_replies;
    out.crash_refused += dom.crash_refused;
    out.serve_timeouts += dom.serve_timeouts;
    out.late_serves += dom.late_serves;
    out.host_gets += dom.exec->host_gets();
    out.soc_gets += dom.exec->soc_gets();
    out.soc_hits += dom.exec->soc_hits();
    out.soc_misses += dom.exec->soc_misses();
    out.path3_bytes += dom.exec->path3_bytes();
    out.crash_drops += dom.exec->crash_drops();
    out.rewarm_misses += dom.exec->rewarm_misses();
    out.writes += dom.writes;
    out.repl_pushed += dom.repl_pushed;
    out.repl_acked += dom.repl_acked;
    out.repl_failed += dom.repl_failed;
    out.repl_applied += dom.repl_applied;
    out.repl_stale += dom.repl_stale;
    out.routed_host += dom.gov->routed(governor::kPathHost);
    out.routed_soc += dom.gov->routed(governor::kPathSoc);
    out.hol_gated += dom.gov->hol_gated();
    out.budget_spills += dom.gov->budget_spills();
    out.explored += dom.gov->explored();
    out.gov_draws += dom.gov->draws();
    out.breaker_denied += dom.gov->breaker_denied();
    if (dom.resil != nullptr) {
      out.shed_codel += dom.resil->shed_codel();
      out.shed_bucket += dom.resil->shed_bucket();
      out.resil_draws += dom.resil->draws();
    }
    out.promotions += dom.promotions;
    out.rehomed += dom.rehomed;
    out.probes += dom.probes;
    if (dom.max_promote_gap >= 0) {
      out.max_promote_gap_us =
          std::max(out.max_promote_gap_us, ToMicros(dom.max_promote_gap));
    }
    if (dom.first_promote_at >= 0 &&
        (out.first_promote_at_us < 0 ||
         ToMicros(dom.first_promote_at) < out.first_promote_at_us)) {
      out.first_promote_at_us = ToMicros(dom.first_promote_at);
    }
    if (dom.first_rehome_at >= 0 &&
        (out.first_rehome_at_us < 0 ||
         ToMicros(dom.first_rehome_at) < out.first_rehome_at_us)) {
      out.first_rehome_at_us = ToMicros(dom.first_rehome_at);
    }
    out.fleet_draws += dom.fleet->draws();
    out.peak_inflight += dom.fleet->peak_inflight();
    out.resident_client_bytes +=
        dom.fleet->resident_state_bytes() +
        dom.ops.capacity() * sizeof(HomeOp) +
        dom.serves.capacity() * sizeof(ServeCtx) +
        dom.reps.capacity() * sizeof(RepOp);
    out.server_completed.push_back(dom.server_completed);
    latency.Merge(dom.latency);
    for (uint64_t v :
         {dom.generated, dom.completed, dom.failed, dom.shed, dom.timeouts,
          dom.nacks, dom.stale_replies, dom.crash_refused, dom.serve_timeouts,
          dom.writes, dom.repl_acked, dom.promotions, dom.rehomed,
          dom.server_completed, dom.fleet->draws(), dom.gov->draws(),
          dom.sim->processed(), static_cast<uint64_t>(dom.sim->now())}) {
      mix(v);
    }
  }
  out.digest = digest;
  out.p50_ps = latency.Percentile(50.0);
  out.p99_ps = latency.Percentile(99.0);
  out.max_ps = latency.max();

  if (!params.metrics_path.empty()) {
    MetricsRegistry dump;
    const RackKvResult* res = &out;
    dump.Register("rack", "generated", "count",
                  "requests generated by the aggregate fleets",
                  [res] { return static_cast<double>(res->generated); });
    dump.Register("rack", "completed", "count", "requests settled ok",
                  [res] { return static_cast<double>(res->completed); });
    dump.Register("rack", "failed", "count",
                  "requests that exhausted the retry budget",
                  [res] { return static_cast<double>(res->failed); });
    dump.Register("rack", "shed", "count",
                  "requests refused by serving-side admission",
                  [res] { return static_cast<double>(res->shed); });
    dump.Register("rack", "timeouts", "count", "home request-timeout firings",
                  [res] { return static_cast<double>(res->timeouts); });
    dump.Register("rack", "repl_pushed", "count",
                  "replication pushes initiated by acting primaries",
                  [res] { return static_cast<double>(res->repl_pushed); });
    dump.Register("rack", "repl_acked", "count",
                  "replication pushes acked by the follower",
                  [res] { return static_cast<double>(res->repl_acked); });
    dump.Register("rack", "promotions", "count",
                  "shard failovers (a home marked a server down)",
                  [res] { return static_cast<double>(res->promotions); });
    dump.Register("rack", "rehomed", "count",
                  "recoveries (a probe or data reply re-homed a server)",
                  [res] { return static_cast<double>(res->rehomed); });
    dump.Register("rack", "peak_inflight", "count",
                  "rack-wide peak concurrent in-flight requests",
                  [res] { return static_cast<double>(res->peak_inflight); });
    dump.Register("rack", "resident_client_bytes", "bytes",
                  "resident client state (fleet + in-flight slabs)",
                  [res] { return static_cast<double>(res->resident_client_bytes); });
    SNIC_CHECK(dump.WriteJsonFile(params.metrics_path));
  }
  return out;
}

}  // namespace snicsim
