#include "src/topo/rack_kv.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/governor/governor.h"
#include "src/governor/policy.h"
#include "src/kvstore/serving.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel.h"
#include "src/sim/pool.h"
#include "src/sim/timer_wheel.h"
#include "src/topo/fabric.h"
#include "src/topo/server.h"
#include "src/topo/shard.h"
#include "src/workload/addr_gen.h"
#include "src/workload/aggregate_fleet.h"
#include "src/workload/client.h"
#include "src/workload/fleet.h"

namespace snicsim {
namespace {

// Terminal status a serving domain reports home for one attempt. kRetry is
// the evidence-free flavor of kNack: the attempt must be re-dispatched (the
// server bounced a stale membership epoch, or detected corruption it could
// not heal in place) but the target server is healthy, so it must not feed
// the failover promoter.
enum class ReplyStatus : uint8_t { kOk, kShed, kNack, kRetry };

// One in-flight request, resident in its *home* domain's slab. While the
// request is at the serving domain the pointer travels inside closures as
// an opaque handle and is only dereferenced back home. `gen` (bumped on
// every Alloc, zeroed on Free) and `token` (bumped on every dispatch and
// every timeout decision) guard the handle against slab reuse and stale
// replies — the reply that loses the race to a timeout is counted, never
// double-settled.
struct HomeOp {
  uint64_t gen = 0;
  uint64_t token = 0;
  SimTime start = 0;
  int cls = 0;        // fleet population bucket (OnComplete must match)
  int serve_cls = 0;  // value class actually served (scan bursts upgrade it)
  uint64_t rank = 0;
  uint32_t bytes = 0;
  bool write = false;
  uint64_t user = 0;
  int attempts = 0;
  int target = 0;
  TimerWheel::TimerId timer = TimerWheel::kNoTimer;
};

// One serve in progress at the serving domain: the watchdog and the NIC
// completion race through `settled`/`gen` exactly like HomeOp replies.
struct ServeCtx {
  uint64_t gen = 0;
  bool settled = false;
  bool retry_on_fail = false;  // fail as kRetry (no failover evidence)
  int path = 0;
  SimTime arrived = 0;
  KvRequest req;
  bool write = false;
  DomainId src = 0;
  HomeOp* op = nullptr;  // opaque until it returns home
  uint64_t op_gen = 0;
  uint64_t op_token = 0;
};

// One replication push from the acting primary to the shard peer.
struct RepOp {
  uint64_t gen = 0;
  uint64_t token = 0;
  int attempts = 0;
  int peer = 0;
  uint64_t rank = 0;
  int cls = 0;
  uint32_t bytes = 0;
  TimerWheel::TimerId timer = TimerWheel::kNoTimer;
};

// Home-side failover view of one remote server.
struct ServerView {
  bool down = false;
  int consec_fail = 0;
  SimTime first_evidence = -1;
  int missed_epochs = 0;  // consecutive probe epochs spent down (permloss)
};

// One key-range migration stream from a surviving replica to the range's
// new owner. Pushes are ack-clocked (strictly serial per range) so the
// in-flight state per range is O(1); the per-domain token bucket paces the
// aggregate byte rate across all of a survivor's ranges.
struct MigOp {
  uint64_t gen = 0;
  int attempts = 0;
  int dest = 0;
  size_t next = 0;     // next index in `ranks` to push
  uint64_t acked = 0;  // installs acked back; == ranks.size() completes
  std::vector<uint64_t> ranks;
};

// One replica-read heal of a corrupt value, from serve-path detection
// (carries the serve to resume) or the scrubber (ctx == nullptr).
struct RepairOp {
  uint64_t gen = 0;
  uint64_t rank = 0;
  bool from_scrub = false;
  ServeCtx* ctx = nullptr;
  uint64_t ctx_gen = 0;
};

// Per-domain checksum shadow of the values this server stores. `stored` is
// the checksum on media; the expected value is a pure function of
// (rank, version), so corruption == any mismatch. `version` counts local
// overwrites (served writes, replica applies, migration installs), each of
// which lands a fresh, clean value.
struct IntegrityStore {
  std::vector<uint64_t> stored;
  std::vector<uint32_t> version;
  std::vector<uint8_t> repairing;  // de-dups concurrent repairs per rank
};

// Everything one server domain owns — serving machine, home-side fleet and
// failover state. Touched only by the thread currently running the domain.
struct KvDomain {
  DomainId id = 0;
  Simulator* sim = nullptr;
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<BluefieldServer> bf;
  std::unique_ptr<kv::ServingExecutor> exec;
  PcieLink* uplink = nullptr;  // client-proxy port: the reply's wire leg
  std::unique_ptr<TimerWheel> wheel;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<MetricsRegistry> live_reg;
  std::unique_ptr<governor::AdaptiveGovernor> gov;
  std::unique_ptr<resilience::ResilienceManager> resil;
  std::unique_ptr<AggregateFleet> fleet;
  std::string host_domain;
  std::string soc_domain;

  // Home side.
  SlabPool<HomeOp> ops;
  uint64_t op_gen = 0;
  std::vector<ServerView> views;
  Histogram latency;
  uint64_t generated = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t timeouts = 0;
  uint64_t nacks = 0;
  uint64_t stale_replies = 0;
  uint64_t promotions = 0;
  uint64_t rehomed = 0;
  uint64_t probes = 0;
  SimTime max_promote_gap = -1;
  SimTime first_promote_at = -1;
  SimTime first_rehome_at = -1;

  // Serving side.
  SlabPool<ServeCtx> serves;
  uint64_t serve_gen = 0;
  uint64_t crash_refused = 0;
  uint64_t serve_timeouts = 0;
  uint64_t late_serves = 0;
  uint64_t shed_srv = 0;
  uint64_t server_completed = 0;  // serves settled ok at this domain

  // Replication.
  SlabPool<RepOp> reps;
  uint64_t rep_gen = 0;
  uint64_t writes = 0;
  uint64_t repl_pushed = 0;
  uint64_t repl_acked = 0;
  uint64_t repl_failed = 0;
  uint64_t repl_applied = 0;
  uint64_t repl_stale = 0;

  // Membership & repair plane (allocated/used only when enabled).
  std::unique_ptr<HashRing> mring;  // this domain's mutable ring copy
  uint64_t live_mask = 0;
  uint32_t member_epoch = 0;
  uint64_t removals = 0;
  uint64_t stale_epoch_bounces = 0;
  uint64_t retry_replies = 0;
  SlabPool<MigOp> migs;
  uint64_t mig_gen = 0;
  resilience::TokenBucketState mig_bucket;
  double mig_rate_bpus = 0.0;  // migration bucket refill, bytes/us
  uint64_t ranges_started = 0;
  uint64_t ranges_completed = 0;
  uint64_t ranges_failed = 0;
  uint64_t keys_migrated = 0;
  uint64_t keys_installed = 0;
  uint64_t keys_lost = 0;
  uint64_t migration_waits = 0;
  uint64_t repair_path3_bytes = 0;
  SimTime membership_change_at = -1;
  SimTime repair_done_at = -1;
  SimTime last_failed_start = -1;

  // Integrity layer (allocated only with corrupt events or a scrubber).
  std::unique_ptr<IntegrityStore> integ;
  SlabPool<RepairOp> repairs;
  uint64_t repair_gen = 0;
  uint64_t scrub_cursor = 0;
  uint64_t integrity_checks = 0;
  uint64_t corrupted_keys = 0;
  uint64_t corrupt_propagated = 0;
  uint64_t read_repair_detected = 0;
  uint64_t scrub_checked = 0;
  uint64_t scrub_detected = 0;
  uint64_t repaired_read = 0;
  uint64_t repaired_scrub = 0;
  uint64_t repaired_write = 0;
  uint64_t repair_unavailable = 0;
  uint64_t undetected_corrupt_serves = 0;

  // Trace shaping + goodput series.
  uint64_t scan_forced = 0;
  std::vector<uint64_t> completed_by_epoch;
};

struct RackKv {
  const RackKvParams* p = nullptr;
  ParallelSimulator* psim = nullptr;
  const HashRing* ring = nullptr;
  const ZipfDist* zipf = nullptr;
  const trace::TraceDriver* trace = nullptr;
  std::vector<std::unique_ptr<KvDomain>> doms;
};

void IssueNew(RackKv& r, DomainId d, int cls, uint64_t user);
void Dispatch(RackKv& r, DomainId d, HomeOp* op);
void OnTimeout(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token);
void RetryOrFail(RackKv& r, DomainId d, HomeOp* op);
void FinishHome(RackKv& r, DomainId d, HomeOp* op, ReplyStatus status);
void ReplyHome(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token,
               ReplyStatus status);
void Evidence(RackKv& r, DomainId d, int target);
void ServeArrival(RackKv& r, DomainId t, DomainId src, HomeOp* op,
                  uint64_t op_gen, uint64_t op_token, uint64_t rank, int cls,
                  uint32_t bytes, bool write, uint32_t mep, uint64_t mmask);
void LaunchServe(RackKv& r, DomainId t, ServeCtx* ctx);
void SettleServe(RackKv& r, DomainId t, ServeCtx* ctx, bool ok, SimTime done);
void Replicate(RackKv& r, DomainId t, uint64_t rank, int cls, uint32_t bytes);
void PushReplica(RackKv& r, DomainId t, RepOp* rep);
void EpochTick(RackKv& r, DomainId d);
void AdoptMembership(RackKv& r, DomainId d, uint32_t epoch, uint64_t mask);
void ApplyRemoval(RackKv& r, DomainId d, int s);
void StartRange(RackKv& r, DomainId d, int dest, std::vector<uint64_t> ranks);
void PushNextKey(RackKv& r, DomainId d, MigOp* m);
void PushKey(RackKv& r, DomainId d, MigOp* m, uint64_t rank, int cls,
             uint32_t bytes);
void OnPushAck(RackKv& r, DomainId d, MigOp* m, uint64_t gen);
void OnPushNack(RackKv& r, DomainId d, MigOp* m, uint64_t gen);
void RangeFailed(RackKv& r, DomainId d, MigOp* m);
void ScrubTick(RackKv& r, DomainId d);
void StartRepair(RackKv& r, DomainId d, uint64_t rank, bool from_scrub,
                 ServeCtx* ctx, uint64_t ctx_gen);
void FinishRepair(RackKv& r, DomainId d, RepairOp* rp, uint64_t gen, bool ok);

// Whole-server liveness: the rack treats a server as reachable while either
// endpoint domain is up; the whole-shard crash scenario kills both.
bool ServerDeadNow(const KvDomain& dom) {
  return dom.injector != nullptr &&
         dom.injector->CrashedAt(dom.host_domain, dom.sim->now()) &&
         dom.injector->CrashedAt(dom.soc_domain, dom.sim->now());
}

// The ring a domain routes by: its own mutable copy under the membership
// plane, the shared immutable ring otherwise.
const HashRing& RingOf(const RackKv& r, const KvDomain& dom) {
  return dom.mring != nullptr ? *dom.mring : *r.ring;
}

bool LiveInMask(const KvDomain& dom, int s) {
  return ((dom.live_mask >> s) & 1u) != 0;
}

// splitmix64 finalizer — the draw-free mixer corruption selection uses.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h = (h ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) *
        1099511628211ULL;
  }
  return h;
}

// The per-value FNV checksum over (rank, version) — what a clean store
// holds. Corruption XORs noise into `stored`, so any verify catches it.
uint64_t ValueChecksum(uint64_t rank, uint32_t version) {
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((rank >> (8 * i)) & 0xffu)) * 1099511628211ULL;
  }
  for (int i = 0; i < 4; ++i) {
    h = (h ^ ((static_cast<uint64_t>(version) >> (8 * i)) & 0xffu)) *
        1099511628211ULL;
  }
  return h;
}

constexpr uint64_t kCorruptNoise = 0x5a5a5a5a5a5a5a5aULL;

bool IsCorrupt(const KvDomain& dom, uint64_t rank) {
  const IntegrityStore& st = *dom.integ;
  const size_t i = static_cast<size_t>(rank);
  return st.stored[i] != ValueChecksum(rank, st.version[i]);
}

// A fresh value lands at `rank` (served write, replica apply, or migration
// install). Bumps the version and stores the matching checksum — unless the
// writer itself held a corrupt sole copy (`bad`, migration only), in which
// case the corruption travels and is accounted as propagated.
void InstallValue(KvDomain& dom, uint64_t rank, bool bad) {
  if (dom.integ == nullptr) {
    return;
  }
  IntegrityStore& st = *dom.integ;
  const size_t i = static_cast<size_t>(rank);
  const bool was_bad = IsCorrupt(dom, rank);
  ++st.version[i];
  st.stored[i] = ValueChecksum(rank, st.version[i]);
  if (bad) {
    st.stored[i] ^= kCorruptNoise;
    if (!was_bad) {
      ++dom.corrupt_propagated;
    }
  } else if (was_bad) {
    ++dom.repaired_write;
  }
}

// Does this domain store `rank` under its current ring (primary or, with
// replication, follower)?
bool StoredHere(const RackKv& r, const KvDomain& dom, uint64_t rank) {
  const HashRing& ring = RingOf(r, dom);
  if (ring.PrimaryOf(rank) == static_cast<int>(dom.id)) {
    return true;
  }
  return r.p->replicas > 1 &&
         ring.FollowerOf(rank) == static_cast<int>(dom.id);
}

// A `corrupt=` event: flip each stored value with probability `fraction`,
// chosen by a keyed hash of (plan seed, domain, event time, rank) — fully
// deterministic, zero RNG draws.
void ApplyCorruption(RackKv& r, DomainId d, double fraction, uint64_t salt) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (dom.integ == nullptr) {
    return;
  }
  const uint64_t thresh =
      fraction >= 1.0 ? ~0ULL
                      : static_cast<uint64_t>(fraction * 18446744073709551616.0);
  for (uint64_t rank = 0; rank < r.p->layout.keys; ++rank) {
    if (!StoredHere(r, dom, rank) || Mix64(salt ^ rank) >= thresh ||
        IsCorrupt(dom, rank)) {
      continue;
    }
    dom.integ->stored[static_cast<size_t>(rank)] ^= kCorruptNoise;
    ++dom.corrupted_keys;
  }
}

// Deterministic value size for repair traffic: the class table keyed by
// rank (serving classes are a per-request draw, but repair must not draw).
int RepairClassOf(const RackKv& r, uint64_t rank) {
  return static_cast<int>(rank % r.p->layout.class_bytes.size());
}

void IssueNew(RackKv& r, DomainId d, int cls, uint64_t user) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  // Payload draws come from the fleet's class stream, in class event order,
  // so aggregate and materialized runs consume identical streams.
  uint64_t rank = r.zipf->RankOf(dom.fleet->Draw(cls));
  const bool write = dom.fleet->Draw(cls) < r.p->write_fraction;
  int serve_cls = cls;
  if (r.trace != nullptr) {
    // Working-set churn: a draw-free rank rotation — the trace shifts which
    // physical keys are hot without touching the draw stream (a zero-churn
    // trace is byte-identical to no trace at all).
    rank = (rank + r.trace->ChurnAt(dom.sim->now())) % r.p->layout.keys;
    if (r.trace->has_scan() &&
        dom.fleet->Draw(cls) < r.trace->ScanAt(dom.sim->now())) {
      // Scan burst: the request is upgraded to the largest value class.
      // `cls` (the fleet population bucket) is untouched — OnComplete must
      // return the user to the bucket it was drawn from.
      serve_cls = static_cast<int>(r.p->layout.class_bytes.size()) - 1;
      ++dom.scan_forced;
    }
  }
  ++dom.generated;
  HomeOp* op = dom.ops.Alloc();
  op->gen = ++dom.op_gen;
  op->token = 0;
  op->start = dom.sim->now();
  op->cls = cls;
  op->serve_cls = serve_cls;
  op->rank = rank;
  op->bytes = r.p->layout.class_bytes[static_cast<size_t>(serve_cls)];
  op->write = write;
  op->user = user;
  op->attempts = 0;
  op->timer = TimerWheel::kNoTimer;
  Dispatch(r, d, op);
}

void Dispatch(RackKv& r, DomainId d, HomeOp* op) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  ++op->attempts;
  ++dom.issued;
  // Shard routing through the home's failover view: primary unless this
  // home has marked it down, then the ring's follower (the same follower
  // every home computes — no coordination). Under the membership plane the
  // home routes by its own ring copy and stamps its (epoch, mask) on the
  // request so the serving side can detect divergence.
  const HashRing& ring = RingOf(r, dom);
  const int primary = ring.PrimaryOf(op->rank);
  const int target = dom.views[static_cast<size_t>(primary)].down
                         ? ring.FollowerOf(op->rank)
                         : primary;
  op->target = target;
  const uint64_t gen = op->gen;
  const uint64_t token = ++op->token;
  RackKv* rk = &r;
  op->timer = dom.wheel->In(r.p->request_timeout, [rk, d, op, gen, token] {
    OnTimeout(*rk, d, op, gen, token);
  });
  const DomainId src = d;
  const uint64_t rank = op->rank;
  const int cls = op->serve_cls;
  const uint32_t bytes = op->bytes;
  const bool write = op->write;
  const uint32_t mep = dom.member_epoch;
  const uint64_t mmask = dom.live_mask;
  r.psim->Post(
      d, static_cast<DomainId>(target), dom.sim->now() + r.p->rack_link_latency,
      [rk, target, src, op, gen, token, rank, cls, bytes, write, mep, mmask] {
        ServeArrival(*rk, static_cast<DomainId>(target), src, op, gen, token,
                     rank, cls, bytes, write, mep, mmask);
      });
}

void OnTimeout(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->gen != gen || op->token != token) {
    return;  // a reply settled this attempt first
  }
  ++dom.timeouts;
  ++op->token;  // the in-flight attempt is dead; its late reply is stale
  op->timer = TimerWheel::kNoTimer;
  Evidence(r, d, op->target);
  RetryOrFail(r, d, op);
}

void RetryOrFail(RackKv& r, DomainId d, HomeOp* op) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->attempts >= r.p->max_attempts) {
    FinishHome(r, d, op, ReplyStatus::kNack);  // terminal failure
    return;
  }
  RackKv* rk = &r;
  const uint64_t gen = op->gen;
  const uint64_t token = op->token;
  dom.wheel->In(r.p->retry_backoff, [rk, d, op, gen, token] {
    if (op->gen != gen || op->token != token) {
      return;  // freed or re-dispatched while backing off (cannot happen
               // today — the op is quiescent during backoff — but cheap)
    }
    Dispatch(*rk, d, op);
  });
}

void FinishHome(RackKv& r, DomainId d, HomeOp* op, ReplyStatus status) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  switch (status) {
    case ReplyStatus::kOk: {
      ++dom.completed;
      dom.latency.Record(dom.sim->now() - op->start);
      // Settle-time epoch bucket: the goodput-during-migration series.
      const size_t idx =
          static_cast<size_t>(dom.sim->now() / r.p->governor_epoch);
      if (dom.completed_by_epoch.size() <= idx) {
        dom.completed_by_epoch.resize(idx + 1, 0);
      }
      ++dom.completed_by_epoch[idx];
      break;
    }
    case ReplyStatus::kShed:
      ++dom.shed;
      break;
    case ReplyStatus::kNack:
      ++dom.failed;
      dom.last_failed_start = std::max(dom.last_failed_start, op->start);
      break;
    case ReplyStatus::kRetry:
      SNIC_CHECK(false);  // kRetry re-dispatches in ReplyHome, never lands here
      break;
  }
  dom.fleet->OnComplete(op->cls, op->user);
  op->gen = 0;
  dom.ops.Free(op);
}

void ReplyHome(RackKv& r, DomainId d, HomeOp* op, uint64_t gen, uint64_t token,
               ReplyStatus status) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->gen != gen || op->token != token) {
    ++dom.stale_replies;
    return;
  }
  if (op->timer != TimerWheel::kNoTimer) {
    dom.wheel->Cancel(op->timer);
    op->timer = TimerWheel::kNoTimer;
  }
  ++op->token;  // no later message can settle this attempt again
  switch (status) {
    case ReplyStatus::kOk: {
      ServerView& v = dom.views[static_cast<size_t>(op->target)];
      v.consec_fail = 0;
      v.missed_epochs = 0;
      if (v.down) {
        // A data reply is as good as a probe ack: the server answered.
        v.down = false;
        ++dom.rehomed;
        if (dom.first_rehome_at < 0) {
          dom.first_rehome_at = dom.sim->now();
        }
      }
      FinishHome(r, d, op, ReplyStatus::kOk);
      return;
    }
    case ReplyStatus::kShed:
      FinishHome(r, d, op, ReplyStatus::kShed);
      return;
    case ReplyStatus::kNack:
      ++dom.nacks;
      Evidence(r, d, op->target);
      RetryOrFail(r, d, op);
      return;
    case ReplyStatus::kRetry:
      // Evidence-free re-dispatch: the server is healthy but bounced the
      // attempt (stale membership epoch — the bounce carried the newer mask
      // and this home already adopted it — or unhealable corruption).
      ++dom.retry_replies;
      RetryOrFail(r, d, op);
      return;
  }
}

void Evidence(RackKv& r, DomainId d, int target) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  ServerView& v = dom.views[static_cast<size_t>(target)];
  if (v.down) {
    return;
  }
  if (v.consec_fail == 0) {
    v.first_evidence = dom.sim->now();
  }
  ++v.consec_fail;
  if (v.consec_fail >= r.p->promote_after) {
    v.down = true;
    v.consec_fail = 0;
    ++dom.promotions;
    const SimTime gap = dom.sim->now() - v.first_evidence;
    dom.max_promote_gap = std::max(dom.max_promote_gap, gap);
    if (dom.first_promote_at < 0) {
      dom.first_promote_at = dom.sim->now();
    }
  }
}

void ServeArrival(RackKv& r, DomainId t, DomainId src, HomeOp* op,
                  uint64_t op_gen, uint64_t op_token, uint64_t rank, int cls,
                  uint32_t bytes, bool write, uint32_t mep, uint64_t mmask) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  RackKv* rk = &r;
  if (ServerDeadNow(dom)) {
    ++dom.crash_refused;
    // Nack home: faster failure evidence than waiting out the timeout.
    r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
                 [rk, src, op, op_gen, op_token] {
                   ReplyHome(*rk, src, op, op_gen, op_token, ReplyStatus::kNack);
                 });
    return;
  }
  if (r.p->membership.enabled) {
    if (mep < dom.member_epoch) {
      // The sender routed by an older ring: bounce with this server's
      // (epoch, mask). The home adopts before the retry re-dispatches, so
      // one bounce converges the pair — no failure evidence either way.
      ++dom.stale_epoch_bounces;
      const uint32_t e = dom.member_epoch;
      const uint64_t m = dom.live_mask;
      r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
                   [rk, src, op, op_gen, op_token, e, m] {
                     AdoptMembership(*rk, src, e, m);
                     ReplyHome(*rk, src, op, op_gen, op_token,
                               ReplyStatus::kRetry);
                   });
      return;
    }
    if (mep > dom.member_epoch) {
      // The sender is ahead: adopt its mask, then serve normally — under
      // the new ring this server is still the key's owner (the sender just
      // routed here).
      AdoptMembership(r, t, mep, mmask);
    }
  }
  KvRequest req;
  req.client = static_cast<uint64_t>(src);
  req.seq = op_token;
  req.rank = rank;
  req.size_class = cls;
  req.bytes = bytes;
  req.hdr = r.p->layout.Pack(rank, cls);
  const int path = dom.gov->Route(req);
  if (dom.resil != nullptr &&
      !dom.resil->Admit(path, cls, /*deadline=*/0, dom.sim->now())) {
    dom.gov->OnShed(path, req);
    ++dom.shed_srv;
    r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
                 [rk, src, op, op_gen, op_token] {
                   ReplyHome(*rk, src, op, op_gen, op_token, ReplyStatus::kShed);
                 });
    return;
  }
  ServeCtx* ctx = dom.serves.Alloc();
  ctx->gen = ++dom.serve_gen;
  ctx->settled = false;
  ctx->retry_on_fail = false;
  ctx->path = path;
  ctx->arrived = dom.sim->now();
  ctx->req = req;
  ctx->write = write;
  ctx->src = src;
  ctx->op = op;
  ctx->op_gen = op_gen;
  ctx->op_token = op_token;
  const uint64_t sgen = ctx->gen;
  // Crash windows eat in-flight serves inside the executor (the reply
  // evaporates with the endpoint); the watchdog turns that silence into a
  // deterministic failed-serve + nack so the governor's in-flight
  // accounting and the home ledger both stay closed.
  dom.wheel->In(r.p->serve_timeout, [rk, t, ctx, sgen] {
    KvDomain& here = *rk->doms[static_cast<size_t>(t)];
    if (ctx->gen != sgen || ctx->settled) {
      return;
    }
    ++here.serve_timeouts;
    SettleServe(*rk, t, ctx, /*ok=*/false, here.sim->now());
  });
  // Integrity: verify the stored checksum before serving a read. A corrupt
  // value never reaches the client — the serve parks on a replica-read
  // repair and resumes (or retries elsewhere) once the heal settles.
  // Writes skip the gate: they overwrite the value regardless.
  if (dom.integ != nullptr && !write) {
    ++dom.integrity_checks;
    if (IsCorrupt(dom, rank)) {
      ++dom.read_repair_detected;
      ctx->retry_on_fail = true;
      if (dom.integ->repairing[static_cast<size_t>(rank)] != 0) {
        // A repair for this rank is already in flight; bounce rather than
        // queue (the retry lands after the heal).
        SettleServe(r, t, ctx, /*ok=*/false, dom.sim->now());
      } else {
        StartRepair(r, t, rank, /*from_scrub=*/false, ctx, sgen);
      }
      return;
    }
  }
  LaunchServe(r, t, ctx);
}

void LaunchServe(RackKv& r, DomainId t, ServeCtx* ctx) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  RackKv* rk = &r;
  const uint64_t sgen = ctx->gen;
  // Into the full SmartNIC model: FE -> PU -> DMA -> endpoint CPU
  // (ServingExecutor via the registered SendHandler) -> response over the
  // uplink. The request SEND is one header frame; the reply carries the
  // value and pays the wire.
  NicEndpoint* const ep = ctx->path == governor::kPathHost ? dom.bf->host_ep()
                                                           : dom.bf->soc_ep();
  PciePath back = dom.fabric->Route(dom.bf->port(), dom.uplink);
  dom.bf->nic().HandleRequest(
      ep, Verb::kSend, ctx->req.hdr, r.p->request_bytes, /*fe_units=*/1.0,
      std::move(back),
      [rk, t, ctx, sgen](SimTime delivered) {
        KvDomain& here = *rk->doms[static_cast<size_t>(t)];
        if (ctx->gen != sgen || ctx->settled) {
          ++here.late_serves;  // the watchdog already failed this serve
          return;
        }
        SettleServe(*rk, t, ctx, /*ok=*/true, delivered);
      },
      /*req_id=*/ctx->op_token);
}

void SettleServe(RackKv& r, DomainId t, ServeCtx* ctx, bool ok, SimTime done) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  ctx->settled = true;
  if (ok && dom.integ != nullptr) {
    if (ctx->write) {
      // The served write lands a fresh value: version bump + clean checksum
      // (healing any corruption the old value carried).
      InstallValue(dom, ctx->req.rank, /*bad=*/false);
    } else if (IsCorrupt(dom, ctx->req.rank)) {
      // Corrupted mid-serve (a corrupt= window fired while the value was in
      // the pipeline): demote to an evidence-free retry and schedule the
      // heal. The client never sees the bad bytes.
      ++dom.read_repair_detected;
      ctx->retry_on_fail = true;
      ok = false;
      if (dom.integ->repairing[static_cast<size_t>(ctx->req.rank)] == 0) {
        StartRepair(r, t, ctx->req.rank, /*from_scrub=*/false, nullptr, 0);
      }
    }
    if (ok && IsCorrupt(dom, ctx->req.rank)) {
      ++dom.undetected_corrupt_serves;  // structurally unreachable
    }
  }
  const SimTime latency = done - ctx->arrived;
  dom.gov->OnComplete(ctx->path, ctx->req, latency, ok);
  if (dom.resil != nullptr) {
    dom.resil->OnOutcome(ctx->path, latency, ok, /*deadline_met=*/ok,
                         dom.sim->now());
  }
  if (ok) {
    ++dom.server_completed;
    if (ctx->write && r.p->replicas > 1) {
      ++dom.writes;
      Replicate(r, t, ctx->req.rank, ctx->req.size_class, ctx->req.bytes);
    }
  }
  RackKv* rk = &r;
  const DomainId src = ctx->src;
  HomeOp* const op = ctx->op;
  const uint64_t op_gen = ctx->op_gen;
  const uint64_t op_token = ctx->op_token;
  const ReplyStatus status =
      ok ? ReplyStatus::kOk
         : (ctx->retry_on_fail ? ReplyStatus::kRetry : ReplyStatus::kNack);
  r.psim->Post(t, src, dom.sim->now() + r.p->rack_link_latency,
               [rk, src, op, op_gen, op_token, status] {
                 ReplyHome(*rk, src, op, op_gen, op_token, status);
               });
  ctx->gen = 0;
  dom.serves.Free(ctx);
}

void Replicate(RackKv& r, DomainId t, uint64_t rank, int cls, uint32_t bytes) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  ++dom.repl_pushed;
  RepOp* rep = dom.reps.Alloc();
  rep->gen = ++dom.rep_gen;
  rep->token = 0;
  rep->attempts = 0;
  rep->peer = RingOf(r, dom).ReplicaPeerOf(rank, static_cast<int>(t));
  rep->rank = rank;
  rep->cls = cls;
  rep->bytes = bytes;
  rep->timer = TimerWheel::kNoTimer;
  PushReplica(r, t, rep);
}

void PushReplica(RackKv& r, DomainId t, RepOp* rep) {
  KvDomain& dom = *r.doms[static_cast<size_t>(t)];
  ++rep->attempts;
  const uint64_t gen = rep->gen;
  const uint64_t token = ++rep->token;
  RackKv* rk = &r;
  // The replication engine runs on the primary's SoC; a crashed SoC fails
  // the push outright (the restart path re-replicates by application-level
  // means outside this model).
  if (dom.injector != nullptr &&
      dom.injector->CrashedAt(dom.soc_domain, dom.sim->now())) {
    ++dom.repl_failed;
    rep->gen = 0;
    dom.reps.Free(rep);
    return;
  }
  const SimTime fetch_start = dom.sim->now();
  // Path ③: the SoC pulls the freshly-written value out of host DRAM
  // through the NIC engine (double PCIe1 crossing) before pushing it to the
  // follower over the wire.
  dom.bf->nic().ExecuteLocalOp(
      dom.bf->soc_ep(), dom.bf->host_ep(), Verb::kRead,
      r.p->layout.Pack(rep->rank, rep->cls), rep->bytes,
      [rk, t, rep, gen, token, fetch_start](SimTime done) {
        KvDomain& here = *rk->doms[static_cast<size_t>(t)];
        if (rep->gen != gen || rep->token != token) {
          ++here.repl_stale;
          return;
        }
        if (here.injector != nullptr &&
            here.injector->CrashKills(here.soc_domain, fetch_start, done)) {
          ++here.repl_failed;
          rep->gen = 0;
          here.reps.Free(rep);
          return;
        }
        const int peer = rep->peer;
        const uint64_t rank = rep->rank;
        const int cls = rep->cls;
        const uint32_t bytes = rep->bytes;
        rep->timer = here.wheel->In(rk->p->repl_timeout, [rk, t, rep, gen, token] {
          KvDomain& h = *rk->doms[static_cast<size_t>(t)];
          if (rep->gen != gen || rep->token != token) {
            return;
          }
          ++rep->token;  // the in-flight push is dead
          rep->timer = TimerWheel::kNoTimer;
          if (rep->attempts >= rk->p->repl_max_attempts) {
            ++h.repl_failed;
            rep->gen = 0;
            h.reps.Free(rep);
            return;
          }
          h.wheel->In(rk->p->retry_backoff, [rk, t, rep, gen] {
            if (rep->gen != gen) {
              return;
            }
            PushReplica(*rk, t, rep);
          });
        });
        rk->psim->Post(
            t, static_cast<DomainId>(peer),
            here.sim->now() + rk->p->rack_link_latency,
            [rk, t, peer, rep, gen, token, rank, cls, bytes] {
              // Follower side: apply into SoC memory, then ack.
              KvDomain& f = *rk->doms[static_cast<size_t>(peer)];
              if (f.injector != nullptr &&
                  f.injector->CrashedAt(f.soc_domain, f.sim->now())) {
                return;  // dead follower: the primary's timer retries
              }
              const SimTime applied = f.bf->soc_memory().Access(
                  f.sim->now(), rk->p->layout.Pack(rank, cls), bytes,
                  /*is_write=*/true);
              f.sim->At(applied, [rk, t, peer, rep, gen, token, rank] {
                KvDomain& ff = *rk->doms[static_cast<size_t>(peer)];
                ++ff.repl_applied;
                InstallValue(ff, rank, /*bad=*/false);
                rk->psim->Post(
                    static_cast<DomainId>(peer), t,
                    ff.sim->now() + rk->p->rack_link_latency,
                    [rk, t, rep, gen, token] {
                      KvDomain& h = *rk->doms[static_cast<size_t>(t)];
                      if (rep->gen != gen || rep->token != token) {
                        ++h.repl_stale;
                        return;
                      }
                      if (rep->timer != TimerWheel::kNoTimer) {
                        h.wheel->Cancel(rep->timer);
                        rep->timer = TimerWheel::kNoTimer;
                      }
                      ++h.repl_acked;
                      rep->gen = 0;
                      h.reps.Free(rep);
                    });
              });
            });
      },
      /*req_id=*/token);
}

void EpochTick(RackKv& r, DomainId d) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  RackKv* rk = &r;
  // Probe every down-marked server once per epoch; the first ack re-homes.
  // Under the membership plane each down epoch also counts toward permanent
  // loss: the K-th consecutive missed epoch removes the server from this
  // domain's ring (every live domain reaches the same verdict on its own
  // probe clock; epoch stamping reconciles any skew between them).
  for (int s = 0; s < r.p->servers; ++s) {
    if (s == d) {
      continue;
    }
    ServerView& v = dom.views[static_cast<size_t>(s)];
    if (r.p->membership.enabled && !LiveInMask(dom, s)) {
      continue;  // already removed: no probes, no further evidence
    }
    if (!v.down) {
      continue;
    }
    if (r.p->membership.enabled) {
      ++v.missed_epochs;
      if (v.missed_epochs >= r.p->membership.permloss_epochs) {
        ApplyRemoval(r, d, s);
        continue;
      }
    }
    ++dom.probes;
    r.psim->Post(d, static_cast<DomainId>(s),
                 dom.sim->now() + r.p->rack_link_latency, [rk, d, s] {
                   KvDomain& there = *rk->doms[static_cast<size_t>(s)];
                   if (ServerDeadNow(there)) {
                     return;  // the probe dies with the server
                   }
                   rk->psim->Post(static_cast<DomainId>(s), d,
                                  there.sim->now() + rk->p->rack_link_latency,
                                  [rk, d, s] {
                                    KvDomain& home = *rk->doms[static_cast<size_t>(d)];
                                    ServerView& v = home.views[static_cast<size_t>(s)];
                                    v.missed_epochs = 0;
                                    if (!v.down) {
                                      return;
                                    }
                                    v.down = false;
                                    v.consec_fail = 0;
                                    ++home.rehomed;
                                    if (home.first_rehome_at < 0) {
                                      home.first_rehome_at = home.sim->now();
                                    }
                                  });
                 });
  }
  if (r.p->membership.enabled && dom.integ != nullptr &&
      r.p->membership.scrub_keys_per_epoch > 0 && !ServerDeadNow(dom)) {
    ScrubTick(r, d);
  }
  if (dom.sim->now() + r.p->governor_epoch < r.p->window) {
    dom.wheel->In(r.p->governor_epoch, [rk, d] { EpochTick(*rk, d); });
  }
}

// Adopt the removals carried by a bounce or a stamped request: replay, in
// ascending server order, every removal the sender has executed that this
// domain hasn't. Adoption is a union of removals (removals are permanent
// and commutative), so two domains that independently detected *different*
// losses at the same epoch still converge — each adopts the other's
// removals and both land on the popcount epoch of the merged mask.
void AdoptMembership(RackKv& r, DomainId d, uint32_t epoch, uint64_t mask) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (!r.p->membership.enabled || epoch <= dom.member_epoch) {
    return;
  }
  for (int s = 0; s < r.p->servers; ++s) {
    if (LiveInMask(dom, s) && ((mask >> s) & 1u) == 0) {
      ApplyRemoval(r, d, s);
    }
  }
}

// Execute one ring removal at this domain: bump the epoch, drop the
// server's vnodes, and — if this domain is the surviving replica of any of
// the dead server's key ranges — start streaming those keys to their new
// ring owners.
void ApplyRemoval(RackKv& r, DomainId d, int s) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (!LiveInMask(dom, s)) {
    return;
  }
  // Snapshot, under the pre-removal ring, every rank the dead server held
  // (as primary or follower) together with its surviving pair member.
  struct Affected {
    uint64_t rank;
    int survivor;  // the pair member that is not `s` (or -1: s was both)
  };
  std::vector<Affected> affected;
  if (r.p->replicas > 1) {
    const HashRing& old_ring = *dom.mring;
    for (uint64_t rank = 0; rank < r.p->layout.keys; ++rank) {
      const int p = old_ring.PrimaryOf(rank);
      const int f = old_ring.FollowerOf(rank);
      if (p != s && f != s) {
        continue;
      }
      affected.push_back(Affected{rank, p == s ? f : p});
    }
  }
  dom.live_mask &= ~(1ull << s);
  ++dom.member_epoch;
  ++dom.removals;
  if (dom.membership_change_at < 0) {
    dom.membership_change_at = dom.sim->now();
  }
  dom.mring->RemoveServer(s);
  // The removed server is gone for good: clear the failover view so the
  // probe machinery never touches it again.
  dom.views[static_cast<size_t>(s)] = ServerView{};
  if (r.p->replicas <= 1) {
    return;
  }
  // Migration duty: this domain streams exactly the ranks for which IT is
  // the surviving replica (each affected rank has one survivor, so exactly
  // one live domain claims it — no duplicate streams without coordination).
  const bool self_live =
      LiveInMask(dom, static_cast<int>(d)) && !ServerDeadNow(dom);
  const HashRing& ring = *dom.mring;
  std::vector<std::vector<uint64_t>> by_dest(
      static_cast<size_t>(r.p->servers));
  for (const Affected& a : affected) {
    if (!LiveInMask(dom, a.survivor)) {
      // Both replicas are gone. The rank is charged to its live new primary
      // (one counter per rank rack-wide, no matter how many domains notice).
      if (self_live && ring.PrimaryOf(a.rank) == static_cast<int>(d)) {
        ++dom.keys_lost;
      }
      continue;
    }
    if (a.survivor != static_cast<int>(d) || !self_live) {
      continue;
    }
    // New replica pair under the post-removal ring; the member that isn't
    // the survivor needs a copy.
    const int np = ring.PrimaryOf(a.rank);
    const int nf = ring.FollowerOf(a.rank);
    const int dest = np == static_cast<int>(d) ? nf : np;
    SNIC_CHECK_NE(dest, static_cast<int>(d));
    by_dest[static_cast<size_t>(dest)].push_back(a.rank);
  }
  for (int dest = 0; dest < r.p->servers; ++dest) {
    std::vector<uint64_t>& ranks = by_dest[static_cast<size_t>(dest)];
    for (size_t off = 0; off < ranks.size();
         off += static_cast<size_t>(r.p->membership.migrate_batch)) {
      const size_t end =
          std::min(ranks.size(),
                   off + static_cast<size_t>(r.p->membership.migrate_batch));
      StartRange(r, d, dest,
                 std::vector<uint64_t>(ranks.begin() + off, ranks.begin() + end));
    }
  }
}

void StartRange(RackKv& r, DomainId d, int dest, std::vector<uint64_t> ranks) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  ++dom.ranges_started;
  MigOp* m = dom.migs.Alloc();
  m->gen = ++dom.mig_gen;
  m->attempts = 1;
  m->dest = dest;
  m->next = 0;
  m->acked = 0;
  m->ranks = std::move(ranks);
  PushNextKey(r, d, m);
}

// Advance the range's strictly-serial push stream, paced by the shared
// migration token bucket (TakeAmount debits the bytes up front; a negative
// balance defers the push by exactly the refill time).
void PushNextKey(RackKv& r, DomainId d, MigOp* m) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (m->next >= m->ranks.size()) {
    return;  // all pushed; the tail acks complete the range
  }
  const uint64_t rank = m->ranks[m->next];
  const int cls = RepairClassOf(r, rank);
  const uint32_t bytes = r.p->layout.class_bytes[static_cast<size_t>(cls)];
  ++m->next;
  const SimTime wait = dom.mig_bucket.TakeAmount(
      dom.mig_rate_bpus, r.p->membership.migration_burst_bytes,
      static_cast<double>(bytes), dom.sim->now());
  if (wait > 0) {
    ++dom.migration_waits;
    RackKv* rk = &r;
    const uint64_t gen = m->gen;
    dom.wheel->In(wait, [rk, d, m, gen, rank, cls, bytes] {
      if (m->gen != gen) {
        return;
      }
      PushKey(*rk, d, m, rank, cls, bytes);
    });
    return;
  }
  PushKey(r, d, m, rank, cls, bytes);
}

// One key: fetch the value out of host DRAM over path ③ (the same
// ExecuteLocalOp leg replication pays, metered as repair.path3_bytes), then
// push it to the destination, which installs into SoC memory and acks.
void PushKey(RackKv& r, DomainId d, MigOp* m, uint64_t rank, int cls,
             uint32_t bytes) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  RackKv* rk = &r;
  if (dom.injector != nullptr &&
      dom.injector->CrashedAt(dom.soc_domain, dom.sim->now())) {
    RangeFailed(r, d, m);  // the streaming engine runs on the survivor's SoC
    return;
  }
  dom.repair_path3_bytes += bytes;
  const bool src_bad = dom.integ != nullptr && IsCorrupt(dom, rank);
  const uint64_t gen = m->gen;
  const int dest = m->dest;
  const uint32_t mep = dom.member_epoch;
  const uint64_t mmask = dom.live_mask;
  const SimTime fetch_start = dom.sim->now();
  dom.bf->nic().ExecuteLocalOp(
      dom.bf->soc_ep(), dom.bf->host_ep(), Verb::kRead,
      r.p->layout.Pack(rank, cls), bytes,
      [rk, d, m, gen, dest, rank, cls, bytes, src_bad, mep, mmask,
       fetch_start](SimTime done) {
        KvDomain& here = *rk->doms[static_cast<size_t>(d)];
        if (m->gen != gen) {
          return;
        }
        if (here.injector != nullptr &&
            here.injector->CrashKills(here.soc_domain, fetch_start, done)) {
          RangeFailed(*rk, d, m);
          return;
        }
        rk->psim->Post(
            d, static_cast<DomainId>(dest),
            here.sim->now() + rk->p->rack_link_latency,
            [rk, d, m, gen, dest, rank, cls, bytes, src_bad, mep, mmask] {
              KvDomain& f = *rk->doms[static_cast<size_t>(dest)];
              if (ServerDeadNow(f)) {
                // Post is reliable, so an explicit nack (not a timer) keeps
                // the per-key ledger exact: every push resolves.
                rk->psim->Post(static_cast<DomainId>(dest), d,
                               f.sim->now() + rk->p->rack_link_latency,
                               [rk, d, m, gen] {
                                 OnPushNack(*rk, d, m, gen);
                               });
                return;
              }
              AdoptMembership(*rk, static_cast<DomainId>(dest), mep, mmask);
              const SimTime applied = f.bf->soc_memory().Access(
                  f.sim->now(), rk->p->layout.Pack(rank, cls), bytes,
                  /*is_write=*/true);
              f.sim->At(applied, [rk, d, m, gen, dest, rank, src_bad] {
                KvDomain& ff = *rk->doms[static_cast<size_t>(dest)];
                ++ff.keys_installed;
                InstallValue(ff, rank, src_bad);
                rk->psim->Post(static_cast<DomainId>(dest), d,
                               ff.sim->now() + rk->p->rack_link_latency,
                               [rk, d, m, gen] { OnPushAck(*rk, d, m, gen); });
              });
            });
      },
      /*req_id=*/gen);
}

void OnPushAck(RackKv& r, DomainId d, MigOp* m, uint64_t gen) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (m->gen != gen) {
    return;
  }
  ++dom.keys_migrated;
  ++m->acked;
  if (m->acked == m->ranks.size()) {
    ++dom.ranges_completed;
    dom.repair_done_at = std::max(dom.repair_done_at, dom.sim->now());
    m->gen = 0;
    dom.migs.Free(m);
    return;
  }
  PushNextKey(r, d, m);
}

void OnPushNack(RackKv& r, DomainId d, MigOp* m, uint64_t gen) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (m->gen != gen) {
    return;
  }
  if (m->attempts >= r.p->membership.range_max_attempts) {
    RangeFailed(r, d, m);
    return;
  }
  ++m->attempts;
  m->next = static_cast<size_t>(m->acked);  // rewind to the unacked tail
  RackKv* rk = &r;
  dom.wheel->In(r.p->governor_epoch, [rk, d, m, gen] {
    if (m->gen != gen) {
      return;
    }
    PushNextKey(*rk, d, m);
  });
}

void RangeFailed(RackKv& r, DomainId d, MigOp* m) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  ++dom.ranges_failed;
  m->gen = 0;
  dom.migs.Free(m);
}

// Anti-entropy: verify `scrub_keys_per_epoch` stored ranks per epoch behind
// a wrapping cursor. The walk itself is pure computation — a detection is
// the only thing that schedules events (the repair), so a clean store scrubs
// for free and stays byte-identical to a scrubber-free run.
void ScrubTick(RackKv& r, DomainId d) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  const uint64_t n =
      std::min<uint64_t>(r.p->membership.scrub_keys_per_epoch, r.p->layout.keys);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t rank = dom.scrub_cursor;
    dom.scrub_cursor = (dom.scrub_cursor + 1) % r.p->layout.keys;
    if (!StoredHere(r, dom, rank)) {
      continue;
    }
    ++dom.scrub_checked;
    ++dom.integrity_checks;
    if (!IsCorrupt(dom, rank) ||
        dom.integ->repairing[static_cast<size_t>(rank)] != 0) {
      continue;
    }
    ++dom.scrub_detected;
    StartRepair(r, d, rank, /*from_scrub=*/true, nullptr, 0);
  }
}

// Heal one corrupt rank from the replica pair's other member: read its copy
// (SoC memory access at the peer), and if the peer holds a clean value,
// overwrite the local checksum. A parked serve (read-path detection)
// resumes on success and retries elsewhere on failure.
void StartRepair(RackKv& r, DomainId d, uint64_t rank, bool from_scrub,
                 ServeCtx* ctx, uint64_t ctx_gen) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  dom.integ->repairing[static_cast<size_t>(rank)] = 1;
  RepairOp* rp = dom.repairs.Alloc();
  rp->gen = ++dom.repair_gen;
  rp->rank = rank;
  rp->from_scrub = from_scrub;
  rp->ctx = ctx;
  rp->ctx_gen = ctx_gen;
  if (r.p->replicas <= 1) {
    FinishRepair(r, d, rp, rp->gen, /*ok=*/false);  // nowhere to heal from
    return;
  }
  const int peer = RingOf(r, dom).ReplicaPeerOf(rank, static_cast<int>(d));
  const int cls = RepairClassOf(r, rank);
  const uint32_t bytes = r.p->layout.class_bytes[static_cast<size_t>(cls)];
  const uint64_t gen = rp->gen;
  RackKv* rk = &r;
  r.psim->Post(
      d, static_cast<DomainId>(peer), dom.sim->now() + r.p->rack_link_latency,
      [rk, d, rp, gen, peer, rank, cls, bytes] {
        KvDomain& p = *rk->doms[static_cast<size_t>(peer)];
        const bool have = !ServerDeadNow(p) &&
                          !(p.integ != nullptr && IsCorrupt(p, rank));
        if (!have) {
          rk->psim->Post(static_cast<DomainId>(peer), d,
                         p.sim->now() + rk->p->rack_link_latency,
                         [rk, d, rp, gen] {
                           FinishRepair(*rk, d, rp, gen, /*ok=*/false);
                         });
          return;
        }
        const SimTime read_done = p.bf->soc_memory().Access(
            p.sim->now(), rk->p->layout.Pack(rank, cls), bytes,
            /*is_write=*/false);
        p.sim->At(read_done, [rk, d, rp, gen, peer] {
          KvDomain& pp = *rk->doms[static_cast<size_t>(peer)];
          rk->psim->Post(static_cast<DomainId>(peer), d,
                         pp.sim->now() + rk->p->rack_link_latency,
                         [rk, d, rp, gen] {
                           FinishRepair(*rk, d, rp, gen, /*ok=*/true);
                         });
        });
      });
}

void FinishRepair(RackKv& r, DomainId d, RepairOp* rp, uint64_t gen, bool ok) {
  KvDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (rp->gen != gen) {
    return;
  }
  const uint64_t rank = rp->rank;
  dom.integ->repairing[static_cast<size_t>(rank)] = 0;
  if (ok && IsCorrupt(dom, rank)) {
    // Heal in place: restore the expected checksum at the current version
    // (a concurrent write may have already healed it — then the repair is a
    // no-op and the write's counter keeps the ledger exact).
    IntegrityStore& st = *dom.integ;
    const size_t i = static_cast<size_t>(rank);
    st.stored[i] = ValueChecksum(rank, st.version[i]);
    if (rp->from_scrub) {
      ++dom.repaired_scrub;
    } else {
      ++dom.repaired_read;
    }
  }
  if (!ok) {
    ++dom.repair_unavailable;
  }
  ServeCtx* const ctx = rp->ctx;
  const uint64_t ctx_gen = rp->ctx_gen;
  rp->gen = 0;
  dom.repairs.Free(rp);
  if (ctx != nullptr && ctx->gen == ctx_gen && !ctx->settled) {
    // The parked serve resumes against a (hopefully) clean value; if the
    // heal failed it bounces home as an evidence-free retry.
    if (ok) {
      LaunchServe(r, d, ctx);
    } else {
      SettleServe(r, d, ctx, /*ok=*/false, dom.sim->now());
    }
  }
}

void AppendU(std::string* s, uint64_t v) {
  s->append(std::to_string(v));
  s->push_back('|');
}

void AppendD(std::string* s, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s->append(buf);
  s->push_back('|');
}

}  // namespace

std::string RackKvHostDomain(DomainId d) {
  return "rack.s" + std::to_string(d) + ".host";
}

std::string RackKvSocDomain(DomainId d) {
  return "rack.s" + std::to_string(d) + ".soc";
}

std::string RackKvResult::Fingerprint() const {
  std::string s = "rackkv|";
  for (uint64_t v :
       {generated, issued, completed, failed, shed, timeouts, nacks,
        stale_replies, crash_refused, serve_timeouts, late_serves, host_gets,
        soc_gets, soc_hits, soc_misses, path3_bytes, crash_drops,
        rewarm_misses, writes, repl_pushed, repl_acked, repl_failed,
        repl_applied, repl_stale, routed_host, routed_soc, hol_gated,
        budget_spills, explored, gov_draws, breaker_denied, shed_codel,
        shed_bucket, resil_draws, promotions, rehomed, probes, fleet_draws,
        peak_inflight, rounds, merged, processed, digest}) {
    AppendU(&s, v);
  }
  AppendD(&s, max_promote_gap_us);
  AppendD(&s, first_promote_at_us);
  AppendD(&s, first_rehome_at_us);
  AppendU(&s, static_cast<uint64_t>(p50_ps));
  AppendU(&s, static_cast<uint64_t>(p99_ps));
  AppendU(&s, static_cast<uint64_t>(max_ps));
  for (uint64_t v :
       {removals, member_epoch, stale_epoch_bounces, retry_replies,
        ranges_started, ranges_completed, ranges_failed, keys_migrated,
        keys_installed, keys_lost, migration_waits, repair_path3_bytes}) {
    AppendU(&s, v);
  }
  AppendD(&s, membership_change_at_us);
  AppendD(&s, repair_done_at_us);
  AppendD(&s, last_failed_start_us);
  for (uint64_t v :
       {integrity_checks, corrupted_keys, corrupt_propagated,
        read_repair_detected, scrub_checked, scrub_detected, repaired_read,
        repaired_scrub, repaired_write, repair_unavailable, corrupt_remaining,
        undetected_corrupt_serves, scan_forced}) {
    AppendU(&s, v);
  }
  for (uint64_t v : server_completed) {
    AppendU(&s, v);
  }
  AppendU(&s, completed_by_epoch.size());
  for (uint64_t v : completed_by_epoch) {
    AppendU(&s, v);
  }
  return s;
}

RackKvResult RunRackKv(const RackKvParams& params) {
  SNIC_CHECK_GE(params.servers, 2);
  SNIC_CHECK_GT(params.users, 0u);
  SNIC_CHECK_GT(params.think_mean_us, 0.0);
  SNIC_CHECK_GT(params.rack_link_latency, 0);
  SNIC_CHECK_GT(params.request_timeout, 0);
  SNIC_CHECK_GT(params.serve_timeout, 0);
  SNIC_CHECK_GT(params.max_attempts, 0);
  SNIC_CHECK_GT(params.promote_after, 0);
  SNIC_CHECK_GT(params.window, 0);
  SNIC_CHECK_EQ(params.mix.size(), params.layout.class_bytes.size());
  params.layout.Validate();
  if (params.membership.enabled) {
    // Removal keeps >= 2 ring members (shard.h asserts per removal); 64
    // bits bound the live mask.
    SNIC_CHECK_GE(params.servers, 3);
    SNIC_CHECK_LE(params.servers, 63);
    SNIC_CHECK_GE(params.replicas, 2);
    SNIC_CHECK_GE(params.membership.permloss_epochs, 1);
    SNIC_CHECK_GE(params.membership.migrate_batch, 1);
    SNIC_CHECK_GE(params.membership.range_max_attempts, 1);
    SNIC_CHECK_GT(params.membership.migration_burst_bytes, 0.0);
  }
  if (!params.trace.empty()) {
    std::string why;
    const bool trace_ok = params.trace.Validate(&why);
    SNIC_CHECK(trace_ok);
  }

  ParallelSimulator psim(params.servers, params.rack_link_latency,
                         params.sim_threads);
  const HashRing ring(params.servers, /*vnodes_per_server=*/64, params.seed);
  const ZipfDist zipf(params.layout.keys, params.zipf_theta);
  // The rack population, split server -> class by largest remainder so
  // every jobs/sim_threads level sees identical per-bucket populations.
  const std::vector<uint64_t> per_server = AggregateFleet::Partition(
      params.users, std::vector<double>(static_cast<size_t>(params.servers), 1.0));
  // The repair plane's reserved slice of the intra-machine path-③ budget.
  const double migration_gbps =
      params.membership.migration_gbps > 0.0
          ? params.membership.migration_gbps
          : 0.25 * SafePath3BudgetGbps(params.testbed);
  // Gbps -> bytes/us (1 Gbps == 125 B/us).
  const double mig_rate_bpus = migration_gbps * 125.0;
  // The integrity store exists iff something can dirty or verify it.
  const bool want_integrity =
      !params.faults.corrupts.empty() ||
      (params.membership.enabled && params.membership.scrub_keys_per_epoch > 0);

  RackKv rack;
  rack.p = &params;
  rack.psim = &psim;
  rack.ring = &ring;
  rack.zipf = &zipf;
  std::unique_ptr<trace::TraceDriver> trace_driver;
  if (!params.trace.empty()) {
    trace_driver = std::make_unique<trace::TraceDriver>(params.trace);
    rack.trace = trace_driver.get();
  }
  rack.doms.reserve(static_cast<size_t>(params.servers));
  const ClientParams client_params;  // governor latency priors only
  for (int d = 0; d < params.servers; ++d) {
    auto dom = std::make_unique<KvDomain>();
    dom->id = d;
    dom->sim = psim.domain(d);
    dom->host_domain = RackKvHostDomain(d);
    dom->soc_domain = RackKvSocDomain(d);
    dom->fabric = std::make_unique<Fabric>(
        dom->sim, params.testbed.network_link_propagation,
        params.testbed.network_switch_forward);
    dom->bf = std::make_unique<BluefieldServer>(
        dom->sim, dom->fabric.get(), params.testbed,
        "rack.s" + std::to_string(d));
    dom->uplink = dom->fabric->AddPort("rack.s" + std::to_string(d) + ".up",
                                       params.testbed.client_port_bandwidth);
    kv::ServingConfig serving =
        kv::ServingConfig::FromTestbed(params.testbed, params.layout);
    serving.host_domain = dom->host_domain;
    serving.soc_domain = dom->soc_domain;
    dom->exec = std::make_unique<kv::ServingExecutor>(dom->sim, dom->bf.get(),
                                                      serving);
    dom->wheel = std::make_unique<TimerWheel>(dom->sim);
    dom->sim->set_timer_wheel(dom->wheel.get());
    if (!params.faults.empty()) {
      dom->injector = std::make_unique<fault::FaultInjector>(params.faults);
      dom->sim->set_faults(dom->injector.get());
    }
    if (!params.resil.empty()) {
      dom->resil =
          std::make_unique<resilience::ResilienceManager>(params.resil);
      dom->exec->BindResilience(dom->resil.get());
    }
    governor::GovernorConfig gcfg;
    gcfg.seed = params.seed ^ (0x9e3779b97f4a7c15ull * (d + 1));
    gcfg.epoch = params.governor_epoch;
    dom->gov = std::make_unique<governor::AdaptiveGovernor>(
        dom->sim, gcfg, &dom->exec->config().layout, serving, params.testbed,
        client_params, params.layout.class_bytes);
    dom->live_reg = std::make_unique<MetricsRegistry>();
    dom->exec->RegisterMetrics(dom->live_reg.get());
    if (params.membership.enabled) {
      // Registered before BindMetrics so the governor's path-③ budget gate
      // samples migration traffic: repair bytes spend the same
      // SafePath3BudgetGbps serving misses do (DESIGN.md §16).
      KvDomain* dp = dom.get();
      dom->live_reg->Register(
          "repair", "path3_bytes", "bytes",
          "migration-fetch bytes pulled over path 3 by the repair plane",
          [dp] { return static_cast<double>(dp->repair_path3_bytes); });
      dom->mring = std::make_unique<HashRing>(ring);
      dom->live_mask = (params.servers >= 64)
                           ? ~0ull
                           : ((1ull << params.servers) - 1);
      dom->mig_rate_bpus = mig_rate_bpus;
    }
    if (want_integrity) {
      dom->integ = std::make_unique<IntegrityStore>();
      dom->integ->stored.resize(static_cast<size_t>(params.layout.keys));
      dom->integ->version.assign(static_cast<size_t>(params.layout.keys), 0);
      dom->integ->repairing.assign(static_cast<size_t>(params.layout.keys), 0);
      for (uint64_t rank = 0; rank < params.layout.keys; ++rank) {
        dom->integ->stored[static_cast<size_t>(rank)] = ValueChecksum(rank, 0);
      }
    }
    dom->gov->BindMetrics(*dom->live_reg);
    if (dom->resil != nullptr) {
      dom->gov->BindResilience(dom->resil.get());
    }
    AggregateFleetParams fp;
    fp.users_per_class =
        AggregateFleet::Partition(per_server[static_cast<size_t>(d)], params.mix);
    fp.think_mean_us = params.think_mean_us;
    fp.seed = params.seed ^ (0xd1b54a32d192ed03ull * (d + 1));
    fp.materialize = params.materialize_fleet;
    dom->fleet = std::make_unique<AggregateFleet>(dom->sim, std::move(fp));
    if (rack.trace != nullptr) {
      dom->fleet->SetTrace(rack.trace);
    }
    dom->views.assign(static_cast<size_t>(params.servers), ServerView{});
    rack.doms.push_back(std::move(dom));
  }

  // Opening lineup, in domain order: the fleet's candidate chains, the
  // failover epoch tick, and the quiesce edge that stops both.
  RackKv* rk = &rack;
  for (int d = 0; d < params.servers; ++d) {
    KvDomain& dom = *rack.doms[static_cast<size_t>(d)];
    AggregateFleet* fleet = dom.fleet.get();
    KvDomain* dp = &dom;
    dom.sim->At(0, [rk, d, fleet] {
      fleet->Start([rk, d](int cls, uint64_t user) { IssueNew(*rk, d, cls, user); });
      EpochTick(*rk, d);
    });
    // corrupt= events addressed to this server (either endpoint or the
    // whole-server prefix) fire as draw-free checksum flips at `at`.
    for (const fault::CorruptEvent& ev : params.faults.corrupts) {
      if (!fault::DomainMatches(ev.domain, dom.host_domain) &&
          !fault::DomainMatches(ev.domain, dom.soc_domain)) {
        continue;
      }
      const double frac = ev.fraction;
      const uint64_t salt = params.faults.seed ^ Fnv1a(dom.soc_domain) ^
                            Mix64(static_cast<uint64_t>(ev.at));
      dom.sim->At(ev.at, [rk, d, frac, salt] {
        ApplyCorruption(*rk, d, frac, salt);
      });
    }
    dom.sim->At(params.window, [fleet, dp] {
      fleet->Stop();
      dp->gov->StopTicking();
    });
  }
  psim.Run();

  RackKvResult out;
  out.rounds = psim.rounds();
  out.merged = psim.merged();
  out.processed = psim.processed();
  uint64_t digest = psim.merge_digest();
  Histogram latency;
  out.server_completed.reserve(static_cast<size_t>(params.servers));
  constexpr uint64_t kPrime = 1099511628211ull;
  auto mix = [&digest](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (8 * i)) & 0xffu;
      digest *= kPrime;
    }
  };
  for (const auto& domp : rack.doms) {
    const KvDomain& dom = *domp;
    // Every record resolved before quiesce: the O(in-flight) claim and the
    // ledger both depend on a fully drained rack.
    SNIC_CHECK_EQ(dom.ops.live(), 0u);
    SNIC_CHECK_EQ(dom.serves.live(), 0u);
    SNIC_CHECK_EQ(dom.reps.live(), 0u);
    SNIC_CHECK_EQ(dom.migs.live(), 0u);
    SNIC_CHECK_EQ(dom.repairs.live(), 0u);
    out.generated += dom.generated;
    out.issued += dom.issued;
    out.completed += dom.completed;
    out.failed += dom.failed;
    out.shed += dom.shed;
    out.timeouts += dom.timeouts;
    out.nacks += dom.nacks;
    out.stale_replies += dom.stale_replies;
    out.crash_refused += dom.crash_refused;
    out.serve_timeouts += dom.serve_timeouts;
    out.late_serves += dom.late_serves;
    out.host_gets += dom.exec->host_gets();
    out.soc_gets += dom.exec->soc_gets();
    out.soc_hits += dom.exec->soc_hits();
    out.soc_misses += dom.exec->soc_misses();
    out.path3_bytes += dom.exec->path3_bytes();
    out.crash_drops += dom.exec->crash_drops();
    out.rewarm_misses += dom.exec->rewarm_misses();
    out.writes += dom.writes;
    out.repl_pushed += dom.repl_pushed;
    out.repl_acked += dom.repl_acked;
    out.repl_failed += dom.repl_failed;
    out.repl_applied += dom.repl_applied;
    out.repl_stale += dom.repl_stale;
    out.routed_host += dom.gov->routed(governor::kPathHost);
    out.routed_soc += dom.gov->routed(governor::kPathSoc);
    out.hol_gated += dom.gov->hol_gated();
    out.budget_spills += dom.gov->budget_spills();
    out.explored += dom.gov->explored();
    out.gov_draws += dom.gov->draws();
    out.breaker_denied += dom.gov->breaker_denied();
    if (dom.resil != nullptr) {
      out.shed_codel += dom.resil->shed_codel();
      out.shed_bucket += dom.resil->shed_bucket();
      out.resil_draws += dom.resil->draws();
    }
    out.promotions += dom.promotions;
    out.rehomed += dom.rehomed;
    out.probes += dom.probes;
    if (dom.max_promote_gap >= 0) {
      out.max_promote_gap_us =
          std::max(out.max_promote_gap_us, ToMicros(dom.max_promote_gap));
    }
    if (dom.first_promote_at >= 0 &&
        (out.first_promote_at_us < 0 ||
         ToMicros(dom.first_promote_at) < out.first_promote_at_us)) {
      out.first_promote_at_us = ToMicros(dom.first_promote_at);
    }
    if (dom.first_rehome_at >= 0 &&
        (out.first_rehome_at_us < 0 ||
         ToMicros(dom.first_rehome_at) < out.first_rehome_at_us)) {
      out.first_rehome_at_us = ToMicros(dom.first_rehome_at);
    }
    out.fleet_draws += dom.fleet->draws();
    out.peak_inflight += dom.fleet->peak_inflight();
    out.resident_client_bytes +=
        dom.fleet->resident_state_bytes() +
        dom.ops.capacity() * sizeof(HomeOp) +
        dom.serves.capacity() * sizeof(ServeCtx) +
        dom.reps.capacity() * sizeof(RepOp) +
        dom.migs.capacity() * sizeof(MigOp) +
        dom.repairs.capacity() * sizeof(RepairOp);
    out.server_completed.push_back(dom.server_completed);
    latency.Merge(dom.latency);
    // Membership & repair plane.
    out.removals += dom.removals;
    out.member_epoch = std::max<uint64_t>(out.member_epoch, dom.member_epoch);
    out.stale_epoch_bounces += dom.stale_epoch_bounces;
    out.retry_replies += dom.retry_replies;
    out.ranges_started += dom.ranges_started;
    out.ranges_completed += dom.ranges_completed;
    out.ranges_failed += dom.ranges_failed;
    out.keys_migrated += dom.keys_migrated;
    out.keys_installed += dom.keys_installed;
    out.keys_lost += dom.keys_lost;
    out.migration_waits += dom.migration_waits;
    out.repair_path3_bytes += dom.repair_path3_bytes;
    if (dom.membership_change_at >= 0 &&
        (out.membership_change_at_us < 0 ||
         ToMicros(dom.membership_change_at) < out.membership_change_at_us)) {
      out.membership_change_at_us = ToMicros(dom.membership_change_at);
    }
    if (dom.repair_done_at >= 0) {
      out.repair_done_at_us =
          std::max(out.repair_done_at_us, ToMicros(dom.repair_done_at));
    }
    if (dom.last_failed_start >= 0) {
      out.last_failed_start_us =
          std::max(out.last_failed_start_us, ToMicros(dom.last_failed_start));
    }
    // Integrity layer. corrupt_remaining counts every domain, dead ones
    // included — a lost server keeps its bad values, and counting them is
    // what closes the corruption ledger under permloss+corrupt.
    out.integrity_checks += dom.integrity_checks;
    out.corrupted_keys += dom.corrupted_keys;
    out.corrupt_propagated += dom.corrupt_propagated;
    out.read_repair_detected += dom.read_repair_detected;
    out.scrub_checked += dom.scrub_checked;
    out.scrub_detected += dom.scrub_detected;
    out.repaired_read += dom.repaired_read;
    out.repaired_scrub += dom.repaired_scrub;
    out.repaired_write += dom.repaired_write;
    out.repair_unavailable += dom.repair_unavailable;
    out.undetected_corrupt_serves += dom.undetected_corrupt_serves;
    if (dom.integ != nullptr) {
      for (uint64_t rank = 0; rank < params.layout.keys; ++rank) {
        if (IsCorrupt(dom, rank)) {
          ++out.corrupt_remaining;
        }
      }
    }
    out.scan_forced += dom.scan_forced;
    if (dom.completed_by_epoch.size() > out.completed_by_epoch.size()) {
      out.completed_by_epoch.resize(dom.completed_by_epoch.size(), 0);
    }
    for (size_t i = 0; i < dom.completed_by_epoch.size(); ++i) {
      out.completed_by_epoch[i] += dom.completed_by_epoch[i];
    }
    for (uint64_t v :
         {dom.generated, dom.completed, dom.failed, dom.shed, dom.timeouts,
          dom.nacks, dom.stale_replies, dom.crash_refused, dom.serve_timeouts,
          dom.writes, dom.repl_acked, dom.promotions, dom.rehomed,
          dom.server_completed, dom.fleet->draws(), dom.gov->draws(),
          dom.sim->processed(), static_cast<uint64_t>(dom.sim->now()),
          dom.removals, static_cast<uint64_t>(dom.member_epoch),
          dom.stale_epoch_bounces, dom.ranges_completed, dom.keys_migrated,
          dom.keys_installed, dom.scrub_detected, dom.repaired_read,
          dom.repaired_scrub, dom.scan_forced}) {
      mix(v);
    }
  }
  out.digest = digest;
  out.p50_ps = latency.Percentile(50.0);
  out.p99_ps = latency.Percentile(99.0);
  out.max_ps = latency.max();

  if (!params.metrics_path.empty()) {
    MetricsRegistry dump;
    const RackKvResult* res = &out;
    dump.Register("rack", "generated", "count",
                  "requests generated by the aggregate fleets",
                  [res] { return static_cast<double>(res->generated); });
    dump.Register("rack", "completed", "count", "requests settled ok",
                  [res] { return static_cast<double>(res->completed); });
    dump.Register("rack", "failed", "count",
                  "requests that exhausted the retry budget",
                  [res] { return static_cast<double>(res->failed); });
    dump.Register("rack", "shed", "count",
                  "requests refused by serving-side admission",
                  [res] { return static_cast<double>(res->shed); });
    dump.Register("rack", "timeouts", "count", "home request-timeout firings",
                  [res] { return static_cast<double>(res->timeouts); });
    dump.Register("rack", "repl_pushed", "count",
                  "replication pushes initiated by acting primaries",
                  [res] { return static_cast<double>(res->repl_pushed); });
    dump.Register("rack", "repl_acked", "count",
                  "replication pushes acked by the follower",
                  [res] { return static_cast<double>(res->repl_acked); });
    dump.Register("rack", "promotions", "count",
                  "shard failovers (a home marked a server down)",
                  [res] { return static_cast<double>(res->promotions); });
    dump.Register("rack", "rehomed", "count",
                  "recoveries (a probe or data reply re-homed a server)",
                  [res] { return static_cast<double>(res->rehomed); });
    dump.Register("rack", "peak_inflight", "count",
                  "rack-wide peak concurrent in-flight requests",
                  [res] { return static_cast<double>(res->peak_inflight); });
    dump.Register("rack", "resident_client_bytes", "bytes",
                  "resident client state (fleet + in-flight slabs)",
                  [res] { return static_cast<double>(res->resident_client_bytes); });
    SNIC_CHECK(dump.WriteJsonFile(params.metrics_path));
  }
  return out;
}

}  // namespace snicsim
