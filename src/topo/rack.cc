#include "src/topo/rack.h"

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/fault/injector.h"
#include "src/sim/parallel.h"
#include "src/sim/pool.h"
#include "src/sim/server.h"
#include "src/sim/timer_wheel.h"

namespace snicsim {
namespace {

// One in-flight request record. Lives in its home domain's slab; while the
// request is at the serving domain the pointer travels inside closures as
// an opaque handle and is only dereferenced back home (src/sim/domain.h).
struct Op {
  SimTime start = 0;
  int client = 0;
  int attempts = 0;
};

struct ClientState {
  int remaining = 0;
};

// Everything one server domain owns. Touched only by the thread currently
// running that domain — the ParallelSimulator barrier is the hand-off.
struct RackDomain {
  DomainId id = 0;
  Simulator* sim = nullptr;
  std::unique_ptr<MultiServer> pool;
  std::unique_ptr<TimerWheel> wheel;
  std::unique_ptr<fault::FaultInjector> injector;
  Rng rng{0};
  SlabPool<Op> ops;
  std::vector<ClientState> clients;
  std::vector<std::string> links;  // precomputed RackLinkName(id, dst)
  Histogram latency;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t dropped = 0;
  uint64_t retried = 0;
  uint64_t crash_refused = 0;
  uint64_t scratch = 0;  // burst-event accumulator; folded into the digest
};

struct Rack {
  const RackParams* p = nullptr;
  ParallelSimulator* psim = nullptr;
  std::vector<std::unique_ptr<RackDomain>> doms;
};

void Issue(Rack& r, DomainId d, int client);
void Send(Rack& r, DomainId d, Op* op);
void Retry(Rack& r, DomainId d, Op* op);
void Arrive(Rack& r, DomainId src, DomainId dst, Op* op, SimTime service);
void Reply(Rack& r, DomainId d, Op* op);

void Issue(Rack& r, DomainId d, int client) {
  RackDomain& dom = *r.doms[static_cast<size_t>(d)];
  ClientState& cl = dom.clients[static_cast<size_t>(client)];
  if (cl.remaining == 0) {
    return;
  }
  --cl.remaining;
  ++dom.issued;
  Op* op = dom.ops.Alloc();
  op->start = dom.sim->now();
  op->client = client;
  op->attempts = 0;
  Send(r, d, op);
}

void Send(Rack& r, DomainId d, Op* op) {
  RackDomain& dom = *r.doms[static_cast<size_t>(d)];
  const RackParams& p = *r.p;
  ++op->attempts;
  // All draws for an op happen in its home domain, in its home domain's
  // event order — the destination executes with shipped values and never
  // touches this RNG stream.
  const uint64_t pick = dom.rng.NextBelow(static_cast<uint64_t>(p.servers - 1));
  const DomainId dst =
      static_cast<DomainId>(pick >= static_cast<uint64_t>(d) ? pick + 1 : pick);
  const SimTime service =
      p.service + static_cast<SimTime>(
                      dom.rng.NextBelow(static_cast<uint64_t>(p.service)));
  if (dom.injector != nullptr &&
      dom.injector->ShouldDropBurst(dom.links[static_cast<size_t>(dst)], 1,
                                    dom.sim->now())) {
    ++dom.dropped;
    Retry(r, d, op);
    return;
  }
  Rack* rack = &r;
  r.psim->Post(d, dst, dom.sim->now() + p.link_latency,
               [rack, d, dst, op, service] { Arrive(*rack, d, dst, op, service); });
}

void Retry(Rack& r, DomainId d, Op* op) {
  RackDomain& dom = *r.doms[static_cast<size_t>(d)];
  if (op->attempts >= r.p->max_attempts) {
    ++dom.failed;
    const int client = op->client;
    dom.ops.Free(op);
    Issue(r, d, client);
    return;
  }
  ++dom.retried;
  Rack* rack = &r;
  // Backoff through the domain's wheel: the rack doubles as multi-domain
  // coverage for the timer-wheel clock path.
  dom.wheel->In(r.p->retry_backoff, [rack, d, op] { Send(*rack, d, op); });
}

void Arrive(Rack& r, DomainId src, DomainId dst, Op* op, SimTime service) {
  RackDomain& dom = *r.doms[static_cast<size_t>(dst)];
  const RackParams& p = *r.p;
  Rack* rack = &r;
  if (dom.injector != nullptr &&
      dom.injector->CrashedAt(RackFaultDomain(dst), dom.sim->now())) {
    ++dom.crash_refused;
    // Nack home; the client backs off and resends. `op` stays opaque here.
    r.psim->Post(dst, src, dom.sim->now() + p.link_latency,
                 [rack, src, op] { Retry(*rack, src, op); });
    return;
  }
  const SimTime done = dom.pool->EnqueueAt(dom.sim->now(), service, nullptr);
  RackDomain* served = &dom;
  for (int b = 0; b < p.burst; ++b) {
    // Local fan-out: post-serve bookkeeping events (cache touch, index
    // update, ...) that give each round real per-domain work.
    dom.sim->At(done, [served, b] {
      served->scratch = served->scratch * 6364136223846793005ull +
                        static_cast<uint64_t>(b) + 1;
    });
  }
  dom.sim->At(done, [rack, src, dst, op] {
    RackDomain& here = *rack->doms[static_cast<size_t>(dst)];
    rack->psim->Post(dst, src, here.sim->now() + rack->p->link_latency,
                     [rack, src, op] { Reply(*rack, src, op); });
  });
}

void Reply(Rack& r, DomainId d, Op* op) {
  RackDomain& dom = *r.doms[static_cast<size_t>(d)];
  dom.latency.Record(dom.sim->now() - op->start);
  ++dom.completed;
  const int client = op->client;
  dom.ops.Free(op);
  Issue(r, d, client);
}

uint64_t Mix(uint64_t h, uint64_t v) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::string RackFaultDomain(DomainId d) {
  return "rack.s" + std::to_string(d) + (d % 2 == 0 ? ".host" : ".soc");
}

std::string RackLinkName(DomainId src, DomainId dst) {
  return "rack.l" + std::to_string(src) + "." + std::to_string(dst);
}

std::string RackResult::Fingerprint() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "issued=%llu;completed=%llu;failed=%llu;dropped=%llu;"
                "retried=%llu;crash_refused=%llu;rounds=%llu;merged=%llu;"
                "processed=%llu;p50=%lld;p99=%lld;max=%lld;digest=%016llx",
                static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(retried),
                static_cast<unsigned long long>(crash_refused),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(merged),
                static_cast<unsigned long long>(processed),
                static_cast<long long>(p50_ps), static_cast<long long>(p99_ps),
                static_cast<long long>(max_ps),
                static_cast<unsigned long long>(digest));
  return buf;
}

RackResult RunRack(const RackParams& params) {
  SNIC_CHECK_GE(params.servers, 2);
  SNIC_CHECK_GT(params.clients_per_server, 0);
  SNIC_CHECK_GT(params.cores_per_server, 0);
  SNIC_CHECK_GT(params.requests_per_client, 0);
  SNIC_CHECK_GE(params.burst, 0);
  SNIC_CHECK_GT(params.max_attempts, 0);
  SNIC_CHECK_GT(params.link_latency, 0);
  SNIC_CHECK_GT(params.service, 0);
  SNIC_CHECK_GT(params.retry_backoff, 0);

  ParallelSimulator psim(params.servers, params.link_latency,
                         params.sim_threads);
  Rack rack;
  rack.p = &params;
  rack.psim = &psim;
  rack.doms.reserve(static_cast<size_t>(params.servers));
  for (int d = 0; d < params.servers; ++d) {
    auto dom = std::make_unique<RackDomain>();
    dom->id = d;
    dom->sim = psim.domain(d);
    dom->pool = std::make_unique<MultiServer>(
        dom->sim, "rack.s" + std::to_string(d) + ".pool",
        params.cores_per_server);
    dom->wheel = std::make_unique<TimerWheel>(dom->sim);
    dom->sim->set_timer_wheel(dom->wheel.get());
    if (!params.faults.empty()) {
      dom->injector = std::make_unique<fault::FaultInjector>(params.faults);
      dom->sim->set_faults(dom->injector.get());
    }
    dom->rng = Rng(params.seed ^ (0x9e3779b97f4a7c15ull * (d + 1)));
    dom->clients.resize(static_cast<size_t>(params.clients_per_server),
                        ClientState{params.requests_per_client});
    dom->links.reserve(static_cast<size_t>(params.servers));
    for (int dst = 0; dst < params.servers; ++dst) {
      dom->links.push_back(RackLinkName(d, dst));
    }
    rack.doms.push_back(std::move(dom));
  }
  // Seed: every client opens its loop at t=0, in (domain, client) order —
  // the deterministic starting lineup.
  for (int d = 0; d < params.servers; ++d) {
    for (int c = 0; c < params.clients_per_server; ++c) {
      Rack* rp = &rack;
      rack.doms[static_cast<size_t>(d)]->sim->At(0, [rp, d, c] { Issue(*rp, d, c); });
    }
  }
  psim.Run();

  RackResult out;
  out.rounds = psim.rounds();
  out.merged = psim.merged();
  out.processed = psim.processed();
  uint64_t digest = psim.merge_digest();
  Histogram latency;
  for (const auto& dom : rack.doms) {
    SNIC_CHECK_EQ(dom->ops.live(), 0u);  // every op resolved before quiesce
    out.issued += dom->issued;
    out.completed += dom->completed;
    out.failed += dom->failed;
    out.dropped += dom->dropped;
    out.retried += dom->retried;
    out.crash_refused += dom->crash_refused;
    latency.Merge(dom->latency);
    for (const uint64_t v :
         {dom->issued, dom->completed, dom->failed, dom->dropped, dom->retried,
          dom->crash_refused, dom->scratch, dom->sim->processed(),
          static_cast<uint64_t>(dom->sim->now())}) {
      digest = Mix(digest, v);
    }
  }
  out.digest = digest;
  out.p50_ps = latency.Percentile(50.0);
  out.p99_ps = latency.Percentile(99.0);
  out.max_ps = latency.max();
  return out;
}

}  // namespace snicsim
