file(REMOVE_RECURSE
  "libsnicsim_topo.a"
)
