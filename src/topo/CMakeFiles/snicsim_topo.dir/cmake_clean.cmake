file(REMOVE_RECURSE
  "CMakeFiles/snicsim_topo.dir/rack.cc.o"
  "CMakeFiles/snicsim_topo.dir/rack.cc.o.d"
  "CMakeFiles/snicsim_topo.dir/server.cc.o"
  "CMakeFiles/snicsim_topo.dir/server.cc.o.d"
  "libsnicsim_topo.a"
  "libsnicsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
