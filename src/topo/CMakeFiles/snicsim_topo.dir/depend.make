# Empty dependencies file for snicsim_topo.
# This may be replaced when dependencies are built.
