# Empty dependencies file for snicsim_rack.
# This may be replaced when dependencies are built.
