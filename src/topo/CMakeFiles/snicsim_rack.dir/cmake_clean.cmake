file(REMOVE_RECURSE
  "CMakeFiles/snicsim_rack.dir/rack_kv.cc.o"
  "CMakeFiles/snicsim_rack.dir/rack_kv.cc.o.d"
  "libsnicsim_rack.a"
  "libsnicsim_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
