file(REMOVE_RECURSE
  "libsnicsim_rack.a"
)
