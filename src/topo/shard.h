// Consistent-hash shard map for the rack-scale KV (src/topo/rack_kv.h).
//
// Keys (popularity ranks) hash onto a ring of virtual nodes; the first
// vnode clockwise owns the key (the shard's primary) and the next vnode
// belonging to a *different* server is the follower replica. Virtual nodes
// smooth the per-server load imbalance to O(sqrt(vnodes)) and make the map
// stable under membership change — properties the failover scenario leans
// on: when a home domain marks the primary down, the follower is a pure
// function of (ring, key), so every domain promotes the same replacement
// without coordination.
//
// Determinism: the ring is built once from (seed, server, vnode) hashes
// with a keyed 64-bit mixer; no RNG stream is consumed. A shared ring is
// read-only across parallel-sim domains exactly like ZipfDist
// (src/sim/domain.h shared-const rule). Membership change (RemoveServer /
// AddServer) mutates, so the rack membership plane gives each domain its
// own copy and mutates only from that domain's events; because a server's
// vnode points are a pure function of (keyed seed, server, vnode index),
// removal and re-addition are exact inverses and every domain that applies
// the same membership set converges to the identical ring.
#ifndef SRC_TOPO_SHARD_H_
#define SRC_TOPO_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/log.h"

namespace snicsim {

class HashRing {
 public:
  HashRing(int servers, int vnodes_per_server = 64,
           uint64_t seed = 0x5a4dULL)
      : servers_(servers),
        vnodes_(vnodes_per_server),
        live_(static_cast<size_t>(servers), 1) {
    SNIC_CHECK_GE(servers, 2);
    SNIC_CHECK_GT(vnodes_per_server, 0);
    points_.reserve(static_cast<size_t>(servers * vnodes_per_server));
    // Avalanche the seed before XORing the (server, vnode) id in: a raw
    // `seed ^ v` would let seeds differing only in the vnode-index bits
    // produce the same input *set* (vnodes permuted within each server),
    // i.e. the identical ring.
    keyed_ = Mix(seed);
    for (int s = 0; s < servers; ++s) {
      for (int v = 0; v < vnodes_; ++v) {
        points_.push_back(Point{PointHash(s, v), s});
      }
    }
    SortPoints();
  }

  int servers() const { return servers_; }

  // Membership. Ids stay in [0, servers): removal takes a server's vnodes
  // off the ring (its keys fall to the next live owner clockwise — the
  // minimal-disruption property the churn tests pin), re-addition puts the
  // exact same vnode points back, restoring the original assignment. At
  // least 2 servers must remain live so FollowerOf always has a distinct
  // peer.
  bool IsLive(int server) const {
    return live_[static_cast<size_t>(server)] != 0;
  }

  int LiveCount() const {
    int n = 0;
    for (uint8_t l : live_) {
      n += l;
    }
    return n;
  }

  void RemoveServer(int server) {
    SNIC_CHECK(IsLive(server));
    SNIC_CHECK_GE(LiveCount(), 3);
    live_[static_cast<size_t>(server)] = 0;
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [server](const Point& p) {
                                   return p.server == server;
                                 }),
                  points_.end());
  }

  void AddServer(int server) {
    SNIC_CHECK(!IsLive(server));
    live_[static_cast<size_t>(server)] = 1;
    for (int v = 0; v < vnodes_; ++v) {
      points_.push_back(Point{PointHash(server, v), server});
    }
    SortPoints();
  }

  // The server owning `key` (the shard primary).
  int PrimaryOf(uint64_t key) const { return points_[Lookup(key)].server; }

  // The follower replica: the next ring point clockwise from the owner that
  // belongs to a different server. With >= 2 servers one always exists.
  int FollowerOf(uint64_t key) const {
    const size_t start = Lookup(key);
    const int primary = points_[start].server;
    for (size_t i = 1; i < points_.size(); ++i) {
      const int s = points_[(start + i) % points_.size()].server;
      if (s != primary) {
        return s;
      }
    }
    SNIC_CHECK(false);  // unreachable: >= 2 servers on the ring
    return primary;
  }

  // The shard pair member serving `key` that is not `self` — where a write
  // executed on `self` pushes its replica. `self` must be one of the pair.
  int ReplicaPeerOf(uint64_t key, int self) const {
    const int p = PrimaryOf(key);
    return self == p ? FollowerOf(key) : p;
  }

 private:
  struct Point {
    uint64_t hash = 0;
    int server = 0;
  };

  // splitmix64 finalizer: a keyed full-avalanche 64-bit mixer.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint64_t PointHash(int s, int v) const {
    return Mix(keyed_ ^
               (static_cast<uint64_t>(s) << 32 | static_cast<uint64_t>(v)));
  }

  void SortPoints() {
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) {
                // Hash ties broken by server id: the order must not depend
                // on the (unspecified) relative order std::sort leaves
                // equal keys in.
                return a.hash != b.hash ? a.hash < b.hash : a.server < b.server;
              });
  }

  // First ring point at or clockwise after hash(key), wrapping.
  size_t Lookup(uint64_t key) const {
    const uint64_t h = Mix(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, uint64_t v) { return p.hash < v; });
    if (it == points_.end()) {
      it = points_.begin();
    }
    return static_cast<size_t>(it - points_.begin());
  }

  int servers_;
  int vnodes_;
  uint64_t keyed_ = 0;
  std::vector<uint8_t> live_;
  std::vector<Point> points_;
};

}  // namespace snicsim

#endif  // SRC_TOPO_SHARD_H_
