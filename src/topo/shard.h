// Consistent-hash shard map for the rack-scale KV (src/topo/rack_kv.h).
//
// Keys (popularity ranks) hash onto a ring of virtual nodes; the first
// vnode clockwise owns the key (the shard's primary) and the next vnode
// belonging to a *different* server is the follower replica. Virtual nodes
// smooth the per-server load imbalance to O(sqrt(vnodes)) and make the map
// stable under membership change — properties the failover scenario leans
// on: when a home domain marks the primary down, the follower is a pure
// function of (ring, key), so every domain promotes the same replacement
// without coordination.
//
// Determinism: the ring is built once from (seed, server, vnode) hashes
// with a keyed 64-bit mixer; no RNG stream is consumed. The ring is
// immutable after construction and shared read-only across parallel-sim
// domains exactly like ZipfDist (src/sim/domain.h shared-const rule).
#ifndef SRC_TOPO_SHARD_H_
#define SRC_TOPO_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/log.h"

namespace snicsim {

class HashRing {
 public:
  HashRing(int servers, int vnodes_per_server = 64,
           uint64_t seed = 0x5a4dULL)
      : servers_(servers) {
    SNIC_CHECK_GE(servers, 2);
    SNIC_CHECK_GT(vnodes_per_server, 0);
    points_.reserve(static_cast<size_t>(servers * vnodes_per_server));
    // Avalanche the seed before XORing the (server, vnode) id in: a raw
    // `seed ^ v` would let seeds differing only in the vnode-index bits
    // produce the same input *set* (vnodes permuted within each server),
    // i.e. the identical ring.
    const uint64_t keyed = Mix(seed);
    for (int s = 0; s < servers; ++s) {
      for (int v = 0; v < vnodes_per_server; ++v) {
        points_.push_back(Point{
            Mix(keyed ^ (static_cast<uint64_t>(s) << 32 | static_cast<uint64_t>(v))),
            s});
      }
    }
    std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
      // Hash ties broken by server id: the order must not depend on the
      // (unspecified) relative order std::sort leaves equal keys in.
      return a.hash != b.hash ? a.hash < b.hash : a.server < b.server;
    });
  }

  int servers() const { return servers_; }

  // The server owning `key` (the shard primary).
  int PrimaryOf(uint64_t key) const { return points_[Lookup(key)].server; }

  // The follower replica: the next ring point clockwise from the owner that
  // belongs to a different server. With >= 2 servers one always exists.
  int FollowerOf(uint64_t key) const {
    const size_t start = Lookup(key);
    const int primary = points_[start].server;
    for (size_t i = 1; i < points_.size(); ++i) {
      const int s = points_[(start + i) % points_.size()].server;
      if (s != primary) {
        return s;
      }
    }
    SNIC_CHECK(false);  // unreachable: >= 2 servers on the ring
    return primary;
  }

  // The shard pair member serving `key` that is not `self` — where a write
  // executed on `self` pushes its replica. `self` must be one of the pair.
  int ReplicaPeerOf(uint64_t key, int self) const {
    const int p = PrimaryOf(key);
    return self == p ? FollowerOf(key) : p;
  }

 private:
  struct Point {
    uint64_t hash = 0;
    int server = 0;
  };

  // splitmix64 finalizer: a keyed full-avalanche 64-bit mixer.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // First ring point at or clockwise after hash(key), wrapping.
  size_t Lookup(uint64_t key) const {
    const uint64_t h = Mix(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, uint64_t v) { return p.hash < v; });
    if (it == points_.end()) {
      it = points_.begin();
    }
    return static_cast<size_t>(it - points_.begin());
  }

  int servers_;
  std::vector<Point> points_;
};

}  // namespace snicsim

#endif  // SRC_TOPO_SHARD_H_
