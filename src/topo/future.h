// Forward-looking configurations from the paper's §5 Discussion:
//
//  * BlueField-3: same off-path architecture with a faster RNIC
//    (400 Gbps ConnectX-7), PCIe 5.0, and stronger ARMv8.2+ A78 SoC cores.
//    The paper argues its methodology and models transfer directly; this
//    configuration lets the benches test that claim.
//  * CCI-style SoC cache coherence (ARM CoreLink CCI-550): gives the SoC an
//    LLC that inbound I/O can allocate into, mitigating the Advice-#1 write
//    skew anomaly.
//  * CXL-style host<->SoC window: a load/store path through the switch that
//    bypasses the RNIC entirely, eliminating path ③'s double PCIe1 crossing
//    (DirectCXL-style; no SmartNIC ships this yet).
#ifndef SRC_TOPO_FUTURE_H_
#define SRC_TOPO_FUTURE_H_

#include <functional>

#include "src/topo/server.h"
#include "src/topo/testbed_params.h"

namespace snicsim {

// BlueField-3-class testbed: 400 Gbps CX-7 NIC cores, PCIe 5.0 (512 Gbps)
// internal fabric, 16 A78 SoC cores with dual-channel DDR5-class memory.
inline TestbedParams Bluefield3Testbed() {
  TestbedParams tp = TestbedParams::Default();
  tp.bluefield_nic.name = "bf3";
  tp.bluefield_nic.network_bandwidth = Bandwidth::Gbps(400);
  tp.bluefield_nic.shared_pipeline = Rate::Mpps(312);
  tp.bluefield_nic.dedicated_pipeline = Rate::Mpps(40);
  tp.bluefield_nic.pu_count = 92;
  tp.bluefield_nic.pu_dedicated = 26;
  tp.rnic.name = "cx7";
  tp.rnic.network_bandwidth = Bandwidth::Gbps(400);
  tp.rnic.shared_pipeline = Rate::Mpps(390);
  tp.pcie_bandwidth = Bandwidth::Gbps(512);  // PCIe 5.0 x16
  // Host completers scale with the PCIe generation.
  tp.host_read_completer = Rate::Mpps(137);
  tp.host_write_completer = Rate::Mpps(170);
  // A78 cores: roughly twice the A72's per-message capability, 16 of them.
  tp.soc_cores = 16;
  tp.soc_msg_service = FromNanos(200);
  tp.soc_notify_delay = FromNanos(500);
  tp.soc_memory.channels = 2;
  tp.soc_memory.channel_bandwidth = Bandwidth::GBps(38.4);
  tp.soc_memory.cmd_read_service = FromNanos(6);
  tp.soc_memory.cmd_write_service = FromNanos(6.5);
  return tp;
}

// CCI-style coherent SoC: inbound I/O allocates into an SoC-side LLC, like
// DDIO on the host (the paper's suggested mitigation for Advice #1).
inline TestbedParams WithSocCci(TestbedParams tp) {
  tp.soc_memory.has_llc = true;
  tp.soc_memory.ddio = true;
  tp.soc_memory.llc_bytes = 8 * kMiB;  // BlueField L3-class
  tp.soc_memory.llc_slices = 4;
  tp.soc_memory.llc_service = FromNanos(6);
  tp.soc_memory.llc_latency = FromNanos(40);
  return tp;
}

// A CXL-style direct host<->SoC data window: one load/store transfer through
// PCIe0 + switch + SoC port, no RNIC involvement (so PCIe1 is never
// crossed). Models the paper's "supporting CXL can significantly improve
// PCIe utilization between the host and SoC".
class CxlWindow {
 public:
  explicit CxlWindow(Simulator* sim, BluefieldServer* server)
      : sim_(sim), server_(server) {}

  // Copies `len` bytes host->SoC (or SoC->host when `to_host`): reads the
  // source memory, pushes one burst across the switch at the destination's
  // MTU, commits into the destination memory. `cb` fires at commit.
  void Copy(bool to_host, uint64_t addr, uint32_t len, std::function<void(SimTime)> cb) {
    MemorySubsystem& src = to_host ? server_->soc_memory() : server_->host_memory();
    MemorySubsystem& dst = to_host ? server_->host_memory() : server_->soc_memory();
    const uint32_t dst_mtu =
        to_host ? kHostPcieMtu : kSocPcieMtu;
    PciePath path;
    if (to_host) {
      path.Add(&server_->soc_port_link(), LinkDir::kUp);
      path.Add(&server_->pcie0(), LinkDir::kDown, &server_->pcie_switch());
    } else {
      path.Add(&server_->pcie0(), LinkDir::kUp);
      path.Add(&server_->soc_port_link(), LinkDir::kDown, &server_->pcie_switch());
    }
    const SimTime data_ready = src.Access(sim_->now(), addr, len, /*is_write=*/false);
    path.TransferAt(sim_, data_ready, len, dst_mtu, [this, &dst, addr, len,
                                                     cb = std::move(cb)]() mutable {
      dst.Access(sim_->now(), addr, len, /*is_write=*/true,
                 [this, cb = std::move(cb)] { cb(sim_->now()); });
    });
  }

 private:
  Simulator* sim_;
  BluefieldServer* server_;
};

}  // namespace snicsim

#endif  // SRC_TOPO_FUTURE_H_
