// Rack-scale sharded KV serving: N BlueField servers, each a parallel-sim
// domain running the full per-server stack, fronted by consistent-hash
// sharding with primary+follower replication and shard failover.
//
// Topology. Every domain owns a complete serving machine — Fabric,
// BluefieldServer (SmartNIC model), ServingExecutor on both endpoints,
// AdaptiveGovernor routing host (①) vs SoC (②, misses ride ③),
// ResilienceManager admission control, FaultInjector, TimerWheel — plus
// the *home* side: an AggregateFleet generating this domain's share of the
// rack's user population in O(in-flight) memory, the shard map, and a
// failover view of every other server. Domains exchange request/reply,
// replication, and probe messages through ParallelSimulator::Post with the
// rack link latency as the conservative lookahead.
//
// Sharding & replication. A key's primary is HashRing::PrimaryOf(rank);
// its follower replica is the next distinct server clockwise
// (src/topo/shard.h). Writes served at the primary are replicated: the
// primary's SoC first pulls the value from host DRAM over path ③
// (ExecuteLocalOp, the paper's host↔SoC communication) and then pushes it
// to the follower, which applies it to its SoC memory and acks. Replication
// is asynchronous with bounded retries; the conservation ledger closes over
// it (repl_pushed == repl_acked + repl_failed after drain).
//
// Failover. Home domains keep a per-server view: `promote_after`
// consecutive timeouts/nacks against a server mark it down and re-route its
// shards to the follower — a pure function of the shared ring, so every
// home promotes the same replacement without coordination. While a server
// is down, the home's epoch tick (the governor epoch period) probes it;
// the first probe ack (or any successful data reply) re-homes the shards.
// The measured promotion gap (first evidence -> promote) is bounded by
// ≤ 2 governor epochs in the crash-failover scenario (bench/rack_scale
// --check asserts it).
//
// Membership change & repair (opt-in, DESIGN.md §16). With
// membership.enabled, each domain carries its own copy of the ring plus a
// (member_epoch, live-mask) pair; a down server that stays unresponsive
// for `permloss_epochs` consecutive probe epochs is removed from the ring
// (`permloss=` faults model the loss). Epochs are stamped on every routed
// request: a server ahead of the request bounces it with its newer mask
// (bounce-and-retry, no failure evidence) and a server behind adopts the
// newer mask before serving, so every domain converges to the same ring
// without coordination — the epoch is always the popcount of removed
// servers, a pure function of the mask. For each removed server, the
// surviving replica of each of its key ranges streams those keys to their
// new ring owner over path ③ (the same host-DRAM fetch replication pays),
// paced by a byte-metered token bucket provisioned out of
// SafePath3BudgetGbps and metered as `repair.path3_bytes` against the
// governor's budget gate. The integrity layer (allocated only when the
// plan has `corrupt=` events or the scrubber is on) shadows every stored
// value with an FNV checksum, verifies on every serve, and walks shards at
// a budgeted per-epoch rate, repairing from the surviving replica.
//
// Every field of RackKvResult, including the replay digest, is
// byte-identical at any --jobs x --sim-threads combination (DESIGN.md §12);
// request state is materialized only while in flight, so the peak resident
// client state is O(in-flight), not O(users) — both are asserted by
// bench/rack_scale --check at a 1M-user point.
#ifndef SRC_TOPO_RACK_KV_H_
#define SRC_TOPO_RACK_KV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/fault/plan.h"
#include "src/kvstore/layout.h"
#include "src/resilience/resilience.h"
#include "src/sim/domain.h"
#include "src/topo/testbed_params.h"
#include "src/workload/trace/trace.h"

namespace snicsim {

struct RackKvParams {
  int servers = 4;  // >= 2 (replication needs a distinct follower)
  // Rack-wide closed-loop user population, split across (server, class)
  // buckets by largest remainder; memory stays O(in-flight) regardless.
  uint64_t users = 100000;
  double think_mean_us = 1000.0;  // per-user exponential think time
  double zipf_theta = 0.99;       // key skew, in (0, 1)
  kv::ServingLayout layout;       // keys, SoC-resident span, class table
  std::vector<double> mix = {0.70, 0.25, 0.05};  // value-class weights
  double write_fraction = 0.1;    // writes replicate to the follower
  int replicas = 2;               // 1 disables replication
  uint32_t request_bytes = 64;    // GET/PUT header SEND payload

  SimTime rack_link_latency = FromMicros(2);  // one-way; == the lookahead
  SimTime request_timeout = FromMicros(25);   // home retry clock
  SimTime retry_backoff = FromMicros(5);
  int max_attempts = 8;
  SimTime serve_timeout = FromMicros(20);  // serving-side watchdog
  SimTime repl_timeout = FromMicros(30);
  int repl_max_attempts = 4;

  SimTime governor_epoch = FromMicros(50);  // also the failover probe period
  int promote_after = 2;  // consecutive fails that mark a server down

  SimTime window = FromMicros(400);  // issue horizon; then drain to empty
  uint64_t seed = 1;
  int sim_threads = 1;
  bool materialize_fleet = false;  // O(users) reference mode (tests only)
  TestbedParams testbed;
  fault::FaultPlan faults;
  resilience::ResilienceConfig resil;  // empty() => no manager at all
  std::string metrics_path;  // dump the rack.* catalog when non-empty

  // Membership-change & repair plane (DESIGN.md §16). Default-off: with
  // enabled=false none of the machinery below allocates, no extra events or
  // draws occur, and a run is byte-identical to one on a membership-free
  // build.
  struct MembershipParams {
    bool enabled = false;
    // Permanent-loss detection: a down-marked server still unresponsive on
    // its K-th consecutive probe epoch is removed from the ring (governor
    // epochs double as the probe clock).
    int permloss_epochs = 3;
    // Migration token-bucket rate in Gbps. <= 0 derives a quarter of
    // SafePath3BudgetGbps(testbed): the repair plane's reserved share of
    // the same intra-machine budget the governor polices for serving.
    double migration_gbps = 0.0;
    double migration_burst_bytes = 8192.0;  // bucket depth
    int migrate_batch = 64;      // keys per migration range
    int range_max_attempts = 3;  // per-range push retry budget
    // Anti-entropy scrubber: ranks checksum-verified per governor epoch per
    // server (0 disables the scrubber; allocating the integrity store when
    // > 0). The walk itself is draw-free and event-free — only a detection
    // schedules repair traffic.
    uint64_t scrub_keys_per_epoch = 0;
  };
  MembershipParams membership;

  // Non-stationary load shape replayed through every domain's fleet
  // (src/workload/trace/trace.h): rate via exact peak-rate thinning, churn
  // as a draw-free rank rotation, scan bursts as one plan-gated draw per
  // issue. empty() => no trace machinery; a flat trace is byte-identical
  // to no trace at all.
  trace::TracePlan trace;
};

struct RackKvResult {
  // Home-side request ledger: generated == completed + failed + shed.
  uint64_t generated = 0;
  uint64_t issued = 0;  // dispatch attempts (>= generated; retries add)
  uint64_t completed = 0;
  uint64_t failed = 0;  // retry budget exhausted
  uint64_t shed = 0;    // refused by serving-side admission (terminal)
  uint64_t timeouts = 0;
  uint64_t nacks = 0;          // crash-refused arrivals bounced home
  uint64_t stale_replies = 0;  // replies that lost to a timeout decision
  // Serving side.
  uint64_t crash_refused = 0;
  uint64_t serve_timeouts = 0;  // watchdog-failed serves (crash-eaten)
  uint64_t late_serves = 0;     // serve completions after the watchdog
  uint64_t host_gets = 0;
  uint64_t soc_gets = 0;
  uint64_t soc_hits = 0;
  uint64_t soc_misses = 0;
  uint64_t path3_bytes = 0;
  uint64_t crash_drops = 0;
  uint64_t rewarm_misses = 0;
  // Replication ledger: repl_pushed == repl_acked + repl_failed.
  uint64_t writes = 0;
  uint64_t repl_pushed = 0;
  uint64_t repl_acked = 0;
  uint64_t repl_failed = 0;
  uint64_t repl_applied = 0;  // follower-side applies (>= acked - in-flight)
  uint64_t repl_stale = 0;
  // Governor (summed over domains).
  uint64_t routed_host = 0;
  uint64_t routed_soc = 0;
  uint64_t hol_gated = 0;
  uint64_t budget_spills = 0;
  uint64_t explored = 0;
  uint64_t gov_draws = 0;
  uint64_t breaker_denied = 0;
  // Resilience (summed; zero without a manager).
  uint64_t shed_codel = 0;
  uint64_t shed_bucket = 0;
  uint64_t resil_draws = 0;
  // Failover.
  uint64_t promotions = 0;
  uint64_t rehomed = 0;
  uint64_t probes = 0;
  double max_promote_gap_us = -1.0;  // worst first-evidence -> promote gap
  double first_promote_at_us = -1.0;
  double first_rehome_at_us = -1.0;
  // Fleet / memory instrumentation.
  uint64_t fleet_draws = 0;
  uint64_t peak_inflight = 0;          // rack-wide concurrent in-flight peak
  uint64_t resident_client_bytes = 0;  // fleet state + home op slabs (NOT in
                                       // the fingerprint: sizeof-derived)
  // Parallel core accounting (thread-count invariant).
  uint64_t rounds = 0;
  uint64_t merged = 0;
  uint64_t processed = 0;
  uint64_t digest = 0;
  // Home-measured end-to-end latency.
  int64_t p50_ps = 0;
  int64_t p99_ps = 0;
  int64_t max_ps = 0;
  // Membership & repair plane (all zero unless membership.enabled).
  uint64_t removals = 0;      // ring removals executed, summed over domains
  uint64_t member_epoch = 0;  // highest membership epoch reached
  uint64_t stale_epoch_bounces = 0;  // requests bounced for a stale epoch
  uint64_t retry_replies = 0;  // evidence-free retry replies settled home
  // Repair ledgers: ranges_started == ranges_completed + ranges_failed and
  // keys_migrated == keys_installed after drain.
  uint64_t ranges_started = 0;
  uint64_t ranges_completed = 0;
  uint64_t ranges_failed = 0;
  uint64_t keys_migrated = 0;   // pushes acked back at the migrating survivor
  uint64_t keys_installed = 0;  // installs applied at the new owner
  uint64_t keys_lost = 0;       // both replicas gone before repair could run
  uint64_t migration_waits = 0;      // token-bucket pacer deferrals
  uint64_t repair_path3_bytes = 0;   // migration fetches metered vs budget
  double membership_change_at_us = -1.0;  // first removal executed
  double repair_done_at_us = -1.0;        // last migration range completed
  double last_failed_start_us = -1.0;     // start of the latest failed request
  // Integrity layer (zero without corrupt events or a scrubber). Ledger:
  // corrupted_keys + corrupt_propagated ==
  //     repaired_read + repaired_scrub + repaired_write + corrupt_remaining.
  uint64_t integrity_checks = 0;
  uint64_t corrupted_keys = 0;      // checksum flips injected by corrupt=
  uint64_t corrupt_propagated = 0;  // migrated while the sole copy was bad
  uint64_t read_repair_detected = 0;
  uint64_t scrub_checked = 0;
  uint64_t scrub_detected = 0;
  uint64_t repaired_read = 0;       // healed from the replica (serve path)
  uint64_t repaired_scrub = 0;      // healed from the replica (scrubber)
  uint64_t repaired_write = 0;      // overwritten by a fresh write/install
  uint64_t repair_unavailable = 0;  // replica dead or also corrupt
  uint64_t corrupt_remaining = 0;   // still-bad stored values at drain (dead
                                    // servers keep theirs, so the ledger
                                    // closes even under permloss+corrupt)
  uint64_t undetected_corrupt_serves = 0;  // must stay 0: every serve verifies
  // Trace shaping (zero without a trace plan).
  uint64_t scan_forced = 0;
  // Per-server completed counts (load-concentration dominance checks).
  std::vector<uint64_t> server_completed;
  // Completions bucketed by governor-epoch index of their settle time —
  // the goodput-during-migration series sec_membership's floor check reads.
  std::vector<uint64_t> completed_by_epoch;

  bool Conserved() const {
    return generated == completed + failed + shed &&
           repl_pushed == repl_acked + repl_failed &&
           ranges_started == ranges_completed + ranges_failed &&
           keys_migrated == keys_installed &&
           corrupted_keys + corrupt_propagated ==
               repaired_read + repaired_scrub + repaired_write +
                   corrupt_remaining;
  }

  // Every deterministic field, fixed formatting — the byte-compare unit for
  // the (--jobs, --sim-threads) grid. Excludes resident_client_bytes,
  // which is derived from struct sizes, not simulation state.
  std::string Fingerprint() const;
};

// Fault-domain names of server `d`'s endpoints ("rack.s<d>.host" /
// "rack.s<d>.soc"); plans may address one endpoint, a whole server
// ("rack.s<d>"), or every host/SoC via the legacy leaf alias.
std::string RackKvHostDomain(DomainId d);
std::string RackKvSocDomain(DomainId d);

RackKvResult RunRackKv(const RackKvParams& params);

}  // namespace snicsim

#endif  // SRC_TOPO_RACK_KV_H_
