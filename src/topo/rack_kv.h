// Rack-scale sharded KV serving: N BlueField servers, each a parallel-sim
// domain running the full per-server stack, fronted by consistent-hash
// sharding with primary+follower replication and shard failover.
//
// Topology. Every domain owns a complete serving machine — Fabric,
// BluefieldServer (SmartNIC model), ServingExecutor on both endpoints,
// AdaptiveGovernor routing host (①) vs SoC (②, misses ride ③),
// ResilienceManager admission control, FaultInjector, TimerWheel — plus
// the *home* side: an AggregateFleet generating this domain's share of the
// rack's user population in O(in-flight) memory, the shard map, and a
// failover view of every other server. Domains exchange request/reply,
// replication, and probe messages through ParallelSimulator::Post with the
// rack link latency as the conservative lookahead.
//
// Sharding & replication. A key's primary is HashRing::PrimaryOf(rank);
// its follower replica is the next distinct server clockwise
// (src/topo/shard.h). Writes served at the primary are replicated: the
// primary's SoC first pulls the value from host DRAM over path ③
// (ExecuteLocalOp, the paper's host↔SoC communication) and then pushes it
// to the follower, which applies it to its SoC memory and acks. Replication
// is asynchronous with bounded retries; the conservation ledger closes over
// it (repl_pushed == repl_acked + repl_failed after drain).
//
// Failover. Home domains keep a per-server view: `promote_after`
// consecutive timeouts/nacks against a server mark it down and re-route its
// shards to the follower — a pure function of the shared ring, so every
// home promotes the same replacement without coordination. While a server
// is down, the home's epoch tick (the governor epoch period) probes it;
// the first probe ack (or any successful data reply) re-homes the shards.
// The measured promotion gap (first evidence -> promote) is bounded by
// ≤ 2 governor epochs in the crash-failover scenario (bench/rack_scale
// --check asserts it).
//
// Every field of RackKvResult, including the replay digest, is
// byte-identical at any --jobs x --sim-threads combination (DESIGN.md §12);
// request state is materialized only while in flight, so the peak resident
// client state is O(in-flight), not O(users) — both are asserted by
// bench/rack_scale --check at a 1M-user point.
#ifndef SRC_TOPO_RACK_KV_H_
#define SRC_TOPO_RACK_KV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/fault/plan.h"
#include "src/kvstore/layout.h"
#include "src/resilience/resilience.h"
#include "src/sim/domain.h"
#include "src/topo/testbed_params.h"

namespace snicsim {

struct RackKvParams {
  int servers = 4;  // >= 2 (replication needs a distinct follower)
  // Rack-wide closed-loop user population, split across (server, class)
  // buckets by largest remainder; memory stays O(in-flight) regardless.
  uint64_t users = 100000;
  double think_mean_us = 1000.0;  // per-user exponential think time
  double zipf_theta = 0.99;       // key skew, in (0, 1)
  kv::ServingLayout layout;       // keys, SoC-resident span, class table
  std::vector<double> mix = {0.70, 0.25, 0.05};  // value-class weights
  double write_fraction = 0.1;    // writes replicate to the follower
  int replicas = 2;               // 1 disables replication
  uint32_t request_bytes = 64;    // GET/PUT header SEND payload

  SimTime rack_link_latency = FromMicros(2);  // one-way; == the lookahead
  SimTime request_timeout = FromMicros(25);   // home retry clock
  SimTime retry_backoff = FromMicros(5);
  int max_attempts = 8;
  SimTime serve_timeout = FromMicros(20);  // serving-side watchdog
  SimTime repl_timeout = FromMicros(30);
  int repl_max_attempts = 4;

  SimTime governor_epoch = FromMicros(50);  // also the failover probe period
  int promote_after = 2;  // consecutive fails that mark a server down

  SimTime window = FromMicros(400);  // issue horizon; then drain to empty
  uint64_t seed = 1;
  int sim_threads = 1;
  bool materialize_fleet = false;  // O(users) reference mode (tests only)
  TestbedParams testbed;
  fault::FaultPlan faults;
  resilience::ResilienceConfig resil;  // empty() => no manager at all
  std::string metrics_path;  // dump the rack.* catalog when non-empty
};

struct RackKvResult {
  // Home-side request ledger: generated == completed + failed + shed.
  uint64_t generated = 0;
  uint64_t issued = 0;  // dispatch attempts (>= generated; retries add)
  uint64_t completed = 0;
  uint64_t failed = 0;  // retry budget exhausted
  uint64_t shed = 0;    // refused by serving-side admission (terminal)
  uint64_t timeouts = 0;
  uint64_t nacks = 0;          // crash-refused arrivals bounced home
  uint64_t stale_replies = 0;  // replies that lost to a timeout decision
  // Serving side.
  uint64_t crash_refused = 0;
  uint64_t serve_timeouts = 0;  // watchdog-failed serves (crash-eaten)
  uint64_t late_serves = 0;     // serve completions after the watchdog
  uint64_t host_gets = 0;
  uint64_t soc_gets = 0;
  uint64_t soc_hits = 0;
  uint64_t soc_misses = 0;
  uint64_t path3_bytes = 0;
  uint64_t crash_drops = 0;
  uint64_t rewarm_misses = 0;
  // Replication ledger: repl_pushed == repl_acked + repl_failed.
  uint64_t writes = 0;
  uint64_t repl_pushed = 0;
  uint64_t repl_acked = 0;
  uint64_t repl_failed = 0;
  uint64_t repl_applied = 0;  // follower-side applies (>= acked - in-flight)
  uint64_t repl_stale = 0;
  // Governor (summed over domains).
  uint64_t routed_host = 0;
  uint64_t routed_soc = 0;
  uint64_t hol_gated = 0;
  uint64_t budget_spills = 0;
  uint64_t explored = 0;
  uint64_t gov_draws = 0;
  uint64_t breaker_denied = 0;
  // Resilience (summed; zero without a manager).
  uint64_t shed_codel = 0;
  uint64_t shed_bucket = 0;
  uint64_t resil_draws = 0;
  // Failover.
  uint64_t promotions = 0;
  uint64_t rehomed = 0;
  uint64_t probes = 0;
  double max_promote_gap_us = -1.0;  // worst first-evidence -> promote gap
  double first_promote_at_us = -1.0;
  double first_rehome_at_us = -1.0;
  // Fleet / memory instrumentation.
  uint64_t fleet_draws = 0;
  uint64_t peak_inflight = 0;          // rack-wide concurrent in-flight peak
  uint64_t resident_client_bytes = 0;  // fleet state + home op slabs (NOT in
                                       // the fingerprint: sizeof-derived)
  // Parallel core accounting (thread-count invariant).
  uint64_t rounds = 0;
  uint64_t merged = 0;
  uint64_t processed = 0;
  uint64_t digest = 0;
  // Home-measured end-to-end latency.
  int64_t p50_ps = 0;
  int64_t p99_ps = 0;
  int64_t max_ps = 0;
  // Per-server completed counts (load-concentration dominance checks).
  std::vector<uint64_t> server_completed;

  bool Conserved() const {
    return generated == completed + failed + shed &&
           repl_pushed == repl_acked + repl_failed;
  }

  // Every deterministic field, fixed formatting — the byte-compare unit for
  // the (--jobs, --sim-threads) grid. Excludes resident_client_bytes,
  // which is derived from struct sizes, not simulation state.
  std::string Fingerprint() const;
};

// Fault-domain names of server `d`'s endpoints ("rack.s<d>.host" /
// "rack.s<d>.soc"); plans may address one endpoint, a whole server
// ("rack.s<d>"), or every host/SoC via the legacy leaf alias.
std::string RackKvHostDomain(DomainId d);
std::string RackKvSocDomain(DomainId d);

RackKvResult RunRackKv(const RackKvParams& params);

}  // namespace snicsim

#endif  // SRC_TOPO_RACK_KV_H_
