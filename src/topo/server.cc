#include "src/topo/server.h"

namespace snicsim {

RnicServer::RnicServer(Simulator* sim, Fabric* fabric, const TestbedParams& tp,
                       const std::string& name)
    : host_mem_(sim, name + ".hostmem", tp.host_memory),
      pcie0_(sim, name + ".pcie0", tp.pcie_bandwidth, tp.pcie0_propagation),
      nic_(sim, tp.rnic),
      host_cpu_(sim, name + ".hostcpu", tp.host_cores, tp.host_msg_service_rnic,
                tp.host_notify_delay, "host") {
  EndpointParams ep;
  ep.name = name + ".host";
  ep.fault_domain = "host";
  ep.pcie_mtu = tp.host_pcie_mtu;
  ep.read_completer = tp.host_read_completer;
  ep.write_completer = tp.host_write_completer;
  PciePath to_mem;
  to_mem.Add(&pcie0_, LinkDir::kDown);
  host_ep_ = nic_.AddEndpoint(ep, to_mem, &host_mem_);
  nic_.SetSendHandler(host_ep_, host_cpu_.Handler());
  port_ = fabric->AddPort(name + ".port", tp.rnic.network_bandwidth);
}

BluefieldServer::BluefieldServer(Simulator* sim, Fabric* fabric, const TestbedParams& tp,
                                 const std::string& name)
    : host_mem_(sim, name + ".hostmem", tp.host_memory),
      soc_mem_(sim, name + ".socmem", tp.soc_memory),
      switch_(name + ".psw", tp.switch_forward),
      pcie0_(sim, name + ".pcie0", tp.pcie_bandwidth, tp.pcie0_propagation),
      pcie1_(sim, name + ".pcie1", tp.pcie_bandwidth, tp.pcie1_propagation),
      soc_port_(sim, name + ".socport", tp.pcie_bandwidth, tp.soc_port_propagation),
      nic_(sim, tp.bluefield_nic),
      host_cpu_(sim, name + ".hostcpu", tp.host_cores, tp.host_msg_service_snic,
                tp.host_notify_delay, "host"),
      soc_cpu_(sim, name + ".soccpu", tp.soc_cores, tp.soc_msg_service,
               tp.soc_notify_delay, "soc") {
  // Host endpoint: NIC cores -> PCIe1 -> switch -> PCIe0 -> host memory.
  {
    EndpointParams ep;
    ep.name = name + ".host";
    ep.fault_domain = "host";
    ep.pcie_mtu = tp.host_pcie_mtu;
    ep.read_completer = tp.host_read_completer;
    ep.write_completer = tp.host_write_completer;
    PciePath to_mem;
    to_mem.Add(&pcie1_, LinkDir::kUp);
    to_mem.Add(&pcie0_, LinkDir::kDown, &switch_);
    host_ep_ = nic_.AddEndpoint(ep, to_mem, &host_mem_);
    nic_.SetSendHandler(host_ep_, host_cpu_.Handler());
  }
  // SoC endpoint: NIC cores -> PCIe1 -> switch -> direct SoC port. The SoC
  // memory command rates are the throughput limiter, so no additional
  // completer servers are configured (paper §3.2).
  {
    EndpointParams ep;
    ep.name = name + ".soc";
    ep.fault_domain = "soc";
    ep.pcie_mtu = tp.soc_pcie_mtu;
    PciePath to_mem;
    to_mem.Add(&pcie1_, LinkDir::kUp);
    to_mem.Add(&soc_port_, LinkDir::kDown, &switch_);
    soc_ep_ = nic_.AddEndpoint(ep, to_mem, &soc_mem_);
    nic_.SetSendHandler(soc_ep_, soc_cpu_.Handler());
  }
  port_ = fabric->AddPort(name + ".port", tp.bluefield_nic.network_bandwidth);
}

void RnicServer::RegisterMetrics(MetricsRegistry* reg) {
  host_mem_.RegisterMetrics(reg);
  pcie0_.RegisterMetrics(reg);
  port_->RegisterMetrics(reg);
  nic_.RegisterMetrics(reg);
  host_cpu_.RegisterMetrics(reg);
}

void BluefieldServer::RegisterMetrics(MetricsRegistry* reg) {
  host_mem_.RegisterMetrics(reg);
  soc_mem_.RegisterMetrics(reg);
  switch_.RegisterMetrics(reg);
  pcie0_.RegisterMetrics(reg);
  pcie1_.RegisterMetrics(reg);
  soc_port_.RegisterMetrics(reg);
  port_->RegisterMetrics(reg);
  nic_.RegisterMetrics(reg);
  host_cpu_.RegisterMetrics(reg);
  soc_cpu_.RegisterMetrics(reg);
}

}  // namespace snicsim
