// Rack-scale multi-domain workload for the parallel DES core.
//
// The paper's testbed tops out at one switch and a dozen machines; the
// cluster-scale direction (ROADMAP item 1, and the DPU deployment study in
// PAPERS.md) needs racks of servers exchanging RPCs. RunRack builds exactly
// the shape ParallelSimulator is for: D server domains, each with its own
// core pool, RNG stream, timer wheel, and (optionally) fault injector,
// exchanging closed-loop echo RPCs over fabric links whose one-way latency
// is the conservative lookahead.
//
// Every number in RackResult — counters, latency percentiles, the replay
// digest — is byte-identical at any sim_threads count; that is asserted by
// tests/sim/parallel_sim_test.cc and is part of the determinism contract
// (DESIGN.md §12). Fault plans reuse the standard grammar: link names are
// "rack.l<src>.<dst>" (drop/flap/degrade draws happen in the source
// domain), and each server has an addressable fault-domain name —
// "rack.s<i>.host" for even servers, "rack.s<i>.soc" for odd ones. The
// injector's hierarchical DomainMatches (src/fault/plan.h) keeps the old
// spellings working as aliases: "crash=soc:10:60:20" still kills every odd
// server for that window, while "crash=rack.s3.soc:10:60:20" kills exactly
// server 3 and "crash=rack.s3:..." would cover both endpoint domains of a
// server that runs a real host+SoC pair (src/topo/rack_kv.h).
#ifndef SRC_TOPO_RACK_H_
#define SRC_TOPO_RACK_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/fault/plan.h"
#include "src/sim/domain.h"

namespace snicsim {

struct RackParams {
  int servers = 4;             // one domain per server; >= 2
  int clients_per_server = 8;  // closed-loop requesters per home domain
  int cores_per_server = 2;    // MultiServer width on the serving side
  int requests_per_client = 32;
  int burst = 8;          // local fan-out events per served request
  int max_attempts = 64;  // per-op send attempts before giving up
  SimTime link_latency = FromNanos(1500);  // one-way; == the lookahead
  SimTime service = FromNanos(600);        // base; jitter adds [0, service)
  SimTime retry_backoff = FromMicros(4);
  uint64_t seed = 1;
  int sim_threads = 1;  // <= 1 serial; ParallelSimulator workers otherwise
  fault::FaultPlan faults;
};

struct RackResult {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;         // ops that exhausted max_attempts
  uint64_t dropped = 0;        // sends killed by the fault layer
  uint64_t retried = 0;        // backoff rearms (drops + nacks)
  uint64_t crash_refused = 0;  // arrivals at a crashed server
  // Parallel-core accounting (thread-count invariant like everything else).
  uint64_t rounds = 0;
  uint64_t merged = 0;
  uint64_t processed = 0;
  // Merge digest folded with every per-domain counter: one replayable
  // word, the rack analogue of ServingResult::Fingerprint.
  uint64_t digest = 0;
  int64_t p50_ps = 0;
  int64_t p99_ps = 0;
  int64_t max_ps = 0;

  // Every field above, fixed formatting — the byte-compare unit for the
  // --sim-threads determinism tests.
  std::string Fingerprint() const;
};

// Fault-domain name server `d` answers crash/stall queries with:
// "rack.s<d>.host" (even d) / "rack.s<d>.soc" (odd d). Plans may address
// one server by full name or every host/SoC by the legacy leaf alias.
std::string RackFaultDomain(DomainId d);
// Fault-plan link name of the src -> dst fabric edge.
std::string RackLinkName(DomainId src, DomainId dst);

RackResult RunRack(const RackParams& params);

}  // namespace snicsim

#endif  // SRC_TOPO_RACK_H_
