// Server-machine compositions: a SRV host with either a ConnectX-6 RNIC or
// a BlueField-2 SmartNIC (paper Table 1/2, Fig. 2).
//
// Both expose the same surface to workloads — a network port, one or two
// NicEndpoints, and per-endpoint CPU echo service — so benches can swap
// RNIC ↔ SNIC with one flag exactly like the paper swaps cards in the same
// slot.
#ifndef SRC_TOPO_SERVER_H_
#define SRC_TOPO_SERVER_H_

#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/fault/injector.h"
#include "src/mem/memory.h"
#include "src/nic/engine.h"
#include "src/pcie/link.h"
#include "src/pcie/path.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/topo/fabric.h"
#include "src/topo/testbed_params.h"

namespace snicsim {

// CPU pool answering two-sided messages on one endpoint (the echo server of
// the paper's evaluation setup, §3).
class EchoCpu {
 public:
  // `notify_delay` is the ring-doorbell-to-dispatch latency before a core
  // picks the message up: near zero on a busy-polling host, substantial on
  // the wimpy ARM SoC (paper §3.2: SoC SEND/RECV latency is 21-30% higher).
  // It delays every message but does not consume core service time, so peak
  // throughput stays cores / per_message.
  // `fault_domain` names this pool for compute stall windows ("host"/"soc");
  // a stalled pool defers dispatch without consuming core time.
  EchoCpu(Simulator* sim, const std::string& name, int cores, SimTime per_message,
          SimTime notify_delay = 0, std::string fault_domain = "host")
      : sim_(sim), pool_(sim, name, cores), per_message_(per_message),
        notify_delay_(notify_delay), fault_domain_(std::move(fault_domain)) {}

  // Returns a SendHandler that serves each message on the earliest-free
  // core and echoes a same-size reply.
  SendHandler Handler() {
    return [this](uint64_t /*hdr*/, uint32_t len, ReplyCallback reply) {
      SimTime dispatch = sim_->now() + notify_delay_;
      if (fault::FaultInjector* const inj = sim_->faults(); inj != nullptr) {
        const SimTime stall = inj->StallDelay(fault_domain_, sim_->now());
        if (stall > 0) {
          if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
            tr->Span(pool_.name(), "stall", sim_->now(), sim_->now() + stall, 0);
          }
          dispatch += stall;
        }
      }
      const SimTime done = pool_.EnqueueAt(dispatch, per_message_);
      if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
        // SendHandler carries no request id, so CPU echo work traces as
        // req 0 on the pool's lane.
        tr->Span(pool_.name(), "echo", sim_->now(), done, 0);
      }
      sim_->At(done, [this, done, len, reply = std::move(reply)] {
        ++replies_;
        reply(done, len);
      });
    };
  }

  MultiServer& pool() { return pool_; }
  uint64_t replies() const { return replies_; }

  void RegisterMetrics(MetricsRegistry* reg) {
    reg->Register(pool_.name(), "replies", "count", "two-sided messages echoed",
                  [this] { return static_cast<double>(replies_); });
    reg->Register(pool_.name(), "busy_us", "us", "total core-busy time of the pool",
                  [this] { return ToMicros(pool_.busy_time()); });
  }

 private:
  Simulator* sim_;
  MultiServer pool_;
  SimTime per_message_;
  SimTime notify_delay_;
  std::string fault_domain_;
  uint64_t replies_ = 0;
};

// A SRV machine with a plain ConnectX-6 (the paper's RNIC baseline).
class RnicServer {
 public:
  RnicServer(Simulator* sim, Fabric* fabric, const TestbedParams& tp,
             const std::string& name = "rnic_srv");

  RnicServer(const RnicServer&) = delete;
  RnicServer& operator=(const RnicServer&) = delete;

  NicEngine& nic() { return nic_; }
  NicEndpoint* host_ep() { return host_ep_; }
  PcieLink* port() { return port_; }
  MemorySubsystem& host_memory() { return host_mem_; }
  PcieLink& pcie0() { return pcie0_; }
  EchoCpu& host_cpu() { return host_cpu_; }

  // Registers every component's counters (memory, links, NIC, CPU pool).
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  MemorySubsystem host_mem_;
  PcieLink pcie0_;
  NicEngine nic_;
  NicEndpoint* host_ep_;
  PcieLink* port_;
  EchoCpu host_cpu_;
};

// A SRV machine with a BlueField-2 (Fig. 2(c)): NIC cores —PCIe1— switch,
// switch —PCIe0— host, switch —direct port— SoC.
class BluefieldServer {
 public:
  BluefieldServer(Simulator* sim, Fabric* fabric, const TestbedParams& tp,
                  const std::string& name = "bf_srv");

  BluefieldServer(const BluefieldServer&) = delete;
  BluefieldServer& operator=(const BluefieldServer&) = delete;

  NicEngine& nic() { return nic_; }
  NicEndpoint* host_ep() { return host_ep_; }
  NicEndpoint* soc_ep() { return soc_ep_; }
  PcieLink* port() { return port_; }
  MemorySubsystem& host_memory() { return host_mem_; }
  MemorySubsystem& soc_memory() { return soc_mem_; }
  PcieLink& pcie0() { return pcie0_; }
  PcieLink& pcie1() { return pcie1_; }
  PcieLink& soc_port_link() { return soc_port_; }
  PcieSwitch& pcie_switch() { return switch_; }
  EchoCpu& host_cpu() { return host_cpu_; }
  EchoCpu& soc_cpu() { return soc_cpu_; }

  // Registers every component's counters (memories, links, switch, NIC,
  // CPU pools).
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  MemorySubsystem host_mem_;
  MemorySubsystem soc_mem_;
  PcieSwitch switch_;
  PcieLink pcie0_;
  PcieLink pcie1_;
  PcieLink soc_port_;
  NicEngine nic_;
  NicEndpoint* host_ep_;
  NicEndpoint* soc_ep_;
  PcieLink* port_;
  EchoCpu host_cpu_;
  EchoCpu soc_cpu_;
};

}  // namespace snicsim

#endif  // SRC_TOPO_SERVER_H_
