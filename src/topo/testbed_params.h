// Calibrated parameters of the paper's testbed (Table 1, Table 2).
//
// One TestbedParams value describes the whole rack: the BlueField-2
// internals, the RNIC baseline, host/SoC memory and CPUs, and the client
// machines. The defaults are calibrated so that the simulated figures land
// in the paper's bands (DESIGN.md §4); tests/topo/calibration_test.cc pins
// them.
#ifndef SRC_TOPO_TESTBED_PARAMS_H_
#define SRC_TOPO_TESTBED_PARAMS_H_

#include "src/common/units.h"
#include "src/mem/memory.h"
#include "src/nic/params.h"
#include "src/pcie/tlp.h"

namespace snicsim {

struct TestbedParams {
  // NIC ASICs.
  NicParams bluefield_nic = NicParams::Bluefield2NicCores();
  NicParams rnic = NicParams::ConnectX6();

  // Internal PCIe fabric of BlueField-2 (all PCIe 4.0 ×16 class).
  Bandwidth pcie_bandwidth = Bandwidth::Gbps(256);
  SimTime pcie0_propagation = FromNanos(200);  // switch <-> host root port
  SimTime pcie1_propagation = FromNanos(60);   // NIC cores <-> switch
  SimTime soc_port_propagation = FromNanos(20);  // switch <-> SoC (direct)
  SimTime switch_forward = FromNanos(150);       // per traversal (paper: 150–200)

  // PCIe MTUs (paper Table 3).
  uint32_t host_pcie_mtu = kHostPcieMtu;  // 512 B
  uint32_t soc_pcie_mtu = kSocPcieMtu;    // 128 B

  // Host root-port completer service rates (inbound DMA).
  Rate host_read_completer = Rate::Mpps(68.5);
  Rate host_write_completer = Rate::Mpps(85);

  // Memory systems.
  MemoryParams host_memory = MemoryParams::Host();
  MemoryParams soc_memory = MemoryParams::Soc();

  // Two-sided echo service (per-message CPU cost includes poll + handle +
  // posting the reply; posting is pricier through the SmartNIC switch).
  int host_cores = 24;
  SimTime host_msg_service_rnic = FromNanos(276);  // 24 cores -> ~87 M msg/s
  SimTime host_msg_service_snic = FromNanos(326);  // extra MMIO through switch
  int soc_cores = 8;
  SimTime soc_msg_service = FromNanos(350);        // wimpy ARM cores
  SimTime host_notify_delay = FromNanos(0);        // busy-polling host
  SimTime soc_notify_delay = FromNanos(900);       // slow ARM dispatch

  // Fabric.
  SimTime network_link_propagation = FromNanos(150);
  SimTime network_switch_forward = FromNanos(150);
  Bandwidth client_port_bandwidth = Bandwidth::Gbps(100);  // ConnectX-4

  static TestbedParams Default() { return TestbedParams{}; }
};

}  // namespace snicsim

#endif  // SRC_TOPO_TESTBED_PARAMS_H_
