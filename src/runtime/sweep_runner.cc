#include "src/runtime/sweep_runner.h"

#include "src/common/log.h"

namespace snicsim::runtime {

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int JobsFlag(Flags& flags) {
  return static_cast<int>(flags.GetInt(
      "jobs", DefaultJobs(),
      "experiments to run concurrently (sweep points are independent; "
      "output is byte-identical for any value)"));
}

int SimThreadsFlag(Flags& flags) {
  const int n = static_cast<int>(flags.GetInt(
      "sim-threads", 1,
      "event cores per simulation (multi-domain sims shard per-server "
      "domains across them; output is byte-identical for any value)"));
  return n < 1 ? 1 : n;
}

SweepRunner::SweepRunner(int jobs) {
  const int n = jobs <= 0 ? DefaultJobs() : jobs;
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void SweepRunner::Submit(Task task) {
  SNIC_CHECK(task != nullptr);
  size_t victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
    victim = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    queues_[victim]->tasks.push_back(std::move(task));
  }
  {
    // The claim token is published only after the task is visible in its
    // deque, so a woken worker is guaranteed to find work somewhere.
    std::lock_guard<std::mutex> lock(mu_);
    ++unclaimed_;
  }
  work_cv_.notify_one();
}

void SweepRunner::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void SweepRunner::WorkerLoop(size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return unclaimed_ > 0 || stop_; });
    if (unclaimed_ == 0) {
      if (stop_) {
        return;
      }
      continue;
    }
    --unclaimed_;
    lock.unlock();
    RunOne(self);
    lock.lock();
  }
}

void SweepRunner::RunOne(size_t self) {
  // Own deque first (front: submission order), then steal from the back of
  // the peers. The claim token taken in WorkerLoop guarantees a task exists
  // in some deque for the whole scan, but not that one linear pass sees it:
  // a concurrent worker can pop the task this token pointed at while a
  // fresh Submit (with its own token) lands in a deque already scanned. The
  // token count never exceeds the task count, so rescanning must succeed.
  Task task;
  bool found = false;
  const size_t n = queues_.size();
  while (!found) {
    for (size_t i = 0; i < n && !found; ++i) {
      WorkerQueue& q = *queues_[(self + i) % n];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        if (i == 0) {
          task = std::move(q.tasks.front());
          q.tasks.pop_front();
        } else {
          task = std::move(q.tasks.back());
          q.tasks.pop_back();
        }
        found = true;
      }
    }
    if (!found) {
      std::this_thread::yield();
    }
  }
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_ == nullptr) {
      error_ = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    if (pending_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace snicsim::runtime
