// Parallel execution of independent sweep points.
//
// Every figure bench runs a grid of fully independent experiments — one
// fresh Simulator per (payload, path, verb) point — strictly serially. The
// grid is embarrassingly parallel, so SweepRunner farms the points out to a
// work-stealing thread pool while the caller consumes the results in
// submission order. Determinism is preserved by construction: each point
// owns its Simulator and RNGs, results land in a slot fixed at submission
// time, and all printing happens after Wait() — so `--jobs=N` output is
// byte-identical to the serial run for any N.
#ifndef SRC_RUNTIME_SWEEP_RUNNER_H_
#define SRC_RUNTIME_SWEEP_RUNNER_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/flags.h"

namespace snicsim::runtime {

// Number of workers used when --jobs is not given: hardware concurrency,
// with a floor of 1.
int DefaultJobs();

// Registers the shared --jobs flag every bench binary accepts. Call before
// flags.Finish().
int JobsFlag(Flags& flags);

// Registers the shared --sim-threads flag: event cores *inside* one
// simulation (multi-domain sims shard per-server domains across them,
// DESIGN.md §12), as opposed to --jobs which parallelizes across whole
// experiments. Output is byte-identical for any value; single-domain
// experiments accept it as a no-op so invocations compose uniformly.
// Total worker threads ≈ jobs × sim_threads — keep the product near the
// core count. Values below 1 clamp to 1.
int SimThreadsFlag(Flags& flags);

// A work-stealing pool for coarse-grained tasks (whole experiments).
//
// Submissions are dealt round-robin onto per-worker deques; a worker pops
// its own deque from the front and, when empty, steals from the back of its
// peers. Tasks must be independent of one another: a task may block on work
// done by another task only if jobs() tasks can make progress concurrently.
class SweepRunner {
 public:
  using Task = std::function<void()>;

  // jobs <= 0 selects DefaultJobs().
  explicit SweepRunner(int jobs = 0);
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;
  // Joins the workers; pending tasks are drained first.
  ~SweepRunner();

  int jobs() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Thread-safe; `task` must be non-empty.
  void Submit(Task task);

  // Blocks until every submitted task has finished. If any task threw, the
  // first exception observed is rethrown here (the remaining tasks still
  // run to completion).
  void Wait();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t self);
  void RunOne(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards the counters below and error_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t next_queue_ = 0;  // round-robin submission cursor
  size_t unclaimed_ = 0;   // tasks pushed but not yet picked up by a worker
  size_t pending_ = 0;     // tasks submitted but not yet finished
  bool stop_ = false;
  std::exception_ptr error_;
};

// Runs `points` on a SweepRunner and returns their results in submission
// order — the parallel drop-in for a serial `for (p : points) out.push_back
// (p())` loop.
template <typename R>
std::vector<R> RunSweep(int jobs, std::vector<std::function<R()>> points) {
  static_assert(!std::is_same_v<R, bool>,
                "std::vector<bool> elements alias; use int results instead");
  std::vector<R> results(points.size());
  SweepRunner runner(jobs);
  for (size_t i = 0; i < points.size(); ++i) {
    runner.Submit([&results, &points, i] { results[i] = points[i](); });
  }
  runner.Wait();
  return results;
}

// Order-preserving sweep builder for the bench mains: Add() every
// experiment in the exact order the table-building code will consume it,
// Run() once, then read the results sequentially (or via the index Add
// returned). Keeping submission order == consumption order is what makes
// the parallel table byte-identical to the serial one.
template <typename R>
class SweepQueue {
 public:
  explicit SweepQueue(int jobs) : jobs_(jobs) {}

  size_t Add(std::function<R()> point) {
    points_.push_back(std::move(point));
    return points_.size() - 1;
  }

  std::vector<R> Run() { return RunSweep<R>(jobs_, std::move(points_)); }

 private:
  int jobs_;
  std::vector<std::function<R()>> points_;
};

}  // namespace snicsim::runtime

#endif  // SRC_RUNTIME_SWEEP_RUNNER_H_
