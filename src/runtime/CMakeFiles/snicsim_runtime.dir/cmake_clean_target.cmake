file(REMOVE_RECURSE
  "libsnicsim_runtime.a"
)
