file(REMOVE_RECURSE
  "CMakeFiles/snicsim_runtime.dir/sweep_runner.cc.o"
  "CMakeFiles/snicsim_runtime.dir/sweep_runner.cc.o.d"
  "libsnicsim_runtime.a"
  "libsnicsim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
