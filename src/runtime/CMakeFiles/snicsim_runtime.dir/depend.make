# Empty dependencies file for snicsim_runtime.
# This may be replaced when dependencies are built.
