#include "src/nic/engine.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/obs/trace.h"
#include "src/pcie/tlp.h"

namespace snicsim {

NicEngine::NicEngine(Simulator* sim, NicParams params)
    : sim_(sim),
      params_(std::move(params)),
      frontend_(sim, params_.name + ".fe", params_.shared_pipeline,
                params_.dedicated_pipeline),
      pus_(sim, params_.name + ".pu", params_.pu_count) {}

NicEndpoint* NicEngine::AddEndpoint(const EndpointParams& ep, PciePath nic_to_mem,
                                    MemorySubsystem* memory) {
  auto endpoint =
      std::make_unique<NicEndpoint>(sim_, params_, ep, std::move(nic_to_mem), memory);
  endpoint->fe_id = frontend_.AddEndpoint(ep.name);
  endpoints_.push_back(std::move(endpoint));
  dedicated_pus_.push_back(
      params_.pu_dedicated > 0
          ? std::make_unique<TokenPool>(sim_, params_.name + ".pu." + ep.name,
                                        params_.pu_dedicated)
          : nullptr);
  send_handlers_.emplace_back();
  return endpoints_.back().get();
}

void NicEngine::SetSendHandler(NicEndpoint* ep, SendHandler handler) {
  SNIC_CHECK_GE(ep->fe_id, 0);
  SNIC_CHECK_LT(static_cast<size_t>(ep->fe_id), send_handlers_.size());
  send_handlers_[static_cast<size_t>(ep->fe_id)] = std::move(handler);
}

void NicEngine::AcquirePu(NicEndpoint* ep, SmallFunction<void(Simulator::Callback)> cb) {
  TokenPool* dedicated = dedicated_pus_[static_cast<size_t>(ep->fe_id)].get();
  if (dedicated != nullptr && dedicated->TryAcquire()) {
    sim_->In(0, [dedicated, cb = std::move(cb)] {
      cb([dedicated] { dedicated->Release(); });
    });
    return;
  }
  pus_.Acquire([this, cb = std::move(cb)] {
    cb([this] { pus_.Release(); });
  });
}

void NicEngine::SendResponse(NicEndpoint* ep, uint64_t bytes, SimTime ready, PciePath path,
                             ResponseCallback done, uint64_t req_id) {
  // The first response frame's pipeline slot is accounted in the request's
  // fe_units; only additional frames of a multi-frame response cost extra.
  const uint64_t frames = bytes == 0 ? 1 : CeilDiv(bytes, params_.network_mtu);
  SimTime t = ready;
  if (frames > 1) {
    t = frontend_.Process(ready, ep->fe_id, static_cast<double>(frames - 1));
    if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
      tr->Span(params_.name + ".fe", "respond", ready, t, req_id);
    }
  }
  if (bytes == 0) {
    path.TransferControlAt(sim_, t, [this, done = std::move(done)] { done(sim_->now()); },
                           req_id);
  } else {
    path.TransferAt(sim_, t, bytes, params_.network_mtu,
                    [this, done = std::move(done)] { done(sim_->now()); }, req_id);
  }
}

void NicEngine::HandleRequest(NicEndpoint* ep, Verb verb, uint64_t addr, uint32_t len,
                              double fe_units, PciePath response_path,
                              ResponseCallback done, uint64_t req_id) {
  ++requests_served_;
  const SimTime parsed = frontend_.Process(sim_->now(), ep->fe_id, fe_units);
  if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
    tr->Span(params_.name + ".fe", "parse", sim_->now(), parsed, req_id);
  }
  sim_->At(parsed, [this, ep, verb, addr, len, req_id,
                    response_path = std::move(response_path),
                    done = std::move(done)]() mutable {
    AcquirePu(ep, [this, ep, verb, addr, len, req_id,
                   response_path = std::move(response_path),
                   done = std::move(done)](Simulator::Callback release) mutable {
      switch (verb) {
        case Verb::kRead: {
          if (len == 0) {
            // Zero-byte ops never reach PCIe (paper §4's microbenchmark).
            SendResponse(ep, 0, sim_->now(), std::move(response_path), std::move(done),
                         req_id);
            release();
            return;
          }
          ep->DmaRead(addr, len, [this, ep, len, req_id, release = std::move(release),
                                  response_path = std::move(response_path),
                                  done = std::move(done)](SimTime data_at_nic) mutable {
            SendResponse(ep, len, data_at_nic, std::move(response_path), std::move(done),
                         req_id);
            sim_->At(data_at_nic + params_.read_pipeline_overhead, std::move(release));
          }, req_id);
          return;
        }
        case Verb::kWrite: {
          if (len == 0) {
            SendResponse(ep, 0, sim_->now(), std::move(response_path), std::move(done),
                         req_id);
            release();
            return;
          }
          ep->DmaWrite(addr, len, [this, ep, req_id, release = std::move(release),
                                   response_path = std::move(response_path),
                                   done = std::move(done)](SimTime posted) mutable {
            // The ack departs as soon as the burst is accepted; the write
            // commits to memory asynchronously (Fig. 3).
            SendResponse(ep, 0, posted, std::move(response_path), std::move(done), req_id);
            sim_->At(posted + params_.write_pipeline_overhead, std::move(release));
          }, /*single_descriptor=*/false, req_id);
          return;
        }
        case Verb::kSend: {
          // Deliver payload + CQE into the receive ring, then hand off to
          // the endpoint CPU.
          const uint64_t ring_bytes = static_cast<uint64_t>(len) + params_.cqe_bytes;
          ep->DmaWrite(addr, ring_bytes, [this, ep, addr, len, req_id,
                                          release = std::move(release),
                                          response_path = std::move(response_path),
                                          done = std::move(done)](SimTime posted) mutable {
            sim_->At(posted + params_.write_pipeline_overhead, std::move(release));
            SendHandler& handler = send_handlers_[static_cast<size_t>(ep->fe_id)];
            SNIC_CHECK(handler != nullptr);
            handler(addr, len, [this, ep, req_id, response_path = std::move(response_path),
                          done = std::move(done)](SimTime ready, uint32_t reply_len) mutable {
              const SimTime t = frontend_.Process(ready, ep->fe_id, 1.0);
              if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
                tr->Span(params_.name + ".fe", "reply_post", ready, t, req_id);
              }
              if (reply_len <= params_.max_inline_bytes) {
                // Small replies are posted inline: the CPU pushed WQE + data
                // through the doorbell MMIO (cost already in the handler's
                // per-message service), so no gather DMA is needed.
                sim_->At(t, [this, ep, reply_len, req_id,
                             response_path = std::move(response_path),
                             done = std::move(done)]() mutable {
                  SendResponse(ep, std::max<uint32_t>(reply_len, 1), sim_->now(),
                               std::move(response_path), std::move(done), req_id);
                });
                return;
              }
              // Larger replies fetch their payload from the endpoint memory
              // (WQE + data gather) before hitting the wire.
              sim_->At(t, [this, ep, reply_len, req_id,
                           response_path = std::move(response_path),
                           done = std::move(done)]() mutable {
                ep->DmaRead(0x7ef0'0000 + params_.wqe_bytes, reply_len + params_.wqe_bytes,
                            [this, ep, reply_len, req_id,
                             response_path = std::move(response_path),
                             done = std::move(done)](SimTime data) mutable {
                  SendResponse(ep, std::max<uint32_t>(reply_len, 1), data,
                               std::move(response_path), std::move(done), req_id);
                }, req_id);
              });
            });
          }, /*single_descriptor=*/false, req_id);
          return;
        }
      }
    });
  });
}

void NicEngine::FetchWqes(NicEndpoint* src, uint64_t addr, int count, DmaCallback cb,
                          uint64_t req_id) {
  SNIC_CHECK_GT(count, 0);
  // The chain fetch is a real engine job: it occupies a processing-unit
  // context for the DMA round trip against the requester's memory. On the
  // host side of path ③ this is what makes small-batch doorbell batching a
  // net loss (paper Fig. 10(b)): the fetch steals PU time that BlueFlame
  // posts (WQE pushed with the doorbell) do not.
  AcquirePu(src, [this, src, addr, count, req_id, cb = std::move(cb)](
                     Simulator::Callback release) mutable {
    src->DmaRead(addr, static_cast<uint64_t>(count) * params_.wqe_bytes,
                 [this, release = std::move(release), cb = std::move(cb)](SimTime done) mutable {
                   cb(done);
                   sim_->At(done + params_.read_pipeline_overhead, std::move(release));
                 }, req_id);
  });
}

void NicEngine::ExecuteLocalOp(NicEndpoint* src, NicEndpoint* dst, Verb verb, uint64_t addr,
                               uint32_t len, SmallFunction<void(SimTime)> done,
                               uint64_t req_id) {
  ++requests_served_;
  // A stalled requester CPU stops polling its CQ: while a stall window
  // covers src's fault domain, the completion becomes visible only when the
  // window ends. Wrapped only with an injector attached, so fault-free runs
  // schedule no extra events.
  if (sim_->faults() != nullptr) {
    done = [this, src, req_id, inner = std::move(done)](SimTime posted) mutable {
      fault::FaultInjector* const inj = sim_->faults();
      const SimTime stall =
          inj != nullptr ? inj->StallDelay(src->params().fault_domain, posted) : 0;
      if (stall == 0) {
        inner(posted);
        return;
      }
      const SimTime visible = std::max(sim_->now(), posted + stall);
      if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
        tr->Span(src->params().name, "stall", posted, visible, req_id);
      }
      sim_->At(visible, [visible, inner = std::move(inner)]() mutable { inner(visible); });
    };
  }
  const double units =
      static_cast<double>(std::max<uint64_t>(1, CeilDiv(len, params_.max_read_request)));
  const SimTime parsed = frontend_.Process(sim_->now(), dst->fe_id, units);
  if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
    tr->Span(params_.name + ".fe", "parse", sim_->now(), parsed, req_id);
  }
  // Completions land in the requester's CQ ring: successive CQEs stride
  // through a 512 KB ring, so they spread over DRAM rows instead of
  // hammering one bank.
  const uint64_t cqe_addr = 0x7f00'0000 + (cqe_seq_++ % 4096) * 128;
  sim_->At(parsed, [this, src, dst, verb, addr, len, cqe_addr, req_id,
                    done = std::move(done)]() mutable {
    AcquirePu(dst, [this, src, dst, verb, addr, len, cqe_addr, req_id,
                    done = std::move(done)](Simulator::Callback release) mutable {
      switch (verb) {
        case Verb::kRead: {
          // src reads dst's memory: fetch from dst, then deliver data + CQE
          // into src's memory. The context is held until the delivery is
          // posted — a local op spans both DMA phases.
          dst->DmaRead(addr, std::max<uint32_t>(len, 1),
                       [this, src, len, cqe_addr, req_id, release = std::move(release),
                        done = std::move(done)](SimTime) mutable {
            src->DmaWrite(cqe_addr, static_cast<uint64_t>(len) + params_.cqe_bytes,
                          [this, release = std::move(release),
                           done = std::move(done)](SimTime posted) mutable {
                            sim_->At(posted + params_.read_pipeline_overhead,
                                     std::move(release));
                            done(posted);
                          },
                          /*single_descriptor=*/true, req_id);
          }, req_id);
          return;
        }
        case Verb::kWrite:
        case Verb::kSend: {
          // Gather payload from src, write it into dst, then post the CQE
          // back into src. This is the double PCIe1 crossing of path ③.
          src->DmaRead(addr, std::max<uint32_t>(len, 1),
                       [this, src, dst, verb, addr, len, cqe_addr, req_id,
                        release = std::move(release),
                        done = std::move(done)](SimTime) mutable {
            const uint64_t dst_bytes =
                verb == Verb::kSend ? static_cast<uint64_t>(len) + params_.cqe_bytes
                                    : std::max<uint32_t>(len, 1);
            dst->DmaWrite(
                addr, dst_bytes,
                [this, src, dst, verb, addr, len, cqe_addr, req_id, release = std::move(release),
                 done = std::move(done)](SimTime posted) mutable {
              sim_->At(posted + params_.write_pipeline_overhead, std::move(release));
              if (verb == Verb::kSend) {
                SendHandler& handler = send_handlers_[static_cast<size_t>(dst->fe_id)];
                if (handler != nullptr) {
                  handler(addr, len, [](SimTime, uint32_t) {});
                }
              }
              src->DmaWrite(cqe_addr, params_.cqe_bytes,
                            [done = std::move(done)](SimTime cqe_done) { done(cqe_done); },
                            /*single_descriptor=*/false, req_id);
            },
                /*single_descriptor=*/true, req_id);
          }, req_id);
          return;
        }
      }
    });
  });
}

void NicEngine::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register(params_.name, "requests_served", "count",
                "requests entering the engine (remote + local)",
                [this] { return static_cast<double>(requests_served_); });
  reg->Register(params_.name + ".fe", "shared_jobs", "count",
                "work items through the shared front-end pipeline",
                [this] { return static_cast<double>(frontend_.shared_jobs()); });
  reg->Register(params_.name + ".fe", "shared_busy_us", "us",
                "busy time of the shared front-end pipeline",
                [this] { return ToMicros(frontend_.shared_busy()); });
  reg->Register(params_.name + ".pu", "peak_waiters", "count",
                "max jobs ever queued for a shared processing-unit context",
                [this] { return static_cast<double>(pus_.max_waiters()); });
  for (const auto& ep : endpoints_) {
    ep->RegisterMetrics(reg);
  }
}

}  // namespace snicsim
