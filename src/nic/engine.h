// The NIC engine: packet front end + processing-unit contexts + per-endpoint
// DMA, executing the paper's Figure 3 flows.
//
// Remote (network) requests:
//   READ : request frame → front end → PU → DMA read at endpoint →
//          response frames (PU stalls for the whole PCIe round trip — the
//          mechanism behind SNIC ①'s small-request throughput loss, §3.1).
//   WRITE: payload frames → front end → PU → posted DMA write → ack as soon
//          as the burst is accepted (no completion wait, Fig. 3).
//   SEND : like WRITE into the endpoint's receive ring, then the endpoint
//          CPU (host or wimpy SoC) takes over via the registered handler.
//
// Local requests (path ③, host↔SoC) skip the wire but pay the doorbell,
// WQE fetch, and double PCIe1 crossing; see ExecuteLocalOp.
#ifndef SRC_NIC_ENGINE_H_
#define SRC_NIC_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/mem/memory.h"
#include "src/nic/endpoint.h"
#include "src/nic/frontend.h"
#include "src/nic/params.h"
#include "src/nic/verb.h"
#include "src/pcie/path.h"
#include "src/sim/callback.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace snicsim {

// Invoked when the last response frame reaches the far end of the response
// path (i.e. the requester's NIC). Per-request closure: move-only with a
// small-buffer fast path (see src/sim/callback.h).
using ResponseCallback = SmallFunction<void(SimTime delivered)>;

// The per-request reply closure handed to a SendHandler: call
// `reply(ready_time, reply_len)` to emit the response. Carries the request's
// response path and completion chain, so it is move-only.
using ReplyCallback = SmallFunction<void(SimTime ready, uint32_t reply_len)>;

// Two-sided delivery: the endpoint CPU receives `len` bytes and must
// eventually invoke the reply closure. `hdr` is the request's 64-bit
// application header — the addr field of the originating post, delivered
// untouched like a SEND-with-immediate — so a serving layer can thread the
// key/opcode of each message to the executing CPU without a side channel.
// The handler itself is registered once and invoked many times, so plain
// std::function is fine here.
using SendHandler = std::function<void(uint64_t hdr, uint32_t len, ReplyCallback reply)>;

class NicEngine {
 public:
  NicEngine(Simulator* sim, NicParams params);

  NicEngine(const NicEngine&) = delete;
  NicEngine& operator=(const NicEngine&) = delete;

  // Registers a PCIe endpoint reachable from the NIC cores.
  NicEndpoint* AddEndpoint(const EndpointParams& ep, PciePath nic_to_mem,
                           MemorySubsystem* memory);

  // Registers the CPU-side consumer of SENDs targeting `ep`.
  void SetSendHandler(NicEndpoint* ep, SendHandler handler);

  // Handles a remote request whose last frame arrived now. `fe_units` is the
  // inbound pipeline work (≈ number of frames). The response (READ data, or
  // a small ack/CQE-generating packet for WRITE/SEND) is pushed along
  // `response_path` segmented at the network MTU.
  // `req_id` threads the originating request through to trace spans.
  void HandleRequest(NicEndpoint* ep, Verb verb, uint64_t addr, uint32_t len,
                     double fe_units, PciePath response_path, ResponseCallback done,
                     uint64_t req_id = 0);

  // Path ③: an op posted by the CPU of `src` targeting the memory of `dst`
  // on the same SmartNIC. Assumes doorbell/WQE-fetch costs were already paid
  // by the requester model; `done` fires when the CQE write has been posted
  // into `src`'s memory.
  void ExecuteLocalOp(NicEndpoint* src, NicEndpoint* dst, Verb verb, uint64_t addr,
                      uint32_t len, SmallFunction<void(SimTime)> done,
                      uint64_t req_id = 0);

  // Fetches `count` WQEs (doorbell-batching DMA) from `src` memory; `cb`
  // fires when they are inside the NIC.
  void FetchWqes(NicEndpoint* src, uint64_t addr, int count, DmaCallback cb,
                 uint64_t req_id = 0);

  const NicParams& params() const { return params_; }
  FrontEnd& frontend() { return frontend_; }
  TokenPool& processing_units() { return pus_; }

  // Grants a processing-unit context for work on `ep` — a dedicated
  // per-endpoint context when one is free, else a shared one (queueing if
  // exhausted). `cb` receives the matching release callback.
  void AcquirePu(NicEndpoint* ep, SmallFunction<void(Simulator::Callback release)> cb);
  Simulator* sim() const { return sim_; }
  const std::vector<std::unique_ptr<NicEndpoint>>& endpoints() const { return endpoints_; }

  uint64_t requests_served() const { return requests_served_; }

  // Exposes engine + per-endpoint counters under "<name>" / endpoint names.
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  void SendResponse(NicEndpoint* ep, uint64_t bytes, SimTime ready, PciePath path,
                    ResponseCallback done, uint64_t req_id);

  Simulator* sim_;
  NicParams params_;
  FrontEnd frontend_;
  TokenPool pus_;
  std::vector<std::unique_ptr<NicEndpoint>> endpoints_;
  std::vector<std::unique_ptr<TokenPool>> dedicated_pus_;  // indexed by fe_id
  std::vector<SendHandler> send_handlers_;
  uint64_t requests_served_ = 0;
  uint64_t cqe_seq_ = 0;
};

}  // namespace snicsim

#endif  // SRC_NIC_ENGINE_H_
