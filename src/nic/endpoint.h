// A PCIe endpoint as seen from the NIC cores: the host memory system behind
// the root port, or the BlueField SoC memory behind the switch.
//
// The endpoint owns everything that differs between "DMA to the host" and
// "DMA to the SoC" (paper §3.1–§3.2):
//   * the PCIe route (PCIe0+switch+PCIe1 vs. switch+PCIe1) and its latency;
//   * the negotiated PCIe MTU (512 B host vs. 128 B SoC) that segments
//     completion/write bursts into TLPs;
//   * the completer's TLP service rates (the host root port sustains a
//     bounded rate of inbound non-posted reads / posted writes);
//   * the memory subsystem behind it (DDIO LLC + 8 channels vs. 1 channel);
//   * DMA-engine credits, including the head-of-line degradation for
//     oversized reads against small-MTU endpoints (Advice #2).
#ifndef SRC_NIC_ENDPOINT_H_
#define SRC_NIC_ENDPOINT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/mem/memory.h"
#include "src/nic/params.h"
#include "src/pcie/path.h"
#include "src/sim/callback.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace snicsim {

struct EndpointParams {
  std::string name = "ep";
  uint32_t pcie_mtu = kHostPcieMtu;
  // Completer-side TLP service rates; zero means "not a bottleneck".
  Rate read_completer = Rate::PerSec(0);
  Rate write_completer = Rate::PerSec(0);
  // Which compute fault domain polls this endpoint's completions ("host" or
  // "soc"); stall windows on that domain defer local-op CQE visibility
  // (src/fault/plan.h).
  std::string fault_domain = "host";
};

// Completion handed to the NIC when a DMA finishes. `done` is the simulated
// completion time (data at the NIC for reads; delivered at the endpoint for
// posted writes). Per-request closure: move-only with a small-buffer fast
// path (see src/sim/callback.h).
using DmaCallback = SmallFunction<void(SimTime done)>;

class NicEndpoint {
 public:
  NicEndpoint(Simulator* sim, const NicParams& nic, const EndpointParams& params,
              PciePath nic_to_mem, MemorySubsystem* memory);

  NicEndpoint(const NicEndpoint&) = delete;
  NicEndpoint& operator=(const NicEndpoint&) = delete;

  // DMA-reads `len` bytes starting at `addr`; `cb` fires when the last
  // completion TLP reaches the NIC. Splits into max_read_request
  // sub-requests with bounded outstanding credits; a request larger than
  // the head-of-line threshold against a small-MTU endpoint degrades to
  // hol_degraded_credits outstanding (paper Fig. 8).
  // `req_id` threads the originating request through to trace spans.
  void DmaRead(uint64_t addr, uint64_t len, DmaCallback cb, uint64_t req_id = 0);

  // Posted DMA write. `posted_cb` fires when the burst has been delivered
  // into the endpoint (the NIC may then ack); the write additionally holds a
  // flow-control credit until the memory system absorbs it, which is what
  // backpressures writes to the single-channel SoC DRAM.
  //
  // `single_descriptor` marks a transfer issued as one giant DMA descriptor
  // (path-③ staging). Only those hit the head-of-line rule on small-MTU
  // endpoints: remote WRITEs arrive pre-segmented at the network MTU and are
  // unaffected (paper §3.2 vs. §3.3).
  void DmaWrite(uint64_t addr, uint64_t len, DmaCallback posted_cb,
                bool single_descriptor = false, uint64_t req_id = 0);

  // One header-only TLP to the endpoint and back (for model probes).
  SimTime ControlRtt() const;

  const EndpointParams& params() const { return params_; }
  MemorySubsystem* memory() const { return memory_; }
  const PciePath& to_mem() const { return to_mem_; }
  const PciePath& from_mem() const { return from_mem_; }

  // Front-end registration id (set by NicEngine).
  int fe_id = -1;

  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t writes_issued() const { return writes_issued_; }
  uint64_t hol_events() const { return hol_events_; }

  // Exposes DMA/credit counters under "<name>"; paths and memory register
  // separately (they are shared between endpoints).
  void RegisterMetrics(MetricsRegistry* reg);

 private:
  struct ReadOp {
    uint64_t addr = 0;
    uint64_t len = 0;
    uint64_t issued = 0;     // bytes whose sub-reads have been issued
    uint64_t completed = 0;  // bytes fully arrived
    int window = 0;          // outstanding sub-read budget for this op
    int in_flight = 0;
    SimTime last_done = 0;
    uint64_t rid = 0;
    DmaCallback cb;
  };

  struct WriteOp {
    uint64_t addr = 0;
    uint64_t len = 0;
    uint64_t issued = 0;
    uint64_t delivered = 0;
    int window = 0;
    int in_flight = 0;
    bool gate_on_commit = false;  // HoL mode: next chunk waits for absorb
    SimTime last_posted = 0;
    uint64_t rid = 0;
    DmaCallback cb;
  };

  // Ops issue sub-requests strictly in FIFO order: the head op must be
  // fully issued before the next op may start. A degraded-window head op
  // therefore blocks the whole line — the paper's head-of-line anomaly.
  void PumpReads();
  void IssueOneSubRead(const std::shared_ptr<ReadOp>& op);
  void PumpWrites();
  void IssueOneSubWrite(const std::shared_ptr<WriteOp>& op);

  std::deque<std::shared_ptr<ReadOp>> read_queue_;
  std::deque<std::shared_ptr<WriteOp>> write_queue_;

  Simulator* sim_;
  const NicParams& nic_;
  EndpointParams params_;
  PciePath to_mem_;
  PciePath from_mem_;
  MemorySubsystem* memory_;

  TokenPool read_credits_;
  TokenPool write_credits_;
  std::unique_ptr<BusyServer> read_completer_;
  std::unique_ptr<BusyServer> write_completer_;

  uint64_t reads_issued_ = 0;
  uint64_t writes_issued_ = 0;
  uint64_t hol_events_ = 0;
};

}  // namespace snicsim

#endif  // SRC_NIC_ENDPOINT_H_
