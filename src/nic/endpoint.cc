#include "src/nic/endpoint.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/obs/trace.h"

namespace snicsim {

NicEndpoint::NicEndpoint(Simulator* sim, const NicParams& nic, const EndpointParams& params,
                         PciePath nic_to_mem, MemorySubsystem* memory)
    : sim_(sim),
      nic_(nic),
      params_(params),
      to_mem_(std::move(nic_to_mem)),
      from_mem_(to_mem_.Reversed()),
      memory_(memory),
      read_credits_(sim, params_.name + ".rdcred", nic.read_credits),
      write_credits_(sim, params_.name + ".wrcred", nic.write_credits) {
  SNIC_CHECK(memory_ != nullptr);
  if (!params_.read_completer.is_zero()) {
    read_completer_ = std::make_unique<BusyServer>(sim, params_.name + ".rdcmpl");
  }
  if (!params_.write_completer.is_zero()) {
    write_completer_ = std::make_unique<BusyServer>(sim, params_.name + ".wrcmpl");
  }
}

SimTime NicEndpoint::ControlRtt() const { return 2 * to_mem_.BaseLatency(); }

void NicEndpoint::DmaRead(uint64_t addr, uint64_t len, DmaCallback cb, uint64_t req_id) {
  auto op = std::make_shared<ReadOp>();
  op->addr = addr;
  op->len = std::max<uint64_t>(len, 1);
  op->rid = req_id;
  op->cb = std::move(cb);
  op->window = nic_.read_credits;
  // Head-of-line degradation: a single oversized read against a small-MTU
  // endpoint cannot keep its completion stream pipelined (paper Fig. 8 —
  // throughput collapses for >9 MB READs to the 128 B-MTU SoC). Because ops
  // issue in FIFO order, the degraded head also stalls everything behind it.
  if (op->len > nic_.hol_threshold && params_.pcie_mtu <= nic_.hol_mtu_limit) {
    op->window = nic_.hol_degraded_credits;
    ++hol_events_;
  }
  read_queue_.push_back(std::move(op));
  PumpReads();
}

void NicEndpoint::PumpReads() {
  while (!read_queue_.empty()) {
    const std::shared_ptr<ReadOp>& head = read_queue_.front();
    if (head->issued >= head->len) {
      // Fully issued: the next op may start streaming behind it.
      read_queue_.pop_front();
      continue;
    }
    if (head->in_flight >= head->window) {
      return;  // the head op stalls the line until completions drain
    }
    IssueOneSubRead(head);
  }
}

void NicEndpoint::IssueOneSubRead(const std::shared_ptr<ReadOp>& op) {
  const uint64_t chunk = std::min<uint64_t>(nic_.max_read_request, op->len - op->issued);
  const uint64_t chunk_addr = op->addr + op->issued;
  op->issued += chunk;
  op->in_flight += 1;
  ++reads_issued_;
  read_credits_.Acquire([this, op, chunk, chunk_addr] {
    // Non-posted read request travels to the endpoint ...
    const SimTime req_at = to_mem_.TransferControlAt(sim_, sim_->now(), nullptr, op->rid);
    // ... is serviced by the completer and the memory ...
    SimTime served = req_at;
    if (read_completer_ != nullptr) {
      served = read_completer_->EnqueueAt(req_at, params_.read_completer.ServiceTime());
      if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
        tr->Span(params_.name, "read_completer", req_at, served, op->rid);
      }
    }
    const SimTime data_ready = memory_->Access(served, chunk_addr,
                                               static_cast<uint32_t>(chunk),
                                               /*is_write=*/false, nullptr, op->rid);
    // ... and the completion burst streams back, segmented at the
    // endpoint's PCIe MTU.
    from_mem_.TransferAt(sim_, data_ready, chunk, params_.pcie_mtu, [this, op, chunk] {
      read_credits_.Release();
      op->in_flight -= 1;
      op->completed += chunk;
      op->last_done = sim_->now();
      if (op->completed >= op->len && op->cb) {
        op->cb(op->last_done);
      }
      PumpReads();
    }, op->rid);
  });
}

void NicEndpoint::DmaWrite(uint64_t addr, uint64_t len, DmaCallback posted_cb,
                           bool single_descriptor, uint64_t req_id) {
  auto op = std::make_shared<WriteOp>();
  op->addr = addr;
  op->len = std::max<uint64_t>(len, 1);
  op->rid = req_id;
  op->cb = std::move(posted_cb);
  op->window = nic_.write_credits;
  // Oversized bursts against a small-MTU endpoint starve the endpoint's
  // flow-control credits: the engine must wait for the endpoint to absorb
  // each window before pushing more (paper Fig. 9 / Advice #3 — large
  // host<->SoC WRITEs collapse just like large READs).
  if (single_descriptor && op->len > nic_.hol_threshold &&
      params_.pcie_mtu <= nic_.hol_mtu_limit) {
    op->window = nic_.hol_degraded_credits;
    op->gate_on_commit = true;
    ++hol_events_;
  }
  ++writes_issued_;
  write_queue_.push_back(std::move(op));
  PumpWrites();
}

void NicEndpoint::PumpWrites() {
  while (!write_queue_.empty()) {
    const std::shared_ptr<WriteOp>& head = write_queue_.front();
    if (head->issued >= head->len) {
      write_queue_.pop_front();
      continue;
    }
    if (head->in_flight >= head->window) {
      return;
    }
    IssueOneSubWrite(head);
  }
}

void NicEndpoint::IssueOneSubWrite(const std::shared_ptr<WriteOp>& op) {
  const uint64_t chunk = std::min<uint64_t>(nic_.max_read_request, op->len - op->issued);
  const uint64_t chunk_addr = op->addr + op->issued;
  op->issued += chunk;
  op->in_flight += 1;
  // Writes are posted, but each in-flight burst consumes a flow-control
  // credit released only when the memory system absorbs the data; that is
  // how a slow endpoint (e.g. the single-channel SoC DRAM) backpressures
  // the NIC.
  write_credits_.Acquire([this, op, chunk, chunk_addr] {
    to_mem_.TransferAt(sim_, sim_->now(), chunk, params_.pcie_mtu,
                       [this, op, chunk, chunk_addr] {
      // Burst delivered at the endpoint: the NIC may consider it posted.
      op->delivered += chunk;
      op->last_posted = sim_->now();
      SimTime served = sim_->now();
      if (write_completer_ != nullptr) {
        served = write_completer_->EnqueueAt(served, params_.write_completer.ServiceTime());
        if (Tracer* const tr = sim_->tracer(); tr != nullptr) {
          tr->Span(params_.name, "write_completer", op->last_posted, served, op->rid,
                   TraceCat::kAsync);
        }
      }
      memory_->Access(served, chunk_addr, static_cast<uint32_t>(chunk),
                      /*is_write=*/true, [this, op] {
        write_credits_.Release();
        if (op->gate_on_commit) {
          op->in_flight -= 1;
          PumpWrites();
        }
      }, op->rid);
      if (!op->gate_on_commit) {
        op->in_flight -= 1;
        PumpWrites();
      }
      if (op->delivered >= op->len && op->cb) {
        op->cb(op->last_posted);
      }
    }, op->rid);
  });
}

void NicEndpoint::RegisterMetrics(MetricsRegistry* reg) {
  reg->Register(params_.name, "dma_reads", "count", "sub-read requests issued",
                [this] { return static_cast<double>(reads_issued_); });
  reg->Register(params_.name, "dma_writes", "count", "DMA write ops issued",
                [this] { return static_cast<double>(writes_issued_); });
  reg->Register(params_.name, "hol_stalls", "count",
                "ops that hit head-of-line window degradation",
                [this] { return static_cast<double>(hol_events_); });
  reg->Register(params_.name, "read_credit_peak_waiters", "count",
                "max sub-reads ever queued for a DMA read credit",
                [this] { return static_cast<double>(read_credits_.max_waiters()); });
  reg->Register(params_.name, "write_credit_peak_waiters", "count",
                "max bursts ever queued for a DMA write credit",
                [this] { return static_cast<double>(write_credits_.max_waiters()); });
}

}  // namespace snicsim
