// The NIC packet-processing front end.
//
// Models the pool of "NIC cores" that parse packets, look up QP state, and
// build responses. Capacity is split into a large *shared* pipeline plus a
// small *dedicated* slice per PCIe endpoint (host / SoC): the paper's Fig. 11
// microbenchmark shows a single endpoint cannot reach the NIC's aggregate
// packet rate, but two endpoints driven concurrently can, implying a few NIC
// cores are reserved per endpoint. Work from endpoint e is dispatched to
// whichever of {shared, dedicated[e]} completes it earliest.
#ifndef SRC_NIC_FRONTEND_H_
#define SRC_NIC_FRONTEND_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace snicsim {

class FrontEnd {
 public:
  FrontEnd(Simulator* sim, std::string name, Rate shared, Rate dedicated_per_endpoint)
      : sim_(sim),
        name_(std::move(name)),
        shared_rate_(shared),
        dedicated_rate_(dedicated_per_endpoint),
        shared_(sim, name_ + ".shared") {}

  // Registers a PCIe endpoint; returns its id.
  int AddEndpoint(const std::string& endpoint_name) {
    dedicated_.push_back(
        std::make_unique<BusyServer>(sim_, name_ + ".ded." + endpoint_name));
    return static_cast<int>(dedicated_.size()) - 1;
  }

  // Processes `units` pipeline work items for `endpoint` that arrive at
  // `ready`; returns the completion time of the last item. Fractional unit
  // counts model fixed per-request overheads smaller than a packet slot.
  SimTime Process(SimTime ready, int endpoint, double units) {
    SNIC_CHECK_GE(endpoint, -1);
    SNIC_CHECK_LT(endpoint, static_cast<int>(dedicated_.size()));
    const SimTime shared_service =
        static_cast<SimTime>(static_cast<double>(shared_rate_.ServiceTime()) * units);
    // Endpoint-less work (e.g. a pure-RNIC with one implicit endpoint or
    // internal chores) only uses the shared pipeline.
    if (endpoint < 0 || dedicated_rate_.is_zero()) {
      return shared_.EnqueueAt(ready, shared_service);
    }
    BusyServer& ded = *dedicated_[static_cast<size_t>(endpoint)];
    const SimTime ded_service =
        static_cast<SimTime>(static_cast<double>(dedicated_rate_.ServiceTime()) * units);
    // Dispatch to whichever pipeline finishes first.
    const SimTime now = sim_->now();
    const SimTime shared_done = std::max({shared_.next_free(), ready, now}) + shared_service;
    const SimTime ded_done = std::max({ded.next_free(), ready, now}) + ded_service;
    if (shared_done <= ded_done) {
      return shared_.EnqueueAt(ready, shared_service);
    }
    return ded.EnqueueAt(ready, ded_service);
  }

  uint64_t shared_jobs() const { return shared_.jobs(); }
  SimTime shared_busy() const { return shared_.busy_time(); }

 private:
  Simulator* sim_;
  std::string name_;
  Rate shared_rate_;
  Rate dedicated_rate_;
  BusyServer shared_;
  std::vector<std::unique_ptr<BusyServer>> dedicated_;
};

}  // namespace snicsim

#endif  // SRC_NIC_FRONTEND_H_
