file(REMOVE_RECURSE
  "libsnicsim_nic.a"
)
