# Empty dependencies file for snicsim_nic.
# This may be replaced when dependencies are built.
