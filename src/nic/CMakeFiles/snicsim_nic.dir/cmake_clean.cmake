file(REMOVE_RECURSE
  "CMakeFiles/snicsim_nic.dir/endpoint.cc.o"
  "CMakeFiles/snicsim_nic.dir/endpoint.cc.o.d"
  "CMakeFiles/snicsim_nic.dir/engine.cc.o"
  "CMakeFiles/snicsim_nic.dir/engine.cc.o.d"
  "libsnicsim_nic.a"
  "libsnicsim_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
