// RDMA verb kinds understood by the NIC engine.
#ifndef SRC_NIC_VERB_H_
#define SRC_NIC_VERB_H_

namespace snicsim {

enum class Verb {
  kRead,   // one-sided RDMA READ
  kWrite,  // one-sided RDMA WRITE
  kSend,   // two-sided SEND (consumed by a posted RECV at the responder)
};

constexpr const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kRead:
      return "READ";
    case Verb::kWrite:
      return "WRITE";
    case Verb::kSend:
      return "SEND";
  }
  return "?";
}

}  // namespace snicsim

#endif  // SRC_NIC_VERB_H_
