// NIC hardware parameters.
//
// One NicParams instance describes one ASIC: the ConnectX-6 inside
// BlueField-2, a standalone ConnectX-6 RNIC, or the clients' ConnectX-4.
// All values are calibrated against the paper's measurements (§2–§4); the
// calibration targets are listed in DESIGN.md §4 and validated by
// tests/topo/calibration_test.cc.
#ifndef SRC_NIC_PARAMS_H_
#define SRC_NIC_PARAMS_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace snicsim {

struct NicParams {
  std::string name = "nic";

  // Network side. Each frame of `network_mtu` payload pays the generic
  // per-packet header overhead of the link model (LRH/BTH/ICRC-class),
  // which is why a 200 Gbps port delivers ~195 Gbps of goodput.
  Bandwidth network_bandwidth = Bandwidth::Gbps(200);
  uint32_t network_mtu = 1024;  // effective RDMA path MTU

  // Packet-processing pipeline (the "NIC cores" of the paper). Total
  // capacity is shared + dedicated*endpoints; a single endpoint can use
  // shared + its own dedicated slice (paper Fig. 11: one path peaks at
  // ~176 Mpps while both paths together reach ~195 Mpps).
  Rate shared_pipeline = Rate::Mpps(195);
  Rate dedicated_pipeline = Rate::Mpps(0);  // per endpoint, BlueField only

  // Extra time a processing-unit context stays occupied after its DMA phase
  // finishes (state update, response build, completion bookkeeping). These
  // are the calibrated "F" terms of DESIGN.md §4: together with pu_count and
  // the per-path PCIe round trip they set the small-request ceilings.
  SimTime read_pipeline_overhead = FromNanos(162);
  SimTime write_pipeline_overhead = FromNanos(428);

  // Processing-unit contexts: concurrent in-flight requests that occupy a
  // slot while their DMA phase runs. This is the small-request throughput
  // limiter for one-sided verbs. Like the packet pipeline, a few contexts
  // are reserved per endpoint (paper §4: concurrently driving host + SoC
  // yields more one-sided throughput than either path alone).
  int pu_count = 46;
  int pu_dedicated = 13;  // extra contexts per endpoint

  // DMA read engine: reads are split into sub-requests of
  // max_read_request bytes with up to read_credits outstanding.
  uint32_t max_read_request = 4096;
  int read_credits = 64;
  // In-flight posted writes per endpoint before flow-control backpressure.
  int write_credits = 64;

  // Head-of-line model (paper Fig. 8, Advice #2): one request whose payload
  // exceeds hol_threshold against an endpoint with MTU <= hol_mtu_limit
  // degrades the engine to hol_degraded_credits outstanding sub-reads.
  uint64_t hol_threshold = 9 * kMiB;
  uint32_t hol_mtu_limit = 128;
  int hol_degraded_credits = 3;

  // WQE fetch and CQE write sizes; sends up to max_inline_bytes are pushed
  // through the doorbell MMIO instead of a gather DMA.
  uint32_t wqe_bytes = 64;
  uint32_t cqe_bytes = 64;
  uint32_t max_inline_bytes = 220;

  static NicParams ConnectX6();          // 200 Gbps RNIC (paper's baseline)
  static NicParams ConnectX4();          // 100 Gbps client NIC
  static NicParams Bluefield2NicCores(); // CX6 cores inside BlueField-2
};

inline NicParams NicParams::ConnectX6() {
  NicParams p;
  p.name = "cx6";
  p.network_bandwidth = Bandwidth::Gbps(200);
  p.shared_pipeline = Rate::Mpps(195);
  p.dedicated_pipeline = Rate::Mpps(0);
  return p;
}

inline NicParams NicParams::ConnectX4() {
  NicParams p;
  p.name = "cx4";
  p.network_bandwidth = Bandwidth::Gbps(100);
  p.shared_pipeline = Rate::Mpps(75);
  p.pu_count = 32;
  return p;
}

inline NicParams NicParams::Bluefield2NicCores() {
  NicParams p;
  p.name = "bf2";
  p.network_bandwidth = Bandwidth::Gbps(200);
  // Most NIC cores are shared between the host and SoC endpoints; a few are
  // dedicated per endpoint (paper §4: one path alone peaks below the
  // concurrent-path total).
  p.shared_pipeline = Rate::Mpps(156);
  p.dedicated_pipeline = Rate::Mpps(20);
  return p;
}

}  // namespace snicsim

#endif  // SRC_NIC_PARAMS_H_
