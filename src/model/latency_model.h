// Closed-form latency decomposition of one-sided verbs — the analytic
// companion to the simulator, following the execution flows of the paper's
// Figure 3.
//
// For a READ: the request crosses the wire, the NIC issues a PCIe read
// (request TLP + memory access + completion TLPs) and only then responds;
// a WRITE posts its TLPs and acks without waiting for the completion. The
// per-phase terms let a designer see exactly where the SmartNIC "tax" lands
// (the PCIe1 + switch crossings), and the model is validated against the
// simulator in tests/model/latency_model_test.cc.
#ifndef SRC_MODEL_LATENCY_MODEL_H_
#define SRC_MODEL_LATENCY_MODEL_H_

#include "src/nic/verb.h"
#include "src/pcie/tlp.h"
#include "src/topo/testbed_params.h"
#include "src/workload/client.h"

namespace snicsim {

// Which inbound configuration the prediction is for (matches harness.h).
enum class LatencyTarget {
  kRnicHost,
  kBluefieldHost,
  kBluefieldSoc,
};

struct LatencyBreakdown {
  double post_us = 0.0;           // WQE build + doorbell MMIO + client NIC
  double request_wire_us = 0.0;   // client -> server network
  double pcie_round_trip_us = 0.0;  // NIC <-> memory (READ) or one-way (WRITE)
  double memory_us = 0.0;         // DRAM/LLC access
  double response_wire_us = 0.0;  // server -> client network
  double completion_us = 0.0;     // client NIC delivery + CQE poll

  double total_us() const {
    return post_us + request_wire_us + pcie_round_trip_us + memory_us +
           response_wire_us + completion_us;
  }
};

// Predicts the unloaded p50 latency of a small one-sided op.
inline LatencyBreakdown PredictLatency(LatencyTarget target, Verb verb, uint32_t payload,
                                       const TestbedParams& tp = TestbedParams::Default(),
                                       const ClientParams& client = ClientParams()) {
  LatencyBreakdown b;
  const double ns = 1e-3;  // ns -> us

  // --- requester side -----------------------------------------------------
  b.post_us = ToNanos(client.wr_build + client.mmio_block + client.mmio_flight +
                      client.nic_tx_fixed) *
                  ns +
              1e6 / client.nic.shared_pipeline.per_sec() * 1e-3;

  // --- network ------------------------------------------------------------
  const SimTime wire_one_way = tp.network_link_propagation * 2 + tp.network_switch_forward;
  const Bandwidth client_bw = client.nic.network_bandwidth;
  const uint32_t net_mtu =
      target == LatencyTarget::kRnicHost ? tp.rnic.network_mtu : tp.bluefield_nic.network_mtu;
  const bool request_carries_payload = verb != Verb::kRead;
  b.request_wire_us =
      ToNanos(wire_one_way + (request_carries_payload
                                  ? client_bw.TransferTime(WireBytes(payload, net_mtu))
                                  : client_bw.TransferTime(ControlWireBytes()))) *
      ns;
  const Bandwidth server_bw = target == LatencyTarget::kRnicHost
                                  ? tp.rnic.network_bandwidth
                                  : tp.bluefield_nic.network_bandwidth;
  const bool response_carries_payload = verb == Verb::kRead;
  b.response_wire_us =
      ToNanos(wire_one_way + (response_carries_payload
                                  ? server_bw.TransferTime(WireBytes(payload, net_mtu))
                                  : server_bw.TransferTime(ControlWireBytes()))) *
      ns;

  // --- PCIe path at the responder ------------------------------------------
  SimTime one_way = 0;
  uint32_t mtu = tp.host_pcie_mtu;
  switch (target) {
    case LatencyTarget::kRnicHost:
      one_way = tp.pcie0_propagation;
      break;
    case LatencyTarget::kBluefieldHost:
      one_way = tp.pcie1_propagation + tp.switch_forward + tp.pcie0_propagation;
      break;
    case LatencyTarget::kBluefieldSoc:
      one_way = tp.pcie1_propagation + tp.switch_forward + tp.soc_port_propagation;
      mtu = tp.soc_pcie_mtu;
      break;
  }
  const SimTime data_burst = tp.pcie_bandwidth.TransferTime(WireBytes(payload, mtu));
  if (verb == Verb::kRead) {
    // Request TLP out + completion burst back (Fig. 3 left).
    b.pcie_round_trip_us =
        ToNanos(2 * one_way + tp.pcie_bandwidth.TransferTime(ControlWireBytes()) +
                data_burst) *
        ns;
  } else {
    // Posted: one-way delivery only (Fig. 3 right).
    b.pcie_round_trip_us = ToNanos(one_way + data_burst) * ns;
  }

  // --- memory --------------------------------------------------------------
  const MemoryParams& mem =
      target == LatencyTarget::kBluefieldSoc ? tp.soc_memory : tp.host_memory;
  if (verb == Verb::kRead) {
    b.memory_us =
        ToNanos(mem.dram_latency + mem.cmd_read_service + mem.bank_read_service) * ns;
  } else {
    b.memory_us = 0.0;  // writes ack before the memory commit
  }

  // --- completion ------------------------------------------------------------
  b.completion_us = ToNanos(client.nic_rx_fixed + client.poll) * ns;
  return b;
}

}  // namespace snicsim

#endif  // SRC_MODEL_LATENCY_MODEL_H_
