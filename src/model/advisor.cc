#include "src/model/advisor.h"

#include <algorithm>

#include "src/model/bounds.h"

namespace snicsim {

namespace {

// Banks engaged by a uniform workload over `range` bytes of SoC memory.
int BanksEngaged(const MemoryParams& mem, uint64_t range) {
  const uint64_t rows = std::max<uint64_t>(1, range / mem.row_bytes);
  const uint64_t total_banks =
      static_cast<uint64_t>(mem.channels) * static_cast<uint64_t>(mem.banks_per_channel);
  return static_cast<int>(std::min<uint64_t>(rows, total_banks));
}

// Loud calibration gate: the analytic models are only characterization
// inside [kMinCalibratedPayload, kMaxCalibratedPayload]. A query outside
// that range is a planning bug at the caller, not a degenerate anomaly —
// abort instead of silently extrapolating (DESIGN.md §10).
void CheckCalibratedPayload(uint64_t payload) {
  SNIC_CHECK(PayloadWithinCalibration(payload));
}

}  // namespace

bool OffloadAdvisor::TriggersSkewAnomaly(const OffloadPlan& plan) const {
  if (!TargetsSoc(plan.path)) {
    return false;  // the host absorbs skew in its DDIO LLC
  }
  if (plan.verb == Verb::kSend) {
    return false;  // two-sided traffic lands in a ring, not random addresses
  }
  const MemoryParams& mem = tp_.soc_memory;
  const int engaged = BanksEngaged(mem, plan.address_range);
  const int total = mem.channels * mem.banks_per_channel;
  // Losing more than half the bank-level parallelism is where the paper's
  // Fig. 7 curves visibly dip.
  return engaged * 2 < total;
}

bool OffloadAdvisor::TriggersLargeReadAnomaly(const OffloadPlan& plan) const {
  CheckCalibratedPayload(plan.payload);
  if (plan.verb != Verb::kRead || !TargetsSoc(plan.path)) {
    return false;
  }
  return plan.payload > tp_.bluefield_nic.hol_threshold &&
         tp_.soc_pcie_mtu <= tp_.bluefield_nic.hol_mtu_limit;
}

bool OffloadAdvisor::TriggersPath3LargeTransferAnomaly(const OffloadPlan& plan) const {
  CheckCalibratedPayload(plan.payload);
  if (!IsPath3(plan.path)) {
    return false;
  }
  // On path ③ both READ and WRITE stage data through the NIC, so both
  // collapse past the threshold (Advice #3).
  return plan.payload > tp_.bluefield_nic.hol_threshold;
}

bool OffloadAdvisor::DoorbellBatchingHelps(const OffloadPlan& plan) const {
  if (!IsPath3(plan.path)) {
    return true;  // inter-machine requesters always gain a little (Fig. 10b)
  }
  if (!plan.host_side_requester) {
    return true;  // SoC-side batching is a 2.7-4.6x win
  }
  // Host-side batching only pays off once the batch amortizes the WQE-fetch
  // round trip; small batches lose (paper: -9/-7/-6% at 16/32/48).
  return plan.batch_size > 48;
}

double OffloadAdvisor::Path3BudgetGbps() const { return SafePath3BudgetGbps(tp_); }

std::vector<Advice> OffloadAdvisor::Review(const OffloadPlan& plan) const {
  CheckCalibratedPayload(plan.payload);
  std::vector<Advice> out;
  if (TriggersSkewAnomaly(plan)) {
    out.push_back(
        {1, "Avoid skewed memory accesses",
         "The SoC lacks DDIO and has one DRAM channel: a " +
             FormatBytes(plan.address_range) +
             " address range engages too few banks; widen the range or move the "
             "hot region to the host."});
  }
  if (TriggersLargeReadAnomaly(plan)) {
    out.push_back(
        {2, "Avoid large READ requests to the SoC",
         "READs above " + FormatBytes(tp_.bluefield_nic.hol_threshold) +
             " head-of-line-block the 128 B-MTU SoC endpoint; proactively segment "
             "into smaller requests."});
  }
  if (TriggersPath3LargeTransferAnomaly(plan)) {
    out.push_back(
        {3, "Avoid large host<->SoC transfers",
         "Path 3 crosses PCIe1 twice and collapses for transfers above " +
             FormatBytes(tp_.bluefield_nic.hol_threshold) + "; segment or stream."});
  }
  if (plan.doorbell_batching && !DoorbellBatchingHelps(plan)) {
    out.push_back(
        {4, "Doorbell batching hurts here",
         "Host-side doorbell batching on path 3 inserts a WQE-fetch round trip; "
             "use batches > 48 or plain (BlueFlame) posts."});
  }
  if (!plan.doorbell_batching && IsPath3(plan.path) && !plan.host_side_requester) {
    out.push_back(
        {4, "Enable doorbell batching on the SoC side",
         "SoC MMIO posting is slow; batching doorbells improves S2H posting "
             "throughput by 2.7-4.6x."});
  }
  if (IsPath3(plan.path) && plan.network_saturated &&
      plan.demand_gbps > Path3BudgetGbps()) {
    out.push_back(
        {0, "Path 3 exceeds the spare-PCIe budget",
         "With the NIC saturated, host<->SoC traffic must stay below P - N = " +
             FormatGbps(Path3BudgetGbps()) + " to avoid throttling the network path."});
  }
  return out;
}

}  // namespace snicsim
