// The paper's Table-3 analytic model: how many PCIe packets each
// communication path generates to move N payload bytes, and the resulting
// packet-rate requirements. The simulator's per-link hardware counters are
// cross-checked against this model (bench/tab3_pcie_model, tests/model).
#ifndef SRC_MODEL_PCIE_MODEL_H_
#define SRC_MODEL_PCIE_MODEL_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/pcie/tlp.h"

namespace snicsim {

// The communication paths of Fig. 2(c). ③ is split by requester side.
enum class CommPath {
  kRnic1,    // client -> host via ConnectX-6
  kSnic1,    // client -> host via BlueField-2 (①)
  kSnic2,    // client -> SoC (②)
  kSnic3S2H, // SoC -> host (③)
  kSnic3H2S, // host -> SoC (③)
};

constexpr const char* CommPathName(CommPath p) {
  switch (p) {
    case CommPath::kRnic1:
      return "RNIC(1)";
    case CommPath::kSnic1:
      return "SNIC(1)";
    case CommPath::kSnic2:
      return "SNIC(2)";
    case CommPath::kSnic3S2H:
      return "SNIC(3)S2H";
    case CommPath::kSnic3H2S:
      return "SNIC(3)H2S";
  }
  return "?";
}

struct PciePacketCounts {
  uint64_t pcie1 = 0;  // data TLPs crossing PCIe1 (both directions summed)
  uint64_t pcie0 = 0;  // data TLPs crossing PCIe0

  uint64_t total() const { return pcie1 + pcie0; }
};

// Data TLPs required to move `bytes` of payload along `path` (Table 3's
// simplified model: control-path packets are omitted).
constexpr PciePacketCounts DataPacketsForTransfer(CommPath path, uint64_t bytes,
                                                  uint32_t host_mtu = kHostPcieMtu,
                                                  uint32_t soc_mtu = kSocPcieMtu) {
  PciePacketCounts c;
  switch (path) {
    case CommPath::kRnic1:
      // No internal PCIe1; the (host) PCIe link is tallied as pcie0.
      c.pcie0 = NumTlps(bytes, host_mtu);
      break;
    case CommPath::kSnic1:
      c.pcie1 = NumTlps(bytes, host_mtu);
      c.pcie0 = NumTlps(bytes, host_mtu);
      break;
    case CommPath::kSnic2:
      c.pcie1 = NumTlps(bytes, soc_mtu);
      break;
    case CommPath::kSnic3S2H:
    case CommPath::kSnic3H2S:
      // The data crosses PCIe1 twice: once segmented at the SoC MTU (the
      // SoC side of the transfer) and once at the host MTU (the host side),
      // plus PCIe0 at the host MTU.
      c.pcie1 = NumTlps(bytes, soc_mtu) + NumTlps(bytes, host_mtu);
      c.pcie0 = NumTlps(bytes, host_mtu);
      break;
  }
  return c;
}

// Aggregate PCIe packet rate (in packets/s) needed to sustain `gbps` of
// payload bandwidth on `path` (the paper's §3.3 example: 200 Gbps S2H needs
// 195M + 49M + 49M ≈ 293 Mpps).
constexpr double RequiredPacketRate(CommPath path, double gbps,
                                    uint32_t host_mtu = kHostPcieMtu,
                                    uint32_t soc_mtu = kSocPcieMtu) {
  const double bytes_per_sec = gbps * 1e9 / 8.0;
  double rate = 0.0;
  switch (path) {
    case CommPath::kRnic1:
      rate = bytes_per_sec / host_mtu;
      break;
    case CommPath::kSnic1:
      rate = 2.0 * bytes_per_sec / host_mtu;
      break;
    case CommPath::kSnic2:
      rate = bytes_per_sec / soc_mtu;
      break;
    case CommPath::kSnic3S2H:
    case CommPath::kSnic3H2S:
      rate = bytes_per_sec / soc_mtu + 2.0 * bytes_per_sec / host_mtu;
      break;
  }
  return rate;
}

// Payload bandwidth deliverable over a link of `raw` signalling bandwidth
// when every TLP carries `mtu` payload plus the fixed wire overhead.
constexpr double EffectiveGbps(Bandwidth raw, uint32_t mtu) {
  return raw.gbps() * static_cast<double>(mtu) /
         static_cast<double>(mtu + kTlpOverheadBytes);
}

}  // namespace snicsim

#endif  // SRC_MODEL_PCIE_MODEL_H_
