# Empty dependencies file for snicsim_model.
# This may be replaced when dependencies are built.
