file(REMOVE_RECURSE
  "libsnicsim_model.a"
)
