file(REMOVE_RECURSE
  "CMakeFiles/snicsim_model.dir/advisor.cc.o"
  "CMakeFiles/snicsim_model.dir/advisor.cc.o.d"
  "libsnicsim_model.a"
  "libsnicsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
