// The offload advisor: the paper's four advices plus the §4 bandwidth
// budget, encoded as a checkable planning API.
//
// A designer describes an intended use of the SmartNIC (which path, verb,
// payload, address locality, batching) and the advisor returns the concrete
// anomalies the paper predicts, with the prescribed mitigation.
#ifndef SRC_MODEL_ADVISOR_H_
#define SRC_MODEL_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/pcie_model.h"
#include "src/nic/verb.h"
#include "src/topo/testbed_params.h"

namespace snicsim {

struct OffloadPlan {
  CommPath path = CommPath::kSnic1;
  Verb verb = Verb::kRead;
  uint32_t payload = 64;
  // Span of responder addresses the workload touches (bytes).
  uint64_t address_range = 10ull * 1024 * kMiB;
  // Doorbell batching configuration at the requester.
  bool doorbell_batching = false;
  int batch_size = 1;
  // Whether the requester rings doorbells from the host CPU (matters for
  // Advice #4's host-side caveat on path ③).
  bool host_side_requester = true;
  // Expected path-③ bandwidth demand, if this plan is intra-machine.
  double demand_gbps = 0.0;
  // Is the NIC already saturated by inter-machine traffic?
  bool network_saturated = false;
};

struct Advice {
  int number = 0;  // 1..4, or 0 for the §4 budget rule
  std::string title;
  std::string detail;
};

class OffloadAdvisor {
 public:
  explicit OffloadAdvisor(TestbedParams tp = TestbedParams::Default()) : tp_(tp) {}

  // Returns every advice triggered by the plan (empty = no anomaly expected).
  //
  // The plan's payload must lie within the models' calibrated range
  // ([kMinCalibratedPayload, kMaxCalibratedPayload] in src/model/bounds.h);
  // a payload outside it aborts with a CHECK failure rather than silently
  // extrapolating the closed forms. Review and every payload-dependent
  // predicate below enforce this.
  std::vector<Advice> Review(const OffloadPlan& plan) const;

  // Advice #1: one-sided accesses into SoC memory degrade when the address
  // range engages too few DRAM banks (no DDIO on the SoC).
  bool TriggersSkewAnomaly(const OffloadPlan& plan) const;

  // Advice #2: READs larger than the head-of-line threshold collapse against
  // the small-MTU SoC endpoint.
  bool TriggersLargeReadAnomaly(const OffloadPlan& plan) const;

  // Advice #3: large transfers (either verb) between host and SoC collapse.
  bool TriggersPath3LargeTransferAnomaly(const OffloadPlan& plan) const;

  // Advice #4: doorbell batching guidance for path ③.
  bool DoorbellBatchingHelps(const OffloadPlan& plan) const;

  // §4: the largest path-③ bandwidth that does not throttle inter-machine
  // traffic once the NIC is saturated.
  double Path3BudgetGbps() const;

  // The maximum READ size to issue against the SoC before proactively
  // segmenting (Advice #2's mitigation).
  uint64_t MaxSafeSocReadBytes() const { return tp_.bluefield_nic.hol_threshold; }

  const TestbedParams& testbed() const { return tp_; }

 private:
  bool TargetsSoc(CommPath path) const {
    return path == CommPath::kSnic2 || path == CommPath::kSnic3H2S ||
           path == CommPath::kSnic3S2H;
  }
  bool IsPath3(CommPath path) const {
    return path == CommPath::kSnic3H2S || path == CommPath::kSnic3S2H;
  }

  TestbedParams tp_;
};

}  // namespace snicsim

#endif  // SRC_MODEL_ADVISOR_H_
