// Closed-form bandwidth bounds for each communication path (paper §3
// "Bottleneck" paragraphs and §4).
//
// These bounds are what a designer can compute on paper before running
// anything; the benches verify the simulator converges to them.
#ifndef SRC_MODEL_BOUNDS_H_
#define SRC_MODEL_BOUNDS_H_

#include <algorithm>

#include "src/model/pcie_model.h"
#include "src/topo/testbed_params.h"

namespace snicsim {

struct PathBounds {
  double same_direction_gbps = 0.0;      // all flows one way
  double opposite_direction_gbps = 0.0;  // READ+WRITE mixed (Fig. 5)
};

// Peak payload bandwidth of a path on a given testbed.
inline PathBounds ComputePathBounds(CommPath path, const TestbedParams& tp) {
  const double net = EffectiveGbps(tp.bluefield_nic.network_bandwidth,
                                   tp.bluefield_nic.network_mtu);
  const double rnic_net = EffectiveGbps(tp.rnic.network_bandwidth, tp.rnic.network_mtu);
  const double pcie_host = EffectiveGbps(tp.pcie_bandwidth, tp.host_pcie_mtu);
  const double pcie_soc = EffectiveGbps(tp.pcie_bandwidth, tp.soc_pcie_mtu);
  PathBounds b;
  switch (path) {
    case CommPath::kRnic1:
      b.same_direction_gbps = std::min(rnic_net, pcie_host);
      b.opposite_direction_gbps = 2.0 * b.same_direction_gbps;
      break;
    case CommPath::kSnic1:
      // NIC (network) and two PCIe crossings, all bidirectional: the lowest
      // limit binds; opposite-direction flows multiplex to twice that.
      b.same_direction_gbps = std::min(net, pcie_host);
      b.opposite_direction_gbps = 2.0 * b.same_direction_gbps;
      break;
    case CommPath::kSnic2:
      b.same_direction_gbps = std::min(net, pcie_soc);
      b.opposite_direction_gbps = 2.0 * b.same_direction_gbps;
      break;
    case CommPath::kSnic3S2H:
    case CommPath::kSnic3H2S: {
      // Path ③ crosses PCIe1 twice (once per direction), so a single flow is
      // bottlenecked by the *uni-directional* PCIe bandwidth, and opposite
      // flows cannot double up (paper §3.3).
      b.same_direction_gbps = std::min(pcie_soc, pcie_host);
      b.opposite_direction_gbps = b.same_direction_gbps;
      break;
    }
  }
  return b;
}

// Payload range the analytic models are calibrated against: the paper's
// microbenchmarks sweep 16 B (minimum inlined WQE payload) through 64 MiB
// (the largest single WR in the §3 experiments). Outside this range the
// closed forms are extrapolation, not characterization — callers that
// consult the models for planning (the advisor) must refuse such payloads
// loudly instead of returning a silently-unsupported figure.
inline constexpr uint64_t kMinCalibratedPayload = 16;
inline constexpr uint64_t kMaxCalibratedPayload = 64ull * kMiB;

inline bool PayloadWithinCalibration(uint64_t payload) {
  return payload >= kMinCalibratedPayload && payload <= kMaxCalibratedPayload;
}

// §4 budget rule: when inter-machine traffic saturates the NIC, host<->SoC
// traffic should be capped at P − N (PCIe minus network limit) to avoid
// throttling the inter-machine path. Returns Gbps (>= 0).
inline double SafePath3BudgetGbps(const TestbedParams& tp) {
  const double p = tp.pcie_bandwidth.gbps();
  const double n = tp.bluefield_nic.network_bandwidth.gbps();
  return std::max(0.0, p - n);
}

}  // namespace snicsim

#endif  // SRC_MODEL_BOUNDS_H_
