#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/common/log.h"

namespace snicsim {

namespace {

// Chrome's ts/dur fields are microseconds. SimTime is integer picoseconds,
// so ps -> us is an exact division printed with six decimals; no floating
// point touches the output, keeping files byte-identical across runs.
std::string FormatMicroseconds(SimTime ps) {
  SNIC_CHECK_GE(ps, 0);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64, ps / kMicros, ps % kMicros);
  return buf;
}

}  // namespace

const char* TraceCatName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kPhase:
      return "phase";
    case TraceCat::kAsync:
      return "async";
    case TraceCat::kOp:
      return "op";
    case TraceCat::kInstant:
      return "instant";
  }
  return "?";
}

Tracer::Tracer(size_t capacity) {
  SNIC_CHECK_GT(capacity, 0u);
  ring_.resize(capacity);
}

uint32_t Tracer::InternComponent(std::string_view component) {
  const auto it = comp_ids_.find(std::string(component));
  if (it != comp_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(comps_.size());
  comps_.emplace_back(component);
  comp_ids_.emplace(comps_.back(), id);
  return id;
}

uint32_t Tracer::InternName(std::string_view component, std::string_view verb) {
  std::string full;
  full.reserve(component.size() + verb.size() + 1);
  full.append(component);
  full.push_back('/');
  full.append(verb);
  const auto it = name_ids_.find(full);
  if (it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.push_back(std::move(full));
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Tracer::Push(const Record& r) {
  ++emitted_;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = r;
    ++size_;
    return;
  }
  // Full: overwrite the oldest record (keep the most recent `capacity`).
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

void Tracer::Span(std::string_view component, std::string_view verb, SimTime start,
                  SimTime end, uint64_t req_id, TraceCat cat) {
  SNIC_CHECK_GE(end, start);
  Record r;
  r.start = start;
  r.dur = end - start;
  r.req_id = req_id;
  r.comp_id = InternComponent(component);
  r.name_id = InternName(component, verb);
  r.cat = cat;
  Push(r);
}

void Tracer::Instant(std::string_view component, std::string_view what, SimTime ts,
                     uint64_t req_id) {
  Record r;
  r.start = ts;
  r.dur = 0;
  r.req_id = req_id;
  r.comp_id = InternComponent(component);
  r.name_id = InternName(component, what);
  r.cat = TraceCat::kInstant;
  Push(r);
}

std::vector<Tracer::Event> Tracer::Events() const {
  std::vector<Event> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    const Record& r = ring_[(head_ + i) % ring_.size()];
    Event e;
    e.name = names_[r.name_id];
    e.component = comps_[r.comp_id];
    e.cat = r.cat;
    e.start = r.start;
    e.dur = r.dur;
    e.req_id = r.req_id;
    out.push_back(std::move(e));
  }
  return out;
}

std::string Tracer::JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::WriteChromeJson(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // One metadata event per component names its lane; components render as
  // "threads" of a single "process" (the simulated machine graph).
  for (size_t c = 0; c < comps_.size(); ++c) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << c + 1
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << JsonEscape(comps_[c])
       << "\"}}";
  }
  for (size_t i = 0; i < size_; ++i) {
    const Record& r = ring_[(head_ + i) % ring_.size()];
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << JsonEscape(names_[r.name_id]) << "\",\"cat\":\""
       << TraceCatName(r.cat) << "\",\"ph\":\""
       << (r.cat == TraceCat::kInstant ? 'i' : 'X') << "\",\"pid\":0,\"tid\":"
       << r.comp_id + 1 << ",\"ts\":" << FormatMicroseconds(r.start);
    if (r.cat != TraceCat::kInstant) {
      os << ",\"dur\":" << FormatMicroseconds(r.dur);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"args\":{\"req\":" << r.req_id << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool Tracer::WriteChromeJsonFile(const std::string& path) const {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    return false;
  }
  WriteChromeJson(f);
  return f.good();
}

}  // namespace snicsim
