#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/obs/trace.h"

namespace snicsim {

namespace {

// Deterministic number formatting: exact integers stay integers, everything
// else goes through a fixed %.6g so two runs print identical bytes.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  return buf;
}

}  // namespace

bool MetricsRegistry::Register(std::string_view instance, std::string_view leaf,
                               std::string_view unit, std::string_view help,
                               Sample sample) {
  std::string full;
  full.reserve(instance.size() + leaf.size() + 1);
  full.append(instance);
  full.push_back('.');
  full.append(leaf);
  if (!taken_.insert(full).second) {
    return false;
  }
  Entry e;
  e.instance = std::string(instance);
  e.leaf = std::string(leaf);
  e.unit = std::string(unit);
  e.help = std::string(help);
  e.sample = std::move(sample);
  entries_.push_back(std::move(e));
  return true;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{";
  bool first = true;
  for (const Entry& e : entries_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  \"" << Tracer::JsonEscape(e.instance) << '.' << Tracer::JsonEscape(e.leaf)
       << "\": {\"value\": " << FormatValue(e.sample ? e.sample() : 0.0)
       << ", \"unit\": \"" << Tracer::JsonEscape(e.unit) << "\"}";
  }
  os << "\n}\n";
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    return false;
  }
  WriteJson(f);
  return f.good();
}

}  // namespace snicsim
