// Named counters/gauges dumped as JSON alongside bench tables.
//
// Components expose their internal state (per-link bytes & utilization,
// queue depths, HoL stalls, DDIO hit ratio, doorbell MMIO count) by
// registering sampling callbacks under "<instance>.<leaf>" names. The
// registry samples every callback at dump time, so a single WriteJson at
// the end of a run captures the final state of the whole component graph.
//
// Names have two parts: `instance` identifies the concrete object
// ("bf_srv.pcie0.down") and `leaf` the quantity ("wire_bytes"). The set of
// leaf names is the documented catalog in DESIGN.md §6; a test enumerates
// the registry of a real topology and fails on any undocumented leaf.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace snicsim {

class MetricsRegistry {
 public:
  using Sample = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers "<instance>.<leaf>". Returns false (and registers nothing)
  // if that full name is already taken — duplicate names would make the
  // dump ambiguous, so callers treat false as a wiring bug.
  bool Register(std::string_view instance, std::string_view leaf, std::string_view unit,
                std::string_view help, Sample sample);

  struct Entry {
    std::string instance;
    std::string leaf;
    std::string unit;
    std::string help;
    Sample sample;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  // JSON object keyed by full metric name, in registration order (which is
  // deterministic because components register in construction order):
  //   {"bf_srv.pcie0.down.wire_bytes": {"value": 4096, "unit": "bytes"}, ...}
  // Numbers are integers when integral, else printed with %.6g.
  void WriteJson(std::ostream& os) const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  std::vector<Entry> entries_;
  std::unordered_set<std::string> taken_;
};

}  // namespace snicsim

#endif  // SRC_OBS_METRICS_H_
