// Per-component trace events for latency attribution.
//
// The paper's contribution is *explaining* end-to-end numbers by attributing
// them to individual components (the PCIe switch hop, TLP segmentation at
// the SoC's 128 B MTU, DDIO misses, doorbell MMIO). The Tracer makes that
// attribution a first-class output: components emit span/instant events
// keyed by (component, verb, request id) into a fixed-capacity ring buffer,
// and an exporter renders Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing, where a single RDMA READ decomposes visually into
// NIC-core -> PCIe1 -> switch -> PCIe0 -> host-DRAM spans.
//
// Zero overhead when disabled: components reach the tracer through a
// nullable pointer on the Simulator; every emission site is guarded by one
// pointer test. All timestamps are SimTime (integer picoseconds) — never
// wall clock — so traces are bit-reproducible across runs.
//
// The event schema and span naming convention ("component/verb") are
// documented in DESIGN.md §6 (Observability).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace snicsim {

// Event categories, rendered as the Chrome "cat" field:
//  * kPhase   — a critical-path phase of a request; for an uncontended
//               request the phase spans tile [issue, completion] exactly,
//               so their durations sum to the end-to-end latency.
//  * kAsync   — real work off the completion critical path (e.g. the memory
//               commit of a posted write). Excluded from latency sums.
//  * kOp      — the whole-request wrapper span (issue -> completion seen).
//  * kInstant — a point event (doorbell ring, HoL degradation).
enum class TraceCat : uint8_t { kPhase, kAsync, kOp, kInstant };

const char* TraceCatName(TraceCat cat);

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Allocates the next request id (1-based; 0 means "untraced"). Ids are
  // handed out in deterministic event order, so two runs of the same
  // experiment assign identical ids.
  uint64_t NextRequestId() { return ++req_seq_; }

  // Records a duration event named "component/verb" spanning [start, end].
  void Span(std::string_view component, std::string_view verb, SimTime start, SimTime end,
            uint64_t req_id, TraceCat cat = TraceCat::kPhase);

  // Records a point event named "component/what" at `ts`.
  void Instant(std::string_view component, std::string_view what, SimTime ts,
               uint64_t req_id);

  // A resolved event, oldest-first, for tests and custom exporters.
  struct Event {
    std::string name;       // "component/verb"
    std::string component;  // the lane the event renders on
    TraceCat cat = TraceCat::kPhase;
    SimTime start = 0;
    SimTime dur = 0;  // 0 for instants
    uint64_t req_id = 0;
  };
  std::vector<Event> Events() const;

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  // Events overwritten after the ring wrapped (oldest are dropped first).
  uint64_t dropped() const { return dropped_; }
  uint64_t emitted() const { return emitted_; }

  // Chrome trace_event JSON (the "JSON Array Format" with a traceEvents
  // envelope). Deterministic: identical emissions produce identical bytes.
  void WriteChromeJson(std::ostream& os) const;
  // Returns false if the file could not be opened.
  bool WriteChromeJsonFile(const std::string& path) const;

  static std::string JsonEscape(std::string_view s);

 private:
  struct Record {
    SimTime start = 0;
    SimTime dur = 0;
    uint64_t req_id = 0;
    uint32_t name_id = 0;
    uint32_t comp_id = 0;
    TraceCat cat = TraceCat::kPhase;
  };

  uint32_t InternName(std::string_view component, std::string_view verb);
  uint32_t InternComponent(std::string_view component);
  void Push(const Record& r);

  std::vector<Record> ring_;
  size_t head_ = 0;  // index of the oldest record once the ring wrapped
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  uint64_t emitted_ = 0;
  uint64_t req_seq_ = 0;

  // Interned strings; ids are assigned in first-use order, which is
  // deterministic because emission order is deterministic.
  std::unordered_map<std::string, uint32_t> name_ids_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> comp_ids_;
  std::vector<std::string> comps_;
};

}  // namespace snicsim

#endif  // SRC_OBS_TRACE_H_
