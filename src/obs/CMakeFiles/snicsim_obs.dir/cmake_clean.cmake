file(REMOVE_RECURSE
  "CMakeFiles/snicsim_obs.dir/metrics.cc.o"
  "CMakeFiles/snicsim_obs.dir/metrics.cc.o.d"
  "CMakeFiles/snicsim_obs.dir/trace.cc.o"
  "CMakeFiles/snicsim_obs.dir/trace.cc.o.d"
  "libsnicsim_obs.a"
  "libsnicsim_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicsim_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
