file(REMOVE_RECURSE
  "libsnicsim_obs.a"
)
