# Empty dependencies file for snicsim_obs.
# This may be replaced when dependencies are built.
