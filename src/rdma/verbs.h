// A small ibverbs-flavored API over the simulator.
//
// This is the surface downstream code programs against (examples/, the KV
// store): remote memory regions, queue pairs bound to a client thread, and
// completion queues. Underneath, posts travel the full simulated path —
// doorbell MMIO, client NIC, fabric, responder NIC front end, PU, DMA — so
// application-level experiments inherit every anomaly the paper documents.
#ifndef SRC_RDMA_VERBS_H_
#define SRC_RDMA_VERBS_H_

#include <cstdint>
#include <deque>
#include <iterator>
#include <functional>
#include <string>

#include "src/common/log.h"
#include "src/nic/engine.h"
#include "src/nic/verb.h"
#include "src/rdma/recv_queue.h"
#include "src/sim/simulator.h"
#include "src/workload/client.h"

namespace snicsim {
namespace rdma {

// A remote registration: which engine/endpoint serves it, where the server's
// network port is, and the address window the requester may touch.
struct RemoteMemoryRegion {
  NicEngine* engine = nullptr;
  NicEndpoint* endpoint = nullptr;
  PcieLink* server_port = nullptr;
  uint64_t addr = 0;
  uint64_t length = 0;
  uint32_t rkey = 0;
  // Responder receive ring consumed by SENDs (nullptr = unlimited ring).
  ReceiveQueue* recv = nullptr;

  bool Contains(uint64_t a, uint64_t len) const {
    return a >= addr && a + len <= addr + length;
  }
};

struct WorkCompletion {
  Verb verb = Verb::kRead;
  uint64_t wr_id = 0;
  uint32_t byte_len = 0;
  SimTime completed_at = 0;
};

// Completions are pushed by the QP and drained by the application, like
// ibv_poll_cq.
class CompletionQueue {
 public:
  void Push(WorkCompletion wc) { ready_.push_back(wc); }

  // Drains up to `max` completions into `out`; returns the count.
  int Poll(WorkCompletion* out, int max) {
    int n = 0;
    while (n < max && !ready_.empty()) {
      out[n++] = ready_.front();
      ready_.pop_front();
    }
    return n;
  }

  size_t pending() const { return ready_.size(); }

 private:
  std::deque<WorkCompletion> ready_;
};

// Transport types (paper §3 setup: RC for one-sided, UD for two-sided).
enum class QpType {
  kRc,  // reliable connection: READ/WRITE/SEND
  kUd,  // unreliable datagram: SEND only, cheaper state
};

// The usual verbs state ladder; posting requires kRts.
enum class QpState {
  kReset,
  kInit,
  kRtr,  // ready to receive
  kRts,  // ready to send
  kError,
};

struct QpConfig {
  QpType type = QpType::kRc;
  // Send-queue depth: posts beyond this many outstanding WRs are rejected
  // (ENOMEM in real verbs; callers must poll the CQ and retry).
  int max_send_wr = 256;
  // Generate a CQE for every WR even when posted unsignaled.
  bool signal_all = false;
  // Backoff before retrying a SEND that hit receiver-not-ready.
  SimTime rnr_backoff = FromMicros(10);
};

// A verbs queue pair bound to one client thread and one remote region.
// Completion callbacks run when the CQE is visible to the polling thread.
class QueuePair {
 public:
  QueuePair(ClientMachine* machine, int thread, RemoteMemoryRegion mr,
            CompletionQueue* cq = nullptr, QpConfig config = QpConfig())
      : machine_(machine), thread_(thread), mr_(mr), cq_(cq), config_(config) {
    SNIC_CHECK(machine != nullptr);
  }

  // Per-op completion closure: move-only with a small-buffer fast path.
  using OpCallback = SmallFunction<void(SimTime completed)>;

  // State management (ibv_modify_qp): the ladder must be walked in order.
  // Freshly-constructed QPs start in kRts for convenience (the common case
  // in tests and benches); call Reset() to exercise the ladder.
  QpState state() const { return state_; }
  void Reset() { state_ = QpState::kReset; }
  bool Modify(QpState next) {
    static constexpr QpState kLadder[] = {QpState::kReset, QpState::kInit, QpState::kRtr,
                                          QpState::kRts};
    for (size_t i = 0; i + 1 < std::size(kLadder); ++i) {
      if (state_ == kLadder[i] && next == kLadder[i + 1]) {
        state_ = next;
        return true;
      }
    }
    if (next == QpState::kError) {
      state_ = next;
      return true;
    }
    return false;
  }

  // Posts return false when the QP is not ready or the send queue is full.
  bool PostRead(uint64_t remote_addr, uint32_t len, uint64_t wr_id = 0,
                OpCallback cb = nullptr, bool signaled = true) {
    SNIC_CHECK(config_.type == QpType::kRc);  // one-sided needs RC
    return PostOp(Verb::kRead, remote_addr, len, wr_id, std::move(cb), signaled);
  }
  bool PostWrite(uint64_t remote_addr, uint32_t len, uint64_t wr_id = 0,
                 OpCallback cb = nullptr, bool signaled = true) {
    SNIC_CHECK(config_.type == QpType::kRc);
    return PostOp(Verb::kWrite, remote_addr, len, wr_id, std::move(cb), signaled);
  }
  // Two-sided send into the responder's receive ring; the responder's
  // registered handler produces the reply. Works on RC and UD.
  bool PostSend(uint32_t len, uint64_t wr_id = 0, OpCallback cb = nullptr,
                bool signaled = true) {
    return PostOp(Verb::kSend, mr_.addr, len, wr_id, std::move(cb), signaled);
  }

  const RemoteMemoryRegion& remote() const { return mr_; }
  const QpConfig& config() const { return config_; }
  int thread() const { return thread_; }
  uint64_t posted() const { return posted_; }
  int outstanding() const { return outstanding_; }
  uint64_t rnr_retries() const { return rnr_retries_; }

 private:
  bool PostOp(Verb verb, uint64_t remote_addr, uint32_t len, uint64_t wr_id,
              OpCallback cb, bool signaled) {
    if (state_ != QpState::kRts) {
      return false;
    }
    if (outstanding_ >= config_.max_send_wr) {
      return false;  // send queue full: poll the CQ and retry
    }
    SNIC_CHECK(mr_.Contains(remote_addr, len == 0 ? 1 : len));
    // Receiver-not-ready: the responder ring is dry; retry after backoff.
    if (verb == Verb::kSend && mr_.recv != nullptr && !mr_.recv->Consume()) {
      ++rnr_retries_;
      Simulator* sim = machine_->sim();
      ++outstanding_;
      sim->In(config_.rnr_backoff, [this, verb, remote_addr, len, wr_id,
                                    cb = std::move(cb), signaled]() mutable {
        --outstanding_;
        PostOp(verb, remote_addr, len, wr_id, std::move(cb), signaled);
      });
      return true;
    }
    ++posted_;
    ++outstanding_;
    TargetSpec target;
    target.engine = mr_.engine;
    target.endpoint = mr_.endpoint;
    target.server_port = mr_.server_port;
    target.verb = verb;
    target.payload = len;
    machine_->Post(thread_, target, remote_addr,
                   [this, verb, len, wr_id, signaled,
                    cb = std::move(cb)](SimTime completed) {
                     --outstanding_;
                     if (cq_ != nullptr && (signaled || config_.signal_all)) {
                       cq_->Push(WorkCompletion{verb, wr_id, len, completed});
                     }
                     if (cb) {
                       cb(completed);
                     }
                   });
    return true;
  }

  ClientMachine* machine_;
  int thread_;
  RemoteMemoryRegion mr_;
  CompletionQueue* cq_;
  QpConfig config_;
  QpState state_ = QpState::kRts;
  uint64_t posted_ = 0;
  int outstanding_ = 0;
  uint64_t rnr_retries_ = 0;
};

}  // namespace rdma
}  // namespace snicsim

#endif  // SRC_RDMA_VERBS_H_
