// A small ibverbs-flavored API over the simulator.
//
// This is the surface downstream code programs against (examples/, the KV
// store): remote memory regions, queue pairs bound to a client thread, and
// completion queues. Underneath, posts travel the full simulated path —
// doorbell MMIO, client NIC, fabric, responder NIC front end, PU, DMA — so
// application-level experiments inherit every anomaly the paper documents.
#ifndef SRC_RDMA_VERBS_H_
#define SRC_RDMA_VERBS_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iterator>
#include <functional>
#include <memory>
#include <string>

#include "src/common/log.h"
#include "src/fault/injector.h"
#include "src/nic/engine.h"
#include "src/nic/verb.h"
#include "src/rdma/recv_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/timer_wheel.h"
#include "src/workload/client.h"

namespace snicsim {
namespace rdma {

// A remote registration: which engine/endpoint serves it, where the server's
// network port is, and the address window the requester may touch.
struct RemoteMemoryRegion {
  NicEngine* engine = nullptr;
  NicEndpoint* endpoint = nullptr;
  PcieLink* server_port = nullptr;
  uint64_t addr = 0;
  uint64_t length = 0;
  uint32_t rkey = 0;
  // Responder receive ring consumed by SENDs (nullptr = unlimited ring).
  ReceiveQueue* recv = nullptr;

  bool Contains(uint64_t a, uint64_t len) const {
    return a >= addr && a + len <= addr + length;
  }
};

// Completion status (ibv_wc_status, reduced to what the simulator models).
// Error completions are always delivered to the CQ, signaled or not, like
// real verbs.
enum class WcStatus : uint8_t {
  kSuccess,
  kRetryExceeded,     // transport retry_cnt exhausted on this WR
  kRnrRetryExceeded,  // receiver-not-ready retry budget exhausted
  kFlushed,           // WR flushed when the QP entered the error state
  kDeadlineExceeded,  // deadline passed at retransmit time; WR abandoned
};

constexpr const char* WcStatusName(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess:
      return "success";
    case WcStatus::kRetryExceeded:
      return "retry_exceeded";
    case WcStatus::kRnrRetryExceeded:
      return "rnr_retry_exceeded";
    case WcStatus::kFlushed:
      return "flushed";
    case WcStatus::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

struct WorkCompletion {
  Verb verb = Verb::kRead;
  uint64_t wr_id = 0;
  uint32_t byte_len = 0;
  SimTime completed_at = 0;
  WcStatus status = WcStatus::kSuccess;
};

// Completions are pushed by the QP and drained by the application, like
// ibv_poll_cq.
class CompletionQueue {
 public:
  void Push(WorkCompletion wc) { ready_.push_back(wc); }

  // Drains up to `max` completions into `out`; returns the count.
  int Poll(WorkCompletion* out, int max) {
    int n = 0;
    while (n < max && !ready_.empty()) {
      out[n++] = ready_.front();
      ready_.pop_front();
    }
    return n;
  }

  size_t pending() const { return ready_.size(); }

 private:
  std::deque<WorkCompletion> ready_;
};

// Transport types (paper §3 setup: RC for one-sided, UD for two-sided).
enum class QpType {
  kRc,  // reliable connection: READ/WRITE/SEND
  kUd,  // unreliable datagram: SEND only, cheaper state
};

// The usual verbs state ladder; posting requires kRts.
enum class QpState {
  kReset,
  kInit,
  kRtr,  // ready to receive
  kRts,  // ready to send
  kError,
};

struct QpConfig {
  QpType type = QpType::kRc;
  // Send-queue depth: posts beyond this many outstanding WRs are rejected
  // (ENOMEM in real verbs; callers must poll the CQ and retry).
  int max_send_wr = 256;
  // Generate a CQE for every WR even when posted unsignaled.
  bool signal_all = false;
  // Backoff before retrying a SEND that hit receiver-not-ready.
  SimTime rnr_backoff = FromMicros(10);
  // RNR retry budget: that many backoff retries, then the QP enters the
  // error state with a kRnrRetryExceeded completion. Negative = retry
  // forever (the pre-fault-layer behaviour).
  int rnr_retry_cnt = -1;

  // --- RC transport reliability (paper-scale go-back-N, §fault model) ---
  // When a response is outstanding longer than
  // transport_timeout << min(retries, backoff_shift_cap), the QP assumes
  // loss and retransmits this WR and everything after it (go-back-N).
  // 0 disables the reliability layer entirely: no timers are armed and the
  // QP behaves bit-identically to the pre-fault simulator.
  SimTime transport_timeout = 0;
  // Retransmission attempts before the QP gives up: the culprit WR
  // completes with kRetryExceeded, later WRs flush, state becomes kError.
  int retry_cnt = 7;
  // Exponential backoff cap: timeout doubles per retry up to this shift.
  int backoff_shift_cap = 6;
  // Fault domain ("host", "soc") whose crash windows kill this QP: when a
  // timeout fires inside a crash window of the domain, the QP drops to
  // kError and flushes instead of retransmitting into a dead endpoint.
  // Empty = not bound to any crash domain.
  std::string crash_domain;
};

// Point-in-time health of one QP, snapshotted for admission and routing
// decisions (the path-selection governor folds these into its per-path
// fault signal). Pure data: safe to copy out and compare across epochs.
struct QpHealth {
  QpState state = QpState::kRts;
  int outstanding = 0;
  uint64_t posted = 0;
  uint64_t completions = 0;
  uint64_t timeouts = 0;
  uint64_t retransmits = 0;
  uint64_t completion_errors = 0;

  // A QP that left kRts cannot carry new work until Recover().
  bool usable() const { return state == QpState::kRts; }

  // Fraction of delivered completions that were errors, in [0, 1].
  double ErrorRate() const {
    const uint64_t total = completions + completion_errors;
    return total == 0 ? 0.0
                      : static_cast<double>(completion_errors) / static_cast<double>(total);
  }

  // Transport retransmissions per posted WR (can exceed 1 under heavy loss).
  double RetransmitRate() const {
    return posted == 0 ? 0.0
                       : static_cast<double>(retransmits) / static_cast<double>(posted);
  }
};

// A verbs queue pair bound to one client thread and one remote region.
// Completion callbacks run when the CQE is visible to the polling thread.
class QueuePair {
 public:
  QueuePair(ClientMachine* machine, int thread, RemoteMemoryRegion mr,
            CompletionQueue* cq = nullptr, QpConfig config = QpConfig())
      : machine_(machine), thread_(thread), mr_(mr), cq_(cq), config_(config) {
    SNIC_CHECK(machine != nullptr);
  }

  // Per-op completion closure: move-only with a small-buffer fast path.
  using OpCallback = SmallFunction<void(SimTime completed)>;

  // State management (ibv_modify_qp): the ladder must be walked in order.
  // Freshly-constructed QPs start in kRts for convenience (the common case
  // in tests and benches); call Reset() to exercise the ladder.
  QpState state() const { return state_; }

  // To RESET: reliability-layer WRs still outstanding flush with kFlushed
  // completions (with the layer off there is nothing to recall, exactly as
  // before the fault model existed).
  void Reset() {
    FlushSendQueue(nullptr, WcStatus::kFlushed);
    state_ = QpState::kReset;
  }

  // The reconnect path workloads use for graceful degradation: from
  // kError (or kReset), flush leftovers and walk the ladder back to kRts.
  bool Recover() {
    if (state_ != QpState::kError && state_ != QpState::kReset) {
      return false;
    }
    FlushSendQueue(nullptr, WcStatus::kFlushed);
    state_ = QpState::kReset;
    Modify(QpState::kInit);
    Modify(QpState::kRtr);
    Modify(QpState::kRts);
    return true;
  }

  bool Modify(QpState next) {
    static constexpr QpState kLadder[] = {QpState::kReset, QpState::kInit, QpState::kRtr,
                                          QpState::kRts};
    for (size_t i = 0; i + 1 < std::size(kLadder); ++i) {
      if (state_ == kLadder[i] && next == kLadder[i + 1]) {
        state_ = next;
        return true;
      }
    }
    if (next == QpState::kError) {
      state_ = next;
      return true;
    }
    return false;
  }

  // Posts return false when the QP is not ready or the send queue is full.
  // `deadline` (absolute sim time, 0 = none) bounds the reliability layer:
  // a WR whose deadline has passed when its retransmit timer fires
  // completes as kDeadlineExceeded instead of requeueing.
  bool PostRead(uint64_t remote_addr, uint32_t len, uint64_t wr_id = 0,
                OpCallback cb = nullptr, bool signaled = true,
                SimTime deadline = 0) {
    SNIC_CHECK(config_.type == QpType::kRc);  // one-sided needs RC
    return PostOp(Verb::kRead, remote_addr, len, wr_id, std::move(cb), signaled,
                  /*rnr_attempts=*/0, deadline);
  }
  bool PostWrite(uint64_t remote_addr, uint32_t len, uint64_t wr_id = 0,
                 OpCallback cb = nullptr, bool signaled = true,
                 SimTime deadline = 0) {
    SNIC_CHECK(config_.type == QpType::kRc);
    return PostOp(Verb::kWrite, remote_addr, len, wr_id, std::move(cb), signaled,
                  /*rnr_attempts=*/0, deadline);
  }
  // Two-sided send into the responder's receive ring; the responder's
  // registered handler produces the reply. Works on RC and UD.
  bool PostSend(uint32_t len, uint64_t wr_id = 0, OpCallback cb = nullptr,
                bool signaled = true, SimTime deadline = 0) {
    return PostOp(Verb::kSend, mr_.addr, len, wr_id, std::move(cb), signaled,
                  /*rnr_attempts=*/0, deadline);
  }

  const RemoteMemoryRegion& remote() const { return mr_; }
  const QpConfig& config() const { return config_; }
  int thread() const { return thread_; }
  uint64_t posted() const { return posted_; }
  int outstanding() const { return outstanding_; }
  uint64_t rnr_retries() const { return rnr_retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t completions() const { return completions_; }
  uint64_t completion_errors() const { return completion_errors_; }
  uint64_t deadline_exceeded() const { return deadline_exceeded_; }

  // Coherent snapshot of the counters above (one call, no torn reads
  // across event boundaries).
  QpHealth health() const {
    QpHealth h;
    h.state = state_;
    h.outstanding = outstanding_;
    h.posted = posted_;
    h.completions = completions_;
    h.timeouts = timeouts_;
    h.retransmits = retransmits_;
    h.completion_errors = completion_errors_;
    return h;
  }

 private:
  // One reliability-layer WR: identity plus retry state. `epoch` cancels
  // superseded timers — every retransmission round and every completion
  // bumps it, so a stale timer finds a mismatched epoch and dies.
  struct PendingWr {
    Verb verb = Verb::kRead;
    uint64_t addr = 0;
    uint32_t len = 0;
    uint64_t wr_id = 0;
    bool signaled = true;
    OpCallback cb;
    int retries = 0;
    uint64_t epoch = 0;
    bool done = false;
    SimTime deadline = 0;  // absolute; 0 = unbounded
    // Wheel handle of the pending retransmit timer (kNoTimer when armed on
    // the plain heap). Lets completions reclaim the timer in O(1) instead
    // of leaving a stale event to no-op at full timeout depth.
    TimerWheel::TimerId timer = TimerWheel::kNoTimer;
  };

  bool reliable() const { return config_.transport_timeout > 0; }

  bool PostOp(Verb verb, uint64_t remote_addr, uint32_t len, uint64_t wr_id,
              OpCallback cb, bool signaled, int rnr_attempts = 0,
              SimTime deadline = 0) {
    if (state_ != QpState::kRts) {
      return false;
    }
    if (outstanding_ >= config_.max_send_wr) {
      return false;  // send queue full: poll the CQ and retry
    }
    SNIC_CHECK(mr_.Contains(remote_addr, len == 0 ? 1 : len));
    // Receiver-not-ready: the responder ring is dry; retry after backoff
    // until the configured budget runs out (negative budget = forever).
    if (verb == Verb::kSend && mr_.recv != nullptr && !mr_.recv->Consume()) {
      if (config_.rnr_retry_cnt >= 0 && rnr_attempts >= config_.rnr_retry_cnt) {
        RnrExhausted(verb, len, wr_id, std::move(cb));
        return true;
      }
      ++rnr_retries_;
      Simulator* sim = machine_->sim();
      ++outstanding_;
      sim->In(config_.rnr_backoff,
              [this, verb, remote_addr, len, wr_id, cb = std::move(cb), signaled,
               rnr_attempts, deadline]() mutable {
        --outstanding_;
        PostOp(verb, remote_addr, len, wr_id, std::move(cb), signaled,
               rnr_attempts + 1, deadline);
      });
      return true;
    }
    ++posted_;
    ++outstanding_;
    if (reliable()) {
      auto wr = std::make_shared<PendingWr>();
      wr->verb = verb;
      wr->addr = remote_addr;
      wr->len = len;
      wr->wr_id = wr_id;
      wr->signaled = signaled;
      wr->cb = std::move(cb);
      wr->deadline = deadline;
      sq_.push_back(wr);
      Transmit(wr, /*first=*/true);
      return true;
    }
    machine_->Post(thread_, Target(verb, len), remote_addr,
                   [this, verb, len, wr_id, signaled,
                    cb = std::move(cb)](SimTime completed) {
                     --outstanding_;
                     if (cq_ != nullptr && (signaled || config_.signal_all)) {
                       cq_->Push(WorkCompletion{verb, wr_id, len, completed});
                     }
                     if (cb) {
                       cb(completed);
                     }
                   });
    return true;
  }

  TargetSpec Target(Verb verb, uint32_t len) const {
    TargetSpec target;
    target.engine = mr_.engine;
    target.endpoint = mr_.endpoint;
    target.server_port = mr_.server_port;
    target.verb = verb;
    target.payload = len;
    return target;
  }

  // First transmission pays the full post path (WQE build + doorbell);
  // retransmissions replay the WQE from the NIC without re-involving the
  // CPU, like hardware RC retransmission. A retransmitted SEND does not
  // re-consume a receive: the responder replays delivery into the slot the
  // original consume reserved.
  void Transmit(const std::shared_ptr<PendingWr>& wr, bool first) {
    auto on_complete = [this, wr](SimTime completed) { OnResponse(wr, completed); };
    if (first) {
      machine_->Post(thread_, Target(wr->verb, wr->len), wr->addr,
                     std::move(on_complete));
    } else {
      ++retransmits_;
      machine_->Launch(Target(wr->verb, wr->len), wr->addr, std::move(on_complete));
    }
    ArmTimer(wr);
  }

  void ArmTimer(const std::shared_ptr<PendingWr>& wr) {
    const uint64_t epoch = wr->epoch;
    const int shift = std::min(wr->retries, config_.backoff_shift_cap);
    const SimTime timeout = config_.transport_timeout << shift;
    auto fire = [this, wr, epoch] {
      if (wr->done || wr->epoch != epoch) {
        return;  // completed, flushed, or superseded by a newer round
      }
      if (state_ != QpState::kRts) {
        // The QP left kRts (crash, flap escalation, external Modify) after
        // this timer was armed but the WR was not flushed with it. Without
        // this gate the timer would keep firing, retransmitting into a dead
        // QP and re-arming itself forever.
        return;
      }
      OnTimeout(wr);
    };
    // Retransmit timers are the wheel's home case: nearly all of them are
    // superseded by a completion, so arming through an attached wheel lets
    // CancelTimer reclaim them without a heap op. The epoch guard above
    // stays as belt-and-braces (and carries the heap fallback unchanged).
    if (TimerWheel* const wheel = machine_->sim()->timer_wheel();
        wheel != nullptr) {
      wr->timer = wheel->In(timeout, std::move(fire));
    } else {
      machine_->sim()->In(timeout, std::move(fire));
    }
  }

  void CancelTimer(const std::shared_ptr<PendingWr>& wr) {
    if (wr->timer == TimerWheel::kNoTimer) {
      return;
    }
    if (TimerWheel* const wheel = machine_->sim()->timer_wheel();
        wheel != nullptr) {
      wheel->Cancel(wr->timer);  // stale-id no-op if it already fired
    }
    wr->timer = TimerWheel::kNoTimer;
  }

  void OnTimeout(const std::shared_ptr<PendingWr>& wr) {
    ++timeouts_;
    Simulator* const sim = machine_->sim();
    if (Tracer* const tr = sim->tracer(); tr != nullptr) {
      tr->Instant(machine_->name() + ".qp", "timeout", sim->now(), wr->wr_id);
    }
    // A timeout inside the bound domain's crash window means the endpoint is
    // gone, not the frame: retransmitting is pointless. The QP drops to
    // kError and every in-flight WR flushes; Recover() reconnects after the
    // restart.
    if (!config_.crash_domain.empty() && sim->faults() != nullptr &&
        sim->faults()->CrashedAt(config_.crash_domain, sim->now())) {
      state_ = QpState::kError;
      FlushSendQueue(nullptr, WcStatus::kFlushed);
      return;
    }
    // Deadline budget: an expired WR completes now as kDeadlineExceeded
    // instead of burning more retransmissions. Only this WR dies — the QP
    // stays in kRts and later WRs keep their own timers.
    if (wr->deadline > 0 && sim->now() >= wr->deadline) {
      wr->done = true;
      ++wr->epoch;
      --outstanding_;
      ++completion_errors_;
      ++deadline_exceeded_;
      if (cq_ != nullptr) {
        cq_->Push(WorkCompletion{wr->verb, wr->wr_id, wr->len, sim->now(),
                                 WcStatus::kDeadlineExceeded});
      }
      if (wr->cb) {
        wr->cb(sim->now());
      }
      while (!sq_.empty() && sq_.front()->done) {
        sq_.pop_front();
      }
      return;
    }
    if (wr->retries >= config_.retry_cnt) {
      state_ = QpState::kError;
      FlushSendQueue(wr.get(), WcStatus::kRetryExceeded);
      return;
    }
    // Go-back-N: this WR and every later outstanding WR retransmit. A
    // response from an earlier transmission that was merely slow (not lost)
    // still wins through the done flag; the duplicate is then ignored.
    bool from_here = false;
    for (const auto& p : sq_) {
      if (p == wr) {
        from_here = true;
      }
      if (!from_here || p->done) {
        continue;
      }
      ++p->epoch;
      ++p->retries;
      Transmit(p, /*first=*/false);
    }
  }

  void OnResponse(const std::shared_ptr<PendingWr>& wr, SimTime completed) {
    if (wr->done) {
      return;  // duplicate delivery from a superseded transmission, or flushed
    }
    wr->done = true;
    ++wr->epoch;
    CancelTimer(wr);
    --outstanding_;
    ++completions_;
    if (cq_ != nullptr && (wr->signaled || config_.signal_all)) {
      cq_->Push(WorkCompletion{wr->verb, wr->wr_id, wr->len, completed,
                               WcStatus::kSuccess});
    }
    if (wr->cb) {
      wr->cb(completed);
    }
    while (!sq_.empty() && sq_.front()->done) {
      sq_.pop_front();
    }
  }

  // Completes every outstanding reliability-layer WR in error: `culprit`
  // (may be null) gets `culprit_status`, the rest flush. Error completions
  // are always delivered to the CQ, signaled or not, like real verbs.
  void FlushSendQueue(const PendingWr* culprit, WcStatus culprit_status) {
    const SimTime now = machine_->sim()->now();
    std::deque<std::shared_ptr<PendingWr>> sq;
    sq.swap(sq_);  // swap first: a callback may post on a recovered QP
    for (const auto& p : sq) {
      if (p->done) {
        continue;
      }
      p->done = true;
      ++p->epoch;
      CancelTimer(p);
      --outstanding_;
      ++completion_errors_;
      const WcStatus st = p.get() == culprit ? culprit_status : WcStatus::kFlushed;
      if (cq_ != nullptr) {
        cq_->Push(WorkCompletion{p->verb, p->wr_id, p->len, now, st});
      }
      if (p->cb) {
        p->cb(now);
      }
    }
  }

  void RnrExhausted(Verb verb, uint32_t len, uint64_t wr_id, OpCallback cb) {
    const SimTime now = machine_->sim()->now();
    state_ = QpState::kError;
    ++completion_errors_;
    if (cq_ != nullptr) {
      cq_->Push(WorkCompletion{verb, wr_id, len, now, WcStatus::kRnrRetryExceeded});
    }
    if (cb) {
      cb(now);
    }
    FlushSendQueue(nullptr, WcStatus::kFlushed);
  }

  ClientMachine* machine_;
  int thread_;
  RemoteMemoryRegion mr_;
  CompletionQueue* cq_;
  QpConfig config_;
  QpState state_ = QpState::kRts;
  std::deque<std::shared_ptr<PendingWr>> sq_;  // reliability-layer WRs only
  uint64_t posted_ = 0;
  int outstanding_ = 0;
  uint64_t rnr_retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t completions_ = 0;
  uint64_t completion_errors_ = 0;
  uint64_t deadline_exceeded_ = 0;
};

}  // namespace rdma
}  // namespace snicsim

#endif  // SRC_RDMA_VERBS_H_
