// Receive queues for two-sided traffic.
//
// A SEND consumes one pre-posted receive WQE at the responder (the paper's
// echo servers pre-post rings). When the ring runs dry the responder
// answers RNR (receiver-not-ready) and the sender retries after a backoff —
// the classic two-sided failure mode under CPU overload. The default used
// by the benches is an auto-replenishing ring, matching the paper's tuned
// servers; tests exercise the RNR path explicitly.
#ifndef SRC_RDMA_RECV_QUEUE_H_
#define SRC_RDMA_RECV_QUEUE_H_

#include <cstdint>

#include "src/common/log.h"

namespace snicsim {
namespace rdma {

class ReceiveQueue {
 public:
  // `capacity` = ring size; `auto_replenish` models a server that re-posts
  // a receive as soon as one is consumed.
  explicit ReceiveQueue(int capacity, bool auto_replenish = true)
      : capacity_(capacity), posted_(capacity), auto_replenish_(auto_replenish) {
    SNIC_CHECK_GT(capacity, 0);
  }

  // The application posts `n` more receive WQEs (up to capacity).
  int PostRecv(int n) {
    const int space = capacity_ - posted_;
    const int added = n < space ? n : space;
    posted_ += added;
    return added;
  }

  // A SEND arrives: consumes one WQE, or reports RNR.
  bool Consume() {
    if (posted_ == 0) {
      ++rnr_events_;
      return false;
    }
    --posted_;
    ++consumed_;
    if (auto_replenish_) {
      ++posted_;
    }
    return true;
  }

  int posted() const { return posted_; }
  int capacity() const { return capacity_; }
  uint64_t consumed() const { return consumed_; }
  uint64_t rnr_events() const { return rnr_events_; }

 private:
  int capacity_;
  int posted_;
  bool auto_replenish_;
  uint64_t consumed_ = 0;
  uint64_t rnr_events_ = 0;
};

}  // namespace rdma
}  // namespace snicsim

#endif  // SRC_RDMA_RECV_QUEUE_H_
