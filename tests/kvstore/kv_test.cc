#include "src/kvstore/kv.h"

#include <gtest/gtest.h>

namespace snicsim {
namespace kv {
namespace {

class KvTest : public ::testing::Test {
 protected:
  KvTest()
      : fabric_(&sim_),
        server_(&sim_, &fabric_, TestbedParams::Default()),
        client_(&sim_, &fabric_, ClientParams{}, "cli"),
        index_(MakeConfig()) {
    for (uint64_t k = 1; k <= kKeys; ++k) {
      index_.Put(k);
    }
  }

  static IndexConfig MakeConfig() {
    IndexConfig c;
    c.buckets = 1u << 12;
    c.value_bytes = 256;
    c.value_base = 1ull * kGiB;
    return c;
  }

  rdma::RemoteMemoryRegion HostRegion() {
    rdma::RemoteMemoryRegion mr;
    mr.engine = &server_.nic();
    mr.endpoint = server_.host_ep();
    mr.server_port = server_.port();
    mr.addr = 0;
    mr.length = 8ull * kGiB;
    return mr;
  }

  static constexpr uint64_t kKeys = 4000;

  Simulator sim_;
  Fabric fabric_;
  BluefieldServer server_;
  ClientMachine client_;
  KvIndex index_;
};

TEST_F(KvTest, DirectGetFindsKey) {
  rdma::QueuePair qp(&client_, 0, HostRegion());
  DirectKvClient kv(&index_, &qp);
  GetResult result;
  bool done = false;
  kv.Get(17, [&](GetResult r) {
    result = r;
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.found);
  EXPECT_GE(result.round_trips, 2);  // the paper's network amplification
}

TEST_F(KvTest, DirectGetMissesAbsentKey) {
  rdma::QueuePair qp(&client_, 0, HostRegion());
  DirectKvClient kv(&index_, &qp);
  bool found = true;
  kv.Get(999999, [&](GetResult r) { found = r.found; });
  sim_.Run();
  EXPECT_FALSE(found);
}

TEST_F(KvTest, SocOffloadServesGets) {
  SocOffloadKvServer::Config cfg;
  SocOffloadKvServer offload(&sim_, &server_, &index_, cfg);
  offload.SeedKeys(kKeys);
  rdma::RemoteMemoryRegion soc_mr;
  soc_mr.engine = &server_.nic();
  soc_mr.endpoint = server_.soc_ep();
  soc_mr.server_port = server_.port();
  soc_mr.addr = 0;
  soc_mr.length = 1ull * kGiB;
  rdma::QueuePair qp(&client_, 0, soc_mr);
  bool done = false;
  qp.PostSend(16, 1, [&](SimTime) { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(offload.gets_served(), 1u);
}

TEST_F(KvTest, OffloadSavesRoundTripsLatency) {
  // Fig. 1: offloaded get (1 network RT) beats client-direct (2+ RTs).
  rdma::QueuePair qp(&client_, 0, HostRegion());
  DirectKvClient kv(&index_, &qp);
  SimTime direct_start = sim_.now();
  SimTime direct_latency = 0;
  kv.Get(33, [&](GetResult) { direct_latency = sim_.now() - direct_start; });
  sim_.Run();

  Simulator sim2;
  Fabric fabric2(&sim2);
  BluefieldServer server2(&sim2, &fabric2, TestbedParams::Default());
  ClientMachine client2(&sim2, &fabric2, ClientParams{}, "cli2");
  KvIndex index2(MakeConfig());
  for (uint64_t k = 1; k <= kKeys; ++k) {
    index2.Put(k);
  }
  SocOffloadKvServer offload(&sim2, &server2, &index2, SocOffloadKvServer::Config{});
  offload.SeedKeys(kKeys);
  rdma::RemoteMemoryRegion soc_mr;
  soc_mr.engine = &server2.nic();
  soc_mr.endpoint = server2.soc_ep();
  soc_mr.server_port = server2.port();
  soc_mr.addr = 0;
  soc_mr.length = 1ull * kGiB;
  rdma::QueuePair qp2(&client2, 0, soc_mr);
  SimTime offload_latency = 0;
  const SimTime start2 = sim2.now();
  qp2.PostSend(16, 1, [&](SimTime) { offload_latency = sim2.now() - start2; });
  sim2.Run();

  EXPECT_GT(direct_latency, 0);
  EXPECT_GT(offload_latency, 0);
  EXPECT_LT(offload_latency, direct_latency);
}

TEST_F(KvTest, OffloadWithValuesOnHostUsesPath3) {
  SocOffloadKvServer::Config cfg;
  cfg.values_on_host = true;
  SocOffloadKvServer offload(&sim_, &server_, &index_, cfg);
  offload.SeedKeys(kKeys);
  rdma::RemoteMemoryRegion soc_mr;
  soc_mr.engine = &server_.nic();
  soc_mr.endpoint = server_.soc_ep();
  soc_mr.server_port = server_.port();
  soc_mr.addr = 0;
  soc_mr.length = 1ull * kGiB;
  rdma::QueuePair qp(&client_, 0, soc_mr);
  bool done = false;
  const auto host_tlps_before = server_.pcie0().TotalCounters().tlps;
  qp.PostSend(16, 1, [&](SimTime) { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
  // The S2H value fetch must have crossed PCIe0.
  EXPECT_GT(server_.pcie0().TotalCounters().tlps, host_tlps_before);
}

}  // namespace
}  // namespace kv
}  // namespace snicsim
