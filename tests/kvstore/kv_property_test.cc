// Randomized consistency properties of the KV index and end-to-end store.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/kvstore/index.h"

namespace snicsim {
namespace kv {
namespace {

class KvSeedProperty : public ::testing::TestWithParam<uint64_t> {};

IndexConfig Config() {
  IndexConfig c;
  c.buckets = 1u << 12;
  c.value_bytes = 64;
  c.value_base = 1 * kMiB;
  return c;
}

TEST_P(KvSeedProperty, InsertedKeysAlwaysFound) {
  KvIndex idx(Config());
  Rng rng(GetParam());
  std::set<uint64_t> inserted;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.Next() | 1;
    if (idx.Put(key)) {
      inserted.insert(key);
    }
  }
  for (uint64_t key : inserted) {
    EXPECT_TRUE(idx.Get(key).found) << key;
  }
  EXPECT_EQ(idx.size(), inserted.size());
}

TEST_P(KvSeedProperty, AbsentKeysNeverFound) {
  KvIndex idx(Config());
  Rng rng(GetParam() + 7);
  for (int i = 0; i < 3000; ++i) {
    idx.Put((rng.Next() << 1) | 1);  // odd keys only
  }
  Rng rng2(GetParam() + 8);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t even = (rng2.Next() | 1) << 1;  // even keys never inserted
    EXPECT_FALSE(idx.Get(even).found) << even;
  }
}

TEST_P(KvSeedProperty, ValueAddressesDisjointAndInRegion) {
  const IndexConfig c = Config();
  KvIndex idx(c);
  Rng rng(GetParam() + 13);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.Next() | 1;
    if (idx.Put(key)) {
      keys.insert(key);
    }
  }
  std::set<uint64_t> addrs;
  for (uint64_t key : keys) {
    const Lookup l = idx.Get(key);
    ASSERT_TRUE(l.found);
    EXPECT_GE(l.value_addr, c.value_base);
    EXPECT_EQ((l.value_addr - c.value_base) % c.value_bytes, 0u);
    EXPECT_TRUE(addrs.insert(l.value_addr).second) << "duplicate value slot";
  }
}

TEST_P(KvSeedProperty, ProbeSequencesBounded) {
  const IndexConfig c = Config();
  KvIndex idx(c);
  Rng rng(GetParam() + 21);
  for (int i = 0; i < 8000; ++i) {
    idx.Put(rng.Next() | 1);
  }
  Rng rng2(GetParam() + 21);
  for (int i = 0; i < 8000; ++i) {
    const Lookup l = idx.Get(rng2.Next() | 1);
    EXPECT_LE(static_cast<int>(l.bucket_addrs.size()), c.max_probes);
    EXPECT_GE(l.bucket_addrs.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvSeedProperty, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace kv
}  // namespace snicsim
